// Onthefly: post-mortem vs on-the-fly detection (the paper's §5 trade-off).
//
// A buggy locked counter (one thread skips the lock once, so the hammered
// counter location accumulates many racing accesses) is run on weak
// hardware; the post-mortem detector and the on-the-fly vector-clock
// baseline are compared at several access-history bounds. Unbounded history matches
// the post-mortem results; shrinking the history saves memory but starts
// missing races — exactly the accuracy loss the paper attributes to
// on-the-fly methods that "keep space overhead low by only buffering
// limited trace information in memory".
//
//	go run ./examples/onthefly
package main

import (
	"fmt"
	"log"

	"weakrace"
)

func main() {
	w := weakrace.LockedCounter(3, 4, 1) // P2 skips the lock once
	fmt.Printf("workload: %s\n\n", w)

	const seeds = 25
	fmt.Printf("%-10s %-12s %-12s %-10s %s\n", "history", "otf races", "post-mortem", "missed", "comparisons")
	for _, limit := range []int{0, 4, 2, 1} {
		var otfTotal, pmTotal, missed, comparisons int
		for seed := int64(0); seed < seeds; seed++ {
			res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
				Model: weakrace.WO, Seed: seed, InitMemory: w.InitMemory,
			})
			if err != nil {
				log.Fatal(err)
			}

			// Post-mortem: trace → happens-before-1 graph → races.
			a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
			if err != nil {
				log.Fatal(err)
			}
			pm := map[weakrace.LowerLevelRace]bool{}
			for _, ri := range a.DataRaces {
				for _, ll := range a.LowerLevel(a.Races[ri]) {
					pm[ll.Canonical()] = true
				}
			}

			// On the fly: vector clocks + bounded history.
			otf := weakrace.DetectOnTheFly(res.Exec, weakrace.OnTheFlyOptions{HistoryLimit: limit})

			otfTotal += otf.RaceCount()
			pmTotal += len(pm)
			comparisons += otf.Comparisons
			for ll := range pm {
				if !otf.Races[ll] {
					missed++
				}
			}
		}
		name := "unbounded"
		if limit > 0 {
			name = fmt.Sprintf("%d", limit)
		}
		fmt.Printf("%-10s %-12d %-12d %-10d %d\n", name, otfTotal, pmTotal, missed, comparisons)
	}
	fmt.Println("\nmissed = post-mortem races the bounded on-the-fly detector failed to report")
}

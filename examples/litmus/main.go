// Litmus: which relaxations does each memory model actually exhibit?
//
// Runs the classic litmus tests (store buffering, message passing, load
// buffering, coherence, IRIW, Test&Set atomicity) on every model and
// prints the matrix of relaxed-outcome frequencies — executable
// documentation of the simulated hardware the detector runs against. The
// MP row is the paper's Figure 1a; MP+sync is Figure 1b.
//
//	go run ./examples/litmus
package main

import (
	"fmt"
	"log"

	"weakrace"
)

func main() {
	const seeds = 1500
	fmt.Printf("%-10s %-26s", "test", "relaxed outcome")
	for _, m := range weakrace.AllModels {
		fmt.Printf(" %8s", m)
	}
	fmt.Println()

	for _, test := range weakrace.LitmusCatalog() {
		fmt.Printf("%-10s %-26s", test.Name, test.Relaxed)
		for _, model := range weakrace.AllModels {
			r, err := weakrace.RunLitmus(test, model, seeds)
			if err != nil {
				log.Fatal(err)
			}
			cell := fmt.Sprintf("%d", r.Relaxed)
			if test.AllowedOn(model) {
				cell += "*"
			}
			if r.Forbidden() {
				log.Fatalf("%s on %s: forbidden outcome observed!", test.Name, model)
			}
			fmt.Printf(" %8s", cell)
		}
		fmt.Println()
	}
	fmt.Printf("\n(* = the model allows the relaxed outcome; counts are out of %d seeds)\n", seeds)
	fmt.Println("SB and MP separate SC from the weak models; everything else is forbidden")
	fmt.Println("everywhere: the simulator buffers writes but never reorders reads,")
	fmt.Println("speculates values, or breaks coherence / multi-copy atomicity.")
}

// Workqueue: the paper's Figure 2 debugging session, end to end.
//
// A work-queue program with a missing Test&Set is run on weak-ordering
// hardware until the Figure 2b anomaly appears: the consumer observes the
// queue-empty flag cleared but dequeues a stale address, and its work
// region collides with another worker's. The example then shows what the
// paper's detector reports — the stale-queue races as the FIRST partition
// (a real, sequentially consistent bug) and the region collisions as a
// non-first partition (artifacts of the first bug) — plus the
// sequentially consistent prefix boundary.
//
//	go run ./examples/workqueue
package main

import (
	"fmt"
	"log"
	"os"

	"weakrace"
)

func main() {
	w := weakrace.Figure2()
	fmt.Println("program under test (note: the Test&Sets are missing — the bug):")
	fmt.Print(w.Prog.Disassemble())

	// Hunt for a seed where the weak hardware makes the bug bite.
	fmt.Println("\nsearching weak-ordering seeds for the stale-dequeue anomaly...")
	var res *weakrace.SimResult
	var seed int64
	for ; seed < 20000; seed++ {
		r, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
			Model: weakrace.WO, Seed: seed, RetireProb: 0.15,
			InitMemory: w.InitMemory,
		})
		if err != nil {
			log.Fatal(err)
		}
		// The stale dequeue shows up as P2 reading the old queue value.
		for _, op := range r.Exec.OpsOf(1) {
			if op.Loc == 0 && op.Kind.IsRead() && !op.Kind.IsSync() && op.Value == 5 {
				res = r
			}
		}
		if res != nil {
			break
		}
	}
	if res == nil {
		log.Fatal("no anomaly in 20000 seeds")
	}
	fmt.Printf("found it at seed %d: P2 dequeued the STALE address 5 — its region\noverlaps P3's. This outcome is impossible under sequential consistency.\n\n", seed)

	// Where did sequential consistency end?
	n, decided := weakrace.SCBoundary(res.Exec, 1<<20)
	fmt.Printf("sequentially consistent prefix: %d of %d operations (exact=%v)\n\n",
		n, len(res.Exec.Ops), decided)

	// The paper's detection pipeline.
	a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := weakrace.WriteGraph(os.Stdout, a); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := weakrace.WriteReport(os.Stdout, a); err != nil {
		log.Fatal(err)
	}

	// Validate Theorem 4.2 against sampled SC ground truth: the first
	// partition's races really occur under sequential consistency.
	gt, err := weakrace.SampleSC(w.Prog, w.InitMemory, 300)
	if err != nil {
		log.Fatal(err)
	}
	rep := weakrace.CheckCondition34(a, res.Exec, gt, 1<<20)
	fmt.Printf("\nCondition 3.4 validation: %s (ok=%v)\n", rep, rep.OK())
}

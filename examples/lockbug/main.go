// Lockbug: hunting a missing-lock bug across seeds and memory models.
//
// A shared counter is incremented by three threads under a Test&Set/Unset
// lock, except that one thread skips the lock on its final iteration. The
// example sweeps seeds on every memory model, showing that (a) the race is
// dynamic — only some interleavings exhibit it, which is why dynamic
// detectors rerun executions; (b) when it is exhibited, the first
// partition pinpoints the counter accesses; and (c) lost updates (the
// observable corruption) only ever happen in executions where the
// detector also reports races.
//
//	go run ./examples/lockbug
package main

import (
	"fmt"
	"log"

	"weakrace"
)

const (
	cpus  = 3
	iters = 4
)

func main() {
	clean := weakrace.LockedCounter(cpus, iters, -1)
	buggy := weakrace.LockedCounter(cpus, iters, 1) // P2 skips the lock once

	fmt.Println("clean program: every increment locked")
	sweep(clean)
	fmt.Println("\nbuggy program: P2 skips the Test&Set on its last iteration")
	sweep(buggy)
}

func sweep(w *weakrace.Workload) {
	const seeds = 40
	want := int64(cpus * iters)
	for _, model := range weakrace.AllModels {
		racy, lost, lostButClean := 0, 0, 0
		var exampleSeed int64 = -1
		for seed := int64(0); seed < seeds; seed++ {
			res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
				Model: model, Seed: seed, InitMemory: w.InitMemory,
			})
			if err != nil {
				log.Fatal(err)
			}
			a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if !a.RaceFree() {
				racy++
				if exampleSeed < 0 {
					exampleSeed = seed
				}
			}
			if res.FinalMemory[0] != want {
				lost++
				if a.RaceFree() {
					lostButClean++
				}
			}
		}
		fmt.Printf("  %-5s racy executions: %2d/%d   lost updates: %2d   lost-but-race-free: %d\n",
			model, racy, seeds, lost, lostButClean)
		if lostButClean > 0 {
			log.Fatal("corruption without a reported race — detector unsound!")
		}
		if exampleSeed >= 0 {
			res, _ := weakrace.Simulate(w.Prog, weakrace.SimConfig{
				Model: model, Seed: exampleSeed, InitMemory: w.InitMemory,
			})
			a, _ := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
			first := a.Partitions[a.FirstPartitions[0]]
			r := a.Races[first.Races[0]]
			lls := a.LowerLevel(r)
			fmt.Printf("        e.g. seed %d, first partition race: %s\n", exampleSeed, lls[0])
		}
	}
}

// Quickstart: build a small two-thread program, run it on a weak memory
// model, and detect its data races post-mortem.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"weakrace"
)

func main() {
	// A classic message-passing bug: P1 publishes data then sets a flag,
	// but nothing orders P2's reads against P1's writes.
	const data, flag = 0, 1
	b := weakrace.NewProgram("quickstart", 2, 2)
	b.Thread("P1").
		Write(weakrace.At(data), weakrace.Imm(42)).
		Write(weakrace.At(flag), weakrace.Imm(1))
	b.Thread("P2").
		Read(0, weakrace.At(flag)).
		Read(1, weakrace.At(data))
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Run it on weak ordering hardware.
	res, err := weakrace.Simulate(prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d memory operations on %s\n", res.Exec.NumOps(), res.Exec.Model)

	// Instrument: group operations into events with READ/WRITE sets.
	tr := weakrace.TraceExecution(res.Exec)

	// Post-mortem detection: happens-before-1 graph, races, first
	// partitions.
	a, err := weakrace.Detect(tr, weakrace.DetectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := weakrace.WriteReport(os.Stdout, a); err != nil {
		log.Fatal(err)
	}

	if a.RaceFree() {
		fmt.Println("race-free: the execution was sequentially consistent (Condition 3.4)")
	} else {
		fmt.Printf("%d first partition(s): each contains a bug that occurs under\nsequential consistency (Theorem 4.2) — debug those first.\n",
			len(a.FirstPartitions))
	}
}

// Asm: drive the detector from assembly files.
//
// Assembles every .wrasm program under examples/asm/programs, runs each on
// every memory model across a handful of seeds, and prints a one-line
// verdict per program/model: racy or race-free, plus the first-partition
// race when there is one. Demonstrates the full file-driven workflow a
// user would follow for their own litmus tests.
//
//	go run ./examples/asm
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"weakrace"
)

func main() {
	dir := filepath.Join("examples", "asm", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatalf("run from the repository root: %v", err)
	}
	var files []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".wrasm" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)

	const seeds = 25
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		prog, initMem, err := weakrace.Assemble(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("%s (%q):\n", filepath.Base(path), prog.Name)
		for _, model := range weakrace.AllModels {
			racy := 0
			var example weakrace.LowerLevelRace
			haveExample := false
			for seed := int64(0); seed < seeds; seed++ {
				res, err := weakrace.Simulate(prog, weakrace.SimConfig{
					Model: model, Seed: seed, InitMemory: initMem,
				})
				if err != nil {
					log.Fatal(err)
				}
				a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
				if err != nil {
					log.Fatal(err)
				}
				if !a.RaceFree() {
					racy++
					if !haveExample {
						first := a.Partitions[a.FirstPartitions[0]]
						lls := a.LowerLevel(a.Races[first.Races[0]])
						example = lls[0]
						haveExample = true
					}
				}
			}
			verdict := "race-free in all seeds (executions sequentially consistent)"
			if racy > 0 {
				verdict = fmt.Sprintf("racy in %d/%d seeds; first partition e.g. %s", racy, seeds, example)
			}
			fmt.Printf("  %-5s %s\n", model, verdict)
		}
		fmt.Println()
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// writeTraces materializes one racy and one clean trace in dir and returns
// their paths, plus a text-format copy and a file-set directory.
func writeTraces(t *testing.T, dir string) (racy, clean, text, fileset string) {
	t.Helper()
	mk := func(w *workload.Workload) *trace.Trace {
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 1, InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		return trace.FromExecution(r.Exec)
	}
	racyTr := mk(workload.Figure1a())
	cleanTr := mk(workload.Figure1b())

	racy = filepath.Join(dir, "racy.wrt")
	if err := trace.WriteFile(racy, racyTr); err != nil {
		t.Fatal(err)
	}
	clean = filepath.Join(dir, "clean.wrt")
	if err := trace.WriteFile(clean, cleanTr); err != nil {
		t.Fatal(err)
	}
	text = filepath.Join(dir, "racy.wrtx")
	f, err := os.Create(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeText(f, racyTr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fileset = filepath.Join(dir, "clean.d")
	if err := trace.WriteFileSet(fileset, cleanTr); err != nil {
		t.Fatal(err)
	}
	return racy, clean, text, fileset
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	racy, clean, text, fileset := writeTraces(t, dir)

	cases := []struct {
		name string
		args []string
		exit int
		want string
	}{
		{"racy binary", []string{racy}, 1, "FIRST"},
		{"clean binary", []string{clean}, 0, "NO DATA RACES"},
		{"text format", []string{text}, 1, "FIRST"},
		{"file set", []string{fileset}, 0, "NO DATA RACES"},
		{"mixed", []string{clean, racy}, 1, "FIRST"},
		{"graph flag", []string{"-graph", racy}, 1, "race↔"},
		{"liberal pairing", []string{"-pairing", "liberal", clean}, 0, "NO DATA RACES"},
		{"no args", nil, 2, ""},
		{"bad pairing", []string{"-pairing", "nope", racy}, 2, ""},
		{"missing file", []string{filepath.Join(dir, "absent.wrt")}, 2, ""},
		{"bad flag", []string{"-bogus"}, 2, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(c.args, &out, &errb); got != c.exit {
				t.Fatalf("exit = %d, want %d (stderr: %s)", got, c.exit, errb.String())
			}
			if c.want != "" && !strings.Contains(out.String(), c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out.String())
			}
		})
	}
}

func TestRunDOTOutput(t *testing.T) {
	dir := t.TempDir()
	racy, _, _, _ := writeTraces(t, dir)
	dotPath := filepath.Join(dir, "g.dot")
	var out, errb bytes.Buffer
	if got := run([]string{"-dot", dotPath, racy}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	data, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph hb1") {
		t.Fatalf("DOT file wrong:\n%s", data)
	}
}

// TestRunMetrics: -metrics - appends a JSON telemetry snapshot to stdout
// with detector and codec counters for the analyzed traces.
func TestRunMetrics(t *testing.T) {
	dir := t.TempDir()
	racy, clean, _, _ := writeTraces(t, dir)
	var out, errb bytes.Buffer
	if got := run([]string{"-metrics", "-", clean, racy}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	jsonStart := strings.Index(out.String(), "\n{")
	if jsonStart < 0 {
		t.Fatalf("no JSON snapshot on stdout:\n%s", out.String())
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(out.String()[jsonStart:]), &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if snap.Counters["detect.analyses"] != 2 {
		t.Errorf("detect.analyses = %d, want 2", snap.Counters["detect.analyses"])
	}
	for _, name := range []string{"detect.events", "detect.races", "trace.decode.calls", "trace.decode.bytes", "detect.vc_builds", "graph.vc.builds"} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, snap.Counters[name])
		}
	}
	// The default timestamp path never builds a closure; the reachability
	// row counters must be absent rather than misleading zeros.
	for _, name := range []string{"graph.reach.builds", "graph.reach.rows_built"} {
		if v, ok := snap.Counters[name]; ok {
			t.Errorf("counter %q = %d present without a closure build", name, v)
		}
	}
	if snap.Phases["detect.analyze"].Count != 2 {
		t.Errorf("detect.analyze phase count = %d, want 2", snap.Phases["detect.analyze"].Count)
	}

	// Profiling hooks produce files here too (racedetect is the second
	// heavy CLI).
	cpu := filepath.Join(dir, "cpu.pprof")
	out.Reset()
	errb.Reset()
	if got := run([]string{"-cpuprofile", cpu, clean}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	if info, err := os.Stat(cpu); err != nil || info.Size() == 0 {
		t.Fatalf("cpu profile missing or empty: %v", err)
	}
}

func TestRunCorruptTrace(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.wrt")
	if err := os.WriteFile(bad, []byte("WRT1 garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if got := run([]string{bad}, &out, &errb); got != 2 {
		t.Fatalf("exit = %d, want 2", got)
	}
	if !strings.Contains(errb.String(), "racedetect:") {
		t.Fatalf("stderr missing error: %s", errb.String())
	}
}

// TestRunProvenanceFlags: -explain prints witnesses, -html writes one
// report per input (numbered when there are several), and -flight writes
// a parseable flight directory with a witnesses.json entry per input.
func TestRunProvenanceFlags(t *testing.T) {
	dir := t.TempDir()
	racy, clean, _, _ := writeTraces(t, dir)
	htmlPath := filepath.Join(dir, "report.html")
	flightDir := filepath.Join(dir, "flight")
	var out, errb bytes.Buffer
	got := run([]string{"-explain", "-html", htmlPath, "-flight", flightDir, racy, clean}, &out, &errb)
	if got != 1 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	for _, want := range []string{"witnesses for", "certificate:", "FIRST (Theorem 4.2"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, out.String())
		}
	}
	// Two inputs: numbered HTML reports, racy first.
	for i, want := range []string{"DATA RACES DETECTED", "NO DATA RACES"} {
		data, err := os.ReadFile(filepath.Join(dir, "report."+string(rune('1'+i))+".html"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), want) {
			t.Fatalf("HTML %d missing %q", i+1, want)
		}
	}
	// Flight directory: a parseable JSONL log covering both analyses, a
	// Chrome trace, and per-input witness sets.
	f, err := os.Open(filepath.Join(flightDir, export.FlightLogName))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := export.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	metas := 0
	for _, rec := range recs {
		if rec.Kind == export.KindMeta {
			metas++
		}
	}
	if metas != 2 {
		t.Fatalf("flight log has %d meta records for 2 inputs", metas)
	}
	var traceTop struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	data, err := os.ReadFile(filepath.Join(flightDir, export.ChromeTraceName))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &traceTop); err != nil || len(traceTop.TraceEvents) == 0 {
		t.Fatalf("chrome trace unusable: %v", err)
	}
	var witnessed []struct {
		Input     string            `json:"input"`
		Witnesses []json.RawMessage `json:"witnesses"`
	}
	data, err = os.ReadFile(filepath.Join(flightDir, "witnesses.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &witnessed); err != nil {
		t.Fatal(err)
	}
	if len(witnessed) != 2 || witnessed[0].Input != racy || len(witnessed[0].Witnesses) == 0 || len(witnessed[1].Witnesses) != 0 {
		t.Fatalf("witnesses.json wrong: %+v", witnessed)
	}
}

// TestRunHTTPPlane: -http serves the plane for the analysis's duration
// and a bad address is a usage error.
func TestRunHTTPPlane(t *testing.T) {
	defer func() {
		telemetry.Default().SetEnabled(false)
		telemetry.Default().Reset()
	}()
	racy, _, _, _ := writeTraces(t, t.TempDir())
	var out, errb bytes.Buffer
	if got := run([]string{"-http", "127.0.0.1:0", racy}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1 (racy trace); stderr: %s", got, errb.String())
	}
	if !strings.Contains(errb.String(), "observability plane on http://127.0.0.1:") {
		t.Fatalf("no plane address announced:\n%s", errb.String())
	}
	if got := run([]string{"-http", "not-an-address", racy}, &out, &errb); got != 2 {
		t.Fatalf("bad -http addr: exit = %d, want 2", got)
	}
}

// Command racedetect performs the paper's post-mortem analysis on trace
// files produced by wrsim: it builds the happens-before-1 graph, finds the
// data races, partitions them via the augmented graph, and reports the
// first partitions.
//
// Usage:
//
//	racedetect fig2.wrt
//	racedetect -graph -pairing liberal trace1.wrt trace2.wrt
//	racedetect -dot out.dot fig2set.d
//
// Exit status: 0 if every trace is data-race-free, 1 if any trace has
// data races, 2 on errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/report"
	"weakrace/internal/telemetry"
	"weakrace/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("racedetect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graph   = fs.Bool("graph", false, "also render the augmented happens-before-1 graph")
		dot     = fs.String("dot", "", "write the augmented graph in Graphviz DOT form to this file")
		pairing = fs.String("pairing", "conservative",
			"release pairing policy: conservative (the paper's) or liberal")
		metrics    = fs.String("metrics", "", "dump a JSON telemetry snapshot on exit to this file (- for stdout)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: racedetect [-graph] [-dot file] [-pairing conservative|liberal] [-metrics file|-] trace.wrt ...")
		return 2
	}
	var policy memmodel.PairingPolicy
	switch *pairing {
	case "conservative":
		policy = memmodel.ConservativePairing
	case "liberal":
		policy = memmodel.LiberalPairing
	default:
		fmt.Fprintf(stderr, "racedetect: unknown pairing policy %q\n", *pairing)
		return 2
	}

	if *metrics != "" {
		defer telemetry.EnableDefault()()
	}
	stopProfiles, err := telemetry.StartProfiles(*cpuprofile, *memprofile, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "racedetect: %v\n", err)
		return 2
	}
	defer stopProfiles()

	anyRaces := false
	for _, path := range fs.Args() {
		tr, err := readTrace(path)
		if err != nil {
			fmt.Fprintf(stderr, "racedetect: %s: %v\n", path, err)
			return 2
		}
		a, err := core.Analyze(tr, core.Options{Pairing: policy, SkipValidate: true})
		if err != nil {
			fmt.Fprintf(stderr, "racedetect: %s: %v\n", path, err)
			return 2
		}
		fmt.Fprintf(stdout, "== %s ==\n", path)
		if *graph {
			if err := report.RenderGraph(stdout, a); err != nil {
				fmt.Fprintf(stderr, "racedetect: %v\n", err)
				return 2
			}
		}
		if *dot != "" {
			f, err := os.Create(*dot)
			if err == nil {
				err = report.RenderDOT(f, a)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(stderr, "racedetect: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "DOT graph written to %s\n", *dot)
		}
		if err := report.RenderAnalysis(stdout, a); err != nil {
			fmt.Fprintf(stderr, "racedetect: %v\n", err)
			return 2
		}
		if !a.RaceFree() {
			anyRaces = true
		}
	}
	if *metrics != "" {
		if err := telemetry.DumpDefault(*metrics, stdout); err != nil {
			fmt.Fprintf(stderr, "racedetect: %v\n", err)
			return 2
		}
	}
	if anyRaces {
		return 1
	}
	return 0
}

// readTrace loads a trace from a path: a directory is a per-processor
// file set; a file is sniffed as binary ("WRT1" magic) or text.
func readTrace(path string) (*trace.Trace, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return trace.ReadFileSet(path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte("weakrace-trace")) {
		return trace.DecodeText(bytes.NewReader(data))
	}
	return trace.Decode(bytes.NewReader(data))
}

// Command racedetect performs the paper's post-mortem analysis on trace
// files produced by wrsim: it builds the happens-before-1 graph, finds the
// data races, partitions them via the augmented graph, and reports the
// first partitions.
//
// Usage:
//
//	racedetect fig2.wrt
//	racedetect -graph -pairing liberal trace1.wrt trace2.wrt
//	racedetect -dot out.dot fig2set.d
//	racedetect -explain -html report.html -flight flight/ fig2.wrt
//
// Exit status: 0 if every trace is data-race-free, 1 if any trace has
// data races, 2 on errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/obs"
	"weakrace/internal/provenance"
	"weakrace/internal/report"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("racedetect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graph   = fs.Bool("graph", false, "also render the augmented happens-before-1 graph")
		dot     = fs.String("dot", "", "write the augmented graph in Graphviz DOT form to this file")
		pairing = fs.String("pairing", "conservative",
			"release pairing policy: conservative (the paper's) or liberal")
		metrics    = fs.String("metrics", "", "dump a JSON telemetry snapshot on exit to this file (- for stdout)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		explain    = fs.Bool("explain", false, "print per-race witness explanations (certificates, first-partition chains)")
		dotParts   = fs.String("dot-partitions", "", "write the partition condensation DAG in Graphviz DOT form to this file")
		htmlOut    = fs.String("html", "", "write a single-file HTML race report to this file\n(multiple inputs get numbered suffixes)")
		flight     = fs.String("flight", "", "write a flight-recorder directory: flight.jsonl, trace.json (Perfetto), witnesses.json")
		workers    = fs.Int("workers", 0, "worker goroutines for every analysis phase — trace validation, the\ntimestamp pass, hb1 construction, partition ordering, and the race\nsweep with its merge/sort/coalesce (0 = GOMAXPROCS); output is\nbyte-identical for every worker count")
		httpAddr   = fs.String("http", "", "serve the observability plane (metrics, status, dashboard, pprof) on this address while analyzing")

		wdP99X    = fs.Float64("watchdog-p99x", 0, "watchdog: fire when an analysis phase exceeds this multiple of its running p99 (0 = off)")
		wdAbs     = fs.Duration("watchdog-abs", 0, "watchdog: fire when any analysis phase exceeds this duration (0 = off)")
		artifacts = fs.String("artifacts", "", "watchdog capture directory: pprof snapshots per firing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var obsSrv *obs.Server
	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, obs.Options{Tool: "racedetect"})
		if err != nil {
			fmt.Fprintf(stderr, "racedetect: %v\n", err)
			return 2
		}
		defer srv.Close()
		obsSrv = srv
		fmt.Fprintf(stderr, "racedetect: observability plane on http://%s/\n", srv.Addr())
	}
	if *wdP99X > 0 || *wdAbs > 0 {
		// The watchdog watches the analysis phases through the registry's
		// span hook, so collection stays on for the run.
		defer telemetry.EnableDefault()()
		var pub *obs.Publisher
		if obsSrv != nil {
			pub = obsSrv.Publisher()
		}
		wdog := obs.NewWatchdog(obs.WatchdogOptions{
			Publisher:   pub,
			Dir:         *artifacts,
			P99Multiple: *wdP99X,
			Absolute:    *wdAbs,
		})
		wdog.Start()
		defer wdog.Stop()
		if obsSrv != nil {
			obsSrv.AttachWatchdog(wdog)
		}
		fmt.Fprintf(stderr, "racedetect: watchdog armed (p99x=%g abs=%v artifacts=%q)\n",
			*wdP99X, *wdAbs, *artifacts)
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: racedetect [-graph] [-dot file] [-explain] [-html file] [-flight dir] [-pairing conservative|liberal] [-metrics file|-] trace.wrt ...")
		return 2
	}
	var policy memmodel.PairingPolicy
	switch *pairing {
	case "conservative":
		policy = memmodel.ConservativePairing
	case "liberal":
		policy = memmodel.LiberalPairing
	default:
		fmt.Fprintf(stderr, "racedetect: unknown pairing policy %q\n", *pairing)
		return 2
	}

	if *metrics != "" {
		defer telemetry.EnableDefault()()
		if *workers <= 0 {
			// The worker gauges in the snapshot reflect this resolution;
			// say it up front so a -workers 0 run is self-describing.
			fmt.Fprintf(stderr, "racedetect: -workers 0 resolved to GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
		}
	}
	stopProfiles, err := telemetry.StartProfiles(*cpuprofile, *memprofile, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "racedetect: %v\n", err)
		return 2
	}
	defer stopProfiles()

	var fr *export.Recorder
	if *flight != "" {
		fr = export.NewRecorder()
	}
	// Witness sets per input, written into the flight directory so the
	// structural log and the explanations travel together.
	type inputWitnesses struct {
		Input     string                `json:"input"`
		Witnesses []*provenance.Witness `json:"witnesses"`
	}
	var witnessed []inputWitnesses

	anyRaces := false
	for i, path := range fs.Args() {
		tr, err := readTrace(path)
		if err != nil {
			fmt.Fprintf(stderr, "racedetect: %s: %v\n", path, err)
			return 2
		}
		a, err := core.Analyze(tr, core.Options{Pairing: policy, SkipValidate: true, Flight: fr, Workers: *workers})
		if err != nil {
			fmt.Fprintf(stderr, "racedetect: %s: %v\n", path, err)
			return 2
		}
		fmt.Fprintf(stdout, "== %s ==\n", path)
		if *graph {
			if err := report.RenderGraph(stdout, a); err != nil {
				fmt.Fprintf(stderr, "racedetect: %v\n", err)
				return 2
			}
		}
		if *dot != "" {
			f, err := os.Create(*dot)
			if err == nil {
				err = report.RenderDOT(f, a)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(stderr, "racedetect: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "DOT graph written to %s\n", *dot)
		}
		if err := report.RenderAnalysis(stdout, a); err != nil {
			fmt.Fprintf(stderr, "racedetect: %v\n", err)
			return 2
		}
		var ex *provenance.Explainer
		if *explain || *htmlOut != "" || *dotParts != "" || fr != nil {
			ex = provenance.NewExplainer(a)
		}
		if *dotParts != "" {
			f, err := os.Create(*dotParts)
			if err == nil {
				err = report.RenderPartitionDOT(f, ex)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(stderr, "racedetect: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "partition DOT written to %s\n", *dotParts)
		}
		if *explain {
			if err := report.RenderExplanations(stdout, ex); err != nil {
				fmt.Fprintf(stderr, "racedetect: %v\n", err)
				return 2
			}
		}
		if *htmlOut != "" {
			name := numberedName(*htmlOut, i, fs.NArg())
			f, err := os.Create(name)
			if err == nil {
				err = report.RenderHTML(f, ex)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(stderr, "racedetect: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "HTML report written to %s\n", name)
		}
		if fr != nil {
			ws, err := ex.All()
			if err != nil {
				fmt.Fprintf(stderr, "racedetect: %v\n", err)
				return 2
			}
			witnessed = append(witnessed, inputWitnesses{Input: path, Witnesses: ws})
		}
		if !a.RaceFree() {
			anyRaces = true
		}
	}
	if fr != nil {
		if err := fr.WriteDir(*flight); err != nil {
			fmt.Fprintf(stderr, "racedetect: %v\n", err)
			return 2
		}
		data, err := json.MarshalIndent(witnessed, "", " ")
		if err == nil {
			err = os.WriteFile(filepath.Join(*flight, "witnesses.json"), append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "racedetect: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "flight recording written to %s\n", *flight)
	}
	if *metrics != "" {
		if err := telemetry.DumpDefault(*metrics, stdout); err != nil {
			fmt.Fprintf(stderr, "racedetect: %v\n", err)
			return 2
		}
	}
	if anyRaces {
		return 1
	}
	return 0
}

// numberedName returns base unchanged for a single input and inserts a
// 1-based index before the extension otherwise, so several inputs each
// get their own HTML report.
func numberedName(base string, i, n int) string {
	if n == 1 {
		return base
	}
	ext := filepath.Ext(base)
	return fmt.Sprintf("%s.%d%s", strings.TrimSuffix(base, ext), i+1, ext)
}

// readTrace loads a trace from a path: a directory is a per-processor
// file set; a file is sniffed as binary ("WRT1" magic) or text.
func readTrace(path string) (*trace.Trace, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return trace.ReadFileSet(path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte("weakrace-trace")) {
		return trace.DecodeText(bytes.NewReader(data))
	}
	return trace.Decode(bytes.NewReader(data))
}

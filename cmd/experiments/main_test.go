package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleArtifacts(t *testing.T) {
	for _, c := range []struct{ only, want string }{
		{"fig1a", "MATCHES PAPER"},
		{"t8", "conservative"},
	} {
		var out, errb bytes.Buffer
		if got := run([]string{"-only", c.only, "-seeds", "4", "-gt-seeds", "40"}, &out, &errb); got != 0 {
			t.Fatalf("%s: exit = %d (stderr: %s)", c.only, got, errb.String())
		}
		if !strings.Contains(out.String(), c.want) {
			t.Fatalf("%s output missing %q:\n%s", c.only, c.want, out.String())
		}
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-only", "t99"}, &out, &errb); got != 2 {
		t.Fatalf("exit = %d, want 2", got)
	}
}

// Command experiments regenerates every figure of the paper and the
// quantitative tables for its §5 claims (see DESIGN.md §4 for the index
// and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	experiments                 # everything
//	experiments -only fig2      # one artifact: fig1a fig1b fig2 fig3 t1..t6
//	experiments -seeds 50       # more executions per table cell
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"weakrace/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only   = fs.String("only", "", "run a single artifact: fig1a, fig1b, fig2, fig3, t1..t9")
		seeds  = fs.Int("seeds", 20, "executions per table cell")
		gtSeed = fs.Int("gt-seeds", 200, "SC samples for Theorem 4.2 ground truth")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := experiments.Config{Seeds: *seeds, GroundTruthSeeds: *gtSeed}

	runners := map[string]func(io.Writer) error{
		"fig1a": experiments.Figure1a,
		"fig1b": experiments.Figure1b,
		"fig2": func(w io.Writer) error {
			_, err := experiments.Figure2(w)
			return err
		},
		"fig3": experiments.Figure3,
		"t1":   func(w io.Writer) error { return experiments.Table1(w, cfg) },
		"t2":   func(w io.Writer) error { return experiments.Table2(w, cfg) },
		"t3":   func(w io.Writer) error { return experiments.Table3(w, cfg) },
		"t4":   func(w io.Writer) error { return experiments.Table4(w, cfg) },
		"t5":   func(w io.Writer) error { return experiments.Table5(w, cfg) },
		"t6":   func(w io.Writer) error { return experiments.Table6(w, cfg) },
		"t7":   func(w io.Writer) error { return experiments.Table7(w, cfg) },
		"t8":   func(w io.Writer) error { return experiments.Table8(w, cfg) },
		"t9":   func(w io.Writer) error { return experiments.Table9(w, cfg) },
		"t10":  func(w io.Writer) error { return experiments.Table10(w, cfg) },
	}

	if *only != "" {
		fn, ok := runners[*only]
		if !ok {
			fmt.Fprintf(stderr, "experiments: unknown artifact %q\n", *only)
			return 2
		}
		if err := fn(stdout); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 1
		}
		return 0
	}
	if err := experiments.All(stdout, cfg); err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 1
	}
	return 0
}

// Command racehunt runs a detection campaign: many seeds of one workload
// on a weak memory model, post-mortem analysis of every execution, and an
// aggregated report of the static races found — how often each occurred,
// how often it was a first-partition (root-cause) race, and a seed to
// replay it with.
//
// Usage:
//
//	racehunt -workload buggy-counter -model WO -seeds 500
//	racehunt -workload buggy-counter -seeds 500 -progress -metrics -
//	racehunt -workload dekker -seeds 2000 -cpuprofile cpu.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"weakrace/internal/campaign"
	"weakrace/internal/memmodel"
	"weakrace/internal/telemetry"
	"weakrace/internal/workload"
)

var workloads = map[string]func() *workload.Workload{
	"figure-1a":         workload.Figure1a,
	"figure-1b":         workload.Figure1b,
	"figure-2":          workload.Figure2,
	"locked-counter":    func() *workload.Workload { return workload.LockedCounter(4, 6, -1) },
	"buggy-counter":     func() *workload.Workload { return workload.LockedCounter(4, 6, 1) },
	"producer-consumer": func() *workload.Workload { return workload.ProducerConsumer(6, true) },
	"buggy-prodcons":    func() *workload.Workload { return workload.ProducerConsumer(6, false) },
	"race-chain":        func() *workload.Workload { return workload.RaceChain(4) },
	"dekker":            func() *workload.Workload { return workload.Dekker(3) },
	"random-racy": func() *workload.Workload {
		return workload.Random(workload.RandomParams{Seed: 1, UnlockedFraction: 0.4})
	},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("racehunt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name       = fs.String("workload", "buggy-counter", "workload to hunt in")
		modelName  = fs.String("model", "WO", "memory model")
		seeds      = fs.Int("seeds", 200, "number of executions")
		retireProb = fs.Float64("retire-prob", 0.15, "background retirement probability")
		workers    = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		liberal    = fs.Bool("liberal-pairing", false, "treat Test&Set writes as releases")
		metrics    = fs.String("metrics", "", "dump a JSON telemetry snapshot on exit to this file (- for stdout)")
		progress   = fs.Bool("progress", false, "print periodic campaign progress to stderr")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctor, ok := workloads[*name]
	if !ok {
		fmt.Fprintf(stderr, "racehunt: unknown workload %q\n", *name)
		return 2
	}
	model, err := memmodel.Parse(*modelName)
	if err != nil {
		fmt.Fprintf(stderr, "racehunt: %v\n", err)
		return 2
	}
	pairing := memmodel.ConservativePairing
	if *liberal {
		pairing = memmodel.LiberalPairing
	}

	if *metrics != "" {
		defer telemetry.EnableDefault()()
	}
	stopProfiles, err := telemetry.StartProfiles(*cpuprofile, *memprofile, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "racehunt: %v\n", err)
		return 2
	}
	defer stopProfiles()

	var opts campaign.Options
	if *progress {
		opts.Progress = func(done, total int) {
			// Report at most ~10 lines per campaign: every decile, plus
			// the final seed. total comes from the campaign, which applies
			// its own default when -seeds is 0.
			step := total / 10
			if step == 0 {
				step = 1
			}
			if done%step == 0 || done == total {
				fmt.Fprintf(stderr, "racehunt: progress %d/%d executions (%d%%)\n",
					done, total, 100*done/total)
			}
		}
	}

	rep, err := campaign.RunWithOptions(campaign.Config{
		Workload:   ctor(),
		Model:      model,
		Seeds:      *seeds,
		RetireProb: *retireProb,
		Pairing:    pairing,
		Workers:    *workers,
	}, opts)
	if err != nil {
		fmt.Fprintf(stderr, "racehunt: %v\n", err)
		return 2
	}
	if err := rep.Render(stdout); err != nil {
		fmt.Fprintf(stderr, "racehunt: %v\n", err)
		return 2
	}
	if *metrics != "" {
		if err := telemetry.DumpDefault(*metrics, stdout); err != nil {
			fmt.Fprintf(stderr, "racehunt: %v\n", err)
			return 2
		}
	}
	if !rep.RaceFree() {
		return 1
	}
	return 0
}

// Command racehunt runs a detection campaign: many seeds of one workload
// on a weak memory model, post-mortem analysis of every execution, and an
// aggregated report of the static races found — how often each occurred,
// how often it was a first-partition (root-cause) race, and a seed to
// replay it with.
//
// Usage:
//
//	racehunt -workload buggy-counter -model WO -seeds 500
//	racehunt -workload buggy-counter -seeds 500 -progress -metrics -
//	racehunt -workload dekker -seeds 2000 -cpuprofile cpu.pprof
//	racehunt -workload buggy-counter -seeds 100000 -http 127.0.0.1:8077
//	racehunt -workload race-chain -seeds 100 -explain -html report.html -flight flight/
//
// With -explain, -html, or -flight the hunt replays the top race's
// example seed once more and explains that execution in full; the
// flight directory additionally holds one summary record per seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"weakrace/internal/campaign"
	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/obs"
	"weakrace/internal/provenance"
	"weakrace/internal/report"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

var workloads = map[string]func() *workload.Workload{
	"figure-1a":         workload.Figure1a,
	"figure-1b":         workload.Figure1b,
	"figure-2":          workload.Figure2,
	"locked-counter":    func() *workload.Workload { return workload.LockedCounter(4, 6, -1) },
	"buggy-counter":     func() *workload.Workload { return workload.LockedCounter(4, 6, 1) },
	"producer-consumer": func() *workload.Workload { return workload.ProducerConsumer(6, true) },
	"buggy-prodcons":    func() *workload.Workload { return workload.ProducerConsumer(6, false) },
	"race-chain":        func() *workload.Workload { return workload.RaceChain(4) },
	"dekker":            func() *workload.Workload { return workload.Dekker(3) },
	"random-racy": func() *workload.Workload {
		return workload.Random(workload.RandomParams{Seed: 1, UnlockedFraction: 0.4})
	},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("racehunt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name       = fs.String("workload", "buggy-counter", "workload to hunt in")
		modelName  = fs.String("model", "WO", "memory model")
		seeds      = fs.Int("seeds", 200, "number of executions")
		retireProb = fs.Float64("retire-prob", 0.15, "background retirement probability")
		workers    = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		liberal    = fs.Bool("liberal-pairing", false, "treat Test&Set writes as releases")
		metrics    = fs.String("metrics", "", "dump a JSON telemetry snapshot on exit to this file (- for stdout)")
		progress   = fs.Bool("progress", false, "print periodic campaign progress to stderr")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		httpAddr   = fs.String("http", "", "serve the observability plane (metrics, status, live dashboard, pprof) on this address")
		explain    = fs.Bool("explain", false, "replay the top race's example seed and print witness explanations")
		htmlOut    = fs.String("html", "", "write an HTML race report for the top race's example seed to this file")
		flight     = fs.String("flight", "", "write a flight-recorder directory: per-seed summaries plus the replayed example in full")

		traceOn    = fs.Bool("trace", false, "record per-seed traces (simulate/analyze spans), tail-sampled for /trace/seed-N")
		wdP99X     = fs.Float64("watchdog-p99x", 0, "watchdog: fire when a seed exceeds this multiple of the running p99 (0 = off)")
		wdAbs      = fs.Duration("watchdog-abs", 0, "watchdog: fire when any single seed exceeds this duration (0 = off)")
		wdCooldown = fs.Duration("watchdog-cooldown", 0, "watchdog: minimum time between captures (0 = default 30s)")
		artifacts  = fs.String("artifacts", "", "watchdog capture directory: pprof snapshots + the offending seed's trace per firing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctor, ok := workloads[*name]
	if !ok {
		fmt.Fprintf(stderr, "racehunt: unknown workload %q\n", *name)
		return 2
	}
	model, err := memmodel.Parse(*modelName)
	if err != nil {
		fmt.Fprintf(stderr, "racehunt: %v\n", err)
		return 2
	}
	pairing := memmodel.ConservativePairing
	if *liberal {
		pairing = memmodel.LiberalPairing
	}

	if *metrics != "" {
		defer telemetry.EnableDefault()()
	}
	stopProfiles, err := telemetry.StartProfiles(*cpuprofile, *memprofile, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "racehunt: %v\n", err)
		return 2
	}
	defer stopProfiles()

	var opts campaign.Options
	var obsSrv *obs.Server
	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, obs.Options{Tool: "racehunt"})
		if err != nil {
			fmt.Fprintf(stderr, "racehunt: %v\n", err)
			return 2
		}
		defer srv.Close()
		obsSrv = srv
		opts.Publisher = srv.Publisher()
		fmt.Fprintf(stderr, "racehunt: observability plane on http://%s/\n", srv.Addr())
	}

	var tracer *telemetry.Tracer
	if *traceOn {
		tracer = telemetry.NewTracer(telemetry.TracerOptions{Registry: telemetry.Default()})
		opts.Tracer = tracer
		if obsSrv != nil {
			obsSrv.SetTraceSource(func(key string) ([]export.Record, bool) {
				ts, ok := tracer.Lookup(key)
				if !ok {
					return nil, false
				}
				return export.TraceRecords(ts), true
			})
		}
	}
	if *wdP99X > 0 || *wdAbs > 0 {
		// The relative SLO reads the campaign.seed phase histogram, so an
		// armed watchdog keeps telemetry collection on for the run.
		defer telemetry.EnableDefault()()
		wdog := obs.NewWatchdog(obs.WatchdogOptions{
			Publisher:   opts.Publisher,
			Dir:         *artifacts,
			P99Multiple: *wdP99X,
			Absolute:    *wdAbs,
			Cooldown:    *wdCooldown,
			TraceFor: func(key string) ([]export.Record, bool) {
				ts, ok := tracer.Lookup(key)
				if !ok {
					return nil, false
				}
				return export.TraceRecords(ts), true
			},
		})
		opts.Watchdog = wdog
		wdog.Start()
		defer wdog.Stop()
		if obsSrv != nil {
			obsSrv.AttachWatchdog(wdog)
		}
		fmt.Fprintf(stderr, "racehunt: watchdog armed (p99x=%g abs=%v artifacts=%q)\n",
			*wdP99X, *wdAbs, *artifacts)
	}
	if *progress {
		// Report ~10 lines per campaign: the campaign coalesces the
		// callback to deciles (with a two-second heartbeat on slow
		// workloads) and guarantees the final call, so every invocation
		// prints.
		opts.ProgressEvery = *seeds / 10
		opts.ProgressInterval = 2 * time.Second
		opts.Progress = func(done, total int) {
			fmt.Fprintf(stderr, "racehunt: progress %d/%d executions (%d%%)\n",
				done, total, 100*done/total)
		}
	}

	var fr *export.Recorder
	if *flight != "" {
		fr = export.NewRecorder()
		opts.Flight = fr
	}

	cfg := campaign.Config{
		Workload:   ctor(),
		Model:      model,
		Seeds:      *seeds,
		RetireProb: *retireProb,
		Pairing:    pairing,
		Workers:    *workers,
	}
	rep, err := campaign.RunWithOptions(cfg, opts)
	if err != nil {
		fmt.Fprintf(stderr, "racehunt: %v\n", err)
		return 2
	}
	if err := rep.Render(stdout); err != nil {
		fmt.Fprintf(stderr, "racehunt: %v\n", err)
		return 2
	}
	if *explain || *htmlOut != "" || fr != nil {
		if code := explainExample(cfg, rep, *explain, *htmlOut, fr, stdout, stderr); code != 0 {
			return code
		}
	}
	if fr != nil {
		if err := fr.WriteDir(*flight); err != nil {
			fmt.Fprintf(stderr, "racehunt: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "racehunt: flight recording written to %s\n", *flight)
	}
	if *metrics != "" {
		if err := telemetry.DumpDefault(*metrics, stdout); err != nil {
			fmt.Fprintf(stderr, "racehunt: %v\n", err)
			return 2
		}
	}
	if !rep.RaceFree() {
		return 1
	}
	return 0
}

// explainExample replays the campaign's top race (most frequent; its
// example seed prefers a first-partition occurrence) and explains that
// one execution in full: text witnesses to stdout under -explain, an
// HTML report under -html, and the full structural log into the flight
// recorder when one is attached. A race-free campaign has nothing to
// explain; that is a note, not an error.
func explainExample(cfg campaign.Config, rep *campaign.Report, explain bool, htmlOut string, fr *export.Recorder, stdout, stderr io.Writer) int {
	if rep.RaceFree() {
		fmt.Fprintln(stderr, "racehunt: no data races in any execution; nothing to explain")
		return 0
	}
	seed := rep.Races[0].ExampleSeed
	r, err := sim.Run(cfg.Workload.Prog, sim.Config{
		Model: cfg.Model, Seed: seed,
		RetireProb: cfg.RetireProb,
		InitMemory: cfg.Workload.InitMemory,
	})
	if err != nil {
		fmt.Fprintf(stderr, "racehunt: replay seed %d: %v\n", seed, err)
		return 2
	}
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{Pairing: cfg.Pairing, Flight: fr})
	if err != nil {
		fmt.Fprintf(stderr, "racehunt: replay seed %d: %v\n", seed, err)
		return 2
	}
	ex := provenance.NewExplainer(a)
	if explain {
		fmt.Fprintf(stdout, "replay of seed %d (top race's example):\n", seed)
		if err := report.RenderExplanations(stdout, ex); err != nil {
			fmt.Fprintf(stderr, "racehunt: %v\n", err)
			return 2
		}
	}
	if htmlOut != "" {
		f, err := os.Create(htmlOut)
		if err == nil {
			err = report.RenderHTML(f, ex)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "racehunt: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "racehunt: HTML report for seed %d written to %s\n", seed, htmlOut)
	}
	return 0
}

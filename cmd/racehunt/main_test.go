package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCleanWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	got := run([]string{"-workload", "locked-counter", "-seeds", "20"}, &out, &errb)
	if got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	if !strings.Contains(out.String(), "no data races") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunBuggyWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	got := run([]string{"-workload", "buggy-counter", "-seeds", "25", "-workers", "2"}, &out, &errb)
	if got != 1 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	if !strings.Contains(out.String(), "replay") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunLiberalPairing(t *testing.T) {
	var out, errb bytes.Buffer
	// tas-publish isn't in racehunt's catalog; race-chain is racy under
	// both policies — just check the flag parses and runs.
	got := run([]string{"-workload", "race-chain", "-seeds", "10", "-liberal-pairing"}, &out, &errb)
	if got != 1 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "nope"},
		{"-model", "PSO"},
		{"-bogus"},
	} {
		var out, errb bytes.Buffer
		if got := run(args, &out, &errb); got != 2 {
			t.Fatalf("args %v: exit = %d, want 2", args, got)
		}
	}
}

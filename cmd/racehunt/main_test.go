package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
)

func TestRunCleanWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	got := run([]string{"-workload", "locked-counter", "-seeds", "20"}, &out, &errb)
	if got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	if !strings.Contains(out.String(), "no data races") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunBuggyWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	got := run([]string{"-workload", "buggy-counter", "-seeds", "25", "-workers", "2"}, &out, &errb)
	if got != 1 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	if !strings.Contains(out.String(), "replay") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunLiberalPairing(t *testing.T) {
	var out, errb bytes.Buffer
	// tas-publish isn't in racehunt's catalog; race-chain is racy under
	// both policies — just check the flag parses and runs.
	got := run([]string{"-workload", "race-chain", "-seeds", "10", "-liberal-pairing"}, &out, &errb)
	if got != 1 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
}

// TestRunMetricsAndProgress is the observability acceptance test: a
// 100-seed campaign with -metrics - -progress prints periodic progress to
// stderr and a JSON telemetry snapshot (per-phase durations, nonzero
// sim/graph/SCC counters) to stdout.
func TestRunMetricsAndProgress(t *testing.T) {
	var out, errb bytes.Buffer
	got := run([]string{
		"-workload", "buggy-counter", "-model", "WO", "-seeds", "100",
		"-metrics", "-", "-progress",
	}, &out, &errb)
	if got != 1 {
		t.Fatalf("exit = %d, want 1 (races found); stderr: %s", got, errb.String())
	}

	// Progress went to stderr: one line per decile plus the final seed.
	lines := 0
	for _, ln := range strings.Split(errb.String(), "\n") {
		if strings.HasPrefix(ln, "racehunt: progress ") {
			lines++
		}
	}
	if lines < 5 {
		t.Fatalf("want >= 5 progress lines on stderr, got %d:\n%s", lines, errb.String())
	}
	if !strings.Contains(errb.String(), "progress 100/100 executions (100%)") {
		t.Fatalf("missing final progress line:\n%s", errb.String())
	}

	// Stdout carries the campaign report followed by the JSON snapshot.
	stdout := out.String()
	if !strings.Contains(stdout, "campaign:") {
		t.Fatalf("campaign report missing:\n%s", stdout)
	}
	jsonStart := strings.Index(stdout, "\n{")
	if jsonStart < 0 {
		t.Fatalf("no JSON snapshot on stdout:\n%s", stdout)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(stdout[jsonStart:]), &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v\n%s", err, stdout[jsonStart:])
	}
	for _, name := range []string{
		"campaign.executions",
		"detect.analyses",
		"detect.events",
		"detect.races",
		"detect.scc.components",
		"detect.vc_builds",
		"detect.vc_window_queries",
		telemetry.Name("sim.runs", "model", "WO"),
		telemetry.Name("sim.steps", "model", "WO"),
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, snap.Counters[name])
		}
	}
	if snap.Counters["campaign.executions"] != 100 {
		t.Errorf("campaign.executions = %d, want 100", snap.Counters["campaign.executions"])
	}
	for _, phase := range []string{"campaign.run", "campaign.seed", "sim.run", "detect.analyze"} {
		p, ok := snap.Phases[phase]
		if !ok || p.Count == 0 || p.TotalNS <= 0 {
			t.Errorf("phase %q missing or empty: %+v", phase, p)
		}
	}
}

// TestRunMetricsToFile: -metrics with a path writes the snapshot there.
func TestRunMetricsToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out, errb bytes.Buffer
	got := run([]string{
		"-workload", "locked-counter", "-seeds", "10", "-metrics", path,
	}, &out, &errb)
	if got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	if strings.Contains(out.String(), `"counters"`) {
		t.Fatal("snapshot leaked to stdout when a file path was given")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["campaign.executions"] != 10 {
		t.Fatalf("campaign.executions = %d, want 10", snap.Counters["campaign.executions"])
	}
}

// TestRunProfiles: the pprof hooks produce non-empty profile files.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	got := run([]string{
		"-workload", "locked-counter", "-seeds", "10",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &out, &errb)
	if got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "nope"},
		{"-model", "PSO"},
		{"-bogus"},
	} {
		var out, errb bytes.Buffer
		if got := run(args, &out, &errb); got != 2 {
			t.Fatalf("args %v: exit = %d, want 2", args, got)
		}
	}
}

// TestRunStdoutPipeClean: the campaign report (and witness explanations)
// are the tool's product and go to stdout; progress and every other
// diagnostic goes to stderr, so `racehunt ... | tee report.txt` stays
// clean. Every diagnostic line carries the "racehunt:" prefix — none may
// appear on stdout.
func TestRunStdoutPipeClean(t *testing.T) {
	var out, errb bytes.Buffer
	got := run([]string{"-workload", "race-chain", "-seeds", "30", "-progress", "-explain"}, &out, &errb)
	if got != 1 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "racehunt:") {
			t.Fatalf("diagnostic leaked to stdout: %q", line)
		}
	}
	if !strings.Contains(errb.String(), "progress") {
		t.Fatalf("progress missing from stderr:\n%s", errb.String())
	}
	if !strings.Contains(out.String(), "campaign:") || !strings.Contains(out.String(), "witnesses for") {
		t.Fatalf("stdout lacks report or explanations:\n%s", out.String())
	}
}

// TestRunProvenanceFlags: -flight writes one seed summary per seed plus
// the replayed example's full log; -html writes the example's report.
func TestRunProvenanceFlags(t *testing.T) {
	dir := t.TempDir()
	htmlPath := filepath.Join(dir, "hunt.html")
	flightDir := filepath.Join(dir, "flight")
	var out, errb bytes.Buffer
	got := run([]string{"-workload", "race-chain", "-seeds", "15", "-html", htmlPath, "-flight", flightDir}, &out, &errb)
	if got != 1 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	data, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "DATA RACES DETECTED") {
		t.Fatal("HTML report lacks verdict")
	}
	f, err := os.Open(filepath.Join(flightDir, export.FlightLogName))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := export.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	seeds, metas := 0, 0
	for _, rec := range recs {
		switch rec.Kind {
		case export.KindSeed:
			seeds++
		case export.KindMeta:
			metas++
		}
	}
	if seeds != 15 {
		t.Fatalf("%d seed summaries for 15 seeds", seeds)
	}
	if metas != 1 {
		t.Fatalf("%d full analysis dumps; want exactly the replayed example", metas)
	}

	// A race-free hunt has nothing to replay: still succeeds, notes it.
	out.Reset()
	errb.Reset()
	if got := run([]string{"-workload", "locked-counter", "-seeds", "10", "-explain"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	if !strings.Contains(errb.String(), "nothing to explain") {
		t.Fatalf("stderr missing race-free note:\n%s", errb.String())
	}
}

// TestRunHTTPPlane: -http mounts the observability plane for the run
// and the campaign still completes; a bad address is a usage error.
func TestRunHTTPPlane(t *testing.T) {
	defer func() {
		// obs.Serve enables the process-default registry; put it back so
		// other tests see the usual disabled default.
		telemetry.Default().SetEnabled(false)
		telemetry.Default().Reset()
	}()
	var out, errb bytes.Buffer
	got := run([]string{
		"-workload", "buggy-counter", "-seeds", "30", "-http", "127.0.0.1:0",
	}, &out, &errb)
	if got != 1 {
		t.Fatalf("exit = %d, want 1 (races found); stderr: %s", got, errb.String())
	}
	if !strings.Contains(errb.String(), "observability plane on http://127.0.0.1:") {
		t.Fatalf("no plane address announced:\n%s", errb.String())
	}

	out.Reset()
	errb.Reset()
	if got := run([]string{"-seeds", "5", "-http", "not-an-address"}, &out, &errb); got != 2 {
		t.Fatalf("bad -http addr: exit = %d, want 2", got)
	}
}

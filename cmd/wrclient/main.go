// Command wrclient is the load generator and soak harness for wrserve:
// it simulates random weak-memory executions locally and streams them
// to a daemon over many concurrent connections, then reports the
// aggregate. With -oracle it re-detects every execution in-process and
// demands the daemon's race list match byte for byte — the end-to-end
// correctness assertion the CI soak runs under the race detector.
//
// Usage:
//
//	wrclient -addr 127.0.0.1:7421 -streams 100 -concurrency 16
//	wrclient -addr 127.0.0.1:7421 -streams 100 -oracle
//	wrclient -addr 127.0.0.1:7421 -streams 60 -corpus-seed 1 -oracle
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"weakrace/internal/onthefly"
	"weakrace/internal/sim"
	"weakrace/internal/stream"
	"weakrace/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wrclient", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:7421", "wrserve ingest address")
		streams     = fs.Int("streams", 20, "number of executions to stream")
		concurrency = fs.Int("concurrency", 8, "streams in flight at once")
		corpusSeed  = fs.Int64("corpus-seed", 1, "corpus generator seed (1 = the standing 60-trace corpus prefix)")
		batch       = fs.Int("batch", 256, "operations per wire batch")
		delay       = fs.Duration("delay", 0, "pause between batches (keeps streams long-lived for soaks)")
		timeout     = fs.Duration("timeout", 2*time.Minute, "per-stream timeout, dial to summary")
		oracle      = fs.Bool("oracle", false, "re-detect locally and require byte-identical race lists")
		verbose     = fs.Bool("v", false, "print one line per stream")
		traceOn     = fs.Bool("trace", true, "stamp a trace ID into each stream's WRS1 header")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *streams <= 0 {
		fmt.Fprintln(stderr, "wrclient: -streams must be positive")
		return 2
	}
	if *concurrency <= 0 {
		*concurrency = 1
	}

	corpus := workload.Corpus(*streams, *corpusSeed)
	var (
		wg         sync.WaitGroup
		sem        = make(chan struct{}, *concurrency)
		mu         sync.Mutex // guards stdout/stderr lines
		failures   atomic.Int64
		mismatches atomic.Int64
		totalOps   atomic.Int64
		totalRaces atomic.Int64

		// Latency summary: every batch's wire-write duration and every
		// stream's dial-to-summary round-trip, quantiled on exit.
		latMu      sync.Mutex
		batchLatNS []int64
		streamRTNS []int64
	)
	start := time.Now()
	for i, c := range corpus {
		wg.Add(1)
		go func(i int, c workload.CorpusEntry) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			r, err := sim.Run(c.Workload.Prog, sim.Config{Model: c.Model, Seed: c.Seed, InitMemory: c.Workload.InitMemory})
			if err != nil {
				mu.Lock()
				fmt.Fprintf(stderr, "wrclient: stream %d: simulate: %v\n", i, err)
				mu.Unlock()
				failures.Add(1)
				return
			}
			// The trace ID correlates this stream across the client's
			// latency lines, the server's /trace/{stream}, and any
			// watchdog artifacts. Deterministic per (run, stream).
			var traceID uint64
			if *traceOn {
				traceID = uint64(start.UnixNano())<<16 | uint64(i)&0xffff
				if traceID == 0 {
					traceID = 1
				}
			}
			var myBatches []int64
			sendStart := time.Now()
			sum, err := stream.Send(*addr, r.Exec, stream.SendOptions{
				BatchSize: *batch, Delay: *delay, Timeout: *timeout,
				TraceID: traceID,
				OnBatch: func(_ int, d time.Duration) {
					myBatches = append(myBatches, int64(d))
				},
			})
			rt := time.Since(sendStart)
			latMu.Lock()
			batchLatNS = append(batchLatNS, myBatches...)
			streamRTNS = append(streamRTNS, int64(rt))
			latMu.Unlock()
			if err != nil {
				mu.Lock()
				fmt.Fprintf(stderr, "wrclient: stream %d (%s, %v, seed %d): %v\n",
					i, c.Workload.Name, c.Model, c.Seed, err)
				mu.Unlock()
				failures.Add(1)
				return
			}
			totalOps.Add(int64(sum.Events))
			totalRaces.Add(int64(sum.RaceCount))
			if *verbose {
				traced := ""
				if sum.TraceID != "" {
					traced = "  trace " + sum.TraceID
					if sum.TraceKept {
						traced += " (kept)"
					}
				}
				mu.Lock()
				fmt.Fprintf(stdout, "stream %3d  %-24s %-5v seed %4d  %5d events  %3d races%s\n",
					i, c.Workload.Name, c.Model, c.Seed, sum.Events, sum.RaceCount, traced)
				mu.Unlock()
			}
			if *oracle {
				want := localRaces(r.Exec)
				if !reflect.DeepEqual(sum.Races, want) {
					mu.Lock()
					fmt.Fprintf(stderr, "wrclient: stream %d (%s, %v, seed %d): ORACLE MISMATCH\n  server: %v\n  local:  %v\n",
						i, c.Workload.Name, c.Model, c.Seed, sum.Races, want)
					mu.Unlock()
					mismatches.Add(1)
				}
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Fprintf(stdout, "wrclient: %d streams to %s in %v: %d events, %d races, %d failures\n",
		*streams, *addr, elapsed.Round(time.Millisecond), totalOps.Load(), totalRaces.Load(), failures.Load())
	if len(streamRTNS) > 0 {
		fmt.Fprintf(stdout, "wrclient: latency: batch write p50=%v p99=%v  stream round-trip p50=%v p99=%v\n",
			quantileNS(batchLatNS, 0.50), quantileNS(batchLatNS, 0.99),
			quantileNS(streamRTNS, 0.50), quantileNS(streamRTNS, 0.99))
	}
	if *oracle {
		if n := mismatches.Load(); n > 0 {
			fmt.Fprintf(stderr, "wrclient: %d/%d streams disagree with the local detector\n", n, *streams)
			return 1
		}
		fmt.Fprintf(stdout, "wrclient: oracle check passed: all %d summaries byte-identical to local detection\n", *streams)
	}
	if failures.Load() > 0 {
		return 1
	}
	return 0
}

// quantileNS returns the q-th quantile of the observed durations
// (nearest-rank over the sorted samples), rounded for display.
func quantileNS(ns []int64, q float64) time.Duration {
	if len(ns) == 0 {
		return 0
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return time.Duration(sorted[idx]).Round(time.Microsecond)
}

// localRaces renders an execution's unbounded on-the-fly race list the
// way wrserve does: canonical strings, sorted.
func localRaces(e *sim.Execution) []string {
	res := onthefly.Detect(e, onthefly.Options{})
	races := make([]string, 0, len(res.Races))
	for ll := range res.Races {
		races = append(races, ll.String())
	}
	sort.Strings(races)
	return races
}

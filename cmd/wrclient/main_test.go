package main

import (
	"bytes"
	"strings"
	"testing"

	"weakrace/internal/stream"
	"weakrace/internal/telemetry"
)

func startServer(t *testing.T, opts stream.Options) *stream.Server {
	t.Helper()
	opts.Addr = "127.0.0.1:0"
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	s, err := stream.Serve(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// The full load-generator round trip with the oracle on: every streamed
// summary must match local detection byte for byte.
func TestClientOracleAgainstExactServer(t *testing.T) {
	s := startServer(t, stream.Options{})
	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", s.Addr(), "-streams", "12", "-concurrency", "4",
		"-batch", "16", "-oracle",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "oracle check passed: all 12 summaries") {
		t.Fatalf("no oracle pass line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 failures") {
		t.Fatalf("failures reported:\n%s", out.String())
	}
}

// Against a windowed server the oracle can legitimately disagree (the
// window trades races for memory), but plain streaming must still
// succeed with zero failures.
func TestClientAgainstWindowedServer(t *testing.T) {
	s := startServer(t, stream.Options{Window: 32})
	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", s.Addr(), "-streams", "6", "-v",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 failures") {
		t.Fatalf("failures reported:\n%s", out.String())
	}
	if got := strings.Count(out.String(), "\n"); got < 7 { // 6 verbose lines + summary
		t.Fatalf("verbose output too short (%d lines):\n%s", got, out.String())
	}
}

// A dead server is a clean failure, not a hang or a panic.
func TestClientServerGone(t *testing.T) {
	s := startServer(t, stream.Options{})
	addr := s.Addr()
	s.Close()
	var out, errb bytes.Buffer
	code := run([]string{"-addr", addr, "-streams", "2", "-timeout", "2s"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "2 failures") {
		t.Fatalf("failures not counted:\n%s", out.String())
	}
}

func TestClientBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-streams", "0"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

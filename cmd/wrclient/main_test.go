package main

import (
	"bytes"
	"strings"
	"testing"

	"weakrace/internal/stream"
	"weakrace/internal/telemetry"
)

func startServer(t *testing.T, opts stream.Options) *stream.Server {
	t.Helper()
	opts.Addr = "127.0.0.1:0"
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	s, err := stream.Serve(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// The full load-generator round trip with the oracle on: every streamed
// summary must match local detection byte for byte.
func TestClientOracleAgainstExactServer(t *testing.T) {
	s := startServer(t, stream.Options{})
	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", s.Addr(), "-streams", "12", "-concurrency", "4",
		"-batch", "16", "-oracle",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "oracle check passed: all 12 summaries") {
		t.Fatalf("no oracle pass line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 failures") {
		t.Fatalf("failures reported:\n%s", out.String())
	}
}

// Against a windowed server the oracle can legitimately disagree (the
// window trades races for memory), but plain streaming must still
// succeed with zero failures.
func TestClientAgainstWindowedServer(t *testing.T) {
	s := startServer(t, stream.Options{Window: 32})
	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", s.Addr(), "-streams", "6", "-v",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 failures") {
		t.Fatalf("failures reported:\n%s", out.String())
	}
	if got := strings.Count(out.String(), "\n"); got < 7 { // 6 verbose lines + summary
		t.Fatalf("verbose output too short (%d lines):\n%s", got, out.String())
	}
}

// A dead server is a clean failure, not a hang or a panic.
func TestClientServerGone(t *testing.T) {
	s := startServer(t, stream.Options{})
	addr := s.Addr()
	s.Close()
	var out, errb bytes.Buffer
	code := run([]string{"-addr", addr, "-streams", "2", "-timeout", "2s"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "2 failures") {
		t.Fatalf("failures not counted:\n%s", out.String())
	}
}

func TestClientBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-streams", "0"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// The exit summary must include the batch/round-trip latency quantile
// line whenever at least one stream completed.
func TestClientLatencySummary(t *testing.T) {
	s := startServer(t, stream.Options{})
	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", s.Addr(), "-streams", "4", "-concurrency", "2", "-batch", "32",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, errb.String())
	}
	line := ""
	for _, l := range strings.Split(out.String(), "\n") {
		if strings.Contains(l, "latency:") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no latency summary line:\n%s", out.String())
	}
	for _, want := range []string{"batch write p50=", "p99=", "stream round-trip p50="} {
		if !strings.Contains(line, want) {
			t.Fatalf("latency line missing %q: %s", want, line)
		}
	}
	if strings.Contains(line, "p50=0s  p99=0s") {
		t.Fatalf("latency quantiles all zero: %s", line)
	}
}

// With -trace the client stamps trace IDs: a traced server keeps every
// racy stream and the verbose lines carry the trace IDs.
func TestClientTraceStamping(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Registry: reg, MinSlowSamples: 1 << 30})
	s := startServer(t, stream.Options{Registry: reg, Tracer: tracer})
	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", s.Addr(), "-streams", "6", "-concurrency", "2", "-v",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "trace ") {
		t.Fatalf("verbose output has no trace IDs:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "(kept)") {
		t.Fatalf("no kept traces across the racy corpus prefix:\n%s", out.String())
	}
	if len(tracer.Keys()) == 0 {
		t.Fatal("server tracer kept nothing")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weakrace/internal/telemetry"
	"weakrace/internal/trace"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-list"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	for _, want := range []string{"figure-1a", "figure-2", "dekker", "write-burst"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSimulateFormats(t *testing.T) {
	dir := t.TempDir()
	for _, c := range []struct {
		format string
		check  func(path string) error
	}{
		{"binary", func(p string) error { _, err := trace.ReadFile(p); return err }},
		{"text", func(p string) error {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = trace.DecodeText(f)
			return err
		}},
		{"fileset", func(p string) error { _, err := trace.ReadFileSet(p); return err }},
	} {
		t.Run(c.format, func(t *testing.T) {
			path := filepath.Join(dir, "out-"+c.format)
			var out, errb bytes.Buffer
			args := []string{"-workload", "figure-1b", "-model", "RCsc", "-seed", "2",
				"-format", c.format, "-o", path}
			if got := run(args, &out, &errb); got != 0 {
				t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
			}
			if !strings.Contains(out.String(), "trace written to") {
				t.Fatalf("output:\n%s", out.String())
			}
			if err := c.check(path); err != nil {
				t.Fatalf("written trace unreadable: %v", err)
			}
		})
	}
}

func TestRunAssembledFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.wrasm")
	if err := os.WriteFile(src, []byte(
		"program \"mini\"\nlocations 1\nregisters 1\nthread T:\nwrite [0], #1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "mini.wrt")
	var ob, eb bytes.Buffer
	if got := run([]string{"-file", src, "-o", out}, &ob, &eb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, eb.String())
	}
	if !strings.Contains(ob.String(), `simulated "mini"`) {
		t.Fatalf("output:\n%s", ob.String())
	}
}

func TestRunDisasmAndDump(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-workload", "figure-1a", "-disasm"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d", got)
	}
	if !strings.Contains(out.String(), "thread 0 (P1):") {
		t.Fatalf("disassembly missing:\n%s", out.String())
	}
	out.Reset()
	path := filepath.Join(t.TempDir(), "d.wrt")
	if got := run([]string{"-workload", "figure-1a", "-dump", "-o", path}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d", got)
	}
	if !strings.Contains(out.String(), "comp reads=") {
		t.Fatalf("dump missing:\n%s", out.String())
	}
}

// TestRunMetrics: -metrics <file> records simulator and codec counters
// for the run.
func TestRunMetrics(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	var out, errb bytes.Buffer
	args := []string{"-workload", "figure-2", "-model", "WO", "-seed", "674",
		"-o", filepath.Join(dir, "f2.wrt"), "-metrics", metricsPath}
	if got := run(args, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		telemetry.Name("sim.runs", "model", "WO"),
		telemetry.Name("sim.steps", "model", "WO"),
		"trace.builds",
		"trace.encode.calls",
		"trace.encode.bytes",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, snap.Counters[name])
		}
	}
	if snap.Phases["sim.run"].Count != 1 {
		t.Errorf("sim.run phase count = %d, want 1", snap.Phases["sim.run"].Count)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown workload", []string{"-workload", "nope"}},
		{"unknown model", []string{"-model", "PSO"}},
		{"unknown format", []string{"-format", "yaml", "-o", filepath.Join(t.TempDir(), "x")}},
		{"missing file", []string{"-file", "/nonexistent.wrasm"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(c.args, &out, &errb); got == 0 {
				t.Fatalf("exit = 0, want failure (stdout: %s)", out.String())
			}
			if errb.Len() == 0 {
				t.Fatal("no error message")
			}
		})
	}
	var out, errb bytes.Buffer
	if got := run([]string{"-bogus"}, &out, &errb); got != 2 {
		t.Fatalf("bad flag exit = %d, want 2", got)
	}
}

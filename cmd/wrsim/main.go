// Command wrsim runs a built-in workload (or an assembled .wrasm program)
// on a chosen memory model and writes the instrumentation trace to a file
// for post-mortem analysis with racedetect.
//
// Usage:
//
//	wrsim -workload figure-2 -model WO -seed 674 -o fig2.wrt
//	wrsim -file myprog.wrasm -model RCsc
//	wrsim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// workloads maps CLI names to constructors; parameterized workloads use
// representative defaults.
var workloads = map[string]func() *workload.Workload{
	"figure-1a":         workload.Figure1a,
	"figure-1b":         workload.Figure1b,
	"figure-2":          workload.Figure2,
	"locked-counter":    func() *workload.Workload { return workload.LockedCounter(4, 6, -1) },
	"buggy-counter":     func() *workload.Workload { return workload.LockedCounter(4, 6, 1) },
	"producer-consumer": func() *workload.Workload { return workload.ProducerConsumer(6, true) },
	"buggy-prodcons":    func() *workload.Workload { return workload.ProducerConsumer(6, false) },
	"barrier":           func() *workload.Workload { return workload.BarrierPhases(4) },
	"race-chain":        func() *workload.Workload { return workload.RaceChain(4) },
	"dekker":            func() *workload.Workload { return workload.Dekker(3) },
	"flag-handoff":      func() *workload.Workload { return workload.FlagHandoff(4) },
	"tas-publish":       func() *workload.Workload { return workload.TasPublish(4) },
	"write-burst":       func() *workload.Workload { return workload.WriteBurst(4, 12, 4) },
	"random":            func() *workload.Workload { return workload.Random(workload.RandomParams{Seed: 1}) },
	"random-racy": func() *workload.Workload {
		return workload.Random(workload.RandomParams{Seed: 1, UnlockedFraction: 0.4})
	},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wrsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name       = fs.String("workload", "figure-2", "workload to run (see -list)")
		file       = fs.String("file", "", "assemble and run a program file instead of a built-in workload")
		modelName  = fs.String("model", "WO", "memory model: SC, WO, RCsc, DRF0, DRF1, TSO")
		seed       = fs.Int64("seed", 0, "scheduler seed")
		retireProb = fs.Float64("retire-prob", 0.3, "per-step probability of background retirement")
		out        = fs.String("o", "", "trace output file (default: <workload>-<model>-<seed>.wrt)")
		format     = fs.String("format", "binary", "trace file format: binary, text, or fileset (per-processor files in a directory)")
		dump       = fs.Bool("dump", false, "also dump the trace in human-readable form to stdout")
		disasm     = fs.Bool("disasm", false, "print the program disassembly and exit")
		list       = fs.Bool("list", false, "list available workloads and exit")
		metrics    = fs.String("metrics", "", "dump a JSON telemetry snapshot on exit to this file (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(formatStr string, a ...any) int {
		fmt.Fprintf(stderr, "wrsim: "+formatStr+"\n", a...)
		return 1
	}
	if *metrics != "" {
		defer telemetry.EnableDefault()()
	}

	if *list {
		names := make([]string, 0, len(workloads))
		for n := range workloads {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(stdout, "%-18s %s\n", n, workloads[n]().Description)
		}
		return 0
	}

	var w *workload.Workload
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return fail("%v", err)
		}
		prog, initMem, err := program.Assemble(f)
		f.Close()
		if err != nil {
			return fail("%v", err)
		}
		w = &workload.Workload{
			Name:        prog.Name,
			Description: fmt.Sprintf("assembled from %s", *file),
			Prog:        prog,
			InitMemory:  initMem,
		}
		*name = prog.Name
	} else {
		ctor, ok := workloads[*name]
		if !ok {
			return fail("unknown workload %q (use -list)", *name)
		}
		w = ctor()
	}

	if *disasm {
		fmt.Fprint(stdout, w.Prog.Disassemble())
		return 0
	}

	model, err := memmodel.Parse(*modelName)
	if err != nil {
		return fail("%v", err)
	}
	res, err := sim.Run(w.Prog, sim.Config{
		Model: model, Seed: *seed, RetireProb: *retireProb,
		InitMemory: w.InitMemory,
	})
	if err != nil {
		return fail("%v", err)
	}
	if !res.Completed {
		return fail("execution did not complete (spin loop starved?); try another seed")
	}
	tr := trace.FromExecution(res.Exec)

	path := *out
	if path == "" {
		ext := "wrt"
		switch *format {
		case "text":
			ext = "wrtx"
		case "fileset":
			ext = "d"
		}
		path = fmt.Sprintf("%s-%s-%d.%s", strings.ReplaceAll(*name, "/", "_"), model, *seed, ext)
	}
	switch *format {
	case "fileset":
		if err := trace.WriteFileSet(path, tr); err != nil {
			return fail("%v", err)
		}
	case "binary":
		if err := trace.WriteFile(path, tr); err != nil {
			return fail("%v", err)
		}
	case "text":
		f, err := os.Create(path)
		if err != nil {
			return fail("%v", err)
		}
		if err := trace.EncodeText(f, tr); err != nil {
			f.Close()
			return fail("%v", err)
		}
		if err := f.Close(); err != nil {
			return fail("%v", err)
		}
	default:
		return fail("unknown format %q (want binary, text or fileset)", *format)
	}
	fmt.Fprintf(stdout, "simulated %q on %s (seed %d): %d ops, %d events, makespan %d cycles\n",
		w.Name, model, *seed, res.Exec.NumOps(), tr.NumEvents(), res.Makespan())
	fmt.Fprintf(stdout, "trace written to %s\n", path)
	if *dump {
		if err := trace.Dump(stdout, tr); err != nil {
			return fail("%v", err)
		}
	}
	if *metrics != "" {
		if err := telemetry.DumpDefault(*metrics, stdout); err != nil {
			return fail("%v", err)
		}
	}
	return 0
}

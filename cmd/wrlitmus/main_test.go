package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"weakrace/internal/telemetry"
)

func TestRunModels(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-models"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	for _, want := range []string{"SC", "TSO", "drains@release"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("models output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSingleTest(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-test", "SB", "-seeds", "300"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	if !strings.Contains(out.String(), "SB") || !strings.Contains(out.String(), "(allowed)") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunFullMatrix(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-seeds", "1200"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	for _, want := range []string{"MP+sync", "IRIW", "WRC", "TAS"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("matrix missing %q", want)
		}
	}
}

// TestRunMetrics: -metrics - appends a snapshot with per-model simulator
// counters after the matrix.
func TestRunMetrics(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-test", "SB", "-seeds", "100", "-metrics", "-"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	jsonStart := strings.Index(out.String(), "\n{")
	if jsonStart < 0 {
		t.Fatalf("no JSON snapshot on stdout:\n%s", out.String())
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(out.String()[jsonStart:]), &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	// The SB cell runs on every model; each contributes sim.runs.
	for _, model := range []string{"SC", "WO", "TSO"} {
		name := telemetry.Name("sim.runs", "model", model)
		if snap.Counters[name] != 100 {
			t.Errorf("%s = %d, want 100", name, snap.Counters[name])
		}
	}
	if snap.Phases["sim.run"].Count == 0 {
		t.Error("sim.run phase has no observations")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-test", "NOPE"}, &out, &errb); got != 2 {
		t.Fatalf("unknown test: exit = %d", got)
	}
	if got := run([]string{"-bogus"}, &out, &errb); got != 2 {
		t.Fatalf("bad flag: exit = %d", got)
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunModels(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-models"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	for _, want := range []string{"SC", "TSO", "drains@release"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("models output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSingleTest(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-test", "SB", "-seeds", "300"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	if !strings.Contains(out.String(), "SB") || !strings.Contains(out.String(), "(allowed)") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunFullMatrix(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-seeds", "1200"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	for _, want := range []string{"MP+sync", "IRIW", "WRC", "TAS"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("matrix missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-test", "NOPE"}, &out, &errb); got != 2 {
		t.Fatalf("unknown test: exit = %d", got)
	}
	if got := run([]string{"-bogus"}, &out, &errb); got != 2 {
		t.Fatalf("bad flag: exit = %d", got)
	}
}

// Command wrlitmus runs the litmus-test catalog against every memory
// model and prints the allowed/observed matrix — executable documentation
// of which relaxations each simulated model exhibits.
//
// Usage:
//
//	wrlitmus                 # full matrix, 400 seeds per cell
//	wrlitmus -seeds 2000     # push harder on the rare outcomes
//	wrlitmus -test SB        # one test only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"weakrace/internal/litmus"
	"weakrace/internal/memmodel"
	"weakrace/internal/report"
	"weakrace/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wrlitmus", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seeds   = fs.Int("seeds", 400, "seeds per test/model cell")
		only    = fs.String("test", "", "run a single test by name (e.g. SB, MP, IRIW)")
		models  = fs.Bool("models", false, "print the model property matrix and exit")
		metrics = fs.String("metrics", "", "dump a JSON telemetry snapshot on exit to this file (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *metrics != "" {
		defer telemetry.EnableDefault()()
	}

	if *models {
		tbl := report.NewTable("Memory model properties",
			"model", "buffers data", "drains@acquire", "drains@release", "acq/rel distinct", "SC for all")
		for _, m := range memmodel.All {
			pr := memmodel.Describe(m)
			tbl.AddRow(pr.Model, pr.BuffersData, pr.DrainsAtAcquire, pr.DrainsAtRelease,
				pr.DistinguishesAcqRel, pr.GuaranteesSCForAll)
		}
		if err := tbl.Render(stdout); err != nil {
			fmt.Fprintf(stderr, "wrlitmus: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, "\nAll models guarantee sequential consistency to data-race-free programs.")
		return 0
	}

	tests := litmus.Catalog()
	if *only != "" {
		var filtered []*litmus.Test
		for _, t := range tests {
			if t.Name == *only {
				filtered = append(filtered, t)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(stderr, "wrlitmus: unknown test %q\n", *only)
			return 2
		}
		tests = filtered
	}

	header := []string{"test", "relaxed outcome"}
	for _, m := range memmodel.All {
		header = append(header, m.String())
	}
	tbl := report.NewTable(
		fmt.Sprintf("Litmus matrix (%d seeds per cell): relaxed outcome occurrences", *seeds),
		header...)
	failures := 0
	for _, t := range tests {
		cells := make([]any, 0, len(memmodel.All))
		for _, model := range memmodel.All {
			r, err := litmus.Run(t, model, *seeds)
			if err != nil {
				fmt.Fprintf(stderr, "wrlitmus: %v\n", err)
				return 2
			}
			cell := fmt.Sprintf("%d", r.Relaxed)
			if t.AllowedOn(model) {
				cell += " (allowed)"
			}
			if r.Forbidden() {
				cell += " FORBIDDEN!"
				failures++
			}
			if r.MissedExpected() {
				cell += " missing!"
				failures++
			}
			cells = append(cells, cell)
		}
		tbl.AddRow(append([]any{t.Name, t.Relaxed}, cells...)...)
	}
	if err := tbl.Render(stdout); err != nil {
		fmt.Fprintf(stderr, "wrlitmus: %v\n", err)
		return 2
	}
	fmt.Fprintln(stdout)
	for _, t := range tests {
		fmt.Fprintf(stdout, "%-10s %s\n", t.Name, t.Description)
	}
	if *metrics != "" {
		if err := telemetry.DumpDefault(*metrics, stdout); err != nil {
			fmt.Fprintf(stderr, "wrlitmus: %v\n", err)
			return 2
		}
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "wrlitmus: %d cells violated their model's guarantee\n", failures)
		return 1
	}
	return 0
}

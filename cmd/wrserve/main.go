// Command wrserve is the streaming race-detection daemon: a TCP ingest
// plane that accepts concurrent WRS1 event streams (one execution per
// connection), runs the incremental on-the-fly detector over each with
// bounded memory, and answers every stream with a JSON summary of the
// races found. The observability plane (dashboard, /metrics, /status,
// /events, pprof) and the per-stream /streams document are served over
// HTTP next to it.
//
// Usage:
//
//	wrserve -addr :7421 -http 127.0.0.1:8077
//	wrserve -addr :7421 -window 1024 -workers 8 -queue 16
//	wrserve -http :8077 -watchdog-stall 5s -artifacts ./artifacts
//
// With -window N the detector retires events more than N operations
// old, trading missed distant pairs for bounded memory; every stream
// that retires anything carries a replay seed in its summary so the
// execution can be re-analyzed post-mortem. -window 0 is exact.
//
// Tracing is on by default: every stream records per-batch spans
// (queue wait, detector feed, retire, race-emit), tail-sampled so only
// anomalous streams — racy, errored, truncated, or the slowest decile —
// keep their full timeline, retrievable at /trace/{stream} as flight
// JSONL or (?format=perfetto) a Chrome trace. The watchdog flags arm
// self-profiling: an SLO breach captures CPU/heap/goroutine profiles
// plus the offending stream's trace into -artifacts.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"time"

	"weakrace/internal/memmodel"
	"weakrace/internal/obs"
	"weakrace/internal/stream"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, stop))
}

// run starts the daemon and blocks until stop delivers. Tests pass a
// ready channel to learn the bound ingest and HTTP addresses, and close
// their own stop channel to shut the daemon down.
func run(args []string, stdout, stderr io.Writer, ready chan<- string, stop <-chan os.Signal) int {
	fs := flag.NewFlagSet("wrserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:7421", "TCP ingest address for WRS1 event streams")
		httpAddr = fs.String("http", "", "serve the observability plane plus /streams on this address")
		workers  = fs.Int("workers", 0, "detection worker-pool size (0 = GOMAXPROCS)")
		queue    = fs.Int("queue", 0, "per-stream pending-batch queue depth (0 = default 8)")
		window   = fs.Int("window", 0, "retire events more than this many operations old (0 = exact, unbounded)")
		history  = fs.Int("history", 0, "per-location access-history cap (0 = unbounded)")
		liberal  = fs.Bool("liberal-pairing", false, "treat Test&Set writes as releases")

		traceOn   = fs.Bool("trace", true, "record per-batch spans per stream, tail-sampled for /trace/{stream}")
		traceKeep = fs.Int("trace-keep", 0, "finished traces the tail sampler retains (0 = default 128)")

		wdP99X     = fs.Float64("watchdog-p99x", 0, "watchdog: fire when a batch feed exceeds this multiple of its running p99 (0 = off)")
		wdAbs      = fs.Duration("watchdog-abs", 0, "watchdog: fire when any single observation exceeds this duration (0 = off)")
		wdStall    = fs.Duration("watchdog-stall", 0, "watchdog: fire when a stream with queued batches makes no progress for this long (0 = off)")
		wdCooldown = fs.Duration("watchdog-cooldown", 0, "watchdog: minimum time between captures (0 = default 30s)")
		artifacts  = fs.String("artifacts", "", "watchdog capture directory: pprof snapshots + the offending stream's trace per firing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pairing := memmodel.ConservativePairing
	if *liberal {
		pairing = memmodel.LiberalPairing
	}
	wantWdog := *wdP99X > 0 || *wdAbs > 0 || *wdStall > 0

	opts := stream.Options{
		Addr:         *addr,
		Workers:      *workers,
		QueueDepth:   *queue,
		Window:       *window,
		HistoryLimit: *history,
		Pairing:      pairing,
		Registry:     telemetry.Default(),
	}

	var tracer *telemetry.Tracer
	if *traceOn {
		tracer = telemetry.NewTracer(telemetry.TracerOptions{
			Keep:     *traceKeep,
			Registry: telemetry.Default(),
		})
		opts.Tracer = tracer
	}

	var obsSrv *obs.Server
	var httpLn net.Listener
	if *httpAddr != "" {
		obsSrv = obs.NewServer(obs.Options{Tool: "wrserve"})
		opts.Publisher = obsSrv.Publisher()
	} else if !wantWdog {
		// No HTTP plane and no watchdog: nobody is scraping, keep the
		// hot path free. (The watchdog's relative SLO needs the phase
		// histograms, so an armed watchdog keeps collection on.)
		telemetry.Default().SetEnabled(false)
	} else {
		telemetry.Default().SetEnabled(true)
	}

	// srv is assigned before wdog.Start launches the stall poller, so
	// the closure reads it safely.
	var srv *stream.Server
	var wdog *obs.Watchdog
	if wantWdog {
		var pub *obs.Publisher
		if obsSrv != nil {
			pub = obsSrv.Publisher()
		}
		wdog = obs.NewWatchdog(obs.WatchdogOptions{
			Publisher:   pub,
			Dir:         *artifacts,
			P99Multiple: *wdP99X,
			Absolute:    *wdAbs,
			Stall:       *wdStall,
			Cooldown:    *wdCooldown,
			StallCheck: func(olderThan time.Duration) []obs.StallInfo {
				return srv.Stalled(olderThan)
			},
			TraceFor: func(key string) ([]export.Record, bool) {
				ts, ok := tracer.Lookup(key)
				if !ok {
					return nil, false
				}
				return export.TraceRecords(ts), true
			},
		})
		opts.Watchdog = wdog
	}

	srv, err := stream.Serve(opts)
	if err != nil {
		fmt.Fprintf(stderr, "wrserve: %v\n", err)
		return 2
	}
	defer srv.Close()
	fmt.Fprintf(stderr, "wrserve: ingest plane on %s (window=%d)\n", srv.Addr(), *window)
	if wdog != nil {
		wdog.Start()
		defer wdog.Stop()
		fmt.Fprintf(stderr, "wrserve: watchdog armed (p99x=%g abs=%v stall=%v artifacts=%q)\n",
			*wdP99X, *wdAbs, *wdStall, *artifacts)
	}

	if obsSrv != nil {
		if ts := srv.TraceSource(); ts != nil {
			obsSrv.SetTraceSource(ts)
		}
		if wdog != nil {
			obsSrv.AttachWatchdog(wdog)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/streams", srv.StreamsHandler())
		mux.Handle("/", obsSrv.Handler())
		httpLn, err = net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintf(stderr, "wrserve: %v\n", err)
			return 2
		}
		httpSrv := &http.Server{Handler: mux}
		go httpSrv.Serve(httpLn) //nolint:errcheck // Serve returns ErrServerClosed on Close
		defer httpSrv.Close()
		fmt.Fprintf(stderr, "wrserve: observability plane on http://%s/ (/streams for per-stream detail)\n",
			httpLn.Addr())
	}

	if ready != nil {
		ready <- srv.Addr()
		if httpLn != nil {
			ready <- httpLn.Addr().String()
		} else {
			ready <- ""
		}
	}

	<-stop
	fmt.Fprintln(stderr, "wrserve: shutting down")
	return 0
}

// Command wrserve is the streaming race-detection daemon: a TCP ingest
// plane that accepts concurrent WRS1 event streams (one execution per
// connection), runs the incremental on-the-fly detector over each with
// bounded memory, and answers every stream with a JSON summary of the
// races found. The observability plane (dashboard, /metrics, /status,
// /events, pprof) and the per-stream /streams document are served over
// HTTP next to it.
//
// Usage:
//
//	wrserve -addr :7421 -http 127.0.0.1:8077
//	wrserve -addr :7421 -window 1024 -workers 8 -queue 16
//
// With -window N the detector retires events more than N operations
// old, trading missed distant pairs for bounded memory; every stream
// that retires anything carries a replay seed in its summary so the
// execution can be re-analyzed post-mortem. -window 0 is exact.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"weakrace/internal/memmodel"
	"weakrace/internal/obs"
	"weakrace/internal/stream"
	"weakrace/internal/telemetry"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, stop))
}

// run starts the daemon and blocks until stop delivers. Tests pass a
// ready channel to learn the bound ingest and HTTP addresses, and close
// their own stop channel to shut the daemon down.
func run(args []string, stdout, stderr io.Writer, ready chan<- string, stop <-chan os.Signal) int {
	fs := flag.NewFlagSet("wrserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:7421", "TCP ingest address for WRS1 event streams")
		httpAddr = fs.String("http", "", "serve the observability plane plus /streams on this address")
		workers  = fs.Int("workers", 0, "detection worker-pool size (0 = GOMAXPROCS)")
		queue    = fs.Int("queue", 0, "per-stream pending-batch queue depth (0 = default 8)")
		window   = fs.Int("window", 0, "retire events more than this many operations old (0 = exact, unbounded)")
		history  = fs.Int("history", 0, "per-location access-history cap (0 = unbounded)")
		liberal  = fs.Bool("liberal-pairing", false, "treat Test&Set writes as releases")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pairing := memmodel.ConservativePairing
	if *liberal {
		pairing = memmodel.LiberalPairing
	}

	opts := stream.Options{
		Addr:         *addr,
		Workers:      *workers,
		QueueDepth:   *queue,
		Window:       *window,
		HistoryLimit: *history,
		Pairing:      pairing,
		Registry:     telemetry.Default(),
	}

	var obsSrv *obs.Server
	var httpLn net.Listener
	if *httpAddr != "" {
		obsSrv = obs.NewServer(obs.Options{Tool: "wrserve"})
		opts.Publisher = obsSrv.Publisher()
	} else {
		// No HTTP plane: nobody is scraping, keep the hot path free.
		telemetry.Default().SetEnabled(false)
	}

	srv, err := stream.Serve(opts)
	if err != nil {
		fmt.Fprintf(stderr, "wrserve: %v\n", err)
		return 2
	}
	defer srv.Close()
	fmt.Fprintf(stderr, "wrserve: ingest plane on %s (window=%d)\n", srv.Addr(), *window)

	if obsSrv != nil {
		mux := http.NewServeMux()
		mux.HandleFunc("/streams", srv.StreamsHandler())
		mux.Handle("/", obsSrv.Handler())
		httpLn, err = net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintf(stderr, "wrserve: %v\n", err)
			return 2
		}
		httpSrv := &http.Server{Handler: mux}
		go httpSrv.Serve(httpLn) //nolint:errcheck // Serve returns ErrServerClosed on Close
		defer httpSrv.Close()
		fmt.Fprintf(stderr, "wrserve: observability plane on http://%s/ (/streams for per-stream detail)\n",
			httpLn.Addr())
	}

	if ready != nil {
		ready <- srv.Addr()
		if httpLn != nil {
			ready <- httpLn.Addr().String()
		} else {
			ready <- ""
		}
	}

	<-stop
	fmt.Fprintln(stderr, "wrserve: shutting down")
	return 0
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"weakrace/internal/sim"
	"weakrace/internal/stream"
	"weakrace/internal/telemetry"
	"weakrace/internal/workload"
)

// startDaemon runs the daemon with the given flags plus dynamic ports,
// returning the ingest and HTTP addresses and a shutdown func.
func startDaemon(t *testing.T, extra ...string) (ingest, httpAddr string, shutdown func()) {
	t.Helper()
	// run() serves the process-default registry; reset it so earlier
	// tests' counters don't leak into /status assertions, and put it
	// back disabled afterwards (obs.NewServer enables it).
	telemetry.Default().Reset()
	t.Cleanup(func() {
		telemetry.Default().SetEnabled(false)
		telemetry.Default().Reset()
	})
	args := append([]string{"-addr", "127.0.0.1:0", "-http", "127.0.0.1:0"}, extra...)
	ready := make(chan string, 2)
	stop := make(chan os.Signal)
	done := make(chan int, 1)
	var errBuf bytes.Buffer
	go func() { done <- run(args, io.Discard, &errBuf, ready, stop) }()
	select {
	case ingest = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready:\n%s", errBuf.String())
	}
	httpAddr = <-ready
	return ingest, httpAddr, func() {
		close(stop)
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("daemon exit code %d:\n%s", code, errBuf.String())
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not shut down")
		}
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	ingest, httpAddr, shutdown := startDaemon(t)
	defer shutdown()

	c := workload.Corpus(1, 1)[0]
	r, err := sim.Run(c.Workload.Prog, sim.Config{Model: c.Model, Seed: c.Seed, InitMemory: c.Workload.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := stream.Send(ingest, r.Exec, stream.SendOptions{BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != len(r.Exec.Ops) {
		t.Fatalf("events = %d, want %d", sum.Events, len(r.Exec.Ops))
	}

	// The obs plane answers, and /status carries the streams block.
	resp, err := http.Get("http://" + httpAddr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Tool    string `json:"tool"`
		Streams *struct {
			Opened  int64 `json:"opened"`
			Closed  int64 `json:"closed"`
			Dropped int64 `json:"dropped"`
			Events  int64 `json:"events"`
		} `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Tool != "wrserve" {
		t.Fatalf("tool = %q", status.Tool)
	}
	if status.Streams == nil {
		t.Fatal("/status has no streams block")
	}
	if status.Streams.Opened != 1 || status.Streams.Closed != 1 || status.Streams.Dropped != 0 {
		t.Fatalf("streams block = %+v", status.Streams)
	}
	if status.Streams.Events != int64(len(r.Exec.Ops)) {
		t.Fatalf("streams events = %d, want %d", status.Streams.Events, len(r.Exec.Ops))
	}

	// /streams lists the finished summary.
	resp2, err := http.Get("http://" + httpAddr + "/streams")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var doc stream.StreamsDoc
	if err := json.NewDecoder(resp2.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Finished) != 1 || doc.Finished[0].Events != len(r.Exec.Ops) {
		t.Fatalf("/streams = %+v", doc)
	}
}

func TestDaemonWindowFlag(t *testing.T) {
	ingest, _, shutdown := startDaemon(t, "-window", "16")
	defer shutdown()

	w := workload.Random(workload.RandomParams{
		Seed: 11, CPUs: 4, Segments: 16, OpsPerSegment: 5,
		Locks: 2, UnlockedFraction: 0.4, SharedFraction: 0.7,
	})
	r, err := sim.Run(w.Prog, sim.Config{Seed: 11, InitMemory: w.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := stream.Send(ingest, r.Exec, stream.SendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Window != 16 || sum.Retired == 0 || sum.Replay == nil {
		t.Fatalf("window mode not engaged: window=%d retired=%d replay=%v",
			sum.Window, sum.Retired, sum.Replay)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var errBuf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, io.Discard, &errBuf, nil, nil); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "flag") {
		t.Fatalf("no usage on stderr: %s", errBuf.String())
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"weakrace/internal/sim"
	"weakrace/internal/stream"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/workload"
)

// startDaemon runs the daemon with the given flags plus dynamic ports,
// returning the ingest and HTTP addresses and a shutdown func.
func startDaemon(t *testing.T, extra ...string) (ingest, httpAddr string, shutdown func()) {
	t.Helper()
	// run() serves the process-default registry; reset it so earlier
	// tests' counters don't leak into /status assertions, and put it
	// back disabled afterwards (obs.NewServer enables it).
	telemetry.Default().Reset()
	t.Cleanup(func() {
		telemetry.Default().SetEnabled(false)
		telemetry.Default().Reset()
	})
	args := append([]string{"-addr", "127.0.0.1:0", "-http", "127.0.0.1:0"}, extra...)
	ready := make(chan string, 2)
	stop := make(chan os.Signal)
	done := make(chan int, 1)
	var errBuf bytes.Buffer
	go func() { done <- run(args, io.Discard, &errBuf, ready, stop) }()
	select {
	case ingest = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready:\n%s", errBuf.String())
	}
	httpAddr = <-ready
	return ingest, httpAddr, func() {
		close(stop)
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("daemon exit code %d:\n%s", code, errBuf.String())
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not shut down")
		}
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	ingest, httpAddr, shutdown := startDaemon(t)
	defer shutdown()

	c := workload.Corpus(1, 1)[0]
	r, err := sim.Run(c.Workload.Prog, sim.Config{Model: c.Model, Seed: c.Seed, InitMemory: c.Workload.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := stream.Send(ingest, r.Exec, stream.SendOptions{BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != len(r.Exec.Ops) {
		t.Fatalf("events = %d, want %d", sum.Events, len(r.Exec.Ops))
	}

	// The obs plane answers, and /status carries the streams block.
	resp, err := http.Get("http://" + httpAddr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Tool    string `json:"tool"`
		Streams *struct {
			Opened  int64 `json:"opened"`
			Closed  int64 `json:"closed"`
			Dropped int64 `json:"dropped"`
			Events  int64 `json:"events"`
		} `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Tool != "wrserve" {
		t.Fatalf("tool = %q", status.Tool)
	}
	if status.Streams == nil {
		t.Fatal("/status has no streams block")
	}
	if status.Streams.Opened != 1 || status.Streams.Closed != 1 || status.Streams.Dropped != 0 {
		t.Fatalf("streams block = %+v", status.Streams)
	}
	if status.Streams.Events != int64(len(r.Exec.Ops)) {
		t.Fatalf("streams events = %d, want %d", status.Streams.Events, len(r.Exec.Ops))
	}

	// /streams lists the finished summary.
	resp2, err := http.Get("http://" + httpAddr + "/streams")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var doc stream.StreamsDoc
	if err := json.NewDecoder(resp2.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Finished) != 1 || doc.Finished[0].Events != len(r.Exec.Ops) {
		t.Fatalf("/streams = %+v", doc)
	}
}

func TestDaemonWindowFlag(t *testing.T) {
	ingest, _, shutdown := startDaemon(t, "-window", "16")
	defer shutdown()

	w := workload.Random(workload.RandomParams{
		Seed: 11, CPUs: 4, Segments: 16, OpsPerSegment: 5,
		Locks: 2, UnlockedFraction: 0.4, SharedFraction: 0.7,
	})
	r, err := sim.Run(w.Prog, sim.Config{Seed: 11, InitMemory: w.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := stream.Send(ingest, r.Exec, stream.SendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Window != 16 || sum.Retired == 0 || sum.Replay == nil {
		t.Fatalf("window mode not engaged: window=%d retired=%d replay=%v",
			sum.Window, sum.Retired, sum.Replay)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var errBuf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, io.Discard, &errBuf, nil, nil); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "flag") {
		t.Fatalf("no usage on stderr: %s", errBuf.String())
	}
}

// Tracing on (the default): a racy stream's trace must be retrievable
// at /trace/{stream} in both formats, and /status must carry the new
// latency and trace counters.
func TestDaemonTraceEndpoint(t *testing.T) {
	ingest, httpAddr, shutdown := startDaemon(t)
	defer shutdown()

	c := workload.Corpus(1, 1)[0] // racy corpus entry
	r, err := sim.Run(c.Workload.Prog, sim.Config{Model: c.Model, Seed: c.Seed, InitMemory: c.Workload.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := stream.Send(ingest, r.Exec, stream.SendOptions{BatchSize: 32, TraceID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Races) == 0 {
		t.Fatal("corpus entry 0 expected racy")
	}
	if !sum.TraceKept {
		t.Fatal("racy stream's trace not kept")
	}

	url := "http://" + httpAddr + "/trace/" + strconv.FormatUint(sum.StreamID, 10)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d\n%s", url, resp.StatusCode, body)
	}
	recs, err := export.ReadJSONL(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("served trace unreadable: %v", err)
	}
	if len(recs) < 2 || recs[0].Meta == nil || recs[0].Meta.TraceID != sum.TraceID {
		t.Fatalf("trace records = %+v", recs)
	}

	resp2, err := http.Get(url + "?format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body2, &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Fatalf("perfetto export: err=%v events=%d", err, len(doc.TraceEvents))
	}

	// /status: batch latency quantiles and trace counters present.
	resp3, err := http.Get("http://" + httpAddr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var status struct {
		Streams *struct {
			TracesKept int64 `json:"traces_kept"`
			BatchFeed  *struct {
				Count int64 `json:"count"`
				P99NS int64 `json:"p99_ns"`
			} `json:"batch_feed"`
		} `json:"streams"`
	}
	if err := json.NewDecoder(resp3.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Streams == nil || status.Streams.TracesKept != 1 {
		t.Fatalf("status streams = %+v", status.Streams)
	}
	if status.Streams.BatchFeed == nil || status.Streams.BatchFeed.Count == 0 {
		t.Fatalf("no batch_feed quantiles in /status: %+v", status.Streams)
	}
}

// An aggressively armed watchdog must fire on real traffic and leave a
// loadable artifact directory: firing.json, pprof snapshots, and the
// offending stream's trace.
func TestDaemonWatchdogCaptures(t *testing.T) {
	dir := t.TempDir()
	ingest, httpAddr, shutdown := startDaemon(t,
		"-watchdog-abs", "1ns", "-watchdog-cooldown", "1ms", "-artifacts", dir)

	c := workload.Corpus(1, 1)[0]
	r, err := sim.Run(c.Workload.Prog, sim.Config{Model: c.Model, Seed: c.Seed, InitMemory: c.Workload.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Send(ingest, r.Exec, stream.SendOptions{BatchSize: 32}); err != nil {
		t.Fatal(err)
	}

	// /status must report the firing (possibly after the async capture).
	var wdStatus struct {
		Watchdog *struct {
			Firings int64 `json:"firings"`
			Recent  []struct {
				Dir string `json:"dir"`
			} `json:"recent"`
		} `json:"watchdog"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + httpAddr + "/status")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&wdStatus)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if wdStatus.Watchdog != nil && wdStatus.Watchdog.Firings > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never fired: %+v", wdStatus)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Shutdown waits for in-flight captures, so artifacts are complete.
	shutdown()

	adir := wdStatus.Watchdog.Recent[0].Dir
	for _, name := range []string{"firing.json", "heap.pprof", "goroutine.pprof"} {
		if fi, err := os.Stat(filepath.Join(adir, name)); err != nil || fi.Size() == 0 {
			t.Errorf("artifact %s: err=%v", name, err)
		}
	}
	var firing struct {
		Phase  string `json:"phase"`
		Reason string `json:"reason"`
	}
	data, err := os.ReadFile(filepath.Join(adir, "firing.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &firing); err != nil {
		t.Fatal(err)
	}
	if firing.Phase == "" || !strings.Contains(firing.Reason, "absolute SLO") {
		t.Fatalf("firing = %+v", firing)
	}
}

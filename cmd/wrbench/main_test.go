package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weakrace/internal/telemetry/export"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-list"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	for _, want := range []string{"model-throughput", "tracing-overhead", "postmortem-scaling", "postmortem-scaling-large", "postmortem-scaling-xl", "full-pipeline"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunAllScenarios(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errb bytes.Buffer
	if got := run([]string{"-iters", "3", "-o", path}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var o Output
	if err := json.Unmarshal(data, &o); err != nil {
		t.Fatal(err)
	}
	if o.Iters != 3 {
		t.Errorf("iters = %d, want 3", o.Iters)
	}
	if len(o.Scenarios) != 6 {
		t.Fatalf("scenarios = %d, want 6", len(o.Scenarios))
	}
	for _, s := range o.Scenarios {
		if s.TotalNS <= 0 || s.NSPerIter <= 0 {
			t.Errorf("scenario %s has empty timings: %+v", s.Name, s)
		}
		// Every benchmark gets its own telemetry phase.
		if p, ok := o.Telemetry.Phases["bench."+s.Name]; !ok || p.Count != 1 {
			t.Errorf("phase bench.%s missing from snapshot", s.Name)
		}
	}
	// The pipeline ran with telemetry enabled: simulator and detector
	// counters must be present in the embedded snapshot.
	for _, name := range []string{"detect.analyses", "detect.races", "trace.builds", "detect.vc_builds"} {
		if o.Telemetry.Counters[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, o.Telemetry.Counters[name])
		}
	}
	// postmortem-scaling carries the scaling trajectory up to the
	// segments-128 point plus the timestamp layer's per-iteration
	// footprint — the metrics the perf-smoke baseline guards.
	for _, s := range o.Scenarios {
		if s.Name != "postmortem-scaling" {
			continue
		}
		for _, m := range []string{
			"segments_64_ns_per_iter",
			"segments_128_ns_per_iter",
			"segments_128_events",
			"vc_builds_per_iter",
			"vc_window_queries_per_iter",
		} {
			if s.Metrics[m] <= 0 {
				t.Errorf("postmortem-scaling metric %q = %v, want > 0", m, s.Metrics[m])
			}
		}
	}
	// model-throughput exercises every model.
	found := false
	for name := range o.Telemetry.Counters {
		if strings.HasPrefix(name, "sim.runs{model=") {
			found = true
		}
	}
	if !found {
		t.Error("no per-model sim.runs counters in snapshot")
	}
}

// TestRunLargeScalingScenario: the PR-8 scenario reports the 30k+-event
// series plus the segments-512 worker sweep with its speedup metrics,
// and -metrics dumps a snapshot carrying the parallel-analysis counters.
func TestRunLargeScalingScenario(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	var out, errb bytes.Buffer
	got := run([]string{"-scenario", "postmortem-scaling-large", "-iters", "1", "-o", "-",
		"-workers", "2", "-metrics", metricsPath}, &out, &errb)
	if got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	var o Output
	if err := json.Unmarshal(out.Bytes(), &o); err != nil {
		t.Fatalf("stdout is not the JSON trajectory: %v\n%s", err, out.String())
	}
	if len(o.Scenarios) != 1 || o.Scenarios[0].Name != "postmortem-scaling-large" {
		t.Fatalf("scenarios: %+v", o.Scenarios)
	}
	m := o.Scenarios[0].Metrics
	for _, key := range []string{
		"segments_256_ns_per_iter", "segments_512_ns_per_iter", "segments_1024_ns_per_iter",
		"segments_512_events", "segments_1024_events",
		"workers_1_ns_per_iter", "workers_8_ns_per_iter",
		"speedup_2w", "speedup_4w", "speedup_8w",
	} {
		if m[key] <= 0 {
			t.Errorf("metric %q = %v, want > 0", key, m[key])
		}
	}
	if m["segments_1024_events"] < 30000 {
		t.Errorf("segments_1024_events = %v, want the 30k+-event regime", m["segments_1024_events"])
	}
	// The -metrics dump must carry the PR-8 telemetry: span statistics
	// from the timestamp layer and the sweep's bucket counter.
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"graph.ts.spans", "graph.ts.span_max_events",
		"detect.sweep.buckets", "detect.arena.shards", "detect.arena.shard_recs_highwater",
	} {
		if !strings.Contains(string(data), name) {
			t.Errorf("telemetry dump missing %q", name)
		}
	}
}

// TestRunXLScalingScenario: the PR-10 scenario reports the 67k–134k-event
// series with worker sweeps through 16 workers, a per-phase breakdown of
// one segments-4096 analysis, and profiles per scenario under -profile;
// -metrics dumps a snapshot carrying the new parallel-phase telemetry.
func TestRunXLScalingScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute scenario at full worker sweep")
	}
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	profDir := filepath.Join(dir, "prof")
	var out, errb bytes.Buffer
	got := run([]string{"-scenario", "postmortem-scaling-xl", "-iters", "1", "-o", "-",
		"-workers", "2", "-metrics", metricsPath, "-profile", profDir}, &out, &errb)
	if got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	var o Output
	if err := json.Unmarshal(out.Bytes(), &o); err != nil {
		t.Fatalf("stdout is not the JSON trajectory: %v\n%s", err, out.String())
	}
	if len(o.Scenarios) != 1 || o.Scenarios[0].Name != "postmortem-scaling-xl" {
		t.Fatalf("scenarios: %+v", o.Scenarios)
	}
	m := o.Scenarios[0].Metrics
	for _, key := range []string{
		"segments_2048_events", "segments_4096_events",
		"segments_2048_workers_1_ns_per_iter", "segments_2048_workers_16_ns_per_iter",
		"segments_4096_workers_1_ns_per_iter", "segments_4096_workers_16_ns_per_iter",
		"segments_2048_speedup_4w", "segments_4096_speedup_16w",
		"phase_detect.analyze_ns", "phase_detect.validate_ns",
		"phase_trace.validate.streams_ns", "phase_trace.validate.so1_ns",
		"phase_graph.build.count_ns", "phase_graph.build.fill_ns",
		"phase_detect.condreach.materialize_ns",
	} {
		if m[key] <= 0 {
			t.Errorf("metric %q = %v, want > 0", key, m[key])
		}
	}
	if m["segments_4096_events"] < 100000 {
		t.Errorf("segments_4096_events = %v, want the 100k+-event regime", m["segments_4096_events"])
	}
	if fi, err := os.Stat(filepath.Join(profDir, "postmortem-scaling-xl.pprof")); err != nil || fi.Size() == 0 {
		t.Errorf("per-scenario CPU profile missing or empty: %v", err)
	}
	// The -metrics dump must carry the PR-10 telemetry: the parallel
	// validator, the counted hb1 fill, and the partition ordering.
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"trace.validate.workers", "trace.validate.streams", "trace.validate.so1",
		"graph.build.workers", "graph.build.count", "graph.build.fill",
		"detect.condreach.workers", "detect.condreach.materialize", "detect.condreach.order",
	} {
		if !strings.Contains(string(data), name) {
			t.Errorf("telemetry dump missing %q", name)
		}
	}
}

func TestRunSingleScenarioToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-scenario", "full-pipeline", "-iters", "2", "-o", "-"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	var o Output
	if err := json.Unmarshal(out.Bytes(), &o); err != nil {
		t.Fatalf("stdout is not the JSON trajectory: %v\n%s", err, out.String())
	}
	if len(o.Scenarios) != 1 || o.Scenarios[0].Name != "full-pipeline" {
		t.Fatalf("scenarios: %+v", o.Scenarios)
	}
	if o.Scenarios[0].Metrics["data_races_per_iter"] <= 0 {
		t.Errorf("full-pipeline on Figure2 found no races: %+v", o.Scenarios[0].Metrics)
	}
}

func TestRunScenarioListToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-scenario", "tracing-overhead, full-pipeline", "-iters", "2", "-o", "-"}
	if got := run(args, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	var o Output
	if err := json.Unmarshal(out.Bytes(), &o); err != nil {
		t.Fatalf("stdout is not the JSON trajectory: %v\n%s", err, out.String())
	}
	// Selection order is preserved.
	if len(o.Scenarios) != 2 || o.Scenarios[0].Name != "tracing-overhead" || o.Scenarios[1].Name != "full-pipeline" {
		t.Fatalf("scenarios: %+v", o.Scenarios)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-scenario", "nope"}, &out, &errb); got != 2 {
		t.Fatalf("unknown scenario: exit = %d", got)
	}
	if got := run([]string{"-bogus"}, &out, &errb); got != 2 {
		t.Fatalf("bad flag: exit = %d", got)
	}
	if got := run([]string{"-iters", "1", "-o", filepath.Join(t.TempDir(), "no", "such", "dir", "x.json")}, &out, &errb); got != 2 {
		t.Fatalf("unwritable output: exit = %d", got)
	}
}

func TestMetaBlockAndSegments64(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-scenario", "postmortem-scaling", "-iters", "1", "-o", "-"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	var o Output
	if err := json.Unmarshal(out.Bytes(), &o); err != nil {
		t.Fatal(err)
	}
	if o.Meta.GoVersion == "" || o.Meta.GOMAXPROCS <= 0 || o.Meta.GOOS == "" || o.Meta.GOARCH == "" {
		t.Fatalf("meta block incomplete: %+v", o.Meta)
	}
	for _, key := range []string{"segments_32_ns_per_iter", "segments_64_ns_per_iter"} {
		if o.Scenarios[0].Metrics[key] <= 0 {
			t.Fatalf("metric %s missing: %+v", key, o.Scenarios[0].Metrics)
		}
	}
}

func TestRegressionGuard(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	var out, errb bytes.Buffer
	if got := run([]string{"-scenario", "full-pipeline", "-iters", "2", "-o", base}, &out, &errb); got != 0 {
		t.Fatalf("baseline run: exit = %d (stderr: %s)", got, errb.String())
	}
	// A generous factor against our own fresh baseline must pass.
	args := []string{"-scenario", "full-pipeline", "-iters", "2", "-o", filepath.Join(dir, "cur.json"),
		"-baseline", base, "-guard", "full-pipeline:data_races_per_iter:100"}
	errb.Reset()
	if got := run(args, &out, &errb); got != 0 {
		t.Fatalf("passing guard: exit = %d (stderr: %s)", got, errb.String())
	}
	if !strings.Contains(errb.String(), "guard ok") {
		t.Fatalf("no guard confirmation in stderr:\n%s", errb.String())
	}
	// An impossible factor must fail with exit 1.
	args[len(args)-1] = "full-pipeline:data_races_per_iter:0.000001"
	errb.Reset()
	if got := run(args, &out, &errb); got != 1 {
		t.Fatalf("regressing guard: exit = %d, want 1 (stderr: %s)", got, errb.String())
	}
	if !strings.Contains(errb.String(), "REGRESSION") {
		t.Fatalf("no regression message:\n%s", errb.String())
	}
	// Malformed guards and a missing baseline are usage errors.
	if got := run([]string{"-scenario", "full-pipeline", "-iters", "1", "-o", "-",
		"-guard", "full-pipeline:data_races_per_iter:2"}, &out, &errb); got != 2 {
		t.Fatalf("guard without baseline: exit = %d, want 2", got)
	}
	if got := run([]string{"-scenario", "full-pipeline", "-iters", "1", "-o", "-",
		"-baseline", base, "-guard", "nonsense"}, &out, &errb); got != 2 {
		t.Fatalf("malformed guard: exit = %d, want 2", got)
	}
}

// TestProvenanceCapture: -flight/-html run the segments-32 analysis once
// after the timed scenarios and write the CI artifacts; the stdout
// trajectory stays pipe-clean JSON.
func TestProvenanceCapture(t *testing.T) {
	dir := t.TempDir()
	flightDir := filepath.Join(dir, "flight")
	htmlPath := filepath.Join(dir, "report.html")
	var out, errb bytes.Buffer
	got := run([]string{"-scenario", "postmortem-scaling", "-iters", "1", "-o", "-",
		"-flight", flightDir, "-html", htmlPath}, &out, &errb)
	if got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errb.String())
	}
	var o Output
	if err := json.Unmarshal(out.Bytes(), &o); err != nil {
		t.Fatalf("stdout is not the JSON trajectory: %v", err)
	}
	f, err := os.Open(filepath.Join(flightDir, export.FlightLogName))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := export.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, rec := range recs {
		kinds[rec.Kind]++
	}
	if kinds[export.KindMeta] != 1 || kinds[export.KindEvent] == 0 || kinds[export.KindEdge] == 0 {
		t.Fatalf("flight log incomplete: %v", kinds)
	}
	if _, err := os.Stat(filepath.Join(flightDir, export.ChromeTraceName)); err != nil {
		t.Fatal(err)
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "<!DOCTYPE html>") {
		t.Fatal("HTML report malformed")
	}
}

func writeBenchFixture(t *testing.T, path, commit string, ns int64) {
	t.Helper()
	doc := fmt.Sprintf(`{
  "meta": {"go_version": "go1.24.0", "gomaxprocs": 1, "goos": "linux", "goarch": "amd64", "commit": %q},
  "iters": 30,
  "scenarios": [
    {"name": "model-throughput", "iters": 30, "total_ns": %d, "ns_per_iter": %d,
     "metrics": {"cycles_per_op_SC": 2.6}}
  ]
}`, commit, ns*30, ns)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTrajectoryMode: -trajectory renders the named bench points into
// one HTML report, ordered by the numeric suffix in the filename.
func TestTrajectoryMode(t *testing.T) {
	dir := t.TempDir()
	// Named out of order, and BENCH_10 must sort after BENCH_2.
	f10 := filepath.Join(dir, "BENCH_10.json")
	f2 := filepath.Join(dir, "BENCH_2.json")
	writeBenchFixture(t, f10, "commit-ten", 500000)
	writeBenchFixture(t, f2, "commit-two", 800000)
	out := filepath.Join(dir, "trend.html")

	var stdout, stderr bytes.Buffer
	if got := run([]string{"-trajectory", out, f10, f2}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d; stderr: %s", got, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{"model-throughput", "BENCH_2", "BENCH_10", "<svg"} {
		if !strings.Contains(html, want) {
			t.Errorf("trajectory HTML missing %q", want)
		}
	}
	if i2, i10 := strings.Index(html, "commit-two"), strings.Index(html, "commit-ten"); i2 < 0 || i10 < 0 || i2 > i10 {
		t.Errorf("bench points not in numeric order (BENCH_2 at %d, BENCH_10 at %d)", i2, i10)
	}
	if !strings.Contains(stderr.String(), "trajectory report over 2 bench points") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

// TestTrajectoryGlobDefault: with no positional arguments -trajectory
// sweeps BENCH_*.json in the working directory.
func TestTrajectoryGlobDefault(t *testing.T) {
	dir := t.TempDir()
	writeBenchFixture(t, filepath.Join(dir, "BENCH_3.json"), "c3", 700000)
	writeBenchFixture(t, filepath.Join(dir, "BENCH_5.json"), "c5", 600000)
	t.Chdir(dir)

	var stdout, stderr bytes.Buffer
	if got := run([]string{"-trajectory", "trend.html"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d; stderr: %s", got, stderr.String())
	}
	data, err := os.ReadFile("trend.html")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "BENCH_3") || !strings.Contains(string(data), "BENCH_5") {
		t.Error("globbed points missing from report")
	}
}

func TestTrajectoryErrors(t *testing.T) {
	dir := t.TempDir()
	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-trajectory", "trend.html"}, &stdout, &stderr); got != 2 {
		t.Fatalf("empty dir: exit = %d, want 2", got)
	}
	bad := filepath.Join(dir, "BENCH_bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"-trajectory", "trend.html", bad}, &stdout, &stderr); got != 2 {
		t.Fatalf("malformed point: exit = %d, want 2", got)
	}
}

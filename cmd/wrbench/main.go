// Command wrbench runs the benchmark scenarios from the repo's bench
// harness as a standalone program and writes a JSON trajectory —
// per-scenario wall-clock timings and headline metrics plus a full
// telemetry snapshot (phase histograms, pipeline counters) — so a
// performance baseline can be captured and diffed without `go test`.
//
// Usage:
//
//	wrbench                        # all scenarios, BENCH_telemetry.json
//	wrbench -iters 50 -o base.json
//	wrbench -scenario full-pipeline -o - -iters 10
//	wrbench -scenario model-throughput,tracing-overhead -iters 3
//	wrbench -http 127.0.0.1:8077   # live /metrics, /status, dashboard
//	wrbench -scenario postmortem-scaling-xl -profile prof/   # per-scenario pprof
//	wrbench -trajectory trend.html           # all BENCH_*.json -> one report
//	wrbench -trajectory trend.html BENCH_2.json BENCH_5.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"weakrace"
	"weakrace/internal/obs"
	"weakrace/internal/report"
	"weakrace/internal/telemetry"
)

// Scenario is one benchmarked code path. run executes iters iterations
// and returns headline metrics (averaged or final, scenario-specific).
type scenario struct {
	name string
	run  func(iters int) (map[string]float64, error)
}

// Result is the JSON record for one scenario.
type Result struct {
	Name      string             `json:"name"`
	Iters     int                `json:"iters"`
	TotalNS   int64              `json:"total_ns"`
	NSPerIter int64              `json:"ns_per_iter"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
}

// Meta records the environment a trajectory was captured in, so a
// baseline diff can tell a regression from a machine change.
type Meta struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	Commit     string `json:"commit,omitempty"`
}

// collectMeta fills the meta block. The commit comes from the binary's
// embedded VCS stamp when present (real builds), falling back to asking
// git (the `go run` / `go test` case, where no stamp is embedded).
func collectMeta() Meta {
	m := Meta{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				m.Commit = s.Value
			}
		}
	}
	if m.Commit == "" {
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			m.Commit = strings.TrimSpace(string(out))
		}
	}
	return m
}

// Output is the whole trajectory file.
type Output struct {
	Meta      Meta               `json:"meta"`
	Iters     int                `json:"iters"`
	Scenarios []Result           `json:"scenarios"`
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wrbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("o", "BENCH_telemetry.json", "output file (- for stdout)")
		iters    = fs.Int("iters", 30, "iterations per scenario")
		only     = fs.String("scenario", "", "run only the named scenarios (comma-separated)")
		list     = fs.Bool("list", false, "list scenarios and exit")
		baseline = fs.String("baseline", "", "trajectory file to guard against")
		guard    = fs.String("guard", "", "regression guards, comma-separated scenario:metric:factor entries;\nexit 1 if a metric exceeds factor x its -baseline value")
		flight   = fs.String("flight", "", "after the scenarios, run one segments-32 analysis with a flight recorder\nand write flight.jsonl + trace.json (Perfetto) into this directory")
		htmlOut  = fs.String("html", "", "with -flight or alone: write the segments-32 run's HTML race report to this file")
		httpAddr = fs.String("http", "", "serve the observability plane (metrics, status, dashboard, pprof) on this address while benching")
		traject  = fs.String("trajectory", "", "standalone mode: render the checked-in BENCH_*.json files (or the\npositional arguments) into one HTML trend report at this path, then exit")
		metrics  = fs.String("metrics", "", "dump a JSON telemetry snapshot on exit to this file (- for stdout);\nincludes the parallel-analysis counters (graph.ts.*, graph.build.*,\ntrace.validate.*, detect.sweep.*, detect.condreach.*, detect.arena.*)")
		workers  = fs.Int("workers", 0, "worker goroutines for the parallel analysis passes in the detection\nscenarios (0 = GOMAXPROCS); output is byte-identical for every worker count")
		profile  = fs.String("profile", "", "write a per-scenario CPU profile (<scenario>.pprof) into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *traject != "" {
		return renderTrajectory(*traject, fs.Args(), stderr)
	}

	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, obs.Options{Tool: "wrbench"})
		if err != nil {
			fmt.Fprintf(stderr, "wrbench: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "wrbench: observability plane on http://%s/\n", srv.Addr())
	}

	scenarios := allScenarios(*workers)
	if *list {
		for _, s := range scenarios {
			fmt.Fprintln(stdout, s.name)
		}
		return 0
	}
	if *only != "" {
		// Comma-separated selection; CI smoke jobs run a subset in one
		// process so the telemetry snapshot covers all of them.
		var filtered []scenario
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, s := range scenarios {
				if s.name == name {
					filtered = append(filtered, s)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(stderr, "wrbench: unknown scenario %q (use -list)\n", name)
				return 2
			}
		}
		scenarios = filtered
	}

	if *profile != "" {
		if err := os.MkdirAll(*profile, 0o755); err != nil {
			fmt.Fprintf(stderr, "wrbench: %v\n", err)
			return 2
		}
	}
	defer telemetry.EnableDefault()()
	output := Output{Meta: collectMeta(), Iters: *iters}
	for _, s := range scenarios {
		fmt.Fprintf(stderr, "wrbench: %s (%d iters)...\n", s.name, *iters)
		var stopProfile func()
		if *profile != "" {
			// One CPU profile per scenario, so a hot phase can be
			// attributed to the scenario that exercised it.
			path := filepath.Join(*profile, s.name+".pprof")
			stop, err := telemetry.StartProfiles(path, "", stderr)
			if err != nil {
				fmt.Fprintf(stderr, "wrbench: %v\n", err)
				return 2
			}
			stopProfile = stop
		}
		sp := telemetry.Default().StartSpan("bench." + s.name)
		start := time.Now()
		metrics, err := s.run(*iters)
		elapsed := time.Since(start)
		sp.End()
		if stopProfile != nil {
			stopProfile()
			fmt.Fprintf(stderr, "wrbench: CPU profile written to %s\n",
				filepath.Join(*profile, s.name+".pprof"))
		}
		if err != nil {
			fmt.Fprintf(stderr, "wrbench: %s: %v\n", s.name, err)
			return 2
		}
		output.Scenarios = append(output.Scenarios, Result{
			Name:      s.name,
			Iters:     *iters,
			TotalNS:   elapsed.Nanoseconds(),
			NSPerIter: elapsed.Nanoseconds() / int64(*iters),
			Metrics:   metrics,
		})
	}
	output.Telemetry = *telemetry.Default().Snapshot()

	data, err := json.MarshalIndent(output, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "wrbench: %v\n", err)
		return 2
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "wrbench: %v\n", err)
		return 2
	}
	if *out != "-" {
		fmt.Fprintf(stderr, "wrbench: trajectory written to %s\n", *out)
	}
	if *flight != "" || *htmlOut != "" {
		if err := captureProvenance(*flight, *htmlOut, stderr); err != nil {
			fmt.Fprintf(stderr, "wrbench: %v\n", err)
			return 2
		}
	}
	if *metrics != "" {
		if err := telemetry.DumpDefault(*metrics, stdout); err != nil {
			fmt.Fprintf(stderr, "wrbench: %v\n", err)
			return 2
		}
	}
	if *guard != "" {
		if *baseline == "" {
			fmt.Fprintln(stderr, "wrbench: -guard requires -baseline")
			return 2
		}
		base, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "wrbench: %v\n", err)
			return 2
		}
		var baseOut Output
		if err := json.Unmarshal(base, &baseOut); err != nil {
			fmt.Fprintf(stderr, "wrbench: baseline %s: %v\n", *baseline, err)
			return 2
		}
		if code := checkGuards(*guard, &baseOut, &output, stderr); code != 0 {
			return code
		}
	}
	return 0
}

// renderTrajectory is `wrbench -trajectory`: parse each bench point
// (the given files, default every BENCH_*.json in the working
// directory), order them by the PR number in the filename, and render
// the cross-PR trend report.
func renderTrajectory(out string, files []string, stderr io.Writer) int {
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil || len(files) == 0 {
			fmt.Fprintln(stderr, "wrbench: -trajectory found no BENCH_*.json files (pass them as arguments)")
			return 2
		}
	}
	// BENCH_10 must sort after BENCH_2: compare the numeric suffix when
	// both sides have one.
	num := func(path string) (int, bool) {
		stem := strings.TrimSuffix(filepath.Base(path), ".json")
		i := strings.LastIndex(stem, "_")
		if i < 0 {
			return 0, false
		}
		n, err := strconv.Atoi(stem[i+1:])
		return n, err == nil
	}
	sort.SliceStable(files, func(i, j int) bool {
		a, aok := num(files[i])
		b, bok := num(files[j])
		if aok && bok {
			return a < b
		}
		return files[i] < files[j]
	})

	var points []report.BenchPoint
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(stderr, "wrbench: %v\n", err)
			return 2
		}
		label := strings.TrimSuffix(filepath.Base(f), ".json")
		p, err := report.ParseBenchPoint(label, data)
		if err != nil {
			fmt.Fprintf(stderr, "wrbench: %v\n", err)
			return 2
		}
		points = append(points, p)
	}

	f, err := os.Create(out)
	if err == nil {
		err = report.RenderTrajectory(f, points)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "wrbench: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "wrbench: trajectory report over %d bench points written to %s\n", len(points), out)
	return 0
}

// captureProvenance runs the postmortem-scaling scenario's segments-32
// point once with a flight recorder attached and exports the recording
// (flight.jsonl + Perfetto trace.json) and/or the HTML race report —
// the artifacts CI archives from its perf-smoke run. Runs after the
// timed scenarios so it cannot perturb them.
func captureProvenance(flightDir, htmlOut string, stderr io.Writer) error {
	w := weakrace.RandomWorkload(weakrace.RandomParams{
		Seed: 5, CPUs: 4, Segments: 32, UnlockedFraction: 0.3,
	})
	res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 1})
	if err != nil {
		return err
	}
	fr := weakrace.NewFlightRecorder()
	a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{Flight: fr})
	if err != nil {
		return err
	}
	if flightDir != "" {
		if err := fr.WriteDir(flightDir); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrbench: flight recording (segments-32) written to %s\n", flightDir)
	}
	if htmlOut != "" {
		f, err := os.Create(htmlOut)
		if err == nil {
			err = weakrace.WriteHTMLReport(f, weakrace.NewExplainer(a))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrbench: HTML report (segments-32) written to %s\n", htmlOut)
	}
	return nil
}

// checkGuards enforces coarse regression guards: each entry names a
// scenario metric and the slack factor the current run is allowed over
// the baseline. Returns 1 on regression, 2 on malformed input, 0 when
// every guard holds.
func checkGuards(guards string, base, cur *Output, stderr io.Writer) int {
	metric := func(o *Output, scen, name string) (float64, bool) {
		for _, s := range o.Scenarios {
			if s.Name == scen {
				v, ok := s.Metrics[name]
				return v, ok
			}
		}
		return 0, false
	}
	failed := false
	for _, g := range strings.Split(guards, ",") {
		parts := strings.Split(strings.TrimSpace(g), ":")
		if len(parts) != 3 {
			fmt.Fprintf(stderr, "wrbench: bad guard %q (want scenario:metric:factor)\n", g)
			return 2
		}
		scen, name := parts[0], parts[1]
		factor, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || factor <= 0 {
			fmt.Fprintf(stderr, "wrbench: bad guard factor %q\n", parts[2])
			return 2
		}
		baseV, ok := metric(base, scen, name)
		if !ok {
			fmt.Fprintf(stderr, "wrbench: guard %s: metric not in baseline\n", g)
			return 2
		}
		curV, ok := metric(cur, scen, name)
		if !ok {
			fmt.Fprintf(stderr, "wrbench: guard %s: metric not in this run\n", g)
			return 2
		}
		if curV > baseV*factor {
			fmt.Fprintf(stderr, "wrbench: REGRESSION %s/%s: %.0f > %.1fx baseline %.0f\n",
				scen, name, curV, factor, baseV)
			failed = true
		} else {
			fmt.Fprintf(stderr, "wrbench: guard ok %s/%s: %.0f <= %.1fx baseline %.0f\n",
				scen, name, curV, factor, baseV)
		}
	}
	if failed {
		return 1
	}
	return 0
}

// allScenarios mirrors the T1–T3 benchmark families in bench_test.go plus
// the end-to-end pipeline, parameterized by iteration count instead of
// b.N so the same paths run outside the testing framework. workers is
// the -workers flag, applied to the detection scenarios (0 = GOMAXPROCS).
func allScenarios(workers int) []scenario {
	return []scenario{
		{"model-throughput", func(iters int) (map[string]float64, error) {
			// T1: write-burst on every model; cycles/op per model.
			w := weakrace.WriteBurst(4, 12, 4)
			metrics := map[string]float64{}
			for _, model := range weakrace.AllModels {
				var cycles, ops int64
				for i := 0; i < iters; i++ {
					res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
						Model: model, Seed: int64(i), RetireProb: 0.5,
						InitMemory: w.InitMemory,
					})
					if err != nil {
						return nil, err
					}
					cycles += res.Makespan()
					ops += int64(res.Exec.NumOps())
				}
				metrics["cycles_per_op_"+model.String()] = float64(cycles) / float64(ops)
			}
			return metrics, nil
		}},
		{"tracing-overhead", func(iters int) (map[string]float64, error) {
			// T2: simulation alone vs simulation + trace + encode. Both
			// loops also count heap allocations, so the trajectory records
			// the tracing layer's allocation share (the number
			// trace.FromExecution's preallocation pass drives down).
			w := weakrace.LockedCounter(4, 8, -1)
			cfg := weakrace.SimConfig{Model: weakrace.WO, Seed: 1}
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			simMallocs := ms.Mallocs
			simStart := time.Now()
			for i := 0; i < iters; i++ {
				if _, err := weakrace.Simulate(w.Prog, cfg); err != nil {
					return nil, err
				}
			}
			simNS := time.Since(simStart).Nanoseconds()
			runtime.ReadMemStats(&ms)
			simMallocs = ms.Mallocs - simMallocs
			fullMallocs := ms.Mallocs
			fullStart := time.Now()
			for i := 0; i < iters; i++ {
				res, err := weakrace.Simulate(w.Prog, cfg)
				if err != nil {
					return nil, err
				}
				tr := weakrace.TraceExecution(res.Exec)
				if err := weakrace.EncodeTrace(io.Discard, tr); err != nil {
					return nil, err
				}
			}
			fullNS := time.Since(fullStart).Nanoseconds()
			runtime.ReadMemStats(&ms)
			fullMallocs = ms.Mallocs - fullMallocs
			metrics := map[string]float64{
				"simulate_ns_per_iter":     float64(simNS) / float64(iters),
				"traced_ns_per_iter":       float64(fullNS) / float64(iters),
				"simulate_allocs_per_iter": float64(simMallocs) / float64(iters),
				"traced_allocs_per_iter":   float64(fullMallocs) / float64(iters),
			}
			if simNS > 0 {
				metrics["overhead_ratio"] = float64(fullNS) / float64(simNS)
			}
			if fullMallocs >= simMallocs {
				metrics["tracing_allocs_per_iter"] = float64(fullMallocs-simMallocs) / float64(iters)
			}
			return metrics, nil
		}},
		{"postmortem-scaling", func(iters int) (map[string]float64, error) {
			// T3: analysis cost as the trace grows (4..128 segments). The
			// detector's vc_* counter deltas ride along, normalized per
			// iteration, so the trajectory records the timestamp layer's
			// footprint (and a baseline diff catches a silent fallback to
			// the closure path — vc_builds would drop to zero).
			metrics := map[string]float64{}
			before := telemetry.Default().Snapshot()
			for _, segments := range []int{4, 8, 16, 32, 64, 128} {
				w := weakrace.RandomWorkload(weakrace.RandomParams{
					Seed: 5, CPUs: 4, Segments: segments, UnlockedFraction: 0.3,
				})
				res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 1})
				if err != nil {
					return nil, err
				}
				tr := weakrace.TraceExecution(res.Exec)
				start := time.Now()
				events := 0
				for i := 0; i < iters; i++ {
					a, err := weakrace.Detect(tr, weakrace.DetectOptions{SkipValidate: true, Workers: workers})
					if err != nil {
						return nil, err
					}
					events = a.NumEvents
				}
				key := fmt.Sprintf("segments_%d", segments)
				metrics[key+"_ns_per_iter"] = float64(time.Since(start).Nanoseconds()) / float64(iters)
				metrics[key+"_events"] = float64(events)
			}
			delta := telemetry.Default().Snapshot().Delta(before)
			for _, name := range []string{
				"detect.vc_builds",
				"detect.vc_window_queries",
				"detect.vc_hb_fastpath_hits",
			} {
				short := strings.TrimPrefix(name, "detect.")
				metrics[short+"_per_iter"] = float64(delta.Counters[name]) / float64(iters)
			}
			return metrics, nil
		}},
		{"postmortem-scaling-large", func(iters int) (map[string]float64, error) {
			// PR 8: the 30k+-event regime the parallel passes exist for.
			// Two series: analysis cost at segments 256/512/1024 with the
			// flag's worker count, and a worker sweep {1,2,4,8} on the
			// segments-512 trace whose speedup_Nw metrics record the
			// wall-clock scaling on this machine (≈1 on a single core —
			// the Meta.GOMAXPROCS block says which regime a file is
			// from). Large traces amortize quickly, so iterations are
			// capped to keep the whole scenario in seconds.
			metrics := map[string]float64{}
			li := iters
			if li > 10 {
				li = 10
			}
			var tr512 *weakrace.Trace
			for _, segments := range []int{256, 512, 1024} {
				w := weakrace.RandomWorkload(weakrace.RandomParams{
					Seed: 5, CPUs: 4, Segments: segments, UnlockedFraction: 0.3,
				})
				res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 1})
				if err != nil {
					return nil, err
				}
				tr := weakrace.TraceExecution(res.Exec)
				if segments == 512 {
					tr512 = tr
				}
				start := time.Now()
				events := 0
				for i := 0; i < li; i++ {
					a, err := weakrace.Detect(tr, weakrace.DetectOptions{SkipValidate: true, Workers: workers})
					if err != nil {
						return nil, err
					}
					events = a.NumEvents
				}
				key := fmt.Sprintf("segments_%d", segments)
				metrics[key+"_ns_per_iter"] = float64(time.Since(start).Nanoseconds()) / float64(li)
				metrics[key+"_events"] = float64(events)
			}
			for _, n := range []int{1, 2, 4, 8} {
				start := time.Now()
				for i := 0; i < li; i++ {
					if _, err := weakrace.Detect(tr512, weakrace.DetectOptions{SkipValidate: true, Workers: n}); err != nil {
						return nil, err
					}
				}
				metrics[fmt.Sprintf("workers_%d_ns_per_iter", n)] =
					float64(time.Since(start).Nanoseconds()) / float64(li)
			}
			for _, n := range []int{2, 4, 8} {
				if p := metrics[fmt.Sprintf("workers_%d_ns_per_iter", n)]; p > 0 {
					metrics[fmt.Sprintf("speedup_%dw", n)] = metrics["workers_1_ns_per_iter"] / p
				}
			}
			return metrics, nil
		}},
		{"postmortem-scaling-xl", func(iters int) (map[string]float64, error) {
			// PR 10: the regime where the formerly serial phases —
			// validation, hb1 construction, partition ordering — dominate.
			// Full Analyze (validation on) over segments 2048/4096 with a
			// worker sweep {1,2,4,8,16} on each, plus a per-phase
			// breakdown of one segments-4096 analysis taken from the
			// telemetry phase histograms (phase_<name>_ns metrics). These
			// traces run hundreds of ms per analysis, so iterations are
			// capped at 3.
			metrics := map[string]float64{}
			li := iters
			if li > 3 {
				li = 3
			}
			var tr4096 *weakrace.Trace
			for _, segments := range []int{2048, 4096} {
				w := weakrace.RandomWorkload(weakrace.RandomParams{
					Seed: 5, CPUs: 4, Segments: segments, UnlockedFraction: 0.3,
				})
				res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 1})
				if err != nil {
					return nil, err
				}
				tr := weakrace.TraceExecution(res.Exec)
				if segments == 4096 {
					tr4096 = tr
				}
				key := fmt.Sprintf("segments_%d", segments)
				for _, n := range []int{1, 2, 4, 8, 16} {
					start := time.Now()
					events := 0
					for i := 0; i < li; i++ {
						a, err := weakrace.Detect(tr, weakrace.DetectOptions{Workers: n})
						if err != nil {
							return nil, err
						}
						events = a.NumEvents
					}
					metrics[fmt.Sprintf("%s_workers_%d_ns_per_iter", key, n)] =
						float64(time.Since(start).Nanoseconds()) / float64(li)
					metrics[key+"_events"] = float64(events)
				}
				for _, n := range []int{2, 4, 8, 16} {
					if p := metrics[fmt.Sprintf("%s_workers_%d_ns_per_iter", key, n)]; p > 0 {
						metrics[fmt.Sprintf("%s_speedup_%dw", key, n)] =
							metrics[fmt.Sprintf("%s_workers_1_ns_per_iter", key)] / p
					}
				}
			}
			// Per-phase breakdown: one more segments-4096 analysis at the
			// flag's worker count, bracketed by telemetry snapshots.
			before := telemetry.Default().Snapshot()
			if _, err := weakrace.Detect(tr4096, weakrace.DetectOptions{Workers: workers}); err != nil {
				return nil, err
			}
			delta := telemetry.Default().Snapshot().Delta(before)
			for name, ph := range delta.Phases {
				if strings.HasPrefix(name, "detect.") ||
					strings.HasPrefix(name, "graph.") ||
					strings.HasPrefix(name, "trace.") {
					metrics["phase_"+name+"_ns"] = float64(ph.TotalNS)
				}
			}
			return metrics, nil
		}},
		{"full-pipeline", func(iters int) (map[string]float64, error) {
			// Simulate + trace + detect + partition on Figure 2.
			w := weakrace.Figure2()
			races := 0.0
			for i := 0; i < iters; i++ {
				res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
					Model: weakrace.WO, Seed: int64(i), InitMemory: w.InitMemory,
				})
				if err != nil {
					return nil, err
				}
				a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
				if err != nil {
					return nil, err
				}
				races += float64(len(a.DataRaces))
			}
			return map[string]float64{"data_races_per_iter": races / float64(iters)}, nil
		}},
	}
}

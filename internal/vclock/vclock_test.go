package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroAndTick(t *testing.T) {
	v := New(3)
	if v.Get(0) != 0 || v.Get(2) != 0 {
		t.Fatal("new clock not zero")
	}
	v.Tick(1)
	v.Tick(1)
	if v.Get(1) != 2 {
		t.Fatalf("Get(1) = %d, want 2", v.Get(1))
	}
}

func TestCloneIndependent(t *testing.T) {
	v := New(2)
	c := v.Clone()
	v.Tick(0)
	if c.Get(0) != 0 {
		t.Fatal("Clone aliases original")
	}
}

func TestJoin(t *testing.T) {
	a := VC{3, 1, 0}
	b := VC{1, 5, 0}
	a.Join(b)
	if !a.Equal(VC{3, 5, 0}) {
		t.Fatalf("Join = %v", a)
	}
}

func TestJoinWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch did not panic")
		}
	}()
	New(2).Join(New(3))
}

func TestHappensBeforeAndConcurrent(t *testing.T) {
	a := VC{1, 0}
	b := VC{2, 1}
	c := VC{0, 2}
	if !a.HappensBefore(b) {
		t.Fatal("a should happen before b")
	}
	if b.HappensBefore(a) {
		t.Fatal("b should not happen before a")
	}
	if !a.Concurrent(c) || !c.Concurrent(a) {
		t.Fatal("a and c should be concurrent")
	}
	if a.Concurrent(a.Clone()) {
		t.Fatal("equal clocks are not concurrent")
	}
	if a.HappensBefore(a.Clone()) {
		t.Fatal("HappensBefore must be irreflexive")
	}
}

func TestEpochCovered(t *testing.T) {
	e := Epoch{P: 1, C: 3}
	if e.Covered(VC{0, 2}) {
		t.Fatal("epoch 3@1 covered by <0,2>")
	}
	if !e.Covered(VC{0, 3}) {
		t.Fatal("epoch 3@1 not covered by <0,3>")
	}
}

func TestStrings(t *testing.T) {
	if got := (VC{1, 2}).String(); got != "<1,2>" {
		t.Fatalf("VC String = %q", got)
	}
	if got := (Epoch{P: 2, C: 7}).String(); got != "7@2" {
		t.Fatalf("Epoch String = %q", got)
	}
}

// Property: exactly one of {a<b, b<a, a=b, concurrent} holds.
func TestQuickTrichotomy(t *testing.T) {
	f := func(xs, ys [4]uint8) bool {
		a, b := New(4), New(4)
		for i := 0; i < 4; i++ {
			a[i] = uint32(xs[i] % 4)
			b[i] = uint32(ys[i] % 4)
		}
		states := 0
		if a.HappensBefore(b) {
			states++
		}
		if b.HappensBefore(a) {
			states++
		}
		if a.Equal(b) {
			states++
		}
		if a.Concurrent(b) {
			states++
		}
		return states == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Join is the least upper bound — it dominates both inputs and
// any other dominator dominates the join.
func TestQuickJoinIsLUB(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			a[i] = uint32(rng.Intn(5))
			b[i] = uint32(rng.Intn(5))
		}
		j := a.Clone()
		j.Join(b)
		for i := 0; i < n; i++ {
			if j[i] < a[i] || j[i] < b[i] {
				return false
			}
			m := a[i]
			if b[i] > m {
				m = b[i]
			}
			if j[i] != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAtOrBefore(t *testing.T) {
	if !(VC{1, 2}).AtOrBefore(VC{1, 2}) {
		t.Fatal("AtOrBefore must be reflexive")
	}
	if !(VC{1, 2}).AtOrBefore(VC{1, 3}) {
		t.Fatal("<1,2> is at or before <1,3>")
	}
	if (VC{1, 2}).AtOrBefore(VC{0, 3}) {
		t.Fatal("<1,2> is not at or before <0,3>")
	}
}

func TestAtOrBeforeWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for width mismatch")
		}
	}()
	(VC{1}).AtOrBefore(VC{1, 2})
}

// Property: AtOrBefore is exactly HappensBefore-or-Equal, for arbitrary
// stamps — the slow-path semantics OrderedFast falls back to.
func TestQuickAtOrBeforeIsHBOrEqual(t *testing.T) {
	f := func(xs, ys [4]uint8) bool {
		a, b := New(4), New(4)
		for i := 0; i < 4; i++ {
			a[i] = uint32(xs[i] % 4)
			b[i] = uint32(ys[i] % 4)
		}
		return a.AtOrBefore(b) == (a.HappensBefore(b) || a.Equal(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// OrderedFast's epoch check must agree with the full component scan on
// every clock family with the release-tick discipline: a clock is
// exported (released) at most once per epoch interval, at its end,
// because the owner ticks right after publishing — the protocol the
// on-the-fly detector follows (it ticks after every operation). The test
// simulates such a family with random access/release-acquire/tick steps
// and checks every (access stamp, observer clock) pair both ways.
func TestQuickOrderedFastAgreesOnJoinFamilies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(4)
		clocks := make([]VC, p)
		for i := range clocks {
			clocks[i] = New(p)
			clocks[i].Tick(i)
		}
		type stamp struct {
			e Epoch
			v VC
		}
		var stamps []stamp
		for step := 0; step < 40; step++ {
			i := rng.Intn(p)
			switch rng.Intn(3) {
			case 0: // local access: stamp, then tick
				stamps = append(stamps, stamp{Epoch{P: i, C: clocks[i].Get(i)}, clocks[i].Clone()})
				clocks[i].Tick(i)
			case 1: // release i -> acquire j: whole-clock join, then the
				// releaser ticks — the discipline that makes epochs exact.
				j := rng.Intn(p)
				if j != i {
					clocks[j].Join(clocks[i])
					clocks[i].Tick(i)
				}
			default: // just advance
				clocks[i].Tick(i)
			}
		}
		for _, s := range stamps {
			for i := range clocks {
				fast := s.e.Covered(clocks[i])
				slow := s.v.AtOrBefore(clocks[i])
				if fast != slow {
					return false
				}
				if OrderedFast(s.e, s.v, clocks[i]) != slow {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// On stamps of unknown provenance the epoch check may claim coverage the
// full clock denies; OrderedFast's contract is then the fast path's
// answer, and the slow path remains reachable when the epoch is not
// covered.
func TestOrderedFastAdversarialStamps(t *testing.T) {
	// Epoch covered, clock not dominated: fast path decides true.
	e := Epoch{P: 0, C: 1}
	v := VC{1, 9}
	if !OrderedFast(e, v, VC{5, 0}) {
		t.Fatal("covered epoch must decide true")
	}
	// Epoch not covered: the slow path answers, both ways.
	if OrderedFast(Epoch{P: 0, C: 7}, VC{7, 1}, VC{5, 9}) {
		t.Fatal("uncovered epoch with non-dominated clock must be false")
	}
	if !OrderedFast(Epoch{P: 0, C: 7}, VC{5, 1}, VC{6, 9}) {
		t.Fatal("uncovered epoch with dominated clock must fall back true")
	}
}

// Package vclock implements vector clocks and epochs in the style used by
// on-the-fly race detectors (Dinning–Schonberg and successors).
//
// The paper's post-mortem technique does not need vector clocks — it builds
// the happens-before-1 graph explicitly — but §5 compares against on-the-fly
// detection, which we implement with the classic per-thread vector clock +
// per-location access history scheme (internal/onthefly).
package vclock

import (
	"fmt"
	"strings"
)

// VC is a fixed-width vector clock over processor ids 0..n-1.
type VC []uint32

// New returns the zero clock of width n.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Tick increments the component of processor p.
func (v VC) Tick(p int) { v[p]++ }

// Get returns the component of processor p.
func (v VC) Get(p int) uint32 { return v[p] }

// Join sets v to the component-wise maximum of v and other. This is the
// acquire-side operation: the acquiring processor learns everything the
// releasing processor had completed.
func (v VC) Join(other VC) {
	if len(other) != len(v) {
		panic(fmt.Sprintf("vclock: Join width mismatch %d vs %d", len(v), len(other)))
	}
	for i, o := range other {
		if o > v[i] {
			v[i] = o
		}
	}
}

// HappensBefore reports whether v ≤ other component-wise and v ≠ other,
// i.e. whether the event stamped v happens before the event stamped other.
func (v VC) HappensBefore(other VC) bool {
	le := true
	lt := false
	for i := range v {
		if v[i] > other[i] {
			le = false
			break
		}
		if v[i] < other[i] {
			lt = true
		}
	}
	return le && lt
}

// Concurrent reports whether neither clock happens before the other —
// the vector-clock analogue of "not ordered by hb1".
func (v VC) Concurrent(other VC) bool {
	return !v.HappensBefore(other) && !other.HappensBefore(v) && !v.Equal(other)
}

// AtOrBefore reports v ≤ other component-wise: the point stamped v
// happens before, or is, the point stamped other. This is the reflexive
// ordering the happens-before-1 timestamp layer queries (a trace event
// trivially reaches itself).
func (v VC) AtOrBefore(other VC) bool {
	if len(other) != len(v) {
		panic(fmt.Sprintf("vclock: AtOrBefore width mismatch %d vs %d", len(v), len(other)))
	}
	for i, x := range v {
		if x > other[i] {
			return false
		}
	}
	return true
}

// OrderedFast reports whether the access stamped by clock v and its own
// epoch e — e.P the access's processor, e.C = v.Get(e.P) — happens at or
// before the point stamped other. It is the hot compare of the detector's
// timestamp layers, structured as an epoch fast path in front of the full
// scan: e.Covered(other) decides in O(1), and only an uncovered epoch
// falls through to the O(p) component-wise AtOrBefore.
//
// The fast path is exact — agrees with AtOrBefore in both directions —
// for clock families with the release-tick discipline: a clock's own
// component advances (Tick) after every export of the clock (release), so
// each epoch interval is published at most once, at its end, and any
// observer whose clock covers the epoch transitively joined a state that
// dominates every stamp taken in that interval. The on-the-fly detector
// ticks after every operation, and the hb1 timestamp layer's epochs are
// exact by the program-order prefix structure of its streams; for both,
// the slow path is unreachable. It is kept as the oracle the agreement
// tests in this package compare the epoch check against, and as the
// correct answer for stamps of unknown provenance (clocks that leak
// mid-interval states disagree with their epochs — see the adversarial
// cases in the tests).
func OrderedFast(e Epoch, v, other VC) bool {
	if e.Covered(other) {
		return true
	}
	return v.AtOrBefore(other)
}

// Equal reports component-wise equality.
func (v VC) Equal(other VC) bool {
	if len(v) != len(other) {
		return false
	}
	for i := range v {
		if v[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders the clock as <a,b,c>.
func (v VC) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// Epoch is a scalar clock@processor pair: the lightweight last-access
// summary used in bounded access histories. An epoch e is covered by a
// vector clock v when v has advanced at least to e on e's processor.
type Epoch struct {
	P int    // processor id
	C uint32 // clock value
}

// Covered reports whether the access summarized by e happens before the
// point summarized by v (e.C ≤ v[e.P]).
func (e Epoch) Covered(v VC) bool { return e.C <= v.Get(e.P) }

// String renders the epoch as c@p.
func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.C, e.P) }

// Package vclock implements vector clocks and epochs in the style used by
// on-the-fly race detectors (Dinning–Schonberg and successors).
//
// The paper's post-mortem technique does not need vector clocks — it builds
// the happens-before-1 graph explicitly — but §5 compares against on-the-fly
// detection, which we implement with the classic per-thread vector clock +
// per-location access history scheme (internal/onthefly).
package vclock

import (
	"fmt"
	"strings"
)

// VC is a fixed-width vector clock over processor ids 0..n-1.
type VC []uint32

// New returns the zero clock of width n.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Tick increments the component of processor p.
func (v VC) Tick(p int) { v[p]++ }

// Get returns the component of processor p.
func (v VC) Get(p int) uint32 { return v[p] }

// Join sets v to the component-wise maximum of v and other. This is the
// acquire-side operation: the acquiring processor learns everything the
// releasing processor had completed.
func (v VC) Join(other VC) {
	if len(other) != len(v) {
		panic(fmt.Sprintf("vclock: Join width mismatch %d vs %d", len(v), len(other)))
	}
	for i, o := range other {
		if o > v[i] {
			v[i] = o
		}
	}
}

// HappensBefore reports whether v ≤ other component-wise and v ≠ other,
// i.e. whether the event stamped v happens before the event stamped other.
func (v VC) HappensBefore(other VC) bool {
	le := true
	lt := false
	for i := range v {
		if v[i] > other[i] {
			le = false
			break
		}
		if v[i] < other[i] {
			lt = true
		}
	}
	return le && lt
}

// Concurrent reports whether neither clock happens before the other —
// the vector-clock analogue of "not ordered by hb1".
func (v VC) Concurrent(other VC) bool {
	return !v.HappensBefore(other) && !other.HappensBefore(v) && !v.Equal(other)
}

// Equal reports component-wise equality.
func (v VC) Equal(other VC) bool {
	if len(v) != len(other) {
		return false
	}
	for i := range v {
		if v[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders the clock as <a,b,c>.
func (v VC) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// Epoch is a scalar clock@processor pair: the lightweight last-access
// summary used in bounded access histories. An epoch e is covered by a
// vector clock v when v has advanced at least to e on e's processor.
type Epoch struct {
	P int    // processor id
	C uint32 // clock value
}

// Covered reports whether the access summarized by e happens before the
// point summarized by v (e.C ≤ v[e.P]).
func (e Epoch) Covered(v VC) bool { return e.C <= v.Get(e.P) }

// String renders the epoch as c@p.
func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.C, e.P) }

package report

import (
	"bytes"
	"strings"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

func analyzeWorkload(t *testing.T, w *workload.Workload, seed int64) *core.Analysis {
	t.Helper()
	r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: seed, InitMemory: w.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRenderAnalysisRacy(t *testing.T) {
	a := analyzeWorkload(t, workload.Figure1a(), 1)
	var buf bytes.Buffer
	if err := RenderAnalysis(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"race report", "FIRST", "race ⟨", "Theorem 4.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRenderAnalysisClean(t *testing.T) {
	a := analyzeWorkload(t, workload.Figure1b(), 1)
	var buf bytes.Buffer
	if err := RenderAnalysis(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NO DATA RACES") {
		t.Fatalf("clean report wrong:\n%s", buf.String())
	}
}

func TestRenderAnalysisFirstBeforeNonFirst(t *testing.T) {
	// The Figure 2b anomaly yields first and non-first partitions; the
	// first ones must be printed first.
	r, err := workload.RunFig2Stale(memmodel.WO, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderAnalysis(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	fi := strings.Index(out, "[FIRST]")
	ni := strings.Index(out, "[non-first]")
	if fi < 0 {
		t.Fatalf("no first partition in report:\n%s", out)
	}
	if ni >= 0 && ni < fi {
		t.Fatalf("non-first printed before first:\n%s", out)
	}
	if !strings.Contains(out, "partition order (P):") ||
		!strings.Contains(out, "precedes partition") {
		t.Fatalf("partition order missing:\n%s", out)
	}
}

func TestRenderGraph(t *testing.T) {
	a := analyzeWorkload(t, workload.Figure1b(), 1)
	var buf bytes.Buffer
	if err := RenderGraph(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"P1:", "P2:", "so1←"} {
		if !strings.Contains(out, want) {
			t.Errorf("graph missing %q:\n%s", want, out)
		}
	}

	a = analyzeWorkload(t, workload.Figure1a(), 1)
	buf.Reset()
	if err := RenderGraph(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "race↔") {
		t.Errorf("racy graph missing race edges:\n%s", buf.String())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2, 3) // wider than the header
	tb.AddRow(4)       // narrower than the header
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3") || !strings.Contains(out, "4") {
		t.Fatalf("ragged cells lost:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("T1. throughput", "model", "ops/s", "ratio")
	tb.AddRow("SC", 1000, 1.0)
	tb.AddRow("WO", 2500, 2.5)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "T1.") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "2.50") {
		t.Fatal("float formatting wrong")
	}
	// Columns aligned: header and rows start "model" / "SC   ".
	if !strings.HasPrefix(lines[3], "SC ") {
		t.Fatalf("alignment wrong: %q", lines[3])
	}
}

package report

import (
	"fmt"
	"html/template"
	"io"

	"weakrace/internal/core"
	"weakrace/internal/provenance"
)

// RenderHTML writes a single-file static HTML race report: the run
// header and verdict, an SVG of the condensation DAG restricted to the
// data-race partitions (first partitions highlighted, edges the
// immediate precedence relation P), and one drill-down section per
// partition with its races' full witness explanations. The page embeds
// everything — no scripts, no external assets — so it can be archived
// as a CI artifact and opened anywhere.
func RenderHTML(w io.Writer, e *provenance.Explainer) error {
	a := e.Analysis()
	ws, err := e.All()
	if err != nil {
		return err
	}
	data := buildHTMLData(a, e, ws)
	return htmlTmpl.Execute(w, data)
}

// Geometry of the partition DAG rendering.
const (
	htmlNodeW   = 132
	htmlNodeH   = 46
	htmlGapX    = 72
	htmlGapY    = 28
	htmlMarginX = 24
	htmlMarginY = 24
)

type htmlNode struct {
	Index  int
	First  bool
	X, Y   int
	Races  int
	Events int
}

type htmlEdge struct {
	X1, Y1, X2, Y2 int
}

type htmlBoundary struct {
	CPU     int
	Pred    string
	Succ    string
	Partner int
	Of      string // which event this bracket is the cone of
	Stream  string // which event's stream is bracketed
}

type htmlRace struct {
	Race       int
	ARef, BRef string
	ADesc      string
	BDesc      string
	Locs       string
	LowerLevel []string
	Bounds     []htmlBoundary
	Chain      []int
}

type htmlPartition struct {
	Index  int
	First  bool
	Events string
	Races  []htmlRace
}

type htmlData struct {
	Program    string
	Model      string
	Seed       int64
	Events     int
	NumRaces   int
	DataRaces  int
	Partitions int
	First      int
	RaceFree   bool

	SVGW, SVGH int
	Nodes      []htmlNode
	Edges      []htmlEdge

	FirstParts []htmlPartition
	RestParts  []htmlPartition
}

func buildHTMLData(a *core.Analysis, e *provenance.Explainer, ws []*provenance.Witness) *htmlData {
	t := a.Trace
	d := &htmlData{
		Program:    t.ProgramName,
		Model:      t.Model.String(),
		Seed:       t.Seed,
		Events:     a.NumEvents,
		NumRaces:   len(a.Races),
		DataRaces:  len(a.DataRaces),
		Partitions: len(a.Partitions),
		First:      len(a.FirstPartitions),
		RaceFree:   a.RaceFree(),
	}

	// Layer the partition DAG by longest path over the immediate edges:
	// a partition sits one layer right of its deepest immediate
	// predecessor, so every edge points left-to-right.
	n := len(a.Partitions)
	succ := e.ImmediateSuccessors()
	layer := make([]int, n)
	indeg := make([]int, n)
	for _, outs := range succ {
		for _, j := range outs {
			indeg[j]++
		}
	}
	queue := []int{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, j := range succ[i] {
			if layer[i]+1 > layer[j] {
				layer[j] = layer[i] + 1
			}
			if indeg[j]--; indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	rowOf := make([]int, n)
	rows := map[int]int{} // layer → next free row
	maxLayer, maxRows := 0, 0
	for i := 0; i < n; i++ {
		rowOf[i] = rows[layer[i]]
		rows[layer[i]]++
		if layer[i] > maxLayer {
			maxLayer = layer[i]
		}
		if rows[layer[i]] > maxRows {
			maxRows = rows[layer[i]]
		}
	}
	if n > 0 {
		d.SVGW = htmlMarginX*2 + (maxLayer+1)*htmlNodeW + maxLayer*htmlGapX
		d.SVGH = htmlMarginY*2 + maxRows*htmlNodeH + (maxRows-1)*htmlGapY
	}
	pos := func(i int) (x, y int) {
		return htmlMarginX + layer[i]*(htmlNodeW+htmlGapX),
			htmlMarginY + rowOf[i]*(htmlNodeH+htmlGapY)
	}
	for i := 0; i < n; i++ {
		p := a.Partitions[i]
		x, y := pos(i)
		d.Nodes = append(d.Nodes, htmlNode{
			Index: i, First: p.First, X: x, Y: y,
			Races: len(p.Races), Events: len(p.Events),
		})
	}
	for i, outs := range succ {
		x1, y1 := pos(i)
		for _, j := range outs {
			x2, y2 := pos(j)
			d.Edges = append(d.Edges, htmlEdge{
				X1: x1 + htmlNodeW, Y1: y1 + htmlNodeH/2,
				X2: x2, Y2: y2 + htmlNodeH/2,
			})
		}
	}

	// Witnesses grouped by partition, first partitions leading.
	byPart := map[int][]htmlRace{}
	for _, wit := range ws {
		hr := htmlRace{
			Race:  wit.Race,
			ARef:  wit.A.Ref,
			BRef:  wit.B.Ref,
			ADesc: wit.A.Desc,
			BDesc: wit.B.Desc,
			Locs:  a.Races[wit.Race].Locs.String(),
			Chain: wit.Chain,
		}
		hr.LowerLevel = append(hr.LowerLevel, wit.LowerLevel...)
		for _, half := range []struct {
			of, stream string
			b          provenance.Boundary
		}{
			{wit.A.Ref, wit.B.Ref, wit.Certificate.A},
			{wit.B.Ref, wit.A.Ref, wit.Certificate.B},
		} {
			hr.Bounds = append(hr.Bounds, htmlBoundary{
				CPU: half.b.CPU, Pred: half.b.PredRef, Succ: half.b.SuccRef,
				Partner: half.b.Partner, Of: half.of, Stream: half.stream,
			})
		}
		byPart[wit.Partition] = append(byPart[wit.Partition], hr)
	}
	addPart := func(pi int) htmlPartition {
		p := a.Partitions[pi]
		return htmlPartition{
			Index:  pi,
			First:  p.First,
			Events: eventList(a, p.Events),
			Races:  byPart[pi],
		}
	}
	for _, pi := range a.FirstPartitions {
		d.FirstParts = append(d.FirstParts, addPart(pi))
	}
	for pi := range a.Partitions {
		if !a.Partitions[pi].First {
			d.RestParts = append(d.RestParts, addPart(pi))
		}
	}
	return d
}

var htmlTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"mid": func(v, half int) int { return v + half },
	"ref": func(ref string) string {
		if ref == "-" {
			return "(none)"
		}
		return ref
	},
	"inc": func(v int) int { return v + 1 },
	"arrowchain": func(chain []int) string {
		s := ""
		for i, pi := range chain {
			if i > 0 {
				s += " ⇒ "
			}
			s += fmt.Sprintf("partition %d", pi)
		}
		return s
	},
}).Parse(htmlTemplateText))

const htmlTemplateText = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>weakrace report: {{.Program}}</title>
<style>
 body { font-family: -apple-system, "Segoe UI", Helvetica, Arial, sans-serif;
        margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1f2328; }
 h1 { font-size: 1.4rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
 code, .mono { font-family: ui-monospace, "SF Mono", Menlo, Consolas, monospace; font-size: .92em; }
 .meta { color: #59636e; }
 .verdict-free { background: #dafbe1; border: 1px solid #1a7f37; }
 .verdict-racy { background: #ffebe9; border: 1px solid #cf222e; }
 .verdict { padding: .6rem 1rem; border-radius: 6px; margin: 1rem 0; }
 svg { border: 1px solid #d1d9e0; border-radius: 6px; background: #fff; max-width: 100%; }
 .legend { font-size: .85rem; color: #59636e; margin: .4rem 0 1.2rem; }
 .chip { display: inline-block; width: .9em; height: .9em; border-radius: 3px;
         vertical-align: -0.1em; margin-right: .25em; }
 details { border: 1px solid #d1d9e0; border-radius: 6px; margin: .6rem 0; padding: .4rem .8rem; }
 details.first { border-color: #cf222e; background: #fff8f8; }
 summary { cursor: pointer; font-weight: 600; }
 .race { border-top: 1px dashed #d1d9e0; margin-top: .6rem; padding-top: .6rem; }
 .cert { background: #f6f8fa; border-radius: 6px; padding: .5rem .8rem; margin: .4rem 0; }
 .tag-first { color: #cf222e; font-weight: 600; }
 .tag-rest { color: #59636e; }
 ul { margin: .3rem 0 .3rem 1.2rem; padding: 0; }
</style>
</head>
<body>
<h1>weakrace report: <code>{{.Program}}</code></h1>
<p class="meta">model {{.Model}}, seed {{.Seed}} — {{.Events}} events,
{{.NumRaces}} race(s) ({{.DataRaces}} data), {{.Partitions}} partition(s) ({{.First}} first)</p>

{{if .RaceFree}}
<div class="verdict verdict-free"><strong>NO DATA RACES.</strong>
By Condition 3.4(1) this execution was sequentially consistent.</div>
{{else}}
<div class="verdict verdict-racy"><strong>DATA RACES DETECTED.</strong>
Report the first partitions: by Theorem 4.2 each contains a race that occurs
in a sequentially consistent execution — debug those before trusting the rest.</div>

<h2>Partition DAG</h2>
<p class="legend"><span class="chip" style="background:#ffd6d6;border:1px solid #cf222e"></span>first partition
&nbsp;&nbsp;<span class="chip" style="background:#fff;border:1px solid #59636e"></span>non-first partition
&nbsp;&nbsp;edges: immediate precedence in the partition order P (Definition 4.1)</p>
<svg width="{{.SVGW}}" height="{{.SVGH}}" viewBox="0 0 {{.SVGW}} {{.SVGH}}" role="img"
     aria-label="condensation DAG of data-race partitions">
 <defs>
  <marker id="arr" viewBox="0 0 10 10" refX="9" refY="5" markerWidth="7" markerHeight="7" orient="auto-start-reverse">
   <path d="M 0 0 L 10 5 L 0 10 z" fill="#59636e"/>
  </marker>
 </defs>
 {{range .Edges}}
 <line x1="{{.X1}}" y1="{{.Y1}}" x2="{{.X2}}" y2="{{.Y2}}" stroke="#59636e" stroke-width="1.4" marker-end="url(#arr)"/>
 {{end}}
 {{range .Nodes}}
 <g>
  <rect x="{{.X}}" y="{{.Y}}" width="132" height="46" rx="6"
        fill="{{if .First}}#ffd6d6{{else}}#ffffff{{end}}"
        stroke="{{if .First}}#cf222e{{else}}#59636e{{end}}" stroke-width="{{if .First}}2{{else}}1.2{{end}}"/>
  <text x="{{mid .X 66}}" y="{{mid .Y 19}}" text-anchor="middle" font-size="12" font-weight="600">
   partition {{.Index}}{{if .First}} ★{{end}}</text>
  <text x="{{mid .X 66}}" y="{{mid .Y 36}}" text-anchor="middle" font-size="10" fill="#59636e">
   {{.Races}} race(s), {{.Events}} event(s)</text>
 </g>
 {{end}}
</svg>

<h2>First partitions</h2>
{{range .FirstParts}}{{template "partition" .}}{{end}}
{{if .RestParts}}
<h2>Non-first partitions</h2>
<p class="meta">Each is affected by an earlier partition (Definition 3.3); its races
may be artifacts of an upstream race.</p>
{{range .RestParts}}{{template "partition" .}}{{end}}
{{end}}
{{end}}

<p class="meta">Generated by weakrace — post-mortem detection of data races on
weak memory systems. Certificates bracket each racing event against the other
event's processor stream; the partner lying strictly inside the bracket proves
the pair is hb1-unordered.</p>
</body>
</html>
{{define "partition"}}
<details class="{{if .First}}first{{end}}" {{if .First}}open{{end}}>
<summary>partition {{.Index}} —
<span class="{{if .First}}tag-first{{else}}tag-rest{{end}}">{{if .First}}FIRST{{else}}non-first{{end}}</span>
({{len .Races}} data race(s))</summary>
<p class="mono meta">events {{.Events}}</p>
{{range .Races}}
<div class="race">
 <p><strong>race {{.Race}}</strong> ⟨<code>{{.ARef}}</code>, <code>{{.BRef}}</code>⟩ on locations <code>{{.Locs}}</code></p>
 <ul>
  <li><code>{{.ARef}}</code>: <span class="mono">{{.ADesc}}</span></li>
  <li><code>{{.BRef}}</code>: <span class="mono">{{.BDesc}}</span></li>
 </ul>
 {{if .LowerLevel}}
 <p>lower-level candidates:</p>
 <ul>{{range .LowerLevel}}<li class="mono">{{.}}</li>{{end}}</ul>
 {{end}}
 <div class="cert">
  <p><strong>unorderedness certificate</strong></p>
  <ul>
  {{range .Bounds}}
   <li>on P{{inc .CPU}}: last event reaching <code>{{.Of}}</code> is <code>{{ref .Pred}}</code>,
   first event <code>{{.Of}}</code> reaches is <code>{{ref .Succ}}</code>;
   <code>{{.Stream}}</code> (index {{.Partner}}) lies strictly between ⇒ unordered</li>
  {{end}}
  </ul>
 </div>
 {{if .Chain}}<p>affected by: <span class="mono">{{arrowchain .Chain}}</span></p>{{end}}
</div>
{{end}}
</details>
{{end}}
`

package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"weakrace/internal/provenance"
)

// RenderExplanations writes the per-race witness explanations as text: for
// each data race the conflicting accesses, the lower-level candidates, the
// hb1-unorderedness certificate, and the partition verdict — with the
// affected-by chain back to a first partition when the race is not first.
func RenderExplanations(w io.Writer, e *provenance.Explainer) error {
	a := e.Analysis()
	ws, err := e.All()
	if err != nil {
		return err
	}
	t := a.Trace
	if _, err := fmt.Fprintf(w, "witnesses for %q (model %s, seed %d): %d data race(s)\n",
		t.ProgramName, t.Model, t.Seed, len(ws)); err != nil {
		return err
	}
	for _, wit := range ws {
		if err := renderWitness(w, wit); err != nil {
			return err
		}
	}
	return nil
}

func renderWitness(w io.Writer, wit *provenance.Witness) error {
	locs := make([]string, len(wit.Locations))
	for i, loc := range wit.Locations {
		locs[i] = fmt.Sprint(loc)
	}
	if _, err := fmt.Fprintf(w, "race %d ⟨%s, %s⟩ on location(s) {%s}\n",
		wit.Race, wit.A.Ref, wit.B.Ref, strings.Join(locs, ", ")); err != nil {
		return err
	}
	for _, s := range []provenance.Side{wit.A, wit.B} {
		if _, err := fmt.Fprintf(w, "  %s = CPU %d event %d: %s\n", s.Ref, s.CPU, s.Index, s.Desc); err != nil {
			return err
		}
	}
	for _, ll := range wit.LowerLevel {
		if _, err := fmt.Fprintf(w, "  lower-level: %s\n", ll); err != nil {
			return err
		}
	}
	cert := wit.Certificate
	for _, half := range []struct {
		x, stream string
		b         provenance.Boundary
	}{
		{wit.A.Ref, wit.B.Ref, cert.A},
		{wit.B.Ref, wit.A.Ref, cert.B},
	} {
		if _, err := fmt.Fprintf(w,
			"  certificate: on P%d, last event reaching %s is %s and first event %s reaches is %s; %s at index %d lies strictly between ⇒ unordered\n",
			half.b.CPU+1, half.x, orNone(half.b.PredRef), half.x, orNone(half.b.SuccRef),
			half.stream, half.b.Partner); err != nil {
			return err
		}
	}
	verdict := "NON-FIRST"
	if wit.First {
		verdict = "FIRST (Theorem 4.2: a race of this partition occurs under sequential consistency)"
	}
	if _, err := fmt.Fprintf(w, "  partition %d: %s\n", wit.Partition, verdict); err != nil {
		return err
	}
	if len(wit.Chain) > 0 {
		hops := make([]string, len(wit.Chain))
		for i, pi := range wit.Chain {
			hops[i] = fmt.Sprintf("partition %d", pi)
		}
		if _, err := fmt.Fprintf(w, "  affected by (Definition 3.3): %s\n",
			strings.Join(hops, " ⇒ ")); err != nil {
			return err
		}
	}
	return nil
}

func orNone(ref string) string {
	if ref == "-" {
		return "(none)"
	}
	return ref
}

// WriteWitnessesJSON writes the witnesses as an indented JSON array —
// the machine-readable companion of RenderExplanations, and the format
// the provenance golden tests pin.
func WriteWitnessesJSON(w io.Writer, ws []*provenance.Witness) error {
	data, err := json.MarshalIndent(ws, "", " ")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

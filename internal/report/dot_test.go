package report

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/provenance"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

func TestRenderDOTFigure2(t *testing.T) {
	r, err := workload.RunFig2Stale(memmodel.WO, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderDOT(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph hb1 {",
		"subgraph cluster_p0",
		"subgraph cluster_p2",
		"dir=both, color=red",   // race edges
		"fillcolor=\"#ffd6d6\"", // first-partition events highlighted
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Balanced braces (cheap well-formedness check).
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Fatal("unbalanced braces in DOT output")
	}
}

func TestRenderDOTRaceFree(t *testing.T) {
	a := analyzeWorkload(t, workload.Figure1b(), 1)
	var buf bytes.Buffer
	if err := RenderDOT(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "dir=both") {
		t.Fatal("race edges in race-free DOT")
	}
	if !strings.Contains(out, "style=dashed, label=\"so1\"") {
		t.Fatal("so1 edge missing")
	}
}

// TestRenderPartitionDOT: the condensation DOT mirrors the HTML DAG —
// one node per partition, first partitions filled red, race-edge counts
// in the labels, and exactly the immediate precedence edges.
func TestRenderPartitionDOT(t *testing.T) {
	r, err := workload.RunFig2Stale(memmodel.WO, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := provenance.NewExplainer(a)
	var buf bytes.Buffer
	if err := RenderPartitionDOT(&buf, e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph partitions {",
		"fillcolor=\"#ffd6d6\"", // first partitions filled, like the HTML
		"race edge(s)",          // partner-edge counts in labels
		"precedes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("partition DOT missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, " ★"); got != len(a.FirstPartitions) {
		t.Errorf("%d first markers for %d first partitions", got, len(a.FirstPartitions))
	}
	nodes := regexp.MustCompile(`(?m)^  p\d+ \[`).FindAllString(out, -1)
	if len(nodes) != len(a.Partitions) {
		t.Errorf("%d nodes for %d partitions", len(nodes), len(a.Partitions))
	}
	edges := 0
	for _, outs := range e.ImmediateSuccessors() {
		edges += len(outs)
	}
	if got := strings.Count(out, " -> "); got != edges {
		t.Errorf("%d DOT edges for %d immediate precedence edges", got, edges)
	}
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Fatal("unbalanced braces in partition DOT")
	}
}

// A race-free analysis yields an empty condensation: a valid DOT graph
// with no partition nodes.
func TestRenderPartitionDOTRaceFree(t *testing.T) {
	a := analyzeWorkload(t, workload.Figure1b(), 1)
	var buf bytes.Buffer
	if err := RenderPartitionDOT(&buf, provenance.NewExplainer(a)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "p0 [") {
		t.Fatal("race-free condensation has nodes")
	}
}

package report

import (
	"bytes"
	"strings"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

func TestRenderDOTFigure2(t *testing.T) {
	r, err := workload.RunFig2Stale(memmodel.WO, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderDOT(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph hb1 {",
		"subgraph cluster_p0",
		"subgraph cluster_p2",
		"dir=both, color=red",   // race edges
		"fillcolor=\"#ffd6d6\"", // first-partition events highlighted
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Balanced braces (cheap well-formedness check).
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Fatal("unbalanced braces in DOT output")
	}
}

func TestRenderDOTRaceFree(t *testing.T) {
	a := analyzeWorkload(t, workload.Figure1b(), 1)
	var buf bytes.Buffer
	if err := RenderDOT(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "dir=both") {
		t.Fatal("race edges in race-free DOT")
	}
	if !strings.Contains(out, "style=dashed, label=\"so1\"") {
		t.Fatal("so1 edge missing")
	}
}

package report

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"math"
	"sort"
	"strings"
)

// BenchPoint is one wrbench output file (one PR's BENCH_*.json) in the
// trajectory. The struct mirrors the wrbench Output JSON shape without
// importing the command package.
type BenchPoint struct {
	// Label identifies the point on the x axis — the file's stem
	// ("BENCH_5") unless the caller says otherwise.
	Label string `json:"-"`

	Meta struct {
		GoVersion  string `json:"go_version"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		Commit     string `json:"commit"`
	} `json:"meta"`
	Iters     int             `json:"iters"`
	Scenarios []BenchScenario `json:"scenarios"`
}

// BenchScenario is one scenario's measurement inside a BenchPoint.
type BenchScenario struct {
	Name      string             `json:"name"`
	Iters     int                `json:"iters"`
	TotalNS   int64              `json:"total_ns"`
	NSPerIter int64              `json:"ns_per_iter"`
	Metrics   map[string]float64 `json:"metrics"`
}

// ParseBenchPoint decodes one BENCH_*.json document.
func ParseBenchPoint(label string, data []byte) (BenchPoint, error) {
	var p BenchPoint
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("parse %s: %w", label, err)
	}
	if len(p.Scenarios) == 0 {
		return p, fmt.Errorf("parse %s: no scenarios", label)
	}
	p.Label = label
	return p, nil
}

// RenderTrajectory writes a self-contained HTML report charting each
// benchmark scenario's ns/op across the given points (one per checked-in
// BENCH_*.json, i.e. per PR), with the full metric set tabulated under
// each chart. Static SVG, no scripts, no external assets.
func RenderTrajectory(w io.Writer, points []BenchPoint) error {
	if len(points) == 0 {
		return fmt.Errorf("trajectory: no bench points")
	}
	var b strings.Builder
	b.WriteString(trajectoryHead)

	b.WriteString(`<h1>weakrace benchmark trajectory</h1>` + "\n")
	fmt.Fprintf(&b, `<div class="sub">%d bench points · %s · %s/%s</div>`+"\n",
		len(points), html.EscapeString(points[len(points)-1].Meta.GoVersion),
		html.EscapeString(points[len(points)-1].Meta.GOOS),
		html.EscapeString(points[len(points)-1].Meta.GOARCH))

	writeTrajectoryPointsTable(&b, points)
	for _, name := range scenarioOrder(points) {
		writeScenarioCard(&b, name, points)
	}

	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// scenarioOrder returns scenario names in first-appearance order across
// the points, so the report is stable as scenarios come and go.
func scenarioOrder(points []BenchPoint) []string {
	var order []string
	seen := map[string]bool{}
	for _, p := range points {
		for _, sc := range p.Scenarios {
			if !seen[sc.Name] {
				seen[sc.Name] = true
				order = append(order, sc.Name)
			}
		}
	}
	return order
}

func findScenario(p BenchPoint, name string) *BenchScenario {
	for i := range p.Scenarios {
		if p.Scenarios[i].Name == name {
			return &p.Scenarios[i]
		}
	}
	return nil
}

// writeTrajectoryPointsTable identifies each x-axis point: label,
// commit, toolchain, iteration count.
func writeTrajectoryPointsTable(b *strings.Builder, points []BenchPoint) {
	b.WriteString(`<div class="card"><h2>Bench points</h2><table><thead><tr>` +
		`<th>point</th><th>commit</th><th>go</th><th>iters</th></tr></thead><tbody>` + "\n")
	for _, p := range points {
		commit := p.Meta.Commit
		if len(commit) > 10 {
			commit = commit[:10]
		}
		fmt.Fprintf(b, `<tr><td>%s</td><td class="mono">%s</td><td>%s</td><td>%d</td></tr>`+"\n",
			html.EscapeString(p.Label), html.EscapeString(commit),
			html.EscapeString(p.Meta.GoVersion), p.Iters)
	}
	b.WriteString("</tbody></table></div>\n")
}

// writeScenarioCard renders one scenario: headline delta, the ns/op
// line chart, and the metric table across points. Every card shares the
// full point list as its x axis: a scenario that only appears in newer
// BENCH files (segments-512 did not exist before PR 8) keeps its
// measurements over the points that have them and leaves gaps at the
// rest, instead of sliding the series left and misaligning it against
// the other cards.
func writeScenarioCard(b *strings.Builder, name string, points []BenchPoint) {
	type pt struct {
		idx   int // position in the global point list
		label string
		val   float64
	}
	var series []pt
	for i, p := range points {
		if sc := findScenario(p, name); sc != nil {
			series = append(series, pt{i, p.Label, float64(sc.NSPerIter)})
		}
	}
	if len(series) == 0 {
		return
	}

	fmt.Fprintf(b, `<div class="card"><h2>%s — ns/op</h2>`+"\n", html.EscapeString(name))
	first, last := series[0].val, series[len(series)-1].val
	if len(series) > 1 && first > 0 {
		delta := 100 * (last - first) / first
		cls := "delta-good"
		if delta > 0 {
			cls = "delta-bad"
		}
		fmt.Fprintf(b, `<div class="sub">%s now; <span class="%s">%+.1f%%</span> vs %s</div>`+"\n",
			fmtTrajNS(last), cls, delta, html.EscapeString(series[0].label))
	}

	// Chart geometry. Baseline at zero keeps the magnitude honest.
	const (
		width   = 720.0
		height  = 220.0
		padL    = 64.0
		padR    = 90.0
		padT    = 14.0
		padB    = 30.0
		plotW   = width - padL - padR
		plotH   = height - padT - padB
		baseY   = height - padB
		axLabel = 11
	)
	maxV := 0.0
	for _, s := range series {
		maxV = math.Max(maxV, s.val)
	}
	if maxV == 0 {
		maxV = 1
	}
	top := niceCeil(maxV)
	// x positions come from the GLOBAL point index, so every card's axis
	// lines up with every other card's regardless of which points carry
	// this scenario.
	xAt := func(i int) float64 {
		if len(points) == 1 {
			return padL + plotW/2
		}
		return padL + plotW*float64(i)/float64(len(points)-1)
	}
	yAt := func(v float64) float64 { return baseY - plotH*v/top }

	fmt.Fprintf(b, `<svg viewBox="0 0 %g %g" role="img" aria-label="%s ns per op across bench points">`+"\n",
		width, height, html.EscapeString(name))
	// Hairline gridlines at 0, ½, 1 of the top tick; y labels in muted ink.
	for _, f := range []float64{0, 0.5, 1} {
		v := top * f
		y := yAt(v)
		fmt.Fprintf(b, `<line x1="%g" y1="%.1f" x2="%g" y2="%.1f" stroke="var(--grid)" stroke-width="1"/>`+"\n",
			padL, y, width-padR, y)
		fmt.Fprintf(b, `<text x="%g" y="%.1f" text-anchor="end" font-size="%d" fill="var(--ink-3)">%s</text>`+"\n",
			padL-8, y+4, axLabel, fmtTrajNS(v))
	}
	// Area wash and line per contiguous run of measured points: a point
	// without this scenario breaks the line instead of being bridged, so
	// gaps read as "not measured", not as interpolated data.
	for lo := 0; lo < len(series); {
		hi := lo + 1
		for hi < len(series) && series[hi].idx == series[hi-1].idx+1 {
			hi++
		}
		if hi-lo > 1 {
			var ptsAttr strings.Builder
			for i := lo; i < hi; i++ {
				if i > lo {
					ptsAttr.WriteByte(' ')
				}
				fmt.Fprintf(&ptsAttr, "%.1f,%.1f", xAt(series[i].idx), yAt(series[i].val))
			}
			fmt.Fprintf(b, `<polygon points="%.1f,%.1f %s %.1f,%.1f" fill="var(--series-1)" opacity="0.1"/>`+"\n",
				xAt(series[lo].idx), baseY, ptsAttr.String(), xAt(series[hi-1].idx), baseY)
			fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="var(--series-1)" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>`+"\n",
				ptsAttr.String())
		}
		lo = hi
	}
	// Markers with a surface ring; the x-axis labels every point, with
	// the ones missing this scenario in the same muted ink.
	for _, s := range series {
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="4" fill="var(--series-1)" stroke="var(--surface-1)" stroke-width="2"><title>%s: %s</title></circle>`+"\n",
			xAt(s.idx), yAt(s.val), html.EscapeString(s.label), fmtTrajNS(s.val))
	}
	for i, p := range points {
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="%d" fill="var(--ink-3)">%s</text>`+"\n",
			xAt(i), baseY+18, axLabel, html.EscapeString(p.Label))
	}
	lastS := series[len(series)-1]
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="12" font-weight="600" fill="var(--ink-1)">%s</text>`+"\n",
		xAt(lastS.idx)+10, yAt(lastS.val)+4, fmtTrajNS(lastS.val))
	b.WriteString("</svg>\n")

	writeMetricTable(b, name, points)
	b.WriteString("</div>\n")
}

// writeMetricTable tabulates every metric the scenario reported, one
// column per bench point — the table view carrying what the chart's
// single headline series does not.
func writeMetricTable(b *strings.Builder, name string, points []BenchPoint) {
	keys := map[string]bool{}
	for _, p := range points {
		if sc := findScenario(p, name); sc != nil {
			for k := range sc.Metrics {
				keys[k] = true
			}
		}
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	b.WriteString(`<table><thead><tr><th>metric</th>`)
	for _, p := range points {
		fmt.Fprintf(b, "<th>%s</th>", html.EscapeString(p.Label))
	}
	b.WriteString("</tr></thead><tbody>\n")
	fmt.Fprintf(b, "<tr><td>ns_per_iter</td>")
	for _, p := range points {
		if sc := findScenario(p, name); sc != nil {
			fmt.Fprintf(b, "<td>%s</td>", fmtTrajFloat(float64(sc.NSPerIter)))
		} else {
			b.WriteString("<td>–</td>")
		}
	}
	b.WriteString("</tr>\n")
	for _, k := range sorted {
		fmt.Fprintf(b, "<tr><td>%s</td>", html.EscapeString(k))
		for _, p := range points {
			sc := findScenario(p, name)
			if sc == nil {
				b.WriteString("<td>–</td>")
				continue
			}
			v, ok := sc.Metrics[k]
			if !ok {
				b.WriteString("<td>–</td>")
				continue
			}
			fmt.Fprintf(b, "<td>%s</td>", fmtTrajFloat(v))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</tbody></table>\n")
}

// niceCeil rounds v up to 1, 2, or 5 times a power of ten — a clean
// top tick for the y axis.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// fmtTrajNS renders a nanosecond quantity at display precision.
func fmtTrajNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// fmtTrajFloat renders a metric value compactly: integers plain,
// fractions to sensible precision.
func fmtTrajFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

const trajectoryHead = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>weakrace benchmark trajectory</title>
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --plane: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --delta-good: #006300; --delta-bad: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --plane: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --delta-good: #0ca30c; --delta-bad: #d03b3b;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 20px; max-width: 880px;
  background: var(--plane); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 18px; margin: 0 0 2px; }
.sub { color: var(--ink-2); font-size: 12px; margin-bottom: 12px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 14px; margin-bottom: 14px;
}
.card h2 { font-size: 14px; margin: 0 0 4px; }
.card svg { display: block; width: 100%; height: auto; margin: 8px 0; }
table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 4px 8px; border-bottom: 1px solid var(--grid); font-size: 12.5px; }
th { color: var(--ink-3); font-weight: 500; }
th:first-child, td:first-child { text-align: left; }
td:first-child { color: var(--ink-2); }
.mono { font-family: ui-monospace, monospace; font-size: 12px; }
.delta-good { color: var(--delta-good); font-weight: 600; }
.delta-bad { color: var(--delta-bad); font-weight: 600; }
</style>
</head>
<body>
`

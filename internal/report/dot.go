package report

import (
	"fmt"
	"io"
	"strings"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/provenance"
	"weakrace/internal/trace"
)

// RenderDOT writes the augmented happens-before-1 graph in Graphviz DOT
// form — the publishable rendering of the paper's Figure 3. Each
// processor becomes a cluster of its events in program order; so1
// pairings are dashed edges; races are red double-headed edges; partition
// membership colors the racing events (first partitions solid, non-first
// hollow).
func RenderDOT(w io.Writer, a *core.Analysis) error {
	var sb strings.Builder
	sb.WriteString("digraph hb1 {\n")
	sb.WriteString("  rankdir=TB;\n")
	sb.WriteString("  node [shape=box, fontname=\"Helvetica\", fontsize=10];\n")
	fmt.Fprintf(&sb, "  label=%q;\n", fmt.Sprintf("augmented happens-before-1 graph: %s (%s, seed %d)",
		a.Trace.ProgramName, a.Trace.Model, a.Trace.Seed))

	partOf := map[core.EventID]int{}
	for pi, p := range a.Partitions {
		for _, id := range p.Events {
			partOf[id] = pi
		}
	}

	node := func(id core.EventID) string { return fmt.Sprintf("e%d", id) }
	for c, evs := range a.Trace.PerCPU {
		fmt.Fprintf(&sb, "  subgraph cluster_p%d {\n", c)
		fmt.Fprintf(&sb, "    label=\"P%d\";\n", c+1)
		for i, ev := range evs {
			id := a.ID(trace.EventRef{CPU: c, Index: i})
			label := eventLabel(ev)
			attrs := ""
			if pi, ok := partOf[id]; ok {
				if a.Partitions[pi].First {
					attrs = ", style=filled, fillcolor=\"#ffd6d6\", color=red"
				} else {
					attrs = ", color=red"
				}
			}
			fmt.Fprintf(&sb, "    %s [label=%q%s];\n", node(id), label, attrs)
		}
		// Program order chain.
		for i := 0; i+1 < len(evs); i++ {
			fmt.Fprintf(&sb, "    %s -> %s;\n",
				node(a.ID(trace.EventRef{CPU: c, Index: i})),
				node(a.ID(trace.EventRef{CPU: c, Index: i + 1})))
		}
		sb.WriteString("  }\n")
	}

	// so1 edges.
	for c, evs := range a.Trace.PerCPU {
		for i, ev := range evs {
			if ev.Kind == trace.Sync && ev.Role == memmodel.RoleAcquire &&
				ev.Observed.Valid() && a.Options.Pairing.CanPair(ev.ObservedRole) {
				fmt.Fprintf(&sb, "  %s -> %s [style=dashed, label=\"so1\", fontsize=8];\n",
					node(a.ID(ev.Observed)), node(a.ID(trace.EventRef{CPU: c, Index: i})))
			}
		}
	}

	// Race edges (data races only; one double-headed edge per race).
	for _, ri := range a.DataRaces {
		r := a.Races[ri]
		fmt.Fprintf(&sb, "  %s -> %s [dir=both, color=red, label=%q, fontsize=8];\n",
			node(r.A), node(r.B), "race "+r.Locs.String())
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func eventLabel(ev *trace.Event) string {
	if ev.Kind == trace.Sync {
		return fmt.Sprintf("%s(%d)", ev.Role, ev.Loc)
	}
	return fmt.Sprintf("R%s W%s", ev.Reads, ev.Writes)
}

// RenderPartitionDOT writes the condensation view of the augmented graph
// in Graphviz DOT form: one node per data-race partition, colored by
// first status exactly as the HTML report colors its DAG (first filled
// red, non-first hollow), labeled with the partition's race-partner edge
// and event counts, and connected by the immediate edges of the
// partition order P — the transitive reduction, so the drawing matches
// Definition 4.1 without clutter.
func RenderPartitionDOT(w io.Writer, e *provenance.Explainer) error {
	a := e.Analysis()
	var sb strings.Builder
	sb.WriteString("digraph partitions {\n")
	sb.WriteString("  rankdir=LR;\n")
	sb.WriteString("  node [shape=box, fontname=\"Helvetica\", fontsize=10];\n")
	fmt.Fprintf(&sb, "  label=%q;\n", fmt.Sprintf("data-race partitions: %s (%s, seed %d) — %d first of %d",
		a.Trace.ProgramName, a.Trace.Model, a.Trace.Seed, len(a.FirstPartitions), len(a.Partitions)))
	for pi, p := range a.Partitions {
		attrs := "color=\"#59636e\""
		if p.First {
			attrs = "style=filled, fillcolor=\"#ffd6d6\", color=red, penwidth=2"
		}
		fmt.Fprintf(&sb, "  p%d [label=%q, %s];\n", pi,
			fmt.Sprintf("partition %d%s\n%d race edge(s), %d event(s)",
				pi, map[bool]string{true: " ★", false: ""}[p.First], len(p.Races), len(p.Events)),
			attrs)
	}
	for i, outs := range e.ImmediateSuccessors() {
		for _, j := range outs {
			fmt.Fprintf(&sb, "  p%d -> p%d [label=\"precedes\", fontsize=8];\n", i, j)
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

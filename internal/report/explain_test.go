package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/provenance"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// explainFig2 analyzes the deterministic Figure 2b anomaly (first and
// non-first partitions) and returns its explainer.
func explainFig2(t *testing.T) *provenance.Explainer {
	t.Helper()
	r, err := workload.RunFig2Stale(memmodel.WO, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return provenance.NewExplainer(a)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/report -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverges from %s:\ngot:\n%s\nwant:\n%s\n(run go test ./internal/report -update if intended)", path, got, want)
	}
}

// The text explanation for the Figure 2b anomaly is pinned: it is the
// format developers and scripts read, so changes must be deliberate.
func TestRenderExplanationsGolden(t *testing.T) {
	e := explainFig2(t)
	var buf bytes.Buffer
	if err := RenderExplanations(&buf, e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"witnesses for", "certificate:", "lies strictly between ⇒ unordered",
		"FIRST (Theorem 4.2", "affected by (Definition 3.3)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
	checkGolden(t, "explain_fig2_wo_1.golden", buf.Bytes())
}

// WriteWitnessesJSON must emit exactly the witnesses' canonical JSON —
// parseable, and element-for-element equal to what the explainer
// produced.
func TestWriteWitnessesJSON(t *testing.T) {
	e := explainFig2(t)
	ws, err := e.All()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWitnessesJSON(&buf, ws); err != nil {
		t.Fatal(err)
	}
	var parsed []*provenance.Witness
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(ws) {
		t.Fatalf("round-trip lost witnesses: %d != %d", len(parsed), len(ws))
	}
	for i := range ws {
		a, _ := json.Marshal(ws[i])
		b, _ := json.Marshal(parsed[i])
		if string(a) != string(b) {
			t.Errorf("witness %d changed through serialization:\n%s\n%s", i, a, b)
		}
	}
}

func TestExplainRenderersPropagateWriteErrors(t *testing.T) {
	e := explainFig2(t)
	if err := RenderExplanations(&failWriter{}, e); err == nil {
		t.Error("RenderExplanations swallowed write error")
	}
	if err := RenderExplanations(&failWriter{n: 3}, e); err == nil {
		t.Error("RenderExplanations swallowed mid-stream write error")
	}
	ws, err := e.All()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteWitnessesJSON(&failWriter{}, ws); err == nil {
		t.Error("WriteWitnessesJSON swallowed write error")
	}
}

package report

import (
	"html"
	"io"
	"strings"
)

// RenderDashboard writes the observability plane's live dashboard: one
// self-contained HTML page (no external assets, no frameworks) that
// polls /status and /metrics.json once a second, derives rate columns
// from successive snapshots, trends seeds/sec and distinct races as
// sparklines, tabulates per-phase latency with the server's
// bucket-interpolated p50/p90/p99, and tails /events over SSE. The tool
// name is the only injected value; everything else is static markup.
func RenderDashboard(w io.Writer, tool string) error {
	page := strings.ReplaceAll(dashboardHTML, "__TOOL__", html.EscapeString(tool))
	_, err := io.WriteString(w, page)
	return err
}

// dashboardHTML is the page. Styling follows the repo's report look:
// token-driven colors with a dark mode stepped for its surface, thin
// marks, recessive chrome. JS avoids template literals (the whole page
// lives in a Go raw string, which cannot contain backticks).
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TOOL__ — weakrace live</title>
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --plane: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834;
  --status-critical: #d03b3b; --status-good: #0ca30c;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --plane: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 20px; background: var(--plane); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 18px; margin: 0 0 2px; }
.sub { color: var(--ink-2); font-size: 12px; margin-bottom: 16px; }
.tiles { display: grid; grid-template-columns: repeat(auto-fit, minmax(180px, 1fr)); gap: 12px; margin-bottom: 16px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 12px 14px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
.tile .hint { color: var(--ink-3); font-size: 11px; margin-top: 2px; min-height: 14px; }
.tile svg { display: block; margin-top: 6px; width: 100%; height: 36px; }
.cards { display: grid; grid-template-columns: 1fr; gap: 12px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 14px;
}
.card h2 { font-size: 13px; margin: 0 0 8px; color: var(--ink-2); font-weight: 600; }
table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 4px 8px; border-bottom: 1px solid var(--grid); font-size: 12.5px; }
th { color: var(--ink-3); font-weight: 500; }
th:first-child, td:first-child { text-align: left; }
td:first-child { color: var(--ink-2); }
#events { list-style: none; margin: 0; padding: 0; font-size: 12.5px; max-height: 260px; overflow-y: auto; }
#events li { padding: 3px 0; border-bottom: 1px solid var(--grid); color: var(--ink-2); }
#events li .t { color: var(--ink-3); margin-right: 8px; font-variant-numeric: tabular-nums; }
#events li.race { color: var(--ink-1); }
#events li.race .badge {
  color: var(--status-critical); font-weight: 600; margin-right: 6px;
}
#events li.watchdog .badge {
  color: var(--series-2); font-weight: 600; margin-right: 6px;
}
#streams-card a { color: var(--series-1); text-decoration: none; }
#streams-card a:hover { text-decoration: underline; }
#conn { font-size: 11px; color: var(--ink-3); }
.meter { height: 6px; border-radius: 3px; background: var(--grid); overflow: hidden; margin-top: 8px; }
.meter > div { height: 100%; background: var(--series-1); width: 0%; }
</style>
</head>
<body>
<h1>__TOOL__ <span id="conn">connecting…</span></h1>
<div class="sub" id="idline">weakrace observability plane</div>

<div class="tiles">
  <div class="tile"><div class="label">Seeds done</div>
    <div class="value" id="seeds-done">–</div>
    <div class="hint" id="seeds-total-hint"></div>
    <div class="meter"><div id="seeds-meter"></div></div></div>
  <div class="tile"><div class="label">Seeds / sec</div>
    <div class="value" id="seeds-rate">–</div>
    <div class="hint" id="eta"></div>
    <svg id="spark-rate" viewBox="0 0 240 36" preserveAspectRatio="none" role="img" aria-label="seeds per second trend"></svg></div>
  <div class="tile"><div class="label">Distinct races</div>
    <div class="value" id="races">–</div>
    <div class="hint" id="racy-hint"></div>
    <svg id="spark-races" viewBox="0 0 240 36" preserveAspectRatio="none" role="img" aria-label="distinct races trend"></svg></div>
  <div class="tile"><div class="label">Current phase</div>
    <div class="value" id="phase" style="font-size:16px; overflow-wrap:anywhere;">idle</div>
    <div class="hint" id="uptime"></div></div>
</div>

<div class="cards">
  <div class="card" id="streams-card" style="display:none">
    <h2>Stream batch latency (queue wait / detector feed; traces tail-sampled)</h2>
    <div class="sub" id="streams-agg"></div>
    <table id="streams"><thead><tr>
      <th>stream</th><th>program</th><th>events</th><th>batches</th><th>queued</th><th>queue hw</th><th>wait p99</th><th>feed p99</th><th>trace</th>
    </tr></thead><tbody></tbody></table>
  </div>
  <div class="card">
    <h2>Phase latency (bucket-interpolated quantiles; rate from successive snapshots)</h2>
    <table id="phases"><thead><tr>
      <th>phase</th><th>count</th><th>rate /s</th><th>total</th><th>p50</th><th>p90</th><th>p99</th><th>max</th>
    </tr></thead><tbody></tbody></table>
  </div>
  <div class="card">
    <h2>Events (coalesced SSE — races always, progress and phases newest-wins)</h2>
    <ul id="events"></ul>
  </div>
</div>

<script>
(function () {
  'use strict';
  var prev = null, prevAt = 0;
  var rateHist = [], raceHist = [];
  var HIST = 120;

  function $(id) { return document.getElementById(id); }

  function fmtNum(v) {
    if (v == null || isNaN(v)) return '–';
    if (v >= 1e6) return (v / 1e6).toFixed(1) + 'M';
    if (v >= 1e4) return (v / 1e3).toFixed(1) + 'K';
    return String(Math.round(v * 10) / 10);
  }
  function fmtNS(ns) {
    if (ns == null) return '–';
    if (ns >= 1e9) return (ns / 1e9).toFixed(2) + 's';
    if (ns >= 1e6) return (ns / 1e6).toFixed(2) + 'ms';
    if (ns >= 1e3) return (ns / 1e3).toFixed(1) + 'µs';
    return ns + 'ns';
  }
  function fmtClock(unixNS) {
    var d = new Date(unixNS / 1e6);
    return d.toTimeString().slice(0, 8);
  }

  // Single-series sparkline: 2px line, 10% area wash, end dot with a
  // surface ring. Data color lives on the mark only.
  function sparkline(svg, data, colorVar) {
    var w = 240, h = 36, pad = 3;
    if (data.length < 2) { svg.innerHTML = ''; return; }
    var max = Math.max.apply(null, data), min = Math.min.apply(null, data);
    if (max === min) max = min + 1;
    var pts = [];
    for (var i = 0; i < data.length; i++) {
      var x = pad + (w - 2 * pad) * i / (data.length - 1);
      var y = h - pad - (h - 2 * pad) * (data[i] - min) / (max - min);
      pts.push(x.toFixed(1) + ',' + y.toFixed(1));
    }
    var last = pts[pts.length - 1].split(',');
    var color = 'var(' + colorVar + ')';
    svg.innerHTML =
      '<polygon points="' + pad + ',' + (h - pad) + ' ' + pts.join(' ') + ' ' + last[0] + ',' + (h - pad) +
        '" fill="' + color + '" opacity="0.1"></polygon>' +
      '<polyline points="' + pts.join(' ') + '" fill="none" stroke="' + color +
        '" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"></polyline>' +
      '<circle cx="' + last[0] + '" cy="' + last[1] + '" r="4" fill="' + color +
        '" stroke="var(--surface-1)" stroke-width="2"></circle>';
  }

  function push(hist, v) { hist.push(v); if (hist.length > HIST) hist.shift(); }

  function counterRate(cur, name, dt) {
    if (!prev || dt <= 0) return null;
    var a = (prev.counters || {})[name], b = (cur.counters || {})[name];
    if (a == null || b == null || b < a) return null;
    return (b - a) / dt;
  }

  function render(status, metrics, dt) {
    $('idline').textContent = 'pid ' + status.pid + ' · ' + status.go_version +
      (status.commit ? ' · ' + status.commit.slice(0, 10) : '');
    $('uptime').textContent = 'up ' + Math.round(status.uptime_seconds) + 's';
    $('phase').textContent = status.current_phase || 'idle';

    var c = status.campaign;
    if (c) {
      $('seeds-done').textContent = fmtNum(c.done);
      $('seeds-total-hint').textContent = 'of ' + fmtNum(c.total) +
        (c.failed ? ' · ' + c.failed + ' failed' : '');
      $('seeds-meter').style.width = (c.total ? 100 * c.done / c.total : 0) + '%';
      $('races').textContent = fmtNum(c.distinct_races);
      $('racy-hint').textContent = c.racy + ' racy seeds';
      push(raceHist, c.distinct_races);
    } else {
      var analyses = (metrics.counters || {})['detect.analyses'];
      $('seeds-done').textContent = fmtNum(analyses);
      $('seeds-total-hint').textContent = 'analyses';
      var dr = (metrics.counters || {})['detect.data_races'];
      $('races').textContent = fmtNum(dr);
      $('racy-hint').textContent = 'data races reported';
      push(raceHist, dr || 0);
    }

    var rate = counterRate(metrics, c ? 'campaign.seeds_done' : 'detect.analyses', dt);
    if (rate != null) {
      push(rateHist, rate);
      $('seeds-rate').textContent = fmtNum(rate);
      if (c && rate > 0 && c.total > c.done) {
        $('eta').textContent = 'ETA ' + Math.round((c.total - c.done) / rate) + 's';
      } else {
        $('eta').textContent = '';
      }
    }
    sparkline($('spark-rate'), rateHist, '--series-1');
    sparkline($('spark-races'), raceHist, '--series-2');

    var phases = status.phases || {};
    var names = Object.keys(phases).sort(function (a, b) {
      return phases[b].total_ns - phases[a].total_ns;
    });
    var rows = '';
    for (var i = 0; i < Math.min(names.length, 14); i++) {
      var n = names[i], p = phases[n];
      var pr = null;
      if (prevStatus && prevStatus.phases && prevStatus.phases[n] && dt > 0) {
        var d = p.count - prevStatus.phases[n].count;
        if (d >= 0) pr = d / dt;
      }
      rows += '<tr><td>' + n + '</td><td>' + p.count + '</td><td>' +
        (pr == null ? '–' : fmtNum(pr)) + '</td><td>' + fmtNS(p.total_ns) +
        '</td><td>' + fmtNS(p.p50_ns) + '</td><td>' + fmtNS(p.p90_ns) +
        '</td><td>' + fmtNS(p.p99_ns) + '</td><td>' + fmtNS(p.max_ns) + '</td></tr>';
    }
    $('phases').querySelector('tbody').innerHTML = rows;

    renderStreams(status.streams, streamsDoc);
  }

  // Streams card: aggregate batch-latency quantiles from /status plus a
  // per-stream table from /streams — live rows first, then recently
  // finished summaries. Trace links point at the tail-sampled capture.
  function renderStreams(agg, doc) {
    if (!agg) return;
    $('streams-card').style.display = '';
    var parts = [];
    if (agg.batch_wait) parts.push('queue wait p50 ' + fmtNS(agg.batch_wait.p50_ns) + ' / p99 ' + fmtNS(agg.batch_wait.p99_ns));
    if (agg.batch_feed) parts.push('feed p50 ' + fmtNS(agg.batch_feed.p50_ns) + ' / p99 ' + fmtNS(agg.batch_feed.p99_ns));
    if (agg.queue_high_water) parts.push('queue high-water ' + agg.queue_high_water);
    if (agg.traces_kept != null && (agg.traces_kept || agg.traces_sampled_out)) {
      parts.push('traces kept ' + agg.traces_kept + ' / sampled out ' + (agg.traces_sampled_out || 0));
    }
    $('streams-agg').textContent = parts.join(' · ') || (agg.active + ' active streams');
    if (!doc) return;
    var rows = '';
    function traceCell(id, kept) {
      if (kept === false) return '–';
      return '<a href="/trace/' + id + '?format=perfetto">perfetto</a> <a href="/trace/' + id + '">jsonl</a>';
    }
    var live = doc.live || [];
    for (var i = 0; i < Math.min(live.length, 10); i++) {
      var s = live[i];
      rows += '<tr><td>' + s.stream_id + ' (live)</td><td>' + s.program + '</td><td>' +
        fmtNum(s.processed) + '</td><td>' + s.batches + '</td><td>' + s.queued_batches +
        '</td><td>' + (s.queue_high_water || 0) + '</td><td>' + fmtNS(s.batch_wait_p99_ns) +
        '</td><td>' + fmtNS(s.batch_feed_p99_ns) + '</td><td>' +
        (s.trace_id ? traceCell(s.stream_id) : '–') + '</td></tr>';
    }
    var fin = (doc.finished || []).slice().reverse();
    for (var j = 0; j < Math.min(fin.length, 10); j++) {
      var f = fin[j];
      rows += '<tr><td>' + f.stream_id + '</td><td>' + f.program + '</td><td>' +
        fmtNum(f.events) + '</td><td>' + f.batches + '</td><td>–</td><td>' +
        (f.queue_high_water || 0) + '</td><td>' + fmtNS(f.batch_wait_p99_ns) +
        '</td><td>' + fmtNS(f.batch_feed_p99_ns) + '</td><td>' +
        traceCell(f.stream_id, !!f.trace_kept) + '</td></tr>';
    }
    $('streams').querySelector('tbody').innerHTML = rows;
  }

  var prevStatus = null;
  var streamsDoc = null;
  function poll() {
    Promise.all([
      fetch('/status').then(function (r) { return r.json(); }),
      fetch('/metrics.json').then(function (r) { return r.json(); })
    ]).then(function (res) {
      var now = Date.now() / 1000;
      var dt = prevAt ? now - prevAt : 0;
      $('conn').textContent = 'live';
      render(res[0], res[1], dt);
      prevStatus = res[0]; prev = res[1]; prevAt = now;
      // The /streams document lives on the wrserve mux, not the obs
      // plane itself; refresh it only when the status shows streams.
      if (res[0].streams) {
        fetch('/streams').then(function (r) { return r.json(); })
          .then(function (d) { streamsDoc = d; })
          .catch(function () { streamsDoc = null; });
      }
    }).catch(function () {
      $('conn').textContent = 'disconnected';
    });
  }
  poll();
  setInterval(poll, 1000);

  function logEvent(kind, text, cls) {
    var ul = $('events');
    var li = document.createElement('li');
    if (cls) li.className = cls;
    var t = document.createElement('span');
    t.className = 't';
    t.textContent = new Date().toTimeString().slice(0, 8);
    li.appendChild(t);
    if (cls === 'race' || cls === 'watchdog') {
      var b = document.createElement('span');
      b.className = 'badge';
      b.textContent = cls === 'race' ? '⚠ race' : '⏱ watchdog';
      li.appendChild(b);
    }
    li.appendChild(document.createTextNode(text));
    ul.insertBefore(li, ul.firstChild);
    while (ul.children.length > 40) ul.removeChild(ul.lastChild);
  }

  if (window.EventSource) {
    var es = new EventSource('/events');
    es.addEventListener('progress', function (e) {
      var ev = JSON.parse(e.data);
      logEvent('progress', ev.done + '/' + ev.total + ' seeds, ' +
        (ev.distinct_races || 0) + ' distinct races');
    });
    es.addEventListener('race', function (e) {
      var ev = JSON.parse(e.data);
      logEvent('race', (ev.race || 'race') + ' (seed ' + ev.seed + ')', 'race');
    });
    es.addEventListener('dropped', function (e) {
      var ev = JSON.parse(e.data);
      logEvent('dropped', ev.dropped + ' events coalesced away while lagging');
    });
    es.addEventListener('watchdog', function (e) {
      var ev = JSON.parse(e.data);
      logEvent('watchdog', ev.phase + ': ' + (ev.reason || 'SLO breach') +
        (ev.artifact_dir ? ' → ' + ev.artifact_dir : ''), 'watchdog');
    });
  }
})();
</script>
</body>
</html>
`

package report

import (
	"errors"
	"testing"

	"weakrace/internal/workload"
)

// failWriter fails after n successful writes, exercising the error
// propagation paths of the renderers.
type failWriter struct{ n int }

var errSink = errors.New("sink full")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errSink
	}
	f.n--
	return len(p), nil
}

func TestRenderersPropagateWriteErrors(t *testing.T) {
	a := analyzeWorkload(t, workload.Figure1a(), 1)
	clean := analyzeWorkload(t, workload.Figure1b(), 1)

	renders := []struct {
		name string
		fn   func() error
	}{
		{"RenderAnalysis racy", func() error { return RenderAnalysis(&failWriter{}, a) }},
		{"RenderAnalysis racy mid", func() error { return RenderAnalysis(&failWriter{n: 2}, a) }},
		{"RenderAnalysis clean", func() error { return RenderAnalysis(&failWriter{n: 1}, clean) }},
		{"RenderGraph", func() error { return RenderGraph(&failWriter{}, a) }},
		{"RenderGraph mid", func() error { return RenderGraph(&failWriter{n: 2}, a) }},
		{"RenderDOT", func() error { return RenderDOT(&failWriter{}, a) }},
		{"Table", func() error {
			tb := NewTable("t", "a", "b")
			tb.AddRow(1, 2)
			return tb.Render(&failWriter{})
		}},
		{"Table mid", func() error {
			tb := NewTable("t", "a", "b")
			tb.AddRow(1, 2)
			return tb.Render(&failWriter{n: 2})
		}},
	}
	for _, r := range renders {
		if err := r.fn(); err == nil {
			t.Errorf("%s: write error swallowed", r.name)
		}
	}
}

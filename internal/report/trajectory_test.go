package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func benchDoc(t *testing.T, commit string, nsPerIter int64, metrics map[string]float64) []byte {
	t.Helper()
	doc := map[string]any{
		"meta": map[string]any{
			"go_version": "go1.24.0", "gomaxprocs": 1,
			"goos": "linux", "goarch": "amd64", "commit": commit,
		},
		"iters": 30,
		"scenarios": []map[string]any{
			{"name": "model-throughput", "iters": 30, "total_ns": nsPerIter * 30,
				"ns_per_iter": nsPerIter, "metrics": metrics},
		},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestParseBenchPoint(t *testing.T) {
	p, err := ParseBenchPoint("BENCH_2", benchDoc(t, "abcdef0123456789", 650625,
		map[string]float64{"cycles_per_op_SC": 2.6}))
	if err != nil {
		t.Fatal(err)
	}
	if p.Label != "BENCH_2" || p.Meta.Commit != "abcdef0123456789" {
		t.Fatalf("point = %+v", p)
	}
	if len(p.Scenarios) != 1 || p.Scenarios[0].NSPerIter != 650625 {
		t.Fatalf("scenarios = %+v", p.Scenarios)
	}

	if _, err := ParseBenchPoint("bad", []byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := ParseBenchPoint("empty", []byte(`{"scenarios":[]}`)); err == nil {
		t.Fatal("scenario-free document accepted")
	}
}

func TestRenderTrajectory(t *testing.T) {
	p2, err := ParseBenchPoint("BENCH_2", benchDoc(t, "c2", 800000,
		map[string]float64{"cycles_per_op_SC": 2.7}))
	if err != nil {
		t.Fatal(err)
	}
	p5, err := ParseBenchPoint("BENCH_5", benchDoc(t, "c5", 650625,
		map[string]float64{"cycles_per_op_SC": 2.6, "cycles_per_op_WO": 1.5}))
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := RenderTrajectory(&b, []BenchPoint{p2, p5}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"model-throughput",   // scenario card
		"BENCH_2", "BENCH_5", // x labels and table columns
		"<svg",                       // chart present
		"cycles_per_op_WO",           // metric only in the later point still tabulated
		"650.6µs",                    // endpoint direct label
		"-18.7%",                     // headline delta vs first point
		"prefers-color-scheme: dark", // dark mode is selected, not flipped
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectory HTML missing %q", want)
		}
	}
	if strings.Contains(out, "<script") {
		t.Error("trajectory report must be static (no scripts)")
	}
}

func TestRenderTrajectoryEmpty(t *testing.T) {
	var b strings.Builder
	if err := RenderTrajectory(&b, nil); err == nil {
		t.Fatal("no points should be an error")
	}
}

func TestRenderDashboard(t *testing.T) {
	var b strings.Builder
	if err := RenderDashboard(&b, `race<hunt>`); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "race&lt;hunt&gt;") {
		t.Error("tool name not HTML-escaped")
	}
	for _, want := range []string{
		"/metrics.json", "/status", "/events", // data sources
		"EventSource",       // live stream wiring
		"p50", "p90", "p99", // phase latency columns
		"prefers-color-scheme: dark", // dark mode tokens
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard HTML missing %q", want)
		}
	}
}

package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func benchDoc(t *testing.T, commit string, nsPerIter int64, metrics map[string]float64) []byte {
	t.Helper()
	doc := map[string]any{
		"meta": map[string]any{
			"go_version": "go1.24.0", "gomaxprocs": 1,
			"goos": "linux", "goarch": "amd64", "commit": commit,
		},
		"iters": 30,
		"scenarios": []map[string]any{
			{"name": "model-throughput", "iters": 30, "total_ns": nsPerIter * 30,
				"ns_per_iter": nsPerIter, "metrics": metrics},
		},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestParseBenchPoint(t *testing.T) {
	p, err := ParseBenchPoint("BENCH_2", benchDoc(t, "abcdef0123456789", 650625,
		map[string]float64{"cycles_per_op_SC": 2.6}))
	if err != nil {
		t.Fatal(err)
	}
	if p.Label != "BENCH_2" || p.Meta.Commit != "abcdef0123456789" {
		t.Fatalf("point = %+v", p)
	}
	if len(p.Scenarios) != 1 || p.Scenarios[0].NSPerIter != 650625 {
		t.Fatalf("scenarios = %+v", p.Scenarios)
	}

	if _, err := ParseBenchPoint("bad", []byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := ParseBenchPoint("empty", []byte(`{"scenarios":[]}`)); err == nil {
		t.Fatal("scenario-free document accepted")
	}
}

func TestRenderTrajectory(t *testing.T) {
	p2, err := ParseBenchPoint("BENCH_2", benchDoc(t, "c2", 800000,
		map[string]float64{"cycles_per_op_SC": 2.7}))
	if err != nil {
		t.Fatal(err)
	}
	p5, err := ParseBenchPoint("BENCH_5", benchDoc(t, "c5", 650625,
		map[string]float64{"cycles_per_op_SC": 2.6, "cycles_per_op_WO": 1.5}))
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := RenderTrajectory(&b, []BenchPoint{p2, p5}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"model-throughput",   // scenario card
		"BENCH_2", "BENCH_5", // x labels and table columns
		"<svg",                       // chart present
		"cycles_per_op_WO",           // metric only in the later point still tabulated
		"650.6µs",                    // endpoint direct label
		"-18.7%",                     // headline delta vs first point
		"prefers-color-scheme: dark", // dark mode is selected, not flipped
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectory HTML missing %q", want)
		}
	}
	if strings.Contains(out, "<script") {
		t.Error("trajectory report must be static (no scripts)")
	}
}

// A scenario that only exists in newer bench points (segments-512
// arrived in PR 8) must chart at the global x positions of the points
// that carry it — not slide left to x=0 — and must not error on the
// older points that lack it.
func TestRenderTrajectoryLateScenario(t *testing.T) {
	mk := func(label string, scenarios []map[string]any) BenchPoint {
		doc := map[string]any{
			"meta":      map[string]any{"go_version": "go1.24.0"},
			"iters":     30,
			"scenarios": scenarios,
		}
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ParseBenchPoint(label, data)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	old := mk("BENCH_2", []map[string]any{
		{"name": "postmortem-scaling", "ns_per_iter": 1000},
	})
	mid := mk("BENCH_5", []map[string]any{
		{"name": "postmortem-scaling", "ns_per_iter": 900},
	})
	cur := mk("BENCH_8", []map[string]any{
		{"name": "postmortem-scaling", "ns_per_iter": 800},
		{"name": "postmortem-scaling-large", "ns_per_iter": 5000},
	})

	var b strings.Builder
	if err := RenderTrajectory(&b, []BenchPoint{old, mid, cur}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "postmortem-scaling-large") {
		t.Fatal("late scenario card missing")
	}
	card := out[strings.Index(out, "postmortem-scaling-large"):]
	if i := strings.Index(card, "</div>"); i >= 0 {
		card = card[:i]
	}
	// The three-point axis spans padL=64 .. width-padR=630. The late
	// scenario's single measurement belongs at the LAST point's x
	// (630), not the first or the centre — the pre-fix renderer put a
	// lone series point at plotW/2.
	if !strings.Contains(card, `cx="630.0"`) {
		t.Errorf("late scenario marker not at the last global x position:\n%s", card)
	}
	for _, wrong := range []string{`cx="64.0"`, `cx="347.0"`} {
		if strings.Contains(card, wrong) {
			t.Errorf("late scenario marker misaligned at %s", wrong)
		}
	}
	// All three point labels still appear on the late card's axis.
	for _, label := range []string{"BENCH_2", "BENCH_5", "BENCH_8"} {
		if !strings.Contains(card, ">"+label+"<") {
			t.Errorf("late card axis missing label %s", label)
		}
	}
}

func TestRenderTrajectoryEmpty(t *testing.T) {
	var b strings.Builder
	if err := RenderTrajectory(&b, nil); err == nil {
		t.Fatal("no points should be an error")
	}
}

func TestRenderDashboard(t *testing.T) {
	var b strings.Builder
	if err := RenderDashboard(&b, `race<hunt>`); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "race&lt;hunt&gt;") {
		t.Error("tool name not HTML-escaped")
	}
	for _, want := range []string{
		"/metrics.json", "/status", "/events", // data sources
		"EventSource",       // live stream wiring
		"p50", "p90", "p99", // phase latency columns
		"prefers-color-scheme: dark", // dark mode tokens
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard HTML missing %q", want)
		}
	}
}

package report

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"weakrace/internal/provenance"
	"weakrace/internal/workload"
)

func TestRenderHTMLRacy(t *testing.T) {
	e := explainFig2(t)
	var buf bytes.Buffer
	if err := RenderHTML(&buf, e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"DATA RACES DETECTED",
		"Partition DAG",
		"<svg",
		"unorderedness certificate",
		"First partitions",
		"Non-first partitions",
		"affected by:",
		"Theorem 4.2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// The page is self-contained: no scripts, no external fetches.
	for _, forbid := range []string{"<script", "http://", "https://", "<no value>"} {
		if strings.Contains(out, forbid) {
			t.Errorf("HTML contains forbidden %q", forbid)
		}
	}
	// One DAG node and one drill-down per partition, first ones open.
	a := e.Analysis()
	if got := strings.Count(out, "<details"); got != len(a.Partitions) {
		t.Errorf("%d <details> blocks for %d partitions", got, len(a.Partitions))
	}
	if got := strings.Count(out, "<rect"); got != len(a.Partitions) {
		t.Errorf("%d DAG nodes for %d partitions", got, len(a.Partitions))
	}
	if got := strings.Count(out, "★"); got != len(a.FirstPartitions) {
		t.Errorf("%d first markers for %d first partitions", got, len(a.FirstPartitions))
	}
	// Every SVG edge is an immediate precedence edge, drawn left-to-right.
	edges := 0
	for _, outs := range provenance.NewExplainer(a).ImmediateSuccessors() {
		edges += len(outs)
	}
	if got := strings.Count(out, "<line"); got != edges {
		t.Errorf("%d SVG edges for %d immediate precedence edges", got, edges)
	}
	for _, m := range regexp.MustCompile(`<line x1="(\d+)"[^>]*x2="(\d+)"`).FindAllStringSubmatch(out, -1) {
		x1, _ := strconv.Atoi(m[1])
		x2, _ := strconv.Atoi(m[2])
		if x1 >= x2 {
			t.Errorf("SVG edge does not point left-to-right: %s", m[0])
		}
	}
	// Elementary well-formedness: paired tags balance.
	for _, tag := range []string{"details", "div", "ul", "li", "svg", "g"} {
		open := len(regexp.MustCompile(`<`+tag+`[\s>]`).FindAllString(out, -1))
		closed := strings.Count(out, "</"+tag+">")
		if open != closed {
			t.Errorf("unbalanced <%s>: %d open, %d closed", tag, open, closed)
		}
	}
}

func TestRenderHTMLRaceFree(t *testing.T) {
	a := analyzeWorkload(t, workload.Figure1b(), 1)
	var buf bytes.Buffer
	if err := RenderHTML(&buf, provenance.NewExplainer(a)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NO DATA RACES") {
		t.Fatalf("race-free HTML lacks verdict:\n%s", out)
	}
	if strings.Contains(out, "<svg") || strings.Contains(out, "<details") {
		t.Error("race-free HTML should not render a DAG or drill-downs")
	}
}

// Program names are attacker-ish strings as far as HTML is concerned;
// the template must escape them.
func TestRenderHTMLEscapesProgramName(t *testing.T) {
	a := analyzeWorkload(t, workload.Figure1b(), 1)
	a.Trace.ProgramName = `<script>alert("x")</script>`
	var buf bytes.Buffer
	if err := RenderHTML(&buf, provenance.NewExplainer(a)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>") {
		t.Fatal("program name not escaped")
	}
}

func TestRenderHTMLPropagatesWriteErrors(t *testing.T) {
	e := explainFig2(t)
	if err := RenderHTML(&failWriter{}, e); err == nil {
		t.Error("RenderHTML swallowed write error")
	}
}

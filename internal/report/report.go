// Package report renders detection results for humans: the race report a
// programmer would read (first partitions, with lower-level provenance),
// a Figure-3-style view of the augmented happens-before-1 graph, and the
// plain-text tables of the experiment harness.
package report

import (
	"fmt"
	"io"
	"strings"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/trace"
)

// RenderAnalysis writes the programmer-facing race report: Theorem 4.1's
// verdict, then each partition (first partitions lead) with its races and
// their lower-level provenance.
func RenderAnalysis(w io.Writer, a *core.Analysis) error {
	t := a.Trace
	if _, err := fmt.Fprintf(w, "race report for %q (model %s, seed %d): %d events, %d races (%d data), %d partitions (%d first)\n",
		t.ProgramName, t.Model, t.Seed, a.NumEvents, len(a.Races), len(a.DataRaces),
		len(a.Partitions), len(a.FirstPartitions)); err != nil {
		return err
	}
	if a.RaceFree() {
		_, err := fmt.Fprintf(w, "NO DATA RACES: by Condition 3.4(1) this execution was sequentially consistent.\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "report the first partitions; by Theorem 4.2 each contains a race that\noccurs in a sequentially consistent execution.\n"); err != nil {
		return err
	}
	render := func(pi int) error {
		p := a.Partitions[pi]
		tag := "non-first"
		if p.First {
			tag = "FIRST"
		}
		if _, err := fmt.Fprintf(w, "partition %d [%s]: %d race(s) over events %s\n",
			pi, tag, len(p.Races), eventList(a, p.Events)); err != nil {
			return err
		}
		for _, ri := range p.Races {
			r := a.Races[ri]
			if _, err := fmt.Fprintf(w, "  race ⟨%s, %s⟩ on locations %s\n",
				a.Ref(r.A), a.Ref(r.B), r.Locs); err != nil {
				return err
			}
			for _, ll := range a.LowerLevel(r) {
				if _, err := fmt.Fprintf(w, "    %s\n", ll); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, pi := range a.FirstPartitions {
		if err := render(pi); err != nil {
			return err
		}
	}
	for pi := range a.Partitions {
		if !a.Partitions[pi].First {
			if err := render(pi); err != nil {
				return err
			}
		}
	}
	// The partial order P (Definition 4.1) among partitions, so the
	// programmer can see which races are downstream of which.
	printedHeader := false
	for i := range a.Partitions {
		for j := range a.Partitions {
			if i == j || !a.PartitionPrecedes(i, j) {
				continue
			}
			if !printedHeader {
				if _, err := fmt.Fprintf(w, "partition order (P):\n"); err != nil {
					return err
				}
				printedHeader = true
			}
			if _, err := fmt.Fprintf(w, "  partition %d precedes partition %d\n", i, j); err != nil {
				return err
			}
		}
	}
	return nil
}

func eventList(a *core.Analysis, ids []core.EventID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = a.Ref(id).String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// RenderGraph writes a Figure-3-style view of the augmented
// happens-before-1 graph: each processor's events in order, annotated
// with so1 pairings, race edges, and partition membership.
func RenderGraph(w io.Writer, a *core.Analysis) error {
	// Index races by event for annotation.
	raceWith := map[core.EventID][]core.EventID{}
	for _, r := range a.Races {
		if !r.Data {
			continue
		}
		raceWith[r.A] = append(raceWith[r.A], r.B)
		raceWith[r.B] = append(raceWith[r.B], r.A)
	}
	partOf := map[core.EventID]int{}
	for pi, p := range a.Partitions {
		for _, id := range p.Events {
			partOf[id] = pi
		}
	}
	if _, err := fmt.Fprintf(w, "augmented happens-before-1 graph for %q:\n", a.Trace.ProgramName); err != nil {
		return err
	}
	for c, evs := range a.Trace.PerCPU {
		if _, err := fmt.Fprintf(w, "P%d:\n", c+1); err != nil {
			return err
		}
		for i, ev := range evs {
			id := a.ID(trace.EventRef{CPU: c, Index: i})
			var notes []string
			if ev.Kind == trace.Sync && ev.Role == memmodel.RoleAcquire && ev.Observed.Valid() &&
				a.Options.Pairing.CanPair(ev.ObservedRole) {
				notes = append(notes, fmt.Sprintf("so1← %s", ev.Observed))
			}
			for _, other := range raceWith[id] {
				notes = append(notes, fmt.Sprintf("race↔ %s", a.Ref(other)))
			}
			if pi, ok := partOf[id]; ok {
				tag := "non-first"
				if a.Partitions[pi].First {
					tag = "FIRST"
				}
				notes = append(notes, fmt.Sprintf("partition %d (%s)", pi, tag))
			}
			suffix := ""
			if len(notes) > 0 {
				suffix = "   [" + strings.Join(notes, "; ") + "]"
			}
			if _, err := fmt.Fprintf(w, "  %3d: %s%s\n", i, ev, suffix); err != nil {
				return err
			}
		}
	}
	return nil
}

// Table accumulates rows and renders them with aligned columns, in the
// style of a paper table.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table. Rows wider than the header get extra
// unlabeled columns rather than being truncated.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Header)
	for _, row := range t.rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	rule := make([]string, cols)
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"weakrace/internal/telemetry"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	s := NewServer(Options{Tool: "obstest", Registry: reg})
	s.coalesceWindow = 0 // tests want immediate flushes
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, reg
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, string(body)
}

func TestMountEnablesRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	if reg.Enabled() {
		t.Fatal("fresh registry should start disabled")
	}
	s := NewServer(Options{Registry: reg})
	defer s.Close()
	if !reg.Enabled() {
		t.Fatal("mounting the plane must enable collection")
	}
}

func TestMetricsRoundTrip(t *testing.T) {
	_, ts, reg := newTestServer(t)
	reg.Counter("detect.analyses").Add(7)
	reg.Phase("simulate").Observe(3 * time.Microsecond)

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PrometheusContentType {
		t.Fatalf("content-type = %q, want %q", ct, telemetry.PrometheusContentType)
	}
	if !strings.Contains(body, "weakrace_detect_analyses 7") {
		t.Fatalf("missing counter line in:\n%s", body)
	}

	// Histogram le edges must appear in strictly increasing order with
	// +Inf last and cumulative counts.
	var edges []float64
	var counts []int64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "weakrace_simulate_seconds_bucket") {
			continue
		}
		leStart := strings.Index(line, `le="`) + len(`le="`)
		leEnd := strings.Index(line[leStart:], `"`) + leStart
		le := line[leStart:leEnd]
		sp := strings.LastIndex(line, " ")
		n, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket count in %q: %v", line, err)
		}
		counts = append(counts, n)
		if le == "+Inf" {
			edges = append(edges, 1e308)
			continue
		}
		f, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("bad le in %q: %v", line, err)
		}
		edges = append(edges, f)
	}
	// 12 finite le edges plus +Inf: one line per histogram bucket.
	if len(edges) != telemetry.NumBuckets {
		t.Fatalf("got %d bucket lines, want %d", len(edges), telemetry.NumBuckets)
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("le edges not increasing at %d: %v", i, edges)
		}
		if counts[i] < counts[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %v", i, counts)
		}
	}
	if counts[len(counts)-1] != 1 {
		t.Fatalf("+Inf bucket = %d, want observation count 1", counts[len(counts)-1])
	}
}

func TestMetricsJSON(t *testing.T) {
	_, ts, reg := newTestServer(t)
	reg.Counter("c").Add(3)
	resp, body := get(t, ts.URL+"/metrics.json")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if snap.Counters["c"] != 3 {
		t.Fatalf("counter c = %d, want 3", snap.Counters["c"])
	}
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

func TestStatusShape(t *testing.T) {
	_, ts, reg := newTestServer(t)
	reg.Gauge("campaign.seeds_total").Set(100)
	reg.Counter("campaign.seeds_done").Add(40)
	reg.Counter("campaign.seeds_failed").Add(2)
	reg.Counter("campaign.seeds_racy").Add(9)
	reg.Gauge("campaign.races_distinct").Set(3)
	for i := 0; i < 10; i++ {
		reg.Phase("detect").Observe(2 * time.Microsecond)
	}

	_, body := get(t, ts.URL+"/status")
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if st.Tool != "obstest" || st.PID == 0 || st.GoVersion == "" {
		t.Fatalf("identity fields wrong: %+v", st)
	}
	if st.UptimeSeconds < 0 || st.StartUnixNS == 0 {
		t.Fatalf("uptime fields wrong: %+v", st)
	}
	c := st.Campaign
	if c == nil {
		t.Fatal("campaign block missing despite seeds_total gauge")
	}
	if c.Done != 40 || c.Total != 100 || c.Failed != 2 || c.Racy != 9 || c.DistinctRaces != 3 {
		t.Fatalf("campaign = %+v", c)
	}
	p, ok := st.Phases["detect"]
	if !ok {
		t.Fatalf("phases missing detect: %+v", st.Phases)
	}
	if p.Count != 10 || p.P50NS <= 0 || p.P50NS > p.P99NS || p.P99NS > p.MaxNS {
		t.Fatalf("phase quantiles inconsistent: %+v", p)
	}
}

func TestStatusStreamsBlock(t *testing.T) {
	_, ts, reg := newTestServer(t)
	reg.Gauge("stream.streams_active").Set(2)
	reg.Gauge("stream.window").Set(256)
	reg.Counter("stream.streams_opened").Add(7)
	reg.Counter("stream.streams_closed").Add(5)
	reg.Counter("stream.streams_errored").Add(1)
	reg.Counter("stream.events").Add(900)
	reg.Counter("stream.races").Add(4)
	reg.Counter("stream.retired").Add(123)
	reg.Counter("stream.replay_seeds").Add(3)

	_, body := get(t, ts.URL+"/status")
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	s := st.Streams
	if s == nil {
		t.Fatal("streams block missing despite streams_active gauge")
	}
	if s.Active != 2 || s.Opened != 7 || s.Closed != 5 || s.Errored != 1 ||
		s.Dropped != 0 || s.Events != 900 || s.Races != 4 ||
		s.Retired != 123 || s.ReplaySeeds != 3 || s.Window != 256 {
		t.Fatalf("streams = %+v", s)
	}
}

func TestStatusWithoutCampaign(t *testing.T) {
	_, ts, _ := newTestServer(t)
	_, body := get(t, ts.URL+"/status")
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.Campaign != nil {
		t.Fatalf("campaign block present without a campaign: %+v", st.Campaign)
	}
	if st.Streams != nil {
		t.Fatalf("streams block present without an ingest plane: %+v", st.Streams)
	}
}

func TestDashboardServed(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, body := get(t, ts.URL+"/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(body, "obstest") || !strings.Contains(body, "/metrics.json") {
		t.Fatal("dashboard missing tool name or poll target")
	}
	resp, _ = get(t, ts.URL+"/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", resp.StatusCode)
	}
}

func TestPprofMounted(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, body := get(t, ts.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %d", resp.StatusCode)
	}
}

// TestEventsStream subscribes over real HTTP and checks that published
// events arrive framed as SSE, races intact and progress coalesced.
func TestEventsStream(t *testing.T) {
	s, ts, _ := newTestServer(t)

	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ": stream open") {
		t.Fatalf("opening comment = %q, %v", line, err)
	}

	// Wait for the subscription to register before publishing.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Publisher().HasSubscribers() {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	s.Publisher().Publish(Event{Kind: EventProgress, Done: 1, Total: 10})
	s.Publisher().Publish(Event{Kind: EventRace, Race: "W-W a", Seed: 4})
	s.Publisher().Publish(Event{Kind: EventProgress, Done: 2, Total: 10})

	var kinds []string
	var datas []string
	timeout := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(kinds) < 2 {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			line = strings.TrimRight(line, "\n")
			if strings.HasPrefix(line, "event: ") {
				kinds = append(kinds, strings.TrimPrefix(line, "event: "))
			}
			if strings.HasPrefix(line, "data: ") {
				datas = append(datas, strings.TrimPrefix(line, "data: "))
			}
		}
	}()
	select {
	case <-done:
	case <-timeout:
		t.Fatal("timed out waiting for SSE events")
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "race") || !strings.Contains(joined, "progress") {
		t.Fatalf("kinds = %v, want race and progress", kinds)
	}
	for _, d := range datas {
		var ev Event
		if err := json.Unmarshal([]byte(d), &ev); err != nil {
			t.Fatalf("bad SSE data %q: %v", d, err)
		}
		if ev.Kind == EventRace && (ev.Race != "W-W a" || ev.Seed != 4) {
			t.Fatalf("race event = %+v", ev)
		}
	}
}

// TestSpanHookForwardsPhases checks the server wires completed registry
// spans into the publisher as phase events.
func TestSpanHookForwardsPhases(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer(Options{Registry: reg})
	defer s.Close()
	sub := s.Publisher().Subscribe()
	defer sub.Close()

	reg.StartSpan("hb.order").End()
	evs, _ := sub.Poll()
	if len(evs) != 1 || evs[0].Kind != EventPhase || evs[0].Phase != "hb.order" {
		t.Fatalf("events = %+v, want one phase event for hb.order", evs)
	}

	// Close detaches the hook: further spans publish nothing.
	s.Close()
	sub2 := s.Publisher().Subscribe()
	defer sub2.Close()
	reg.StartSpan("hb.order").End()
	if evs, _ := sub2.Poll(); len(evs) != 0 {
		t.Fatalf("hook still attached after Close: %+v", evs)
	}
}

func TestServeAndClose(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Options{Tool: "t", Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	addr := s.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	resp, body := get(t, "http://"+addr+"/healthz")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz over real listener = %d %q", resp.StatusCode, body)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

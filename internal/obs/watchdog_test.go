package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
)

func TestNilWatchdogNoOps(t *testing.T) {
	var w *Watchdog
	w.Start() // must not panic
	w.Observe("p", time.Second, "k")
	if st := w.Status(); st != nil {
		t.Fatalf("nil watchdog status = %+v", st)
	}
	w.Stop()
}

// keptTracer returns a tracer holding one finished racy trace under key.
func keptTracer(t *testing.T, key string) *telemetry.Tracer {
	t.Helper()
	tr := telemetry.NewTracer(telemetry.TracerOptions{MinSlowSamples: 1 << 30})
	st := tr.Begin(key, 42, 0, "prog", "WO", 7)
	st.Record("batch.feed", 0, st.Start(), time.Millisecond)
	if !tr.Finish(st, telemetry.TraceOutcome{Racy: true}) {
		t.Fatal("racy trace sampled out")
	}
	return tr
}

func TestAbsoluteSLOFiresAndCaptures(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	tracer := keptTracer(t, "3")
	w := NewWatchdog(WatchdogOptions{
		Registry:   reg,
		Dir:        dir,
		Absolute:   10 * time.Millisecond,
		CPUProfile: 10 * time.Millisecond,
		TraceFor: func(key string) ([]export.Record, bool) {
			ts, ok := tracer.Lookup(key)
			if !ok {
				return nil, false
			}
			return export.TraceRecords(ts), true
		},
	})
	w.Start()
	w.Observe("stream.batch_feed", 5*time.Millisecond, "3") // below SLO
	w.Observe("stream.batch_feed", 50*time.Millisecond, "3")
	w.Stop() // waits for the in-flight capture

	st := w.Status()
	if st.Firings != 1 {
		t.Fatalf("firings = %d, want 1", st.Firings)
	}
	if len(st.Recent) != 1 || st.Recent[0].Key != "3" || st.Recent[0].Dir == "" {
		t.Fatalf("recent = %+v", st.Recent)
	}
	adir := st.Recent[0].Dir
	for _, name := range []string{"firing.json", "heap.pprof", "goroutine.pprof", "goroutines.txt", "cpu.pprof", export.FlightLogName, export.ChromeTraceName} {
		info, err := os.Stat(filepath.Join(adir, name))
		if err != nil {
			t.Errorf("artifact %s: %v", name, err)
			continue
		}
		if info.Size() == 0 && name != "cpu.pprof" { // an idle CPU profile may legitimately be tiny
			t.Errorf("artifact %s is empty", name)
		}
	}
	if _, err := os.Stat(filepath.Join(adir, "errors.txt")); !os.IsNotExist(err) {
		data, _ := os.ReadFile(filepath.Join(adir, "errors.txt"))
		t.Fatalf("capture recorded errors:\n%s", data)
	}
	// The captured trace must round-trip through the JSONL codec.
	f, err := os.Open(filepath.Join(adir, export.FlightLogName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := export.ReadJSONL(f)
	if err != nil {
		t.Fatalf("captured trace unreadable: %v", err)
	}
	if len(recs) == 0 || recs[0].Kind != export.KindMeta || recs[0].Meta.Stream != "3" {
		t.Fatalf("captured trace records = %+v", recs)
	}
}

func TestCooldownSuppresses(t *testing.T) {
	w := NewWatchdog(WatchdogOptions{
		Registry: telemetry.NewRegistry(),
		Absolute: time.Millisecond,
		Cooldown: time.Hour,
	})
	w.Start()
	for i := 0; i < 5; i++ {
		w.Observe("p", time.Second, "")
	}
	w.Stop()
	st := w.Status()
	if st.Firings != 1 || st.Suppressed != 4 {
		t.Fatalf("firings = %d suppressed = %d, want 1/4", st.Firings, st.Suppressed)
	}
}

func TestRelativeSLOWaitsForSamples(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	w := NewWatchdog(WatchdogOptions{
		Registry:    reg,
		P99Multiple: 3,
		MinSamples:  8,
		Cooldown:    time.Hour,
	})
	w.Start()
	// Below MinSamples nothing can fire, however extreme the value.
	for i := 0; i < 7; i++ {
		reg.Phase("p").Observe(time.Millisecond)
		w.Observe("p", time.Millisecond, "")
	}
	if st := w.Status(); st.Firings != 0 {
		t.Fatalf("fired during warmup: %+v", st)
	}
	// Past MinSamples, an observation far over 3x the p99 fires.
	reg.Phase("p").Observe(time.Millisecond)
	w.Observe("p", time.Millisecond, "")
	w.Observe("p", time.Second, "k")
	w.Stop()
	st := w.Status()
	if st.Firings != 1 {
		t.Fatalf("firings = %d, want 1 (%+v)", st.Firings, st.Recent)
	}
}

func TestStallPollerFires(t *testing.T) {
	fired := make(chan struct{})
	var once bool
	w := NewWatchdog(WatchdogOptions{
		Registry:     telemetry.NewRegistry(),
		Stall:        time.Millisecond,
		PollInterval: 5 * time.Millisecond,
		Cooldown:     time.Hour,
		StallCheck: func(olderThan time.Duration) []StallInfo {
			if once {
				return nil
			}
			once = true
			close(fired)
			return []StallInfo{{Key: "9", Phase: "stream.batch_feed", Age: 10 * time.Second}}
		},
	})
	w.Start()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("stall poller never consulted StallCheck")
	}
	// Give fire() a moment to record, then stop.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if w.Status().Firings > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	st := w.Status()
	if st.Firings != 1 || st.Recent[0].Key != "9" {
		t.Fatalf("status = %+v, want one stall firing for stream 9", st)
	}
}

func TestWatchdogPublishesEvent(t *testing.T) {
	pub := NewPublisherSize(8)
	sub := pub.Subscribe()
	defer sub.Close()
	w := NewWatchdog(WatchdogOptions{
		Registry:  telemetry.NewRegistry(),
		Publisher: pub,
		Absolute:  time.Millisecond,
	})
	w.Start()
	w.Observe("stream.batch_feed", time.Second, "5")
	w.Stop()
	evs, _ := sub.Poll()
	if len(evs) != 1 || evs[0].Kind != EventWatchdog || evs[0].Reason == "" {
		t.Fatalf("events = %+v, want one watchdog event with a reason", evs)
	}
}

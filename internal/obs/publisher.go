// Package obs is the live observability plane: an embeddable HTTP
// server (metrics, health, status, progress streaming, pprof, and a
// self-contained dashboard) that any long-running command mounts with
// one call, and the Publisher the pipeline feeds progress and
// race-found notifications into.
//
// The plane holds the telemetry layer's bargain: unmounted, it costs
// nothing — no goroutines, no listeners, and a nil Publisher (or one
// with no subscribers) makes every Publish a single atomic load on the
// hot path. Mounted, scrapes read point-in-time registry snapshots and
// subscribers read a bounded ring, so neither can slow or block the
// pipeline. This is the serving skeleton the planned wrserve streaming
// daemon mounts unchanged.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds carried on the /events stream.
const (
	// EventProgress is a campaign progress tick: seeds done/total plus
	// failure and race tallies. Coalescible — only the newest matters.
	EventProgress = "progress"
	// EventRace announces a distinct race the first time any seed
	// exhibits it. Never coalesced away.
	EventRace = "race"
	// EventPhase reports a completed pipeline phase span. Coalesced to
	// the newest completion per phase name.
	EventPhase = "phase"
	// EventDropped tells a slow subscriber how many events the ring
	// overwrote while it lagged. Synthesized per subscription, never
	// stored in the ring.
	EventDropped = "dropped"
	// EventWatchdog announces a watchdog SLO firing: the breached phase,
	// the observed duration, and where the capture landed. Never
	// coalesced away.
	EventWatchdog = "watchdog"
)

// Event is one notification on the /events stream. Kind selects which
// of the optional field groups is meaningful.
type Event struct {
	Seq    int64  `json:"seq"`
	UnixNS int64  `json:"unix_ns"`
	Kind   string `json:"kind"`

	// EventProgress
	Done          int `json:"done,omitempty"`
	Total         int `json:"total,omitempty"`
	Failed        int `json:"failed,omitempty"`
	Racy          int `json:"racy,omitempty"`
	DistinctRaces int `json:"distinct_races,omitempty"`

	// EventRace
	Race string `json:"race,omitempty"`
	Seed int64  `json:"seed,omitempty"`

	// EventPhase (Phase/DurNS shared with EventWatchdog)
	Phase string `json:"phase,omitempty"`
	DurNS int64  `json:"dur_ns,omitempty"`

	// EventDropped
	Dropped int64 `json:"dropped,omitempty"`

	// EventWatchdog
	Reason      string `json:"reason,omitempty"`
	ArtifactDir string `json:"artifact_dir,omitempty"`
}

// DefaultRingSize is the event ring's capacity: enough to ride out a
// dashboard's coalescing window at full campaign throughput; a
// subscriber that falls further behind skips ahead and learns how much
// it missed.
const DefaultRingSize = 1024

// Publisher fans events out to subscribers through a bounded ring.
//
// The hot path is the no-subscriber case: Publish loads one atomic and
// returns, so instrumentation sites can publish unconditionally. With
// subscribers, the single writer appends under a mutex shared only
// with subscriber cursor reads — never with the pipeline's compute —
// and a full ring overwrites the oldest event rather than blocking.
// A nil *Publisher accepts (and discards) publishes, so call sites
// need no nil checks.
type Publisher struct {
	subs atomic.Int32

	mu      sync.Mutex
	ring    []Event
	seq     int64 // next sequence number; ring holds [seq-len, seq)
	waiters map[*Subscription]struct{}
}

// NewPublisher returns a Publisher with the default ring capacity.
func NewPublisher() *Publisher { return NewPublisherSize(DefaultRingSize) }

// NewPublisherSize returns a Publisher whose ring holds size events.
func NewPublisherSize(size int) *Publisher {
	if size < 1 {
		size = 1
	}
	return &Publisher{ring: make([]Event, size), waiters: map[*Subscription]struct{}{}}
}

// HasSubscribers reports whether any subscription is open — the gate
// call sites may use to skip building expensive events. Publish does
// the same check internally.
func (p *Publisher) HasSubscribers() bool {
	return p != nil && p.subs.Load() > 0
}

// Publish stamps ev with a sequence number and wall-clock time and
// appends it to the ring. With no subscribers (or a nil receiver) it
// returns after one atomic load.
func (p *Publisher) Publish(ev Event) {
	if p == nil || p.subs.Load() == 0 {
		return
	}
	now := time.Now().UnixNano()
	p.mu.Lock()
	ev.Seq = p.seq
	ev.UnixNS = now
	p.ring[p.seq%int64(len(p.ring))] = ev
	p.seq++
	for s := range p.waiters {
		select {
		case s.ready <- struct{}{}:
		default: // already signaled; it will drain everything on Poll
		}
	}
	p.mu.Unlock()
}

// Subscription is one reader's cursor into the ring.
type Subscription struct {
	p      *Publisher
	cursor int64
	ready  chan struct{}
}

// Subscribe opens a subscription delivering events published from now
// on. Close it to release the publisher's fast path again.
func (p *Publisher) Subscribe() *Subscription {
	s := &Subscription{p: p, ready: make(chan struct{}, 1)}
	// Count first: a Publish racing with Subscribe must not take the
	// no-subscriber shortcut after the cursor is placed.
	p.subs.Add(1)
	p.mu.Lock()
	s.cursor = p.seq
	p.waiters[s] = struct{}{}
	p.mu.Unlock()
	return s
}

// Close releases the subscription.
func (s *Subscription) Close() {
	s.p.mu.Lock()
	delete(s.p.waiters, s)
	s.p.mu.Unlock()
	s.p.subs.Add(-1)
}

// Ready returns a channel that receives a signal when events are
// pending. One signal may cover many events; Poll drains them all.
func (s *Subscription) Ready() <-chan struct{} { return s.ready }

// Poll returns the events published since the previous Poll, and how
// many were overwritten before this subscriber got to them (0 unless it
// lagged a full ring behind).
func (s *Subscription) Poll() (evs []Event, dropped int64) {
	p := s.p
	p.mu.Lock()
	defer p.mu.Unlock()
	oldest := p.seq - int64(len(p.ring))
	if oldest < 0 {
		oldest = 0
	}
	if s.cursor < oldest {
		dropped = oldest - s.cursor
		s.cursor = oldest
	}
	if s.cursor == p.seq {
		return nil, dropped
	}
	evs = make([]Event, 0, p.seq-s.cursor)
	for ; s.cursor < p.seq; s.cursor++ {
		evs = append(evs, p.ring[s.cursor%int64(len(p.ring))])
	}
	return evs, dropped
}

// Coalesce reduces a polled batch to what a live consumer needs: every
// race announcement, the newest progress tick, and the newest
// completion per phase name, in their original order. The /events
// handler applies it per flush so a burst of 10^3 seed completions
// costs one progress line on the wire.
func Coalesce(evs []Event) []Event {
	if len(evs) <= 1 {
		return evs
	}
	keep := make([]bool, len(evs))
	seenProgress := false
	seenPhase := map[string]bool{}
	for i := len(evs) - 1; i >= 0; i-- {
		switch evs[i].Kind {
		case EventProgress:
			keep[i] = !seenProgress
			seenProgress = true
		case EventPhase:
			keep[i] = !seenPhase[evs[i].Phase]
			seenPhase[evs[i].Phase] = true
		default:
			keep[i] = true
		}
	}
	out := evs[:0]
	for i, k := range keep {
		if k {
			out = append(out, evs[i])
		}
	}
	return out
}

package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
)

// testTraceSource serves one canned trace under key "7".
func testTraceSource(t *testing.T) TraceSource {
	t.Helper()
	tr := telemetry.NewTracer(telemetry.TracerOptions{MinSlowSamples: 1 << 30})
	st := tr.Begin("7", telemetry.TraceID(0xbeef), 0, "prog", "WO", 3)
	st.Record("batch.feed", 0, st.Start(), time.Millisecond)
	if !tr.Finish(st, telemetry.TraceOutcome{Racy: true}) {
		t.Fatal("racy trace sampled out")
	}
	return func(key string) ([]export.Record, bool) {
		ts, ok := tr.Lookup(key)
		if !ok {
			return nil, false
		}
		return export.TraceRecords(ts), true
	}
}

func TestTraceEndpointWithoutSource(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, _ := get(t, ts.URL+"/trace/7")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 when tracing is off", resp.StatusCode)
	}
}

func TestTraceEndpointJSONL(t *testing.T) {
	s, ts, _ := newTestServer(t)
	s.SetTraceSource(testTraceSource(t))

	resp, body := get(t, ts.URL+"/trace/7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/jsonl" {
		t.Fatalf("content-type = %q", ct)
	}
	recs, err := export.ReadJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("served JSONL unreadable: %v", err)
	}
	// One meta + batch.feed span + the trace-level "stream" span Finish appends.
	if len(recs) != 3 || recs[0].Kind != export.KindMeta || recs[0].Meta.Stream != "7" {
		t.Fatalf("records = %+v", recs)
	}
	if recs[1].Phase == nil || recs[1].Phase.Name != "batch.feed" {
		t.Fatalf("span record = %+v", recs[1])
	}
	if recs[2].Phase == nil || recs[2].Phase.Name != "stream" {
		t.Fatalf("trace-level record = %+v", recs[2])
	}
}

func TestTraceEndpointPerfetto(t *testing.T) {
	s, ts, _ := newTestServer(t)
	s.SetTraceSource(testTraceSource(t))

	resp, body := get(t, ts.URL+"/trace/7?format=perfetto")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("perfetto body is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("perfetto trace has no events")
	}
}

func TestTraceEndpointErrors(t *testing.T) {
	s, ts, _ := newTestServer(t)
	s.SetTraceSource(testTraceSource(t))

	if resp, _ := get(t, ts.URL+"/trace/99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream: status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/trace/"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing key: status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/trace/7?format=xml"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format: status = %d, want 400", resp.StatusCode)
	}
}

func TestStatusWatchdogBlock(t *testing.T) {
	s, ts, reg := newTestServer(t)
	w := NewWatchdog(WatchdogOptions{Registry: reg, Absolute: time.Millisecond, Cooldown: time.Hour})
	w.Start()
	defer w.Stop()
	s.AttachWatchdog(w)
	w.Observe("stream.batch_feed", time.Second, "3")

	_, body := get(t, ts.URL+"/status")
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if st.Watchdog == nil {
		t.Fatal("watchdog block missing from /status")
	}
	if st.Watchdog.Firings != 1 || len(st.Watchdog.Recent) != 1 {
		t.Fatalf("watchdog = %+v", st.Watchdog)
	}
	if st.Watchdog.Recent[0].Key != "3" || st.Watchdog.Recent[0].Reason == "" {
		t.Fatalf("firing = %+v", st.Watchdog.Recent[0])
	}
}

func TestStatusStreamsLatencyFields(t *testing.T) {
	_, ts, reg := newTestServer(t)
	reg.Gauge("stream.streams_active").Set(1)
	reg.Gauge("stream.queue_high_water").Set(5)
	reg.Counter("trace.kept").Add(2)
	reg.Counter("trace.sampled_out").Add(8)
	for i := 0; i < 10; i++ {
		reg.Phase("stream.batch_wait").Observe(time.Duration(i+1) * time.Microsecond)
		reg.Phase("stream.batch_feed").Observe(time.Duration(i+1) * 2 * time.Microsecond)
	}

	_, body := get(t, ts.URL+"/status")
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	sb := st.Streams
	if sb == nil {
		t.Fatal("streams block missing")
	}
	if sb.QueueHighWater != 5 || sb.TracesKept != 2 || sb.TracesSampledOut != 8 {
		t.Fatalf("streams = %+v", sb)
	}
	if sb.BatchWait == nil || sb.BatchWait.Count != 10 || sb.BatchWait.P99NS < sb.BatchWait.P50NS {
		t.Fatalf("batch_wait = %+v", sb.BatchWait)
	}
	if sb.BatchFeed == nil || sb.BatchFeed.Count != 10 {
		t.Fatalf("batch_feed = %+v", sb.BatchFeed)
	}
}

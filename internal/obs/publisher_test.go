package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPublishNilAndNoSubscribers(t *testing.T) {
	var nilPub *Publisher
	nilPub.Publish(Event{Kind: EventProgress}) // must not panic
	if nilPub.HasSubscribers() {
		t.Fatal("nil publisher claims subscribers")
	}

	p := NewPublisher()
	p.Publish(Event{Kind: EventProgress})
	if p.HasSubscribers() {
		t.Fatal("fresh publisher claims subscribers")
	}
	// The no-subscriber publish must not have entered the ring: a new
	// subscriber polls nothing even after it.
	sub := p.Subscribe()
	defer sub.Close()
	if evs, dropped := sub.Poll(); len(evs) != 0 || dropped != 0 {
		t.Fatalf("got %d events, %d dropped; want none", len(evs), dropped)
	}
}

func TestSubscribeDeliversInOrder(t *testing.T) {
	p := NewPublisher()
	sub := p.Subscribe()
	defer sub.Close()
	for i := 0; i < 5; i++ {
		p.Publish(Event{Kind: EventRace, Seed: int64(i)})
	}
	select {
	case <-sub.Ready():
	default:
		t.Fatal("ready channel not signaled")
	}
	evs, dropped := sub.Poll()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(evs) != 5 {
		t.Fatalf("len = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seed != int64(i) || ev.Seq != int64(i) || ev.UnixNS == 0 {
			t.Fatalf("event %d = %+v; want seed/seq %d with a timestamp", i, ev, i)
		}
	}
	// Drained: a second poll is empty.
	if evs, _ := sub.Poll(); len(evs) != 0 {
		t.Fatalf("second poll returned %d events", len(evs))
	}
}

func TestRingOverwriteCountsDropped(t *testing.T) {
	p := NewPublisherSize(4)
	sub := p.Subscribe()
	defer sub.Close()
	for i := 0; i < 10; i++ {
		p.Publish(Event{Kind: EventRace, Seed: int64(i)})
	}
	evs, dropped := sub.Poll()
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4 (ring size)", len(evs))
	}
	if evs[0].Seed != 6 || evs[3].Seed != 9 {
		t.Fatalf("kept window = [%d..%d], want [6..9]", evs[0].Seed, evs[3].Seed)
	}
}

func TestCloseRestoresFastPath(t *testing.T) {
	p := NewPublisher()
	sub := p.Subscribe()
	if !p.HasSubscribers() {
		t.Fatal("subscriber not counted")
	}
	sub.Close()
	if p.HasSubscribers() {
		t.Fatal("closed subscriber still counted")
	}
}

func TestCoalesce(t *testing.T) {
	evs := []Event{
		{Kind: EventProgress, Done: 1},
		{Kind: EventRace, Race: "r1"},
		{Kind: EventPhase, Phase: "detect"},
		{Kind: EventProgress, Done: 2},
		{Kind: EventPhase, Phase: "simulate"},
		{Kind: EventPhase, Phase: "detect"},
		{Kind: EventRace, Race: "r2"},
		{Kind: EventProgress, Done: 3},
	}
	out := Coalesce(evs)
	want := []struct {
		kind, key string
		done      int
	}{
		{EventRace, "r1", 0},
		{EventPhase, "simulate", 0},
		{EventPhase, "detect", 0},
		{EventRace, "r2", 0},
		{EventProgress, "", 3},
	}
	if len(out) != len(want) {
		t.Fatalf("len = %d, want %d: %+v", len(out), len(want), out)
	}
	for i, w := range want {
		ev := out[i]
		if ev.Kind != w.kind {
			t.Errorf("out[%d].Kind = %s, want %s", i, ev.Kind, w.kind)
		}
		switch w.kind {
		case EventRace:
			if ev.Race != w.key {
				t.Errorf("out[%d].Race = %s, want %s", i, ev.Race, w.key)
			}
		case EventPhase:
			if ev.Phase != w.key {
				t.Errorf("out[%d].Phase = %s, want %s", i, ev.Phase, w.key)
			}
		case EventProgress:
			if ev.Done != w.done {
				t.Errorf("out[%d].Done = %d, want %d", i, ev.Done, w.done)
			}
		}
	}
}

func TestCoalesceSmallBatches(t *testing.T) {
	if out := Coalesce(nil); len(out) != 0 {
		t.Fatalf("Coalesce(nil) = %v", out)
	}
	one := []Event{{Kind: EventProgress, Done: 7}}
	if out := Coalesce(one); len(out) != 1 || out[0].Done != 7 {
		t.Fatalf("Coalesce(one) = %v", out)
	}
}

// TestPublisherConcurrent drives publishers, subscribers, and pollers
// concurrently; meaningful mainly under -race (CI's telemetry-race job
// covers this package).
func TestPublisherConcurrent(t *testing.T) {
	p := NewPublisherSize(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.Publish(Event{Kind: EventRace, Race: fmt.Sprintf("w%d", w), Seed: int64(i)})
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := p.Subscribe()
			defer sub.Close()
			for i := 0; i < 200; i++ {
				sub.Poll()
			}
		}()
	}
	wg.Wait()
}

// TestSlowSubscriberAccountsEveryDrop is the overflow ledger check: a
// tiny ring, concurrent publishers, and one deliberately slow
// subscriber. Whatever the interleaving, every published event must be
// accounted exactly once — delivered by Poll or counted in that Poll's
// dropped total. Run under -race this also exercises the cursor
// arithmetic against concurrent Publish.
func TestSlowSubscriberAccountsEveryDrop(t *testing.T) {
	const (
		publishers   = 4
		perPublisher = 300
		total        = publishers * perPublisher
	)
	p := NewPublisherSize(8) // far smaller than the publish volume
	sub := p.Subscribe()
	defer sub.Close()

	var wg sync.WaitGroup
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				p.Publish(Event{Kind: EventRace, Race: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var delivered, dropped int64
	poll := func() {
		evs, d := sub.Poll()
		delivered += int64(len(evs))
		dropped += d
	}
	for running := true; running; {
		select {
		case <-done:
			running = false
		case <-time.After(time.Millisecond): // slow consumer: let the ring lap the cursor
			poll()
		}
	}
	poll() // final drain after all publishers finished

	if delivered+dropped != total {
		t.Fatalf("ledger mismatch: delivered %d + dropped %d = %d, want %d",
			delivered, dropped, delivered+dropped, total)
	}
	if dropped == 0 {
		t.Logf("note: no drops this run (scheduler kept up); ledger still balanced")
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"weakrace/internal/report"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
)

// Options configures a Server. The zero value serves the process-wide
// default registry with a fresh Publisher.
type Options struct {
	// Tool names the process in /status and the dashboard header.
	// Default "weakrace".
	Tool string
	// Registry is the telemetry source. Default telemetry.Default().
	// Mounting enables it: a plane nobody asked for never turns
	// collection on, and one that was asked for must have data.
	Registry *telemetry.Registry
	// Publisher carries progress/race events to /events subscribers.
	// Default: a new one, reachable via Server.Publisher. The server
	// installs a span hook forwarding the registry's completed phases
	// into it.
	Publisher *Publisher
}

// Server is the embeddable observability HTTP plane.
//
// Endpoints: / (dashboard), /metrics (Prometheus text exposition),
// /metrics.json (snapshot JSON), /healthz, /status, /events (SSE), and
// /debug/pprof/*. Every handler reads point-in-time snapshots or the
// bounded event ring — none can block or slow the pipeline it observes.
type Server struct {
	tool  string
	reg   *telemetry.Registry
	pub   *Publisher
	start time.Time
	mux   *http.ServeMux

	ln      net.Listener
	httpSrv *http.Server

	// coalesceWindow batches /events flushes: after a wake-up the
	// handler waits this long so a burst becomes one flush. Tests set 0.
	coalesceWindow time.Duration
	// heartbeat is the SSE keep-alive comment interval.
	heartbeat time.Duration

	// traceSource resolves /trace/{key} to flight records; nil until a
	// tracing-enabled host (wrserve, racehunt) wires one in.
	traceSource atomic.Pointer[TraceSource]
	// watchdog, when attached, contributes the /status watchdog block.
	watchdog atomic.Pointer[Watchdog]
}

// TraceSource resolves a stream or seed key to the flight records of
// its tail-sampled trace.
type TraceSource func(key string) ([]export.Record, bool)

// SetTraceSource wires the /trace/{key} endpoint to a trace store.
func (s *Server) SetTraceSource(ts TraceSource) { s.traceSource.Store(&ts) }

// AttachWatchdog adds the watchdog's firing summary to /status.
func (s *Server) AttachWatchdog(w *Watchdog) { s.watchdog.Store(w) }

// NewServer builds the plane without a listener (for mounting on an
// existing mux or an httptest server). It enables the registry and
// installs the phase-completion span hook.
func NewServer(opts Options) *Server {
	s := &Server{
		tool:           opts.Tool,
		reg:            opts.Registry,
		pub:            opts.Publisher,
		start:          time.Now(),
		coalesceWindow: 100 * time.Millisecond,
		heartbeat:      15 * time.Second,
	}
	if s.tool == "" {
		s.tool = "weakrace"
	}
	if s.reg == nil {
		s.reg = telemetry.Default()
	}
	if s.pub == nil {
		s.pub = NewPublisher()
	}
	s.reg.SetEnabled(true)
	pub := s.pub
	s.reg.SetSpanHook(func(name string, d time.Duration) {
		pub.Publish(Event{Kind: EventPhase, Phase: name, DurNS: int64(d)})
	})

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/", s.handleDashboard)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/trace/", s.handleTrace)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Serve mounts the plane on addr ("host:port"; ":0" picks a free port)
// and serves in a background goroutine. The one call a long-running
// command needs.
func Serve(addr string, opts Options) (*Server, error) {
	s := NewServer(opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Handler returns the plane as an http.Handler for external mounting.
func (s *Server) Handler() http.Handler { return s.mux }

// Publisher returns the event publisher the pipeline should feed.
func (s *Server) Publisher() *Publisher { return s.pub }

// Addr returns the bound listen address ("" without a listener).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and detaches the span hook.
func (s *Server) Close() error {
	s.reg.SetSpanHook(nil)
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := report.RenderDashboard(w, s.tool); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.PrometheusContentType)
	if err := s.reg.Snapshot().WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.Snapshot().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Status is the /status document: process identity, uptime, the phase
// running right now, live campaign progress (when a campaign reports),
// and per-phase latency summaries with bucket-interpolated quantiles.
type Status struct {
	Tool          string                 `json:"tool"`
	PID           int                    `json:"pid"`
	GoVersion     string                 `json:"go_version"`
	Commit        string                 `json:"commit,omitempty"`
	StartUnixNS   int64                  `json:"start_unix_ns"`
	UptimeSeconds float64                `json:"uptime_seconds"`
	CurrentPhase  string                 `json:"current_phase,omitempty"`
	Campaign      *CampaignStatus        `json:"campaign,omitempty"`
	Streams       *StreamsStatus         `json:"streams,omitempty"`
	Phases        map[string]PhaseStatus `json:"phases,omitempty"`
	Watchdog      *WatchdogStatus        `json:"watchdog,omitempty"`
}

// CampaignStatus mirrors the campaign's live counters.
type CampaignStatus struct {
	Done          int64 `json:"done"`
	Total         int64 `json:"total"`
	Failed        int64 `json:"failed"`
	Racy          int64 `json:"racy"`
	DistinctRaces int64 `json:"distinct_races"`
}

// StreamsStatus mirrors a wrserve ingest plane's live counters: the
// stream.* registry namespace rendered as one /status block, the same
// way CampaignStatus mirrors a campaign's.
type StreamsStatus struct {
	Active      int64 `json:"active"`
	Opened      int64 `json:"opened"`
	Closed      int64 `json:"closed"`
	Errored     int64 `json:"errored"`
	Dropped     int64 `json:"dropped"`
	Events      int64 `json:"events"`
	Races       int64 `json:"races"`
	Retired     int64 `json:"retired"`
	ReplaySeeds int64 `json:"replay_seeds"`
	Window      int64 `json:"window"`

	// QueueHighWater is the deepest any stream's batch queue has been
	// since startup — the backpressure signal.
	QueueHighWater int64 `json:"queue_high_water,omitempty"`
	// TracesKept / TracesSampledOut report the tail sampler's decisions.
	TracesKept       int64 `json:"traces_kept,omitempty"`
	TracesSampledOut int64 `json:"traces_sampled_out,omitempty"`
	// BatchWait / BatchFeed summarize per-batch queue-wait and detector
	// feed latency across all streams.
	BatchWait *PhaseStatus `json:"batch_wait,omitempty"`
	BatchFeed *PhaseStatus `json:"batch_feed,omitempty"`
}

// PhaseStatus summarizes one phase histogram for display.
type PhaseStatus struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	P50NS   int64 `json:"p50_ns"`
	P90NS   int64 `json:"p90_ns"`
	P99NS   int64 `json:"p99_ns"`
	MaxNS   int64 `json:"max_ns"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	st := Status{
		Tool:          s.tool,
		PID:           os.Getpid(),
		GoVersion:     runtime.Version(),
		Commit:        vcsRevision(),
		StartUnixNS:   s.start.UnixNano(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		CurrentPhase:  s.reg.CurrentPhase(),
	}
	// A campaign announces itself by setting its seed-total gauge; the
	// rest of the block reads the live counters it maintains per seed.
	if total, ok := snap.Gauges["campaign.seeds_total"]; ok {
		st.Campaign = &CampaignStatus{
			Done:          snap.Counters["campaign.seeds_done"],
			Total:         total,
			Failed:        snap.Counters["campaign.seeds_failed"],
			Racy:          snap.Counters["campaign.seeds_racy"],
			DistinctRaces: snap.Gauges["campaign.races_distinct"],
		}
	}
	// A wrserve ingest plane announces itself by creating its
	// streams-active gauge at startup.
	if active, ok := snap.Gauges["stream.streams_active"]; ok {
		st.Streams = &StreamsStatus{
			Active:      active,
			Opened:      snap.Counters["stream.streams_opened"],
			Closed:      snap.Counters["stream.streams_closed"],
			Errored:     snap.Counters["stream.streams_errored"],
			Dropped:     snap.Counters["stream.streams_dropped"],
			Events:      snap.Counters["stream.events"],
			Races:       snap.Counters["stream.races"],
			Retired:     snap.Counters["stream.retired"],
			ReplaySeeds: snap.Counters["stream.replay_seeds"],
			Window:      snap.Gauges["stream.window"],

			QueueHighWater:   snap.Gauges["stream.queue_high_water"],
			TracesKept:       snap.Counters["trace.kept"],
			TracesSampledOut: snap.Counters["trace.sampled_out"],
		}
		if p, ok := snap.Phases["stream.batch_wait"]; ok {
			st.Streams.BatchWait = phaseStatus(p)
		}
		if p, ok := snap.Phases["stream.batch_feed"]; ok {
			st.Streams.BatchFeed = phaseStatus(p)
		}
	}
	if wd := s.watchdog.Load(); wd != nil {
		st.Watchdog = wd.Status()
	}
	if len(snap.Phases) > 0 {
		st.Phases = make(map[string]PhaseStatus, len(snap.Phases))
		for name, p := range snap.Phases {
			st.Phases[name] = *phaseStatus(p)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// phaseStatus summarizes one phase snapshot for display.
func phaseStatus(p telemetry.PhaseSnapshot) *PhaseStatus {
	return &PhaseStatus{
		Count:   p.Count,
		TotalNS: p.TotalNS,
		P50NS:   p.Quantile(0.50),
		P90NS:   p.Quantile(0.90),
		P99NS:   p.Quantile(0.99),
		MaxNS:   p.MaxNS,
	}
}

// handleTrace serves /trace/{key}: the tail-sampled flight trace of one
// stream (or campaign seed). Default output is flight-recorder JSONL;
// ?format=perfetto renders Chrome trace-event JSON loadable in Perfetto
// or chrome://tracing. 404 means the key was never traced or was
// sampled out as unremarkable.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tsp := s.traceSource.Load()
	if tsp == nil {
		http.Error(w, "tracing not enabled", http.StatusNotFound)
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/trace/")
	if key == "" {
		http.Error(w, "usage: /trace/{stream}", http.StatusBadRequest)
		return
	}
	recs, ok := (*tsp)(key)
	if !ok {
		http.Error(w, "no trace for "+key, http.StatusNotFound)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/jsonl")
		if err := export.WriteJSONL(w, recs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "perfetto", "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := export.WriteChromeTrace(w, recs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, "unknown format (want jsonl or perfetto)", http.StatusBadRequest)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.pub.Subscribe()
	defer sub.Close()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": stream open\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(s.heartbeat)
	defer heartbeat.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case <-sub.Ready():
			// Let a burst accumulate, then flush it as one coalesced batch.
			if s.coalesceWindow > 0 {
				t := time.NewTimer(s.coalesceWindow)
				select {
				case <-ctx.Done():
					t.Stop()
					return
				case <-t.C:
				}
			}
			evs, dropped := sub.Poll()
			evs = Coalesce(evs)
			if dropped > 0 {
				writeSSE(w, Event{Kind: EventDropped, Dropped: dropped})
			}
			for _, ev := range evs {
				writeSSE(w, ev)
			}
			if dropped > 0 || len(evs) > 0 {
				fl.Flush()
			}
		}
	}
}

func writeSSE(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
}

// vcsRevision returns the commit baked into the binary, if any.
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			return kv.Value
		}
	}
	return ""
}

package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"weakrace/internal/report"
	"weakrace/internal/telemetry"
)

// Options configures a Server. The zero value serves the process-wide
// default registry with a fresh Publisher.
type Options struct {
	// Tool names the process in /status and the dashboard header.
	// Default "weakrace".
	Tool string
	// Registry is the telemetry source. Default telemetry.Default().
	// Mounting enables it: a plane nobody asked for never turns
	// collection on, and one that was asked for must have data.
	Registry *telemetry.Registry
	// Publisher carries progress/race events to /events subscribers.
	// Default: a new one, reachable via Server.Publisher. The server
	// installs a span hook forwarding the registry's completed phases
	// into it.
	Publisher *Publisher
}

// Server is the embeddable observability HTTP plane.
//
// Endpoints: / (dashboard), /metrics (Prometheus text exposition),
// /metrics.json (snapshot JSON), /healthz, /status, /events (SSE), and
// /debug/pprof/*. Every handler reads point-in-time snapshots or the
// bounded event ring — none can block or slow the pipeline it observes.
type Server struct {
	tool  string
	reg   *telemetry.Registry
	pub   *Publisher
	start time.Time
	mux   *http.ServeMux

	ln      net.Listener
	httpSrv *http.Server

	// coalesceWindow batches /events flushes: after a wake-up the
	// handler waits this long so a burst becomes one flush. Tests set 0.
	coalesceWindow time.Duration
	// heartbeat is the SSE keep-alive comment interval.
	heartbeat time.Duration
}

// NewServer builds the plane without a listener (for mounting on an
// existing mux or an httptest server). It enables the registry and
// installs the phase-completion span hook.
func NewServer(opts Options) *Server {
	s := &Server{
		tool:           opts.Tool,
		reg:            opts.Registry,
		pub:            opts.Publisher,
		start:          time.Now(),
		coalesceWindow: 100 * time.Millisecond,
		heartbeat:      15 * time.Second,
	}
	if s.tool == "" {
		s.tool = "weakrace"
	}
	if s.reg == nil {
		s.reg = telemetry.Default()
	}
	if s.pub == nil {
		s.pub = NewPublisher()
	}
	s.reg.SetEnabled(true)
	pub := s.pub
	s.reg.SetSpanHook(func(name string, d time.Duration) {
		pub.Publish(Event{Kind: EventPhase, Phase: name, DurNS: int64(d)})
	})

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/", s.handleDashboard)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Serve mounts the plane on addr ("host:port"; ":0" picks a free port)
// and serves in a background goroutine. The one call a long-running
// command needs.
func Serve(addr string, opts Options) (*Server, error) {
	s := NewServer(opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Handler returns the plane as an http.Handler for external mounting.
func (s *Server) Handler() http.Handler { return s.mux }

// Publisher returns the event publisher the pipeline should feed.
func (s *Server) Publisher() *Publisher { return s.pub }

// Addr returns the bound listen address ("" without a listener).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and detaches the span hook.
func (s *Server) Close() error {
	s.reg.SetSpanHook(nil)
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := report.RenderDashboard(w, s.tool); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.PrometheusContentType)
	if err := s.reg.Snapshot().WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.Snapshot().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Status is the /status document: process identity, uptime, the phase
// running right now, live campaign progress (when a campaign reports),
// and per-phase latency summaries with bucket-interpolated quantiles.
type Status struct {
	Tool          string                 `json:"tool"`
	PID           int                    `json:"pid"`
	GoVersion     string                 `json:"go_version"`
	Commit        string                 `json:"commit,omitempty"`
	StartUnixNS   int64                  `json:"start_unix_ns"`
	UptimeSeconds float64                `json:"uptime_seconds"`
	CurrentPhase  string                 `json:"current_phase,omitempty"`
	Campaign      *CampaignStatus        `json:"campaign,omitempty"`
	Streams       *StreamsStatus         `json:"streams,omitempty"`
	Phases        map[string]PhaseStatus `json:"phases,omitempty"`
}

// CampaignStatus mirrors the campaign's live counters.
type CampaignStatus struct {
	Done          int64 `json:"done"`
	Total         int64 `json:"total"`
	Failed        int64 `json:"failed"`
	Racy          int64 `json:"racy"`
	DistinctRaces int64 `json:"distinct_races"`
}

// StreamsStatus mirrors a wrserve ingest plane's live counters: the
// stream.* registry namespace rendered as one /status block, the same
// way CampaignStatus mirrors a campaign's.
type StreamsStatus struct {
	Active      int64 `json:"active"`
	Opened      int64 `json:"opened"`
	Closed      int64 `json:"closed"`
	Errored     int64 `json:"errored"`
	Dropped     int64 `json:"dropped"`
	Events      int64 `json:"events"`
	Races       int64 `json:"races"`
	Retired     int64 `json:"retired"`
	ReplaySeeds int64 `json:"replay_seeds"`
	Window      int64 `json:"window"`
}

// PhaseStatus summarizes one phase histogram for display.
type PhaseStatus struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	P50NS   int64 `json:"p50_ns"`
	P90NS   int64 `json:"p90_ns"`
	P99NS   int64 `json:"p99_ns"`
	MaxNS   int64 `json:"max_ns"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	st := Status{
		Tool:          s.tool,
		PID:           os.Getpid(),
		GoVersion:     runtime.Version(),
		Commit:        vcsRevision(),
		StartUnixNS:   s.start.UnixNano(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		CurrentPhase:  s.reg.CurrentPhase(),
	}
	// A campaign announces itself by setting its seed-total gauge; the
	// rest of the block reads the live counters it maintains per seed.
	if total, ok := snap.Gauges["campaign.seeds_total"]; ok {
		st.Campaign = &CampaignStatus{
			Done:          snap.Counters["campaign.seeds_done"],
			Total:         total,
			Failed:        snap.Counters["campaign.seeds_failed"],
			Racy:          snap.Counters["campaign.seeds_racy"],
			DistinctRaces: snap.Gauges["campaign.races_distinct"],
		}
	}
	// A wrserve ingest plane announces itself by creating its
	// streams-active gauge at startup.
	if active, ok := snap.Gauges["stream.streams_active"]; ok {
		st.Streams = &StreamsStatus{
			Active:      active,
			Opened:      snap.Counters["stream.streams_opened"],
			Closed:      snap.Counters["stream.streams_closed"],
			Errored:     snap.Counters["stream.streams_errored"],
			Dropped:     snap.Counters["stream.streams_dropped"],
			Events:      snap.Counters["stream.events"],
			Races:       snap.Counters["stream.races"],
			Retired:     snap.Counters["stream.retired"],
			ReplaySeeds: snap.Counters["stream.replay_seeds"],
			Window:      snap.Gauges["stream.window"],
		}
	}
	if len(snap.Phases) > 0 {
		st.Phases = make(map[string]PhaseStatus, len(snap.Phases))
		for name, p := range snap.Phases {
			st.Phases[name] = PhaseStatus{
				Count:   p.Count,
				TotalNS: p.TotalNS,
				P50NS:   p.Quantile(0.50),
				P90NS:   p.Quantile(0.90),
				P99NS:   p.Quantile(0.99),
				MaxNS:   p.MaxNS,
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.pub.Subscribe()
	defer sub.Close()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": stream open\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(s.heartbeat)
	defer heartbeat.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case <-sub.Ready():
			// Let a burst accumulate, then flush it as one coalesced batch.
			if s.coalesceWindow > 0 {
				t := time.NewTimer(s.coalesceWindow)
				select {
				case <-ctx.Done():
					t.Stop()
					return
				case <-t.C:
				}
			}
			evs, dropped := sub.Poll()
			evs = Coalesce(evs)
			if dropped > 0 {
				writeSSE(w, Event{Kind: EventDropped, Dropped: dropped})
			}
			for _, ev := range evs {
				writeSSE(w, ev)
			}
			if dropped > 0 || len(evs) > 0 {
				fl.Flush()
			}
		}
	}
}

func writeSSE(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
}

// vcsRevision returns the commit baked into the binary, if any.
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			return kv.Value
		}
	}
	return ""
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"weakrace/internal/atomicio"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
)

// Watchdog is the self-profiling arm of the observability plane: it
// watches phase latencies (via the registry's span hook and explicit
// Observe calls from the stream workers) and live-stream stalls, and
// when a configured SLO is breached it captures the evidence while it
// is still hot — CPU/heap/goroutine pprof snapshots plus the offending
// stream's tail-sampled trace — into an artifacts directory, surfacing
// the firing on /status and /events.
//
// The hot path is one atomic threshold compare per observation; the
// capture itself runs in a background goroutine behind a cooldown, so a
// pathological phase cannot turn the watchdog into its own overhead.

// WatchdogOptions configures SLOs and capture.
type WatchdogOptions struct {
	// Registry holds the phase histograms the relative SLO reads.
	// Default telemetry.Default().
	Registry *telemetry.Registry
	// Publisher receives one EventWatchdog per firing. Nil discards.
	Publisher *Publisher
	// Dir is the artifacts directory; firings create
	// dir/watchdog-<seq>-<phase> subdirectories. Empty disables capture
	// (firings are still counted and published).
	Dir string
	// P99Multiple fires when one observation exceeds this multiple of
	// the phase's running p99 (after MinSamples observations of that
	// phase). 0 disables the relative SLO.
	P99Multiple float64
	// MinSamples gates the relative SLO: a phase's p99 is meaningless
	// until it has history. Default 64.
	MinSamples int64
	// Absolute fires when any single observation exceeds this duration.
	// 0 disables the absolute SLO.
	Absolute time.Duration
	// Stall fires when StallCheck reports an item older than this.
	// 0 disables stall polling.
	Stall time.Duration
	// StallCheck lists currently stalled items (a wrserve plugs in its
	// live-stream scan). Consulted every PollInterval when Stall > 0.
	StallCheck func(olderThan time.Duration) []StallInfo
	// PollInterval is the stall scan cadence. Default 1s.
	PollInterval time.Duration
	// Cooldown is the minimum time between captures. Default 30s.
	Cooldown time.Duration
	// CPUProfile is how long the capture's CPU profile runs. Default
	// 250ms; 0 keeps the default.
	CPUProfile time.Duration
	// TraceFor resolves a stream/seed key to its trace records for the
	// capture (a Tracer lookup). Nil skips the trace artifact.
	TraceFor func(key string) ([]export.Record, bool)
}

// StallInfo is one stalled item reported by StallCheck.
type StallInfo struct {
	Key   string
	Phase string
	Age   time.Duration
}

// Firing is one recorded SLO breach.
type Firing struct {
	Seq    int    `json:"seq"`
	UnixNS int64  `json:"unix_ns"`
	Phase  string `json:"phase"`
	Key    string `json:"key,omitempty"`
	Reason string `json:"reason"`
	DurNS  int64  `json:"dur_ns"`
	Dir    string `json:"dir,omitempty"`
}

// WatchdogStatus is the /status block.
type WatchdogStatus struct {
	Firings    int64    `json:"firings"`
	Suppressed int64    `json:"suppressed"`
	Recent     []Firing `json:"recent,omitempty"`
}

// phaseStat is the per-phase hot-path state: an observation count and a
// cached firing threshold, refreshed from the histogram every
// thresholdRefresh observations so the common case is two atomic loads.
type phaseStat struct {
	count     atomic.Int64
	threshold atomic.Int64 // ns; 0 = not yet computed
}

const thresholdRefresh = 64

// recentFiringsCap bounds the firings kept for /status.
const recentFiringsCap = 16

// Watchdog monitors SLOs. A nil *Watchdog no-ops every method, so call
// sites (the stream worker, campaign seeds) need no enabled checks.
type Watchdog struct {
	opts WatchdogOptions
	reg  *telemetry.Registry

	phases    sync.Map // phase name -> *phaseStat
	lastFire  atomic.Int64
	capturing atomic.Bool

	mu         sync.Mutex
	seq        int
	firings    int64
	suppressed int64
	recent     []Firing

	stopPoll  chan struct{}
	pollDone  chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
	captureWG sync.WaitGroup
}

// NewWatchdog builds a watchdog; call Start to install the span hook
// and the stall poller.
func NewWatchdog(opts WatchdogOptions) *Watchdog {
	if opts.Registry == nil {
		opts.Registry = telemetry.Default()
	}
	if opts.MinSamples <= 0 {
		opts.MinSamples = 64
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = time.Second
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 30 * time.Second
	}
	if opts.CPUProfile <= 0 {
		opts.CPUProfile = 250 * time.Millisecond
	}
	return &Watchdog{
		opts:     opts,
		reg:      opts.Registry,
		stopPoll: make(chan struct{}),
		pollDone: make(chan struct{}),
	}
}

// Start installs the registry span hook (chained after any existing
// observer) and, when a stall SLO is configured, the stall poller.
func (w *Watchdog) Start() {
	if w == nil {
		return
	}
	w.startOnce.Do(func() {
		w.reg.AddSpanHook(func(name string, d time.Duration) {
			w.Observe(name, d, "")
		})
		if w.opts.Stall > 0 && w.opts.StallCheck != nil {
			go w.pollStalls()
		} else {
			close(w.pollDone)
		}
	})
}

// Stop halts the stall poller and waits for in-flight captures. The
// span hook stays installed (hooks are wired once per process); it
// observes into a stopped watchdog harmlessly.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stopPoll) })
	<-w.pollDone
	w.captureWG.Wait()
}

// Observe is the hot-path SLO check: the stream worker calls it per
// batch with the stream's key, and the span hook calls it for every
// completed registry span with an empty key. Cost when no SLO is
// breached: one sync.Map load and two atomic loads.
func (w *Watchdog) Observe(phase string, d time.Duration, key string) {
	if w == nil {
		return
	}
	if abs := w.opts.Absolute; abs > 0 && d >= abs {
		w.fire(phase, key, d, fmt.Sprintf("absolute SLO: %v >= %v", d, abs))
		return
	}
	if w.opts.P99Multiple <= 0 {
		return
	}
	psAny, ok := w.phases.Load(phase)
	if !ok {
		psAny, _ = w.phases.LoadOrStore(phase, &phaseStat{})
	}
	ps := psAny.(*phaseStat)
	n := ps.count.Add(1)
	if n < w.opts.MinSamples {
		return
	}
	th := ps.threshold.Load()
	if th == 0 || n%thresholdRefresh == 0 {
		snap := w.reg.Phase(phase).Snapshot()
		th = int64(w.opts.P99Multiple * float64(snap.Quantile(0.99)))
		if th <= 0 {
			th = 1
		}
		ps.threshold.Store(th)
	}
	if int64(d) >= th {
		w.fire(phase, key, d, fmt.Sprintf("p99 SLO: %v >= %.1fx p99 (%v)",
			d, w.opts.P99Multiple, time.Duration(th)))
	}
}

// pollStalls scans for stalled items on a ticker.
func (w *Watchdog) pollStalls() {
	defer close(w.pollDone)
	t := time.NewTicker(w.opts.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopPoll:
			return
		case <-t.C:
			for _, st := range w.opts.StallCheck(w.opts.Stall) {
				w.fire(st.Phase, st.Key, st.Age,
					fmt.Sprintf("stall SLO: no progress for %v (>= %v)", st.Age.Round(time.Millisecond), w.opts.Stall))
			}
		}
	}
}

// fire records one breach and kicks off the capture, behind the
// cooldown so breach storms cost one capture per window.
func (w *Watchdog) fire(phase, key string, d time.Duration, reason string) {
	now := time.Now().UnixNano()
	last := w.lastFire.Load()
	if now-last < int64(w.opts.Cooldown) || !w.lastFire.CompareAndSwap(last, now) {
		w.mu.Lock()
		w.suppressed++
		w.mu.Unlock()
		if w.reg.Enabled() {
			w.reg.Counter("watchdog.suppressed").Inc()
		}
		return
	}

	w.mu.Lock()
	w.seq++
	f := Firing{Seq: w.seq, UnixNS: now, Phase: phase, Key: key, Reason: reason, DurNS: int64(d)}
	if w.opts.Dir != "" {
		f.Dir = filepath.Join(w.opts.Dir, fmt.Sprintf("watchdog-%03d-%s", f.Seq, pathSafe(phase)))
	}
	w.firings++
	w.recent = append(w.recent, f)
	if len(w.recent) > recentFiringsCap {
		w.recent = w.recent[len(w.recent)-recentFiringsCap:]
	}
	w.mu.Unlock()

	if w.reg.Enabled() {
		w.reg.Counter("watchdog.firings").Inc()
	}
	w.opts.Publisher.Publish(Event{
		Kind: EventWatchdog, Phase: phase, DurNS: int64(d),
		Reason: reason, ArtifactDir: f.Dir,
	})
	if f.Dir != "" && w.capturing.CompareAndSwap(false, true) {
		// Resolve the offending trace now, while the stream is still
		// live: by the time the async capture runs, a clean stream may
		// have finished and been sampled out of the kept set.
		var traceRecs []export.Record
		if w.opts.TraceFor != nil && f.Key != "" {
			traceRecs, _ = w.opts.TraceFor(f.Key)
		}
		w.captureWG.Add(1)
		go func() {
			defer w.captureWG.Done()
			defer w.capturing.Store(false)
			w.capture(f, traceRecs)
		}()
	}
}

// capture writes the firing's evidence: firing.json, heap + goroutine
// profiles, a short CPU profile, and the offending stream's trace when
// one resolved at fire time. Every artifact is best-effort — a capture
// error is recorded in errors.txt, never propagated into the serving
// path.
func (w *Watchdog) capture(f Firing, traceRecs []export.Record) {
	var errs []string
	fail := func(what string, err error) {
		errs = append(errs, fmt.Sprintf("%s: %v", what, err))
	}
	if err := os.MkdirAll(f.Dir, 0o755); err != nil {
		return // nowhere to write anything, including errors.txt
	}

	if err := atomicio.WriteFile(filepath.Join(f.Dir, "firing.json"), func(fw io.Writer) error {
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			return err
		}
		_, err = fw.Write(append(data, '\n'))
		return err
	}); err != nil {
		fail("firing.json", err)
	}

	// Heap profile: materialize current allocation stats first.
	runtime.GC()
	if hf, err := os.Create(filepath.Join(f.Dir, "heap.pprof")); err != nil {
		fail("heap.pprof", err)
	} else {
		if err := pprof.WriteHeapProfile(hf); err != nil {
			fail("heap.pprof", err)
		}
		hf.Close()
	}

	// Goroutine profile, both loadable (proto) and human-readable forms.
	if gf, err := os.Create(filepath.Join(f.Dir, "goroutine.pprof")); err != nil {
		fail("goroutine.pprof", err)
	} else {
		if err := pprof.Lookup("goroutine").WriteTo(gf, 0); err != nil {
			fail("goroutine.pprof", err)
		}
		gf.Close()
	}
	if gf, err := os.Create(filepath.Join(f.Dir, "goroutines.txt")); err != nil {
		fail("goroutines.txt", err)
	} else {
		if err := pprof.Lookup("goroutine").WriteTo(gf, 2); err != nil {
			fail("goroutines.txt", err)
		}
		gf.Close()
	}

	// CPU profile of the stall in progress. StartCPUProfile fails when a
	// -cpuprofile flag (or a /debug/pprof/profile scrape) already owns
	// profiling; that is a skipped artifact, not an error state.
	if cf, err := os.Create(filepath.Join(f.Dir, "cpu.pprof")); err != nil {
		fail("cpu.pprof", err)
	} else {
		if err := pprof.StartCPUProfile(cf); err != nil {
			fail("cpu.pprof", err)
			cf.Close()
			os.Remove(cf.Name())
		} else {
			time.Sleep(w.opts.CPUProfile)
			pprof.StopCPUProfile()
			cf.Close()
		}
	}

	// The offending stream's trace, in both flight-recorder forms.
	if len(traceRecs) > 0 {
		if err := atomicio.WriteFile(filepath.Join(f.Dir, export.FlightLogName), func(fw io.Writer) error {
			return export.WriteJSONL(fw, traceRecs)
		}); err != nil {
			fail(export.FlightLogName, err)
		}
		if err := atomicio.WriteFile(filepath.Join(f.Dir, export.ChromeTraceName), func(fw io.Writer) error {
			return export.WriteChromeTrace(fw, traceRecs)
		}); err != nil {
			fail(export.ChromeTraceName, err)
		}
	}

	if len(errs) > 0 {
		os.WriteFile(filepath.Join(f.Dir, "errors.txt"), //nolint:errcheck
			[]byte(strings.Join(errs, "\n")+"\n"), 0o644)
	}
}

// Status returns the /status watchdog block.
func (w *Watchdog) Status() *WatchdogStatus {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return &WatchdogStatus{
		Firings:    w.firings,
		Suppressed: w.suppressed,
		Recent:     append([]Firing(nil), w.recent...),
	}
}

// pathSafe turns a phase name into a directory-name-safe slug.
func pathSafe(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '.'
		}
	}, s)
}

// Package experiments regenerates every figure of the paper and a table
// for each quantitative claim of §5 (the paper has no numeric tables; the
// tables here quantify the claims its evaluation argues qualitatively).
// See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package experiments

import (
	"fmt"
	"io"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/report"
	"weakrace/internal/scp"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// Fig2Config is the weak-model configuration used to reproduce the
// Figure 2b anomaly (a smaller RetireProb keeps P1's queue write buffered
// longer, widening the reordering window).
var Fig2Config = sim.Config{Model: memmodel.WO, RetireProb: 0.15}

// Fig2MaxSeed bounds the stale-dequeue seed search.
const Fig2MaxSeed = 20000

func runAndAnalyze(w *workload.Workload, cfg sim.Config) (*sim.Result, *core.Analysis, error) {
	cfg.InitMemory = w.InitMemory
	r, err := sim.Run(w.Prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
	if err != nil {
		return nil, nil, err
	}
	return r, a, nil
}

// Figure1a reproduces Figure 1a: an execution with data races. It prints
// the execution, the detector's report, and checks the expected shape.
func Figure1a(out io.Writer) error {
	w := workload.Figure1a()
	r, a, err := runAndAnalyze(w, sim.Config{Model: memmodel.WO, Seed: 1})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "=== Figure 1a: execution WITH data races ===\n")
	printOps(out, r.Exec)
	if err := report.RenderAnalysis(out, a); err != nil {
		return err
	}
	if a.RaceFree() {
		return fmt.Errorf("figure 1a: expected data races, found none")
	}
	fmt.Fprintf(out, "MATCHES PAPER: conflicting Write/Read pairs on x and y are unordered by hb1.\n\n")
	return nil
}

// Figure1b reproduces Figure 1b: the race-free variant via Unset/Test&Set
// pairing.
func Figure1b(out io.Writer) error {
	w := workload.Figure1b()
	r, a, err := runAndAnalyze(w, sim.Config{Model: memmodel.WO, Seed: 1})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "=== Figure 1b: execution WITHOUT data races ===\n")
	printOps(out, r.Exec)
	if err := report.RenderAnalysis(out, a); err != nil {
		return err
	}
	if !a.RaceFree() {
		return fmt.Errorf("figure 1b: expected race freedom")
	}
	fmt.Fprintf(out, "MATCHES PAPER: all conflicting data operations ordered by hb1 via the\nUnset(s) --so1--> Test&Set(s) pairing.\n\n")
	return nil
}

// Figure2 reproduces the Figure 2b anomaly: a weak execution of the
// work-queue program in which P2 observes QEmpty's new value but Q's old
// one, then collides with P3's region. Prints the execution with the
// "End of SCP" marker computed by the exact verifier.
func Figure2(out io.Writer) (*sim.Result, error) {
	r, seed, ok := workload.FindFig2StaleSeed(Fig2Config, Fig2MaxSeed)
	if !ok {
		// The anomaly occurs naturally in ~0.1% of seeds; if the search
		// window missed it, construct it deterministically instead.
		var err error
		r, err = workload.RunFig2Stale(Fig2Config.Model, 1)
		if err != nil {
			return nil, fmt.Errorf("figure 2: %w", err)
		}
		seed = -1
	}
	fmt.Fprintf(out, "=== Figure 2: weak execution of the work-queue program (WO, seed %d) ===\n", seed)
	fmt.Fprintf(out, "P1 enqueues address %d and clears QEmpty; P2 reads QEmpty=0 but dequeues the\nSTALE address %d; its region overlaps P3's.\n",
		workload.Fig2FreshAddr, workload.Fig2StaleAddr)
	boundary, decided := scp.SCBoundary(r.Exec, 1<<20)
	printOpsWithBoundary(out, r.Exec, boundary)
	fmt.Fprintf(out, "longest sequentially consistent prefix: %d of %d operations (exact=%v)\n",
		boundary, len(r.Exec.Ops), decided)
	sc, _ := scp.VerifySC(r.Exec, 1<<20)
	if sc {
		return nil, fmt.Errorf("figure 2: anomaly execution verified SC")
	}
	fmt.Fprintf(out, "MATCHES PAPER: the execution is not sequentially consistent, but has a\nsequentially consistent prefix extending through the first data races.\n\n")
	return r, nil
}

// Figure3 reproduces Figure 3: the augmented happens-before-1 graph of
// the Figure 2b execution, with its first and non-first data race
// partitions.
func Figure3(out io.Writer) error {
	r, err := Figure2(io.Discard)
	if err != nil {
		return err
	}
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "=== Figure 3: augmented hb1 graph, first and non-first partitions ===\n")
	if err := report.RenderGraph(out, a); err != nil {
		return err
	}
	if err := report.RenderAnalysis(out, a); err != nil {
		return err
	}
	if len(a.FirstPartitions) < 1 || len(a.Partitions) <= len(a.FirstPartitions) {
		return fmt.Errorf("figure 3: expected both first and non-first partitions, got %d/%d",
			len(a.FirstPartitions), len(a.Partitions))
	}
	// The first partition must be the queue races; the paper's
	// non-sequentially-consistent region races must be non-first.
	first := a.Partitions[a.FirstPartitions[0]]
	queueRace := false
	for _, ri := range first.Races {
		if a.Races[ri].Locs.Contains(int(workload.Fig2Q)) ||
			a.Races[ri].Locs.Contains(int(workload.Fig2QEmpty)) {
			queueRace = true
		}
	}
	if !queueRace {
		return fmt.Errorf("figure 3: first partition does not contain the queue races")
	}
	fmt.Fprintf(out, "MATCHES PAPER: the queue races (sequentially consistent) form the first\npartition; the region races (non-SC artifacts) are ordered after it.\n\n")
	return nil
}

func printOps(out io.Writer, e *sim.Execution) {
	printOpsWithBoundary(out, e, -1)
}

// printOpsWithBoundary lists each processor's operations; ops with ID >=
// boundary (when boundary >= 0) are marked as beyond the SC prefix.
func printOpsWithBoundary(out io.Writer, e *sim.Execution, boundary int) {
	for c := 0; c < e.NumCPUs; c++ {
		fmt.Fprintf(out, "P%d:", c+1)
		for _, op := range e.OpsOf(c) {
			mark := ""
			if boundary >= 0 && op.ID >= boundary {
				mark = "*"
			}
			fmt.Fprintf(out, "  %s(%d)=%d%s", op.Kind, op.Loc, op.Value, mark)
		}
		fmt.Fprintln(out)
	}
	if boundary >= 0 {
		fmt.Fprintf(out, "(* = beyond the sequentially consistent prefix)\n")
	}
}

package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

var quick = Config{Seeds: 4, GroundTruthSeeds: 50}

func TestFigure1a(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure1a(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MATCHES PAPER") {
		t.Fatalf("figure 1a output:\n%s", buf.String())
	}
}

func TestFigure1b(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure1b(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NO DATA RACES") {
		t.Fatalf("figure 1b output:\n%s", buf.String())
	}
}

func TestFigure2(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Figure2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"STALE", "sequentially consistent prefix", "MATCHES PAPER"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FIRST", "non-first", "race↔"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure 3 output missing %q:\n%s", want, out)
		}
	}
}

func TestTables(t *testing.T) {
	tables := []struct {
		name string
		fn   func(io.Writer, Config) error
		want []string
	}{
		{"T1", Table1, []string{"T1.", "SC", "WO", "RCsc", "DRF0", "DRF1"}},
		{"T2", Table2, []string{"T2.", "overhead"}},
		{"T3", Table3, []string{"T3.", "events"}},
		{"T4", Table4, []string{"T4.", "Thm4.2"}},
		{"T5", Table5, []string{"T5.", "unbounded"}},
		{"T6", Table6, []string{"T6.", "honest", "pathological"}},
		{"T7", Table7, []string{"T7.", "online first"}},
		{"T8", Table8, []string{"T8.", "conservative", "liberal"}},
		{"T9", Table9, []string{"T9.", "lockset"}},
		{"T10", Table10, []string{"T10.", "corpus-60", "large-4cpu", "∞"}},
	}
	for _, tc := range tables {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.fn(&buf, quick); err != nil {
				t.Fatal(err)
			}
			for _, want := range tc.want {
				if !strings.Contains(buf.String(), want) {
					t.Fatalf("%s missing %q:\n%s", tc.name, want, buf.String())
				}
			}
		})
	}
}

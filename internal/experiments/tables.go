package experiments

import (
	"fmt"
	"io"
	"time"

	"weakrace/internal/core"
	"weakrace/internal/lockset"
	"weakrace/internal/memmodel"
	"weakrace/internal/onthefly"
	"weakrace/internal/report"
	"weakrace/internal/scp"
	"weakrace/internal/sim"
	"weakrace/internal/stats"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// Config scales the experiment tables.
type Config struct {
	// Seeds is the number of simulated executions per cell (default 20).
	Seeds int
	// GroundTruthSeeds is the number of SC samples for Theorem 4.2
	// validation (default 200).
	GroundTruthSeeds int
}

func (c Config) withDefaults() Config {
	if c.Seeds == 0 {
		c.Seeds = 20
	}
	if c.GroundTruthSeeds == 0 {
		c.GroundTruthSeeds = 200
	}
	return c
}

// throughputWorkloads are the programs used for the performance tables.
func throughputWorkloads() []*workload.Workload {
	return []*workload.Workload{
		workload.WriteBurst(4, 12, 4),
		workload.LockedCounter(4, 8, -1),
		workload.Random(workload.RandomParams{Seed: 1, CPUs: 4, Segments: 10}),
		workload.BarrierPhases(4),
	}
}

// racyWorkloads are the programs used for the accuracy tables.
func racyWorkloads() []*workload.Workload {
	return []*workload.Workload{
		workload.Figure2(),
		workload.RaceChain(4),
		workload.LockedCounter(3, 4, 1),
		workload.ProducerConsumer(4, false),
		workload.Random(workload.RandomParams{Seed: 2, CPUs: 3, Segments: 5, UnlockedFraction: 0.4}),
	}
}

// raceFreeWorkloads are the programs used for the ablation table.
func raceFreeWorkloads() []*workload.Workload {
	return []*workload.Workload{
		workload.Figure1b(),
		workload.LockedCounter(3, 3, -1),
		workload.ProducerConsumer(4, true),
	}
}

// Table1 quantifies the paper's motivation (§1, §2.2): weak models
// outperform sequential consistency because data writes retire from a
// store buffer in the background instead of stalling the processor, and
// the stall is paid only at synchronization points — per release on
// RCsc/DRF1, per synchronization operation on WO/DRF0, per write on SC.
// The metric is the makespan (largest per-processor cycle count) under
// the simulator's MemLatency cost model.
func Table1(out io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	tbl := report.NewTable(
		"T1. Weak-model performance: makespan cycles (MemLatency model; lower is better)",
		"workload", "model", "makespan", "cycles/op", "speedup vs SC")
	for _, w := range throughputWorkloads() {
		scCycles := 0.0
		for _, model := range memmodel.All {
			var makespans, perOp []float64
			for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
				r, err := sim.Run(w.Prog, sim.Config{
					Model: model, Seed: seed, InitMemory: w.InitMemory,
					RetireProb: 0.5,
				})
				if err != nil {
					return err
				}
				makespans = append(makespans, float64(r.Makespan()))
				perOp = append(perOp, float64(r.Makespan())/float64(r.Exec.NumOps()))
			}
			s := stats.Summarize(makespans)
			if model == memmodel.SC {
				scCycles = s.Mean
			}
			tbl.AddRow(w.Name, model, s.Mean, stats.Summarize(perOp).Mean,
				stats.Ratio(scCycles, s.Mean))
		}
	}
	return tbl.Render(out)
}

// Table2 quantifies §5's overhead claim for the execution-time side: the
// cost of producing the trace (event grouping + encoding) relative to the
// simulation itself.
func Table2(out io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	tbl := report.NewTable(
		"T2. Tracing overhead: simulate vs simulate+trace+encode",
		"workload", "sim ms", "sim+trace ms", "overhead %", "trace events")
	for _, w := range throughputWorkloads() {
		var simOnly, simTrace []float64
		events := 0
		for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
			cfgSim := sim.Config{Model: memmodel.WO, Seed: seed, InitMemory: w.InitMemory}
			start := time.Now()
			r, err := sim.Run(w.Prog, cfgSim)
			if err != nil {
				return err
			}
			simOnly = append(simOnly, float64(time.Since(start).Microseconds())/1000)

			start = time.Now()
			r2, err := sim.Run(w.Prog, cfgSim)
			if err != nil {
				return err
			}
			tr := trace.FromExecution(r2.Exec)
			if err := trace.Encode(io.Discard, tr); err != nil {
				return err
			}
			simTrace = append(simTrace, float64(time.Since(start).Microseconds())/1000)
			events = tr.NumEvents()
			_ = r
		}
		a, b := stats.Summarize(simOnly), stats.Summarize(simTrace)
		tbl.AddRow(w.Name, a.Mean, b.Mean, 100*(stats.Ratio(b.Mean, a.Mean)-1), events)
	}
	return tbl.Render(out)
}

// Table3 quantifies §5's overhead claim for the post-mortem side: analysis
// cost as the number of trace events grows.
func Table3(out io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	tbl := report.NewTable(
		"T3. Post-mortem analysis cost vs trace size",
		"segments", "events", "races", "analyze ms")
	for _, segments := range []int{4, 8, 16, 32} {
		w := workload.Random(workload.RandomParams{
			Seed: 5, CPUs: 4, Segments: segments, UnlockedFraction: 0.3,
		})
		var ms []float64
		events, races := 0, 0
		for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
			r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: seed})
			if err != nil {
				return err
			}
			tr := trace.FromExecution(r.Exec)
			start := time.Now()
			a, err := core.Analyze(tr, core.Options{})
			if err != nil {
				return err
			}
			ms = append(ms, float64(time.Since(start).Microseconds())/1000)
			events = tr.NumEvents()
			races = len(a.DataRaces)
		}
		tbl.AddRow(segments, events, races, stats.Summarize(ms).Mean)
	}
	return tbl.Render(out)
}

// Table4 quantifies §4.2/§5's accuracy claims: first-partition reporting
// narrows the report relative to naive all-races reporting, while every
// first partition still contains a race that occurs under SC
// (Theorem 4.2, validated against sampled SC ground truth).
func Table4(out io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	tbl := report.NewTable(
		"T4. Report accuracy: naive all-races vs first partitions (mean over racy seeds)",
		"workload", "racy seeds", "naive races", "first-part races", "partitions", "first", "Thm4.2 ok%")
	for _, w := range racyWorkloads() {
		gt, err := scp.SampleSC(w.Prog, w.InitMemory, cfg.GroundTruthSeeds)
		if err != nil {
			return err
		}
		var naive, firstRaces, parts, firsts []float64
		checked, ok42 := 0, 0
		racySeeds := 0
		for seed := int64(0); seed < int64(cfg.Seeds)*3; seed++ {
			r, a, err := runAndAnalyze(w, sim.Config{Model: memmodel.WO, Seed: seed, RetireProb: 0.15})
			if err != nil {
				return err
			}
			if a.RaceFree() {
				continue
			}
			racySeeds++
			naiveCount := 0
			for _, ri := range a.DataRaces {
				naiveCount += len(a.LowerLevel(a.Races[ri]))
			}
			fpCount := 0
			for _, pi := range a.FirstPartitions {
				for _, ri := range a.Partitions[pi].Races {
					fpCount += len(a.LowerLevel(a.Races[ri]))
				}
			}
			naive = append(naive, float64(naiveCount))
			firstRaces = append(firstRaces, float64(fpCount))
			parts = append(parts, float64(len(a.Partitions)))
			firsts = append(firsts, float64(len(a.FirstPartitions)))
			rep := scp.CheckCondition34(a, r.Exec, gt, 1<<18)
			for _, has := range rep.FirstPartitionHasSCRace {
				checked++
				if has {
					ok42++
				}
			}
		}
		tbl.AddRow(w.Name, racySeeds,
			stats.Summarize(naive).Mean, stats.Summarize(firstRaces).Mean,
			stats.Summarize(parts).Mean, stats.Summarize(firsts).Mean,
			100*stats.Ratio(float64(ok42), float64(checked)))
	}
	return tbl.Render(out)
}

// Table5 quantifies §5's on-the-fly comparison: bounded access histories
// trade memory for missed races; unbounded histories match post-mortem
// detection at higher run-time cost.
func Table5(out io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	tbl := report.NewTable(
		"T5. On-the-fly detection vs history bound (mean over racy seeds)",
		"workload", "history", "otf races", "post-mortem races", "missed %", "comparisons")
	for _, w := range racyWorkloads() {
		for _, limit := range []int{0, 4, 2, 1} {
			var otfRaces, pmRaces, missedPct, comparisons []float64
			for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
				r, a, err := runAndAnalyze(w, sim.Config{Model: memmodel.WO, Seed: seed, RetireProb: 0.15})
				if err != nil {
					return err
				}
				pm := map[core.LowerLevelRace]bool{}
				for _, ri := range a.DataRaces {
					for _, ll := range a.LowerLevel(a.Races[ri]) {
						pm[ll.Canonical()] = true
					}
				}
				if len(pm) == 0 {
					continue
				}
				res := onthefly.Detect(r.Exec, onthefly.Options{HistoryLimit: limit})
				missed := 0
				for ll := range pm {
					if !res.Races[ll] {
						missed++
					}
				}
				otfRaces = append(otfRaces, float64(res.RaceCount()))
				pmRaces = append(pmRaces, float64(len(pm)))
				missedPct = append(missedPct, 100*float64(missed)/float64(len(pm)))
				comparisons = append(comparisons, float64(res.Comparisons))
			}
			hist := "unbounded"
			if limit > 0 {
				hist = fmt.Sprintf("%d", limit)
			}
			tbl.AddRow(w.Name, hist,
				stats.Summarize(otfRaces).Mean, stats.Summarize(pmRaces).Mean,
				stats.Summarize(missedPct).Mean, stats.Summarize(comparisons).Mean)
		}
	}
	return tbl.Render(out)
}

// Table7 evaluates the paper's §6 future work, implemented in
// internal/onthefly: locating the FIRST races on the fly via taint
// epochs. Columns compare the online classification with the post-mortem
// first partitions (the reference) at operation granularity.
func Table7(out io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	tbl := report.NewTable(
		"T7. §6 future work: on-the-fly first-race classification vs post-mortem first partitions",
		"workload", "racy seeds", "online first", "online downstream", "pm first", "pm total", "first⊆pm-first %")
	for _, w := range racyWorkloads() {
		var onFirst, onDown, pmFirstN, pmTotalN []float64
		subset, firstTotal := 0, 0
		racySeeds := 0
		for seed := int64(0); seed < int64(cfg.Seeds)*2; seed++ {
			r, a, err := runAndAnalyze(w, sim.Config{Model: memmodel.WO, Seed: seed, RetireProb: 0.15})
			if err != nil {
				return err
			}
			if a.RaceFree() {
				continue
			}
			racySeeds++
			pmFirst := map[core.LowerLevelRace]bool{}
			pmAll := map[core.LowerLevelRace]bool{}
			for _, ri := range a.DataRaces {
				for _, ll := range a.LowerLevel(a.Races[ri]) {
					pmAll[ll.Canonical()] = true
				}
			}
			for _, pi := range a.FirstPartitions {
				for _, ri := range a.Partitions[pi].Races {
					for _, ll := range a.LowerLevel(a.Races[ri]) {
						pmFirst[ll.Canonical()] = true
					}
				}
			}
			res := onthefly.DetectFirstRaces(r.Exec, onthefly.Options{})
			onFirst = append(onFirst, float64(len(res.First)))
			onDown = append(onDown, float64(len(res.Downstream)))
			pmFirstN = append(pmFirstN, float64(len(pmFirst)))
			pmTotalN = append(pmTotalN, float64(len(pmAll)))
			for race := range res.First {
				firstTotal++
				if pmFirst[race] {
					subset++
				}
			}
		}
		tbl.AddRow(w.Name, racySeeds,
			stats.Summarize(onFirst).Mean, stats.Summarize(onDown).Mean,
			stats.Summarize(pmFirstN).Mean, stats.Summarize(pmTotalN).Mean,
			100*stats.Ratio(float64(subset), float64(firstTotal)))
	}
	return tbl.Render(out)
}

// Table8 quantifies the §2.1 pairing classification: the paper's
// conservative rule (a Test&Set's write is not a release) versus the
// liberal rule that is sound on WO/DRF0-style hardware (every
// synchronization operation drains the buffer). Programs that publish
// through a Test&Set write are reported racy only under the conservative
// rule; ordinary lock usage is unaffected.
func Table8(out io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	tbl := report.NewTable(
		"T8. Pairing-policy ablation: lower-level data races reported (mean per execution)",
		"workload", "conservative", "liberal", "note")
	cases := []struct {
		w    *workload.Workload
		note string
	}{
		{workload.TasPublish(3), "publishes via a Test&Set write"},
		{workload.LockedCounter(3, 4, -1), "ordinary locking: both clean"},
		{workload.LockedCounter(3, 4, 1), "missing lock: both report it"},
		{workload.Figure1a(), "no sync at all: both report it"},
	}
	for _, c := range cases {
		var consN, libN []float64
		for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
			r, err := sim.Run(c.w.Prog, sim.Config{
				Model: memmodel.WO, Seed: seed, InitMemory: c.w.InitMemory,
			})
			if err != nil {
				return err
			}
			tr := trace.FromExecution(r.Exec)
			count := func(p memmodel.PairingPolicy) (float64, error) {
				a, err := core.Analyze(tr, core.Options{Pairing: p})
				if err != nil {
					return 0, err
				}
				n := 0
				for _, ri := range a.DataRaces {
					n += len(a.LowerLevel(a.Races[ri]))
				}
				return float64(n), nil
			}
			cn, err := count(memmodel.ConservativePairing)
			if err != nil {
				return err
			}
			ln, err := count(memmodel.LiberalPairing)
			if err != nil {
				return err
			}
			consN = append(consN, cn)
			libN = append(libN, ln)
		}
		tbl.AddRow(c.w.Name, stats.Summarize(consN).Mean, stats.Summarize(libN).Mean, c.note)
	}
	return tbl.Render(out)
}

// Table9 contrasts the paper's happens-before approach with the
// Eraser-style lockset discipline across many seeds: lockset flags the
// locking bug on every schedule (even those where the accesses happened
// to be ordered) but false-positives on lock-free flag synchronization,
// which happens-before handles exactly.
func Table9(out io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	tbl := report.NewTable(
		"T9. Happens-before (the paper) vs lockset discipline: seeds flagged (%)",
		"workload", "hb racy %", "lockset flagged %", "note")
	cases := []struct {
		w    *workload.Workload
		note string
	}{
		{workload.LockedCounter(3, 3, -1), "clean locking: neither fires"},
		{workload.LockedCounter(3, 3, 1), "missing lock: lockset schedule-insensitive"},
		{workload.FlagHandoff(3), "flag handoff: lockset false positive"},
		{workload.Figure1a(), "no sync: both fire (lockset only when a read precedes the write)"},
	}
	for _, c := range cases {
		hb, ls := 0, 0
		for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
			r, a, err := runAndAnalyze(c.w, sim.Config{Model: memmodel.WO, Seed: seed})
			if err != nil {
				return err
			}
			if !a.RaceFree() {
				hb++
			}
			if len(lockset.Check(r.Exec).Findings) > 0 {
				ls++
			}
		}
		tbl.AddRow(c.w.Name,
			100*stats.Ratio(float64(hb), float64(cfg.Seeds)),
			100*stats.Ratio(float64(ls), float64(cfg.Seeds)),
			c.note)
	}
	return tbl.Render(out)
}

// Table6 is the Theorem 3.5 ablation: on honest weak hardware
// (Condition 3.4 holds by construction) a race-free verdict certifies
// sequential consistency; on pathological hardware (value speculation)
// that guarantee fails — race-free executions stop being SC.
func Table6(out io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	tbl := report.NewTable(
		"T6. Condition 3.4 ablation: race-free verdict vs actual sequential consistency",
		"workload", "hardware", "race-free %", "guarantee violations %", "undecided")
	for _, w := range raceFreeWorkloads() {
		for _, patho := range []bool{false, true} {
			raceFree, violations, undecided := 0, 0, 0
			for seed := int64(0); seed < int64(cfg.Seeds); seed++ {
				r, a, err := runAndAnalyze(w, sim.Config{
					Model: memmodel.WO, Seed: seed,
					Pathological: patho, PathologicalProb: 0.2,
				})
				if err != nil {
					return err
				}
				if !a.RaceFree() {
					continue
				}
				raceFree++
				sc, decided := scp.VerifySC(r.Exec, 1<<19)
				if !decided {
					undecided++
					continue
				}
				if !sc {
					violations++
				}
			}
			hw := "honest"
			if patho {
				hw = "pathological"
			}
			tbl.AddRow(w.Name, hw,
				100*stats.Ratio(float64(raceFree), float64(cfg.Seeds)),
				100*stats.Ratio(float64(violations), float64(raceFree)),
				undecided)
		}
	}
	return tbl.Render(out)
}

// All runs every figure and table in order.
func All(out io.Writer, cfg Config) error {
	if err := Figure1a(out); err != nil {
		return err
	}
	if err := Figure1b(out); err != nil {
		return err
	}
	if _, err := Figure2(out); err != nil {
		return err
	}
	if err := Figure3(out); err != nil {
		return err
	}
	for i, table := range []func(io.Writer, Config) error{
		Table1, Table2, Table3, Table4, Table5, Table6, Table7, Table8, Table9, Table10,
	} {
		if err := table(out, cfg); err != nil {
			return fmt.Errorf("table %d: %w", i+1, err)
		}
		fmt.Fprintln(out)
	}
	return nil
}

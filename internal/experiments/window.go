package experiments

import (
	"fmt"
	"io"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/onthefly"
	"weakrace/internal/report"
	"weakrace/internal/sim"
	"weakrace/internal/stats"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// windowStudyWindows are the retirement windows the §5 bounded-buffer
// study sweeps; 0 is the exact, unbounded detector.
var windowStudyWindows = []int{64, 256, 1024, 0}

// largeWindowCorpus generates executions long enough for the windows to
// actually bite: ~500-800 events each, racy, four processors.
func largeWindowCorpus(n int) []workload.CorpusEntry {
	out := make([]workload.CorpusEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, workload.CorpusEntry{
			Workload: workload.Random(workload.RandomParams{
				Seed:             int64(1000 + i),
				CPUs:             4,
				Segments:         24 + i%6,
				OpsPerSegment:    5 + i%2,
				Locks:            2,
				UnlockedFraction: 0.3,
				SharedFraction:   0.6,
			}),
			Model: memmodel.WO,
			Seed:  int64(i),
		})
	}
	return out
}

// Table10 quantifies wrserve's memory/accuracy trade (§5's bounded
// buffer made operational): the windowed incremental detector — the
// same onthefly.Detector every wrserve stream runs, which the stream
// tests pin byte-identical to this in-process path — against the
// post-mortem oracle, across retirement windows. "missed %" counts
// oracle races absent from the windowed result; window ∞ must miss
// nothing. "pair-miss bound" is the detector's conservative count of
// comparisons the window may have cost it, and "peak live" the largest
// number of access-history entries held at once — the memory actually
// bounded.
func Table10(out io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	tbl := report.NewTable(
		"T10. Windowed detection vs post-mortem oracle (wrserve's window sweep)",
		"corpus", "window", "races", "oracle races", "missed %", "retired/trace", "pair-miss bound", "peak live")

	corpora := []struct {
		name    string
		entries []workload.CorpusEntry
	}{
		{"corpus-60", workload.Corpus(60, 1)},
		{"large-4cpu", largeWindowCorpus(12)},
	}
	for _, corpus := range corpora {
		type sample struct {
			exec   *sim.Execution
			oracle map[core.LowerLevelRace]bool
		}
		samples := make([]sample, 0, len(corpus.entries))
		for _, c := range corpus.entries {
			r, err := sim.Run(c.Workload.Prog, sim.Config{Model: c.Model, Seed: c.Seed, InitMemory: c.Workload.InitMemory})
			if err != nil {
				return err
			}
			a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
			if err != nil {
				return err
			}
			pm := map[core.LowerLevelRace]bool{}
			for _, ri := range a.DataRaces {
				for _, ll := range a.LowerLevel(a.Races[ri]) {
					pm[ll.Canonical()] = true
				}
			}
			samples = append(samples, sample{r.Exec, pm})
		}

		for _, window := range windowStudyWindows {
			var races, oracle, missedPct, retired, pairMiss, peak []float64
			for _, s := range samples {
				res := onthefly.Detect(s.exec, onthefly.Options{Window: window})
				races = append(races, float64(res.RaceCount()))
				oracle = append(oracle, float64(len(s.oracle)))
				if len(s.oracle) > 0 {
					missed := 0
					for ll := range s.oracle {
						if !res.Races[ll] {
							missed++
						}
					}
					missedPct = append(missedPct, 100*float64(missed)/float64(len(s.oracle)))
				}
				retired = append(retired, float64(res.Retired))
				pairMiss = append(pairMiss, float64(res.WindowPairMisses))
				peak = append(peak, float64(res.PeakLiveAccesses))
			}
			label := "∞"
			if window > 0 {
				label = fmt.Sprintf("%d", window)
			}
			if window == 0 && stats.Summarize(missedPct).Mean != 0 {
				return fmt.Errorf("table10: unbounded window missed oracle races on %s", corpus.name)
			}
			tbl.AddRow(corpus.name, label,
				stats.Summarize(races).Mean, stats.Summarize(oracle).Mean,
				stats.Summarize(missedPct).Mean, stats.Summarize(retired).Mean,
				stats.Summarize(pairMiss).Mean, stats.Summarize(peak).Mean)
		}
	}
	return tbl.Render(out)
}

package onthefly

import (
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

func runW(t *testing.T, w *workload.Workload, model memmodel.Model, seed int64) *sim.Execution {
	t.Helper()
	r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed, InitMemory: w.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	return r.Exec
}

func TestFigure1aDetected(t *testing.T) {
	e := runW(t, workload.Figure1a(), memmodel.SC, 1)
	res := Detect(e, Options{})
	if res.RaceCount() != 2 {
		t.Fatalf("races = %d, want 2: %v", res.RaceCount(), res.Races)
	}
	for r := range res.Races {
		if r.Loc != workload.Fig1X && r.Loc != workload.Fig1Y {
			t.Fatalf("unexpected race location: %v", r)
		}
	}
}

func TestFigure1bClean(t *testing.T) {
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 20; seed++ {
			e := runW(t, workload.Figure1b(), model, seed)
			res := Detect(e, Options{})
			if res.RaceCount() != 0 {
				t.Fatalf("%v seed %d: races = %v", model, seed, res.Races)
			}
		}
	}
}

func TestRaceFreeWorkloadsClean(t *testing.T) {
	workloads := []*workload.Workload{
		workload.LockedCounter(3, 3, -1),
		workload.ProducerConsumer(4, true),
		workload.BarrierPhases(2),
		workload.Random(workload.RandomParams{Seed: 3}),
	}
	for _, w := range workloads {
		for _, model := range []memmodel.Model{memmodel.SC, memmodel.WO, memmodel.RCsc} {
			for seed := int64(0); seed < 5; seed++ {
				e := runW(t, w, model, seed)
				res := Detect(e, Options{})
				if res.RaceCount() != 0 {
					t.Fatalf("%s %v seed %d: races = %v", w.Name, model, seed, res.Races)
				}
			}
		}
	}
}

// Unbounded on-the-fly detection agrees with the post-mortem detector's
// lower-level expansion on racy workloads.
func TestAgreesWithPostMortem(t *testing.T) {
	workloads := []*workload.Workload{
		workload.Figure1a(),
		workload.Figure2(),
		workload.ProducerConsumer(3, false),
		workload.LockedCounter(2, 2, 0),
	}
	for _, w := range workloads {
		for seed := int64(0); seed < 10; seed++ {
			e := runW(t, w, memmodel.WO, seed)
			otf := Detect(e, Options{})
			a, err := core.Analyze(trace.FromExecution(e), core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			pm := map[core.LowerLevelRace]bool{}
			for _, ri := range a.DataRaces {
				for _, ll := range a.LowerLevel(a.Races[ri]) {
					pm[ll.Canonical()] = true
				}
			}
			for r := range pm {
				if !otf.Races[r] {
					t.Fatalf("%s seed %d: post-mortem race missed on the fly: %v", w.Name, seed, r)
				}
			}
			for r := range otf.Races {
				if !pm[r] {
					t.Fatalf("%s seed %d: on-the-fly race not in post-mortem set: %v", w.Name, seed, r)
				}
			}
		}
	}
}

// Bounded history loses races: three unsynchronized accesses to one
// location, history limit 1 — the oldest access is evicted before the
// last accessor arrives.
func TestBoundedHistoryLosesRaces(t *testing.T) {
	b := program.NewBuilder("w-w-r", 1, 1)
	b.Thread("P1").Write(program.At(0), program.Imm(1))
	b.Thread("P2").Write(program.At(0), program.Imm(2))
	b.Thread("P3").Read(0, program.At(0))
	p := b.MustBuild()
	// Find a seed where the ops execute in CPU order P1, P2, P3.
	for seed := int64(0); seed < 200; seed++ {
		r, err := sim.Run(p, sim.Config{Model: memmodel.SC, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r.Exec.Ops[0].CPU != 0 || r.Exec.Ops[1].CPU != 1 || r.Exec.Ops[2].CPU != 2 {
			continue
		}
		full := Detect(r.Exec, Options{})
		if full.RaceCount() != 3 {
			t.Fatalf("unbounded races = %d, want 3", full.RaceCount())
		}
		bounded := Detect(r.Exec, Options{HistoryLimit: 1})
		if bounded.RaceCount() != 2 {
			t.Fatalf("bounded races = %d, want 2 (one lost to eviction)", bounded.RaceCount())
		}
		if bounded.Evictions == 0 {
			t.Fatal("bounded run reported no evictions")
		}
		return
	}
	t.Skip("no seed produced the P1,P2,P3 order")
}

func TestPairingPolicyMatters(t *testing.T) {
	// P1 publishes x with a Test&Set write; P2 acquires it. Conservative
	// pairing does not transfer the clock, liberal does.
	b := program.NewBuilder("ts-publish", 2, 2)
	b.Thread("P1").
		Write(program.At(0), program.Imm(1)).
		TestAndSet(0, program.At(1))
	b.Thread("P2").
		Label("spin").
		SyncRead(0, program.At(1)).
		BranchZero(0, "spin").
		Read(1, program.At(0))
	p := b.MustBuild()
	r, err := sim.Run(p, sim.Config{Model: memmodel.WO, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cons := Detect(r.Exec, Options{Pairing: memmodel.ConservativePairing})
	if cons.RaceCount() == 0 {
		t.Fatal("conservative pairing should report the x race")
	}
	lib := Detect(r.Exec, Options{Pairing: memmodel.LiberalPairing})
	if lib.RaceCount() != 0 {
		t.Fatalf("liberal pairing should order the x accesses: %v", lib.Races)
	}
}

func TestSyncRacesNotReported(t *testing.T) {
	// Competing Test&Sets race on the lock location, but those are
	// synchronization races: counted, never reported.
	e := runW(t, workload.LockedCounter(3, 3, -1), memmodel.WO, 2)
	res := Detect(e, Options{})
	if res.RaceCount() != 0 {
		t.Fatalf("reported races = %v", res.Races)
	}
	if res.SyncRaces == 0 {
		t.Fatal("no sync races counted despite lock contention")
	}
}

// TestSyncRaceCountDeduped pins SyncRaces on a workload with exactly two
// static sync races. P2's counted loop executes each sync write twice from
// the same PC, so every cross-CPU pair is compared twice — a
// per-comparison tally would report 4; the static-identity count is 2.
func TestSyncRaceCountDeduped(t *testing.T) {
	b := program.NewBuilder("two-sync-races", 2, 1)
	b.Thread("P1").
		Unset(program.At(0)).
		Unset(program.At(1))
	b.Thread("P2").
		Const(0, 2).
		Label("loop").
		SyncWrite(program.At(0), program.Imm(1)).
		SyncWrite(program.At(1), program.Imm(1)).
		AddImm(0, 0, -1).
		BranchNotZero(0, "loop")
	p := b.MustBuild()
	for seed := int64(0); seed < 10; seed++ {
		r, err := sim.Run(p, sim.Config{Model: memmodel.WO, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res := Detect(r.Exec, Options{})
		if res.SyncRaces != 2 {
			t.Fatalf("seed %d: SyncRaces = %d, want 2", seed, res.SyncRaces)
		}
		if res.RaceCount() != 0 {
			t.Fatalf("seed %d: sync-only workload reported data races: %v", seed, res.Races)
		}
	}
}

func TestCostCounters(t *testing.T) {
	e := runW(t, workload.Figure1a(), memmodel.SC, 1)
	res := Detect(e, Options{})
	if res.OpsProcessed != len(e.Ops) {
		t.Fatalf("OpsProcessed = %d, want %d", res.OpsProcessed, len(e.Ops))
	}
	if res.Comparisons == 0 {
		t.Fatal("no comparisons counted")
	}
}

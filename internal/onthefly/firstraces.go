package onthefly

// This file implements the paper's stated future work (§6): "investigating
// how our method might be employed on-the-fly to locate the first data
// races."
//
// The post-mortem method partitions races by the strongly connected
// components of the augmented graph and reports the partitions not
// affected by any other (§4.2). Online, the full graph is unavailable, so
// we approximate the affects relation (Definition 3.3) with taint epochs:
// when a race is detected, both racing accesses become taint points; any
// later operation whose vector clock covers a taint point is affected
// (it is hb1-after a racing access), and races between affected accesses
// are classified as downstream, not first.
//
// The approximation is conservative in the right direction: an access
// reachable from a race through hb1 is always caught; mutual entanglement
// (two races in one SCC) appears as whichever race was detected first
// being "first" and the other downstream when one endpoint is hb1-after —
// and as both being first when they are genuinely incomparable. On
// executions whose race partitions form chains (the paper's Figure 2
// artifact pattern), the online classification matches the post-mortem
// first partitions exactly; the tests and experiment T7 quantify this.

import (
	"weakrace/internal/core"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/vclock"
)

// FirstRaceResult is the output of the online first-race extension.
type FirstRaceResult struct {
	// First holds races classified as first: neither racing access was
	// hb1-after any earlier-detected race.
	First map[core.LowerLevelRace]bool
	// Downstream holds races classified as affected by earlier races.
	Downstream map[core.LowerLevelRace]bool
	// Taints counts taint points planted.
	Taints int
}

// DetectFirstRaces runs the on-the-fly detector with the online
// first-race classification. opts.HistoryLimit and opts.Pairing behave as
// in Detect.
func DetectFirstRaces(e *sim.Execution, opts Options) *FirstRaceResult {
	defer telemetry.Default().StartSpan("onthefly.firstraces").End()
	res := &FirstRaceResult{
		First:      map[core.LowerLevelRace]bool{},
		Downstream: map[core.LowerLevelRace]bool{},
	}
	vcs := make([]vclock.VC, e.NumCPUs)
	for c := range vcs {
		vcs[c] = vclock.New(e.NumCPUs)
	}
	releaseVC := map[int]vclock.VC{}
	reads := make([]historyT, e.NumLocations)
	writes := make([]historyT, e.NumLocations)
	for i := range reads {
		reads[i].limit = opts.HistoryLimit
		writes[i].limit = opts.HistoryLimit
	}
	var taints []vclock.Epoch

	affected := func(c int) bool {
		for _, t := range taints {
			if t.Covered(vcs[c]) {
				return true
			}
		}
		return false
	}

	for _, op := range e.Ops {
		c := op.CPU
		if op.Kind == sim.OpAcquireRead && op.ObservedWrite >= 0 {
			if vc, ok := releaseVC[op.ObservedWrite]; ok {
				vcs[c].Join(vc)
			}
		}

		curEpoch := vclock.Epoch{P: c, C: vcs[c].Get(c) + 1}
		curAffected := affected(c)
		sync := op.Kind.IsSync()

		check := func(h *historyT) {
			for _, ent := range h.entries {
				if ent.epoch.P == c || ent.epoch.Covered(vcs[c]) {
					continue
				}
				if ent.sync && sync {
					continue
				}
				race := core.LowerLevelRace{
					Loc:     op.Loc,
					X:       sim.StaticOp{CPU: ent.epoch.P, PC: ent.pc, Loc: op.Loc},
					Y:       sim.StaticOp{CPU: c, PC: op.PC, Loc: op.Loc},
					XWrites: ent.write, YWrites: op.Kind.IsWrite(),
				}.Canonical()
				if ent.affected || curAffected {
					res.Downstream[race] = true
				} else {
					res.First[race] = true
				}
				// Both endpoints become taint points for later races.
				taints = append(taints, ent.epoch, curEpoch)
				res.Taints += 2
			}
		}
		if op.Kind.IsRead() {
			check(&writes[op.Loc])
		} else {
			check(&writes[op.Loc])
			check(&reads[op.Loc])
		}

		ent := taintEntry{
			epoch:    curEpoch,
			pc:       op.PC,
			write:    op.Kind.IsWrite(),
			sync:     sync,
			affected: curAffected,
		}
		if op.Kind.IsRead() {
			reads[op.Loc].add(ent)
		} else {
			writes[op.Loc].add(ent)
		}

		vcs[c].Tick(c)
		if op.Kind.IsWrite() && sync && opts.Pairing.CanPair(op.Kind.Role()) {
			releaseVC[op.ID] = vcs[c].Clone()
		}
	}
	if reg := telemetry.Default(); reg.Enabled() {
		reg.Counter("onthefly.firstraces.first").Add(int64(len(res.First)))
		reg.Counter("onthefly.firstraces.downstream").Add(int64(len(res.Downstream)))
		reg.Counter("onthefly.firstraces.taints").Add(int64(res.Taints))
	}
	return res
}

// taintEntry extends a history entry with its affected flag at record
// time.
type taintEntry struct {
	epoch    vclock.Epoch
	pc       int
	write    bool
	sync     bool
	affected bool
}

// historyT is the bounded FIFO used by the first-race extension.
type historyT struct {
	entries []taintEntry
	limit   int
}

func (h *historyT) add(e taintEntry) {
	if h.limit > 0 && len(h.entries) >= h.limit {
		copy(h.entries, h.entries[1:])
		h.entries[len(h.entries)-1] = e
		return
	}
	h.entries = append(h.entries, e)
}

package onthefly

import (
	"math/rand"
	"reflect"
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/workload"
)

// Feeding operations one at a time must be byte-identical to the batch
// entry point: same races, same sync races, same cost counters.
func TestFeedMatchesDetect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		w := workload.Random(workload.RandomParams{
			Seed: rng.Int63(), CPUs: 2 + rng.Intn(3), Segments: 2 + rng.Intn(6),
			UnlockedFraction: 0.4, SharedFraction: 0.7,
		})
		e := runW(t, w, memmodel.WO, rng.Int63n(1000))
		batch := Detect(e, Options{})

		d := NewDetector(e.NumCPUs, e.NumLocations, Options{})
		for _, op := range e.Ops {
			d.Feed(op)
		}
		inc := d.Result()
		if !reflect.DeepEqual(batch.Races, inc.Races) {
			t.Fatalf("trial %d: Feed races differ from Detect:\n batch %v\n feed  %v", trial, batch.Races, inc.Races)
		}
		if batch.SyncRaces != inc.SyncRaces || batch.OpsProcessed != inc.OpsProcessed ||
			batch.Comparisons != inc.Comparisons || batch.Evictions != inc.Evictions {
			t.Fatalf("trial %d: counters differ: batch %+v feed %+v", trial, batch, inc)
		}
	}
}

// The releaseVC map must not grow with trace length: Detect's prepass
// retires each published release clock right after its last observing
// acquire, so the live set tracks lock-handoff depth, not history. This
// pins the steady-state footprint of the satellite-1 bugfix.
func TestReleaseVCSteadyState(t *testing.T) {
	// Lots of lock traffic: race-free program where every segment takes a
	// lock, so pairable releases are plentiful.
	w := workload.Random(workload.RandomParams{
		Seed: 5, CPUs: 4, Segments: 40, OpsPerSegment: 4, Locks: 2,
	})
	e := runW(t, w, memmodel.WO, 3)

	releases := 0
	for _, op := range e.Ops {
		if op.Kind.IsWrite() && op.Kind.IsSync() && memmodel.PairingPolicy(0).CanPair(op.Kind.Role()) {
			releases++
		}
	}
	if releases < 100 {
		t.Fatalf("workload too small to pin steady state: %d pairable releases", releases)
	}

	res := Detect(e, Options{})
	if res.PeakLiveReleases >= releases/4 {
		t.Fatalf("releaseVC no longer bounded: peak %d live clocks for %d published releases",
			res.PeakLiveReleases, releases)
	}

	// Incremental view: at end of stream every published release has met
	// its last observer and been retired.
	d := NewDetector(e.NumCPUs, e.NumLocations, Options{})
	lastUse := map[int]int{}
	for _, op := range e.Ops {
		if op.Kind == sim.OpAcquireRead && op.ObservedWrite >= 0 {
			lastUse[op.ObservedWrite] = op.ID
		}
	}
	d.releaseLastUse = lastUse
	for _, op := range e.Ops {
		d.Feed(op)
	}
	if d.LiveReleases() != 0 {
		t.Fatalf("at stream end %d release clocks still live, want 0", d.LiveReleases())
	}
}

// Online (no future knowledge) the window discipline bounds both the
// release map and the access histories.
func TestWindowBoundsLiveState(t *testing.T) {
	const window = 32
	w := workload.Random(workload.RandomParams{
		Seed: 11, CPUs: 4, Segments: 40, OpsPerSegment: 4, Locks: 2, UnlockedFraction: 0.3,
	})
	e := runW(t, w, memmodel.WO, 9)
	if len(e.Ops) < 4*window {
		t.Fatalf("workload too small: %d ops", len(e.Ops))
	}
	d := NewDetector(e.NumCPUs, e.NumLocations, Options{Window: window})
	d.SetSource(e.ProgramName, e.Model, e.Seed)
	for _, op := range e.Ops {
		d.Feed(op)
		// Live state holds at most the window plus the op just fed.
		if d.LiveAccesses() > window+1 {
			t.Fatalf("after op %d: %d live accesses exceed window %d", op.ID, d.LiveAccesses(), window)
		}
		if d.LiveReleases() > window+1 {
			t.Fatalf("after op %d: %d live releases exceed window %d", op.ID, d.LiveReleases(), window)
		}
	}
	res := d.Result()
	if res.Retired == 0 {
		t.Fatal("expected window retirement on a long stream")
	}
	if res.Replay == nil {
		t.Fatal("retirement must record a replay seed")
	}
	if res.Replay.Program != e.ProgramName || res.Replay.Seed != e.Seed || res.Replay.Model != e.Model {
		t.Fatalf("replay seed misidentifies the execution: %+v", res.Replay)
	}
	if res.Replay.Retired != res.Retired {
		t.Fatalf("replay seed retired count %d != result %d", res.Replay.Retired, res.Retired)
	}
	if res.Replay.FirstOp < 0 || res.Replay.LastOp < res.Replay.FirstOp {
		t.Fatalf("replay seed op span invalid: %+v", res.Replay)
	}
}

// A window at least as long as the stream retires nothing and is exact:
// identical to the unbounded detector.
func TestWindowInfiniteIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		w := workload.Random(workload.RandomParams{
			Seed: rng.Int63(), UnlockedFraction: 0.5, SharedFraction: 0.8,
		})
		e := runW(t, w, memmodel.WO, rng.Int63n(1000))
		exact := Detect(e, Options{})
		d := NewDetector(e.NumCPUs, e.NumLocations, Options{Window: len(e.Ops) + 1})
		for _, op := range e.Ops {
			d.Feed(op)
		}
		res := d.Result()
		if !reflect.DeepEqual(exact.Races, res.Races) {
			t.Fatalf("trial %d: windowed(∞) races differ from unbounded", trial)
		}
		if res.Retired != 0 || res.Replay != nil {
			t.Fatalf("trial %d: window ≥ stream retired %d entries", trial, res.Retired)
		}
	}
}

// Small windows lose races monotonically-ish: the tiny window must find
// no more than the unbounded detector, and on a racy workload strictly
// fewer comparisons.
func TestWindowLosesRaces(t *testing.T) {
	w := workload.Random(workload.RandomParams{
		Seed: 21, CPUs: 4, Segments: 30, OpsPerSegment: 5, UnlockedFraction: 0.6, SharedFraction: 0.9,
	})
	e := runW(t, w, memmodel.WO, 2)
	exact := Detect(e, Options{})
	if exact.RaceCount() == 0 {
		t.Fatal("workload not racy enough for the experiment")
	}
	d := NewDetector(e.NumCPUs, e.NumLocations, Options{Window: 8})
	for _, op := range e.Ops {
		d.Feed(op)
	}
	small := d.Result()
	for ll := range small.Races {
		if !exact.Races[ll] {
			t.Fatalf("windowed detector invented a race: %v", ll)
		}
	}
	if small.Comparisons >= exact.Comparisons {
		t.Fatalf("window 8 did %d comparisons, unbounded %d — retirement not saving work",
			small.Comparisons, exact.Comparisons)
	}
}

// Detect must keep working when Ops arrive out of issue order (the
// sortedness fast path's fallback), producing the same result.
func TestDetectUnsortedOps(t *testing.T) {
	w := workload.Random(workload.RandomParams{Seed: 31, UnlockedFraction: 0.5})
	e := runW(t, w, memmodel.WO, 4)
	want := Detect(e, Options{})

	shuffled := *e
	shuffled.Ops = make([]sim.MemOp, len(e.Ops))
	copy(shuffled.Ops, e.Ops)
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(shuffled.Ops), func(i, j int) {
		shuffled.Ops[i], shuffled.Ops[j] = shuffled.Ops[j], shuffled.Ops[i]
	})
	got := Detect(&shuffled, Options{})
	if !reflect.DeepEqual(want.Races, got.Races) || want.SyncRaces != got.SyncRaces {
		t.Fatal("shuffled Ops changed the result: sort fallback broken")
	}
	// The fallback must sort a copy, not the caller's slice.
	stillShuffled := false
	for i, op := range shuffled.Ops {
		if op.ID != i {
			stillShuffled = true
			break
		}
	}
	if !stillShuffled {
		t.Fatal("Detect sorted the caller's Ops slice in place")
	}
}

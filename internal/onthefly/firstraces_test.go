package onthefly

import (
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// postMortemFirstSet returns the lower-level races of the first
// partitions (and the full data-race set) from the post-mortem detector.
func postMortemFirstSet(t *testing.T, e *sim.Execution) (first, all map[core.LowerLevelRace]bool) {
	t.Helper()
	a, err := core.Analyze(trace.FromExecution(e), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first = map[core.LowerLevelRace]bool{}
	all = map[core.LowerLevelRace]bool{}
	for _, ri := range a.DataRaces {
		for _, ll := range a.LowerLevel(a.Races[ri]) {
			all[ll.Canonical()] = true
		}
	}
	for _, pi := range a.FirstPartitions {
		for _, ri := range a.Partitions[pi].Races {
			for _, ll := range a.LowerLevel(a.Races[ri]) {
				first[ll.Canonical()] = true
			}
		}
	}
	return first, all
}

// On the race-chain workload the online classification must match the
// post-mortem first partitions exactly: stage 0 first, the rest
// downstream.
func TestFirstRacesOnChain(t *testing.T) {
	w := workload.RaceChain(4)
	for seed := int64(0); seed < 20; seed++ {
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res := DetectFirstRaces(r.Exec, Options{})
		pmFirst, pmAll := postMortemFirstSet(t, r.Exec)
		if len(res.First) != len(pmFirst) {
			t.Fatalf("seed %d: online first = %v, post-mortem first = %v", seed, res.First, pmFirst)
		}
		for race := range res.First {
			if !pmFirst[race] {
				t.Fatalf("seed %d: online first race not in post-mortem first partition: %v", seed, race)
			}
		}
		if got := len(res.First) + len(res.Downstream); got != len(pmAll) {
			t.Fatalf("seed %d: online classified %d races, post-mortem found %d", seed, got, len(pmAll))
		}
	}
}

// The Figure 2b anomaly: the queue races are first, the region races
// downstream — matching the paper's Figure 3 partitioning, online.
func TestFirstRacesOnFigure2(t *testing.T) {
	r, err := workload.RunFig2Stale(memmodel.WO, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := DetectFirstRaces(r.Exec, Options{})
	if len(res.First) == 0 || len(res.Downstream) == 0 {
		t.Fatalf("first=%v downstream=%v", res.First, res.Downstream)
	}
	// Every online first race is a queue race. (The converse need not
	// hold: at operation granularity the Q race is hb1-after the QEmpty
	// race on the same processors, so Definition 3.3 makes it downstream;
	// the event-level post-mortem detector groups the two into one
	// first-partition race.)
	for race := range res.First {
		if race.Loc != workload.Fig2Q && race.Loc != workload.Fig2QEmpty {
			t.Fatalf("non-queue race classified first: %v", race)
		}
	}
	// Every region race is downstream.
	for race := range res.First {
		if race.Loc >= workload.Fig2RegionP3 {
			t.Fatalf("region race classified first: %v", race)
		}
	}
	regionDownstream := false
	for race := range res.Downstream {
		if race.Loc >= workload.Fig2RegionP3 {
			regionDownstream = true
		}
	}
	if !regionDownstream {
		t.Fatal("no region race classified downstream")
	}
}

// Race-free executions yield no races in either class.
func TestFirstRacesRaceFree(t *testing.T) {
	w := workload.LockedCounter(3, 3, -1)
	for seed := int64(0); seed < 10; seed++ {
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.RCsc, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res := DetectFirstRaces(r.Exec, Options{})
		if len(res.First)+len(res.Downstream) != 0 {
			t.Fatalf("seed %d: races on race-free workload: %v %v", seed, res.First, res.Downstream)
		}
	}
}

// Soundness of the approximation: every online first race is a race the
// post-mortem detector also finds, and every post-mortem first-partition
// race chain member classified "first" online is genuinely unaffected.
// (The online classification may split one entangled post-mortem
// partition into first + downstream members; it must never classify a
// race outside the post-mortem race set.)
func TestFirstRacesSubsetOfPostMortem(t *testing.T) {
	workloads := []*workload.Workload{
		workload.ProducerConsumer(4, false),
		workload.LockedCounter(3, 3, 1),
		workload.Random(workload.RandomParams{Seed: 9, UnlockedFraction: 0.5}),
	}
	for _, w := range workloads {
		for seed := int64(0); seed < 10; seed++ {
			r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: seed, InitMemory: w.InitMemory})
			if err != nil {
				t.Fatal(err)
			}
			res := DetectFirstRaces(r.Exec, Options{})
			_, pmAll := postMortemFirstSet(t, r.Exec)
			// Compare at (cpu, loc, mode) granularity: an event records
			// one PC per location and mode, while the online detector
			// distinguishes every program point.
			type coarse struct {
				xCPU, yCPU int
				loc        program.Addr
				xW, yW     bool
			}
			proj := func(ll core.LowerLevelRace) coarse {
				return coarse{ll.X.CPU, ll.Y.CPU, ll.Loc, ll.XWrites, ll.YWrites}
			}
			pmC := map[coarse]bool{}
			for race := range pmAll {
				pmC[proj(race)] = true
			}
			for race := range res.First {
				if !pmC[proj(race)] {
					t.Fatalf("%s seed %d: online first race unknown to post-mortem: %v", w.Name, seed, race)
				}
			}
			for race := range res.Downstream {
				if !pmC[proj(race)] {
					t.Fatalf("%s seed %d: online downstream race unknown to post-mortem: %v", w.Name, seed, race)
				}
			}
			// At least one first race whenever any race exists.
			if len(pmAll) > 0 && len(res.First) == 0 {
				t.Fatalf("%s seed %d: races exist but none classified first", w.Name, seed)
			}
		}
	}
}

// Package onthefly implements the on-the-fly race detection baseline the
// paper compares against in §5: a vector-clock detector in the style of
// Dinning–Schonberg that processes operations as they execute, keeping a
// bounded per-location access history instead of trace files.
//
// The paper's observation is that on-the-fly methods save secondary
// storage but "are typically less accurate and have higher run-time
// overhead than post-mortem techniques", because bounding the in-memory
// history drops accesses that still race. Options.HistoryLimit makes that
// trade-off explicit: unbounded history is exact at operation granularity;
// small limits lose races (experiment T5).
//
// The detector is exposed in two forms. Detect is the post-mortem-style
// batch entry point: one call over a complete execution. Feed is the
// incremental form the wrserve streaming daemon uses: a Detector accepts
// one operation at a time, advancing per-processor vector clocks online —
// the event-by-event variant of the graph.Timestamps pass — and can bound
// its memory with Options.Window, retiring events that fall out of the
// window while recording a replay seed (Ronsse & De Bosschere) so the
// dropped prefix can be re-analyzed offline.
package onthefly

import (
	"sort"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/vclock"
)

// Options configures the detector.
type Options struct {
	// HistoryLimit bounds the per-location, per-kind (read/write) access
	// history. 0 means unbounded. Bounded histories evict the oldest
	// entry — the source of the accuracy loss discussed in §5.
	HistoryLimit int
	// Pairing selects which synchronization writes transfer vector clocks
	// to acquires, mirroring the post-mortem detector's policy.
	Pairing memmodel.PairingPolicy
	// Window bounds detector memory by event retirement: an access or
	// published release clock recorded more than Window operations ago is
	// dropped before the next operation is processed. 0 means unbounded
	// (exact at operation granularity). Retirement is the §5
	// bounded-buffer accuracy loss made explicit: a retired access can no
	// longer be compared against, so races spanning more than Window
	// operations are missed — the Result's Replay seed records what to
	// re-analyze offline.
	Window int
}

// ReplaySeed is the cheap record logged when windowed retirement drops
// history (Ronsse & De Bosschere's escape hatch): everything needed to
// re-run the execution offline through the exact post-mortem analysis.
type ReplaySeed struct {
	// Program, Model and Seed identify the execution to replay.
	Program string         `json:"program"`
	Model   memmodel.Model `json:"model"`
	Seed    int64          `json:"seed"`
	// FirstOp and LastOp bound the retired operation IDs: the span of the
	// stream whose histories were dropped before later operations could
	// be compared against them.
	FirstOp int `json:"first_op"`
	LastOp  int `json:"last_op"`
	// Retired counts history entries and release clocks dropped.
	Retired int `json:"retired"`
}

// Result is the detector's output plus its cost counters.
type Result struct {
	// Races holds the detected lower-level data races by static identity.
	Races map[core.LowerLevelRace]bool
	// SyncRaces counts detected synchronization-only races (not reported)
	// by distinct static identity, the same deduplication Races gets — so
	// T5/T8 compare like against like instead of an inflated per-comparison
	// tally.
	SyncRaces int
	// OpsProcessed counts memory operations consumed.
	OpsProcessed int
	// Comparisons counts history-entry comparisons (the run-time overhead
	// proxy of §5).
	Comparisons int
	// Evictions counts history entries dropped because of HistoryLimit —
	// each one is a potential missed race.
	Evictions int
	// Retired counts history entries and release clocks dropped by
	// Options.Window — like Evictions, each one is a potential missed
	// race, but recoverable offline through Replay.
	Retired int
	// WindowPairMisses counts acquire-side clock lookups that found no
	// published release and may have lost it to window retirement (the
	// observed write's ID falls in the retired span). It is an upper
	// bound: a lookup for a write the pairing policy never published also
	// counts when that write is old enough.
	WindowPairMisses int
	// PeakLiveAccesses is the high-water mark of history entries held
	// across all locations; PeakLiveReleases the high-water mark of
	// published release clocks. Together they pin the detector's
	// steady-state footprint in tests.
	PeakLiveAccesses int
	PeakLiveReleases int
	// Replay is the replay seed recorded at the first window retirement
	// (nil when nothing retired): re-running the identified execution
	// post-mortem recovers every race the window lost.
	Replay *ReplaySeed
}

// RaceCount returns the number of distinct data races detected.
func (r *Result) RaceCount() int { return len(r.Races) }

// histEntry is one remembered access to a location.
type histEntry struct {
	epoch vclock.Epoch
	pc    int
	id    int // operation ID, for window retirement
	write bool
	sync  bool
}

// history is a bounded FIFO of access entries. Entries before head are
// retired; add compacts when the dead prefix dominates.
type history struct {
	entries []histEntry
	head    int
	limit   int
}

func (h *history) live() []histEntry { return h.entries[h.head:] }

func (h *history) add(e histEntry) (evicted bool) {
	if h.head > 0 && h.head >= len(h.entries)-h.head {
		n := copy(h.entries, h.entries[h.head:])
		h.entries = h.entries[:n]
		h.head = 0
	}
	if h.limit > 0 && len(h.entries)-h.head >= h.limit {
		live := h.entries[h.head:]
		copy(live, live[1:])
		live[len(live)-1] = e
		return true
	}
	h.entries = append(h.entries, e)
	return false
}

// popFrontIf retires the oldest live entry when it is the operation id,
// reporting whether it did (the entry may already be gone to a
// HistoryLimit eviction).
func (h *history) popFrontIf(id int) bool {
	if h.head < len(h.entries) && h.entries[h.head].id == id {
		h.head++
		return true
	}
	return false
}

// retireRef remembers where an access or release landed so window
// retirement can find it in O(1).
type retireRef struct {
	id   int  // operation ID
	at   int  // logical time (operations fed) when recorded
	loc  int  // location, for access refs
	read bool // which history, for access refs
}

// Detector is the incremental on-the-fly detector: construct once per
// execution (or per wrserve stream), Feed every operation in issue
// order, then Result. It is not safe for concurrent use; the streaming
// daemon confines each Detector to one worker goroutine.
type Detector struct {
	opts     Options
	res      *Result
	syncSeen map[core.LowerLevelRace]bool
	vcs      []vclock.VC
	// releaseVC holds the clock published by each pairable sync write,
	// keyed by op ID. Entries retire exactly (releaseLastUse, batch mode)
	// or by window discipline (streaming mode) — never grow unbounded.
	releaseVC map[int]vclock.VC
	// releaseLastUse maps a published release's op ID to the ID of the
	// last acquire that observes it; the entry retires right after that
	// acquire joins it. Supplied by Detect's prepass (the future is known
	// post-mortem); nil online, where Options.Window bounds the map.
	releaseLastUse map[int]int
	reads, writes  []history

	// Window retirement state: FIFOs of recorded accesses and published
	// releases in logical-time order, plus the retired-span bounds.
	accessQ       []retireRef
	accessQHead   int
	releaseQ      []retireRef
	releaseQHead  int
	fed           int // operations fed (logical clock)
	maxRetiredRel int // highest retired release op ID (-1 none)
	liveAccesses  int
	liveReleases  int
	source        ReplaySeed // identity template for Replay
	haveSource    bool
	finished      bool
}

// NewDetector returns an incremental detector over numCPUs processors and
// numLocations shared locations.
func NewDetector(numCPUs, numLocations int, opts Options) *Detector {
	d := &Detector{
		opts:          opts,
		res:           &Result{Races: map[core.LowerLevelRace]bool{}},
		syncSeen:      map[core.LowerLevelRace]bool{},
		vcs:           make([]vclock.VC, numCPUs),
		releaseVC:     map[int]vclock.VC{},
		reads:         make([]history, numLocations),
		writes:        make([]history, numLocations),
		maxRetiredRel: -1,
	}
	for c := range d.vcs {
		d.vcs[c] = vclock.New(numCPUs)
	}
	for i := range d.reads {
		d.reads[i].limit = opts.HistoryLimit
		d.writes[i].limit = opts.HistoryLimit
	}
	return d
}

// SetSource records the execution identity stamped into the replay seed
// when window retirement first drops history.
func (d *Detector) SetSource(program string, model memmodel.Model, seed int64) {
	d.source = ReplaySeed{Program: program, Model: model, Seed: seed}
	d.haveSource = true
}

// LiveReleases returns the number of release clocks currently held.
func (d *Detector) LiveReleases() int { return len(d.releaseVC) }

// LiveAccesses returns the number of history entries currently held
// across all locations.
func (d *Detector) LiveAccesses() int { return d.liveAccesses }

// RacesSoFar returns the number of distinct racing location-pairs found
// so far — a live view for per-batch instrumentation, cheap enough to
// read between batches.
func (d *Detector) RacesSoFar() int { return len(d.res.Races) }

// RetiredSoFar returns the number of history entries the window has
// retired so far.
func (d *Detector) RetiredSoFar() int64 { return int64(d.res.Retired) }

// retire drops everything recorded before the window that ends at the
// operation about to be fed, logging the replay seed.
func (d *Detector) retire() {
	watermark := d.fed - d.opts.Window
	retired := 0
	firstID, lastID := -1, -1
	for d.accessQHead < len(d.accessQ) && d.accessQ[d.accessQHead].at < watermark {
		ref := d.accessQ[d.accessQHead]
		d.accessQHead++
		h := &d.writes[ref.loc]
		if ref.read {
			h = &d.reads[ref.loc]
		}
		if h.popFrontIf(ref.id) {
			retired++
			d.liveAccesses--
			if firstID < 0 {
				firstID = ref.id
			}
			lastID = ref.id
		}
	}
	for d.releaseQHead < len(d.releaseQ) && d.releaseQ[d.releaseQHead].at < watermark {
		ref := d.releaseQ[d.releaseQHead]
		d.releaseQHead++
		if _, ok := d.releaseVC[ref.id]; ok {
			delete(d.releaseVC, ref.id)
			retired++
			d.liveReleases--
			if firstID < 0 || ref.id < firstID {
				firstID = ref.id
			}
			if ref.id > lastID {
				lastID = ref.id
			}
		}
		if ref.id > d.maxRetiredRel {
			d.maxRetiredRel = ref.id
		}
	}
	if d.accessQHead > 0 && d.accessQHead >= len(d.accessQ)-d.accessQHead {
		n := copy(d.accessQ, d.accessQ[d.accessQHead:])
		d.accessQ = d.accessQ[:n]
		d.accessQHead = 0
	}
	if d.releaseQHead > 0 && d.releaseQHead >= len(d.releaseQ)-d.releaseQHead {
		n := copy(d.releaseQ, d.releaseQ[d.releaseQHead:])
		d.releaseQ = d.releaseQ[:n]
		d.releaseQHead = 0
	}
	if retired == 0 {
		return
	}
	d.res.Retired += retired
	if d.res.Replay == nil {
		seed := d.source // zero identity when SetSource was never called
		seed.FirstOp = firstID
		d.res.Replay = &seed
	}
	d.res.Replay.Retired += retired
	if lastID > d.res.Replay.LastOp {
		d.res.Replay.LastOp = lastID
	}
}

// Feed processes one operation. Operations must arrive in issue order
// (ascending ID); wrserve's stream framing and Detect's sortedness check
// both guarantee it.
func (d *Detector) Feed(op sim.MemOp) {
	if d.opts.Window > 0 {
		d.retire()
	}
	c := op.CPU
	res := d.res
	res.OpsProcessed++

	// Acquire: import the pairing release's clock before checking the
	// acquire's own access.
	if op.Kind == sim.OpAcquireRead && op.ObservedWrite >= 0 {
		if vc, ok := d.releaseVC[op.ObservedWrite]; ok {
			d.vcs[c].Join(vc)
			if lu, exact := d.releaseLastUse[op.ObservedWrite]; exact && op.ID >= lu {
				delete(d.releaseVC, op.ObservedWrite)
				d.liveReleases--
			}
		} else if d.opts.Window > 0 && op.ObservedWrite <= d.maxRetiredRel {
			res.WindowPairMisses++
		}
	}

	// Race checks against the remembered accesses.
	sync := op.Kind.IsSync()
	check := func(h *history) {
		for _, ent := range h.live() {
			res.Comparisons++
			if ent.epoch.P == c {
				continue // same processor: program-ordered
			}
			if ent.epoch.Covered(d.vcs[c]) {
				continue // ordered by hb1
			}
			ll := core.LowerLevelRace{
				Loc:     op.Loc,
				X:       sim.StaticOp{CPU: ent.epoch.P, PC: ent.pc, Loc: op.Loc},
				Y:       sim.StaticOp{CPU: c, PC: op.PC, Loc: op.Loc},
				XWrites: ent.write, YWrites: op.Kind.IsWrite(),
			}.Canonical()
			if ent.sync && sync {
				d.syncSeen[ll] = true
				continue
			}
			res.Races[ll] = true
		}
	}
	if op.Kind.IsRead() {
		check(&d.writes[op.Loc])
	} else {
		check(&d.writes[op.Loc])
		check(&d.reads[op.Loc])
	}

	// Record this access.
	ent := histEntry{
		epoch: vclock.Epoch{P: c, C: d.vcs[c].Get(c) + 1},
		pc:    op.PC,
		id:    op.ID,
		write: op.Kind.IsWrite(),
		sync:  sync,
	}
	var evicted bool
	if op.Kind.IsRead() {
		evicted = d.reads[op.Loc].add(ent)
	} else {
		evicted = d.writes[op.Loc].add(ent)
	}
	if evicted {
		res.Evictions++
	} else {
		d.liveAccesses++
		if d.liveAccesses > res.PeakLiveAccesses {
			res.PeakLiveAccesses = d.liveAccesses
		}
	}
	if d.opts.Window > 0 {
		d.accessQ = append(d.accessQ, retireRef{id: op.ID, at: d.fed, loc: int(op.Loc), read: op.Kind.IsRead()})
	}

	// Release: publish the clock covering everything up to and
	// including this operation.
	d.vcs[c].Tick(c)
	if op.Kind.IsWrite() && op.Kind.IsSync() && d.opts.Pairing.CanPair(op.Kind.Role()) {
		// With the exact retirement map a release no acquire ever
		// observes is never published at all.
		publish := true
		if d.releaseLastUse != nil {
			_, publish = d.releaseLastUse[op.ID]
		}
		if publish {
			d.releaseVC[op.ID] = d.vcs[c].Clone()
			d.liveReleases++
			if d.liveReleases > res.PeakLiveReleases {
				res.PeakLiveReleases = d.liveReleases
			}
			if d.opts.Window > 0 {
				d.releaseQ = append(d.releaseQ, retireRef{id: op.ID, at: d.fed})
			}
		}
	}
	d.fed++
}

// Result finalizes and returns the detector's output. Feed must not be
// called afterwards.
func (d *Detector) Result() *Result {
	if !d.finished {
		d.res.SyncRaces = len(d.syncSeen)
		d.finished = true
	}
	return d.res
}

// Detect runs the on-the-fly algorithm over the execution's operations in
// issue order (the order the instrumented processors would observe them).
func Detect(e *sim.Execution, opts Options) *Result {
	defer telemetry.Default().StartSpan("onthefly.detect").End()
	d := NewDetector(e.NumCPUs, e.NumLocations, opts)
	d.SetSource(e.ProgramName, e.Model, e.Seed)

	// Operations in global issue order: IDs are already that order, so a
	// linear sortedness check replaces the unconditional copy+sort; the
	// copy survives only for out-of-order inputs.
	ops := e.Ops
	for i := 1; i < len(ops); i++ {
		if ops[i].ID < ops[i-1].ID {
			sorted := make([]sim.MemOp, len(e.Ops))
			copy(sorted, e.Ops)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
			ops = sorted
			break
		}
	}

	// Post-mortem the future is known: record, per published release, the
	// last acquire that observes it, so its clock retires immediately
	// after that join and the releaseVC map holds only live entries.
	lastUse := make(map[int]int)
	for _, op := range ops {
		if op.Kind == sim.OpAcquireRead && op.ObservedWrite >= 0 {
			lastUse[op.ObservedWrite] = op.ID // ascending IDs: final write wins
		}
	}
	d.releaseLastUse = lastUse

	for _, op := range ops {
		d.Feed(op)
	}
	res := d.Result()
	if reg := telemetry.Default(); reg.Enabled() {
		reg.Counter("onthefly.detections").Inc()
		reg.Counter("onthefly.ops").Add(int64(res.OpsProcessed))
		reg.Counter("onthefly.comparisons").Add(int64(res.Comparisons))
		reg.Counter("onthefly.races").Add(int64(len(res.Races)))
		reg.Counter("onthefly.sync_races").Add(int64(res.SyncRaces))
		reg.Counter("onthefly.evictions").Add(int64(res.Evictions))
		reg.Counter("onthefly.retired").Add(int64(res.Retired))
	}
	return res
}

// Package onthefly implements the on-the-fly race detection baseline the
// paper compares against in §5: a vector-clock detector in the style of
// Dinning–Schonberg that processes operations as they execute, keeping a
// bounded per-location access history instead of trace files.
//
// The paper's observation is that on-the-fly methods save secondary
// storage but "are typically less accurate and have higher run-time
// overhead than post-mortem techniques", because bounding the in-memory
// history drops accesses that still race. Options.HistoryLimit makes that
// trade-off explicit: unbounded history is exact at operation granularity;
// small limits lose races (experiment T5).
package onthefly

import (
	"sort"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/vclock"
)

// Options configures the detector.
type Options struct {
	// HistoryLimit bounds the per-location, per-kind (read/write) access
	// history. 0 means unbounded. Bounded histories evict the oldest
	// entry — the source of the accuracy loss discussed in §5.
	HistoryLimit int
	// Pairing selects which synchronization writes transfer vector clocks
	// to acquires, mirroring the post-mortem detector's policy.
	Pairing memmodel.PairingPolicy
}

// Result is the detector's output plus its cost counters.
type Result struct {
	// Races holds the detected lower-level data races by static identity.
	Races map[core.LowerLevelRace]bool
	// SyncRaces counts detected synchronization-only races (not reported)
	// by distinct static identity, the same deduplication Races gets — so
	// T5/T8 compare like against like instead of an inflated per-comparison
	// tally.
	SyncRaces int
	// OpsProcessed counts memory operations consumed.
	OpsProcessed int
	// Comparisons counts history-entry comparisons (the run-time overhead
	// proxy of §5).
	Comparisons int
	// Evictions counts history entries dropped because of HistoryLimit —
	// each one is a potential missed race.
	Evictions int
}

// histEntry is one remembered access to a location.
type histEntry struct {
	epoch vclock.Epoch
	pc    int
	write bool
	sync  bool
}

// history is a bounded FIFO of access entries.
type history struct {
	entries []histEntry
	limit   int
}

func (h *history) add(e histEntry) (evicted bool) {
	if h.limit > 0 && len(h.entries) >= h.limit {
		copy(h.entries, h.entries[1:])
		h.entries[len(h.entries)-1] = e
		return true
	}
	h.entries = append(h.entries, e)
	return false
}

// Detect runs the on-the-fly algorithm over the execution's operations in
// issue order (the order the instrumented processors would observe them).
func Detect(e *sim.Execution, opts Options) *Result {
	defer telemetry.Default().StartSpan("onthefly.detect").End()
	res := &Result{Races: map[core.LowerLevelRace]bool{}}
	// syncSeen dedupes synchronization races by static identity; a spin
	// loop re-comparing the same lock accesses must count one race, not
	// one per history comparison.
	syncSeen := map[core.LowerLevelRace]bool{}
	vcs := make([]vclock.VC, e.NumCPUs)
	for c := range vcs {
		vcs[c] = vclock.New(e.NumCPUs)
	}
	// releaseVC holds the clock published by each pairable sync write.
	releaseVC := map[int]vclock.VC{}
	reads := make([]history, e.NumLocations)
	writes := make([]history, e.NumLocations)
	for i := range reads {
		reads[i].limit = opts.HistoryLimit
		writes[i].limit = opts.HistoryLimit
	}

	// Operations in global issue order: IDs are already that order.
	ops := make([]sim.MemOp, len(e.Ops))
	copy(ops, e.Ops)
	sort.Slice(ops, func(i, j int) bool { return ops[i].ID < ops[j].ID })

	for _, op := range ops {
		c := op.CPU
		res.OpsProcessed++

		// Acquire: import the pairing release's clock before checking the
		// acquire's own access.
		if op.Kind == sim.OpAcquireRead && op.ObservedWrite >= 0 {
			if vc, ok := releaseVC[op.ObservedWrite]; ok {
				vcs[c].Join(vc)
			}
		}

		// Race checks against the remembered accesses.
		sync := op.Kind.IsSync()
		check := func(h *history) {
			for _, ent := range h.entries {
				res.Comparisons++
				if ent.epoch.P == c {
					continue // same processor: program-ordered
				}
				if ent.epoch.Covered(vcs[c]) {
					continue // ordered by hb1
				}
				ll := core.LowerLevelRace{
					Loc:     op.Loc,
					X:       sim.StaticOp{CPU: ent.epoch.P, PC: ent.pc, Loc: op.Loc},
					Y:       sim.StaticOp{CPU: c, PC: op.PC, Loc: op.Loc},
					XWrites: ent.write, YWrites: op.Kind.IsWrite(),
				}.Canonical()
				if ent.sync && sync {
					syncSeen[ll] = true
					continue
				}
				res.Races[ll] = true
			}
		}
		if op.Kind.IsRead() {
			check(&writes[op.Loc])
		} else {
			check(&writes[op.Loc])
			check(&reads[op.Loc])
		}

		// Record this access.
		ent := histEntry{
			epoch: vclock.Epoch{P: c, C: vcs[c].Get(c) + 1},
			pc:    op.PC,
			write: op.Kind.IsWrite(),
			sync:  sync,
		}
		var evicted bool
		if op.Kind.IsRead() {
			evicted = reads[op.Loc].add(ent)
		} else {
			evicted = writes[op.Loc].add(ent)
		}
		if evicted {
			res.Evictions++
		}

		// Release: publish the clock covering everything up to and
		// including this operation.
		vcs[c].Tick(c)
		if op.Kind.IsWrite() && op.Kind.IsSync() && opts.Pairing.CanPair(op.Kind.Role()) {
			releaseVC[op.ID] = vcs[c].Clone()
		}
	}
	res.SyncRaces = len(syncSeen)
	if reg := telemetry.Default(); reg.Enabled() {
		reg.Counter("onthefly.detections").Inc()
		reg.Counter("onthefly.ops").Add(int64(res.OpsProcessed))
		reg.Counter("onthefly.comparisons").Add(int64(res.Comparisons))
		reg.Counter("onthefly.races").Add(int64(len(res.Races)))
		reg.Counter("onthefly.sync_races").Add(int64(res.SyncRaces))
		reg.Counter("onthefly.evictions").Add(int64(res.Evictions))
	}
	return res
}

// RaceCount returns the number of distinct data races detected.
func (r *Result) RaceCount() int { return len(r.Races) }

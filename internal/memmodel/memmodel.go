// Package memmodel encodes the five memory consistency models the paper
// discusses — sequential consistency (SC), weak ordering (WO), release
// consistency with sequentially consistent synchronization (RCsc), and the
// data-race-free models DRF0 and DRF1 — as data the simulator and detector
// consume.
//
// The models differ along two axes the paper identifies (§2.2):
//
//  1. whether data operations may be buffered and completed out of order
//     between synchronization points (all weak models: yes; SC: no), and
//  2. whether the hardware distinguishes acquire from release
//     synchronization (RCsc and DRF1: yes; WO and DRF0: no).
//
// DRF0 and DRF1 are *specifications* (sets of hardware), not concrete
// designs; we implement their canonical proposed implementations, which
// coincide with WO-style and RCsc-style hardware respectively. This is
// faithful to the paper, which treats "all proposed implementations of DRF0
// and DRF1" exactly this way (Theorem 3.5).
package memmodel

import "fmt"

// Model identifies a memory consistency model.
type Model int

const (
	// SC is sequential consistency [Lam79]: every memory operation
	// completes, globally, in program order.
	SC Model = iota
	// WO is weak ordering [DSB86]: data operations may be reordered between
	// synchronization operations; every synchronization operation waits for
	// all prior operations and blocks all later ones.
	WO
	// RCsc is release consistency with sequentially consistent
	// synchronization [GLL90]: releases wait for prior operations;
	// acquires block later operations; synchronization operations are
	// sequentially consistent among themselves.
	RCsc
	// DRF0 is data-race-free-0 [AdH90]; its proposed implementation
	// behaves like WO (no acquire/release distinction).
	DRF0
	// DRF1 is data-race-free-1 [AdH91]; its proposed implementation
	// behaves like RCsc (distinguishes acquire and release).
	DRF1
	// TSO is total store order (x86-style), included as an extension
	// beyond the paper's four weak models: a FIFO store buffer with
	// forwarding. Reads may bypass the processor's own buffered stores
	// (the SB relaxation), but stores commit in program order, so the
	// message-passing reordering — and with it the paper's Figure 2
	// anomaly — cannot occur.
	TSO
)

// All lists every model: the paper's five in the order it introduces
// them, then the TSO extension.
var All = []Model{SC, WO, RCsc, DRF0, DRF1, TSO}

var modelNames = map[Model]string{
	SC: "SC", WO: "WO", RCsc: "RCsc", DRF0: "DRF0", DRF1: "DRF1", TSO: "TSO",
}

// String returns the paper's abbreviation for the model.
func (m Model) String() string {
	if s, ok := modelNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Parse converts a model name (as printed by String, case-sensitive)
// back to a Model.
func Parse(s string) (Model, error) {
	for m, name := range modelNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("memmodel: unknown model %q (want SC, WO, RCsc, DRF0, DRF1 or TSO)", s)
}

// Weak reports whether the model is one of the four weak models (i.e. not
// SC). The paper calls these collectively "the weak systems".
func (m Model) Weak() bool { return m != SC }

// Role classifies a dynamic memory operation for ordering purposes.
type Role int

const (
	// RoleData is an ordinary data read or write.
	RoleData Role = iota
	// RoleAcquire is a synchronization read used to conclude completion of
	// another processor's prior operations (Test&Set's read, SyncRead).
	RoleAcquire
	// RoleRelease is a synchronization write used to communicate completion
	// of the issuing processor's prior operations (Unset, SyncWrite).
	RoleRelease
	// RoleSyncOther is a synchronization operation that is neither an
	// acquire nor a release under the paper's classification — the write
	// half of a Test&Set (§2.1: "the write due to a Test&Set is not a
	// release since it is not meant to be used to communicate the
	// completion of previous memory operations").
	RoleSyncOther
	// RoleFence is an explicit fence (no memory access).
	RoleFence
)

var roleNames = map[Role]string{
	RoleData: "data", RoleAcquire: "acquire", RoleRelease: "release",
	RoleSyncOther: "sync", RoleFence: "fence",
}

// String returns a short name for the role.
func (r Role) String() string {
	if s, ok := roleNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// IsSync reports whether the role denotes a hardware-recognized
// synchronization operation.
func (r Role) IsSync() bool {
	return r == RoleAcquire || r == RoleRelease || r == RoleSyncOther
}

// BuffersData reports whether data writes may be held in a processor-local
// store buffer. Only SC forbids this.
func (m Model) BuffersData() bool { return m != SC }

// FIFOStoreBuffer reports whether the store buffer retires in strict
// program order (TSO). The paper's four weak models retire out of order
// between synchronization points.
func (m Model) FIFOStoreBuffer() bool { return m == TSO }

// AllowsStoreReordering reports whether two stores by one processor to
// different locations may become visible out of program order — the
// relaxation behind the paper's Figure 1a/2b anomalies. True for the
// paper's four weak models; false for SC and TSO.
func (m Model) AllowsStoreReordering() bool { return m.Weak() && !m.FIFOStoreBuffer() }

// DrainsBefore reports whether an operation with the given role must wait
// for the processor's store buffer to drain (all prior data writes become
// globally visible) before it executes.
//
//   - SC never buffers, so draining is vacuous.
//   - WO and DRF0 drain at every synchronization operation and fence.
//   - RCsc and DRF1 drain at releases and fences only; acquires need not
//     wait for prior data operations (that is the models' extra
//     performance over WO).
//   - TSO drains at releases, Test&Set writes (locked operations flush),
//     and fences; plain acquire reads need not wait. With the FIFO buffer
//     this keeps all stores, sync or data, in program order.
func (m Model) DrainsBefore(r Role) bool {
	switch m {
	case SC:
		return false
	case WO, DRF0:
		return r.IsSync() || r == RoleFence
	case RCsc, DRF1:
		return r == RoleRelease || r == RoleFence
	case TSO:
		return r == RoleRelease || r == RoleSyncOther || r == RoleFence
	}
	return false
}

// BlocksAfter reports whether later operations of the same processor must
// wait for an operation with this role to complete before issuing. In the
// simulator's in-order pipeline every instruction issues in order, so this
// is informational, but it documents each model's constraint and is used by
// the report package.
func (m Model) BlocksAfter(r Role) bool {
	switch m {
	case SC:
		return true
	case WO, DRF0:
		return r.IsSync() || r == RoleFence
	case RCsc, DRF1, TSO:
		return r == RoleAcquire || r == RoleFence
	}
	return false
}

// DistinguishesAcquireRelease reports whether the model's hardware rules
// treat acquires and releases differently (§2.2).
func (m Model) DistinguishesAcquireRelease() bool {
	return m == RCsc || m == DRF1
}

// PairingPolicy controls which synchronization writes may pair with which
// synchronization reads when constructing so1 (Definition 2.1/2.2).
type PairingPolicy int

const (
	// ConservativePairing is the paper's classification: only releases
	// (Unset, SyncWrite) pair with acquires (Test&Set read, SyncRead); a
	// Test&Set's write never pairs. This is the default everywhere.
	ConservativePairing PairingPolicy = iota
	// LiberalPairing additionally lets a Test&Set's write pair with a later
	// acquire. On WO/DRF0-style hardware every synchronization operation
	// drains the store buffer, so the Test&Set write does in fact
	// communicate completion; treating it as a release is sound there and
	// yields fewer (never more) reported races.
	LiberalPairing
)

// String names the pairing policy.
func (p PairingPolicy) String() string {
	if p == LiberalPairing {
		return "liberal"
	}
	return "conservative"
}

// CanPair reports whether a synchronization write with role w may pair, as
// the release side, with an acquire, under this policy.
func (p PairingPolicy) CanPair(w Role) bool {
	switch w {
	case RoleRelease:
		return true
	case RoleSyncOther:
		return p == LiberalPairing
	}
	return false
}

// Properties summarizes a model's ordering rules in display form, used by
// documentation surfaces (wrlitmus -models).
type Properties struct {
	Model               Model
	BuffersData         bool
	DrainsAtAcquire     bool
	DrainsAtRelease     bool
	DistinguishesAcqRel bool
	GuaranteesSCForDRF  bool // all five models guarantee SC to DRF programs
	GuaranteesSCForAll  bool // only SC does
}

// Describe returns the model's property summary.
func Describe(m Model) Properties {
	return Properties{
		Model:               m,
		BuffersData:         m.BuffersData(),
		DrainsAtAcquire:     m.DrainsBefore(RoleAcquire),
		DrainsAtRelease:     m.DrainsBefore(RoleRelease),
		DistinguishesAcqRel: m.DistinguishesAcquireRelease(),
		GuaranteesSCForDRF:  true,
		GuaranteesSCForAll:  m == SC,
	}
}

// DefaultPairing returns the pairing policy justified by the model's
// hardware rules: liberal for models where every synchronization operation
// drains the buffer (WO, DRF0), conservative otherwise. The detector still
// defaults to ConservativePairing — the paper's choice — unless the caller
// opts in.
func (m Model) DefaultPairing() PairingPolicy {
	if m == WO || m == DRF0 || m == TSO {
		// Every synchronization write on these models drains (or, on TSO,
		// FIFO-follows) the buffer, so a Test&Set write does communicate
		// completion.
		return LiberalPairing
	}
	return ConservativePairing
}

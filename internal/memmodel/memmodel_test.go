package memmodel

import "testing"

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, m := range All {
		got, err := Parse(m.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("Parse(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if _, err := Parse("PC"); err == nil {
		t.Fatal("Parse accepted unknown model")
	}
}

func TestWeak(t *testing.T) {
	if SC.Weak() {
		t.Fatal("SC reported weak")
	}
	for _, m := range []Model{WO, RCsc, DRF0, DRF1, TSO} {
		if !m.Weak() {
			t.Fatalf("%v not reported weak", m)
		}
	}
}

func TestBuffersData(t *testing.T) {
	if SC.BuffersData() {
		t.Fatal("SC must not buffer data writes")
	}
	for _, m := range []Model{WO, RCsc, DRF0, DRF1, TSO} {
		if !m.BuffersData() {
			t.Fatalf("%v must buffer data writes", m)
		}
	}
}

func TestDrainsBefore(t *testing.T) {
	cases := []struct {
		m    Model
		r    Role
		want bool
	}{
		// SC: vacuous.
		{SC, RoleAcquire, false},
		{SC, RoleRelease, false},
		// WO/DRF0: every sync op and fence drains.
		{WO, RoleAcquire, true},
		{WO, RoleRelease, true},
		{WO, RoleSyncOther, true},
		{WO, RoleFence, true},
		{WO, RoleData, false},
		{DRF0, RoleAcquire, true},
		{DRF0, RoleSyncOther, true},
		// RCsc/DRF1: only releases and fences drain; acquires do not.
		{RCsc, RoleRelease, true},
		{RCsc, RoleFence, true},
		{RCsc, RoleAcquire, false},
		{RCsc, RoleSyncOther, false},
		{DRF1, RoleRelease, true},
		{DRF1, RoleAcquire, false},
		// TSO: releases, Test&Set writes and fences drain; acquires do not.
		{TSO, RoleRelease, true},
		{TSO, RoleSyncOther, true},
		{TSO, RoleFence, true},
		{TSO, RoleAcquire, false},
		{TSO, RoleData, false},
	}
	for _, c := range cases {
		if got := c.m.DrainsBefore(c.r); got != c.want {
			t.Errorf("%v.DrainsBefore(%v) = %v, want %v", c.m, c.r, got, c.want)
		}
	}
}

func TestBlocksAfter(t *testing.T) {
	if !SC.BlocksAfter(RoleData) {
		t.Fatal("SC blocks after every operation")
	}
	if !WO.BlocksAfter(RoleAcquire) || !WO.BlocksAfter(RoleRelease) {
		t.Fatal("WO blocks after every sync op")
	}
	if WO.BlocksAfter(RoleData) {
		t.Fatal("WO does not block after data ops")
	}
	if !RCsc.BlocksAfter(RoleAcquire) {
		t.Fatal("RCsc blocks after acquires")
	}
	if RCsc.BlocksAfter(RoleRelease) {
		t.Fatal("RCsc does not block after releases")
	}
}

func TestDistinguishesAcquireRelease(t *testing.T) {
	for m, want := range map[Model]bool{SC: false, WO: false, DRF0: false, RCsc: true, DRF1: true, TSO: false} {
		if got := m.DistinguishesAcquireRelease(); got != want {
			t.Errorf("%v.DistinguishesAcquireRelease = %v, want %v", m, got, want)
		}
	}
}

func TestRoleClassification(t *testing.T) {
	for r, want := range map[Role]bool{
		RoleData: false, RoleAcquire: true, RoleRelease: true,
		RoleSyncOther: true, RoleFence: false,
	} {
		if got := r.IsSync(); got != want {
			t.Errorf("%v.IsSync = %v, want %v", r, got, want)
		}
	}
}

func TestPairingPolicy(t *testing.T) {
	if !ConservativePairing.CanPair(RoleRelease) {
		t.Fatal("conservative must pair releases")
	}
	if ConservativePairing.CanPair(RoleSyncOther) {
		t.Fatal("conservative must not pair Test&Set writes (paper §2.1)")
	}
	if !LiberalPairing.CanPair(RoleSyncOther) {
		t.Fatal("liberal should pair Test&Set writes")
	}
	if LiberalPairing.CanPair(RoleData) || ConservativePairing.CanPair(RoleAcquire) {
		t.Fatal("only sync writes can be the release side of a pair")
	}
}

func TestDefaultPairing(t *testing.T) {
	for m, want := range map[Model]PairingPolicy{
		SC: ConservativePairing, WO: LiberalPairing, DRF0: LiberalPairing,
		RCsc: ConservativePairing, DRF1: ConservativePairing, TSO: LiberalPairing,
	} {
		if got := m.DefaultPairing(); got != want {
			t.Errorf("%v.DefaultPairing = %v, want %v", m, got, want)
		}
	}
}

func TestDescribe(t *testing.T) {
	for _, m := range All {
		pr := Describe(m)
		if pr.Model != m {
			t.Fatalf("Describe(%v).Model = %v", m, pr.Model)
		}
		if pr.BuffersData != m.BuffersData() ||
			pr.DrainsAtAcquire != m.DrainsBefore(RoleAcquire) ||
			pr.DrainsAtRelease != m.DrainsBefore(RoleRelease) ||
			pr.DistinguishesAcqRel != m.DistinguishesAcquireRelease() {
			t.Fatalf("Describe(%v) inconsistent: %+v", m, pr)
		}
		if !pr.GuaranteesSCForDRF {
			t.Fatalf("%v must guarantee SC for DRF programs", m)
		}
		if pr.GuaranteesSCForAll != (m == SC) {
			t.Fatalf("%v GuaranteesSCForAll wrong", m)
		}
	}
}

func TestFIFOAndStoreReordering(t *testing.T) {
	for m, fifo := range map[Model]bool{
		SC: false, WO: false, RCsc: false, DRF0: false, DRF1: false, TSO: true,
	} {
		if m.FIFOStoreBuffer() != fifo {
			t.Errorf("%v.FIFOStoreBuffer = %v", m, m.FIFOStoreBuffer())
		}
	}
	for m, reorder := range map[Model]bool{
		SC: false, WO: true, RCsc: true, DRF0: true, DRF1: true, TSO: false,
	} {
		if m.AllowsStoreReordering() != reorder {
			t.Errorf("%v.AllowsStoreReordering = %v", m, m.AllowsStoreReordering())
		}
	}
}

func TestRoleAndPolicyStrings(t *testing.T) {
	if RoleAcquire.String() != "acquire" || RoleRelease.String() != "release" {
		t.Fatal("role names wrong")
	}
	if ConservativePairing.String() != "conservative" || LiberalPairing.String() != "liberal" {
		t.Fatal("policy names wrong")
	}
}

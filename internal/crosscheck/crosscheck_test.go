package crosscheck

import (
	"bytes"
	"math/rand"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/lockset"
	"weakrace/internal/memmodel"
	"weakrace/internal/onthefly"
	"weakrace/internal/scp"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// randomWorkload draws a workload with tunable raciness.
func randomWorkload(rng *rand.Rand, racy bool) *workload.Workload {
	p := workload.RandomParams{
		Seed:          rng.Int63(),
		CPUs:          2 + rng.Intn(3),
		Segments:      2 + rng.Intn(5),
		OpsPerSegment: 2 + rng.Intn(4),
		Locks:         1 + rng.Intn(2),
	}
	if racy {
		p.UnlockedFraction = 0.2 + rng.Float64()*0.6
		p.SharedFraction = 0.5 + rng.Float64()*0.4
	}
	return workload.Random(p)
}

func weakModel(rng *rand.Rand) memmodel.Model {
	models := []memmodel.Model{memmodel.WO, memmodel.RCsc, memmodel.DRF0, memmodel.DRF1}
	return models[rng.Intn(len(models))]
}

// Post-mortem and unbounded on-the-fly detection must agree exactly on
// the set of lower-level data races, for every workload and model. The
// corpus is the frozen workload.Corpus(60, 1) — the same 60 traces the
// wrserve acceptance test and window study run against.
func TestDifferentialPostMortemVsOnTheFly(t *testing.T) {
	for trial, c := range workload.Corpus(60, 1) {
		w, model, seed := c.Workload, c.Model, c.Seed
		r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed, InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pm := map[core.LowerLevelRace]bool{}
		for _, ri := range a.DataRaces {
			for _, ll := range a.LowerLevel(a.Races[ri]) {
				pm[ll.Canonical()] = true
			}
		}
		otf := onthefly.Detect(r.Exec, onthefly.Options{})
		for ll := range pm {
			if !otf.Races[ll] {
				t.Fatalf("trial %d (%s, %v, seed %d): post-mortem race missed on the fly: %v",
					trial, w.Name, model, seed, ll)
			}
		}
		// The converse may differ only by PC granularity: the on-the-fly
		// detector distinguishes every program point, while an event
		// records one PC per (location, mode). Project both sides down to
		// (cpu, loc, mode) pairs, which must agree exactly.
		type coarse struct {
			xCPU, yCPU int
			loc        int
			xW, yW     bool
		}
		proj := func(ll core.LowerLevelRace) coarse {
			return coarse{ll.X.CPU, ll.Y.CPU, int(ll.Loc), ll.XWrites, ll.YWrites}
		}
		pmC := map[coarse]bool{}
		for ll := range pm {
			pmC[proj(ll)] = true
		}
		for ll := range otf.Races {
			if !pmC[proj(ll)] {
				t.Fatalf("trial %d (%s, %v, seed %d): on-the-fly race with no post-mortem counterpart: %v",
					trial, w.Name, model, seed, ll)
			}
		}
	}
}

// The DRF guarantee as a differential test: whenever the detector says
// race-free, the exact verifier must find the weak execution sequentially
// consistent.
func TestDifferentialRaceFreeImpliesSC(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	checked := 0
	for trial := 0; trial < 40; trial++ {
		w := randomWorkload(rng, trial%3 == 0)
		model := weakModel(rng)
		seed := rng.Int63n(1000)
		r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed, InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !a.RaceFree() {
			continue
		}
		sc, decided := scp.VerifySC(r.Exec, 1<<21)
		if !decided {
			continue // budget blown on a big execution; not a failure
		}
		checked++
		if !sc {
			t.Fatalf("trial %d (%s, %v, seed %d): race-free weak execution is not SC — Condition 3.4(1) violated",
				trial, w.Name, model, seed)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d race-free executions checked; generator drifted", checked)
	}
}

// The simulator's conservative DefinitelySC witness never contradicts the
// exact verifier.
func TestDifferentialDefinitelySCIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	confirmed := 0
	for trial := 0; trial < 40; trial++ {
		w := randomWorkload(rng, true)
		model := weakModel(rng)
		r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: rng.Int63n(1000), InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Exec.DefinitelySC() {
			continue
		}
		sc, decided := scp.VerifySC(r.Exec, 1<<21)
		if decided && !sc {
			t.Fatalf("trial %d: DefinitelySC execution rejected by the exact verifier", trial)
		}
		confirmed++
	}
	_ = confirmed // DefinitelySC is rare on weak models; zero hits is fine
}

// Codec agreement: binary and text round trips produce analyses with
// identical race reports.
func TestDifferentialCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		w := randomWorkload(rng, true)
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: rng.Int63n(1000), InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.FromExecution(r.Exec)

		var bin, txt bytes.Buffer
		if err := trace.Encode(&bin, tr); err != nil {
			t.Fatal(err)
		}
		if err := trace.EncodeText(&txt, tr); err != nil {
			t.Fatal(err)
		}
		fromBin, err := trace.Decode(&bin)
		if err != nil {
			t.Fatal(err)
		}
		fromTxt, err := trace.DecodeText(&txt)
		if err != nil {
			t.Fatal(err)
		}

		aMem, err := core.Analyze(tr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, tr2 := range []*trace.Trace{fromBin, fromTxt} {
			a2, err := core.Analyze(tr2, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(a2.Races) != len(aMem.Races) ||
				len(a2.DataRaces) != len(aMem.DataRaces) ||
				len(a2.Partitions) != len(aMem.Partitions) ||
				len(a2.FirstPartitions) != len(aMem.FirstPartitions) {
				t.Fatalf("trial %d codec %d: analysis differs after round trip", trial, i)
			}
			for j := range aMem.Races {
				if aMem.Races[j].A != a2.Races[j].A || aMem.Races[j].B != a2.Races[j].B ||
					!aMem.Races[j].Locs.Equal(a2.Races[j].Locs) {
					t.Fatalf("trial %d codec %d: race %d differs", trial, i, j)
				}
			}
		}
	}
}

// Lockset vs happens-before on lock-disciplined random programs: a
// program whose every shared access is under its owning lock must be
// clean for BOTH detectors, on every model and seed.
func TestDifferentialLocksetOnDisciplinedPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		w := randomWorkload(rng, false) // UnlockedFraction 0: disciplined
		model := weakModel(rng)
		seed := rng.Int63n(1000)
		r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed, InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !a.RaceFree() {
			t.Fatalf("trial %d: disciplined program racy under happens-before", trial)
		}
		if ls := lockset.Check(r.Exec); len(ls.Findings) != 0 {
			t.Fatalf("trial %d (%s, %v, seed %d): disciplined program flagged by lockset: %+v",
				trial, w.Name, model, seed, ls.Findings)
		}
	}
}

// A large workload through the complete pipeline: 8 processors, long
// segment chains, thousands of events — catches accidental quadratic or
// stack-depth blowups in the graph machinery.
func TestLargePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("large pipeline test skipped in -short mode")
	}
	w := workload.Random(workload.RandomParams{
		Seed: 42, CPUs: 8, Segments: 48, OpsPerSegment: 6,
		SharedLocs: 32, Locks: 4, UnlockedFraction: 0.15,
	})
	r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("large run did not complete")
	}
	tr := trace.FromExecution(r.Exec)
	if tr.NumEvents() < 1000 {
		t.Fatalf("expected a large trace, got %d events", tr.NumEvents())
	}
	a, err := core.Analyze(tr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The detector's structural invariants at scale.
	if (len(a.FirstPartitions) == 0) != (len(a.DataRaces) == 0) {
		t.Fatal("Theorem 4.1 violated at scale")
	}
	for _, ri := range a.DataRaces {
		race := a.Races[ri]
		if a.HBOrdered(race.A, race.B) {
			t.Fatal("ordered pair reported as race at scale")
		}
	}
	// The on-the-fly detector agrees on the coarse race set.
	otf := onthefly.Detect(r.Exec, onthefly.Options{})
	pm := 0
	for _, ri := range a.DataRaces {
		pm += len(a.LowerLevel(a.Races[ri]))
	}
	if (pm == 0) != (otf.RaceCount() == 0) {
		t.Fatalf("detectors disagree at scale: pm=%d otf=%d", pm, otf.RaceCount())
	}
}

// Corrupting any single byte of a binary trace must never produce a
// silently-wrong trace: decoding either fails, or yields a trace that
// still validates (a benign flip, e.g. inside the program name or a PC).
func TestBinaryCodecCorruptionRobust(t *testing.T) {
	w := workload.Figure2()
	r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 3, InitMemory: w.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, trace.FromExecution(r.Exec)); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for pos := 0; pos < len(enc); pos++ {
		for _, flip := range []byte{0x01, 0x80} {
			corrupt := append([]byte(nil), enc...)
			corrupt[pos] ^= flip
			tr, err := trace.Decode(bytes.NewReader(corrupt))
			if err != nil {
				continue // rejected: good
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("pos %d flip %#x: Decode returned an invalid trace: %v", pos, flip, err)
			}
			// Accepted and valid: the analysis must not panic.
			if _, err := core.Analyze(tr, core.Options{SkipValidate: true}); err != nil {
				t.Fatalf("pos %d flip %#x: analysis failed on validated trace: %v", pos, flip, err)
			}
		}
	}
}

// Package crosscheck contains no production code — only differential
// tests that pit the repository's independent components against each
// other on randomly generated workloads:
//
//   - the post-mortem detector vs the on-the-fly detector (same hb1
//     semantics, entirely different algorithms and data structures);
//   - the detector's race-free verdict vs the exact SC verifier (the DRF
//     guarantee, Condition 3.4(1));
//   - the simulator's conservative DefinitelySC witness vs the exact
//     verifier;
//   - the binary and text trace codecs vs each other and vs in-memory
//     analysis.
//
// Any disagreement is a bug in one of the components; the random
// generators make these tests a standing fuzzing harness.
package crosscheck

package crosscheck

import (
	"encoding/json"
	"math/rand"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/graph"
	"weakrace/internal/provenance"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
)

// TestCertificatesAgainstExplicitClosure verifies the witness engine's
// absence certificates against a fully materialized transitive closure
// of the hb1 graph. The engine computes each boundary with two binary
// searches over CondReach; here every boundary is recomputed by linear
// scan over graph.NewReachability, the monotonicity the searches rely
// on is checked event by event, and the racing partner is confirmed to
// lie strictly inside the bracket (i.e. the certificate really proves
// hb1-unorderedness).
func TestCertificatesAgainstExplicitClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	witnessed := 0
	for trial := 0; trial < 40; trial++ {
		w := randomWorkload(rng, true)
		model := weakModel(rng)
		seed := rng.Int63n(1000)
		r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed, InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.RaceFree() {
			continue
		}
		closure := graph.NewReachability(a.HB)
		ws, err := provenance.NewExplainer(a).All()
		if err != nil {
			t.Fatal(err)
		}
		for _, wit := range ws {
			witnessed++
			checkBoundary(t, a, closure, wit.A.Event, wit.Certificate.A, wit.B)
			checkBoundary(t, a, closure, wit.B.Event, wit.Certificate.B, wit.A)
		}
	}
	if witnessed < 20 {
		t.Fatalf("only %d witnesses checked; generator drifted", witnessed)
	}
}

// checkBoundary recomputes the bracket that event x cuts out of the
// partner's processor stream by brute force over the explicit closure
// and compares it with the certificate's boundary.
func checkBoundary(t *testing.T, a *core.Analysis, closure *graph.Reachability, x int, b provenance.Boundary, partner provenance.Side) {
	t.Helper()
	if b.CPU != partner.CPU || b.Partner != partner.Index {
		t.Fatalf("boundary names cpu %d partner %d; racing side is P%d index %d",
			b.CPU, b.Partner, partner.CPU+1, partner.Index)
	}
	stream := a.Trace.PerCPU[b.CPU]
	at := func(j int) int { return int(a.ID(trace.EventRef{CPU: b.CPU, Index: j})) }

	// Brute-force bracket over the explicit closure, plus the
	// monotonicity check: reaching-x must be a prefix of the stream and
	// reached-by-x a suffix, or the engine's binary searches are unsound.
	lastPred, firstSucc := -1, len(stream)
	for j := range stream {
		if closure.Reaches(at(j), x) {
			if j != lastPred+1 {
				t.Fatalf("events reaching %d on P%d are not a prefix: gap before index %d", x, b.CPU+1, j)
			}
			lastPred = j
		}
	}
	for j := len(stream) - 1; j >= 0; j-- {
		if closure.Reaches(x, at(j)) {
			if j != firstSucc-1 {
				t.Fatalf("events reached by %d on P%d are not a suffix: gap after index %d", x, b.CPU+1, j)
			}
			firstSucc = j
		}
	}
	if b.LastPred != lastPred || b.FirstSucc != firstSucc {
		t.Fatalf("certificate bracket (%d, %d) for event %d on P%d; explicit closure says (%d, %d)",
			b.LastPred, b.FirstSucc, x, b.CPU+1, lastPred, firstSucc)
	}
	// The bracket must actually prove the race: the partner strictly
	// inside means neither direction of hb1 orders the pair.
	if !(b.Partner > b.LastPred && b.Partner < b.FirstSucc) {
		t.Fatalf("partner index %d not strictly inside bracket (%d, %d): certificate proves nothing",
			b.Partner, b.LastPred, b.FirstSucc)
	}
	if closure.Ordered(x, at(b.Partner)) {
		t.Fatalf("event %d and partner %d are hb1-ordered; race report is wrong", x, at(b.Partner))
	}
}

// TestWitnessesImplicitVsExplicitAug: the witness engine must produce
// byte-identical explanations whether the analysis ran on the default
// implicit augmented graph or on a materialized G′ — partitions, first
// flags, certificates, and affected-by chains all included.
func TestWitnessesImplicitVsExplicitAug(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	compared := 0
	for trial := 0; trial < 30; trial++ {
		w := randomWorkload(rng, true)
		model := weakModel(rng)
		seed := rng.Int63n(1000)
		r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed, InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.FromExecution(r.Exec)
		imp, err := core.Analyze(tr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exp, err := core.Analyze(tr, core.Options{ExplicitAug: true})
		if err != nil {
			t.Fatal(err)
		}
		impW, err := provenance.NewExplainer(imp).All()
		if err != nil {
			t.Fatal(err)
		}
		expW, err := provenance.NewExplainer(exp).All()
		if err != nil {
			t.Fatal(err)
		}
		impJSON, err := json.Marshal(impW)
		if err != nil {
			t.Fatal(err)
		}
		expJSON, err := json.Marshal(expW)
		if err != nil {
			t.Fatal(err)
		}
		if string(impJSON) != string(expJSON) {
			t.Fatalf("trial %d (%s, %v, seed %d): witnesses differ between implicit and explicit G′:\nimplicit: %s\nexplicit: %s",
				trial, w.Name, model, seed, impJSON, expJSON)
		}
		compared += len(impW)
	}
	if compared < 20 {
		t.Fatalf("only %d witnesses compared; generator drifted", compared)
	}
}

package crosscheck

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/onthefly"
	"weakrace/internal/sim"
	"weakrace/internal/stream"
	"weakrace/internal/telemetry"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// The wrserve acceptance bar: streaming every trace of the 60-trace
// corpus through the daemon at window=∞ must reproduce, byte for byte,
// the race list of the unbounded on-the-fly detector — which the
// differential suite above pins to the post-mortem oracle (every
// post-mortem race present exactly; the converse up to the PC-coarse
// projection). Transitively, the daemon inherits the oracle agreement,
// and this test re-checks the post-mortem inclusion directly against
// the streamed set so a regression in either hop fails here.
func TestStreamedCorpusMatchesPostMortemOracle(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	srv, err := stream.Serve(stream.Options{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	corpus := workload.Corpus(60, 1)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for trial, c := range corpus {
		wg.Add(1)
		go func(trial int, c workload.CorpusEntry) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			r, err := sim.Run(c.Workload.Prog, sim.Config{Model: c.Model, Seed: c.Seed, InitMemory: c.Workload.InitMemory})
			if err != nil {
				t.Error(err)
				return
			}
			sum, err := stream.Send(srv.Addr(), r.Exec, stream.SendOptions{BatchSize: 32})
			if err != nil {
				t.Errorf("trial %d: %v", trial, err)
				return
			}

			// Hop 1: byte-identical to the unbounded on-the-fly detector.
			otf := onthefly.Detect(r.Exec, onthefly.Options{})
			want := make([]string, 0, len(otf.Races))
			for ll := range otf.Races {
				want = append(want, ll.String())
			}
			sort.Strings(want)
			if !reflect.DeepEqual(sum.Races, want) {
				t.Errorf("trial %d (%s, %v, seed %d): streamed races differ from on-the-fly:\n got %v\nwant %v",
					trial, c.Workload.Name, c.Model, c.Seed, sum.Races, want)
				return
			}

			// Hop 2: every post-mortem race is in the streamed set exactly.
			a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			streamed := make(map[string]bool, len(sum.Races))
			for _, race := range sum.Races {
				streamed[race] = true
			}
			for _, ri := range a.DataRaces {
				for _, ll := range a.LowerLevel(a.Races[ri]) {
					if !streamed[ll.Canonical().String()] {
						t.Errorf("trial %d (%s, %v, seed %d): post-mortem race missing from streamed set: %v",
							trial, c.Workload.Name, c.Model, c.Seed, ll.Canonical())
					}
				}
			}
		}(trial, c)
	}
	wg.Wait()

	if got := reg.Counter("stream.streams_closed").Value(); got != 60 {
		t.Fatalf("streams_closed = %d, want 60", got)
	}
	if got := reg.Counter("stream.streams_errored").Value(); got != 0 {
		t.Fatalf("streams_errored = %d, want 0", got)
	}
	if got := reg.Counter("stream.streams_dropped").Value(); got != 0 {
		t.Fatalf("streams_dropped = %d, want 0", got)
	}
}

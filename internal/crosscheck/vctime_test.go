package crosscheck

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/report"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// The vector-clock hb1 path (the default: one topological pass assigns
// every event an O(p) timestamp, ordering queries become epoch compares)
// and the explicit lazy-closure path (Options.ExplicitClosure, the PR-3
// oracle) must produce identical Analysis output on the same 60-trace
// corpus the augmented-graph crosscheck uses: same races, data races,
// partitions, first partitions, partition order — and the rendered
// report byte-identical. On top of the end-to-end pin, every event
// pair's ordering must agree between the timestamp layer and the bitset
// closure, and the per-CPU windows both paths serve to provenance must
// match index for index.
func TestVCTimestampsVsExplicitClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	racyTraces := 0
	for trial := 0; trial < 60; trial++ {
		w := randomWorkload(rng, trial%3 != 0)
		model := weakModel(rng)
		seed := rng.Int63n(1000)
		r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed, InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.FromExecution(r.Exec)
		vc, err := core.Analyze(tr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := core.Analyze(tr, core.Options{ExplicitClosure: true})
		if err != nil {
			t.Fatal(err)
		}
		if vc.HBTime == nil || vc.HBReach != nil {
			t.Fatalf("trial %d: default path did not build the timestamp oracle", trial)
		}
		if cl.HBTime != nil || cl.HBReach == nil {
			t.Fatalf("trial %d: ExplicitClosure did not build the closure oracle", trial)
		}
		if !vc.RaceFree() {
			racyTraces++
		}

		comparePaths(t, trial, w, seed, vc, cl)

		// Event-pair property: the timestamp layer's ordering must equal
		// the explicit closure's on every pair, and the reflexive dispatch
		// helpers must agree with the oracles underneath them.
		n := vc.NumEvents
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				got := vc.HBTime.Reaches(u, v)
				want := cl.HBReach.Reaches(u, v)
				if got != want {
					t.Fatalf("trial %d (%s, %v, seed %d): hb1 %d⇝%d = %v by clocks, %v by closure",
						trial, w.Name, model, seed, u, v, got, want)
				}
				if vc.HBReaches(core.EventID(u), core.EventID(v)) != want ||
					cl.HBReaches(core.EventID(u), core.EventID(v)) != want {
					t.Fatalf("trial %d: HBReaches dispatch diverges from oracle on (%d,%d)", trial, u, v)
				}
			}
		}

		// Window property: both paths must bracket every (event, CPU) pair
		// with the same prefix/suffix indices — the structure the
		// provenance certificates are built from.
		for u := 0; u < n; u++ {
			for cpu := 0; cpu < tr.NumCPUs; cpu++ {
				vp, vs := vc.HBWindow(core.EventID(u), cpu)
				cp, cs := cl.HBWindow(core.EventID(u), cpu)
				if vp != cp || vs != cs {
					t.Fatalf("trial %d: HBWindow(%d, cpu %d) = (%d,%d) by clocks, (%d,%d) by closure",
						trial, u, cpu, vp, vs, cp, cs)
				}
			}
		}
	}
	if racyTraces < 20 {
		t.Fatalf("only %d racy traces crosschecked; generator drifted", racyTraces)
	}
}

// comparePaths pins two analyses of the same trace to identical output:
// races, data races, partitions (Component masked — SCC numbering may
// differ), first partitions, the partition order relation, the affect
// relation, and the rendered report bytes.
func comparePaths(t *testing.T, trial int, w *workload.Workload, seed int64, a, b *core.Analysis) {
	t.Helper()
	if !reflect.DeepEqual(a.Races, b.Races) {
		t.Fatalf("trial %d (%s, seed %d): race lists differ:\n%+v\nvs\n%+v",
			trial, w.Name, seed, a.Races, b.Races)
	}
	if !reflect.DeepEqual(a.DataRaces, b.DataRaces) {
		t.Fatalf("trial %d (%s, seed %d): data-race sets differ", trial, w.Name, seed)
	}
	maskComp := func(ps []core.Partition) []core.Partition {
		out := make([]core.Partition, len(ps))
		for i, p := range ps {
			p.Component = 0
			out[i] = p
		}
		return out
	}
	if !reflect.DeepEqual(maskComp(a.Partitions), maskComp(b.Partitions)) {
		t.Fatalf("trial %d (%s, seed %d): partitions differ:\n%+v\nvs\n%+v",
			trial, w.Name, seed, a.Partitions, b.Partitions)
	}
	if !reflect.DeepEqual(a.FirstPartitions, b.FirstPartitions) {
		t.Fatalf("trial %d (%s, seed %d): first partitions differ: %v vs %v",
			trial, w.Name, seed, a.FirstPartitions, b.FirstPartitions)
	}
	for i := range a.Partitions {
		for j := range a.Partitions {
			if got, want := a.PartitionPrecedes(i, j), b.PartitionPrecedes(i, j); got != want {
				t.Fatalf("trial %d (%s, seed %d): PartitionPrecedes(%d,%d) = %v vs %v",
					trial, w.Name, seed, i, j, got, want)
			}
		}
	}
	for _, ri := range a.DataRaces {
		for _, rj := range a.DataRaces {
			if got, want := a.Affects(ri, rj), b.Affects(ri, rj); got != want {
				t.Fatalf("trial %d (%s, seed %d): Affects(%d,%d) = %v vs %v",
					trial, w.Name, seed, ri, rj, got, want)
			}
		}
	}
	var aOut, bOut bytes.Buffer
	if err := report.RenderAnalysis(&aOut, a); err != nil {
		t.Fatal(err)
	}
	if err := report.RenderAnalysis(&bOut, b); err != nil {
		t.Fatal(err)
	}
	if aOut.String() != bOut.String() {
		t.Fatalf("trial %d (%s, seed %d): rendered reports differ:\n--- a ---\n%s\n--- b ---\n%s",
			trial, w.Name, seed, aOut.String(), bOut.String())
	}
}

// The same pin on bigger random workloads than the corpus draws —
// hundreds of events, denser race populations — where the timestamp
// layer's SCC handling and the sweep's window arithmetic see real
// stress. Pair coverage is sampled (full n² on every trace is covered
// above); the Analysis comparison is exact.
func TestVCTimestampsVsExplicitClosureLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 6; trial++ {
		w := workload.Random(workload.RandomParams{
			Seed:             rng.Int63(),
			CPUs:             3 + rng.Intn(3),
			Segments:         10 + rng.Intn(8),
			OpsPerSegment:    3 + rng.Intn(3),
			Locks:            1 + rng.Intn(3),
			UnlockedFraction: 0.3,
			SharedFraction:   0.6,
		})
		r, err := sim.Run(w.Prog, sim.Config{Model: weakModel(rng), Seed: rng.Int63n(1000), InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.FromExecution(r.Exec)
		vc, err := core.Analyze(tr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := core.Analyze(tr, core.Options{ExplicitClosure: true})
		if err != nil {
			t.Fatal(err)
		}
		comparePaths(t, trial, w, r.Exec.Seed, vc, cl)
		n := vc.NumEvents
		for q := 0; q < 20000; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if got, want := vc.HBTime.Reaches(u, v), cl.HBReach.Reaches(u, v); got != want {
				t.Fatalf("trial %d: hb1 %d⇝%d = %v by clocks, %v by closure", trial, u, v, got, want)
			}
		}
	}
}

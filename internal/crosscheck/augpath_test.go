package crosscheck

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/report"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
)

// The implicit augmented-graph path (the default: overlay Tarjan over
// hb1 ⊕ race-partner lists, condensation-level reachability) and the
// explicit §4.2 path (materialize G′, full transitive closure) must
// produce identical Analysis output: same races, same partitions, same
// first partitions, same partition order, same affect relation. SCC
// component *ids* are the one legitimate difference — Tarjan's numbering
// follows adjacency order — so partitions are compared with Component
// masked and the order relation is compared through PartitionPrecedes.
func TestImplicitVsExplicitAugmentedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	racyTraces := 0
	for trial := 0; trial < 60; trial++ {
		w := randomWorkload(rng, trial%3 != 0)
		model := weakModel(rng)
		seed := rng.Int63n(1000)
		r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed, InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.FromExecution(r.Exec)
		imp, err := core.Analyze(tr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exp, err := core.Analyze(tr, core.Options{ExplicitAug: true})
		if err != nil {
			t.Fatal(err)
		}
		if !imp.RaceFree() {
			racyTraces++
		}

		ctx := func() string {
			return w.Name + " seed " + model.String()
		}
		if !reflect.DeepEqual(imp.Races, exp.Races) {
			t.Fatalf("trial %d (%s, seed %d): race lists differ:\nimplicit: %+v\nexplicit: %+v",
				trial, ctx(), seed, imp.Races, exp.Races)
		}
		if !reflect.DeepEqual(imp.DataRaces, exp.DataRaces) {
			t.Fatalf("trial %d (%s, seed %d): data-race sets differ", trial, ctx(), seed)
		}
		maskComp := func(ps []core.Partition) []core.Partition {
			out := make([]core.Partition, len(ps))
			for i, p := range ps {
				p.Component = 0
				out[i] = p
			}
			return out
		}
		if !reflect.DeepEqual(maskComp(imp.Partitions), maskComp(exp.Partitions)) {
			t.Fatalf("trial %d (%s, seed %d): partitions differ:\nimplicit: %+v\nexplicit: %+v",
				trial, ctx(), seed, imp.Partitions, exp.Partitions)
		}
		if !reflect.DeepEqual(imp.FirstPartitions, exp.FirstPartitions) {
			t.Fatalf("trial %d (%s, seed %d): first partitions differ: %v vs %v",
				trial, ctx(), seed, imp.FirstPartitions, exp.FirstPartitions)
		}
		for i := range imp.Partitions {
			for j := range imp.Partitions {
				if got, want := imp.PartitionPrecedes(i, j), exp.PartitionPrecedes(i, j); got != want {
					t.Fatalf("trial %d (%s, seed %d): PartitionPrecedes(%d,%d) = %v implicit, %v explicit",
						trial, ctx(), seed, i, j, got, want)
				}
			}
		}
		// The event-level affect relation (Definition 3.3) must agree too —
		// it reads the condensation oracle on the implicit path and the
		// full closure on the explicit one.
		for _, ri := range imp.DataRaces {
			for _, rj := range imp.DataRaces {
				if got, want := imp.Affects(ri, rj), exp.Affects(ri, rj); got != want {
					t.Fatalf("trial %d (%s, seed %d): Affects(%d,%d) = %v implicit, %v explicit",
						trial, ctx(), seed, ri, rj, got, want)
				}
			}
		}
		// And the rendered reports, the user-visible artifact, must be
		// byte-identical.
		var impOut, expOut bytes.Buffer
		if err := report.RenderAnalysis(&impOut, imp); err != nil {
			t.Fatal(err)
		}
		if err := report.RenderAnalysis(&expOut, exp); err != nil {
			t.Fatal(err)
		}
		if impOut.String() != expOut.String() {
			t.Fatalf("trial %d (%s, seed %d): rendered reports differ:\n--- implicit ---\n%s\n--- explicit ---\n%s",
				trial, ctx(), seed, impOut.String(), expOut.String())
		}
	}
	if racyTraces < 20 {
		t.Fatalf("only %d racy traces crosschecked; generator drifted", racyTraces)
	}
}

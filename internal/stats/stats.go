// Package stats provides the small set of summary statistics the
// experiment tables report: mean, standard deviation, min/max, and
// percentiles over float64 samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	return s
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 1) of an ascending
// sorted sample, with linear interpolation between ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f max=%.2f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.Max)
}

// Ratio safely divides a by b, returning NaN when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almost(s.Mean, 5) {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if !almost(s.StdDev, math.Sqrt(32.0/7.0)) {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary wrong")
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.StdDev != 0 || s.P50 != 3 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("single summary wrong: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestRatio(t *testing.T) {
	if !almost(Ratio(6, 3), 2) {
		t.Fatal("ratio wrong")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("division by zero must be NaN")
	}
}

func TestString(t *testing.T) {
	if Summarize([]float64{1, 2}).String() == "" {
		t.Fatal("empty string")
	}
}

// Property: min ≤ p50 ≤ p90 ≤ max and mean within [min, max].
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.Max &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

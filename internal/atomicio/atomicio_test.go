package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileSuccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("content = %q", got)
	}
}

// An encode error must leave the destination exactly as it was — the
// previous (good) content survives and no temp litter remains.
func TestWriteFileFailureKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("old good content"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("encode exploded")
	err := WriteFile(path, func(w io.Writer) error {
		w.Write([]byte("half a new fi")) // partial write, then failure
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the encode error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old good content" {
		t.Fatalf("destination clobbered: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestWriteFileNewFileFailureLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.bin")
	WriteFile(path, func(w io.Writer) error { return errors.New("no") })
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed write created the destination: %v", err)
	}
}

func TestWriteFileRelativePath(t *testing.T) {
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if err := WriteFile("rel.bin", func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("rel.bin"); err != nil {
		t.Fatal(err)
	}
}

// Package atomicio writes files atomically: content lands in a temporary
// file in the destination's directory and is renamed into place only
// after a successful encode and close. A crash or encode error mid-write
// can therefore never leave a truncated artifact behind — the failure
// mode that used to poison campaigns when a half-written trace later
// failed to decode.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile writes to path via fn, atomically. fn receives a buffered
// view of a temporary file created in path's directory (same filesystem,
// so the final rename is atomic on POSIX systems). On any error the
// temporary file is removed and the destination is untouched.
func WriteFile(path string, fn func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := fn(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("atomicio: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: %w", err)
	}
	return nil
}

package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Request tracing: the cheap always-on breadcrumbs the streaming daemon
// and the campaign engine keep per stream (or per seed), tail-sampled so
// only the executions worth debugging retain their full span timelines.
//
// A TraceID is stamped by the client (wrclient) and travels in the WRS1
// header; the server continues the trace as per-batch spans (enqueue
// wait, feed, retire, race-emit) recorded into a StreamTrace — a small
// single-writer span buffer whose appends cost one uncontended mutex
// acquisition and one slice append. When the stream finishes, the
// Tracer's tail sampler decides its fate: anomalous streams (racy,
// errored, truncated, or in the slowest decile of recent completions)
// keep their full trace for /trace/{stream}; everything else is dropped,
// surviving only in the aggregate batch-latency histograms. This is the
// Ronsse–De Bosschere trade applied to observability itself: cheap
// always-on recording, deep capture only for the executions that matter.

// TraceID is a client-stamped 64-bit trace identifier correlating one
// execution across wrclient, the WRS1 wire header, and the server's
// span buffer. Zero means the client did not stamp one.
type TraceID uint64

// String renders the ID the way traces are grepped for: 16 hex digits.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// SpanRec is one completed span in a stream's trace: a named interval,
// tagged with the batch it belongs to (-1 for stream-level spans),
// relative to the trace's start.
type SpanRec struct {
	Name    string `json:"name"`
	Batch   int    `json:"batch"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// TraceOutcome is what the tail sampler judges a finished trace by.
type TraceOutcome struct {
	Racy      bool `json:"racy"`
	Errored   bool `json:"errored"`
	Truncated bool `json:"truncated"`
	// Slow is filled by the sampler: the trace's total duration fell in
	// the slowest decile of recent completions.
	Slow bool `json:"slow"`
	// DurNS is the trace's total wall-clock duration, filled at Finish.
	DurNS int64 `json:"dur_ns"`
}

// StreamTrace is one execution's span buffer. The owner (the stream's
// pinned worker, or the campaign worker running the seed) appends spans;
// concurrent readers (/trace/{key} on a live stream) take snapshots
// under the same mutex. A nil *StreamTrace is the "off" state: every
// method no-ops, so call sites need no tracing-enabled checks.
type StreamTrace struct {
	Key        string
	TraceID    TraceID
	ParentSpan uint64
	Program    string
	Model      string
	Seed       int64

	start    time.Time
	maxSpans int

	mu       sync.Mutex
	spans    []SpanRec
	dropped  int
	finished bool
	outcome  TraceOutcome
}

// Start returns the trace's start time (zero on a nil trace).
func (t *StreamTrace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Record appends one completed span that started at start and lasted d.
// Spans past the per-trace cap are counted, not stored.
func (t *StreamTrace) Record(name string, batch int, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	rec := SpanRec{Name: name, Batch: batch, StartNS: int64(start.Sub(t.start)), DurNS: int64(d)}
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, rec)
	}
	t.mu.Unlock()
}

// Mark appends a zero-duration marker span at now — the form retire and
// race-emit events take inside a batch.
func (t *StreamTrace) Mark(name string, batch int) {
	if t == nil {
		return
	}
	t.Record(name, batch, time.Now(), 0)
}

// TraceSnapshot is a point-in-time copy of a StreamTrace, safe to
// serialize while the owner keeps appending.
type TraceSnapshot struct {
	Key        string       `json:"key"`
	TraceID    string       `json:"trace_id"`
	ParentSpan uint64       `json:"parent_span,omitempty"`
	Program    string       `json:"program"`
	Model      string       `json:"model"`
	Seed       int64        `json:"seed"`
	Finished   bool         `json:"finished"`
	Outcome    TraceOutcome `json:"outcome"`
	Spans      []SpanRec    `json:"spans"`
	Dropped    int          `json:"spans_dropped,omitempty"`
}

// Snapshot copies the trace's current state.
func (t *StreamTrace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceSnapshot{
		Key:        t.Key,
		TraceID:    t.TraceID.String(),
		ParentSpan: t.ParentSpan,
		Program:    t.Program,
		Model:      t.Model,
		Seed:       t.Seed,
		Finished:   t.finished,
		Outcome:    t.outcome,
		Spans:      append([]SpanRec(nil), t.spans...),
		Dropped:    t.dropped,
	}
}

// TracerOptions tunes the tail sampler.
type TracerOptions struct {
	// MaxSpans caps one trace's span buffer. Default 4096.
	MaxSpans int
	// Keep bounds how many finished traces are retained. Default 128.
	Keep int
	// SlowWindow is how many recent completion durations the slowest-
	// decile threshold is computed over. Default 128.
	SlowWindow int
	// SlowQuantile is the keep threshold on that window: a completion at
	// or above this quantile is "slow" and kept. Default 0.9 (the
	// slowest decile).
	SlowQuantile float64
	// MinSlowSamples is how many completions must be seen before
	// slowness alone keeps a trace (the first few streams are always
	// "slowest so far"). Default 16.
	MinSlowSamples int
	// Registry receives trace.* counters (started, kept, dropped,
	// spans_dropped). Nil skips the accounting.
	Registry *Registry
}

func (o TracerOptions) withDefaults() TracerOptions {
	if o.MaxSpans <= 0 {
		o.MaxSpans = 4096
	}
	if o.Keep <= 0 {
		o.Keep = 128
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = 128
	}
	if o.SlowQuantile <= 0 || o.SlowQuantile >= 1 {
		o.SlowQuantile = 0.9
	}
	if o.MinSlowSamples <= 0 {
		o.MinSlowSamples = 16
	}
	return o
}

// Tracer owns the live and tail-sampled traces of one process: the
// streaming daemon has one for its streams, a campaign one for its
// seeds. A nil *Tracer is the "tracing off" state — Begin returns a nil
// *StreamTrace and the whole plane costs one nil check per stream.
type Tracer struct {
	opts TracerOptions

	mu        sync.Mutex
	live      map[string]*StreamTrace
	kept      map[string]*StreamTrace
	keptOrder []string // FIFO eviction order for kept
	durs      []int64  // ring of recent completion durations
	dursNext  int
	dursSeen  int
}

// NewTracer returns a Tracer with the given sampling policy.
func NewTracer(opts TracerOptions) *Tracer {
	opts = opts.withDefaults()
	return &Tracer{
		opts: opts,
		live: map[string]*StreamTrace{},
		kept: map[string]*StreamTrace{},
		durs: make([]int64, 0, opts.SlowWindow),
	}
}

// Begin opens a trace for key (the server's stream id or the campaign's
// seed label) and registers it as live. Nil receiver returns nil.
func (tr *Tracer) Begin(key string, id TraceID, parent uint64, program, model string, seed int64) *StreamTrace {
	if tr == nil {
		return nil
	}
	st := &StreamTrace{
		Key: key, TraceID: id, ParentSpan: parent,
		Program: program, Model: model, Seed: seed,
		start: time.Now(), maxSpans: tr.opts.MaxSpans,
	}
	tr.mu.Lock()
	tr.live[key] = st
	tr.mu.Unlock()
	if reg := tr.opts.Registry; reg != nil && reg.Enabled() {
		reg.Counter("trace.streams_traced").Inc()
	}
	return st
}

// Finish closes the trace, runs the tail sampler, and reports whether
// the full trace was kept. The trace-level "stream" span and the
// outcome are recorded either way.
func (tr *Tracer) Finish(st *StreamTrace, oc TraceOutcome) (kept bool) {
	if tr == nil || st == nil {
		return false
	}
	dur := time.Since(st.start)
	oc.DurNS = int64(dur)

	tr.mu.Lock()
	// Slowest-decile judgment over the recent-completions window. The
	// current duration joins the window first, so a lone early outlier
	// still sees itself at the top of the distribution.
	if len(tr.durs) < tr.opts.SlowWindow {
		tr.durs = append(tr.durs, int64(dur))
	} else {
		tr.durs[tr.dursNext] = int64(dur)
		tr.dursNext = (tr.dursNext + 1) % tr.opts.SlowWindow
	}
	tr.dursSeen++
	if tr.dursSeen >= tr.opts.MinSlowSamples && int64(dur) >= tr.slowThresholdLocked() {
		oc.Slow = true
	}
	kept = oc.Racy || oc.Errored || oc.Truncated || oc.Slow
	delete(tr.live, st.Key)
	if kept {
		if _, dup := tr.kept[st.Key]; !dup {
			tr.keptOrder = append(tr.keptOrder, st.Key)
		}
		tr.kept[st.Key] = st
		for len(tr.keptOrder) > tr.opts.Keep {
			evict := tr.keptOrder[0]
			tr.keptOrder = tr.keptOrder[1:]
			delete(tr.kept, evict)
		}
	}
	tr.mu.Unlock()

	st.mu.Lock()
	st.spans = append(st.spans, SpanRec{Name: "stream", Batch: -1, StartNS: 0, DurNS: int64(dur)})
	st.finished = true
	st.outcome = oc
	spansDropped := st.dropped
	st.mu.Unlock()

	if reg := tr.opts.Registry; reg != nil && reg.Enabled() {
		if kept {
			reg.Counter("trace.kept").Inc()
		} else {
			reg.Counter("trace.sampled_out").Inc()
		}
		if spansDropped > 0 {
			reg.Counter("trace.spans_dropped").Add(int64(spansDropped))
		}
	}
	return kept
}

// slowThresholdLocked computes the SlowQuantile duration of the window.
// Called with tr.mu held; the window is at most SlowWindow entries.
func (tr *Tracer) slowThresholdLocked() int64 {
	sorted := append([]int64(nil), tr.durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted)) * tr.opts.SlowQuantile)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Lookup returns a snapshot of the trace for key — live traces first,
// then the tail-sampled kept set.
func (tr *Tracer) Lookup(key string) (TraceSnapshot, bool) {
	if tr == nil {
		return TraceSnapshot{}, false
	}
	tr.mu.Lock()
	st := tr.live[key]
	if st == nil {
		st = tr.kept[key]
	}
	tr.mu.Unlock()
	if st == nil {
		return TraceSnapshot{}, false
	}
	return st.Snapshot(), true
}

// Keys returns the retrievable trace keys: live ones and kept ones, in
// no particular order.
func (tr *Tracer) Keys() []string {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	keys := make([]string, 0, len(tr.live)+len(tr.kept))
	for k := range tr.live {
		keys = append(keys, k)
	}
	for k := range tr.kept {
		if _, isLive := tr.live[k]; !isLive {
			keys = append(keys, k)
		}
	}
	return keys
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Snapshot is a point-in-time copy of a registry's metrics, ready for
// serialization. Map keys serialize in sorted order (encoding/json), so a
// snapshot of deterministic metric values is byte-for-byte reproducible.
type Snapshot struct {
	Counters map[string]int64         `json:"counters,omitempty"`
	Gauges   map[string]int64         `json:"gauges,omitempty"`
	Phases   map[string]PhaseSnapshot `json:"phases,omitempty"`
}

// PhaseSnapshot summarizes one phase's duration histogram.
type PhaseSnapshot struct {
	Count   int64         `json:"count"`
	TotalNS int64         `json:"total_ns"`
	MinNS   int64         `json:"min_ns"`
	MaxNS   int64         `json:"max_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one nonzero histogram bucket; LeNS is the inclusive
// upper edge in nanoseconds (-1 for the overflow bucket).
type BucketCount struct {
	LeNS  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// Snapshot copies the registry's current metrics.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	phases := make(map[string]*Histogram, len(r.phases))
	for k, v := range r.phases {
		phases[k] = v
	}
	r.mu.RUnlock()

	s := &Snapshot{
		Counters: make(map[string]int64, len(counters)),
		Gauges:   make(map[string]int64, len(gauges)),
		Phases:   make(map[string]PhaseSnapshot, len(phases)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range phases {
		s.Phases[k] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}

// WriteText writes the snapshot in a human-readable form: sorted
// "name value" lines, with phase histograms summarized as count, total,
// and bucket-interpolated p50/p90/p99 tail latencies (plus the exact
// max). Quantiles carry the interpolation error bound documented on
// PhaseSnapshot.Quantile.
func (s *Snapshot) WriteText(w io.Writer) error {
	for _, k := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %-50s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge   %-50s %d\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Phases) {
		p := s.Phases[k]
		if _, err := fmt.Fprintf(w, "phase   %-50s count=%d total=%s p50=%s p90=%s p99=%s max=%s\n",
			k, p.Count, fmtDuration(p.TotalNS), fmtDuration(p.Quantile(0.50)),
			fmtDuration(p.Quantile(0.90)), fmtDuration(p.Quantile(0.99)), fmtDuration(p.MaxNS)); err != nil {
			return err
		}
	}
	return nil
}

// DumpDefault writes the default registry's snapshot as JSON to path, or
// to stdout when path is "-". It is the shared implementation of the
// CLIs' -metrics flag.
func DumpDefault(path string, stdout io.Writer) error {
	snap := Default().Snapshot()
	if path == "-" {
		return snap.WriteJSON(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the content type of the text exposition
// format WritePrometheus emits, for HTTP handlers serving it.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). The mapping from the registry's flat dotted
// names is mechanical and loss-free:
//
//   - "detect.races" becomes weakrace_detect_races (dots to underscores,
//     everything prefixed weakrace_ to namespace the exporter);
//   - label suffixes transfer: "sim.steps{model=WO}" becomes
//     weakrace_sim_steps{model="WO"};
//   - counters and gauges render as their Prometheus kind;
//   - each phase histogram renders as weakrace_<name>_seconds with the
//     registry's fixed bucket ladder mapped 1:1 to cumulative `le`
//     edges in seconds (plus +Inf), a _sum in seconds, and a _count.
//
// Output is sorted by metric name, so a snapshot of deterministic
// values renders byte-for-byte reproducibly.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	if err := writePromScalars(w, s.Counters, "counter"); err != nil {
		return err
	}
	if err := writePromScalars(w, s.Gauges, "gauge"); err != nil {
		return err
	}
	return writePromHistograms(w, s.Phases)
}

// promSeries is one exposition series: the sanitized base name plus its
// rendered label pairs (without braces), e.g. `model="WO"`.
type promSeries struct {
	labels string
	key    string // original registry key, for value lookup
}

// groupPromSeries buckets registry keys by sanitized base name and
// returns the bases in sorted order, each with its series sorted by
// label string, so TYPE headers are emitted exactly once per name.
func groupPromSeries(keys []string) (bases []string, series map[string][]promSeries) {
	series = map[string][]promSeries{}
	for _, k := range keys {
		base, labels := promName(k)
		series[base] = append(series[base], promSeries{labels: labels, key: k})
	}
	bases = make([]string, 0, len(series))
	for b := range series {
		bases = append(bases, b)
		sort.Slice(series[b], func(i, j int) bool { return series[b][i].labels < series[b][j].labels })
	}
	sort.Strings(bases)
	return bases, series
}

func writePromScalars(w io.Writer, values map[string]int64, kind string) error {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	bases, series := groupPromSeries(keys)
	for _, base := range bases {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind); err != nil {
			return err
		}
		for _, sr := range series[base] {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", base, braced(sr.labels), values[sr.key]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistograms(w io.Writer, phases map[string]PhaseSnapshot) error {
	keys := make([]string, 0, len(phases))
	for k := range phases {
		keys = append(keys, k)
	}
	bases, series := groupPromSeries(keys)
	for _, base := range bases {
		name := base + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, sr := range series[base] {
			p := phases[sr.key]
			// Cumulative counts over the registry's full ladder: every
			// scrape exposes the same `le` set in ascending order.
			var cum int64
			bi := 0
			for i := 0; i < NumBuckets-1; i++ {
				edge := int64(BucketBound(i))
				for bi < len(p.Buckets) && p.Buckets[bi].LeNS >= 0 && p.Buckets[bi].LeNS <= edge {
					cum += p.Buckets[bi].Count
					bi++
				}
				le := strconv.FormatFloat(float64(edge)/1e9, 'g', -1, 64)
				if err := writePromBucket(w, name, sr.labels, le, cum); err != nil {
					return err
				}
			}
			if err := writePromBucket(w, name, sr.labels, "+Inf", p.Count); err != nil {
				return err
			}
			sum := strconv.FormatFloat(float64(p.TotalNS)/1e9, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(sr.labels), sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braced(sr.labels), p.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromBucket(w io.Writer, name, labels, le string, cum int64) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum)
	return err
}

// promName splits a registry key into a sanitized exposition name and
// its rendered label pairs: `sim.steps{model=WO}` returns
// ("weakrace_sim_steps", `model="WO"`).
func promName(key string) (base, labels string) {
	raw := key
	if i := strings.IndexByte(key, '{'); i >= 0 {
		raw = key[:i]
		labels = promLabels(strings.TrimSuffix(key[i+1:], "}"))
	}
	return "weakrace_" + sanitizePromName(raw), labels
}

// promLabels rewrites `a=1,b=2` as `a="1",b="2"` with label names
// sanitized and values escaped per the exposition format.
func promLabels(s string) string {
	var sb strings.Builder
	for i, pair := range strings.Split(s, ",") {
		if i > 0 {
			sb.WriteByte(',')
		}
		name, val, _ := strings.Cut(pair, "=")
		sb.WriteString(sanitizePromName(name))
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(val))
	}
	return sb.String()
}

// sanitizePromName maps a name component into the exposition format's
// [a-zA-Z0-9_:] alphabet; everything else becomes '_'.
func sanitizePromName(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

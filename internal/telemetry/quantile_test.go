package telemetry

import (
	"testing"
	"time"
)

func TestQuantileEmpty(t *testing.T) {
	var p PhaseSnapshot
	if got := p.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond)
	p := h.snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := p.Quantile(q); got != 3000 {
			t.Fatalf("Quantile(%v) = %d, want 3000 (min==max pins every quantile)", q, got)
		}
	}
}

// TestQuantileInterpolation pins the linear interpolation on a
// hand-built two-bucket distribution: 100 observations in (min=500,
// le=1000], 100 in (1000, le=4000] with max=4000.
func TestQuantileInterpolation(t *testing.T) {
	p := PhaseSnapshot{
		Count: 200, MinNS: 500, MaxNS: 4000,
		Buckets: []BucketCount{{LeNS: 1000, Count: 100}, {LeNS: 4000, Count: 100}},
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 500},     // exact: the recorded min
		{0.25, 750},  // halfway into the first bucket, tightened to start at min
		{0.5, 1000},  // the shared bucket edge — exact
		{0.75, 2500}, // halfway into the second bucket
		{1, 4000},    // exact: the recorded max
	}
	for _, c := range cases {
		if got := p.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	// Out-of-range q clamps.
	if got := p.Quantile(-1); got != 500 {
		t.Errorf("Quantile(-1) = %d, want 500", got)
	}
	if got := p.Quantile(2); got != 4000 {
		t.Errorf("Quantile(2) = %d, want 4000", got)
	}
}

// TestQuantileOverflowBucket: observations past the ladder land in the
// overflow bucket (le_ns = -1); its upper edge is the recorded max.
func TestQuantileOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Second) // beyond the ~4.3s top edge
	h.Observe(20 * time.Second)
	p := h.snapshot()
	if len(p.Buckets) != 1 || p.Buckets[0].LeNS != -1 {
		t.Fatalf("expected a single overflow bucket, got %+v", p.Buckets)
	}
	if got := p.Quantile(1); got != int64(20*time.Second) {
		t.Fatalf("Quantile(1) = %d, want 20s", got)
	}
	if got := p.Quantile(0); got != int64(10*time.Second) {
		t.Fatalf("Quantile(0) = %d, want 10s", got)
	}
	// Interior quantiles interpolate between min and max.
	mid := p.Quantile(0.5)
	if mid < int64(10*time.Second) || mid > int64(20*time.Second) {
		t.Fatalf("Quantile(0.5) = %d, outside [10s, 20s]", mid)
	}
}

// TestQuantileMonotone: quantiles never decrease in q, across a spread
// of real observations.
func TestQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 17 * time.Microsecond)
	}
	p := h.snapshot()
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := p.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %d < previous %d", q, v, prev)
		}
		prev = v
	}
	if p.Quantile(1) != p.MaxNS || p.Quantile(0) != p.MinNS {
		t.Fatalf("endpoints not exact: q0=%d min=%d q1=%d max=%d",
			p.Quantile(0), p.MinNS, p.Quantile(1), p.MaxNS)
	}
}

func TestCurrentPhaseNesting(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	if got := r.CurrentPhase(); got != "" {
		t.Fatalf("idle CurrentPhase = %q", got)
	}
	outer := r.StartSpan("outer")
	inner := r.StartSpan("inner")
	if got := r.CurrentPhase(); got != "inner" {
		t.Fatalf("CurrentPhase = %q, want inner", got)
	}
	inner.End()
	if got := r.CurrentPhase(); got != "outer" {
		t.Fatalf("CurrentPhase after inner end = %q, want outer", got)
	}
	outer.End()
	if got := r.CurrentPhase(); got != "" {
		t.Fatalf("CurrentPhase after all spans = %q, want \"\"", got)
	}
}

func TestSpanHook(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	var names []string
	r.SetSpanHook(func(name string, d time.Duration) {
		if d < 0 {
			t.Errorf("hook got negative duration for %s", name)
		}
		names = append(names, name)
	})
	r.StartSpan("a").End()
	r.StartSpan("b").End()
	r.SetSpanHook(nil)
	r.StartSpan("c").End()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("hook observed %v, want [a b]", names)
	}
	// The hook survives Reset: it is wiring, not data.
	r.SetSpanHook(func(name string, d time.Duration) { names = append(names, name) })
	r.Reset()
	r.StartSpan("d").End()
	if names[len(names)-1] != "d" {
		t.Fatalf("hook did not survive Reset: %v", names)
	}
}

package telemetry

// Delta returns the change from prev to s: the building block for rate
// columns ("seeds/sec since the last scrape") in the observability
// plane's dashboard and for before/after counter accounting in bench
// scenarios.
//
// Semantics per metric kind:
//
//   - Counters subtract. A counter that went backwards (the registry was
//     Reset between the snapshots — counters never decrement otherwise)
//     is treated as restarted from zero: the delta is the current value.
//   - Gauges are last-value metrics; the delta snapshot carries the
//     current value unchanged.
//   - Phases subtract count, total, and per-bucket counts (bucket edges
//     align because both snapshots share the registry's fixed ladder).
//     Min/Max describe only the full history, not the window, so the
//     delta keeps the current cumulative min/max — Quantile on a delta
//     phase is therefore window-accurate to bucket resolution, with the
//     first/last-bucket tightening coming from cumulative bounds. A
//     phase whose count went backwards restarts like a counter.
//
// Keys present only in prev are dropped (they no longer exist after a
// reset); keys present only in s delta against zero. A nil prev returns
// a copy of s.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	d := &Snapshot{
		Counters: make(map[string]int64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
		Phases:   make(map[string]PhaseSnapshot, len(s.Phases)),
	}
	for k, cur := range s.Counters {
		dv := cur
		if prev != nil {
			if old, ok := prev.Counters[k]; ok && old <= cur {
				dv = cur - old
			}
		}
		d.Counters[k] = dv
	}
	for k, cur := range s.Gauges {
		d.Gauges[k] = cur
	}
	for k, cur := range s.Phases {
		var old PhaseSnapshot
		if prev != nil {
			if p, ok := prev.Phases[k]; ok && p.Count <= cur.Count {
				old = p
			}
		}
		d.Phases[k] = phaseDelta(cur, old)
	}
	return d
}

// phaseDelta subtracts old's cumulative counts from cur's. old is the
// zero value for the restart/fresh cases, making this a plain copy.
func phaseDelta(cur, old PhaseSnapshot) PhaseSnapshot {
	out := PhaseSnapshot{
		Count:   cur.Count - old.Count,
		TotalNS: cur.TotalNS - old.TotalNS,
		MinNS:   cur.MinNS,
		MaxNS:   cur.MaxNS,
	}
	if out.TotalNS < 0 {
		// A same-count snapshot pair cannot lose total time; guard anyway
		// so a torn pair never renders a negative duration.
		out.TotalNS = 0
	}
	prevCount := make(map[int64]int64, len(old.Buckets))
	for _, b := range old.Buckets {
		prevCount[b.LeNS] = b.Count
	}
	for _, b := range cur.Buckets {
		n := b.Count - prevCount[b.LeNS]
		if n > 0 {
			out.Buckets = append(out.Buckets, BucketCount{LeNS: b.LeNS, Count: n})
		}
	}
	return out
}

package telemetry

import (
	"testing"
	"time"
)

func TestTraceIDString(t *testing.T) {
	if got := TraceID(0xdeadbeef).String(); got != "00000000deadbeef" {
		t.Fatalf("TraceID.String() = %q", got)
	}
}

func TestNilStreamTraceNoOps(t *testing.T) {
	var st *StreamTrace
	st.Record("batch.feed", 0, time.Now(), time.Millisecond) // must not panic
	st.Mark("batch.retire", 1)
	if !st.Start().IsZero() {
		t.Fatal("nil trace has a start time")
	}
	if snap := st.Snapshot(); len(snap.Spans) != 0 {
		t.Fatalf("nil trace snapshot has %d spans", len(snap.Spans))
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	st := tr.Begin("1", 7, 0, "p", "WO", 1)
	if st != nil {
		t.Fatal("nil tracer returned a trace")
	}
	if kept := tr.Finish(st, TraceOutcome{Racy: true}); kept {
		t.Fatal("nil tracer kept a trace")
	}
	if _, ok := tr.Lookup("1"); ok {
		t.Fatal("nil tracer resolved a key")
	}
	if keys := tr.Keys(); keys != nil {
		t.Fatalf("nil tracer has keys %v", keys)
	}
}

func TestStreamTraceRecordAndSnapshot(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	st := tr.Begin("42", TraceID(0xabc), 9, "prog", "WO", 7)
	st.Record("batch.wait", 0, st.Start(), 2*time.Millisecond)
	st.Record("batch.feed", 0, st.Start().Add(2*time.Millisecond), 3*time.Millisecond)
	st.Mark("batch.retire", 0)

	snap, ok := tr.Lookup("42")
	if !ok {
		t.Fatal("live trace not resolvable")
	}
	if snap.Finished {
		t.Fatal("live trace claims finished")
	}
	if snap.TraceID != TraceID(0xabc).String() || snap.ParentSpan != 9 {
		t.Fatalf("trace context = %s/%d", snap.TraceID, snap.ParentSpan)
	}
	if snap.Program != "prog" || snap.Model != "WO" || snap.Seed != 7 {
		t.Fatalf("identity = %s/%s/%d", snap.Program, snap.Model, snap.Seed)
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(snap.Spans))
	}
	if snap.Spans[1].Name != "batch.feed" || snap.Spans[1].DurNS != int64(3*time.Millisecond) {
		t.Fatalf("feed span = %+v", snap.Spans[1])
	}
	if snap.Spans[2].DurNS != 0 {
		t.Fatalf("marker span has duration %d", snap.Spans[2].DurNS)
	}
}

func TestTraceSpanCapCountsDropped(t *testing.T) {
	tr := NewTracer(TracerOptions{MaxSpans: 2})
	st := tr.Begin("1", 1, 0, "p", "WO", 0)
	for i := 0; i < 5; i++ {
		st.Mark("batch.feed", i)
	}
	snap := st.Snapshot()
	if len(snap.Spans) != 2 || snap.Dropped != 3 {
		t.Fatalf("spans = %d dropped = %d, want 2/3", len(snap.Spans), snap.Dropped)
	}
}

func TestTailSamplingKeepsAnomalousOnly(t *testing.T) {
	tr := NewTracer(TracerOptions{MinSlowSamples: 1 << 30}) // slowness never triggers
	cases := []struct {
		key  string
		oc   TraceOutcome
		want bool
	}{
		{"racy", TraceOutcome{Racy: true}, true},
		{"errored", TraceOutcome{Errored: true}, true},
		{"truncated", TraceOutcome{Errored: true, Truncated: true}, true},
		{"clean", TraceOutcome{}, false},
	}
	for _, c := range cases {
		st := tr.Begin(c.key, 1, 0, "p", "WO", 0)
		if kept := tr.Finish(st, c.oc); kept != c.want {
			t.Errorf("%s: kept = %v, want %v", c.key, kept, c.want)
		}
		_, ok := tr.Lookup(c.key)
		if ok != c.want {
			t.Errorf("%s: retrievable = %v, want %v", c.key, ok, c.want)
		}
	}
}

func TestTailSamplingFinishedOutcome(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	st := tr.Begin("5", 1, 0, "p", "WO", 0)
	tr.Finish(st, TraceOutcome{Racy: true})
	snap, ok := tr.Lookup("5")
	if !ok {
		t.Fatal("racy trace not kept")
	}
	if !snap.Finished || !snap.Outcome.Racy || snap.Outcome.DurNS <= 0 {
		t.Fatalf("outcome = %+v finished = %v", snap.Outcome, snap.Finished)
	}
	// The trace-level span is appended at Finish.
	last := snap.Spans[len(snap.Spans)-1]
	if last.Name != "stream" || last.Batch != -1 {
		t.Fatalf("final span = %+v, want stream/-1", last)
	}
}

func TestTailSamplingSlowestDecile(t *testing.T) {
	tr := NewTracer(TracerOptions{MinSlowSamples: 4, SlowWindow: 64})
	// Seed the window with fast completions.
	for i := 0; i < 8; i++ {
		st := tr.Begin("fast", 1, 0, "p", "WO", 0)
		tr.Finish(st, TraceOutcome{})
	}
	// A completion far above everything in the window must judge slow.
	st := tr.Begin("slow", 1, 0, "p", "WO", 0)
	time.Sleep(20 * time.Millisecond)
	if kept := tr.Finish(st, TraceOutcome{}); !kept {
		t.Fatal("slowest-decile completion was sampled out")
	}
	snap, _ := tr.Lookup("slow")
	if !snap.Outcome.Slow {
		t.Fatalf("outcome = %+v, want Slow", snap.Outcome)
	}
}

func TestKeptTracesEvictFIFO(t *testing.T) {
	tr := NewTracer(TracerOptions{Keep: 2, MinSlowSamples: 1 << 30})
	for _, key := range []string{"a", "b", "c"} {
		st := tr.Begin(key, 1, 0, "p", "WO", 0)
		tr.Finish(st, TraceOutcome{Racy: true})
	}
	if _, ok := tr.Lookup("a"); ok {
		t.Fatal("oldest kept trace not evicted")
	}
	for _, key := range []string{"b", "c"} {
		if _, ok := tr.Lookup(key); !ok {
			t.Fatalf("%s evicted, want kept", key)
		}
	}
	if n := len(tr.Keys()); n != 2 {
		t.Fatalf("keys = %d, want 2", n)
	}
}

func TestTracerCounters(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	tr := NewTracer(TracerOptions{Registry: reg, MinSlowSamples: 1 << 30})
	tr.Finish(tr.Begin("1", 1, 0, "p", "WO", 0), TraceOutcome{Racy: true})
	tr.Finish(tr.Begin("2", 1, 0, "p", "WO", 0), TraceOutcome{})
	if got := reg.Counter("trace.streams_traced").Value(); got != 2 {
		t.Fatalf("streams_traced = %d", got)
	}
	if got := reg.Counter("trace.kept").Value(); got != 1 {
		t.Fatalf("kept = %d", got)
	}
	if got := reg.Counter("trace.sampled_out").Value(); got != 1 {
		t.Fatalf("sampled_out = %d", got)
	}
}

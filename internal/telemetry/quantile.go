package telemetry

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the phase's duration
// distribution, in nanoseconds, from its bucket counts.
//
// The estimator is the standard one for fixed-bucket histograms: find
// the bucket containing the target rank, then interpolate linearly
// inside it. The histogram only knows each observation's bucket, so the
// result is exact at bucket edges and off by at most the containing
// bucket's width in between — for the 4x exponential ladder that bounds
// the relative error by 3x the bucket's lower edge (see DESIGN.md,
// "Observability plane"). The recorded min and max tighten the first
// bucket's lower edge and the last bucket's upper edge (and make q=0
// and q=1 exact).
func (p PhaseSnapshot) Quantile(q float64) int64 {
	if p.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(p.Count)

	var cum int64
	lo := p.MinNS
	for _, b := range p.Buckets {
		hi := b.LeNS
		if hi < 0 || hi > p.MaxNS {
			// Overflow bucket, or an edge beyond the largest observation:
			// everything in here is ≤ max.
			hi = p.MaxNS
		}
		if lo > hi {
			lo = hi
		}
		if float64(cum)+float64(b.Count) >= rank {
			v := float64(hi)
			if b.Count > 0 {
				frac := (rank - float64(cum)) / float64(b.Count)
				v = float64(lo) + frac*float64(hi-lo)
			}
			return clampNS(int64(v), p.MinNS, p.MaxNS)
		}
		cum += b.Count
		lo = b.LeNS
	}
	return p.MaxNS
}

func clampNS(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

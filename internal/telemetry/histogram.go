package telemetry

import (
	"sync"
	"time"
)

// bucketBounds are the histogram's upper bucket edges (inclusive), an
// exponential 4x ladder from 1µs to ~4.3s. A duration d lands in the
// first bucket with d <= bound; anything larger lands in the overflow
// bucket. The ladder covers everything from a single Analyze phase on a
// litmus trace (~µs) to a 500-seed campaign (~s).
var bucketBounds = func() []time.Duration {
	bounds := make([]time.Duration, 12)
	b := time.Microsecond
	for i := range bounds {
		bounds[i] = b
		b *= 4
	}
	return bounds
}()

// NumBuckets is the number of histogram buckets, including the overflow
// bucket.
const NumBuckets = 13

// Histogram aggregates observed durations: count, sum, min, max, and an
// exponential bucket distribution. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [NumBuckets]int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketIndex(d)]++
}

// bucketIndex returns the bucket for d: the first bound with d <= bound,
// or the overflow bucket.
func bucketIndex(d time.Duration) int {
	for i, b := range bucketBounds {
		if d <= b {
			return i
		}
	}
	return NumBuckets - 1
}

// BucketBound returns bucket i's inclusive upper edge; the overflow
// bucket (i == NumBuckets-1) returns a negative sentinel.
func BucketBound(i int) time.Duration {
	if i < len(bucketBounds) {
		return bucketBounds[i]
	}
	return -1
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Snapshot captures the histogram's current state — the single-phase
// form of Registry.Snapshot, for consumers (the watchdog's SLO check)
// that need one phase's quantiles without copying the whole registry.
func (h *Histogram) Snapshot() PhaseSnapshot { return h.snapshot() }

// snapshot captures the histogram under its lock.
func (h *Histogram) snapshot() PhaseSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	ps := PhaseSnapshot{
		Count:   h.count,
		TotalNS: int64(h.sum),
		MinNS:   int64(h.min),
		MaxNS:   int64(h.max),
	}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		ps.Buckets = append(ps.Buckets, BucketCount{LeNS: int64(BucketBound(i)), Count: n})
	}
	return ps
}

package telemetry

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestPrometheusGolden pins the whole exposition for a fixed snapshot:
// name mangling, label transfer, TYPE grouping, the 1:1 bucket ladder
// with cumulative counts, and sorted deterministic output.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("detect.events").Add(8)
	r.Counter("detect.races").Add(3)
	r.Counter(Name("sim.steps", "model", "SC")).Add(50)
	r.Counter(Name("sim.steps", "model", "WO")).Add(100)
	r.Gauge("detect.scc.max_size").Set(4)
	r.Gauge("campaign.seeds_total").Set(500)
	h := r.Phase("detect.analyze")
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(700 * time.Microsecond)
	h.Observe(10 * time.Second) // overflow bucket

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden (run with -update to accept):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusHistogramCumulative: bucket lines are cumulative and the
// +Inf bucket equals _count, per the exposition format contract.
func TestPrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Phase("p")
	for i := 0; i < 10; i++ {
		h.Observe(2 * time.Microsecond) // le=4e-06 bucket
	}
	h.Observe(time.Second)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`weakrace_p_seconds_bucket{le="1e-06"} 0`,
		`weakrace_p_seconds_bucket{le="4e-06"} 10`,
		`weakrace_p_seconds_bucket{le="0.000256"} 10`,
		`weakrace_p_seconds_bucket{le="1.048576"} 11`,
		`weakrace_p_seconds_bucket{le="+Inf"} 11`,
		`weakrace_p_seconds_count 11`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Edges appear in ascending order.
	if strings.Index(out, `le="1e-06"`) > strings.Index(out, `le="4e-06"`) ||
		strings.Index(out, `le="4.194304"`) > strings.Index(out, `le="+Inf"`) {
		t.Fatalf("le edges out of order:\n%s", out)
	}
}

// TestPrometheusScrapeUnderConcurrentWriters renders snapshots while
// every metric kind is being hammered from other goroutines — the -race
// CI job's guarantee that a live scrape cannot tear the registry.
func TestPrometheusScrapeUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.SetSpanHook(func(string, time.Duration) {})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 2000; n++ {
				r.Counter("c").Inc()
				r.Counter(Name("labeled", "w", "x")).Add(2)
				r.Gauge("g").SetMax(int64(i))
				sp := r.StartSpan("phase.hot")
				r.Phase("phase.cold").Observe(time.Microsecond)
				sp.End()
			}
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		if err := r.Snapshot().WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
		_ = r.CurrentPhase()
	}
	// One last render must include everything the writers touched.
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"weakrace_c ", "weakrace_g ", "weakrace_phase_hot_seconds_count"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("post-stress exposition missing %q", want)
		}
	}
}

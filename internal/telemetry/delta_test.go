package telemetry

import (
	"testing"
	"time"
)

func TestDeltaCounters(t *testing.T) {
	prev := &Snapshot{Counters: map[string]int64{"a": 10, "gone": 7}}
	cur := &Snapshot{Counters: map[string]int64{"a": 25, "new": 3}}
	d := cur.Delta(prev)
	if got := d.Counters["a"]; got != 15 {
		t.Errorf("delta a = %d, want 15", got)
	}
	if got := d.Counters["new"]; got != 3 {
		t.Errorf("delta new = %d, want 3 (absent in prev deltas against zero)", got)
	}
	if _, ok := d.Counters["gone"]; ok {
		t.Error("key present only in prev survived the delta")
	}
}

// TestDeltaCounterReset: a counter that went backwards means the
// registry restarted between snapshots; the delta is the current value,
// never a negative number.
func TestDeltaCounterReset(t *testing.T) {
	prev := &Snapshot{Counters: map[string]int64{"a": 100}}
	cur := &Snapshot{Counters: map[string]int64{"a": 4}}
	if got := cur.Delta(prev).Counters["a"]; got != 4 {
		t.Fatalf("reset delta = %d, want 4", got)
	}
}

func TestDeltaNilPrev(t *testing.T) {
	cur := &Snapshot{
		Counters: map[string]int64{"a": 5},
		Gauges:   map[string]int64{"g": 9},
		Phases:   map[string]PhaseSnapshot{"p": {Count: 2, TotalNS: 100}},
	}
	d := cur.Delta(nil)
	if d.Counters["a"] != 5 || d.Gauges["g"] != 9 || d.Phases["p"].Count != 2 {
		t.Fatalf("nil-prev delta should copy: %+v", d)
	}
}

func TestDeltaGaugesKeepCurrent(t *testing.T) {
	prev := &Snapshot{Gauges: map[string]int64{"g": 100}}
	cur := &Snapshot{Gauges: map[string]int64{"g": 40}}
	if got := cur.Delta(prev).Gauges["g"]; got != 40 {
		t.Fatalf("gauge delta = %d, want last value 40", got)
	}
}

func TestDeltaPhases(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	prev := &Snapshot{Phases: map[string]PhaseSnapshot{"p": h.snapshot()}}
	h.Observe(3 * time.Microsecond)
	h.Observe(40 * time.Millisecond)
	cur := &Snapshot{Phases: map[string]PhaseSnapshot{"p": h.snapshot()}}

	d := cur.Delta(prev).Phases["p"]
	if d.Count != 2 {
		t.Fatalf("phase delta count = %d, want 2", d.Count)
	}
	wantTotal := int64(3*time.Microsecond + 40*time.Millisecond)
	if d.TotalNS != wantTotal {
		t.Fatalf("phase delta total = %d, want %d", d.TotalNS, wantTotal)
	}
	// Exactly the two new observations' buckets, in edge order.
	if len(d.Buckets) != 2 {
		t.Fatalf("phase delta buckets = %+v, want 2 entries", d.Buckets)
	}
	if d.Buckets[0].LeNS >= d.Buckets[1].LeNS && d.Buckets[1].LeNS != -1 {
		t.Fatalf("bucket edges out of order: %+v", d.Buckets)
	}
	if d.Buckets[0].Count != 1 || d.Buckets[1].Count != 1 {
		t.Fatalf("bucket counts = %+v, want one observation each", d.Buckets)
	}
	// Cumulative min/max ride along so Quantile stays clamped.
	if d.MinNS != int64(3*time.Microsecond) || d.MaxNS != int64(40*time.Millisecond) {
		t.Fatalf("min/max = %d/%d", d.MinNS, d.MaxNS)
	}
}

// TestDeltaPhaseReset: a phase whose count went backwards restarts like
// a counter — the delta is the current cumulative state.
func TestDeltaPhaseReset(t *testing.T) {
	prev := &Snapshot{Phases: map[string]PhaseSnapshot{"p": {Count: 50, TotalNS: 500}}}
	var h Histogram
	h.Observe(time.Microsecond)
	cur := &Snapshot{Phases: map[string]PhaseSnapshot{"p": h.snapshot()}}
	d := cur.Delta(prev).Phases["p"]
	if d.Count != 1 || d.TotalNS != int64(time.Microsecond) {
		t.Fatalf("reset phase delta = %+v", d)
	}
}

// TestDeltaRates: the end-to-end use — two registry snapshots bracketing
// work give per-window counts a dashboard divides by wall time.
func TestDeltaRates(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("campaign.seeds_done").Add(100)
	before := r.Snapshot()
	r.Counter("campaign.seeds_done").Add(42)
	after := r.Snapshot()
	if got := after.Delta(before).Counters["campaign.seeds_done"]; got != 42 {
		t.Fatalf("window delta = %d, want 42", got)
	}
}

package telemetry

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins CPU profiling and arranges a heap profile dump for
// a CLI's -cpuprofile/-memprofile flags; the returned stop function
// finishes both. Either path may be empty. Errors during shutdown are
// logged to errlog rather than returned — by then the real work is done.
func StartProfiles(cpuPath, memPath string, errlog io.Writer) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(errlog, "cpuprofile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(errlog, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(errlog, "memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(errlog, "memprofile: %v\n", err)
			}
		}
	}, nil
}

// EnableDefault resets and enables the default registry for one CLI
// invocation and returns a function restoring the disabled state, so
// repeated runs (e.g. from tests) never observe a prior run's metrics.
func EnableDefault() (restore func()) {
	reg := Default()
	reg.Reset()
	reg.SetEnabled(true)
	return func() { reg.SetEnabled(false) }
}

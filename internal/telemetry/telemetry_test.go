package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("same name returned a different counter handle")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.SetMax(3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d after SetMax(3), want 7", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge = %d after SetMax(11), want 11", got)
	}
}

// TestRegistryConcurrency hammers get-or-create, updates, and Snapshot
// from many goroutines; run with -race this validates the registry's
// concurrency story (the campaign workers all report into one registry).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	names := []string{"m.a", "m.b", "m.c"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := names[i%len(names)]
				r.Counter(name).Inc()
				r.Gauge(name).SetMax(int64(i))
				r.Phase(name).Observe(time.Duration(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
				sp := r.StartSpan("span.phase")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, n := range names {
		total += r.Counter(n).Value()
	}
	if total != workers*iters {
		t.Fatalf("counter total = %d, want %d", total, workers*iters)
	}
	if got := r.Phase("span.phase").Count(); got != workers*iters {
		t.Fatalf("span count = %d, want %d", got, workers*iters)
	}
}

// TestHistogramBucketEdges pins the inclusive-upper-edge bucketing rule
// on exact bounds and their neighbors.
func TestHistogramBucketEdges(t *testing.T) {
	for i := 0; i < NumBuckets-1; i++ {
		bound := BucketBound(i)
		if got := bucketIndex(bound); got != i {
			t.Errorf("bucketIndex(%v) = %d, want %d (edge is inclusive)", bound, got, i)
		}
		if got := bucketIndex(bound + 1); got != i+1 {
			t.Errorf("bucketIndex(%v+1ns) = %d, want %d", bound, got, i+1)
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d, want 0", got)
	}
	if got := bucketIndex(time.Hour); got != NumBuckets-1 {
		t.Errorf("bucketIndex(1h) = %d, want overflow bucket %d", got, NumBuckets-1)
	}
	if BucketBound(NumBuckets-1) >= 0 {
		t.Error("overflow bucket bound should be the negative sentinel")
	}

	h := &Histogram{}
	h.Observe(time.Microsecond)     // bucket 0 edge
	h.Observe(time.Microsecond + 1) // bucket 1
	h.Observe(-time.Second)         // clamped to 0, bucket 0
	snap := h.snapshot()
	if snap.Count != 3 || snap.MinNS != 0 || snap.MaxNS != int64(time.Microsecond)+1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	want := []BucketCount{
		{LeNS: int64(time.Microsecond), Count: 2},
		{LeNS: int64(4 * time.Microsecond), Count: 1},
	}
	if len(snap.Buckets) != len(want) || snap.Buckets[0] != want[0] || snap.Buckets[1] != want[1] {
		t.Fatalf("buckets = %+v, want %+v", snap.Buckets, want)
	}
}

// TestSnapshotJSONGolden pins the serialized snapshot format.
func TestSnapshotJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("detect.events").Add(8)
	r.Counter(Name("sim.steps", "model", "WO")).Add(120)
	// Both SCC gauges appear in real snapshots: detect.scc.max_size is the
	// largest SCC of the augmented graph G' per analysis; graph.scc.max_size
	// is the largest SCC over every reachability build (hb1 and G').
	r.Gauge("detect.scc.max_size").Set(3)
	r.Gauge("graph.scc.max_size").Set(4)
	r.Phase("detect.analyze").Observe(2 * time.Microsecond)
	r.Phase("detect.analyze").Observe(3 * time.Microsecond)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "counters": {
    "detect.events": 8,
    "sim.steps{model=WO}": 120
  },
  "gauges": {
    "detect.scc.max_size": 3,
    "graph.scc.max_size": 4
  },
  "phases": {
    "detect.analyze": {
      "count": 2,
      "total_ns": 5000,
      "min_ns": 2000,
      "max_ns": 3000,
      "buckets": [
        {
          "le_ns": 4000,
          "count": 2
        }
      ]
    }
  }
}
`
	if buf.String() != want {
		t.Fatalf("snapshot JSON:\n%s\nwant:\n%s", buf.String(), want)
	}
	// Round-trips as JSON.
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["detect.events"] != 8 {
		t.Fatalf("round-trip lost counters: %+v", back)
	}
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Counter("a.first").Add(2)
	r.Gauge("g.one").Set(9)
	r.Phase("p.one").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a.first") || !strings.Contains(out, "z.last") ||
		!strings.Contains(out, "g.one") || !strings.Contains(out, "count=1") {
		t.Fatalf("text snapshot:\n%s", out)
	}
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}

// TestDisabledSpansAreNoops: a disabled registry hands out the shared
// no-op span and records nothing.
func TestDisabledSpansAreNoops(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("phase.x")
	sp.End()
	if sp != nopSpan {
		t.Fatal("disabled StartSpan did not return the shared no-op span")
	}
	if got := r.Phase("phase.x").Count(); got != 0 {
		t.Fatalf("no-op span recorded %d observations", got)
	}
	r.SetEnabled(true)
	sp = r.StartSpan("phase.x")
	if sp == nopSpan {
		t.Fatal("enabled StartSpan returned the no-op span")
	}
	sp.End()
	if got := r.Phase("phase.x").Count(); got != 1 {
		t.Fatalf("span observations = %d, want 1", got)
	}
}

func TestName(t *testing.T) {
	if got := Name("sim.steps"); got != "sim.steps" {
		t.Fatalf("Name no labels = %q", got)
	}
	if got := Name("sim.steps", "model", "WO"); got != "sim.steps{model=WO}" {
		t.Fatalf("Name = %q", got)
	}
	if got := Name("x", "a", "1", "b", "2"); got != "x{a=1,b=2}" {
		t.Fatalf("Name two labels = %q", got)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.SetEnabled(true)
	r.Reset()
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("counter survived Reset: %d", got)
	}
	if !r.Enabled() {
		t.Fatal("Reset cleared the enabled flag")
	}
}

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("sink full")
	}
	f.n--
	return len(p), nil
}

// TestWritersPropagateWriteErrors: the snapshot serializers surface sink
// errors instead of swallowing them.
func TestWritersPropagateWriteErrors(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.Gauge("g").Set(2)
	r.Phase("p").Observe(time.Millisecond)
	snap := r.Snapshot()
	if err := snap.WriteJSON(&failWriter{}); err == nil {
		t.Error("WriteJSON swallowed the write error")
	}
	for n := 0; n < 3; n++ {
		if err := snap.WriteText(&failWriter{n: n}); err == nil {
			t.Errorf("WriteText with %d allowed writes: error swallowed", n)
		}
	}
	if err := DumpDefault("/nonexistent-dir/x.json", nil); err == nil {
		t.Error("DumpDefault to an unwritable path succeeded")
	}
}

func TestDumpDefault(t *testing.T) {
	reg := Default()
	reg.Reset()
	reg.Counter("dump.test").Add(5)
	var buf bytes.Buffer
	if err := DumpDefault("-", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dump.test": 5`) {
		t.Fatalf("stdout dump:\n%s", buf.String())
	}
	path := t.TempDir() + "/snap.json"
	if err := DumpDefault(path, nil); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["dump.test"] != 5 {
		t.Fatalf("file dump: %+v", snap)
	}
	reg.Reset()
}

// TestSnapshotConcurrentWithUpdates runs a dedicated snapshot reader
// against writers that only touch histograms and spans — the shapes the
// flight recorder and campaign lean on. Under -race this pins the
// Snapshot/update concurrency contract; the assertions pin snapshot
// self-consistency: per-phase bucket sums never exceed the phase count,
// counts never decrease between successive snapshots, and min <= max.
func TestSnapshotConcurrentWithUpdates(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	const writers = 4
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Phase("p.hist").Observe(time.Duration(i%7) * time.Millisecond)
				sp := r.StartSpan("p.span")
				sp.End()
			}
		}(w)
	}
	var lastHist, lastSpan int64
	snapshots := 0
	for lastHist < writers*iters || lastSpan < writers*iters {
		s := r.Snapshot()
		snapshots++
		for name, ph := range s.Phases {
			var bucketSum int64
			for _, b := range ph.Buckets {
				bucketSum += b.Count
			}
			// Count and buckets are read without a global freeze, so a
			// concurrent Observe can be visible in one and not yet the
			// other; each alone must never exceed the writers' total and
			// min/max must stay ordered once anything was observed.
			if ph.Count > writers*iters || bucketSum > writers*iters {
				t.Fatalf("%s: impossible counts: count=%d buckets=%d", name, ph.Count, bucketSum)
			}
			if ph.Count > 0 && ph.MinNS > ph.MaxNS {
				t.Fatalf("%s: min %d > max %d", name, ph.MinNS, ph.MaxNS)
			}
		}
		if c := s.Phases["p.hist"].Count; c < lastHist {
			t.Fatalf("p.hist count went backwards: %d -> %d", lastHist, c)
		} else {
			lastHist = c
		}
		if c := s.Phases["p.span"].Count; c < lastSpan {
			t.Fatalf("p.span count went backwards: %d -> %d", lastSpan, c)
		} else {
			lastSpan = c
		}
	}
	wg.Wait()
	if snapshots < 2 {
		t.Fatalf("only %d snapshots taken; reader never overlapped the writers", snapshots)
	}
	final := r.Snapshot()
	for _, name := range []string{"p.hist", "p.span"} {
		ph := final.Phases[name]
		var bucketSum int64
		for _, b := range ph.Buckets {
			bucketSum += b.Count
		}
		if ph.Count != writers*iters || bucketSum != writers*iters {
			t.Fatalf("%s final: count=%d buckets=%d, want %d", name, ph.Count, bucketSum, writers*iters)
		}
	}
}

// Package telemetry is the measurement substrate of the detection stack:
// zero-dependency counters, gauges, duration histograms, and phase spans,
// collected in a process-wide default registry and serialized as JSON or
// text snapshots.
//
// The pipeline layers (sim, trace, graph, core, onthefly, campaign) report
// into the default registry so that one `-metrics` flag on a CLI exposes
// where time goes and how event/edge/SCC counts scale — the per-phase
// accounting any perf claim against the "fast as the hardware allows"
// north-star must be made from.
//
// Collection is off by default and guarded by one atomic flag: every
// instrumentation site batches its updates behind Registry.Enabled (or
// receives a shared no-op span), so a disabled registry adds no measurable
// overhead to the hot paths.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric (events processed, edges
// added, races found). Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value (or max-value) metric. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax stores v if it exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// SpanHook observes completed spans: it receives the phase name and the
// measured duration after the histogram records it. The observability
// plane (internal/obs) installs one to stream phase completions to
// subscribers; nil (the default) costs one atomic load per span end.
type SpanHook func(name string, d time.Duration)

// Registry holds named metrics. Metric handles are get-or-create by name
// and remain valid for the life of the registry; the same name always
// returns the same handle.
type Registry struct {
	enabled atomic.Bool

	// curSpan tracks the most recently started, still-running span so a
	// live /status endpoint can answer "what is it doing right now".
	// Properly nested spans restore their parent on End; overlapping
	// spans from concurrent goroutines resolve best-effort (some still-
	// running span wins), which is all a status line needs.
	curSpan atomic.Pointer[Span]

	// spanHook, when set, is called at every enabled span's End. It is
	// not cleared by Reset: the hook is plumbing (who listens), not data
	// (what was measured).
	spanHook atomic.Pointer[SpanHook]

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	phases   map[string]*Histogram
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		phases:   map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the pipeline reports into.
func Default() *Registry { return defaultRegistry }

// SetEnabled turns collection on or off. Instrumentation sites consult
// Enabled before doing any work, so a disabled registry costs one atomic
// load per pipeline stage, not per operation.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Phase returns the named duration histogram, creating it if needed.
func (r *Registry) Phase(name string) *Histogram {
	r.mu.RLock()
	h := r.phases[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.phases[name]; h == nil {
		h = &Histogram{}
		r.phases[name] = h
	}
	return h
}

// Reset drops every metric (for tests and fresh campaigns). The enabled
// flag is unchanged.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.phases = map[string]*Histogram{}
}

// Span measures one timed phase. A span from a disabled registry is a
// shared no-op; End on it does nothing.
type Span struct {
	h     *Histogram
	start time.Time
	r     *Registry
	name  string
	prev  *Span // nearest still-running span when this one started
	done  atomic.Bool
}

var nopSpan = &Span{}

// StartSpan begins timing the named phase. The duration is recorded into
// the phase's histogram at End, and the span becomes the registry's
// current phase until it ends (or a nested span supersedes it). The
// prev link skips finished spans so the chain's length is bounded by
// the number of concurrently running spans, not by how many ever ran.
func (r *Registry) StartSpan(name string) *Span {
	if !r.Enabled() {
		return nopSpan
	}
	s := &Span{h: r.Phase(name), start: time.Now(), r: r, name: name}
	p := r.curSpan.Load()
	for p != nil && p.done.Load() {
		p = p.prev
	}
	s.prev = p
	r.curSpan.Store(s)
	return s
}

// End stops the span and records its duration. If a SpanHook is
// installed it observes the completion; the current-phase marker rolls
// back to the nearest enclosing span that is still running, and only if
// this span is still current, so a finished span is never resurrected
// over a running one.
func (s *Span) End() {
	if s.h == nil {
		return
	}
	d := time.Since(s.start)
	s.h.Observe(d)
	s.done.Store(true)
	if s.r.curSpan.Load() == s {
		p := s.prev
		for p != nil && p.done.Load() {
			p = p.prev
		}
		s.r.curSpan.CompareAndSwap(s, p)
	}
	if h := s.r.spanHook.Load(); h != nil {
		(*h)(s.name, d)
	}
}

// SetSpanHook installs (or, with nil, removes) the registry's span
// observer. At most one hook is active; installs overwrite.
func (r *Registry) SetSpanHook(h SpanHook) {
	if h == nil {
		r.spanHook.Store(nil)
		return
	}
	r.spanHook.Store(&h)
}

// AddSpanHook chains h after whatever hook is already installed, so two
// observers (the obs plane's phase events and the watchdog's SLO check)
// can both see completed spans. Not atomic against a concurrent
// Set/AddSpanHook — hooks are wired once at startup. SetSpanHook(nil)
// removes the whole chain.
func (r *Registry) AddSpanHook(h SpanHook) {
	prev := r.spanHook.Load()
	if prev == nil {
		r.SetSpanHook(h)
		return
	}
	first := *prev
	r.SetSpanHook(func(name string, d time.Duration) {
		first(name, d)
		h(name, d)
	})
}

// CurrentPhase returns the name of the most recently started span that
// has not ended, or "" when the registry is idle (or disabled). Best-
// effort under concurrency: with overlapping spans from several
// goroutines it names one of them.
func (r *Registry) CurrentPhase() string {
	if s := r.curSpan.Load(); s != nil {
		return s.name
	}
	return ""
}

// Name composes a metric name with label pairs: Name("sim.steps",
// "model", "WO") = "sim.steps{model=WO}". Labels render in the order
// given; call sites keep them sorted so names stay canonical.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteByte('=')
		sb.WriteString(kv[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fmtDuration(ns int64) string {
	return time.Duration(ns).String()
}

// Package telemetry is the measurement substrate of the detection stack:
// zero-dependency counters, gauges, duration histograms, and phase spans,
// collected in a process-wide default registry and serialized as JSON or
// text snapshots.
//
// The pipeline layers (sim, trace, graph, core, onthefly, campaign) report
// into the default registry so that one `-metrics` flag on a CLI exposes
// where time goes and how event/edge/SCC counts scale — the per-phase
// accounting any perf claim against the "fast as the hardware allows"
// north-star must be made from.
//
// Collection is off by default and guarded by one atomic flag: every
// instrumentation site batches its updates behind Registry.Enabled (or
// receives a shared no-op span), so a disabled registry adds no measurable
// overhead to the hot paths.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric (events processed, edges
// added, races found). Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value (or max-value) metric. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax stores v if it exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry holds named metrics. Metric handles are get-or-create by name
// and remain valid for the life of the registry; the same name always
// returns the same handle.
type Registry struct {
	enabled atomic.Bool

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	phases   map[string]*Histogram
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		phases:   map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the pipeline reports into.
func Default() *Registry { return defaultRegistry }

// SetEnabled turns collection on or off. Instrumentation sites consult
// Enabled before doing any work, so a disabled registry costs one atomic
// load per pipeline stage, not per operation.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Phase returns the named duration histogram, creating it if needed.
func (r *Registry) Phase(name string) *Histogram {
	r.mu.RLock()
	h := r.phases[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.phases[name]; h == nil {
		h = &Histogram{}
		r.phases[name] = h
	}
	return h
}

// Reset drops every metric (for tests and fresh campaigns). The enabled
// flag is unchanged.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.phases = map[string]*Histogram{}
}

// Span measures one timed phase. A span from a disabled registry is a
// shared no-op; End on it does nothing.
type Span struct {
	h     *Histogram
	start time.Time
}

var nopSpan = &Span{}

// StartSpan begins timing the named phase. The duration is recorded into
// the phase's histogram at End.
func (r *Registry) StartSpan(name string) *Span {
	if !r.Enabled() {
		return nopSpan
	}
	return &Span{h: r.Phase(name), start: time.Now()}
}

// End stops the span and records its duration.
func (s *Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start))
}

// Name composes a metric name with label pairs: Name("sim.steps",
// "model", "WO") = "sim.steps{model=WO}". Labels render in the order
// given; call sites keep them sorted so names stay canonical.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteByte('=')
		sb.WriteString(kv[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fmtDuration(ns int64) string {
	return time.Duration(ns).String()
}

package export

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// dialect Perfetto and chrome://tracing load): ph is the event type
// ("X" complete, "i" instant, "M" metadata), ts/dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

// usFromNS converts a nanosecond offset to trace-event microseconds.
func usFromNS(ns int64) float64 { return float64(ns) / 1e3 }

// interval is one X event before lane assignment.
type interval struct {
	name       string
	start, end int64 // ns
	args       map[string]any
}

// assignLanes packs possibly-overlapping intervals of one track into
// lanes: an interval goes to the first lane where it either nests inside
// the lane's innermost open interval or starts after everything on the
// lane has ended. Well-nested phase stacks (detect.analyze wrapping its
// sub-phases) therefore collapse to a single lane; genuinely concurrent
// work (campaign seeds) fans out. Returns the lane index per interval
// (in the sorted order it also returns) and the lane count.
func assignLanes(ivs []interval) (sorted []interval, lanes []int, numLanes int) {
	sorted = append(sorted, ivs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].start != sorted[j].start {
			return sorted[i].start < sorted[j].start
		}
		return sorted[i].end > sorted[j].end // longer first: parents before children
	})
	lanes = make([]int, len(sorted))
	var open [][]int64 // per lane, stack of open interval end times
	for i, iv := range sorted {
		placed := false
		for l := range open {
			st := open[l]
			for len(st) > 0 && st[len(st)-1] <= iv.start {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || st[len(st)-1] >= iv.end {
				open[l] = append(st, iv.end)
				lanes[i] = l
				placed = true
				break
			}
			open[l] = st
		}
		if !placed {
			open = append(open, []int64{iv.end})
			lanes[i] = len(open) - 1
		}
	}
	return sorted, lanes, len(open)
}

// WriteChromeTrace exports the recorder's timeline as Chrome trace-event
// JSON: each phase record becomes a complete ("X") event, campaign seed
// summaries become complete events on a "campaign" track, races become
// instant ("i") events, and process/thread names are set with metadata
// ("M") events. Tracks are grouped into thread lanes so overlapping
// intervals never share a lane.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, r.Records())
}

// WriteChromeTrace exports the given records (see Recorder.WriteChromeTrace).
func WriteChromeTrace(w io.Writer, recs []Record) error {
	byTrack := map[string][]interval{}
	trackOf := func(rec Record) string {
		if rec.Phase != nil && rec.Phase.Track != "" {
			return rec.Phase.Track
		}
		return fmt.Sprintf("analysis %d", rec.Seq)
	}
	var instants []chromeEvent // tids patched after lane assignment
	instantTrack := []string{}
	for _, rec := range recs {
		switch rec.Kind {
		case KindPhase:
			t := trackOf(rec)
			byTrack[t] = append(byTrack[t], interval{
				name:  rec.Phase.Name,
				start: rec.Phase.StartNS,
				end:   rec.Phase.StartNS + rec.Phase.DurNS,
			})
		case KindSeed:
			s := rec.Seed
			name := fmt.Sprintf("seed %d", s.Seed)
			if s.Failed {
				name += " (failed)"
			}
			start := rec.TS - s.DurNS
			if start < 0 {
				start = 0
			}
			byTrack["campaign"] = append(byTrack["campaign"], interval{
				name:  name,
				start: start,
				end:   rec.TS,
				args: map[string]any{
					"seed":             s.Seed,
					"events":           s.Events,
					"races":            s.Races,
					"data_races":       s.DataRaces,
					"partitions":       s.Partitions,
					"first_partitions": s.FirstPartitions,
					"racy":             s.Racy,
				},
			})
		case KindRace:
			instants = append(instants, chromeEvent{
				Name: fmt.Sprintf("race ⟨%s, %s⟩", rec.Race.ARef, rec.Race.BRef),
				Ph:   "i",
				TS:   usFromNS(rec.TS),
				PID:  chromePID,
				Cat:  "race",
				S:    "t",
				Args: map[string]any{"locs": rec.Race.Locs, "data": rec.Race.Data},
			})
			instantTrack = append(instantTrack, trackOf(rec))
		}
	}

	tracks := make([]string, 0, len(byTrack))
	for t := range byTrack {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{{
		Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "weakrace flight recorder"},
	}}}
	nextTID := 1
	trackBaseTID := map[string]int{}
	for _, t := range tracks {
		sorted, lanes, numLanes := assignLanes(byTrack[t])
		trackBaseTID[t] = nextTID
		for l := 0; l < numLanes; l++ {
			name := t
			if l > 0 {
				name = fmt.Sprintf("%s [lane %d]", t, l)
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: chromePID, TID: nextTID + l,
				Args: map[string]any{"name": name},
			})
		}
		for i, iv := range sorted {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: iv.name,
				Ph:   "X",
				TS:   usFromNS(iv.start),
				Dur:  usFromNS(iv.end - iv.start),
				PID:  chromePID,
				TID:  nextTID + lanes[i],
				Cat:  "phase",
				Args: iv.args,
			})
		}
		nextTID += numLanes
	}
	for i, ev := range instants {
		if base, ok := trackBaseTID[instantTrack[i]]; ok {
			ev.TID = base
		} else {
			ev.TID = 0
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	return nil
}

package export

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"weakrace/internal/telemetry"
)

// sampleTrace builds a finished, kept snapshot with a few batch spans.
func sampleTrace(t *testing.T) telemetry.TraceSnapshot {
	t.Helper()
	tr := telemetry.NewTracer(telemetry.TracerOptions{MinSlowSamples: 1 << 30})
	st := tr.Begin("7", telemetry.TraceID(0x1234), 5, "prog", "WO", 99)
	st.Record("batch.wait", 0, st.Start(), 100*time.Microsecond)
	st.Record("batch.feed", 0, st.Start().Add(100*time.Microsecond), 250*time.Microsecond)
	st.Mark("batch.retire", 0)
	st.Mark("batch.race_emit", 0)
	if !tr.Finish(st, telemetry.TraceOutcome{Racy: true}) {
		t.Fatal("racy trace sampled out")
	}
	ts, ok := tr.Lookup("7")
	if !ok {
		t.Fatal("kept trace not retrievable")
	}
	return ts
}

func TestTraceRecordsShape(t *testing.T) {
	ts := sampleTrace(t)
	recs := TraceRecords(ts)
	if len(recs) != len(ts.Spans)+1 {
		t.Fatalf("records = %d, want %d", len(recs), len(ts.Spans)+1)
	}
	meta := recs[0]
	if meta.Kind != KindMeta || meta.Meta == nil {
		t.Fatalf("first record = %+v, want meta", meta)
	}
	if meta.Meta.TraceID != telemetry.TraceID(0x1234).String() || meta.Meta.Stream != "7" {
		t.Fatalf("meta identity = %q/%q", meta.Meta.TraceID, meta.Meta.Stream)
	}
	if meta.Meta.Program != "prog" || meta.Meta.Model != "WO" || meta.Meta.Seed != 99 {
		t.Fatalf("meta workload = %+v", meta.Meta)
	}
	for _, rec := range recs[1:] {
		if rec.Kind != KindPhase || rec.Phase == nil {
			t.Fatalf("span record = %+v, want phase", rec)
		}
		if rec.Phase.Track != "stream 7" {
			t.Fatalf("track = %q", rec.Phase.Track)
		}
		if rec.TS != rec.Phase.StartNS+rec.Phase.DurNS {
			t.Fatalf("TS %d != start+dur %d", rec.TS, rec.Phase.StartNS+rec.Phase.DurNS)
		}
	}
}

func TestTraceJSONLRoundTripByteIdentical(t *testing.T) {
	ts := sampleTrace(t)
	var first bytes.Buffer
	if err := WriteTraceJSONL(&first, ts); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	var second bytes.Buffer
	if err := WriteJSONL(&second, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
}

func TestTraceChromeLoads(t *testing.T) {
	ts := sampleTrace(t)
	var buf bytes.Buffer
	if err := WriteTraceChrome(&buf, ts); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if name, _ := ev["name"].(string); strings.Contains(name, "batch.feed") {
			found = true
		}
	}
	if !found {
		t.Fatal("no batch.feed event in chrome trace")
	}
}

package export

import (
	"io"

	"weakrace/internal/telemetry"
)

// Stream-trace export: one tail-sampled StreamTrace rendered in the
// flight recorder's record vocabulary, so a kept trace round-trips
// through the same JSONL codec the offline flight logs use and loads in
// Perfetto through the same Chrome trace-event writer.

// TraceRecords converts a trace snapshot into flight records: one meta
// record carrying the trace identity, then one phase record per span,
// all on a single track named after the trace key. The conversion is
// lossless for span data (name, batch, start, duration), so
// WriteJSONL∘ReadJSONL∘WriteJSONL is byte-identical — the same
// round-trip contract the offline flight log holds.
func TraceRecords(ts telemetry.TraceSnapshot) []Record {
	track := "stream " + ts.Key
	recs := make([]Record, 0, len(ts.Spans)+1)
	recs = append(recs, Record{
		Kind: KindMeta,
		Meta: &MetaRec{
			Tool:    "stream-trace",
			Program: ts.Program,
			Model:   ts.Model,
			Seed:    ts.Seed,
			TraceID: ts.TraceID,
			Stream:  ts.Key,
		},
	})
	for _, sp := range ts.Spans {
		recs = append(recs, Record{
			TS:   sp.StartNS + sp.DurNS,
			Kind: KindPhase,
			Phase: &PhaseRec{
				Name:    sp.Name,
				StartNS: sp.StartNS,
				DurNS:   sp.DurNS,
				Track:   track,
				Batch:   sp.Batch,
			},
		})
	}
	return recs
}

// WriteTraceJSONL writes one trace snapshot as flight-recorder JSONL.
func WriteTraceJSONL(w io.Writer, ts telemetry.TraceSnapshot) error {
	return WriteJSONL(w, TraceRecords(ts))
}

// WriteTraceChrome writes one trace snapshot as Chrome trace-event JSON
// loadable in Perfetto.
func WriteTraceChrome(w io.Writer, ts telemetry.TraceSnapshot) error {
	return WriteChromeTrace(w, TraceRecords(ts))
}

package export_test

// The flight-recorder contract tests drive a real segments-32 analysis
// (the same recipe the CI perf-smoke artifact uses) through a recorder
// and then hold the two export formats to their promises: the JSONL log
// must round-trip byte-identically through ReadJSONL → WriteJSONL, and
// the Chrome trace must satisfy the trace-event schema Perfetto loads.

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// recordFlight runs the canonical segments-32 workload (workload seed 5,
// 4 CPUs, 30% unlocked, WO, sim seed 1) with a flight recorder attached
// and returns the recorder plus the analysis.
func recordFlight(t *testing.T) (*export.Recorder, *core.Analysis) {
	t.Helper()
	w := workload.Random(workload.RandomParams{
		Seed: 5, CPUs: 4, Segments: 32, UnlockedFraction: 0.3,
	})
	r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 1, InitMemory: w.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	fr := export.NewRecorder()
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{Flight: fr})
	if err != nil {
		t.Fatal(err)
	}
	return fr, a
}

func TestFlightRecordsAnalysisStructure(t *testing.T) {
	fr, a := recordFlight(t)
	recs := fr.Records()
	counts := map[string]int{}
	edges := map[string]int{}
	for _, rec := range recs {
		counts[rec.Kind]++
		if rec.Kind == export.KindEdge {
			edges[rec.Edge.Origin]++
		}
	}
	if counts[export.KindMeta] != 1 {
		t.Fatalf("want 1 meta record, got %d", counts[export.KindMeta])
	}
	if counts[export.KindEvent] != a.NumEvents {
		t.Errorf("event records = %d, want %d", counts[export.KindEvent], a.NumEvents)
	}
	if counts[export.KindRace] != len(a.Races) {
		t.Errorf("race records = %d, want %d", counts[export.KindRace], len(a.Races))
	}
	if counts[export.KindPartition] != len(a.Partitions) {
		t.Errorf("partition records = %d, want %d", counts[export.KindPartition], len(a.Partitions))
	}
	if counts[export.KindPhase] < 5 {
		t.Errorf("phase records = %d, want at least the 5 pipeline phases", counts[export.KindPhase])
	}
	// po edges: one per consecutive pair on each stream.
	wantPO := 0
	for _, evs := range a.Trace.PerCPU {
		if len(evs) > 0 {
			wantPO += len(evs) - 1
		}
	}
	if edges["po"] != wantPO {
		t.Errorf("po edges = %d, want %d", edges["po"], wantPO)
	}
	if edges["partner"] != len(a.Races) {
		t.Errorf("partner edges = %d, want %d (one per race)", edges["partner"], len(a.Races))
	}
	if edges["so1"] == 0 {
		t.Error("no so1 edges recorded; the segments workload synchronizes")
	}
}

// The JSONL log is a contract: parsing and re-serializing it must
// reproduce the original bytes exactly, so downstream tooling can
// normalize, filter, and re-emit logs without drift.
func TestFlightJSONLRoundTrip(t *testing.T) {
	fr, _ := recordFlight(t)
	var first bytes.Buffer
	if err := fr.WriteJSONL(&first); err != nil {
		t.Fatal(err)
	}
	recs, err := export.ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != fr.Len() {
		t.Fatalf("parsed %d records, recorder holds %d", len(recs), fr.Len())
	}
	var second bytes.Buffer
	if err := export.WriteJSONL(&second, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("JSONL export → parse → re-export is not byte-identical")
	}
}

// ReadJSONL must reject records with unknown fields: the format is
// versioned by strictness, not by silently dropping what it cannot name.
func TestFlightJSONLRejectsUnknownFields(t *testing.T) {
	_, err := export.ReadJSONL(bytes.NewReader([]byte(`{"ts":1,"kind":"meta","bogus":true}` + "\n")))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

// The Chrome trace must be a single JSON object Perfetto's trace-event
// importer accepts: a traceEvents array where every entry has name, ph,
// ts, pid, and tid; ph is one of the types we emit; timestamps and
// durations are non-negative; and every (pid, tid) lane used by an X or
// i event is named by a thread_name metadata event.
func TestChromeTracePerfettoSchema(t *testing.T) {
	fr, _ := recordFlight(t)
	var buf bytes.Buffer
	if err := fr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&top); err != nil {
		t.Fatalf("trace is not the expected top-level object: %v", err)
	}
	if top.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", top.DisplayTimeUnit)
	}
	if len(top.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	named := map[float64]bool{} // tids named by thread_name metadata
	var used []float64
	for i, ev := range top.TraceEvents {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		ph := ev["ph"].(string)
		switch ph {
		case "M":
			if ev["name"] == "thread_name" {
				named[ev["tid"].(float64)] = true
			}
			continue
		case "X", "i":
		default:
			t.Fatalf("event %d: unexpected ph %q", i, ph)
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event %d: bad ts %v", i, ev["ts"])
		}
		if dur, ok := ev["dur"]; ok {
			if d, ok := dur.(float64); !ok || d < 0 {
				t.Fatalf("event %d: bad dur %v", i, dur)
			}
		}
		used = append(used, ev["tid"].(float64))
	}
	for _, tid := range used {
		if !named[tid] && tid != 0 {
			t.Errorf("tid %v used but never named by thread_name metadata", tid)
		}
	}
}

// X events sharing a thread lane must be well nested — that is what the
// lane assignment exists to guarantee; partially overlapping events on
// one lane render as garbage in Perfetto.
func TestChromeTraceLanesWellNested(t *testing.T) {
	fr, _ := recordFlight(t)
	var buf bytes.Buffer
	if err := fr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			TS  float64 `json:"ts"`
			Dur float64 `json:"dur"`
			TID int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	type span struct{ start, end float64 }
	lanes := map[int][]span{}
	for _, ev := range top.TraceEvents {
		if ev.Ph == "X" {
			lanes[ev.TID] = append(lanes[ev.TID], span{ev.TS, ev.TS + ev.Dur})
		}
	}
	for tid, spans := range lanes {
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start < spans[j].start
			}
			return spans[i].end > spans[j].end
		})
		var stack []span
		for _, s := range spans {
			for len(stack) > 0 && stack[len(stack)-1].end <= s.start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && stack[len(stack)-1].end < s.end {
				t.Fatalf("tid %d: span [%v,%v] partially overlaps enclosing [%v,%v]",
					tid, s.start, s.end, stack[len(stack)-1].start, stack[len(stack)-1].end)
			}
			stack = append(stack, s)
		}
	}
}

// Campaign seed summaries become complete events on the "campaign" track
// with their aggregates as args, and never get negative start times.
func TestChromeTraceSeedEvents(t *testing.T) {
	fr := export.NewRecorder()
	fr.Emit(export.Record{TS: 100, Kind: export.KindSeed, Seed: &export.SeedRec{
		Seed: 7, DurNS: 5000, Events: 12, Races: 3, DataRaces: 2,
		Partitions: 2, FirstPartitions: 1, Racy: true,
	}})
	fr.Emit(export.Record{TS: 9000, Kind: export.KindSeed, Seed: &export.SeedRec{
		Seed: 8, DurNS: 4000, Failed: true, Error: "boom",
	}})
	var buf bytes.Buffer
	if err := fr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, ev := range top.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		got = append(got, ev.Name)
		if ev.TS < 0 {
			t.Errorf("seed event %q starts before time zero: ts=%v", ev.Name, ev.TS)
		}
		if ev.Name == "seed 7" && ev.Args["races"] != float64(3) {
			t.Errorf("seed 7 args = %v, want races=3", ev.Args)
		}
	}
	sort.Strings(got)
	want := []string{"seed 7", "seed 8 (failed)"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("seed events = %v, want %v", got, want)
	}
}

// Package export is the detection stack's flight recorder: a structured,
// append-only event log of one analysis run (or one campaign), exported
// as JSONL for programmatic consumption and as Chrome trace-event JSON
// loadable in Perfetto or chrome://tracing.
//
// Where internal/telemetry aggregates (counters, histograms), the flight
// recorder keeps individual records with timestamps and provenance: the
// trace's events, every hb1 edge tagged with its origin (po, so1, or a
// race-partner edge of G′), the detection phases as a timeline, the races
// and partitions found, and — in campaign mode — one summary record per
// seed.
//
// Recording is strictly opt-in and zero-overhead when off: the pipeline
// consults a single recorder pointer (core.Options.Flight,
// campaign.Options.Flight); a nil pointer short-circuits every
// instrumentation site before any work happens, mirroring the telemetry
// registry's atomic Enabled gate. Nothing in the hot paths allocates or
// formats unless a recorder is attached.
package export

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"weakrace/internal/atomicio"
)

// Record kinds. One Record carries exactly one non-nil payload,
// matching its Kind.
const (
	KindMeta      = "meta"      // analysis header: program, model, seed
	KindEvent     = "event"     // one trace event
	KindEdge      = "edge"      // one hb1/G′ edge with origin
	KindPhase     = "phase"     // one timed detection phase
	KindRace      = "race"      // one detected race
	KindPartition = "partition" // one data-race partition
	KindSeed      = "seed"      // one campaign seed summary
)

// Edge origins.
const (
	OriginPO      = "po"      // program order
	OriginSO1     = "so1"     // paired release→acquire synchronization
	OriginPartner = "partner" // doubly-directed race edge of G′ (§4.2)
)

// Record is one flight-recorder entry. TS is nanoseconds since the
// recorder started; Seq groups the records of one analysis when a
// recorder spans several (racedetect with many inputs, a campaign).
// Exactly one payload pointer is non-nil, named after Kind.
type Record struct {
	TS   int64  `json:"ts"`
	Kind string `json:"kind"`
	Seq  int    `json:"seq,omitempty"`

	Meta      *MetaRec      `json:"meta,omitempty"`
	Event     *EventRec     `json:"event,omitempty"`
	Edge      *EdgeRec      `json:"edge,omitempty"`
	Phase     *PhaseRec     `json:"phase,omitempty"`
	Race      *RaceRec      `json:"race,omitempty"`
	Partition *PartitionRec `json:"partition,omitempty"`
	Seed      *SeedRec      `json:"seed,omitempty"`
}

// MetaRec is one analysis's header. TraceID and Stream are set only on
// stream-trace exports (see streamtrace.go), correlating the record set
// with the client-stamped trace context from the WRS1 header.
type MetaRec struct {
	Tool      string `json:"tool"`
	Program   string `json:"program"`
	Model     string `json:"model"`
	Seed      int64  `json:"seed"`
	CPUs      int    `json:"cpus"`
	Locations int    `json:"locations"`
	Events    int    `json:"events"`
	TraceID   string `json:"trace_id,omitempty"`
	Stream    string `json:"stream,omitempty"`
}

// EventRec is one trace event, identified the way reports identify
// events (processor + position) with its compact rendering.
type EventRec struct {
	CPU   int    `json:"cpu"`
	Index int    `json:"index"`
	Kind  string `json:"event_kind"`
	Desc  string `json:"desc"`
}

// EdgeRec is one edge of hb1 or G′, in dense event ids, tagged with why
// it exists. Partner edges are doubly directed; they are recorded once
// with From < To.
type EdgeRec struct {
	From   int    `json:"from"`
	To     int    `json:"to"`
	Origin string `json:"origin"`
}

// PhaseRec is one timed phase: StartNS is relative to the recorder
// start, like Record.TS. Track names the timeline the phase belongs to
// in the Chrome trace export (one lane set per track). Batch tags
// stream-trace spans with the wire batch they measure (-1 for
// stream-level spans; 0 doubles as "unset" for offline phases, which
// never carry batches).
type PhaseRec struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Track   string `json:"track,omitempty"`
	Batch   int    `json:"batch,omitempty"`
}

// RaceRec is one detected race in dense event ids plus human-readable
// references.
type RaceRec struct {
	A    int    `json:"a"`
	B    int    `json:"b"`
	ARef string `json:"a_ref"`
	BRef string `json:"b_ref"`
	Locs string `json:"locs"`
	Data bool   `json:"data"`
}

// PartitionRec is one data-race partition (§4.2) of an analysis.
type PartitionRec struct {
	Index     int   `json:"index"`
	Component int   `json:"component"`
	First     bool  `json:"first"`
	Races     []int `json:"races"`
	Events    []int `json:"events"`
}

// SeedRec is one campaign seed's provenance summary: the aggregate a
// 500-seed hunt keeps instead of 500 full analysis dumps.
type SeedRec struct {
	Seed            int64  `json:"seed"`
	DurNS           int64  `json:"dur_ns"`
	Events          int    `json:"events"`
	Races           int    `json:"races"`
	DataRaces       int    `json:"data_races"`
	Partitions      int    `json:"partitions"`
	FirstPartitions int    `json:"first_partitions"`
	Racy            bool   `json:"racy"`
	Incomplete      bool   `json:"incomplete"`
	Failed          bool   `json:"failed"`
	Error           string `json:"error,omitempty"`
}

// Recorder accumulates flight records. Safe for concurrent use (campaign
// workers emit seed summaries in parallel); a nil *Recorder is the "off"
// state and every instrumentation site checks it before doing work.
type Recorder struct {
	start time.Time

	mu   sync.Mutex
	recs []Record
	seq  int
}

// NewRecorder returns an empty recorder; timestamps are relative to now.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// NextSeq allocates the next analysis sequence number. Each analysis
// recorded through a shared recorder tags its records with one.
func (r *Recorder) NextSeq() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	return r.seq
}

// Now returns the recorder-relative timestamp in nanoseconds.
func (r *Recorder) Now() int64 { return int64(time.Since(r.start)) }

// Emit appends one record, stamping TS if the caller left it zero.
func (r *Recorder) Emit(rec Record) {
	if rec.TS == 0 {
		rec.TS = r.Now()
	}
	r.mu.Lock()
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

// Phase records one timed phase that started at the given wall-clock
// time and ends now.
func (r *Recorder) Phase(seq int, name, track string, start time.Time) {
	end := time.Now()
	r.Emit(Record{
		TS:   int64(end.Sub(r.start)),
		Kind: KindPhase,
		Seq:  seq,
		Phase: &PhaseRec{
			Name:    name,
			StartNS: int64(start.Sub(r.start)),
			DurNS:   int64(end.Sub(start)),
			Track:   track,
		},
	})
}

// Len returns the number of records.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// Records returns a copy of the recorded entries.
func (r *Recorder) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Record(nil), r.recs...)
}

// WriteJSONL writes the records one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, r.Records())
}

// WriteJSONL writes records one JSON object per line. Field order is
// struct order and all numbers are integers, so re-exporting the result
// of ReadJSONL is byte-identical — the round-trip CI asserts.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	return nil
}

// ReadJSONL parses a JSONL flight log. Unknown fields are an error: the
// format is a contract, not a suggestion.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		data := bytes.TrimSpace(sc.Bytes())
		if len(data) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("export: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	return recs, nil
}

// FlightLogName and ChromeTraceName are the file names WriteDir uses, so
// CLIs and CI agree on them.
const (
	FlightLogName   = "flight.jsonl"
	ChromeTraceName = "trace.json"
)

// WriteDir writes the flight log and the Chrome trace into dir
// (creating it), under the canonical names. Each file is written
// atomically (temp file + rename), so an interrupted flight-recorder
// flush never leaves a truncated JSONL or trace.json behind.
func (r *Recorder) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	if err := atomicio.WriteFile(filepath.Join(dir, FlightLogName), r.WriteJSONL); err != nil {
		return err
	}
	return atomicio.WriteFile(filepath.Join(dir, ChromeTraceName), r.WriteChromeTrace)
}

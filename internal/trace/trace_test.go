package trace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"weakrace/internal/bitset"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
)

// fig1bProgram is the synced message-passing program (lock starts held).
func fig1bProgram() *program.Program {
	const x, y, s = 0, 1, 2
	b := program.NewBuilder("fig1b", 3, 2)
	b.Thread("P1").
		Write(program.At(x), program.Imm(1)).
		Write(program.At(y), program.Imm(1)).
		Unset(program.At(s))
	b.Thread("P2").
		Label("spin").
		TestAndSet(0, program.At(s)).
		BranchNotZero(0, "spin").
		Read(0, program.At(y)).
		Read(1, program.At(x))
	return b.MustBuild()
}

func runFig1b(t *testing.T, seed int64) *Trace {
	t.Helper()
	r, err := sim.Run(fig1bProgram(), sim.Config{
		Model: memmodel.WO, Seed: seed,
		InitMemory: map[program.Addr]int64{2: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return FromExecution(r.Exec)
}

func TestFromExecutionShape(t *testing.T) {
	tr := runFig1b(t, 7)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// P1: one computation event (writes x,y) then one sync release event.
	p1 := tr.PerCPU[0]
	if len(p1) != 2 {
		t.Fatalf("P1 has %d events, want 2:\n%v", len(p1), p1)
	}
	if p1[0].Kind != Comp || !p1[0].Writes.Contains(0) || !p1[0].Writes.Contains(1) || !p1[0].Reads.Empty() {
		t.Fatalf("P1 comp event wrong: %v", p1[0])
	}
	if p1[1].Kind != Sync || p1[1].Role != memmodel.RoleRelease || p1[1].Loc != 2 {
		t.Fatalf("P1 sync event wrong: %v", p1[1])
	}
	// P2: alternating Test&Set events (acquire, sync-write) then a final
	// comp event reading y and x.
	p2 := tr.PerCPU[1]
	last := p2[len(p2)-1]
	if last.Kind != Comp || !last.Reads.Contains(0) || !last.Reads.Contains(1) || !last.Writes.Empty() {
		t.Fatalf("P2 final comp event wrong: %v", last)
	}
	// The winning acquire (the last acquire) must be paired with P1's
	// release event.
	var winning *Event
	for _, ev := range p2 {
		if ev.Kind == Sync && ev.Role == memmodel.RoleAcquire && ev.Observed.Valid() &&
			ev.ObservedRole == memmodel.RoleRelease {
			winning = ev
		}
	}
	if winning == nil {
		t.Fatal("no acquire paired with a release")
	}
	if winning.Observed.CPU != 0 {
		t.Fatalf("winning acquire paired with %v, want P1's release", winning.Observed)
	}
	if got := tr.Event(winning.Observed); got != p1[1] {
		t.Fatal("Observed reference does not resolve to P1's release event")
	}
}

func TestTestAndSetPairsObserveSyncWrites(t *testing.T) {
	// A losing Test&Set reads the 1 written by a previous Test&Set: its
	// Observed must point at that sync-write event with RoleSyncOther.
	tr := runFig1b(t, 11)
	sawLoser := false
	for _, evs := range tr.PerCPU {
		for _, ev := range evs {
			if ev.Kind == Sync && ev.Role == memmodel.RoleAcquire && ev.Observed.Valid() &&
				ev.ObservedRole == memmodel.RoleSyncOther {
				sawLoser = true
				obs := tr.Event(ev.Observed)
				if obs == nil || obs.Role != memmodel.RoleSyncOther {
					t.Fatalf("loser acquire pairing broken: %v", ev)
				}
			}
		}
	}
	// Not every seed makes the spinner lose at least once; seed 11 might.
	// If it never lost, the test is vacuous; find a seed where it loses.
	if !sawLoser {
		for seed := int64(0); seed < 100; seed++ {
			tr = runFig1b(t, seed)
			for _, evs := range tr.PerCPU {
				for _, ev := range evs {
					if ev.Kind == Sync && ev.Role == memmodel.RoleAcquire &&
						ev.Observed.Valid() && ev.ObservedRole == memmodel.RoleSyncOther {
						sawLoser = true
					}
				}
			}
			if sawLoser {
				break
			}
		}
	}
	if !sawLoser {
		t.Fatal("no seed produced a losing Test&Set")
	}
}

func TestReadWritePCProvenance(t *testing.T) {
	tr := runFig1b(t, 7)
	p1 := tr.PerCPU[0]
	if p1[0].WritePC[0] != 0 || p1[0].WritePC[1] != 1 {
		t.Fatalf("P1 WritePC = %v, want {0:0, 1:1}", p1[0].WritePC)
	}
	p2 := tr.PerCPU[1]
	last := p2[len(p2)-1]
	if last.ReadPC[1] != 2 || last.ReadPC[0] != 3 {
		t.Fatalf("P2 ReadPC = %v, want {1:2, 0:3}", last.ReadPC)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := runFig1b(t, 7)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

func assertTracesEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if got.ProgramName != want.ProgramName || got.Model != want.Model ||
		got.Seed != want.Seed || got.NumCPUs != want.NumCPUs ||
		got.NumLocations != want.NumLocations {
		t.Fatalf("header mismatch: got %+v", got)
	}
	if got.NumEvents() != want.NumEvents() {
		t.Fatalf("event count %d, want %d", got.NumEvents(), want.NumEvents())
	}
	for c := range want.PerCPU {
		for i := range want.PerCPU[c] {
			w, g := want.PerCPU[c][i], got.PerCPU[c][i]
			if w.Kind != g.Kind || w.Role != g.Role || w.Loc != g.Loc ||
				w.SyncSeq != g.SyncSeq || w.PC != g.PC ||
				w.Observed != g.Observed || w.ObservedRole != g.ObservedRole {
				t.Fatalf("P%d.%d mismatch:\nwant %v\ngot  %v", c+1, i, w, g)
			}
			if w.Kind == Comp {
				if !w.Reads.Equal(g.Reads) || !w.Writes.Equal(g.Writes) {
					t.Fatalf("P%d.%d access sets mismatch", c+1, i)
				}
				if !reflect.DeepEqual(w.ReadPC, g.ReadPC) || !reflect.DeepEqual(w.WritePC, g.WritePC) {
					t.Fatalf("P%d.%d pc maps mismatch", c+1, i)
				}
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	tr := runFig1b(t, 13)
	path := filepath.Join(t.TempDir(), "t.wrt")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("WRT1"),                     // truncated after magic
		[]byte("WRT1\xff\xff\xff\xff\xff"), // absurd string length
	}
	for i, c := range cases {
		if _, err := Decode(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestDecodeRejectsCorruptTail(t *testing.T) {
	tr := runFig1b(t, 7)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	// Truncations must error, not crash or succeed.
	for _, n := range []int{5, 10, len(enc) / 2, len(enc) - 1} {
		if n >= len(enc) {
			continue
		}
		if _, err := Decode(bytes.NewReader(enc[:n])); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestValidateCatchesBrokenTraces(t *testing.T) {
	mk := func() *Trace {
		return &Trace{
			ProgramName: "x", NumCPUs: 1, NumLocations: 4,
			PerCPU: [][]*Event{{
				{Kind: Sync, Role: memmodel.RoleRelease, Loc: 1, SyncSeq: 0, Observed: NoEvent},
			}},
		}
	}
	good := mk()
	if err := good.Validate(); err != nil {
		t.Fatalf("good trace rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Trace)
		want   string
	}{
		{"cpu mismatch", func(t *Trace) { t.NumCPUs = 2 }, "streams"},
		{"bad sync loc", func(t *Trace) { t.PerCPU[0][0].Loc = 9 }, "out of range"},
		{"data role on sync", func(t *Trace) { t.PerCPU[0][0].Role = memmodel.RoleData }, "role"},
		{"negative seq", func(t *Trace) { t.PerCPU[0][0].SyncSeq = -1 }, "SyncSeq"},
		{"dangling pair", func(t *Trace) {
			t.PerCPU[0][0].Role = memmodel.RoleAcquire
			t.PerCPU[0][0].Observed = EventRef{CPU: 5, Index: 0}
		}, "dangling"},
		{"empty comp", func(t *Trace) {
			t.PerCPU[0] = append(t.PerCPU[0], &Event{
				Kind: Comp, Reads: bitset.New(4), Writes: bitset.New(4),
			})
		}, "empty computation"},
		{"comp loc out of range", func(t *Trace) {
			t.PerCPU[0] = append(t.PerCPU[0], &Event{
				Kind: Comp, Reads: bitset.FromSlice([]int{99}), Writes: bitset.New(4),
			})
		}, "out of range"},
	}
	for _, c := range cases {
		tr := mk()
		c.mutate(tr)
		err := tr.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestValidateDuplicateSyncSeq(t *testing.T) {
	tr := &Trace{
		ProgramName: "x", NumCPUs: 1, NumLocations: 2,
		PerCPU: [][]*Event{{
			{Kind: Sync, Role: memmodel.RoleRelease, Loc: 0, SyncSeq: 0, Observed: NoEvent},
			{Kind: Sync, Role: memmodel.RoleRelease, Loc: 0, SyncSeq: 0, Observed: NoEvent},
		}},
	}
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate SyncSeq") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateMissingSyncSeq(t *testing.T) {
	tr := &Trace{
		ProgramName: "x", NumCPUs: 1, NumLocations: 2,
		PerCPU: [][]*Event{{
			{Kind: Sync, Role: memmodel.RoleRelease, Loc: 0, SyncSeq: 1, Observed: NoEvent},
		}},
	}
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v", err)
	}
}

func TestDump(t *testing.T) {
	tr := runFig1b(t, 7)
	var buf bytes.Buffer
	if err := Dump(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace \"fig1b\"", "P1:", "P2:", "sync release loc=2", "comp reads="} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestEventRefString(t *testing.T) {
	if got := (EventRef{CPU: 1, Index: 3}).String(); got != "P2.3" {
		t.Fatalf("ref string = %q", got)
	}
	if got := NoEvent.String(); got != "-" {
		t.Fatalf("NoEvent string = %q", got)
	}
}

// A trace built through a reused arena must be byte-identical to one
// built fresh — across executions of different shapes, so slab reuse
// exercises both the grow and the re-carve paths. Encoded bytes are the
// equality oracle (the codec serializes every semantic field).
func TestFromExecutionIntoArenaReuse(t *testing.T) {
	ar := NewArena()
	encode := func(tr *Trace) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for round := 0; round < 3; round++ {
		for seed := int64(1); seed <= 5; seed++ {
			r, err := sim.Run(fig1bProgram(), sim.Config{
				Model: memmodel.WO, Seed: seed,
				InitMemory: map[program.Addr]int64{2: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			fresh := encode(FromExecution(r.Exec))
			pooled := FromExecutionInto(r.Exec, ar)
			if err := pooled.Validate(); err != nil {
				t.Fatalf("round %d seed %d: arena-built trace invalid: %v", round, seed, err)
			}
			if !bytes.Equal(fresh, encode(pooled)) {
				t.Fatalf("round %d seed %d: arena-built trace differs from fresh build", round, seed)
			}
		}
	}
}

package trace_test

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

func streamExec(tb testing.TB, w *workload.Workload, seed int64) *sim.Execution {
	tb.Helper()
	r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: seed, InitMemory: w.InitMemory})
	if err != nil {
		tb.Fatal(err)
	}
	return r.Exec
}

func readAll(tb testing.TB, data []byte) (trace.StreamHeader, []sim.MemOp) {
	tb.Helper()
	sr, err := trace.NewStreamReader(bytes.NewReader(data))
	if err != nil {
		tb.Fatal(err)
	}
	var ops []sim.MemOp
	for {
		ops, err = sr.Next(ops)
		if err == io.EOF {
			return sr.Header(), ops
		}
		if err != nil {
			tb.Fatal(err)
		}
	}
}

// Round trip: every framed field of every op survives, for several batch
// sizes including one that splits mid-CPU and one bigger than the stream.
func TestStreamRoundTrip(t *testing.T) {
	e := streamExec(t, workload.Random(workload.RandomParams{Seed: 3, UnlockedFraction: 0.4}), 7)
	for _, batch := range []int{1, 3, 64, len(e.Ops), len(e.Ops) * 2} {
		var buf bytes.Buffer
		if err := trace.StreamExecution(&buf, e, batch); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		hdr, ops := readAll(t, buf.Bytes())
		want := trace.StreamHeader{
			ProgramName: e.ProgramName, Model: e.Model, Seed: e.Seed,
			NumCPUs: e.NumCPUs, NumLocations: e.NumLocations,
		}
		if hdr != want {
			t.Fatalf("batch %d: header %+v, want %+v", batch, hdr, want)
		}
		if len(ops) != len(e.Ops) {
			t.Fatalf("batch %d: %d ops decoded, want %d", batch, len(ops), len(e.Ops))
		}
		for i, op := range ops {
			orig := e.Ops[i]
			// Scheduler-internal fields don't travel.
			orig.Step, orig.CommitStep, orig.Speculative = 0, 0, false
			if !reflect.DeepEqual(op, orig) {
				t.Fatalf("batch %d: op %d = %+v, want %+v", batch, i, op, orig)
			}
		}
	}
}

// Truncations at every byte boundary: mid-header, mid-length,
// mid-payload, and missing end marker must all error (never panic, never
// succeed), and the error for a complete-but-unterminated stream is
// ErrStreamTruncated.
func TestStreamTruncation(t *testing.T) {
	e := streamExec(t, workload.Figure2(), 1)
	var buf bytes.Buffer
	if err := trace.StreamExecution(&buf, e, 4); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		sr, err := trace.NewStreamReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // header truncated: fine, it errored
		}
		var ops []sim.MemOp
		for {
			ops, err = sr.Next(ops)
			if err == nil {
				continue
			}
			if err == io.EOF {
				t.Fatalf("cut %d/%d: truncated stream decoded cleanly", cut, len(full))
			}
			break
		}
	}
	// The full stream minus only its end marker is specifically a
	// truncation, not a clean end.
	sr, err := trace.NewStreamReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	var ops []sim.MemOp
	for {
		ops, err = sr.Next(ops)
		if err != nil {
			break
		}
	}
	if !errors.Is(err, trace.ErrStreamTruncated) {
		t.Fatalf("missing end marker: err = %v, want ErrStreamTruncated", err)
	}
	if len(ops) != len(e.Ops) {
		t.Fatalf("ops before truncation should all decode: got %d want %d", len(ops), len(e.Ops))
	}
}

// A batch whose declared length covers garbage must fail without
// consuming beyond the frame — and the errors must identify the batch,
// not crash the reader.
func TestStreamBadPayload(t *testing.T) {
	hdr := trace.StreamHeader{ProgramName: "x", Model: memmodel.WO, Seed: 1, NumCPUs: 2, NumLocations: 4}
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		sw, err := trace.NewStreamWriter(&buf, hdr)
		if err != nil {
			t.Fatal(err)
		}
		_ = sw // header only; payload appended raw
		out := buf.Bytes()
		out = append(out, byte(len(payload)))
		return append(out, payload...)
	}
	cases := map[string][]byte{
		"zero op count":     {0x00},
		"huge op count":     {0xff, 0xff, 0xff, 0x7f},
		"bad kind":          {0x01, 0x63, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},
		"cpu out of range":  {0x01, 0x00, 0x05, 0x00, 0x00, 0x00, 0x00, 0x00},
		"loc out of range":  {0x01, 0x00, 0x00, 0x00, 0x2a, 0x00, 0x00, 0x00},
		"forward observed":  {0x01, 0x02, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00}, // acquire observing itself
		"trailing bytes":    {0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x01, 0x00, 0x00},
		"truncated mid op":  {0x01, 0x00, 0x00, 0x00},
		"missing op fields": {0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x01},
	}
	for name, payload := range cases {
		sr, err := trace.NewStreamReader(bytes.NewReader(frame(payload)))
		if err != nil {
			t.Fatalf("%s: header rejected: %v", name, err)
		}
		if _, err := sr.Next(nil); err == nil || err == io.EOF {
			t.Fatalf("%s: bad payload accepted (err=%v)", name, err)
		}
	}
}

// The writer enforces issue order — a gap or repeat in op IDs is a bug
// at the source, caught before it hits the wire.
func TestStreamWriterOrderEnforced(t *testing.T) {
	var buf bytes.Buffer
	sw, err := trace.NewStreamWriter(&buf, trace.StreamHeader{NumCPUs: 1, NumLocations: 1})
	if err != nil {
		t.Fatal(err)
	}
	ops := []sim.MemOp{{ID: 0}, {ID: 2}}
	if err := sw.WriteBatch(ops); err == nil {
		t.Fatal("ID gap accepted")
	}
}

// Decoded operations feed the incremental detector to the same result
// as the in-process execution — the full wire-to-detector path.
func TestStreamFeedsDetectorIdentically(t *testing.T) {
	e := streamExec(t, workload.Random(workload.RandomParams{Seed: 9, UnlockedFraction: 0.5, SharedFraction: 0.8}), 3)
	var buf bytes.Buffer
	if err := trace.StreamExecution(&buf, e, 32); err != nil {
		t.Fatal(err)
	}
	_, ops := readAll(t, buf.Bytes())
	if !reflect.DeepEqual(streamOpsScrubbed(e.Ops), ops) {
		t.Fatal("decoded op stream differs from execution ops")
	}
}

func streamOpsScrubbed(ops []sim.MemOp) []sim.MemOp {
	out := make([]sim.MemOp, len(ops))
	for i, op := range ops {
		op.Step, op.CommitStep, op.Speculative = 0, 0, false
		out[i] = op
	}
	return out
}

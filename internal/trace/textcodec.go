package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"weakrace/internal/bitset"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
)

// Text trace format: a line-oriented, human-editable alternative to the
// binary codec, round-trippable through DecodeText. Example:
//
//	weakrace-trace 1
//	program "figure-2"
//	model WO
//	seed 674
//	cpus 3
//	locations 12
//	cpu 0
//	comp reads= writes=0@0,1@1
//	sync release loc=2 seq=0 pc=2
//	cpu 1
//	sync acquire loc=2 seq=1 pc=0 paired=0:1/release
//	end
//
// Access sets list loc@pc entries (the PC provenance); pairing references
// are cpu:index/role.

const textMagic = "weakrace-trace 1"

// EncodeText writes the trace in text form.
func EncodeText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\n", textMagic)
	fmt.Fprintf(bw, "program %q\n", t.ProgramName)
	fmt.Fprintf(bw, "model %s\n", t.Model)
	fmt.Fprintf(bw, "seed %d\n", t.Seed)
	fmt.Fprintf(bw, "cpus %d\n", t.NumCPUs)
	fmt.Fprintf(bw, "locations %d\n", t.NumLocations)
	for c, evs := range t.PerCPU {
		fmt.Fprintf(bw, "cpu %d\n", c)
		for _, ev := range evs {
			switch ev.Kind {
			case Comp:
				fmt.Fprintf(bw, "comp reads=%s writes=%s\n",
					encodeAccessList(ev.Reads, ev.ReadPC),
					encodeAccessList(ev.Writes, ev.WritePC))
			case Sync:
				fmt.Fprintf(bw, "sync %s loc=%d seq=%d pc=%d", ev.Role, ev.Loc, ev.SyncSeq, ev.PC)
				if ev.Observed.Valid() {
					fmt.Fprintf(bw, " paired=%d:%d/%s", ev.Observed.CPU, ev.Observed.Index, ev.ObservedRole)
				}
				fmt.Fprintln(bw)
			default:
				return fmt.Errorf("trace: text encode: unknown event kind %d", ev.Kind)
			}
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

func encodeAccessList(set *bitset.Set, pcs map[program.Addr]int) string {
	locs := set.Slice()
	sort.Ints(locs)
	parts := make([]string, len(locs))
	for i, loc := range locs {
		parts[i] = fmt.Sprintf("%d@%d", loc, pcs[program.Addr(loc)])
	}
	return strings.Join(parts, ",")
}

// textParser tracks position for error messages.
type textParser struct {
	sc   *bufio.Scanner
	line int
}

func (p *textParser) next() (string, bool) {
	for p.sc.Scan() {
		p.line++
		line := strings.TrimSpace(p.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, true
	}
	return "", false
}

func (p *textParser) errf(format string, args ...any) error {
	return fmt.Errorf("trace: text decode: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// DecodeText parses a text-form trace and validates it.
func DecodeText(r io.Reader) (*Trace, error) {
	p := &textParser{sc: bufio.NewScanner(r)}
	p.sc.Buffer(make([]byte, 1<<16), 1<<24)

	line, ok := p.next()
	if !ok || line != textMagic {
		return nil, p.errf("missing header %q", textMagic)
	}
	t := &Trace{}

	// Fixed header fields, in order.
	headers := []struct {
		key   string
		parse func(val string) error
	}{
		{"program", func(v string) error {
			name, err := strconv.Unquote(v)
			if err != nil {
				return fmt.Errorf("bad program name %s: %w", v, err)
			}
			t.ProgramName = name
			return nil
		}},
		{"model", func(v string) error {
			m, err := memmodel.Parse(v)
			if err != nil {
				return err
			}
			t.Model = m
			return nil
		}},
		{"seed", func(v string) error {
			s, err := strconv.ParseInt(v, 10, 64)
			t.Seed = s
			return err
		}},
		{"cpus", func(v string) error {
			n, err := strconv.Atoi(v)
			t.NumCPUs = n
			return err
		}},
		{"locations", func(v string) error {
			n, err := strconv.Atoi(v)
			t.NumLocations = n
			return err
		}},
	}
	for _, h := range headers {
		line, ok := p.next()
		if !ok {
			return nil, p.errf("unexpected end of input, want %q", h.key)
		}
		key, val, found := strings.Cut(line, " ")
		if !found || key != h.key {
			return nil, p.errf("want %q header, got %q", h.key, line)
		}
		if err := h.parse(val); err != nil {
			return nil, p.errf("%v", err)
		}
	}
	if t.NumCPUs < 0 || t.NumCPUs > 1<<16 {
		return nil, p.errf("unreasonable cpu count %d", t.NumCPUs)
	}
	if t.NumLocations < 0 || t.NumLocations > 1<<20 {
		return nil, p.errf("unreasonable location count %d", t.NumLocations)
	}
	t.PerCPU = make([][]*Event, t.NumCPUs)

	cur := -1
	for {
		line, ok := p.next()
		if !ok {
			return nil, p.errf("unexpected end of input, want \"end\"")
		}
		if line == "end" {
			break
		}
		key, rest, _ := strings.Cut(line, " ")
		switch key {
		case "cpu":
			n, err := strconv.Atoi(rest)
			if err != nil || n < 0 || n >= t.NumCPUs {
				return nil, p.errf("bad cpu index %q", rest)
			}
			cur = n
		case "comp":
			if cur < 0 {
				return nil, p.errf("event before any \"cpu\" line")
			}
			ev := &Event{
				Kind: Comp, SyncSeq: -1, Observed: NoEvent,
				Reads: bitset.New(t.NumLocations), Writes: bitset.New(t.NumLocations),
				ReadPC: map[program.Addr]int{}, WritePC: map[program.Addr]int{},
			}
			fields := strings.Fields(rest)
			for _, f := range fields {
				k, v, found := strings.Cut(f, "=")
				if !found {
					return nil, p.errf("bad comp field %q", f)
				}
				var set *bitset.Set
				var pcs map[program.Addr]int
				switch k {
				case "reads":
					set, pcs = ev.Reads, ev.ReadPC
				case "writes":
					set, pcs = ev.Writes, ev.WritePC
				default:
					return nil, p.errf("unknown comp field %q", k)
				}
				if err := parseAccessList(v, set, pcs); err != nil {
					return nil, p.errf("%v", err)
				}
			}
			t.PerCPU[cur] = append(t.PerCPU[cur], ev)
		case "sync":
			if cur < 0 {
				return nil, p.errf("event before any \"cpu\" line")
			}
			fields := strings.Fields(rest)
			if len(fields) < 1 {
				return nil, p.errf("sync event missing role")
			}
			ev := &Event{Kind: Sync, Observed: NoEvent}
			switch fields[0] {
			case "acquire":
				ev.Role = memmodel.RoleAcquire
			case "release":
				ev.Role = memmodel.RoleRelease
			case "sync":
				ev.Role = memmodel.RoleSyncOther
			default:
				return nil, p.errf("unknown sync role %q", fields[0])
			}
			for _, f := range fields[1:] {
				k, v, found := strings.Cut(f, "=")
				if !found {
					return nil, p.errf("bad sync field %q", f)
				}
				switch k {
				case "loc":
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, p.errf("bad loc %q", v)
					}
					ev.Loc = program.Addr(n)
				case "seq":
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, p.errf("bad seq %q", v)
					}
					ev.SyncSeq = n
				case "pc":
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, p.errf("bad pc %q", v)
					}
					ev.PC = n
				case "paired":
					ref, role, err := parsePairing(v)
					if err != nil {
						return nil, p.errf("%v", err)
					}
					ev.Observed = ref
					ev.ObservedRole = role
				default:
					return nil, p.errf("unknown sync field %q", k)
				}
			}
			t.PerCPU[cur] = append(t.PerCPU[cur], ev)
		default:
			return nil, p.errf("unknown directive %q", key)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: text decode: %w", err)
	}
	return t, nil
}

func parseAccessList(s string, set *bitset.Set, pcs map[program.Addr]int) error {
	if s == "" {
		return nil
	}
	for _, item := range strings.Split(s, ",") {
		locStr, pcStr, found := strings.Cut(item, "@")
		if !found {
			return fmt.Errorf("bad access %q, want loc@pc", item)
		}
		loc, err := strconv.Atoi(locStr)
		if err != nil || loc < 0 {
			return fmt.Errorf("bad access location %q", locStr)
		}
		pc, err := strconv.Atoi(pcStr)
		if err != nil || pc < 0 {
			return fmt.Errorf("bad access pc %q", pcStr)
		}
		set.Add(loc)
		pcs[program.Addr(loc)] = pc
	}
	return nil
}

func parsePairing(s string) (EventRef, memmodel.Role, error) {
	refStr, roleStr, found := strings.Cut(s, "/")
	if !found {
		return NoEvent, 0, fmt.Errorf("bad pairing %q, want cpu:index/role", s)
	}
	cpuStr, idxStr, found := strings.Cut(refStr, ":")
	if !found {
		return NoEvent, 0, fmt.Errorf("bad pairing reference %q", refStr)
	}
	cpu, err := strconv.Atoi(cpuStr)
	if err != nil || cpu < 0 {
		return NoEvent, 0, fmt.Errorf("bad pairing cpu %q", cpuStr)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil || idx < 0 {
		return NoEvent, 0, fmt.Errorf("bad pairing index %q", idxStr)
	}
	var role memmodel.Role
	switch roleStr {
	case "release":
		role = memmodel.RoleRelease
	case "sync":
		role = memmodel.RoleSyncOther
	default:
		return NoEvent, 0, fmt.Errorf("bad pairing role %q", roleStr)
	}
	return EventRef{CPU: cpu, Index: idx}, role, nil
}

package trace

// Incremental stream framing for the wrserve daemon. Where the WRT1 file
// format is written once, whole, after the run, a WRS1 stream is the wire
// form of an execution in flight: the header goes out once when the
// connection opens, then operations follow in issue order as
// length-prefixed batches the server can decode, validate, and feed to
// its incremental detector without ever holding the full trace.
//
//	magic "WRS1"
//	header: name, model, seed, numCPUs, numLocations,
//	        traceID, parentSpan                        (WRT1 field codec)
//	batch*: uvarint payloadBytes > 0, then payload:
//	          uvarint opCount, then per op:
//	            kind byte, cpu, pc, loc (uvarints),
//	            value, observedWrite, syncSeq (zig-zag varints)
//	end:    uvarint 0
//
// Operation IDs are implicit: the n-th operation on the stream has ID n,
// which is exactly Execution.Ops order, so observedWrite back-references
// (always to earlier operations) resolve against what the receiver has
// already seen. The scheduler-internal fields of sim.MemOp (Step,
// CommitStep, Speculative) deliberately do not travel: the detector does
// not consume them, and the replay seed in the header recovers them
// offline when needed.
//
// The length prefix is the error-isolation boundary: the receiver reads
// a batch fully before decoding it, so a lying length, a truncated
// payload, or garbage inside one client's batch surfaces as that
// stream's error and can never desynchronize another connection.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
)

const streamMagic = "WRS1"

// StreamBatchLimit bounds one batch's payload size; StreamOpsLimit bounds
// the operations in one batch. Both guard the server's per-batch
// allocation against corrupt or hostile length prefixes.
const (
	StreamBatchLimit = 1 << 24
	StreamOpsLimit   = 1 << 20
)

// StreamHeader identifies the execution a stream carries — the same
// fields the WRT1 file header records, which double as the replay seed's
// identity when the server's window retires events.
type StreamHeader struct {
	ProgramName  string
	Model        memmodel.Model
	Seed         int64
	NumCPUs      int
	NumLocations int

	// TraceID and ParentSpan carry the client's trace context so the
	// server can continue the trace the client started: per-batch server
	// spans land under the same trace ID the client prints, and
	// /trace/{stream} on the server joins with the client's own latency
	// summary. Zero means untraced — servers then mint their own ID.
	TraceID    uint64
	ParentSpan uint64
}

// StreamWriter frames an operation stream onto w: header once at
// construction, then WriteBatch per batch, then Close for the
// end-of-stream marker. Not safe for concurrent use.
type StreamWriter struct {
	w       *bufio.Writer
	payload bytes.Buffer
	pw      *bufio.Writer
	cw      *countingWriter
	wrote   int // operations framed so far (the next op's implicit ID)
	closed  bool
}

// NewStreamWriter writes the stream header and returns the writer.
func NewStreamWriter(w io.Writer, h StreamHeader) (*StreamWriter, error) {
	sw := &StreamWriter{w: bufio.NewWriter(w)}
	sw.pw = bufio.NewWriter(&sw.payload)
	sw.cw = &countingWriter{w: sw.pw}
	if _, err := sw.w.WriteString(streamMagic); err != nil {
		return nil, fmt.Errorf("trace: stream encode: %w", err)
	}
	hw := &countingWriter{w: sw.w}
	hw.str(h.ProgramName)
	hw.uvarint(uint64(h.Model))
	hw.varint(h.Seed)
	hw.uvarint(uint64(h.NumCPUs))
	hw.uvarint(uint64(h.NumLocations))
	hw.uvarint(h.TraceID)
	hw.uvarint(h.ParentSpan)
	if hw.err != nil {
		return nil, fmt.Errorf("trace: stream encode: %w", hw.err)
	}
	if err := sw.w.Flush(); err != nil {
		return nil, fmt.Errorf("trace: stream encode: %w", err)
	}
	return sw, nil
}

// WriteBatch frames ops as one length-prefixed batch and flushes it onto
// the wire. Ops must continue the stream's issue order: the first op of
// the first batch has ID 0, and IDs are consecutive across batches.
func (sw *StreamWriter) WriteBatch(ops []sim.MemOp) error {
	if sw.closed {
		return fmt.Errorf("trace: stream encode: write after Close")
	}
	if len(ops) == 0 {
		return nil
	}
	if len(ops) > StreamOpsLimit {
		return fmt.Errorf("trace: stream encode: batch of %d ops exceeds limit %d", len(ops), StreamOpsLimit)
	}
	sw.payload.Reset()
	sw.pw.Reset(&sw.payload)
	cw := sw.cw
	cw.err = nil
	cw.uvarint(uint64(len(ops)))
	for _, op := range ops {
		if op.ID != sw.wrote {
			return fmt.Errorf("trace: stream encode: op ID %d breaks issue order (want %d)", op.ID, sw.wrote)
		}
		sw.wrote++
		cw.byte(byte(op.Kind))
		cw.uvarint(uint64(op.CPU))
		cw.uvarint(uint64(op.PC))
		cw.uvarint(uint64(op.Loc))
		cw.varint(op.Value)
		cw.varint(int64(op.ObservedWrite))
		cw.varint(int64(op.SyncSeq))
	}
	if cw.err == nil {
		cw.err = sw.pw.Flush()
	}
	if cw.err != nil {
		return fmt.Errorf("trace: stream encode: %w", cw.err)
	}
	if sw.payload.Len() > StreamBatchLimit {
		return fmt.Errorf("trace: stream encode: batch payload %d bytes exceeds limit %d", sw.payload.Len(), StreamBatchLimit)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(sw.payload.Len()))
	if _, err := sw.w.Write(lenBuf[:n]); err != nil {
		return fmt.Errorf("trace: stream encode: %w", err)
	}
	if _, err := sw.w.Write(sw.payload.Bytes()); err != nil {
		return fmt.Errorf("trace: stream encode: %w", err)
	}
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("trace: stream encode: %w", err)
	}
	return nil
}

// Close writes the end-of-stream marker and flushes. It does not close
// the underlying writer.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	if err := sw.w.WriteByte(0); err != nil {
		return fmt.Errorf("trace: stream encode: %w", err)
	}
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("trace: stream encode: %w", err)
	}
	return nil
}

// StreamReader decodes a framed operation stream: header at
// construction, then Next per batch until io.EOF (clean end marker).
type StreamReader struct {
	r       *bufio.Reader
	hdr     StreamHeader
	payload []byte
	nextID  int
}

// ErrStreamTruncated reports a stream that ended without its
// end-of-stream marker — a vanished client, distinguishable from a clean
// close.
var ErrStreamTruncated = fmt.Errorf("trace: stream truncated before end-of-stream marker")

// NewStreamReader reads and validates the stream header.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	sr := &StreamReader{r: bufio.NewReader(r)}
	var mg [4]byte
	if _, err := io.ReadFull(sr.r, mg[:]); err != nil {
		return nil, fmt.Errorf("trace: stream decode: %w", err)
	}
	if string(mg[:]) != streamMagic {
		return nil, fmt.Errorf("trace: stream decode: bad magic %q", mg)
	}
	rd := &reader{r: sr.r}
	sr.hdr.ProgramName = rd.str()
	sr.hdr.Model = memmodel.Model(rd.uvarint())
	sr.hdr.Seed = rd.varint()
	sr.hdr.NumCPUs = rd.count("cpu")
	sr.hdr.NumLocations = rd.count("location")
	sr.hdr.TraceID = rd.uvarint()
	sr.hdr.ParentSpan = rd.uvarint()
	if rd.err != nil {
		return nil, fmt.Errorf("trace: stream decode header: %w", rd.err)
	}
	if sr.hdr.NumCPUs <= 0 || sr.hdr.NumLocations <= 0 {
		return nil, fmt.Errorf("trace: stream decode header: %d CPUs / %d locations", sr.hdr.NumCPUs, sr.hdr.NumLocations)
	}
	return sr, nil
}

// Header returns the stream's header.
func (sr *StreamReader) Header() StreamHeader { return sr.hdr }

// Decoded returns the number of operations decoded so far.
func (sr *StreamReader) Decoded() int { return sr.nextID }

// Next reads one batch, appending its operations to ops (which may be
// nil; pass a truncated previous result to reuse its backing array). It
// returns io.EOF after the clean end-of-stream marker,
// ErrStreamTruncated if the stream ends mid-frame, and a decode error if
// the batch is malformed. Every returned operation is validated against
// the header: CPU and location in range, kind known, back-references to
// already-decoded operations only.
func (sr *StreamReader) Next(ops []sim.MemOp) ([]sim.MemOp, error) {
	payloadLen, err := binary.ReadUvarint(sr.r)
	if err == io.EOF {
		return ops, ErrStreamTruncated
	}
	if err != nil {
		return ops, fmt.Errorf("trace: stream decode: %w", err)
	}
	if payloadLen == 0 {
		return ops, io.EOF
	}
	if payloadLen > StreamBatchLimit {
		return ops, fmt.Errorf("trace: stream decode: batch payload %d bytes exceeds limit %d", payloadLen, StreamBatchLimit)
	}
	if cap(sr.payload) < int(payloadLen) {
		sr.payload = make([]byte, payloadLen)
	}
	buf := sr.payload[:payloadLen]
	if _, err := io.ReadFull(sr.r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ops, ErrStreamTruncated
		}
		return ops, fmt.Errorf("trace: stream decode: %w", err)
	}
	return sr.decodeBatch(ops, buf)
}

func (sr *StreamReader) decodeBatch(ops []sim.MemOp, buf []byte) ([]sim.MemOp, error) {
	pos := 0
	uvar := func() (uint64, error) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: stream decode: batch op %d truncated mid-event", sr.nextID)
		}
		pos += n
		return v, nil
	}
	svar := func() (int64, error) {
		v, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: stream decode: batch op %d truncated mid-event", sr.nextID)
		}
		pos += n
		return v, nil
	}
	countU, err := uvar()
	if err != nil {
		return ops, err
	}
	if countU == 0 || countU > StreamOpsLimit {
		return ops, fmt.Errorf("trace: stream decode: batch op count %d out of range", countU)
	}
	for i := 0; i < int(countU); i++ {
		if pos >= len(buf) {
			return ops, fmt.Errorf("trace: stream decode: batch truncated mid-event at op %d", sr.nextID)
		}
		kind := sim.OpKind(buf[pos])
		pos++
		cpu, err := uvar()
		if err != nil {
			return ops, err
		}
		pc, err := uvar()
		if err != nil {
			return ops, err
		}
		loc, err := uvar()
		if err != nil {
			return ops, err
		}
		value, err := svar()
		if err != nil {
			return ops, err
		}
		observed, err := svar()
		if err != nil {
			return ops, err
		}
		syncSeq, err := svar()
		if err != nil {
			return ops, err
		}
		op := sim.MemOp{
			ID:            sr.nextID,
			CPU:           int(cpu),
			PC:            int(pc),
			Kind:          kind,
			Loc:           program.Addr(loc),
			Value:         value,
			ObservedWrite: int(observed),
			SyncSeq:       int(syncSeq),
		}
		if err := sr.validate(op); err != nil {
			return ops, err
		}
		sr.nextID++
		ops = append(ops, op)
	}
	if pos != len(buf) {
		return ops, fmt.Errorf("trace: stream decode: batch has %d trailing bytes", len(buf)-pos)
	}
	return ops, nil
}

func (sr *StreamReader) validate(op sim.MemOp) error {
	switch op.Kind {
	case sim.OpDataRead, sim.OpDataWrite, sim.OpAcquireRead, sim.OpReleaseWrite, sim.OpSyncWriteOther:
	default:
		return fmt.Errorf("trace: stream decode: op %d: unknown kind %d", op.ID, int(op.Kind))
	}
	if op.CPU < 0 || op.CPU >= sr.hdr.NumCPUs {
		return fmt.Errorf("trace: stream decode: op %d: CPU %d out of range [0,%d)", op.ID, op.CPU, sr.hdr.NumCPUs)
	}
	if int(op.Loc) < 0 || int(op.Loc) >= sr.hdr.NumLocations {
		return fmt.Errorf("trace: stream decode: op %d: location %d out of range [0,%d)", op.ID, op.Loc, sr.hdr.NumLocations)
	}
	if op.ObservedWrite < sim.InitialWrite || op.ObservedWrite >= op.ID {
		return fmt.Errorf("trace: stream decode: op %d: observed write %d is not an earlier operation", op.ID, op.ObservedWrite)
	}
	if op.SyncSeq < -1 {
		return fmt.Errorf("trace: stream decode: op %d: sync seq %d", op.ID, op.SyncSeq)
	}
	return nil
}

// StreamExecution frames a whole execution onto w: header, batches of
// batchSize operations, end marker. It is what wrclient and the tests
// use; batchSize ≤ 0 defaults to 512.
func StreamExecution(w io.Writer, e *sim.Execution, batchSize int) error {
	if batchSize <= 0 {
		batchSize = 512
	}
	sw, err := NewStreamWriter(w, StreamHeader{
		ProgramName:  e.ProgramName,
		Model:        e.Model,
		Seed:         e.Seed,
		NumCPUs:      e.NumCPUs,
		NumLocations: e.NumLocations,
	})
	if err != nil {
		return err
	}
	for start := 0; start < len(e.Ops); start += batchSize {
		end := start + batchSize
		if end > len(e.Ops) {
			end = len(e.Ops)
		}
		if err := sw.WriteBatch(e.Ops[start:end]); err != nil {
			return err
		}
	}
	return sw.Close()
}

// Trace validation (structural invariants, typically checked after
// decoding), parallelized per stream chunk.
//
// The serial checker walked every stream in processor-major order and
// returned the first violation it met. That scan order IS the spec: the
// parallel version must report the identical error for any worker
// count. The checks split cleanly:
//
//   - per-event structural checks (field/kind agreement, access-set and
//     location ranges, pairing references) touch only the event and the
//     immutable stream it points at — independent across streams, so
//     chunks of one stream are checked by a worker pool, each chunk
//     remembering its FIRST violation;
//   - the cross-stream so1 checks (per-location SyncSeq uniqueness and
//     density) need global state — a cheap serial epilogue over just the
//     synchronization events, which every chunk collects as flat
//     (loc, seq, cpu, index) records along the way.
//
// Determinism falls out of ordering, not scheduling: the winning error
// is the minimum over all candidates of (cpu, index, stage), where
// stage ranks the checks WITHIN one event exactly as the serial code
// ran them (role/range/negative-seq before the duplicate-SyncSeq check,
// pairing checks after it). Chunks are enumerated processor-major, so
// the first errored chunk holds the minimal per-event candidate; the
// epilogue sorts the sync records by (loc, seq, cpu, index), making the
// duplicate candidate — each duplicate group's second occurrence in
// scan order — schedule-independent too. Density errors (a missing
// SyncSeq) only surface when nothing else failed, in ascending location
// order.
package trace

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"weakrace/internal/bitset"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/telemetry"
)

// validateCutoff is the event count below which validation stays on the
// calling goroutine: fanning out costs more than the checks themselves
// on small traces. Both paths produce identical errors, so the cutoff
// is purely a scheduling decision.
const validateCutoff = 4096

// validateChunk is the number of events per parallel work unit. Chunks
// subdivide streams so a few long streams still spread across many
// workers.
const validateChunk = 8192

// Event-check stages, ranking the checks within one event in the order
// the serial scan ran them. A candidate error is compared by
// (cpu, index, stage): stage only breaks ties when one event trips both
// a chunk-local check and the epilogue's duplicate check.
const (
	stagePreDup  = 0 // kind/role/range/negative-SyncSeq checks
	stageDup     = 1 // duplicate SyncSeq (epilogue)
	stagePostDup = 2 // pairing-reference checks
)

// syncRec is one synchronization event flattened for the so1 epilogue.
type syncRec struct {
	loc  program.Addr
	seq  int
	c, i int32
}

// vUnit is one chunk of validation work: events [lo, hi) of stream c,
// plus the chunk's outputs — its first structural violation (if any)
// and the sync records it passed over.
type vUnit struct {
	c, lo, hi int
	errI      int
	errStage  int
	err       error
	recs      []syncRec
}

// Validate checks structural invariants of a trace (typically after
// decoding): event fields match their kind, references resolve, observed
// events are synchronization writes on the same location, and per-location
// synchronization sequence numbers are unique and dense.
func (t *Trace) Validate() error { return t.ValidateParallel(1) }

// ValidateParallel is Validate with a worker budget for the per-stream
// pass (0 or negative means GOMAXPROCS). The reported error is
// identical for every worker count.
func (t *Trace) ValidateParallel(workers int) error {
	if t.NumCPUs != len(t.PerCPU) {
		return fmt.Errorf("trace: NumCPUs=%d but %d streams", t.NumCPUs, len(t.PerCPU))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if t.NumEvents() < validateCutoff {
		workers = 1
	}

	// Processor-major chunk list: unit order is the serial scan order,
	// so the first errored unit holds the minimal (cpu, index) among
	// per-event candidates.
	var units []vUnit
	for c, evs := range t.PerCPU {
		for lo := 0; lo < len(evs); lo += validateChunk {
			hi := min(lo+validateChunk, len(evs))
			units = append(units, vUnit{c: c, lo: lo, hi: hi})
		}
	}
	if workers > len(units) {
		workers = len(units)
	}

	reg := telemetry.Default()
	if reg.Enabled() {
		reg.Gauge("trace.validate.workers").SetMax(int64(workers))
	}
	sp := reg.StartSpan("trace.validate.streams")
	if workers <= 1 {
		for k := range units {
			t.validateUnit(&units[k])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(units) {
						return
					}
					t.validateUnit(&units[k])
				}
			}()
		}
		wg.Wait()
	}
	sp.End()

	sp = reg.StartSpan("trace.validate.so1")
	defer sp.End()
	return t.validateEpilogue(units)
}

// validateUnit runs the per-event structural checks on one chunk,
// recording the chunk's first violation and collecting sync records for
// the epilogue. Sync records keep accumulating past a violation: any
// duplicate they later imply sits at a larger (cpu, index) than this
// chunk's error and loses the candidate comparison anyway.
func (t *Trace) validateUnit(u *vUnit) {
	evs := t.PerCPU[u.c]
	fail := func(i, stage int, err error) {
		if u.err == nil {
			u.errI, u.errStage, u.err = i, stage, err
		}
	}
	for i := u.lo; i < u.hi; i++ {
		ev := evs[i]
		if ev.Kind == Sync {
			u.recs = append(u.recs, syncRec{loc: ev.Loc, seq: ev.SyncSeq, c: int32(u.c), i: int32(i)})
		}
		if u.err != nil {
			continue
		}
		switch ev.Kind {
		case Comp:
			if ev.Reads == nil || ev.Writes == nil {
				fail(i, stagePreDup, fmt.Errorf("%s: computation event with nil access sets", u.where(i)))
				continue
			}
			if ev.Reads.Empty() && ev.Writes.Empty() {
				fail(i, stagePreDup, fmt.Errorf("%s: empty computation event", u.where(i)))
				continue
			}
			check := func(set *bitset.Set) error {
				var err error
				set.Range(func(v int) bool {
					if v >= t.NumLocations {
						err = fmt.Errorf("%s: location %d out of range [0,%d)", u.where(i), v, t.NumLocations)
						return false
					}
					return true
				})
				return err
			}
			if err := check(ev.Reads); err != nil {
				fail(i, stagePreDup, err)
				continue
			}
			if err := check(ev.Writes); err != nil {
				fail(i, stagePreDup, err)
				continue
			}
		case Sync:
			if !ev.Role.IsSync() {
				fail(i, stagePreDup, fmt.Errorf("%s: sync event with role %v", u.where(i), ev.Role))
				continue
			}
			if ev.Loc < 0 || int(ev.Loc) >= t.NumLocations {
				fail(i, stagePreDup, fmt.Errorf("%s: sync location %d out of range", u.where(i), ev.Loc))
				continue
			}
			if ev.SyncSeq < 0 {
				fail(i, stagePreDup, fmt.Errorf("%s: negative SyncSeq", u.where(i)))
				continue
			}
			if ev.Observed.Valid() {
				obs := t.Event(ev.Observed)
				if obs == nil {
					fail(i, stagePostDup, fmt.Errorf("%s: dangling pairing reference %s", u.where(i), ev.Observed))
					continue
				}
				if !obs.IsWriteSync() {
					fail(i, stagePostDup, fmt.Errorf("%s: paired event %s is not a synchronization write", u.where(i), ev.Observed))
					continue
				}
				if obs.Loc != ev.Loc {
					fail(i, stagePostDup, fmt.Errorf("%s: paired event %s is on location %d, want %d", u.where(i), ev.Observed, obs.Loc, ev.Loc))
					continue
				}
				if ev.Role != memmodel.RoleAcquire {
					fail(i, stagePostDup, fmt.Errorf("%s: non-acquire event carries a pairing", u.where(i)))
					continue
				}
			}
		default:
			fail(i, stagePreDup, fmt.Errorf("%s: unknown kind %d", u.where(i), ev.Kind))
		}
	}
}

// where renders the error-message position prefix. Only called on a
// violation — the serial checker formatted it per event, which was a
// measurable slice of validation time on large clean traces.
func (u *vUnit) where(i int) string {
	return fmt.Sprintf("trace: event P%d.%d", u.c+1, i)
}

// validateEpilogue resolves the winning error across the chunks' local
// candidates and the cross-stream so1 checks.
func (t *Trace) validateEpilogue(units []vUnit) error {
	// Minimal per-event candidate: first errored unit in scan order.
	var best *vUnit
	for k := range units {
		if units[k].err != nil {
			best = &units[k]
			break
		}
	}

	// Flatten and sort the sync records; groups with equal (loc, seq)
	// become adjacent, ordered by scan position within the group.
	total := 0
	for k := range units {
		total += len(units[k].recs)
	}
	recs := make([]syncRec, 0, total)
	for k := range units {
		recs = append(recs, units[k].recs...)
	}
	sort.Slice(recs, func(a, b int) bool {
		ra, rb := recs[a], recs[b]
		if ra.loc != rb.loc {
			return ra.loc < rb.loc
		}
		if ra.seq != rb.seq {
			return ra.seq < rb.seq
		}
		if ra.c != rb.c {
			return ra.c < rb.c
		}
		return ra.i < rb.i
	})

	// Duplicate candidate: the serial scan errored at a duplicate
	// group's SECOND occurrence in scan order; the winner is the minimal
	// such position across groups.
	dup := syncRec{c: -1}
	for j := 1; j < len(recs); j++ {
		if recs[j].loc != recs[j-1].loc || recs[j].seq != recs[j-1].seq {
			continue
		}
		if j >= 2 && recs[j].loc == recs[j-2].loc && recs[j].seq == recs[j-2].seq {
			continue // third-or-later occurrence, not the group's trip point
		}
		if dup.c < 0 || recs[j].c < dup.c || (recs[j].c == dup.c && recs[j].i < dup.i) {
			dup = recs[j]
		}
	}
	if dup.c >= 0 {
		dupBeatsBest := best == nil ||
			int(dup.c) < best.c ||
			(int(dup.c) == best.c && (int(dup.i) < best.errI ||
				(int(dup.i) == best.errI && stageDup < best.errStage)))
		if dupBeatsBest {
			return fmt.Errorf("trace: event P%d.%d: duplicate SyncSeq %d for location %d",
				dup.c+1, dup.i, dup.seq, dup.loc)
		}
	}
	if best != nil {
		return best.err
	}

	// Density: with no duplicates, each location's seqs must be exactly
	// 0..n-1; the sorted per-location run exposes the first gap.
	start := 0
	for j := 1; j <= len(recs); j++ {
		if j < len(recs) && recs[j].loc == recs[start].loc {
			continue
		}
		for k := start; k < j; k++ {
			if recs[k].seq != k-start {
				return fmt.Errorf("trace: location %d: SyncSeq %d missing (%d sync events)",
					recs[start].loc, k-start, j-start)
			}
		}
		start = j
	}
	return nil
}

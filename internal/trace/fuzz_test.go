package trace_test

import (
	"bytes"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// seedCorpus returns encoded traces to seed the fuzzers.
func seedCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	var out [][]byte
	for _, w := range []*workload.Workload{
		workload.Figure1a(), workload.Figure1b(), workload.Figure2(),
	} {
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 1, InitMemory: w.InitMemory})
		if err != nil {
			tb.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.Encode(&buf, trace.FromExecution(r.Exec)); err != nil {
			tb.Fatal(err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

// FuzzDecode: arbitrary bytes must never panic the binary decoder, and
// anything it accepts must survive validation and analysis.
func FuzzDecode(f *testing.F) {
	for _, seed := range seedCorpus(f) {
		f.Add(seed)
	}
	f.Add([]byte("WRT1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid trace: %v", err)
		}
		if _, err := core.Analyze(tr, core.Options{SkipValidate: true}); err != nil {
			t.Fatalf("analysis failed on decoded trace: %v", err)
		}
	})
}

// FuzzDecodeText: same contract for the text codec.
func FuzzDecodeText(f *testing.F) {
	for _, w := range []*workload.Workload{workload.Figure1b(), workload.Figure2()} {
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 1, InitMemory: w.InitMemory})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.EncodeText(&buf, trace.FromExecution(r.Exec)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add("weakrace-trace 1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := trace.DecodeText(bytes.NewReader([]byte(src)))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("DecodeText accepted an invalid trace: %v", err)
		}
	})
}

package trace_test

import (
	"bytes"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// seedCorpus returns encoded traces to seed the fuzzers.
func seedCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	var out [][]byte
	for _, w := range []*workload.Workload{
		workload.Figure1a(), workload.Figure1b(), workload.Figure2(),
	} {
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 1, InitMemory: w.InitMemory})
		if err != nil {
			tb.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.Encode(&buf, trace.FromExecution(r.Exec)); err != nil {
			tb.Fatal(err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

// FuzzDecode: arbitrary bytes must never panic the binary decoder, and
// anything it accepts must survive validation and analysis.
func FuzzDecode(f *testing.F) {
	for _, seed := range seedCorpus(f) {
		f.Add(seed)
	}
	f.Add([]byte("WRT1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid trace: %v", err)
		}
		if _, err := core.Analyze(tr, core.Options{SkipValidate: true}); err != nil {
			t.Fatalf("analysis failed on decoded trace: %v", err)
		}
	})
}

// FuzzDecodeText: same contract for the text codec.
func FuzzDecodeText(f *testing.F) {
	for _, w := range []*workload.Workload{workload.Figure1b(), workload.Figure2()} {
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 1, InitMemory: w.InitMemory})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.EncodeText(&buf, trace.FromExecution(r.Exec)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add("weakrace-trace 1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := trace.DecodeText(bytes.NewReader([]byte(src)))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("DecodeText accepted an invalid trace: %v", err)
		}
	})
}

// streamSeedCorpus returns framed op streams to seed the stream fuzzer.
func streamSeedCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	var out [][]byte
	for i, w := range []*workload.Workload{
		workload.Figure1a(), workload.Figure2(),
		workload.Random(workload.RandomParams{Seed: 4, UnlockedFraction: 0.5}),
	} {
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: int64(i), InitMemory: w.InitMemory})
		if err != nil {
			tb.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.StreamExecution(&buf, r.Exec, 8); err != nil {
			tb.Fatal(err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

// FuzzStreamDecode: arbitrary bytes must never panic the incremental
// batch decoder, and every operation it accepts must satisfy the framing
// invariants (header-bounded CPU/location, backward observed-write
// references, consecutive IDs) — the properties the wrserve daemon's
// per-stream isolation depends on.
func FuzzStreamDecode(f *testing.F) {
	for _, seed := range streamSeedCorpus(f) {
		f.Add(seed)
	}
	f.Add([]byte("WRS1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := trace.NewStreamReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		hdr := sr.Header()
		var ops []sim.MemOp
		for {
			before := len(ops)
			ops, err = sr.Next(ops)
			if err != nil {
				return
			}
			if len(ops) == before {
				t.Fatal("Next succeeded without decoding any operation")
			}
			for i := before; i < len(ops); i++ {
				op := ops[i]
				if op.ID != i {
					t.Fatalf("op %d decoded with ID %d", i, op.ID)
				}
				if op.CPU < 0 || op.CPU >= hdr.NumCPUs {
					t.Fatalf("op %d: CPU %d escaped header bound %d", i, op.CPU, hdr.NumCPUs)
				}
				if int(op.Loc) < 0 || int(op.Loc) >= hdr.NumLocations {
					t.Fatalf("op %d: location %d escaped header bound %d", i, op.Loc, hdr.NumLocations)
				}
				if op.ObservedWrite < sim.InitialWrite || op.ObservedWrite >= op.ID {
					t.Fatalf("op %d: non-causal observed write %d", i, op.ObservedWrite)
				}
			}
		}
	})
}

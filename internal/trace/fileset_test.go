package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/workload"
)

func TestFileSetRoundTrip(t *testing.T) {
	for _, w := range []*workload.Workload{
		workload.Figure1b(),
		workload.Figure2(),
		workload.LockedCounter(3, 2, 1),
	} {
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 4, InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		want := FromExecution(r.Exec)
		dir := filepath.Join(t.TempDir(), "set")
		if err := WriteFileSet(dir, want); err != nil {
			t.Fatal(err)
		}
		// One file per processor plus the manifest.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != want.NumCPUs+1 {
			t.Fatalf("%s: %d entries, want %d", w.Name, len(entries), want.NumCPUs+1)
		}
		got, err := ReadFileSet(dir)
		if err != nil {
			t.Fatal(err)
		}
		assertTracesEqual(t, want, got)
	}
}

func TestFileSetMissingFile(t *testing.T) {
	tr := traceFor(t, workload.Figure1b(), 1)
	dir := filepath.Join(t.TempDir(), "set")
	if err := WriteFileSet(dir, tr); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "cpu-1.wrt")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFileSet(dir); err == nil {
		t.Fatal("missing per-processor file not reported")
	}
}

func TestFileSetManifestErrors(t *testing.T) {
	tr := traceFor(t, workload.Figure1b(), 1)
	write := func(t *testing.T, mutate func(string) string) string {
		t.Helper()
		dir := filepath.Join(t.TempDir(), "set")
		if err := WriteFileSet(dir, tr); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, manifestName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(mutate(string(data))), 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	cases := []struct {
		name   string
		mutate func(string) string
		want   string
	}{
		{"bad header", func(s string) string {
			return strings.Replace(s, "weakrace-manifest 1", "nope", 1)
		}, "header"},
		{"bad model", func(s string) string {
			return strings.Replace(s, "model WO", "model PSO", 1)
		}, "unknown model"},
		{"path escape", func(s string) string {
			return strings.Replace(s, "cpu-0.wrt", "../evil.wrt", 1)
		}, "escapes"},
		{"missing entry", func(s string) string {
			return strings.Replace(s, "file 1 cpu-1.wrt\n", "", 1)
		}, "files for"},
		{"unknown directive", func(s string) string {
			return s + "banana split\n"
		}, "unknown directive"},
	}
	for _, c := range cases {
		dir := write(t, c.mutate)
		_, err := ReadFileSet(dir)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestFileSetRejectsForeignEvents(t *testing.T) {
	// A per-processor file carrying another processor's events is corrupt.
	tr := traceFor(t, workload.Figure1b(), 1)
	dir := filepath.Join(t.TempDir(), "set")
	if err := WriteFileSet(dir, tr); err != nil {
		t.Fatal(err)
	}
	// Overwrite cpu-0's file with the full trace (which has P2 events too).
	f, err := os.Create(filepath.Join(dir, "cpu-0.wrt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ReadFileSet(dir); err == nil || !strings.Contains(err.Error(), "carries events") {
		t.Fatalf("err = %v", err)
	}
}

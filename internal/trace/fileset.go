package trace

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"weakrace/internal/memmodel"
)

// The paper's instrumentation "generate[s] trace files" — plural: each
// processor writes its own stream, and the post-mortem analyzer gathers
// them. A file set mirrors that layout on disk:
//
//	dir/manifest.wrm     header + per-processor file names
//	dir/cpu-0.wrt        processor 0's event stream (binary)
//	dir/cpu-1.wrt        ...
//
// Per-processor files use the single-trace binary codec with NumCPUs set
// to the full processor count and the other streams empty, so each file
// is independently decodable and pairing references stay meaningful.

const manifestName = "manifest.wrm"

// WriteFileSet writes the trace as a manifest plus one binary file per
// processor under dir (created if needed).
func WriteFileSet(dir string, t *Trace) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("trace: fileset: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace: fileset: %w", err)
	}
	mf, err := os.Create(filepath.Join(dir, manifestName))
	if err != nil {
		return fmt.Errorf("trace: fileset: %w", err)
	}
	w := bufio.NewWriter(mf)
	fmt.Fprintf(w, "weakrace-manifest 1\n")
	fmt.Fprintf(w, "program %q\n", t.ProgramName)
	fmt.Fprintf(w, "model %s\n", t.Model)
	fmt.Fprintf(w, "seed %d\n", t.Seed)
	fmt.Fprintf(w, "cpus %d\n", t.NumCPUs)
	fmt.Fprintf(w, "locations %d\n", t.NumLocations)
	for c := 0; c < t.NumCPUs; c++ {
		fmt.Fprintf(w, "file %d cpu-%d.wrt\n", c, c)
	}
	if err := w.Flush(); err != nil {
		mf.Close()
		return fmt.Errorf("trace: fileset: %w", err)
	}
	if err := mf.Close(); err != nil {
		return fmt.Errorf("trace: fileset: %w", err)
	}

	for c := 0; c < t.NumCPUs; c++ {
		part := &Trace{
			ProgramName:  t.ProgramName,
			Model:        t.Model,
			Seed:         t.Seed,
			NumCPUs:      t.NumCPUs,
			NumLocations: t.NumLocations,
			PerCPU:       make([][]*Event, t.NumCPUs),
		}
		part.PerCPU[c] = t.PerCPU[c]
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("cpu-%d.wrt", c)))
		if err != nil {
			return fmt.Errorf("trace: fileset: %w", err)
		}
		if err := encodeUnvalidated(f, part); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace: fileset: %w", err)
		}
	}
	return nil
}

// encodeUnvalidated is Encode; per-processor parts intentionally skip
// whole-trace validation (their pairing targets live in other files).
func encodeUnvalidated(f *os.File, part *Trace) error {
	return Encode(f, part)
}

// ReadFileSet reassembles a trace from a directory written by
// WriteFileSet and validates the merged result.
func ReadFileSet(dir string) (*Trace, error) {
	mf, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("trace: fileset: %w", err)
	}
	defer mf.Close()

	t := &Trace{}
	files := map[int]string{}
	sc := bufio.NewScanner(mf)
	line := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("trace: fileset: manifest line %d: %s", line, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if line == 1 {
			if text != "weakrace-manifest 1" {
				return nil, fail("bad manifest header %q", text)
			}
			continue
		}
		key, rest, _ := strings.Cut(text, " ")
		switch key {
		case "program":
			name, err := strconv.Unquote(rest)
			if err != nil {
				return nil, fail("bad program name: %v", err)
			}
			t.ProgramName = name
		case "model":
			m, err := memmodel.Parse(rest)
			if err != nil {
				return nil, fail("%v", err)
			}
			t.Model = m
		case "seed":
			s, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fail("bad seed: %v", err)
			}
			t.Seed = s
		case "cpus":
			n, err := strconv.Atoi(rest)
			if err != nil || n < 0 || n > 1<<16 {
				return nil, fail("bad cpu count %q", rest)
			}
			t.NumCPUs = n
		case "locations":
			n, err := strconv.Atoi(rest)
			if err != nil || n < 0 || n > 1<<20 {
				return nil, fail("bad location count %q", rest)
			}
			t.NumLocations = n
		case "file":
			idxStr, name, found := strings.Cut(rest, " ")
			if !found {
				return nil, fail("bad file entry %q", rest)
			}
			idx, err := strconv.Atoi(idxStr)
			if err != nil || idx < 0 {
				return nil, fail("bad file index %q", idxStr)
			}
			if strings.Contains(name, "/") || strings.Contains(name, "..") {
				return nil, fail("file name %q escapes the directory", name)
			}
			files[idx] = name
		default:
			return nil, fail("unknown directive %q", key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: fileset: %w", err)
	}
	if len(files) != t.NumCPUs {
		return nil, fmt.Errorf("trace: fileset: manifest lists %d files for %d processors", len(files), t.NumCPUs)
	}

	t.PerCPU = make([][]*Event, t.NumCPUs)
	for c := 0; c < t.NumCPUs; c++ {
		name, ok := files[c]
		if !ok {
			return nil, fmt.Errorf("trace: fileset: no file for processor %d", c)
		}
		part, err := readPart(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if part.NumCPUs != t.NumCPUs || part.NumLocations != t.NumLocations {
			return nil, fmt.Errorf("trace: fileset: %s header disagrees with manifest", name)
		}
		for other := 0; other < part.NumCPUs; other++ {
			if other != c && len(part.PerCPU[other]) > 0 {
				return nil, fmt.Errorf("trace: fileset: %s carries events for processor %d", name, other)
			}
		}
		t.PerCPU[c] = part.PerCPU[c]
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: fileset: %w", err)
	}
	return t, nil
}

// readPart decodes one per-processor file without whole-trace validation
// (pairing references point into other processors' files).
func readPart(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: fileset: %w", err)
	}
	defer f.Close()
	part, err := decodeNoValidate(f)
	if err != nil {
		return nil, fmt.Errorf("trace: fileset: %s: %w", path, err)
	}
	return part, nil
}

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"weakrace/internal/atomicio"
	"weakrace/internal/bitset"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/telemetry"
)

// Binary trace format. All integers are unsigned varints (or zig-zag
// varints where negative values occur), written little-endian-first as in
// encoding/binary's varint encoding.
//
//	magic "WRT1"
//	header: name, model, seed, numCPUs, numLocations
//	per CPU: event count, then events:
//	  kind byte
//	  comp: reads set, writes set, readPC map, writePC map
//	  sync: role, loc, syncSeq, pc, observed (valid, cpu, index, role)
//
// Sets are encoded as a count followed by delta-encoded ascending values.

const magic = "WRT1"

type countingWriter struct {
	w   *bufio.Writer
	err error
	// buf is the varint staging area. A stack `var buf [...]byte` would
	// escape into w.Write on every call — one heap allocation per varint,
	// the dominant cost of encoding — so it lives on the writer instead.
	buf  [binary.MaxVarintLen64]byte
	keys []int // pcMap's sorted-keys scratch, reused across events
}

func (cw *countingWriter) byte(b byte) {
	if cw.err == nil {
		cw.err = cw.w.WriteByte(b)
	}
}

func (cw *countingWriter) uvarint(v uint64) {
	if cw.err != nil {
		return
	}
	n := binary.PutUvarint(cw.buf[:], v)
	_, cw.err = cw.w.Write(cw.buf[:n])
}

func (cw *countingWriter) varint(v int64) {
	if cw.err != nil {
		return
	}
	n := binary.PutVarint(cw.buf[:], v)
	_, cw.err = cw.w.Write(cw.buf[:n])
}

func (cw *countingWriter) str(s string) {
	cw.uvarint(uint64(len(s)))
	if cw.err == nil {
		_, cw.err = cw.w.WriteString(s)
	}
}

func (cw *countingWriter) set(s *bitset.Set) {
	cw.uvarint(uint64(s.Len()))
	prev := 0
	s.Range(func(v int) bool {
		cw.uvarint(uint64(v - prev))
		prev = v
		return true
	})
}

func (cw *countingWriter) pcMap(m map[program.Addr]int) {
	keys := cw.keys[:0]
	for k := range m {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	cw.keys = keys
	cw.uvarint(uint64(len(keys)))
	for _, k := range keys {
		cw.uvarint(uint64(k))
		cw.uvarint(uint64(m[program.Addr(k)]))
	}
}

// byteCounter counts bytes flowing through an io.Writer (codec
// telemetry; only installed when collection is enabled).
type byteCounter struct {
	w io.Writer
	n int64
}

func (b *byteCounter) Write(p []byte) (int, error) {
	n, err := b.w.Write(p)
	b.n += int64(n)
	return n, err
}

// byteCountReader counts bytes consumed from an io.Reader.
type byteCountReader struct {
	r io.Reader
	n int64
}

func (b *byteCountReader) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// Encode writes the trace in binary form.
func Encode(w io.Writer, t *Trace) error {
	reg := telemetry.Default()
	defer reg.StartSpan("trace.encode").End()
	var bc *byteCounter
	if reg.Enabled() {
		bc = &byteCounter{w: w}
		w = bc
	}
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	cw.str(t.ProgramName)
	cw.uvarint(uint64(t.Model))
	cw.varint(t.Seed)
	cw.uvarint(uint64(t.NumCPUs))
	cw.uvarint(uint64(t.NumLocations))
	for _, evs := range t.PerCPU {
		cw.uvarint(uint64(len(evs)))
		for _, ev := range evs {
			cw.byte(byte(ev.Kind))
			switch ev.Kind {
			case Comp:
				cw.set(ev.Reads)
				cw.set(ev.Writes)
				cw.pcMap(ev.ReadPC)
				cw.pcMap(ev.WritePC)
			case Sync:
				cw.byte(byte(ev.Role))
				cw.uvarint(uint64(ev.Loc))
				cw.uvarint(uint64(ev.SyncSeq))
				cw.uvarint(uint64(ev.PC))
				if ev.Observed.Valid() {
					cw.byte(1)
					cw.uvarint(uint64(ev.Observed.CPU))
					cw.uvarint(uint64(ev.Observed.Index))
					cw.byte(byte(ev.ObservedRole))
				} else {
					cw.byte(0)
				}
			default:
				return fmt.Errorf("trace: encode: unknown event kind %d", ev.Kind)
			}
		}
	}
	if cw.err != nil {
		return fmt.Errorf("trace: encode: %w", cw.err)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if bc != nil {
		reg.Counter("trace.encode.calls").Inc()
		reg.Counter("trace.encode.bytes").Add(bc.n)
		reg.Counter("trace.encode.events").Add(int64(t.NumEvents()))
	}
	return nil
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (rd *reader) byte() byte {
	if rd.err != nil {
		return 0
	}
	b, err := rd.r.ReadByte()
	rd.err = err
	return b
}

func (rd *reader) uvarint() uint64 {
	if rd.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(rd.r)
	rd.err = err
	return v
}

func (rd *reader) varint() int64 {
	if rd.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(rd.r)
	rd.err = err
	return v
}

// Per-kind limits guard length-prefixed allocations against corrupt or
// hostile input: the analyzer allocates per-location and per-processor
// state, so these bound its worst-case footprint too.
var maxCounts = map[string]uint64{
	"cpu":      1 << 16,
	"location": 1 << 20,
	"event":    1 << 26,
	"set":      1 << 20,
	"pc map":   1 << 20,
	"string":   1 << 20,
}

func (rd *reader) count(what string) int {
	v := rd.uvarint()
	limit, ok := maxCounts[what]
	if !ok {
		limit = 1 << 26
	}
	if rd.err == nil && v > limit {
		rd.err = fmt.Errorf("%s count %d exceeds limit %d", what, v, limit)
	}
	return int(v)
}

func (rd *reader) str() string {
	n := rd.count("string")
	if rd.err != nil {
		return ""
	}
	buf := make([]byte, n)
	_, rd.err = io.ReadFull(rd.r, buf)
	return string(buf)
}

func (rd *reader) set(capHint int) *bitset.Set {
	n := rd.count("set")
	s := bitset.New(capHint)
	v := 0
	for i := 0; i < n && rd.err == nil; i++ {
		v += int(rd.uvarint())
		s.Add(v)
	}
	return s
}

func (rd *reader) pcMap() map[program.Addr]int {
	n := rd.count("pc map")
	m := make(map[program.Addr]int, n)
	for i := 0; i < n && rd.err == nil; i++ {
		k := program.Addr(rd.uvarint())
		m[k] = int(rd.uvarint())
	}
	return m
}

// Decode reads a binary trace and validates it.
func Decode(r io.Reader) (*Trace, error) {
	reg := telemetry.Default()
	defer reg.StartSpan("trace.decode").End()
	var bc *byteCountReader
	if reg.Enabled() {
		bc = &byteCountReader{r: r}
		r = bc
	}
	t, err := decodeNoValidate(r)
	if err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if bc != nil {
		reg.Counter("trace.decode.calls").Inc()
		reg.Counter("trace.decode.bytes").Add(bc.n)
		reg.Counter("trace.decode.events").Add(int64(t.NumEvents()))
	}
	return t, nil
}

// decodeNoValidate reads a binary trace without whole-trace validation;
// per-processor file-set parts need this because their pairing references
// point into other files.
func decodeNoValidate(r io.Reader) (*Trace, error) {
	rd := &reader{r: bufio.NewReader(r)}
	var mg [4]byte
	if _, err := io.ReadFull(rd.r, mg[:]); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if string(mg[:]) != magic {
		return nil, fmt.Errorf("trace: decode: bad magic %q", mg)
	}
	t := &Trace{}
	t.ProgramName = rd.str()
	t.Model = memmodel.Model(rd.uvarint())
	t.Seed = rd.varint()
	t.NumCPUs = rd.count("cpu")
	t.NumLocations = rd.count("location")
	if rd.err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", rd.err)
	}
	t.PerCPU = make([][]*Event, t.NumCPUs)
	for c := 0; c < t.NumCPUs; c++ {
		n := rd.count("event")
		for i := 0; i < n && rd.err == nil; i++ {
			ev := &Event{Kind: EventKind(rd.byte()), Observed: NoEvent, SyncSeq: -1}
			switch ev.Kind {
			case Comp:
				ev.Reads = rd.set(t.NumLocations)
				ev.Writes = rd.set(t.NumLocations)
				ev.ReadPC = rd.pcMap()
				ev.WritePC = rd.pcMap()
			case Sync:
				ev.Role = memmodel.Role(rd.byte())
				ev.Loc = program.Addr(rd.uvarint())
				ev.SyncSeq = int(rd.uvarint())
				ev.PC = int(rd.uvarint())
				if rd.byte() == 1 {
					ev.Observed = EventRef{CPU: int(rd.uvarint()), Index: int(rd.uvarint())}
					ev.ObservedRole = memmodel.Role(rd.byte())
				}
			default:
				return nil, fmt.Errorf("trace: decode: P%d event %d: unknown kind %d", c+1, i, ev.Kind)
			}
			t.PerCPU[c] = append(t.PerCPU[c], ev)
		}
	}
	if rd.err != nil {
		return nil, fmt.Errorf("trace: decode: %w", rd.err)
	}
	return t, nil
}

// WriteFile encodes the trace to path, atomically: the bytes land in a
// temp file in the same directory and are renamed into place only after a
// successful encode, so a crash or encode error never leaves a truncated
// trace that fails decode mid-campaign.
func WriteFile(path string, t *Trace) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return Encode(w, t)
	})
}

// ReadFile decodes the trace at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

package trace

import (
	"fmt"
	"io"
	"sort"

	"weakrace/internal/program"
)

// Dump writes a human-readable rendering of the trace — the debugging view
// of what the instrumentation recorded. The binary codec is authoritative;
// this format is not parsed back.
func Dump(w io.Writer, t *Trace) error {
	if _, err := fmt.Fprintf(w, "trace %q model=%s seed=%d cpus=%d locations=%d events=%d\n",
		t.ProgramName, t.Model, t.Seed, t.NumCPUs, t.NumLocations, t.NumEvents()); err != nil {
		return err
	}
	for c, evs := range t.PerCPU {
		if _, err := fmt.Fprintf(w, "P%d:\n", c+1); err != nil {
			return err
		}
		for i, ev := range evs {
			var err error
			switch ev.Kind {
			case Sync:
				_, err = fmt.Fprintf(w, "  %3d: %s\n", i, ev)
			case Comp:
				_, err = fmt.Fprintf(w, "  %3d: comp reads=%s writes=%s%s\n",
					i, ev.Reads, ev.Writes, pcAnnotations(ev))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func pcAnnotations(ev *Event) string {
	if len(ev.ReadPC) == 0 && len(ev.WritePC) == 0 {
		return ""
	}
	type kv struct {
		loc program.Addr
		pc  int
		rw  byte
	}
	var items []kv
	for loc, pc := range ev.ReadPC {
		items = append(items, kv{loc, pc, 'r'})
	}
	for loc, pc := range ev.WritePC {
		items = append(items, kv{loc, pc, 'w'})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].loc != items[j].loc {
			return items[i].loc < items[j].loc
		}
		return items[i].rw < items[j].rw
	})
	s := " pcs["
	for i, it := range items {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%c%d@%d", it.rw, it.loc, it.pc)
	}
	return s + "]"
}

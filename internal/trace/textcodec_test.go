package trace

import (
	"bytes"
	"strings"
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/workload"
)

func traceFor(t *testing.T, w *workload.Workload, seed int64) *Trace {
	t.Helper()
	r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: seed, InitMemory: w.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	return FromExecution(r.Exec)
}

func TestTextRoundTrip(t *testing.T) {
	for _, w := range []*workload.Workload{
		workload.Figure1a(),
		workload.Figure1b(),
		workload.Figure2(),
		workload.LockedCounter(3, 3, 1),
	} {
		for seed := int64(0); seed < 5; seed++ {
			tr := traceFor(t, w, seed)
			var buf bytes.Buffer
			if err := EncodeText(&buf, tr); err != nil {
				t.Fatal(err)
			}
			got, err := DecodeText(&buf)
			if err != nil {
				t.Fatalf("%s seed %d: %v\n", w.Name, seed, err)
			}
			assertTracesEqual(t, tr, got)
		}
	}
}

func TestTextAndBinaryAgree(t *testing.T) {
	tr := traceFor(t, workload.Figure2(), 3)
	var txt, bin bytes.Buffer
	if err := EncodeText(&txt, tr); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&bin, tr); err != nil {
		t.Fatal(err)
	}
	fromTxt, err := DecodeText(&txt)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := Decode(&bin)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, fromBin, fromTxt)
}

func TestTextFormatIsEditable(t *testing.T) {
	// A hand-written trace parses; comments and blank lines are ignored.
	src := `weakrace-trace 1
program "hand"
model WO
seed 0
cpus 2
locations 3

# writer
cpu 0
comp reads= writes=0@0,1@1
sync release loc=2 seq=0 pc=2
cpu 1
sync acquire loc=2 seq=1 pc=0 paired=0:1/release
comp reads=1@2,0@3 writes=
end
`
	tr, err := DecodeText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.ProgramName != "hand" || tr.NumCPUs != 2 || tr.NumEvents() != 4 {
		t.Fatalf("parsed trace wrong: %+v", tr)
	}
	acq := tr.PerCPU[1][0]
	if !acq.Observed.Valid() || acq.Observed.CPU != 0 || acq.Observed.Index != 1 ||
		acq.ObservedRole != memmodel.RoleRelease {
		t.Fatalf("pairing parsed wrong: %+v", acq)
	}
	if acq.Loc != 2 || acq.SyncSeq != 1 {
		t.Fatalf("sync fields parsed wrong: %+v", acq)
	}
	comp := tr.PerCPU[1][1]
	if !comp.Reads.Contains(0) || !comp.Reads.Contains(1) || comp.ReadPC[1] != 2 {
		t.Fatalf("comp access parsed wrong: %+v", comp)
	}
}

func TestTextDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"bad magic", "nope\n", "header"},
		{"missing header field", "weakrace-trace 1\nprogram \"x\"\n", "end of input"},
		{"bad model", "weakrace-trace 1\nprogram \"x\"\nmodel PSO\n", "unknown model"},
		{"event before cpu", header() + "comp reads= writes=0@0\nend\n", "before any"},
		{"bad cpu index", header() + "cpu 9\nend\n", "bad cpu index"},
		{"bad comp field", header() + "cpu 0\ncomp nope\nend\n", "bad comp field"},
		{"bad access", header() + "cpu 0\ncomp reads=zz writes=\nend\n", "bad access"},
		{"bad sync role", header() + "cpu 0\nsync banana loc=0 seq=0 pc=0\nend\n", "unknown sync role"},
		{"bad pairing", header() + "cpu 0\nsync acquire loc=0 seq=0 pc=0 paired=x\nend\n", "bad pairing"},
		{"unknown directive", header() + "bogus\nend\n", "unknown directive"},
		{"no end", header() + "cpu 0\n", "end of input"},
		{"validation failure", header() + "cpu 0\nsync release loc=99 seq=0 pc=0\nend\n", "out of range"},
	}
	for _, c := range cases {
		if _, err := DecodeText(strings.NewReader(c.src)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func header() string {
	return "weakrace-trace 1\nprogram \"x\"\nmodel WO\nseed 0\ncpus 2\nlocations 3\n"
}

// Package trace implements the instrumentation layer of the paper (§4.1).
//
// A trace records exactly the three things the paper's instrumentation
// produces, and nothing else:
//
//  1. the execution order of events issued by the same processor,
//  2. the relative execution order of synchronization events involving the
//     same location (plus, for acquires, which synchronization write
//     supplied the value — the pairing of Definition 2.1), and
//  3. the READ and WRITE sets of each computation event, as bit-vectors.
//
// An event is either a single synchronization operation (a synchronization
// event) or a maximal group of consecutively executed data operations (a
// computation event). The values read and written by data operations are
// deliberately NOT part of a trace: the detector must work from access
// sets alone, exactly as the paper prescribes.
//
// Traces are produced from a simulator execution (FromExecution — the
// "trusted instrumentation"), serialized with a binary codec, and consumed
// post-mortem by internal/core.
package trace

import (
	"fmt"

	"weakrace/internal/bitset"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
)

// EventKind distinguishes computation events from synchronization events.
type EventKind int

const (
	// Comp is a computation event: consecutive data operations.
	Comp EventKind = iota
	// Sync is a synchronization event: one synchronization operation.
	Sync
)

// String names the kind.
func (k EventKind) String() string {
	if k == Sync {
		return "sync"
	}
	return "comp"
}

// EventRef names an event by processor and position in that processor's
// event stream.
type EventRef struct {
	CPU   int
	Index int
}

// NoEvent is the zero EventRef used when a reference is absent.
var NoEvent = EventRef{CPU: -1, Index: -1}

// Valid reports whether the reference points at an event.
func (r EventRef) Valid() bool { return r.CPU >= 0 }

// String renders the reference as Pc.e.
func (r EventRef) String() string {
	if !r.Valid() {
		return "-"
	}
	return fmt.Sprintf("P%d.%d", r.CPU+1, r.Index)
}

// Event is one node of a processor's event stream.
type Event struct {
	Kind EventKind

	// Computation events.

	// Reads and Writes are the event's access sets (locations).
	Reads, Writes *bitset.Set
	// ReadPC and WritePC record, per location, the program counter of the
	// first data operation in this event that read/wrote it. Pure
	// provenance for race reports; the detector never consults them.
	ReadPC, WritePC map[program.Addr]int

	// Synchronization events.

	// Role is the operation's classification: acquire, release, or
	// sync-other (a Test&Set's write half).
	Role memmodel.Role
	// Loc is the synchronization location.
	Loc program.Addr
	// SyncSeq is the event's position in the global order of
	// synchronization operations on Loc.
	SyncSeq int
	// PC is the issuing instruction's program counter.
	PC int
	// Observed is the synchronization write event whose value this
	// acquire returned, when the value came from a synchronization write;
	// NoEvent otherwise (data write or initial value). Pairing policy is
	// applied at detection time, using ObservedRole.
	Observed EventRef
	// ObservedRole is the role of the observed synchronization write.
	ObservedRole memmodel.Role
}

// IsWriteSync reports whether a sync event writes its location.
func (e *Event) IsWriteSync() bool {
	return e.Kind == Sync && (e.Role == memmodel.RoleRelease || e.Role == memmodel.RoleSyncOther)
}

// IsReadSync reports whether a sync event reads its location.
func (e *Event) IsReadSync() bool {
	return e.Kind == Sync && e.Role == memmodel.RoleAcquire
}

// String renders the event compactly.
func (e *Event) String() string {
	if e.Kind == Sync {
		s := fmt.Sprintf("sync %s loc=%d seq=%d pc=%d", e.Role, e.Loc, e.SyncSeq, e.PC)
		if e.Observed.Valid() {
			s += fmt.Sprintf(" paired=%s", e.Observed)
		}
		return s
	}
	return fmt.Sprintf("comp reads=%s writes=%s", e.Reads, e.Writes)
}

// Trace is a complete post-mortem trace of one execution.
type Trace struct {
	ProgramName  string
	Model        memmodel.Model
	Seed         int64
	NumCPUs      int
	NumLocations int
	// PerCPU[c] is processor c's event stream in execution order.
	PerCPU [][]*Event
}

// NumEvents returns the total number of events.
func (t *Trace) NumEvents() int {
	n := 0
	for _, evs := range t.PerCPU {
		n += len(evs)
	}
	return n
}

// Event returns the event named by ref, or nil if out of range.
func (t *Trace) Event(ref EventRef) *Event {
	if !ref.Valid() || ref.CPU >= len(t.PerCPU) || ref.Index >= len(t.PerCPU[ref.CPU]) {
		return nil
	}
	return t.PerCPU[ref.CPU][ref.Index]
}

// Arena holds the slabs FromExecutionInto carves a Trace out of — the
// event array, the access-set words, the per-CPU event-pointer lists,
// and the pairing-resolution maps — so a caller that builds traces in a
// loop (a campaign worker iterating over seeds) reuses them instead of
// reallocating per execution. Unlike core.Arena's scratch, these slabs
// ARE retained by the returned Trace: reusing an arena invalidates every
// Trace previously built through it, so an arena must only be recycled
// after its trace (and any Analysis holding it) is dead, and must not be
// shared by concurrent builds.
type Arena struct {
	events  []Event
	words   []uint64
	refs    []*Event
	counts  []int // perCPUEvents ∥ perCPUSyncs, one buffer
	syncEvs []*Event
	opEvent map[int]EventRef
	opRole  map[int]memmodel.Role
}

// NewArena returns an empty arena. Slabs grow to the working-set size
// on first use and are reused afterwards.
func NewArena() *Arena { return &Arena{} }

// grow returns buf resliced to n, reallocating only when capacity is
// short. The contents are NOT zeroed — every caller overwrites fully.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// FromExecution instruments an execution: it groups each processor's
// consecutive data operations into computation events, emits one
// synchronization event per synchronization operation, and resolves
// acquire pairing references.
func FromExecution(e *sim.Execution) *Trace {
	return FromExecutionInto(e, nil)
}

// FromExecutionInto is FromExecution building into ar's slabs (see
// Arena); a nil arena allocates freshly, exactly like FromExecution.
func FromExecutionInto(e *sim.Execution, ar *Arena) *Trace {
	defer telemetry.Default().StartSpan("trace.build").End()
	if ar == nil {
		ar = &Arena{}
	}
	t := &Trace{
		ProgramName:  e.ProgramName,
		Model:        e.Model,
		Seed:         e.Seed,
		NumCPUs:      e.NumCPUs,
		NumLocations: e.NumLocations,
		PerCPU:       make([][]*Event, e.NumCPUs),
	}
	// Counting pass: derive every structure's final size from the op
	// streams before building anything, so construction never regrows a
	// slice or rehashes a map. An op stream determines the event count
	// exactly — one event per sync op plus one per maximal run of data ops.
	ar.counts = grow(ar.counts, 2*e.NumCPUs)
	clear(ar.counts)
	perCPUEvents := ar.counts[:e.NumCPUs]
	perCPUSyncs := ar.counts[e.NumCPUs:]
	syncWrites := 0
	for c := 0; c < e.NumCPUs; c++ {
		inComp := false
		for _, op := range e.OpsOf(c) {
			if op.Kind.IsSync() {
				if inComp {
					perCPUEvents[c]++
					inComp = false
				}
				perCPUEvents[c]++
				perCPUSyncs[c]++
				if op.Kind.IsWrite() {
					syncWrites++
				}
			} else {
				inComp = true
			}
		}
		if inComp {
			perCPUEvents[c]++
		}
	}

	// opEvent[id] is the event that contains operation id (filled for sync
	// writes; used to resolve acquire pairings in the second pass).
	if ar.opEvent == nil {
		ar.opEvent = make(map[int]EventRef, syncWrites)
		ar.opRole = make(map[int]memmodel.Role, syncWrites)
	} else {
		clear(ar.opEvent)
		clear(ar.opRole)
	}
	opEvent, opRole := ar.opEvent, ar.opRole

	totalEvents, totalComp := 0, 0
	for c := 0; c < e.NumCPUs; c++ {
		totalEvents += perCPUEvents[c]
		totalComp += perCPUEvents[c] - perCPUSyncs[c]
	}
	wordsPer := (e.NumLocations + 63) / 64
	// One Event slab for all processors, one word slab backing every
	// computation event's two access sets, one pointer slab carved into
	// the per-CPU streams. The word slab must be re-zeroed on reuse — the
	// builder only ORs bits in.
	ar.events = grow(ar.events, totalEvents)
	ar.refs = grow(ar.refs, totalEvents)
	ar.words = grow(ar.words, 2*wordsPer*totalComp)
	clear(ar.words)
	eventsLeft, refsLeft, words := ar.events, ar.refs, ar.words
	for c := 0; c < e.NumCPUs; c++ {
		slab := eventsLeft[:perCPUEvents[c]]
		eventsLeft = eventsLeft[perCPUEvents[c]:]
		t.PerCPU[c] = refsLeft[:0:perCPUEvents[c]]
		refsLeft = refsLeft[perCPUEvents[c]:]
		var cur *Event // open computation event, if any
		flush := func() {
			if cur != nil {
				t.PerCPU[c] = append(t.PerCPU[c], cur)
				cur = nil
			}
		}
		for _, op := range e.OpsOf(c) {
			if op.Kind.IsSync() {
				flush()
				ev := &slab[len(t.PerCPU[c])]
				*ev = Event{
					Kind:     Sync,
					Role:     op.Kind.Role(),
					Loc:      op.Loc,
					SyncSeq:  op.SyncSeq,
					PC:       op.PC,
					Observed: NoEvent,
				}
				ref := EventRef{CPU: c, Index: len(t.PerCPU[c])}
				t.PerCPU[c] = append(t.PerCPU[c], ev)
				if op.Kind.IsWrite() {
					opEvent[op.ID] = ref
					opRole[op.ID] = op.Kind.Role()
				}
				continue
			}
			if cur == nil {
				cur = &slab[len(t.PerCPU[c])]
				reads := bitset.Wrap(words[:wordsPer:wordsPer])
				writes := bitset.Wrap(words[wordsPer : 2*wordsPer : 2*wordsPer])
				words = words[2*wordsPer:]
				*cur = Event{
					Kind:     Comp,
					Reads:    reads,
					Writes:   writes,
					ReadPC:   map[program.Addr]int{},
					WritePC:  map[program.Addr]int{},
					SyncSeq:  -1,
					Observed: NoEvent,
				}
			}
			if op.Kind.IsRead() {
				if !cur.Reads.Contains(int(op.Loc)) {
					cur.ReadPC[op.Loc] = op.PC
				}
				cur.Reads.Add(int(op.Loc))
			} else {
				if !cur.Writes.Contains(int(op.Loc)) {
					cur.WritePC[op.Loc] = op.PC
				}
				cur.Writes.Add(int(op.Loc))
			}
		}
		flush()
	}

	// Second pass: resolve acquire pairings from observed write ops. Sync
	// operations map 1:1, in order, onto a processor's sync events.
	for c := 0; c < e.NumCPUs; c++ {
		syncEvents := grow(ar.syncEvs, perCPUSyncs[c])[:0]
		for _, ev := range t.PerCPU[c] {
			if ev.Kind == Sync {
				syncEvents = append(syncEvents, ev)
			}
		}
		ar.syncEvs = syncEvents
		si := 0
		for _, op := range e.OpsOf(c) {
			if !op.Kind.IsSync() {
				continue
			}
			ev := syncEvents[si]
			si++
			if op.Kind != sim.OpAcquireRead || op.ObservedWrite < 0 {
				continue
			}
			if ref, ok := opEvent[op.ObservedWrite]; ok {
				ev.Observed = ref
				ev.ObservedRole = opRole[op.ObservedWrite]
			}
		}
	}
	if reg := telemetry.Default(); reg.Enabled() {
		comp, syncN := 0, 0
		for _, evs := range t.PerCPU {
			for _, ev := range evs {
				if ev.Kind == Sync {
					syncN++
				} else {
					comp++
				}
			}
		}
		reg.Counter("trace.builds").Inc()
		reg.Counter("trace.events.comp").Add(int64(comp))
		reg.Counter("trace.events.sync").Add(int64(syncN))
		reg.Counter("trace.ops").Add(int64(len(e.Ops)))
	}
	return t
}

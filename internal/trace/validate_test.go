package trace

import (
	"fmt"
	"testing"

	"weakrace/internal/bitset"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
)

// validateWorkerSet is the worker counts every validation result must
// agree across, straddling the chunk count on both sides.
var validateWorkerSet = []int{1, 2, 3, 8, 16}

// synthTrace builds a deterministic valid trace large enough to clear
// validateCutoff and span several chunks per stream: cpus streams of
// roughly perCPU events each, mixing computation events with paired
// sync traffic over locs locations (dense per-location SyncSeqs, every
// odd sync an acquire observing the preceding release on its location).
func synthTrace(cpus, perCPU, locs int) *Trace {
	tr := &Trace{
		ProgramName: "synth", NumCPUs: cpus, NumLocations: locs + 2,
		PerCPU: make([][]*Event, cpus),
	}
	seq := make([]int, locs)
	lastRelease := make([]EventRef, locs)
	k := 0
	for len(tr.PerCPU[cpus-1]) < perCPU {
		c := k % cpus
		loc := program.Addr(k % locs)
		ev := &Event{Kind: Sync, Loc: loc, SyncSeq: seq[loc], Observed: NoEvent}
		seq[loc]++
		if seq[loc]%2 == 1 {
			ev.Role = memmodel.RoleRelease
			lastRelease[loc] = EventRef{CPU: c, Index: len(tr.PerCPU[c])}
		} else {
			ev.Role = memmodel.RoleAcquire
			ev.Observed = lastRelease[loc]
			ev.ObservedRole = memmodel.RoleRelease
		}
		tr.PerCPU[c] = append(tr.PerCPU[c], ev)
		if k%3 == 0 {
			tr.PerCPU[c] = append(tr.PerCPU[c], &Event{
				Kind:    Comp,
				Reads:   bitset.FromSlice([]int{int(loc)}),
				Writes:  bitset.FromSlice([]int{locs}),
				SyncSeq: -1, Observed: NoEvent,
			})
		}
		k++
	}
	return tr
}

// TestValidateParallelWorkerEquivalence pins the parallel validator's
// determinism contract: the reported error (or its absence) is
// byte-identical for every worker count, on a clean trace and across a
// catalog of corruptions planted at different streams, depths, and
// check stages.
func TestValidateParallelWorkerEquivalence(t *testing.T) {
	const cpus, perCPU, locs = 5, 1400, 7

	clean := synthTrace(cpus, perCPU, locs)
	if clean.NumEvents() < validateCutoff {
		t.Fatalf("synthetic trace too small to engage the parallel path: %d events", clean.NumEvents())
	}
	for _, w := range validateWorkerSet {
		if err := clean.ValidateParallel(w); err != nil {
			t.Fatalf("workers=%d: clean trace rejected: %v", w, err)
		}
	}

	firstSyncAt := func(tr *Trace, c, from int) int {
		for i := from; i < len(tr.PerCPU[c]); i++ {
			if tr.PerCPU[c][i].Kind == Sync {
				return i
			}
		}
		t.Fatalf("no sync event in stream %d at or after %d", c, from)
		return -1
	}

	cases := []struct {
		name   string
		mutate func(tr *Trace)
	}{
		{"duplicate within stream", func(tr *Trace) {
			i := firstSyncAt(tr, 2, 900)
			j := firstSyncAt(tr, 2, i+1)
			tr.PerCPU[2][j].Loc = tr.PerCPU[2][i].Loc
			tr.PerCPU[2][j].SyncSeq = tr.PerCPU[2][i].SyncSeq
			tr.PerCPU[2][j].Observed = NoEvent
		}},
		{"duplicate across streams", func(tr *Trace) {
			i := firstSyncAt(tr, 1, 100)
			j := firstSyncAt(tr, 4, 1200)
			tr.PerCPU[4][j].Loc = tr.PerCPU[1][i].Loc
			tr.PerCPU[4][j].SyncSeq = tr.PerCPU[1][i].SyncSeq
			tr.PerCPU[4][j].Observed = NoEvent
		}},
		{"negative seq deep in stream", func(tr *Trace) {
			i := firstSyncAt(tr, 3, 1300)
			tr.PerCPU[3][i].SyncSeq = -4
		}},
		{"dangling pairing", func(tr *Trace) {
			i := firstSyncAt(tr, 1, 700)
			tr.PerCPU[1][i].Role = memmodel.RoleAcquire
			tr.PerCPU[1][i].Observed = EventRef{CPU: 9, Index: 0}
		}},
		{"comp location out of range", func(tr *Trace) {
			for i, ev := range tr.PerCPU[3] {
				if ev.Kind == Comp && i > 400 {
					ev.Reads = bitset.FromSlice([]int{tr.NumLocations + 5})
					return
				}
			}
			t.Fatal("no comp event found")
		}},
		{"empty comp event", func(tr *Trace) {
			for i, ev := range tr.PerCPU[0] {
				if ev.Kind == Comp && i > 200 {
					ev.Reads = bitset.New(tr.NumLocations)
					ev.Writes = bitset.New(tr.NumLocations)
					return
				}
			}
			t.Fatal("no comp event found")
		}},
		{"duplicate and bad pairing on one event", func(tr *Trace) {
			// The duplicate check ran before the pairing checks in the
			// serial scan; the duplicate must win the tie.
			i := firstSyncAt(tr, 2, 500)
			j := firstSyncAt(tr, 2, i+1)
			tr.PerCPU[2][j].Loc = tr.PerCPU[2][i].Loc
			tr.PerCPU[2][j].SyncSeq = tr.PerCPU[2][i].SyncSeq
			tr.PerCPU[2][j].Role = memmodel.RoleAcquire
			tr.PerCPU[2][j].Observed = EventRef{CPU: 9, Index: 0}
		}},
		{"two errors in different streams", func(tr *Trace) {
			// Scan order picks the smaller (cpu, index) — the role error
			// in stream 1 beats the negative seq in stream 4.
			i := firstSyncAt(tr, 1, 1000)
			tr.PerCPU[1][i].Role = memmodel.RoleData
			j := firstSyncAt(tr, 4, 50)
			_ = j
			k := firstSyncAt(tr, 4, 1100)
			tr.PerCPU[4][k].SyncSeq = -1
		}},
		{"missing seq", func(tr *Trace) {
			i := firstSyncAt(tr, 2, 600)
			tr.PerCPU[2][i].SyncSeq = 1 << 20
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := synthTrace(cpus, perCPU, locs)
			c.mutate(tr)
			want := tr.ValidateParallel(1)
			if want == nil {
				t.Fatal("mutated trace unexpectedly valid")
			}
			for _, w := range validateWorkerSet[1:] {
				got := tr.ValidateParallel(w)
				if got == nil || got.Error() != want.Error() {
					t.Errorf("workers=%d: error %q, want %q", w, got, want)
				}
			}
		})
	}
}

// TestValidateParallelDuplicateTiePicksScanOrder pins the duplicate
// winner on a trace whose duplicate groups resolve at different scan
// positions: the reported duplicate is the one the serial scan would
// have hit first, for every worker count.
func TestValidateParallelDuplicateTiePicksScanOrder(t *testing.T) {
	tr := synthTrace(4, 1200, 5)
	// Group A trips (second occurrence) at stream 3's tail; group B at
	// stream 1's middle. B's trip point has the smaller (cpu, index).
	iA := 0
	for i := len(tr.PerCPU[3]) - 1; i >= 0; i-- {
		if tr.PerCPU[3][i].Kind == Sync {
			iA = i
			break
		}
	}
	a0 := tr.PerCPU[0][0]
	aT := tr.PerCPU[3][iA]
	aT.Loc, aT.SyncSeq, aT.Observed = a0.Loc, a0.SyncSeq, NoEvent

	iB := 0
	for i := 600; ; i++ {
		if tr.PerCPU[1][i].Kind == Sync {
			iB = i
			break
		}
	}
	b0 := tr.PerCPU[0][2]
	if b0.Kind != Sync {
		t.Fatal("expected a sync event at P1 index 2")
	}
	bT := tr.PerCPU[1][iB]
	bT.Loc, bT.SyncSeq, bT.Observed = b0.Loc, b0.SyncSeq, NoEvent

	want := fmt.Sprintf("trace: event P%d.%d: duplicate SyncSeq %d for location %d",
		1+1, iB, bT.SyncSeq, bT.Loc)
	for _, w := range validateWorkerSet {
		err := tr.ValidateParallel(w)
		if err == nil || err.Error() != want {
			t.Errorf("workers=%d: error %q, want %q", w, err, want)
		}
	}
}

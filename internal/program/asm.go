package program

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Assembly syntax. A program file looks like:
//
//	# the paper's Figure 1b
//	program "fig1b"
//	locations 3
//	registers 2
//	init [2] = 1
//
//	thread P1:
//	    write [0], #1
//	    write [1], #1
//	    unset [2]
//
//	thread P2:
//	spin:
//	    test&set r0, [2]
//	    bnz r0, spin
//	    read r0, [1]
//	    read r1, [0]
//
// Mnemonics and operand forms match the disassembler: `[5]` is a direct
// address, `[r1]`/`[r1+3]` register-indexed, `r0` a register, `#42` an
// immediate. Branch targets are labels or `@N` absolute indices, so
// disassembler output re-assembles. `thread 0 (P1):` headers (the
// disassembler's form) are accepted too. `init` directives preset shared
// memory and are returned alongside the program.

// Assemble parses assembly source into a validated program plus its
// initial-memory directives.
func Assemble(r io.Reader) (*Program, map[Addr]int64, error) {
	p := &asmParser{
		initMem: map[Addr]int64{},
		sc:      bufio.NewScanner(r),
	}
	p.sc.Buffer(make([]byte, 1<<16), 1<<22)
	if err := p.run(); err != nil {
		return nil, nil, err
	}
	prog, err := p.builder.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("asm: %w", err)
	}
	for a := range p.initMem {
		if a < 0 || int(a) >= prog.NumLocations {
			return nil, nil, fmt.Errorf("asm: init location %d out of range [0,%d)", a, prog.NumLocations)
		}
	}
	return prog, p.initMem, nil
}

// AssembleString is Assemble over a string.
func AssembleString(src string) (*Program, map[Addr]int64, error) {
	return Assemble(strings.NewReader(src))
}

type asmParser struct {
	sc      *bufio.Scanner
	line    int
	name    string
	locs    int
	regs    int
	initMem map[Addr]int64
	builder *Builder
	thread  *ThreadBuilder
}

func (p *asmParser) errf(format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *asmParser) run() error {
	for p.sc.Scan() {
		p.line++
		line := strings.TrimSpace(stripComment(p.sc.Text()))
		if line == "" {
			continue
		}
		if err := p.directive(line); err != nil {
			return err
		}
	}
	if err := p.sc.Err(); err != nil {
		return fmt.Errorf("asm: %w", err)
	}
	if p.builder == nil {
		return fmt.Errorf("asm: no threads (missing header directives?)")
	}
	return nil
}

// stripComment removes a trailing comment: a '#' that starts a token
// (immediates like #42 are preceded by space/comma but followed by a
// digit or '-', and comments conventionally have a space after '#' or
// start the line; we treat '#' as a comment only when it is the first
// character or is preceded by whitespace AND not followed by a digit/-).
func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] != '#' {
			continue
		}
		atStart := i == 0 || line[i-1] == ' ' || line[i-1] == '\t'
		immediate := i+1 < len(line) && (line[i+1] >= '0' && line[i+1] <= '9' || line[i+1] == '-')
		if atStart && !immediate {
			return line[:i]
		}
	}
	return line
}

func (p *asmParser) directive(line string) error {
	key, rest, _ := strings.Cut(line, " ")
	switch key {
	case "program":
		rest = strings.TrimSpace(rest)
		// Accept the disassembler's one-line header:
		//   program "x": 3 threads, 12 locations, 4 regs
		if name, counts, found := strings.Cut(rest, ":"); found {
			unq, err := strconv.Unquote(strings.TrimSpace(name))
			if err != nil {
				return p.errf("bad program name %s", name)
			}
			p.name = unq
			for _, field := range strings.Split(counts, ",") {
				parts := strings.Fields(field)
				if len(parts) != 2 {
					return p.errf("bad program header field %q", field)
				}
				n, err := strconv.Atoi(parts[0])
				if err != nil {
					return p.errf("bad program header count %q", parts[0])
				}
				switch parts[1] {
				case "locations":
					p.locs = n
				case "regs", "registers":
					p.regs = n
				case "threads":
					// informational
				default:
					return p.errf("bad program header field %q", field)
				}
			}
			return nil
		}
		name, err := strconv.Unquote(rest)
		if err != nil {
			return p.errf("bad program name %s", rest)
		}
		p.name = name
		return nil
	case "locations":
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil || n <= 0 {
			return p.errf("bad locations count %q", rest)
		}
		p.locs = n
		return nil
	case "registers":
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil || n <= 0 {
			return p.errf("bad registers count %q", rest)
		}
		p.regs = n
		return nil
	case "init":
		// init [loc] = value
		parts := strings.SplitN(rest, "=", 2)
		if len(parts) != 2 {
			return p.errf("bad init directive %q", line)
		}
		addrExpr, err := p.parseAddr(strings.TrimSpace(parts[0]))
		if err != nil {
			return err
		}
		if addrExpr.Indexed {
			return p.errf("init requires a direct address")
		}
		v, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return p.errf("bad init value %q", parts[1])
		}
		p.initMem[addrExpr.Base] = v
		return nil
	case "thread":
		if p.builder == nil {
			if p.locs == 0 || p.regs == 0 {
				return p.errf("thread before locations/registers directives")
			}
			if p.name == "" {
				p.name = "asm"
			}
			p.builder = NewBuilder(p.name, p.locs, p.regs)
		}
		name := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest), ":"))
		// Accept the disassembler's "thread 0 (P1):" form.
		if i := strings.IndexByte(name, '('); i >= 0 && strings.HasSuffix(name, ")") {
			name = strings.TrimSuffix(name[i+1:], ")")
		}
		p.thread = p.builder.Thread(name)
		return nil
	}

	// Inside a thread: label or instruction.
	if p.thread == nil {
		return p.errf("instruction %q outside any thread", line)
	}
	if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t,") {
		p.thread.Label(strings.TrimSuffix(line, ":"))
		return nil
	}
	// The disassembler prefixes instructions with "NNN:"; strip it.
	if i := strings.Index(line, ": "); i > 0 {
		if _, err := strconv.Atoi(strings.TrimSpace(line[:i])); err == nil {
			line = strings.TrimSpace(line[i+2:])
		}
	}
	return p.instruction(line)
}

func (p *asmParser) parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "r") {
		return 0, p.errf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, p.errf("bad register %q", s)
	}
	return Reg(n), nil
}

func (p *asmParser) parseAddr(s string) (AddrExpr, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return AddrExpr{}, p.errf("bad address %q", s)
	}
	inner := s[1 : len(s)-1]
	if strings.HasPrefix(inner, "r") {
		regStr, offStr, hasOff := strings.Cut(inner, "+")
		r, err := p.parseReg(regStr)
		if err != nil {
			return AddrExpr{}, err
		}
		off := int64(0)
		if hasOff {
			off, err = strconv.ParseInt(strings.TrimSpace(offStr), 10, 64)
			if err != nil {
				return AddrExpr{}, p.errf("bad address offset %q", offStr)
			}
		}
		return AtReg(r, Addr(off)), nil
	}
	n, err := strconv.ParseInt(inner, 10, 64)
	if err != nil || n < 0 {
		return AddrExpr{}, p.errf("bad address %q", s)
	}
	return At(Addr(n)), nil
}

func (p *asmParser) parseVal(s string) (ValExpr, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "#") {
		v, err := strconv.ParseInt(s[1:], 10, 64)
		if err != nil {
			return ValExpr{}, p.errf("bad immediate %q", s)
		}
		return Imm(v), nil
	}
	r, err := p.parseReg(s)
	if err != nil {
		return ValExpr{}, err
	}
	return FromReg(r), nil
}

func (p *asmParser) parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "#") {
		return 0, p.errf("bad immediate %q", s)
	}
	v, err := strconv.ParseInt(s[1:], 10, 64)
	if err != nil {
		return 0, p.errf("bad immediate %q", s)
	}
	return v, nil
}

// branch emits a branch to a label or `@N` absolute target.
func (p *asmParser) branch(target string, emit func(label string), emitAbs func(target int)) error {
	target = strings.TrimSpace(target)
	if strings.HasPrefix(target, "@") {
		n, err := strconv.Atoi(target[1:])
		if err != nil || n < 0 {
			return p.errf("bad branch target %q", target)
		}
		emitAbs(n)
		return nil
	}
	if target == "" {
		return p.errf("missing branch target")
	}
	emit(target)
	return nil
}

func (p *asmParser) instruction(line string) error {
	op, rest, _ := strings.Cut(line, " ")
	args := splitArgs(rest)
	need := func(n int) error {
		if len(args) != n {
			return p.errf("%s takes %d operand(s), got %d", op, n, len(args))
		}
		return nil
	}
	t := p.thread
	switch op {
	case "nop":
		if err := need(0); err != nil {
			return err
		}
		t.Nop()
	case "halt":
		if err := need(0); err != nil {
			return err
		}
		t.Halt()
	case "fence":
		if err := need(0); err != nil {
			return err
		}
		t.Fence()
	case "read", "sync.read", "test&set":
		if err := need(2); err != nil {
			return err
		}
		dst, err := p.parseReg(args[0])
		if err != nil {
			return err
		}
		addr, err := p.parseAddr(args[1])
		if err != nil {
			return err
		}
		switch op {
		case "read":
			t.Read(dst, addr)
		case "sync.read":
			t.SyncRead(dst, addr)
		default:
			t.TestAndSet(dst, addr)
		}
	case "write", "sync.write":
		if err := need(2); err != nil {
			return err
		}
		addr, err := p.parseAddr(args[0])
		if err != nil {
			return err
		}
		val, err := p.parseVal(args[1])
		if err != nil {
			return err
		}
		if op == "write" {
			t.Write(addr, val)
		} else {
			t.SyncWrite(addr, val)
		}
	case "unset":
		if err := need(1); err != nil {
			return err
		}
		addr, err := p.parseAddr(args[0])
		if err != nil {
			return err
		}
		t.Unset(addr)
	case "const":
		if err := need(2); err != nil {
			return err
		}
		dst, err := p.parseReg(args[0])
		if err != nil {
			return err
		}
		v, err := p.parseImm(args[1])
		if err != nil {
			return err
		}
		t.Const(dst, v)
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		dst, err := p.parseReg(args[0])
		if err != nil {
			return err
		}
		src, err := p.parseReg(args[1])
		if err != nil {
			return err
		}
		t.Mov(dst, src)
	case "add", "sub":
		if err := need(3); err != nil {
			return err
		}
		dst, err := p.parseReg(args[0])
		if err != nil {
			return err
		}
		a, err := p.parseReg(args[1])
		if err != nil {
			return err
		}
		b, err := p.parseReg(args[2])
		if err != nil {
			return err
		}
		if op == "add" {
			t.Add(dst, a, b)
		} else {
			t.Sub(dst, a, b)
		}
	case "addi":
		if err := need(3); err != nil {
			return err
		}
		dst, err := p.parseReg(args[0])
		if err != nil {
			return err
		}
		src, err := p.parseReg(args[1])
		if err != nil {
			return err
		}
		v, err := p.parseImm(args[2])
		if err != nil {
			return err
		}
		t.AddImm(dst, src, v)
	case "bz", "bnz":
		if err := need(2); err != nil {
			return err
		}
		src, err := p.parseReg(args[0])
		if err != nil {
			return err
		}
		emit := t.BranchZero
		opc := OpBranchZero
		if op == "bnz" {
			emit = t.BranchNotZero
			opc = OpBranchNotZero
		}
		return p.branch(args[1],
			func(label string) { emit(src, label) },
			func(target int) { t.emit(Instr{Op: opc, Src: src, Target: target}) })
	case "blt":
		if err := need(3); err != nil {
			return err
		}
		a, err := p.parseReg(args[0])
		if err != nil {
			return err
		}
		b, err := p.parseReg(args[1])
		if err != nil {
			return err
		}
		return p.branch(args[2],
			func(label string) { t.BranchLess(a, b, label) },
			func(target int) { t.emit(Instr{Op: OpBranchLess, Src: a, Src2: b, Target: target}) })
	case "jmp":
		if err := need(1); err != nil {
			return err
		}
		return p.branch(args[0],
			func(label string) { t.Jump(label) },
			func(target int) { t.emit(Instr{Op: OpJump, Target: target}) })
	default:
		return p.errf("unknown mnemonic %q", op)
	}
	return nil
}

// splitArgs splits "r0, [1+2], #3" into trimmed operands.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

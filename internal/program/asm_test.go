package program

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const fig1bAsm = `
# the paper's Figure 1b
program "fig1b"
locations 3
registers 2
init [2] = 1

thread P1:
    write [0], #1
    write [1], #1      # publish
    unset [2]

thread P2:
spin:
    test&set r0, [2]
    bnz r0, spin
    read r0, [1]
    read r1, [0]
`

func TestAssembleFig1b(t *testing.T) {
	p, initMem, err := AssembleString(fig1bAsm)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "fig1b" || p.NumLocations != 3 || p.NumRegs != 2 {
		t.Fatalf("header wrong: %+v", p)
	}
	if len(initMem) != 1 || initMem[2] != 1 {
		t.Fatalf("init memory = %v", initMem)
	}
	if p.NumThreads() != 2 {
		t.Fatalf("threads = %d", p.NumThreads())
	}
	p1 := p.Threads[0]
	if p1.Name != "P1" || len(p1.Instrs) != 3 {
		t.Fatalf("P1 = %+v", p1)
	}
	if p1.Instrs[0].Op != OpWrite || p1.Instrs[2].Op != OpUnset {
		t.Fatalf("P1 opcodes wrong: %v", p1.Instrs)
	}
	p2 := p.Threads[1]
	if p2.Instrs[0].Op != OpTestAndSet || p2.Instrs[1].Op != OpBranchNotZero {
		t.Fatalf("P2 opcodes wrong: %v", p2.Instrs)
	}
	if p2.Instrs[1].Target != 0 {
		t.Fatalf("spin label resolved to %d, want 0", p2.Instrs[1].Target)
	}
}

func TestAssembleAllMnemonics(t *testing.T) {
	src := `
program "all"
locations 8
registers 4
thread T:
    nop
    read r1, [3]
    write [r1+2], r0
    test&set r2, [7]
    unset [7]
    sync.read r0, [6]
    sync.write [6], #5
    fence
    const r3, #42
    mov r0, r3
    add r0, r1, r2
    sub r0, r1, r2
    addi r0, r0, #-100
    bz r0, done
    bnz r0, done
    blt r1, r2, done
    jmp done
    halt
done:
`
	p, _, err := AssembleString(src)
	if err != nil {
		t.Fatal(err)
	}
	ins := p.Threads[0].Instrs
	wantOps := []Opcode{
		OpNop, OpRead, OpWrite, OpTestAndSet, OpUnset, OpSyncRead,
		OpSyncWrite, OpFence, OpConst, OpMov, OpAdd, OpSub, OpAddImm,
		OpBranchZero, OpBranchNotZero, OpBranchLess, OpJump, OpHalt,
	}
	if len(ins) != len(wantOps) {
		t.Fatalf("instructions = %d, want %d", len(ins), len(wantOps))
	}
	for i, want := range wantOps {
		if ins[i].Op != want {
			t.Fatalf("instr %d = %v, want %v", i, ins[i].Op, want)
		}
	}
	if ins[12].Imm != -100 {
		t.Fatalf("addi immediate = %d", ins[12].Imm)
	}
	if ins[2].Addr != AtReg(1, 2) {
		t.Fatalf("indexed address = %v", ins[2].Addr)
	}
}

// Disassembler output reassembles to the identical instruction streams.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	p1, initMem, err := AssembleString(fig1bAsm)
	if err != nil {
		t.Fatal(err)
	}
	_ = initMem // disassembly does not carry init memory
	p2, _, err := AssembleString(p1.Disassemble())
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, p1.Disassemble())
	}
	if p1.Name != p2.Name || p1.NumLocations != p2.NumLocations || p1.NumRegs != p2.NumRegs {
		t.Fatalf("headers differ: %+v vs %+v", p1, p2)
	}
	if !reflect.DeepEqual(p1.Threads, p2.Threads) {
		t.Fatalf("instruction streams differ:\n%s\nvs\n%s", p1.Disassemble(), p2.Disassemble())
	}
}

func TestAssembleNumericTargets(t *testing.T) {
	src := `
program "abs"
locations 1
registers 1
thread T:
    bz r0, @2
    write [0], #1
    halt
`
	p, _, err := AssembleString(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Threads[0].Instrs[0].Target != 2 {
		t.Fatalf("target = %d", p.Threads[0].Instrs[0].Target)
	}
}

func TestAssembleErrors(t *testing.T) {
	header := "program \"x\"\nlocations 2\nregisters 2\nthread T:\n"
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no threads", "program \"x\"\n", "no threads"},
		{"thread before header", "thread T:\n", "before locations"},
		{"instruction outside thread", "program \"x\"\nlocations 1\nregisters 1\nnop\n", "outside any thread"},
		{"unknown mnemonic", header + "frobnicate r0\n", "unknown mnemonic"},
		{"bad register", header + "read rx, [0]\n", "bad register"},
		{"bad address", header + "read r0, 5\n", "bad address"},
		{"bad immediate", header + "const r0, 42\n", "bad immediate"},
		{"wrong arity", header + "read r0\n", "takes 2 operand"},
		{"undefined label", header + "jmp nowhere\n", "undefined label"},
		{"bad init", "program \"x\"\nlocations 2\nregisters 1\ninit [0] oops\nthread T:\nnop\n", "bad init"},
		{"init out of range", "program \"x\"\nlocations 2\nregisters 1\ninit [9] = 1\nthread T:\nnop\n", "out of range"},
		{"bad locations", "locations -3\n", "bad locations"},
		{"bad target", header + "jmp @-1\n", "bad branch target"},
	}
	for _, c := range cases {
		_, _, err := AssembleString(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// Property: any valid program round-trips through the disassembler and
// assembler unchanged.
func TestQuickDisassembleAssembleRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		p := randomProgram(seed)
		p2, _, err := AssembleString(p.Disassemble())
		if err != nil {
			t.Logf("reassembly failed: %v\n%s", err, p.Disassemble())
			return false
		}
		return reflect.DeepEqual(p.Threads, p2.Threads) &&
			p.Name == p2.Name && p.NumLocations == p2.NumLocations && p.NumRegs == p2.NumRegs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomProgram builds a random but valid program.
func randomProgram(seed int64) *Program {
	rng := rand.New(rand.NewSource(seed))
	nLocs := 2 + rng.Intn(6)
	nRegs := 1 + rng.Intn(3)
	b := NewBuilder("rnd", nLocs, nRegs)
	for ti := 0; ti < 1+rng.Intn(3); ti++ {
		// Named threads: the disassembler prints default names for unnamed
		// threads, which would spoil the round-trip comparison.
		tb := b.Thread(fmt.Sprintf("P%d", ti+1))
		n := 1 + rng.Intn(10)
		reg := func() Reg { return Reg(rng.Intn(nRegs)) }
		addr := func() AddrExpr {
			if rng.Intn(3) == 0 {
				return AtReg(reg(), Addr(rng.Intn(3)))
			}
			return At(Addr(rng.Intn(nLocs)))
		}
		val := func() ValExpr {
			if rng.Intn(2) == 0 {
				return Imm(rng.Int63n(100) - 50)
			}
			return FromReg(reg())
		}
		for i := 0; i < n; i++ {
			switch rng.Intn(12) {
			case 0:
				tb.Read(reg(), addr())
			case 1:
				tb.Write(addr(), val())
			case 2:
				tb.TestAndSet(reg(), addr())
			case 3:
				tb.Unset(addr())
			case 4:
				tb.SyncRead(reg(), addr())
			case 5:
				tb.SyncWrite(addr(), val())
			case 6:
				tb.Fence()
			case 7:
				tb.Const(reg(), rng.Int63n(100))
			case 8:
				tb.Add(reg(), reg(), reg())
			case 9:
				tb.AddImm(reg(), reg(), rng.Int63n(20)-10)
			case 10:
				// Forward branch to the end (always valid).
				tb.emit(Instr{Op: OpBranchZero, Src: reg(), Target: n})
			default:
				tb.Nop()
			}
		}
	}
	return b.MustBuild()
}

func TestStripComment(t *testing.T) {
	cases := []struct{ in, want string }{
		{"# whole line", ""},
		{"write [0], #1", "write [0], #1"},
		{"write [0], #1 # trailing", "write [0], #1"},
		{"addi r0, r0, #-3 # negative", "addi r0, r0, #-3"},
		{"nop", "nop"},
	}
	for _, c := range cases {
		if got := strings.TrimSpace(stripComment(c.in)); got != c.want {
			t.Errorf("stripComment(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

package program

import "fmt"

// Builder assembles a Program from per-thread instruction streams with
// symbolic labels. Typical use:
//
//	b := program.NewBuilder("fig1a", 8, 4)
//	p1 := b.Thread("P1")
//	p1.Write(program.At(x), program.Imm(1))
//	p1.Write(program.At(y), program.Imm(1))
//	p2 := b.Thread("P2")
//	p2.Read(0, program.At(y))
//	p2.Read(1, program.At(x))
//	prog, err := b.Build()
type Builder struct {
	name    string
	numLocs int
	numRegs int
	threads []*ThreadBuilder
}

// NewBuilder starts a program with the given shared-location and register
// counts.
func NewBuilder(name string, numLocations, numRegs int) *Builder {
	return &Builder{name: name, numLocs: numLocations, numRegs: numRegs}
}

// Thread adds a new thread and returns its builder.
func (b *Builder) Thread(name string) *ThreadBuilder {
	tb := &ThreadBuilder{name: name, labels: map[string]int{}}
	b.threads = append(b.threads, tb)
	return tb
}

// Build resolves labels, validates, and returns the program.
func (b *Builder) Build() (*Program, error) {
	p := &Program{
		Name:         b.name,
		NumLocations: b.numLocs,
		NumRegs:      b.numRegs,
	}
	for ti, tb := range b.threads {
		instrs, err := tb.resolve()
		if err != nil {
			return nil, fmt.Errorf("program %q thread %d (%s): %w", b.name, ti, tb.name, err)
		}
		p.Threads = append(p.Threads, Thread{Name: tb.name, Instrs: instrs})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for statically known programs
// (the paper-figure workloads and tests).
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// pendingBranch records a branch whose label is not yet resolved.
type pendingBranch struct {
	pc    int
	label string
}

// ThreadBuilder accumulates one thread's instructions.
type ThreadBuilder struct {
	name    string
	instrs  []Instr
	labels  map[string]int
	pending []pendingBranch
}

func (t *ThreadBuilder) emit(in Instr) *ThreadBuilder {
	t.instrs = append(t.instrs, in)
	return t
}

// Label binds name to the next instruction's index. Labels may be bound
// after the branches that use them (forward branches).
func (t *ThreadBuilder) Label(name string) *ThreadBuilder {
	t.labels[name] = len(t.instrs)
	return t
}

// Read appends a data read: dst = mem[addr].
func (t *ThreadBuilder) Read(dst Reg, addr AddrExpr) *ThreadBuilder {
	return t.emit(Instr{Op: OpRead, Dst: dst, Addr: addr})
}

// Write appends a data write: mem[addr] = val.
func (t *ThreadBuilder) Write(addr AddrExpr, val ValExpr) *ThreadBuilder {
	return t.emit(Instr{Op: OpWrite, Addr: addr, Val: val})
}

// TestAndSet appends an atomic test-and-set: dst = mem[addr]; mem[addr] = 1.
func (t *ThreadBuilder) TestAndSet(dst Reg, addr AddrExpr) *ThreadBuilder {
	return t.emit(Instr{Op: OpTestAndSet, Dst: dst, Addr: addr})
}

// Unset appends a release write of 0 to addr.
func (t *ThreadBuilder) Unset(addr AddrExpr) *ThreadBuilder {
	return t.emit(Instr{Op: OpUnset, Addr: addr})
}

// SyncRead appends an explicit acquire read.
func (t *ThreadBuilder) SyncRead(dst Reg, addr AddrExpr) *ThreadBuilder {
	return t.emit(Instr{Op: OpSyncRead, Dst: dst, Addr: addr})
}

// SyncWrite appends an explicit release write.
func (t *ThreadBuilder) SyncWrite(addr AddrExpr, val ValExpr) *ThreadBuilder {
	return t.emit(Instr{Op: OpSyncWrite, Addr: addr, Val: val})
}

// Fence appends a full memory fence.
func (t *ThreadBuilder) Fence() *ThreadBuilder { return t.emit(Instr{Op: OpFence}) }

// Const appends dst = imm.
func (t *ThreadBuilder) Const(dst Reg, imm int64) *ThreadBuilder {
	return t.emit(Instr{Op: OpConst, Dst: dst, Imm: imm})
}

// Mov appends dst = src.
func (t *ThreadBuilder) Mov(dst, src Reg) *ThreadBuilder {
	return t.emit(Instr{Op: OpMov, Dst: dst, Src: src})
}

// Add appends dst = a + b.
func (t *ThreadBuilder) Add(dst, a, b Reg) *ThreadBuilder {
	return t.emit(Instr{Op: OpAdd, Dst: dst, Src: a, Src2: b})
}

// Sub appends dst = a - b.
func (t *ThreadBuilder) Sub(dst, a, b Reg) *ThreadBuilder {
	return t.emit(Instr{Op: OpSub, Dst: dst, Src: a, Src2: b})
}

// AddImm appends dst = src + imm.
func (t *ThreadBuilder) AddImm(dst, src Reg, imm int64) *ThreadBuilder {
	return t.emit(Instr{Op: OpAddImm, Dst: dst, Src: src, Imm: imm})
}

// BranchZero appends "if src == 0 goto label".
func (t *ThreadBuilder) BranchZero(src Reg, label string) *ThreadBuilder {
	t.pending = append(t.pending, pendingBranch{pc: len(t.instrs), label: label})
	return t.emit(Instr{Op: OpBranchZero, Src: src})
}

// BranchNotZero appends "if src != 0 goto label".
func (t *ThreadBuilder) BranchNotZero(src Reg, label string) *ThreadBuilder {
	t.pending = append(t.pending, pendingBranch{pc: len(t.instrs), label: label})
	return t.emit(Instr{Op: OpBranchNotZero, Src: src})
}

// BranchLess appends "if a < b goto label".
func (t *ThreadBuilder) BranchLess(a, b Reg, label string) *ThreadBuilder {
	t.pending = append(t.pending, pendingBranch{pc: len(t.instrs), label: label})
	return t.emit(Instr{Op: OpBranchLess, Src: a, Src2: b})
}

// Jump appends an unconditional jump to label.
func (t *ThreadBuilder) Jump(label string) *ThreadBuilder {
	t.pending = append(t.pending, pendingBranch{pc: len(t.instrs), label: label})
	return t.emit(Instr{Op: OpJump})
}

// Nop appends a no-op.
func (t *ThreadBuilder) Nop() *ThreadBuilder { return t.emit(Instr{Op: OpNop}) }

// Halt appends an explicit halt.
func (t *ThreadBuilder) Halt() *ThreadBuilder { return t.emit(Instr{Op: OpHalt}) }

func (t *ThreadBuilder) resolve() ([]Instr, error) {
	out := append([]Instr(nil), t.instrs...)
	for _, pb := range t.pending {
		target, ok := t.labels[pb.label]
		if !ok {
			return nil, fmt.Errorf("pc %d: undefined label %q", pb.pc, pb.label)
		}
		out[pb.pc].Target = target
	}
	return out, nil
}

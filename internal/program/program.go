// Package program defines the register-machine programs that the weakrace
// simulator executes.
//
// The paper's formal model (§2.1) distinguishes data operations from
// synchronization operations that the hardware recognizes, and its examples
// are built from Read/Write data operations and Test&Set/Unset
// synchronization instructions. The ISA here provides exactly those, plus
// explicit release/acquire instructions (for RCsc-style programs), a fence,
// and enough ALU/branch support to express the paper's Figure 2 work-queue
// fragment and the synthetic workloads of the benchmark harness.
//
// A Program is pure data: a fixed set of threads, each a straight sequence
// of instructions with resolved branch targets. Construction goes through
// Builder, which handles labels and validates the result.
package program

import (
	"fmt"
	"strings"
)

// Addr identifies a shared-memory location. Locations are a dense range
// [0, Program.NumLocations).
type Addr int

// Reg identifies a per-thread register. Registers are a dense range
// [0, Program.NumRegs) and are private to a thread (never shared).
type Reg int

// Opcode enumerates the instruction set.
type Opcode int

const (
	// OpNop does nothing.
	OpNop Opcode = iota

	// OpRead is a data read: Dst = mem[addr].
	OpRead
	// OpWrite is a data write: mem[addr] = value.
	OpWrite

	// OpTestAndSet atomically performs Dst = mem[addr]; mem[addr] = 1.
	// Its read is an acquire; per the paper (§2.1) its write is a
	// synchronization operation but NOT a release.
	OpTestAndSet
	// OpUnset performs mem[addr] = 0. It is a release write.
	OpUnset
	// OpSyncRead is an explicit acquire read: Dst = mem[addr].
	OpSyncRead
	// OpSyncWrite is an explicit release write: mem[addr] = value.
	OpSyncWrite

	// OpFence orders all prior memory operations of the thread before all
	// later ones. It performs no memory access.
	OpFence

	// OpConst sets Dst = Imm.
	OpConst
	// OpMov sets Dst = Src.
	OpMov
	// OpAdd sets Dst = Src + Src2.
	OpAdd
	// OpSub sets Dst = Src - Src2.
	OpSub
	// OpAddImm sets Dst = Src + Imm.
	OpAddImm

	// OpBranchZero jumps to Target when Src == 0.
	OpBranchZero
	// OpBranchNotZero jumps to Target when Src != 0.
	OpBranchNotZero
	// OpBranchLess jumps to Target when Src < Src2.
	OpBranchLess
	// OpJump jumps unconditionally to Target.
	OpJump

	// OpHalt stops the thread.
	OpHalt
)

var opcodeNames = map[Opcode]string{
	OpNop: "nop", OpRead: "read", OpWrite: "write",
	OpTestAndSet: "test&set", OpUnset: "unset",
	OpSyncRead: "sync.read", OpSyncWrite: "sync.write",
	OpFence: "fence", OpConst: "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpAddImm: "addi",
	OpBranchZero: "bz", OpBranchNotZero: "bnz", OpBranchLess: "blt",
	OpJump: "jmp", OpHalt: "halt",
}

// String returns the mnemonic of the opcode.
func (op Opcode) String() string {
	if s, ok := opcodeNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// IsMemory reports whether the opcode touches shared memory.
func (op Opcode) IsMemory() bool {
	switch op {
	case OpRead, OpWrite, OpTestAndSet, OpUnset, OpSyncRead, OpSyncWrite:
		return true
	}
	return false
}

// IsSync reports whether the opcode is recognized by the hardware as a
// synchronization operation (paper §2.1).
func (op Opcode) IsSync() bool {
	switch op {
	case OpTestAndSet, OpUnset, OpSyncRead, OpSyncWrite:
		return true
	}
	return false
}

// AddrExpr is an address operand: a fixed location, optionally indexed by a
// register (base + reg + offset), so the Figure 2 workloads can write to
// computed regions.
type AddrExpr struct {
	Base    Addr
	Index   Reg
	Indexed bool
}

// At addresses the fixed location a.
func At(a Addr) AddrExpr { return AddrExpr{Base: a} }

// AtReg addresses location (register value + offset).
func AtReg(r Reg, offset Addr) AddrExpr {
	return AddrExpr{Base: offset, Index: r, Indexed: true}
}

// String renders the address expression.
func (a AddrExpr) String() string {
	if a.Indexed {
		if a.Base != 0 {
			return fmt.Sprintf("[r%d+%d]", a.Index, a.Base)
		}
		return fmt.Sprintf("[r%d]", a.Index)
	}
	return fmt.Sprintf("[%d]", a.Base)
}

// ValExpr is a value operand: either an immediate or a register.
type ValExpr struct {
	Imm   int64
	Reg   Reg
	IsReg bool
}

// Imm is an immediate value operand.
func Imm(v int64) ValExpr { return ValExpr{Imm: v} }

// FromReg is a register value operand.
func FromReg(r Reg) ValExpr { return ValExpr{Reg: r, IsReg: true} }

// String renders the value expression.
func (v ValExpr) String() string {
	if v.IsReg {
		return fmt.Sprintf("r%d", v.Reg)
	}
	return fmt.Sprintf("#%d", v.Imm)
}

// Instr is one machine instruction. Which fields are meaningful depends on
// Op; Validate enforces the invariants.
type Instr struct {
	Op     Opcode
	Dst    Reg      // destination register (reads, ALU)
	Src    Reg      // first source register (ALU, branches)
	Src2   Reg      // second source register (ALU, blt)
	Imm    int64    // immediate (const, addi)
	Addr   AddrExpr // memory operand
	Val    ValExpr  // value operand for writes
	Target int      // resolved branch target (instruction index)
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpRead, OpSyncRead:
		return fmt.Sprintf("%s r%d, %s", in.Op, in.Dst, in.Addr)
	case OpWrite, OpSyncWrite:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Addr, in.Val)
	case OpTestAndSet:
		return fmt.Sprintf("%s r%d, %s", in.Op, in.Dst, in.Addr)
	case OpUnset:
		return fmt.Sprintf("%s %s", in.Op, in.Addr)
	case OpConst:
		return fmt.Sprintf("%s r%d, #%d", in.Op, in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Dst, in.Src)
	case OpAdd, OpSub:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Dst, in.Src, in.Src2)
	case OpAddImm:
		return fmt.Sprintf("%s r%d, r%d, #%d", in.Op, in.Dst, in.Src, in.Imm)
	case OpBranchZero, OpBranchNotZero:
		return fmt.Sprintf("%s r%d, @%d", in.Op, in.Src, in.Target)
	case OpBranchLess:
		return fmt.Sprintf("%s r%d, r%d, @%d", in.Op, in.Src, in.Src2, in.Target)
	case OpJump:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	default:
		return in.Op.String()
	}
}

// Thread is a straight-line instruction sequence with resolved branches.
type Thread struct {
	Name   string
	Instrs []Instr
}

// Program is an immutable multi-threaded program plus the size of its
// shared address space and register file.
type Program struct {
	Name         string
	Threads      []Thread
	NumLocations int // shared locations are [0, NumLocations)
	NumRegs      int // registers are [0, NumRegs) in every thread
}

// NumThreads returns the number of threads (processors) in the program.
func (p *Program) NumThreads() int { return len(p.Threads) }

// Validate checks structural invariants: at least one thread, all register
// and direct-address operands in range, and all branch targets within the
// owning thread (a target equal to len(instrs) means "fall off the end",
// which is allowed and halts).
func (p *Program) Validate() error {
	if len(p.Threads) == 0 {
		return fmt.Errorf("program %q: no threads", p.Name)
	}
	if p.NumLocations <= 0 {
		return fmt.Errorf("program %q: NumLocations = %d, must be positive", p.Name, p.NumLocations)
	}
	if p.NumRegs <= 0 {
		return fmt.Errorf("program %q: NumRegs = %d, must be positive", p.Name, p.NumRegs)
	}
	regOK := func(r Reg) bool { return r >= 0 && int(r) < p.NumRegs }
	for ti, th := range p.Threads {
		for pc, in := range th.Instrs {
			where := func(msg string, args ...any) error {
				return fmt.Errorf("program %q thread %d pc %d (%s): %s",
					p.Name, ti, pc, in, fmt.Sprintf(msg, args...))
			}
			if in.Op.IsMemory() {
				if in.Addr.Indexed {
					if !regOK(in.Addr.Index) {
						return where("address index register out of range")
					}
				} else if in.Addr.Base < 0 || int(in.Addr.Base) >= p.NumLocations {
					return where("address %d out of range [0,%d)", in.Addr.Base, p.NumLocations)
				}
			}
			switch in.Op {
			case OpRead, OpSyncRead, OpTestAndSet, OpConst:
				if !regOK(in.Dst) {
					return where("destination register out of range")
				}
			case OpWrite, OpSyncWrite:
				if in.Val.IsReg && !regOK(in.Val.Reg) {
					return where("value register out of range")
				}
			case OpMov, OpAddImm:
				if !regOK(in.Dst) || !regOK(in.Src) {
					return where("register out of range")
				}
			case OpAdd, OpSub:
				if !regOK(in.Dst) || !regOK(in.Src) || !regOK(in.Src2) {
					return where("register out of range")
				}
			case OpBranchZero, OpBranchNotZero:
				if !regOK(in.Src) {
					return where("branch register out of range")
				}
			case OpBranchLess:
				if !regOK(in.Src) || !regOK(in.Src2) {
					return where("branch register out of range")
				}
			}
			switch in.Op {
			case OpBranchZero, OpBranchNotZero, OpBranchLess, OpJump:
				if in.Target < 0 || in.Target > len(th.Instrs) {
					return where("branch target %d out of range [0,%d]", in.Target, len(th.Instrs))
				}
			}
		}
	}
	return nil
}

// Disassemble renders the whole program, one thread per section.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %q: %d threads, %d locations, %d regs\n",
		p.Name, len(p.Threads), p.NumLocations, p.NumRegs)
	for ti, th := range p.Threads {
		name := th.Name
		if name == "" {
			name = fmt.Sprintf("P%d", ti+1)
		}
		fmt.Fprintf(&sb, "thread %d (%s):\n", ti, name)
		for pc, in := range th.Instrs {
			fmt.Fprintf(&sb, "  %3d: %s\n", pc, in)
		}
	}
	return sb.String()
}

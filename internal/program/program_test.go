package program

import (
	"strings"
	"testing"
)

func TestOpcodeClassification(t *testing.T) {
	memOps := []Opcode{OpRead, OpWrite, OpTestAndSet, OpUnset, OpSyncRead, OpSyncWrite}
	for _, op := range memOps {
		if !op.IsMemory() {
			t.Errorf("%v should be a memory op", op)
		}
	}
	syncOps := []Opcode{OpTestAndSet, OpUnset, OpSyncRead, OpSyncWrite}
	for _, op := range syncOps {
		if !op.IsSync() {
			t.Errorf("%v should be a sync op", op)
		}
	}
	for _, op := range []Opcode{OpRead, OpWrite, OpFence, OpAdd, OpJump, OpNop} {
		if op.IsSync() {
			t.Errorf("%v should not be a sync op", op)
		}
	}
	for _, op := range []Opcode{OpFence, OpConst, OpBranchZero, OpHalt} {
		if op.IsMemory() {
			t.Errorf("%v should not be a memory op", op)
		}
	}
}

func TestBuilderSimpleProgram(t *testing.T) {
	b := NewBuilder("two-writers", 4, 2)
	p1 := b.Thread("P1")
	p1.Write(At(0), Imm(1)).Write(At(1), Imm(2))
	p2 := b.Thread("P2")
	p2.Read(0, At(1)).Read(1, At(0))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumThreads() != 2 {
		t.Fatalf("NumThreads = %d", p.NumThreads())
	}
	if got := len(p.Threads[0].Instrs); got != 2 {
		t.Fatalf("thread 0 has %d instrs", got)
	}
	if p.Threads[0].Instrs[0].Op != OpWrite || p.Threads[1].Instrs[0].Op != OpRead {
		t.Fatal("opcodes wrong")
	}
}

func TestBuilderLabelsForwardAndBackward(t *testing.T) {
	b := NewBuilder("looper", 2, 2)
	tb := b.Thread("T")
	tb.Const(0, 3).
		Label("loop").
		AddImm(0, 0, -1).
		BranchNotZero(0, "loop").
		Jump("end").
		Write(At(0), Imm(99)). // skipped
		Label("end")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ins := p.Threads[0].Instrs
	if ins[2].Target != 1 {
		t.Fatalf("backward branch target = %d, want 1", ins[2].Target)
	}
	if ins[3].Target != 5 {
		t.Fatalf("forward jump target = %d, want 5", ins[3].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad", 2, 2)
	b.Thread("T").Jump("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("err = %v, want undefined label", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{
			"no threads",
			&Program{Name: "x", NumLocations: 1, NumRegs: 1},
			"no threads",
		},
		{
			"bad locations",
			&Program{Name: "x", NumLocations: 0, NumRegs: 1, Threads: []Thread{{}}},
			"NumLocations",
		},
		{
			"bad regs",
			&Program{Name: "x", NumLocations: 1, NumRegs: 0, Threads: []Thread{{}}},
			"NumRegs",
		},
		{
			"address out of range",
			&Program{Name: "x", NumLocations: 2, NumRegs: 1, Threads: []Thread{
				{Instrs: []Instr{{Op: OpRead, Dst: 0, Addr: At(5)}}},
			}},
			"address",
		},
		{
			"register out of range",
			&Program{Name: "x", NumLocations: 2, NumRegs: 1, Threads: []Thread{
				{Instrs: []Instr{{Op: OpRead, Dst: 3, Addr: At(0)}}},
			}},
			"register",
		},
		{
			"value register out of range",
			&Program{Name: "x", NumLocations: 2, NumRegs: 1, Threads: []Thread{
				{Instrs: []Instr{{Op: OpWrite, Addr: At(0), Val: FromReg(9)}}},
			}},
			"register",
		},
		{
			"branch target out of range",
			&Program{Name: "x", NumLocations: 2, NumRegs: 1, Threads: []Thread{
				{Instrs: []Instr{{Op: OpJump, Target: 7}}},
			}},
			"target",
		},
		{
			"index register out of range",
			&Program{Name: "x", NumLocations: 2, NumRegs: 1, Threads: []Thread{
				{Instrs: []Instr{{Op: OpWrite, Addr: AtReg(4, 0), Val: Imm(1)}}},
			}},
			"index register",
		},
	}
	for _, c := range cases {
		err := c.prog.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestValidateAcceptsFallOffEndTarget(t *testing.T) {
	p := &Program{Name: "x", NumLocations: 1, NumRegs: 1, Threads: []Thread{
		{Instrs: []Instr{{Op: OpJump, Target: 1}}},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("target == len(instrs) should be legal: %v", err)
	}
}

func TestDisassembleShapes(t *testing.T) {
	b := NewBuilder("fig", 8, 4)
	tb := b.Thread("P1")
	tb.Read(1, At(3)).
		Write(AtReg(1, 2), FromReg(0)).
		TestAndSet(2, At(7)).
		Unset(At(7)).
		SyncRead(0, At(6)).
		SyncWrite(At(6), Imm(5)).
		Fence().
		Const(3, 42).
		Mov(0, 3).
		Add(0, 1, 2).
		Sub(0, 1, 2).
		AddImm(0, 0, 100).
		BranchZero(0, "done").
		BranchLess(1, 2, "done").
		Nop().
		Halt().
		Label("done")
	p := b.MustBuild()
	dis := p.Disassemble()
	for _, want := range []string{
		"read r1, [3]",
		"write [r1+2], r0",
		"test&set r2, [7]",
		"unset [7]",
		"sync.read r0, [6]",
		"sync.write [6], #5",
		"fence",
		"const r3, #42",
		"mov r0, r3",
		"add r0, r1, r2",
		"sub r0, r1, r2",
		"addi r0, r0, #100",
		"bz r0, @16",
		"blt r1, r2, @16",
		"nop",
		"halt",
	} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestAddrExprString(t *testing.T) {
	if got := At(5).String(); got != "[5]" {
		t.Errorf("At(5) = %q", got)
	}
	if got := AtReg(2, 0).String(); got != "[r2]" {
		t.Errorf("AtReg(2,0) = %q", got)
	}
	if got := AtReg(2, 7).String(); got != "[r2+7]" {
		t.Errorf("AtReg(2,7) = %q", got)
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	b := NewBuilder("bad", 1, 1)
	b.Thread("T").Jump("missing")
	b.MustBuild()
}

package program

import "testing"

// FuzzAssemble: arbitrary source must never panic the assembler, and any
// program it accepts must validate.
func FuzzAssemble(f *testing.F) {
	f.Add(fig1bAsm)
	f.Add("program \"x\"\nlocations 2\nregisters 1\nthread T:\nnop\n")
	f.Add("")
	f.Add("thread:\n")
	f.Add("program \"x\": 2 threads, 3 locations, 1 regs\nthread 0 (P1):\n  0: nop\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, initMem, err := AssembleString(src)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Assemble accepted an invalid program: %v", err)
		}
		for a := range initMem {
			if a < 0 || int(a) >= p.NumLocations {
				t.Fatalf("Assemble accepted out-of-range init location %d", a)
			}
		}
	})
}

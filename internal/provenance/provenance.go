// Package provenance is the detector's witness engine: for any reported
// race it produces an explanation object a developer (or a crosscheck
// harness) can audit — the conflicting accesses with their processor,
// segment, and locations; an absence certificate proving the pair is
// hb1-unordered (the nearest hb1 ancestor and descendant of each event
// on the other event's processor, read in O(1) off the analysis's
// vector-clock window — or recovered with O(log n) closure queries when
// the analysis ran with the explicit-closure oracle — never a
// materialized closure); the race's partition and whether it is first;
// and, for non-first partitions, the affected-by chain (Definition 3.3)
// back to a first partition.
//
// The certificate leans on the same monotonicity the race sweep
// exploits: along a processor's event stream, the events that
// happen-before-1 a fixed event x form a PREFIX (y ⇝ x and y′ po-before
// y imply y′ ⇝ x), and the events x happens-before-1 form a SUFFIX.
// So "the last event of P that reaches x" and "the first event of P
// that x reaches" bracket an interval, and any event of P strictly
// inside it is unordered with x. A certificate is therefore four
// indices, checkable against an explicit transitive closure in O(1)
// per boundary — which is exactly what the crosscheck harness does.
package provenance

import (
	"fmt"

	"weakrace/internal/core"
	"weakrace/internal/trace"
)

// Side describes one racing event.
type Side struct {
	// Event is the dense event id in the analysis.
	Event int `json:"event"`
	// Ref is the human-readable reference ("P2.3").
	Ref string `json:"ref"`
	// CPU and Index locate the event (0-based CPU, segment index in its
	// processor's stream).
	CPU   int `json:"cpu"`
	Index int `json:"index"`
	// Kind is "comp" or "sync"; Desc is the event's compact rendering.
	Kind string `json:"kind"`
	Desc string `json:"desc"`
}

// Boundary is one half of the unorderedness certificate: the bracket
// that event X's hb1 cone cuts out of the OTHER event's processor
// stream. LastPred is the index of the last event on that stream that
// happens-before-1 X (-1 when none), FirstSucc the index of the first
// event X happens-before-1 (stream length when none). By program-order
// monotonicity every index ≤ LastPred reaches X and every index ≥
// FirstSucc is reached by X, so Partner strictly inside
// (LastPred, FirstSucc) proves X and the partner event are unordered.
type Boundary struct {
	CPU       int    `json:"cpu"`
	LastPred  int    `json:"last_pred"`
	PredRef   string `json:"pred_ref"`
	FirstSucc int    `json:"first_succ"`
	SuccRef   string `json:"succ_ref"`
	Partner   int    `json:"partner"`
}

// Certificate is the two-sided absence proof: A bracketed against B's
// stream and B against A's. Either half alone proves unorderedness; the
// pair makes the certificate symmetric and doubly checkable.
type Certificate struct {
	A Boundary `json:"a_on_b_cpu"`
	B Boundary `json:"b_on_a_cpu"`
}

// Witness is the complete explanation of one reported race.
type Witness struct {
	// Race indexes Analysis.Races.
	Race int  `json:"race"`
	A    Side `json:"a"`
	B    Side `json:"b"`
	// Locations lists the conflicting locations.
	Locations []int `json:"locations"`
	// Data reports whether this is a data race (always true for
	// witnesses produced by All, which covers the report's data races).
	Data bool `json:"data"`
	// LowerLevel lists the operation-granularity candidates (§2.1).
	LowerLevel []string `json:"lower_level"`
	// Certificate proves hb1-unorderedness.
	Certificate Certificate `json:"certificate"`
	// Partition indexes Analysis.Partitions; First mirrors the
	// partition's flag (Definition 4.1).
	Partition int  `json:"partition"`
	First     bool `json:"first"`
	// Chain, for non-first partitions, is a shortest affected-by chain
	// of partition indices from a first partition to this one, each hop
	// an immediate edge of the partition order P (Definition 3.3 lifted
	// to partitions). Empty for first partitions.
	Chain []int `json:"chain,omitempty"`
}

// Explainer answers witness queries against one analysis. Building one
// computes the immediate partition-precedence DAG (partitions are few);
// certificates are computed lazily per race with O(log n) reachability
// queries.
type Explainer struct {
	a *core.Analysis
	// succ/pred are the immediate edges of the partition order P: an
	// edge i→j means i precedes j with no partition strictly between.
	succ, pred [][]int
}

// NewExplainer prepares an explainer for the analysis.
func NewExplainer(a *core.Analysis) *Explainer {
	n := len(a.Partitions)
	e := &Explainer{a: a, succ: make([][]int, n), pred: make([][]int, n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || !a.PartitionPrecedes(i, j) {
				continue
			}
			direct := true
			for k := 0; k < n && direct; k++ {
				if k != i && k != j && a.PartitionPrecedes(i, k) && a.PartitionPrecedes(k, j) {
					direct = false
				}
			}
			if direct {
				e.succ[i] = append(e.succ[i], j)
				e.pred[j] = append(e.pred[j], i)
			}
		}
	}
	return e
}

// Analysis returns the analysis the explainer reads.
func (e *Explainer) Analysis() *core.Analysis { return e.a }

// ImmediateSuccessors returns the immediate partition-precedence DAG:
// out[i] lists the partitions immediately after partition i in the
// order P. The slice is owned by the explainer.
func (e *Explainer) ImmediateSuccessors() [][]int { return e.succ }

// Explain produces the witness for race ri (an index into
// Analysis.Races). The race must be a data race: only data races have a
// partition to anchor the explanation to.
func (e *Explainer) Explain(ri int) (*Witness, error) {
	a := e.a
	if ri < 0 || ri >= len(a.Races) {
		return nil, fmt.Errorf("provenance: race index %d out of range [0,%d)", ri, len(a.Races))
	}
	r := a.Races[ri]
	if !r.Data {
		return nil, fmt.Errorf("provenance: race %d is a synchronization race; only data races are explained", ri)
	}
	pi := a.RaceOfPartition(ri)
	if pi < 0 {
		return nil, fmt.Errorf("provenance: race %d has no partition", ri)
	}
	w := &Witness{
		Race:      ri,
		A:         e.side(r.A),
		B:         e.side(r.B),
		Data:      r.Data,
		Partition: pi,
		First:     a.Partitions[pi].First,
	}
	r.Locs.Range(func(loc int) bool {
		w.Locations = append(w.Locations, loc)
		return true
	})
	for _, ll := range a.LowerLevel(r) {
		w.LowerLevel = append(w.LowerLevel, ll.String())
	}
	w.Certificate = Certificate{
		A: e.boundary(r.A, w.B.CPU, w.B.Index),
		B: e.boundary(r.B, w.A.CPU, w.A.Index),
	}
	if !w.First {
		w.Chain = e.chainToFirst(pi)
	}
	return w, nil
}

// All returns witnesses for every data race, in race order.
func (e *Explainer) All() ([]*Witness, error) {
	ws := make([]*Witness, 0, len(e.a.DataRaces))
	for _, ri := range e.a.DataRaces {
		w, err := e.Explain(ri)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

func (e *Explainer) side(id core.EventID) Side {
	ref := e.a.Ref(id)
	ev := e.a.Trace.Event(ref)
	return Side{
		Event: int(id),
		Ref:   ref.String(),
		CPU:   ref.CPU,
		Index: ref.Index,
		Kind:  ev.Kind.String(),
		Desc:  ev.String(),
	}
}

// boundary brackets event x against processor cpu's stream via the
// analysis's HBWindow — two slab reads off x's vector clock on the
// default timestamp path, two binary searches over the monotone closure
// predicates under ExplicitClosure. partnerIdx is the other racing
// event's index on that stream; for a genuine race it lies strictly
// inside the bracket (the crosscheck harness asserts this against the
// explicit closure).
func (e *Explainer) boundary(x core.EventID, cpu, partnerIdx int) Boundary {
	a := e.a
	n := len(a.Trace.PerCPU[cpu])
	lastPred, firstSucc := a.HBWindow(x, cpu)
	b := Boundary{CPU: cpu, LastPred: lastPred, FirstSucc: firstSucc, Partner: partnerIdx}
	b.PredRef, b.SuccRef = "-", "-"
	if lastPred >= 0 {
		b.PredRef = trace.EventRef{CPU: cpu, Index: lastPred}.String()
	}
	if firstSucc < n {
		b.SuccRef = trace.EventRef{CPU: cpu, Index: firstSucc}.String()
	}
	return b
}

// chainToFirst returns a shortest immediate-precedence chain from some
// first partition down to pi, ending at pi. BFS backward over immediate
// predecessors; predecessor lists are in ascending partition order, so
// the chain is deterministic.
func (e *Explainer) chainToFirst(pi int) []int {
	prev := make([]int, len(e.a.Partitions))
	for i := range prev {
		prev[i] = -2 // unvisited
	}
	prev[pi] = -1
	queue := []int{pi}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if e.a.Partitions[cur].First {
			chain := []int{}
			for p := cur; p != pi; p = prev[p] {
				chain = append(chain, p)
			}
			chain = append(chain, pi)
			return chain
		}
		for _, q := range e.pred[cur] {
			if prev[q] == -2 {
				prev[q] = cur
				queue = append(queue, q)
			}
		}
	}
	// Unreachable for a well-formed analysis: every non-first partition
	// is preceded by a first one (the order P is a finite partial order).
	return []int{pi}
}

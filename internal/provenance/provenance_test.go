package provenance

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// analyze runs a workload on the weak model with a fixed seed and
// explains every data race. explicit selects the materialized-G′ path;
// the witnesses must not depend on which path computed the partitions.
func analyze(t *testing.T, w *workload.Workload, model memmodel.Model, seed int64, explicit bool) (*core.Analysis, []*Witness) {
	t.Helper()
	r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed, InitMemory: w.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{ExplicitAug: explicit})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewExplainer(a).All()
	if err != nil {
		t.Fatal(err)
	}
	return a, ws
}

// checkGolden compares the witnesses' JSON against a pinned file,
// rewriting it under -update.
func checkGolden(t *testing.T, name string, ws []*Witness) {
	t.Helper()
	got, err := json.MarshalIndent(ws, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/provenance -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("witnesses diverge from %s:\ngot:\n%s\nwant:\n%s\n(run go test ./internal/provenance -update if the change is intended)", path, got, want)
	}
}

// sameWitnesses asserts two runs explain the races identically.
func sameWitnesses(t *testing.T, label string, a, b []*Witness) {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("%s: witnesses differ between implicit and explicit G′ paths:\nimplicit: %s\nexplicit: %s", label, ja, jb)
	}
}

// Figure 2 of the paper on WO with the seed that reproduces the stale
// dequeue: the witnesses for the queue races are pinned, and the
// explicit-G′ path must agree with the implicit one exactly.
func TestWitnessGoldenFigure2(t *testing.T) {
	w := workload.Figure2()
	a, ws := analyze(t, w, memmodel.WO, 674, false)
	if len(ws) == 0 {
		t.Fatal("figure-2 seed 674 found no data races; the reproduction seed regressed")
	}
	for _, wit := range ws {
		checkCertificateShape(t, a, wit)
	}
	_, explicit := analyze(t, w, memmodel.WO, 674, true)
	sameWitnesses(t, "figure-2", ws, explicit)
	checkGolden(t, "figure2_wo_674.json", ws)
}

// RaceChain(4) has four racing stages but one first partition; each
// non-first witness must carry an affected-by chain that starts at a
// first partition and walks immediate precedence edges to its own.
func TestWitnessGoldenRaceChain(t *testing.T) {
	w := workload.RaceChain(4)
	a, ws := analyze(t, w, memmodel.WO, 1, false)
	if len(ws) == 0 {
		t.Fatal("race-chain found no data races")
	}
	first, chained := 0, 0
	for _, wit := range ws {
		checkCertificateShape(t, a, wit)
		if wit.First {
			first++
			if len(wit.Chain) != 0 {
				t.Errorf("race %d: first-partition witness has chain %v", wit.Race, wit.Chain)
			}
			continue
		}
		chained++
		if len(wit.Chain) < 2 {
			t.Fatalf("race %d: non-first witness chain %v too short", wit.Race, wit.Chain)
		}
		if !a.Partitions[wit.Chain[0]].First {
			t.Errorf("race %d: chain %v does not start at a first partition", wit.Race, wit.Chain)
		}
		if wit.Chain[len(wit.Chain)-1] != wit.Partition {
			t.Errorf("race %d: chain %v does not end at partition %d", wit.Race, wit.Chain, wit.Partition)
		}
		for i := 0; i+1 < len(wit.Chain); i++ {
			if !a.PartitionPrecedes(wit.Chain[i], wit.Chain[i+1]) {
				t.Errorf("race %d: chain hop %d→%d is not a precedence edge", wit.Race, wit.Chain[i], wit.Chain[i+1])
			}
		}
	}
	if first == 0 || chained == 0 {
		t.Fatalf("race-chain should yield both first (%d) and chained (%d) witnesses", first, chained)
	}
	_, explicit := analyze(t, w, memmodel.WO, 1, true)
	sameWitnesses(t, "race-chain", ws, explicit)
	checkGolden(t, "racechain4_wo_1.json", ws)
}

// checkCertificateShape verifies the invariants every certificate must
// satisfy by construction: the partner index lies strictly inside each
// bracket, and the refs match the bracket indices. (The crosscheck
// harness verifies the brackets against an explicit transitive closure.)
func checkCertificateShape(t *testing.T, a *core.Analysis, w *Witness) {
	t.Helper()
	for side, b := range map[string]Boundary{"a_on_b_cpu": w.Certificate.A, "b_on_a_cpu": w.Certificate.B} {
		n := len(a.Trace.PerCPU[b.CPU])
		if b.LastPred < -1 || b.LastPred >= n || b.FirstSucc < 0 || b.FirstSucc > n {
			t.Errorf("race %d %s: bracket (%d, %d) out of range for stream of %d", w.Race, side, b.LastPred, b.FirstSucc, n)
		}
		if !(b.LastPred < b.Partner && b.Partner < b.FirstSucc) {
			t.Errorf("race %d %s: partner %d not strictly inside bracket (%d, %d) — pair would be hb1-ordered",
				w.Race, side, b.Partner, b.LastPred, b.FirstSucc)
		}
		if (b.LastPred >= 0) != (b.PredRef != "-") || (b.FirstSucc < n) != (b.SuccRef != "-") {
			t.Errorf("race %d %s: refs (%q, %q) inconsistent with bracket (%d, %d)", w.Race, side, b.PredRef, b.SuccRef, b.LastPred, b.FirstSucc)
		}
	}
	if w.Certificate.A.CPU != w.B.CPU || w.Certificate.B.CPU != w.A.CPU {
		t.Errorf("race %d: certificate CPUs (%d, %d) do not match sides (%d, %d)",
			w.Race, w.Certificate.A.CPU, w.Certificate.B.CPU, w.B.CPU, w.A.CPU)
	}
	if w.Certificate.A.Partner != w.B.Index || w.Certificate.B.Partner != w.A.Index {
		t.Errorf("race %d: certificate partners do not match side indices", w.Race)
	}
}

// Explain rejects out-of-range indices and synchronization races.
func TestExplainErrors(t *testing.T) {
	w := workload.Figure2()
	a, _ := analyze(t, w, memmodel.WO, 674, false)
	e := NewExplainer(a)
	if _, err := e.Explain(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := e.Explain(len(a.Races)); err == nil {
		t.Error("out-of-range index accepted")
	}
	for ri, r := range a.Races {
		if !r.Data {
			if _, err := e.Explain(ri); err == nil {
				t.Errorf("sync race %d explained; only data races have partitions", ri)
			}
			break
		}
	}
}

// The immediate-successor DAG must be the transitive reduction of the
// partition order: every edge a real precedence, no edge implied by a
// two-hop path, and jointly reconstructing the full order.
func TestImmediateSuccessorsIsTransitiveReduction(t *testing.T) {
	a, _ := analyze(t, workload.RaceChain(4), memmodel.WO, 1, false)
	e := NewExplainer(a)
	succ := e.ImmediateSuccessors()
	n := len(a.Partitions)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	var dfs func(root, cur int)
	dfs = func(root, cur int) {
		for _, nxt := range succ[cur] {
			if !reach[root][nxt] {
				reach[root][nxt] = true
				dfs(root, nxt)
			}
		}
	}
	for i := 0; i < n; i++ {
		dfs(i, i)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if reach[i][j] != a.PartitionPrecedes(i, j) {
				t.Errorf("immediate edges reconstruct %d⇒%d as %v, PartitionPrecedes says %v",
					i, j, reach[i][j], a.PartitionPrecedes(i, j))
			}
		}
	}
	for i := 0; i < n; i++ {
		for _, j := range succ[i] {
			for k := 0; k < n; k++ {
				if k != i && k != j && a.PartitionPrecedes(i, k) && a.PartitionPrecedes(k, j) {
					t.Errorf("edge %d→%d is not immediate: %d lies between", i, j, k)
				}
			}
		}
	}
}

package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("zero value not empty: len=%d", s.Len())
	}
	s.Add(5)
	if !s.Contains(5) {
		t.Fatal("Add on zero value failed")
	}
}

func TestAddContainsRemove(t *testing.T) {
	s := New(10)
	for _, v := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		if s.Contains(v) {
			t.Fatalf("fresh set contains %d", v)
		}
		s.Add(v)
		if !s.Contains(v) {
			t.Fatalf("set missing %d after Add", v)
		}
	}
	if got := s.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Len(); got != 7 {
		t.Fatalf("Len = %d, want 7", got)
	}
	// Removing an absent or out-of-range value is a no-op.
	s.Remove(64)
	s.Remove(99999)
	s.Remove(-3)
	if got := s.Len(); got != 7 {
		t.Fatalf("Len after no-op removes = %d, want 7", got)
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	New(4).Add(-1)
}

func TestContainsNegative(t *testing.T) {
	s := New(4)
	if s.Contains(-1) {
		t.Fatal("Contains(-1) = true")
	}
}

func TestClearAndClone(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 200})
	c := s.Clone()
	s.Clear()
	if !s.Empty() {
		t.Fatal("set not empty after Clear")
	}
	if c.Len() != 4 || !c.Contains(200) {
		t.Fatal("clone mutated by Clear on original")
	}
	c.Add(7)
	if s.Contains(7) {
		t.Fatal("original mutated by Add on clone")
	}
}

func TestUnion(t *testing.T) {
	a := FromSlice([]int{1, 2, 3})
	b := FromSlice([]int{3, 4, 500})
	a.Union(b)
	want := []int{1, 2, 3, 4, 500}
	got := a.Slice()
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{}, []int{}, false},
		{[]int{1}, []int{}, false},
		{[]int{1, 2}, []int{3, 4}, false},
		{[]int{1, 2}, []int{2, 3}, true},
		{[]int{64}, []int{64}, true},
		{[]int{64}, []int{65}, false},
		{[]int{1000}, []int{1000, 1}, true},
	}
	for _, c := range cases {
		a, b := FromSlice(c.a), FromSlice(c.b)
		if got := a.Intersects(b); got != c.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := b.Intersects(a); got != c.want {
			t.Errorf("Intersects(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestIntersection(t *testing.T) {
	a := FromSlice([]int{1, 2, 3, 70})
	b := FromSlice([]int{2, 70, 71})
	got := a.Intersection(b).Slice()
	if len(got) != 2 || got[0] != 2 || got[1] != 70 {
		t.Fatalf("Intersection = %v, want [2 70]", got)
	}
}

func TestEqualAcrossCapacities(t *testing.T) {
	a := New(1024)
	b := New(1)
	a.Add(3)
	b.Add(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("sets with same elements but different capacity not Equal")
	}
	a.Add(900)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("unequal sets reported Equal")
	}
}

func TestSliceSorted(t *testing.T) {
	s := FromSlice([]int{9, 1, 128, 0, 64})
	got := s.Slice()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("Slice not sorted: %v", got)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 4, 5})
	n := 0
	s.Range(func(v int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("Range visited %d elements, want 3", n)
	}
}

func TestString(t *testing.T) {
	if got := FromSlice([]int{2, 1}).String(); got != "{1, 2}" {
		t.Fatalf("String = %q, want {1, 2}", got)
	}
	if got := New(0).String(); got != "{}" {
		t.Fatalf("empty String = %q, want {}", got)
	}
}

// Property: a Set behaves like a map[int]bool under a random operation
// sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16) bool {
		s := &Set{}
		m := map[int]bool{}
		for _, op := range ops {
			v := int(op % 300)
			switch op % 3 {
			case 0:
				s.Add(v)
				m[v] = true
			case 1:
				s.Remove(v)
				delete(m, v)
			case 2:
				if s.Contains(v) != m[v] {
					return false
				}
			}
		}
		if s.Len() != len(m) {
			return false
		}
		for v := range m {
			if !s.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union length obeys inclusion-exclusion with intersection.
func TestQuickUnionIntersection(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := &Set{}, &Set{}
		for _, x := range xs {
			a.Add(int(x % 500))
		}
		for _, y := range ys {
			b.Add(int(y % 500))
		}
		inter := a.Intersection(b)
		u := a.Clone()
		u.Union(b)
		if u.Len() != a.Len()+b.Len()-inter.Len() {
			return false
		}
		if a.Intersects(b) != (inter.Len() > 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersects(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a, c := New(4096), New(4096)
	for i := 0; i < 200; i++ {
		a.Add(rng.Intn(4096))
		c.Add(rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Intersects(c)
	}
}

// Package bitset provides a compact, growable set of non-negative integers.
//
// Bit sets are the workhorse representation for two hot paths in weakrace:
// the READ/WRITE access sets attached to computation events (paper §4.1
// suggests exactly this: "bit-vectors representing those (shared) variables
// that might be accessed between two synchronization events"), and the
// reachability rows of the condensed happens-before-1 graph.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a growable bit set. The zero value is an empty set ready to use.
type Set struct {
	words []uint64
}

// New returns a set with capacity for values in [0, n). The set still grows
// automatically if larger values are added.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Wrap returns a Set backed by words without copying — the allocation
// device behind pooled reachability rows, where many fixed-width sets are
// carved out of one slab. The caller relinquishes ownership of the slice:
// mutating it afterwards corrupts the set. Adding a value beyond the
// wrapped capacity grows (reallocates) the set, detaching it from the
// backing slice.
func Wrap(words []uint64) *Set {
	return &Set{words: words}
}

// FromSlice returns a set containing exactly the given values.
func FromSlice(values []int) *Set {
	s := &Set{}
	for _, v := range values {
		s.Add(v)
	}
	return s
}

func (s *Set) grow(word int) {
	if word < len(s.words) {
		return
	}
	w := make([]uint64, word+1)
	copy(w, s.words)
	s.words = w
}

// Add inserts v into the set. Negative values panic: access sets and graph
// node ids are non-negative by construction, so a negative value is a bug.
func (s *Set) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("bitset: Add(%d): negative value", v))
	}
	word := v / wordBits
	s.grow(word)
	s.words[word] |= 1 << (uint(v) % wordBits)
}

// Remove deletes v from the set if present.
func (s *Set) Remove(v int) {
	if v < 0 {
		return
	}
	word := v / wordBits
	if word >= len(s.words) {
		return
	}
	s.words[word] &^= 1 << (uint(v) % wordBits)
}

// Contains reports whether v is in the set.
func (s *Set) Contains(v int) bool {
	if v < 0 {
		return false
	}
	word := v / wordBits
	if word >= len(s.words) {
		return false
	}
	return s.words[word]&(1<<(uint(v)%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Union adds every element of other to s.
func (s *Set) Union(other *Set) {
	s.grow(len(other.words) - 1)
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// Intersects reports whether s and other share any element. This is the
// conflict test between access sets and is allocation-free.
func (s *Set) Intersects(other *Set) bool {
	n := len(s.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// Intersection returns a new set holding the elements common to s and other.
func (s *Set) Intersection(other *Set) *Set {
	n := len(s.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	out := &Set{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.words[i] = s.words[i] & other.words[i]
	}
	return out
}

// Equal reports whether s and other contain the same elements.
func (s *Set) Equal(other *Set) bool {
	long, short := s.words, other.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if long[i] != w {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Slice returns the elements in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Len())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*wordBits+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// Range calls fn for each element in increasing order; it stops early if fn
// returns false.
func (s *Set) Range(fn func(v int) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(i*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// String renders the set as {a, b, c} for debugging and reports.
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.Range(func(v int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", v)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}

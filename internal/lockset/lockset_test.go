package lockset

import (
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

func runExec(t *testing.T, w *workload.Workload, seed int64) *sim.Execution {
	t.Helper()
	r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: seed, InitMemory: w.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	return r.Exec
}

func TestCleanLockingPasses(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := Check(runExec(t, workload.LockedCounter(3, 3, -1), seed))
		if len(res.Findings) != 0 {
			t.Fatalf("seed %d: clean locking flagged: %+v", seed, res.Findings)
		}
		if res.Checked == 0 {
			t.Fatal("no data operations checked")
		}
	}
}

// The lockset discipline is schedule-insensitive: the missing-lock bug is
// flagged on EVERY seed, including those where the happens-before
// detector sees no race because the accesses happened to be ordered.
func TestMissingLockFlaggedEverySeed(t *testing.T) {
	w := workload.LockedCounter(3, 3, 1)
	hbMissedSomewhere := false
	for seed := int64(0); seed < 25; seed++ {
		e := runExec(t, w, seed)
		res := Check(e)
		if !res.Flagged(0) {
			t.Fatalf("seed %d: missing-lock bug not flagged", seed)
		}
		a, err := core.Analyze(trace.FromExecution(e), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.RaceFree() {
			hbMissedSomewhere = true // the bug was masked by this schedule
		}
	}
	if !hbMissedSomewhere {
		t.Log("note: happens-before found the race on every seed too (schedule-dependent)")
	}
}

// The classic lockset false positive: ownership handoff through a
// release/acquire flag. P1 writes the buffer and publishes it; P2
// acquires and then WRITES the buffer. Race-free under happens-before
// (the flag orders everything), but no lock ever protects the buffer, so
// the lockset discipline reports it.
func TestFlagSynchronizationFalsePositive(t *testing.T) {
	b := program.NewBuilder("handoff-write", 2, 1)
	b.Thread("P1").
		Write(program.At(0), program.Imm(1)).
		SyncWrite(program.At(1), program.Imm(1))
	b.Thread("P2").
		Label("wait").
		SyncRead(0, program.At(1)).
		BranchZero(0, "wait").
		Write(program.At(0), program.Imm(2)) // new owner writes the buffer
	p := b.MustBuild()
	r, err := sim.Run(p, sim.Config{Model: memmodel.WO, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.RaceFree() {
		t.Fatal("flag handoff racy under happens-before?")
	}
	res := Check(r.Exec)
	if !res.Flagged(0) {
		t.Fatalf("lockset did not produce its characteristic false positive: %+v", res.Findings)
	}
}

// Single-writer flag pipelines do NOT false-positive: the consumer only
// reads, so the location stays in the shared (read) state, which Eraser
// deliberately does not report.
func TestSingleWriterPipelineNotFlagged(t *testing.T) {
	w := workload.ProducerConsumer(3, true)
	res := Check(runExec(t, w, 1))
	if len(res.Findings) != 0 {
		t.Fatalf("single-writer pipeline flagged: %+v", res.Findings)
	}
}

// Read-only sharing is never reported (the shared state does not report).
func TestReadOnlySharingNotFlagged(t *testing.T) {
	// Location 0 is preset and only ever read, by both threads.
	b := program.NewBuilder("read-share", 1, 1)
	b.Thread("P1").Read(0, program.At(0))
	b.Thread("P2").Read(0, program.At(0))
	p := b.MustBuild()
	r, err := sim.Run(p, sim.Config{Model: memmodel.SC, Seed: 1,
		InitMemory: map[program.Addr]int64{0: 7}})
	if err != nil {
		t.Fatal(err)
	}
	res := Check(r.Exec)
	if len(res.Findings) != 0 {
		t.Fatalf("read-only sharing flagged: %+v", res.Findings)
	}
}

func TestExclusiveThenSharedWrite(t *testing.T) {
	// P1 writes x unlocked (exclusive), P2 then writes x unlocked →
	// shared-modified with empty candidates → flagged.
	b := program.NewBuilder("ww", 1, 1)
	b.Thread("P1").Write(program.At(0), program.Imm(1))
	b.Thread("P2").Write(program.At(0), program.Imm(2))
	p := b.MustBuild()
	r, err := sim.Run(p, sim.Config{Model: memmodel.SC, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := Check(r.Exec)
	if !res.Flagged(0) {
		t.Fatal("unlocked write-write sharing not flagged")
	}
	if res.Findings[0].State != "shared-modified" {
		t.Fatalf("state = %q", res.Findings[0].State)
	}
}

// Package lockset implements the Eraser-style lockset algorithm as a
// second baseline detector. Where the paper's technique (and the
// on-the-fly vector-clock baseline) reason about the happens-before-1
// relation of ONE execution, lockset checking enforces a locking
// discipline: every shared location must be consistently protected by
// some lock. That makes it schedule-insensitive — a missing-lock bug is
// flagged even in executions where the accesses happened to be ordered —
// at the price of false positives on lock-free synchronization
// (release/acquire flags, barriers), which the happens-before approach
// handles exactly.
//
// The experiment table T9 quantifies this classic trade-off against the
// paper's detector.
package lockset

import (
	"sort"

	"weakrace/internal/program"
	"weakrace/internal/sim"
)

// state is the per-location Eraser state machine.
type state int

const (
	virgin state = iota
	exclusive
	shared
	sharedModified
)

// lockSet is a small set of lock locations.
type lockSet map[program.Addr]bool

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for l := range s {
		c[l] = true
	}
	return c
}

func (s lockSet) intersect(other lockSet) {
	for l := range s {
		if !other[l] {
			delete(s, l)
		}
	}
}

// Finding is one location flagged by the lockset checker.
type Finding struct {
	// Loc is the unprotected shared location.
	Loc program.Addr
	// FirstUnprotected is the operation that emptied the candidate set.
	FirstUnprotected sim.StaticOp
	// State is the Eraser state at report time (always sharedModified:
	// read-shared data with an empty set is not reported, matching
	// Eraser's refinement).
	State string
}

// Result is the checker's output.
type Result struct {
	// Findings lists flagged locations, by location.
	Findings []Finding
	// Checked counts data operations processed.
	Checked int
}

// Flagged reports whether loc was flagged.
func (r *Result) Flagged(loc program.Addr) bool {
	for _, f := range r.Findings {
		if f.Loc == loc {
			return true
		}
	}
	return false
}

// locState is the checker's per-location record.
type locState struct {
	st         state
	owner      int     // owning CPU while exclusive
	candidates lockSet // initialized on first shared access
	reported   bool
	finding    Finding
}

// Check runs the lockset discipline over an execution. Lock acquisition
// is a successful Test&Set (an acquire read returning 0 followed by the
// sync write); release is an Unset (a release write of 0 to a held lock).
// Explicit SyncRead/SyncWrite flags are deliberately NOT treated as locks
// — they do not protect regions — which is exactly where the lockset
// discipline reports its characteristic false positives.
func Check(e *sim.Execution) *Result {
	held := make([]lockSet, e.NumCPUs)
	for c := range held {
		held[c] = lockSet{}
	}
	// A Test&Set's acquire-read is immediately followed by its sync-write
	// (same processor, step, and pc); a standalone SyncRead is not. Only
	// the former acquires a lock.
	isTas := make(map[int]bool)
	for c := 0; c < e.NumCPUs; c++ {
		ops := e.OpsOf(c)
		for i := 0; i+1 < len(ops); i++ {
			if ops[i].Kind == sim.OpAcquireRead && ops[i+1].Kind == sim.OpSyncWriteOther &&
				ops[i].Step == ops[i+1].Step && ops[i].PC == ops[i+1].PC {
				isTas[ops[i].ID] = true
			}
		}
	}
	locs := map[program.Addr]*locState{}
	res := &Result{}

	for _, op := range e.Ops {
		c := op.CPU
		switch op.Kind {
		case sim.OpAcquireRead:
			// A Test&Set that read 0 wins the lock; a standalone SyncRead
			// (flag synchronization) is not a lock — which is precisely
			// where the lockset discipline produces its false positives.
			if op.Value == 0 && isTas[op.ID] {
				held[c][op.Loc] = true
			}
		case sim.OpReleaseWrite:
			delete(held[c], op.Loc)
		case sim.OpSyncWriteOther:
			// The write half of a Test&Set: no lockset effect.
		case sim.OpDataRead, sim.OpDataWrite:
			res.Checked++
			ls := locs[op.Loc]
			if ls == nil {
				ls = &locState{st: virgin}
				locs[op.Loc] = ls
			}
			write := op.Kind == sim.OpDataWrite
			switch ls.st {
			case virgin:
				ls.st = exclusive
				ls.owner = c
			case exclusive:
				if c == ls.owner {
					break
				}
				// Second thread: enter shared states and start refining.
				ls.candidates = held[c].clone()
				if write {
					ls.st = sharedModified
				} else {
					ls.st = shared
				}
			case shared:
				ls.candidates.intersect(held[c])
				if write {
					ls.st = sharedModified
				}
			case sharedModified:
				ls.candidates.intersect(held[c])
			}
			if ls.st == sharedModified && len(ls.candidates) == 0 && !ls.reported {
				ls.reported = true
				ls.finding = Finding{
					Loc:              op.Loc,
					FirstUnprotected: op.Static(),
					State:            "shared-modified",
				}
			}
		}
	}

	for _, ls := range locs {
		if ls.reported {
			res.Findings = append(res.Findings, ls.finding)
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		return res.Findings[i].Loc < res.Findings[j].Loc
	})
	return res
}

// Package sim is a discrete-event multiprocessor simulator for the memory
// models of the paper: a seeded interleaving scheduler over per-processor
// instruction streams, with per-processor store buffers whose non-FIFO
// retirement produces exactly the reorderings the weak models permit.
//
// The simulator plays the role of the paper's (hypothetical, in 1991)
// weak-memory hardware. Its honest configurations satisfy the paper's
// Condition 3.4 by construction: a buffered reordering can only become
// visible through a conflicting, unsynchronized access — a data race — so
// every execution is sequentially consistent at least until its first data
// races. A deliberately Pathological configuration (value speculation)
// violates the condition, for the Theorem 3.5 ablation experiment.
package sim

import (
	"fmt"

	"weakrace/internal/memmodel"
	"weakrace/internal/program"
)

// OpKind classifies a dynamic memory operation.
type OpKind int

const (
	// OpDataRead is an ordinary read.
	OpDataRead OpKind = iota
	// OpDataWrite is an ordinary write.
	OpDataWrite
	// OpAcquireRead is a synchronization read: the read half of a Test&Set
	// or an explicit SyncRead.
	OpAcquireRead
	// OpReleaseWrite is a synchronization write that is a release: Unset or
	// an explicit SyncWrite.
	OpReleaseWrite
	// OpSyncWriteOther is the write half of a Test&Set: a synchronization
	// operation, but not a release (paper §2.1).
	OpSyncWriteOther
)

var opKindNames = map[OpKind]string{
	OpDataRead: "read", OpDataWrite: "write", OpAcquireRead: "sync-read",
	OpReleaseWrite: "release", OpSyncWriteOther: "sync-write",
}

// String returns a short name for the kind.
func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// IsRead reports whether the operation reads memory.
func (k OpKind) IsRead() bool { return k == OpDataRead || k == OpAcquireRead }

// IsWrite reports whether the operation writes memory.
func (k OpKind) IsWrite() bool {
	return k == OpDataWrite || k == OpReleaseWrite || k == OpSyncWriteOther
}

// IsSync reports whether the operation is recognized as synchronization.
func (k OpKind) IsSync() bool { return k != OpDataRead && k != OpDataWrite }

// Role maps the kind to its memmodel ordering role.
func (k OpKind) Role() memmodel.Role {
	switch k {
	case OpAcquireRead:
		return memmodel.RoleAcquire
	case OpReleaseWrite:
		return memmodel.RoleRelease
	case OpSyncWriteOther:
		return memmodel.RoleSyncOther
	default:
		return memmodel.RoleData
	}
}

// InitialWrite is the ObservedWrite value for reads that observed a
// location's initial contents rather than any dynamic write.
const InitialWrite = -1

// MemOp is one dynamic memory operation of an execution.
type MemOp struct {
	// ID is the operation's index in Execution.Ops (global issue order).
	ID int
	// CPU is the issuing processor.
	CPU int
	// PC is the program counter of the instruction that issued the
	// operation; together with CPU it identifies the *static* operation,
	// which is how the paper identifies operations ("the part of the
	// program in which it is specified", §2.1).
	PC int
	// Kind classifies the operation.
	Kind OpKind
	// Loc is the shared location accessed.
	Loc program.Addr
	// Value is the value read (for reads) or written (for writes).
	Value int64
	// ObservedWrite is, for reads, the ID of the write whose value was
	// returned, or InitialWrite. For writes it is unused (-1).
	ObservedWrite int
	// SyncSeq is, for synchronization operations, the operation's position
	// in the global order of synchronization operations on Loc (0-based);
	// -1 for data operations. This is the "relative execution order of
	// synchronization operations involving the same location" the paper's
	// instrumentation records (§4.1).
	SyncSeq int
	// Step is the scheduler step at which the operation issued.
	Step int
	// CommitStep is the step at which the operation became globally
	// visible: the retirement step for buffered writes, otherwise Step.
	CommitStep int
	// Speculative marks reads corrupted by the Pathological configuration.
	Speculative bool
}

// String renders the op compactly, e.g. "P2 read(5)=37" or "P1 release(7)=0".
func (op MemOp) String() string {
	return fmt.Sprintf("P%d %s(%d)=%d", op.CPU+1, op.Kind, op.Loc, op.Value)
}

// Static returns the static identity of the operation: processor and
// program counter. Races are matched across executions by static identity,
// because the paper defines an operation by its program point and location,
// never by the value it read or wrote.
func (op MemOp) Static() StaticOp {
	return StaticOp{CPU: op.CPU, PC: op.PC, Loc: op.Loc}
}

// StaticOp identifies a memory operation by program point and location.
type StaticOp struct {
	CPU int
	PC  int
	Loc program.Addr
}

// String renders the static identity.
func (s StaticOp) String() string {
	return fmt.Sprintf("P%d@%d[%d]", s.CPU+1, s.PC, s.Loc)
}

// Execution is the complete, value-annotated record of one simulated run.
// It is the ground truth the SCP machinery analyzes; the detector itself
// sees only the trace derived from it.
type Execution struct {
	ProgramName  string
	Model        memmodel.Model
	Seed         int64
	NumCPUs      int
	NumLocations int

	// InitMemory is the initial contents of shared memory (length
	// NumLocations). The SC verifier needs it to replay reads-from.
	InitMemory []int64

	// Ops holds every memory operation, indexed by ID (global issue order).
	Ops []MemOp
	// PerCPU[c] lists the op IDs of processor c in program order.
	PerCPU [][]int

	// FirstStaleObservation is the ID of the first read that directly
	// witnessed a store-buffer reordering: it observed a write w by another
	// processor while that processor still had a write older than w (in its
	// program order) sitting in its buffer. Such a read always races with w
	// (any intervening release would have drained the buffer), so a stale
	// observation certifies both a data race and the spot where sequential
	// consistency first became observable — the "End of SCP" marker in the
	// paper's Figure 2b. -1 if no read witnessed a reordering. The witness
	// is conservative in the other direction too: some executions with a
	// stale observation are still sequentially consistent; internal/scp
	// decides exactly.
	FirstStaleObservation int

	// StaleReads counts reads that witnessed a reordering as above.
	StaleReads int
	// ForwardedReads counts reads satisfied from the issuing processor's
	// own store buffer (store-to-load forwarding).
	ForwardedReads int
	// BypassReads counts reads that read shared memory while the issuing
	// processor's own store buffer held older writes to other locations
	// (the store-buffer relaxation that enables the SB litmus outcome).
	BypassReads int
	// SpeculativeReads counts reads corrupted by the Pathological mode.
	SpeculativeReads int
}

// OpsOf returns processor c's operations in program order.
func (e *Execution) OpsOf(c int) []MemOp {
	ids := e.PerCPU[c]
	out := make([]MemOp, len(ids))
	for i, id := range ids {
		out[i] = e.Ops[id]
	}
	return out
}

// NumOps returns the total number of memory operations.
func (e *Execution) NumOps() int { return len(e.Ops) }

// DefinitelySC reports whether the execution is certainly sequentially
// consistent by a conservative sufficient condition: no read ever
// interacted with a non-empty store buffer (no forwarding, no bypassing,
// no stale observation) and no read was speculative — so every read saw
// the latest globally committed value with all reorderings unobserved.
// Executions for which this returns false may still be sequentially
// consistent; internal/scp performs the exact check.
func (e *Execution) DefinitelySC() bool {
	return e.StaleReads == 0 && e.ForwardedReads == 0 && e.BypassReads == 0 &&
		e.SpeculativeReads == 0
}

package sim

import (
	"fmt"
	"math/rand"

	"weakrace/internal/memmodel"
	"weakrace/internal/program"
)

// Stepper is a caller-controlled sequentially consistent interpreter: the
// caller, not a random scheduler, decides which processor executes the next
// instruction. It exists for the exhaustive enumeration of sequentially
// consistent executions (internal/scp), which provides ground truth for
// the paper's Theorem 4.2 — every first partition contains a race that
// occurs in SOME sequentially consistent execution.
//
// The Stepper is restricted to the SC model: under SC there are no store
// buffers, so a schedule is fully determined by the sequence of processor
// choices and Clone can snapshot the machine exactly.
type Stepper struct {
	m *machine
}

// NewStepper builds a stepper for the program under SC with the given
// initial memory.
func NewStepper(p *program.Program, initMemory map[program.Addr]int64) (*Stepper, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sim: stepper: %w", err)
	}
	cfg := Config{Model: memmodel.SC}.withDefaults()
	m := &machine{
		prog:    p,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(0)), // never consulted under SC
		mem:     make([]memCell, p.NumLocations),
		prev:    make([]memCell, p.NumLocations),
		cpus:    make([]cpuState, p.NumThreads()),
		syncSeq: make([]int, p.NumLocations),
		cycles:  make([]int64, p.NumThreads()),
		exec: &Execution{
			ProgramName:           p.Name,
			Model:                 memmodel.SC,
			NumCPUs:               p.NumThreads(),
			NumLocations:          p.NumLocations,
			PerCPU:                make([][]int, p.NumThreads()),
			FirstStaleObservation: -1,
		},
	}
	for i := range m.mem {
		m.mem[i].writer = InitialWrite
		m.prev[i].writer = InitialWrite
	}
	for a, v := range initMemory {
		if a < 0 || int(a) >= p.NumLocations {
			return nil, fmt.Errorf("sim: stepper: initial memory location %d out of range [0,%d)", a, p.NumLocations)
		}
		m.mem[a].val = v
		m.prev[a].val = v
	}
	m.exec.InitMemory = make([]int64, p.NumLocations)
	for i := range m.mem {
		m.exec.InitMemory[i] = m.mem[i].val
	}
	for c := range m.cpus {
		m.cpus[c].regs = make([]int64, p.NumRegs)
	}
	return &Stepper{m: m}, nil
}

// Runnable returns the processors that can execute an instruction.
func (s *Stepper) Runnable() []int {
	var out []int
	for c := range s.m.cpus {
		if !s.m.cpus[c].halted {
			out = append(out, c)
		}
	}
	return out
}

// Done reports whether every processor has halted.
func (s *Stepper) Done() bool { return len(s.Runnable()) == 0 }

// Step executes one instruction on processor c. Stepping a halted
// processor is a no-op.
func (s *Stepper) Step(c int) error {
	s.m.execInstr(c)
	s.m.step++
	if s.m.err != nil {
		return fmt.Errorf("sim: stepper: %w", s.m.err)
	}
	return nil
}

// Steps returns the number of instructions executed so far.
func (s *Stepper) Steps() int { return s.m.step }

// Execution returns the execution recorded so far. The returned value
// aliases the stepper's internal state; callers that keep stepping should
// not retain it.
func (s *Stepper) Execution() *Execution { return s.m.exec }

// Memory returns a copy of the current shared memory values.
func (s *Stepper) Memory() []int64 {
	out := make([]int64, len(s.m.mem))
	for i, cell := range s.m.mem {
		out[i] = cell.val
	}
	return out
}

// Clone returns an independent deep copy of the stepper, so a depth-first
// enumeration can branch on scheduler choices.
func (s *Stepper) Clone() *Stepper {
	src := s.m
	dst := &machine{
		prog:    src.prog,
		cfg:     src.cfg,
		rng:     rand.New(rand.NewSource(0)),
		mem:     append([]memCell(nil), src.mem...),
		prev:    append([]memCell(nil), src.prev...),
		cpus:    make([]cpuState, len(src.cpus)),
		syncSeq: append([]int(nil), src.syncSeq...),
		cycles:  append([]int64(nil), src.cycles...),
		step:    src.step,
		exec: &Execution{
			ProgramName:           src.exec.ProgramName,
			Model:                 src.exec.Model,
			Seed:                  src.exec.Seed,
			NumCPUs:               src.exec.NumCPUs,
			NumLocations:          src.exec.NumLocations,
			InitMemory:            src.exec.InitMemory,
			Ops:                   append([]MemOp(nil), src.exec.Ops...),
			PerCPU:                make([][]int, len(src.exec.PerCPU)),
			FirstStaleObservation: src.exec.FirstStaleObservation,
			StaleReads:            src.exec.StaleReads,
			ForwardedReads:        src.exec.ForwardedReads,
			BypassReads:           src.exec.BypassReads,
			SpeculativeReads:      src.exec.SpeculativeReads,
		},
	}
	for c := range src.cpus {
		dst.cpus[c] = cpuState{
			regs:   append([]int64(nil), src.cpus[c].regs...),
			pc:     src.cpus[c].pc,
			halted: src.cpus[c].halted,
			buf:    append([]bufEntry(nil), src.cpus[c].buf...),
		}
	}
	for c := range src.exec.PerCPU {
		dst.exec.PerCPU[c] = append([]int(nil), src.exec.PerCPU[c]...)
	}
	return &Stepper{m: dst}
}

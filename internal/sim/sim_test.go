package sim

import (
	"reflect"
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/program"
)

// messagePassing builds the paper's Figure 1a shape: P1 writes x then y;
// P2 reads y into r0 then x into r1. No synchronization.
func messagePassing() *program.Program {
	const x, y = 0, 1
	b := program.NewBuilder("fig1a", 2, 2)
	b.Thread("P1").
		Write(program.At(x), program.Imm(1)).
		Write(program.At(y), program.Imm(1))
	b.Thread("P2").
		Read(0, program.At(y)).
		Read(1, program.At(x))
	return b.MustBuild()
}

// syncedMessagePassing builds the Figure 1b shape: P1 writes x and y then
// releases s; P2 spins on Test&Set(s) and then reads y and x. Location s
// starts locked (1).
func syncedMessagePassing() *program.Program {
	const x, y, s = 0, 1, 2
	b := program.NewBuilder("fig1b", 3, 2)
	b.Thread("P1").
		Write(program.At(x), program.Imm(1)).
		Write(program.At(y), program.Imm(1)).
		Unset(program.At(s))
	b.Thread("P2").
		Label("spin").
		TestAndSet(0, program.At(s)).
		BranchNotZero(0, "spin").
		Read(0, program.At(y)).
		Read(1, program.At(x))
	return b.MustBuild()
}

// lockedCounter builds nCPU threads that each increment a shared counter
// iters times under a Test&Set/Unset lock.
func lockedCounter(nCPU, iters int) *program.Program {
	const counter, lock = 0, 1
	b := program.NewBuilder("locked-counter", 2, 3)
	for i := 0; i < nCPU; i++ {
		t := b.Thread("")
		t.Const(2, int64(iters)).
			Label("loop").
			Label("spin").
			TestAndSet(0, program.At(lock)).
			BranchNotZero(0, "spin").
			Read(0, program.At(counter)).
			AddImm(0, 0, 1).
			Write(program.At(counter), program.FromReg(0)).
			Unset(program.At(lock)).
			AddImm(2, 2, -1).
			BranchNotZero(2, "loop")
	}
	return b.MustBuild()
}

// lastRead returns the value register r0/r1 ended with, via the recorded
// execution: the value of the nth read op of the cpu.
func readValues(e *Execution, cpu int) []int64 {
	var vals []int64
	for _, op := range e.OpsOf(cpu) {
		if op.Kind == OpDataRead {
			vals = append(vals, op.Value)
		}
	}
	return vals
}

func TestDeterministicBySeed(t *testing.T) {
	p := lockedCounter(3, 4)
	for _, model := range memmodel.All {
		a, err := Run(p, Config{Model: model, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(p, Config{Model: model, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Exec.Ops, b.Exec.Ops) {
			t.Fatalf("%v: same seed produced different executions", model)
		}
		if !reflect.DeepEqual(a.FinalMemory, b.FinalMemory) {
			t.Fatalf("%v: same seed produced different final memory", model)
		}
	}
}

func TestSCNeverReorders(t *testing.T) {
	p := messagePassing()
	for seed := int64(0); seed < 300; seed++ {
		r, err := Run(p, Config{Model: memmodel.SC, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		vals := readValues(r.Exec, 1)
		if vals[0] == 1 && vals[1] == 0 {
			t.Fatalf("seed %d: SC execution saw y=1, x=0", seed)
		}
		if !r.Exec.DefinitelySC() {
			t.Fatalf("seed %d: SC run not DefinitelySC", seed)
		}
		if r.Exec.StaleReads != 0 || r.Exec.ForwardedReads != 0 || r.Exec.BypassReads != 0 {
			t.Fatalf("seed %d: SC run used the store buffer", seed)
		}
	}
}

func TestWeakModelsCanReorder(t *testing.T) {
	p := messagePassing()
	for _, model := range []memmodel.Model{memmodel.WO, memmodel.RCsc, memmodel.DRF0, memmodel.DRF1} {
		found := false
		for seed := int64(0); seed < 500 && !found; seed++ {
			r, err := Run(p, Config{Model: model, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			vals := readValues(r.Exec, 1)
			if vals[0] == 1 && vals[1] == 0 {
				found = true
				if r.Exec.StaleReads == 0 {
					t.Fatalf("%v seed %d: reordered outcome without a stale-read witness", model, seed)
				}
				if r.Exec.FirstStaleObservation < 0 {
					t.Fatalf("%v seed %d: FirstStaleObservation not set", model, seed)
				}
			}
		}
		if !found {
			t.Fatalf("%v: no seed in [0,500) produced the reordered outcome y=1,x=0", model)
		}
	}
}

// The DRF guarantee: a data-race-free program behaves sequentially
// consistently on every weak model, whatever the seed.
func TestRaceFreeProgramIsSCOnWeakModels(t *testing.T) {
	p := syncedMessagePassing()
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 200; seed++ {
			r, err := Run(p, Config{
				Model: model, Seed: seed,
				InitMemory: map[program.Addr]int64{2: 1}, // lock starts held
			})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed {
				t.Fatalf("%v seed %d: did not complete", model, seed)
			}
			vals := readValues(r.Exec, 1)
			if len(vals) != 2 || vals[0] != 1 || vals[1] != 1 {
				t.Fatalf("%v seed %d: P2 read y=%v — DRF guarantee violated", model, seed, vals)
			}
			if r.Exec.StaleReads != 0 {
				t.Fatalf("%v seed %d: race-free run recorded a stale read", model, seed)
			}
		}
	}
}

func TestLockedCounterCorrectOnAllModels(t *testing.T) {
	const nCPU, iters = 3, 5
	p := lockedCounter(nCPU, iters)
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 50; seed++ {
			r, err := Run(p, Config{Model: model, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed {
				t.Fatalf("%v seed %d: did not complete in %d steps", model, seed, r.Steps)
			}
			if got := r.FinalMemory[0]; got != nCPU*iters {
				t.Fatalf("%v seed %d: counter = %d, want %d", model, seed, got, nCPU*iters)
			}
		}
	}
}

// Per-location coherence: two writes to the same location by one processor
// always commit in program order, so the final value is the second write.
func TestSameLocationWritesStayOrdered(t *testing.T) {
	b := program.NewBuilder("coherence", 1, 1)
	b.Thread("P1").
		Write(program.At(0), program.Imm(1)).
		Write(program.At(0), program.Imm(2))
	p := b.MustBuild()
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 100; seed++ {
			r, err := Run(p, Config{Model: model, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if r.FinalMemory[0] != 2 {
				t.Fatalf("%v seed %d: final = %d, want 2", model, seed, r.FinalMemory[0])
			}
		}
	}
}

func TestStoreForwarding(t *testing.T) {
	b := program.NewBuilder("forward", 1, 1)
	b.Thread("P1").
		Write(program.At(0), program.Imm(7)).
		Read(0, program.At(0))
	p := b.MustBuild()
	// RetireProb 0 keeps the write buffered until the read, forcing
	// forwarding on weak models.
	r, err := Run(p, Config{Model: memmodel.WO, Seed: 1, RetireProb: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	vals := readValues(r.Exec, 0)
	if vals[0] != 7 {
		t.Fatalf("forwarded read = %d, want 7", vals[0])
	}
}

func TestReleasePairingRecorded(t *testing.T) {
	p := syncedMessagePassing()
	r, err := Run(p, Config{
		Model: memmodel.WO, Seed: 3,
		InitMemory: map[program.Addr]int64{2: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find P1's release and the P2 acquire that read 0: the acquire's
	// ObservedWrite must be the release's op ID.
	var releaseID = -1
	for _, op := range r.Exec.OpsOf(0) {
		if op.Kind == OpReleaseWrite {
			releaseID = op.ID
		}
	}
	if releaseID < 0 {
		t.Fatal("no release recorded for P1")
	}
	foundPairedAcquire := false
	for _, op := range r.Exec.OpsOf(1) {
		if op.Kind == OpAcquireRead && op.Value == 0 {
			if op.ObservedWrite != releaseID {
				t.Fatalf("winning acquire observed op %d, want release %d", op.ObservedWrite, releaseID)
			}
			foundPairedAcquire = true
		}
	}
	if !foundPairedAcquire {
		t.Fatal("no acquire read the released value")
	}
}

func TestSyncSeqPerLocation(t *testing.T) {
	p := syncedMessagePassing()
	r, err := Run(p, Config{
		Model: memmodel.WO, Seed: 5,
		InitMemory: map[program.Addr]int64{2: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// All sync ops are on location 2; their SyncSeq values must be exactly
	// 0..n-1 in commit order, and data ops must have SyncSeq -1.
	seen := map[int]bool{}
	n := 0
	for _, op := range r.Exec.Ops {
		if op.Kind.IsSync() {
			if op.Loc != 2 {
				t.Fatalf("unexpected sync location %d", op.Loc)
			}
			if seen[op.SyncSeq] {
				t.Fatalf("duplicate SyncSeq %d", op.SyncSeq)
			}
			seen[op.SyncSeq] = true
			n++
		} else if op.SyncSeq != -1 {
			t.Fatalf("data op with SyncSeq %d", op.SyncSeq)
		}
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			t.Fatalf("SyncSeq %d missing (have %d sync ops)", i, n)
		}
	}
}

func TestMaxStepsSpin(t *testing.T) {
	// Lock starts held and nobody releases: the spinner must hit MaxSteps.
	b := program.NewBuilder("deadlock", 1, 1)
	b.Thread("P1").
		Label("spin").
		TestAndSet(0, program.At(0)).
		BranchNotZero(0, "spin")
	p := b.MustBuild()
	r, err := Run(p, Config{
		Model: memmodel.WO, Seed: 1, MaxSteps: 1000,
		InitMemory: map[program.Addr]int64{0: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed {
		t.Fatal("spin loop reported completion")
	}
}

func TestPathologicalSpeculation(t *testing.T) {
	// A single-threaded, trivially race-free program: write then read the
	// same location after retirement. Pathological mode must eventually
	// return the stale previous value, violating Condition 3.4(1).
	b := program.NewBuilder("patho", 1, 2)
	tb := b.Thread("P1")
	for i := 0; i < 40; i++ {
		tb.Write(program.At(0), program.Imm(int64(i+1))).Fence().Read(0, program.At(0))
	}
	p := b.MustBuild()
	sawStale := false
	for seed := int64(0); seed < 50 && !sawStale; seed++ {
		r, err := Run(p, Config{
			Model: memmodel.WO, Seed: seed,
			Pathological: true, PathologicalProb: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Exec.SpeculativeReads > 0 {
			sawStale = true
			if r.Exec.DefinitelySC() {
				t.Fatal("speculative execution reported DefinitelySC")
			}
		}
	}
	if !sawStale {
		t.Fatal("pathological mode never speculated")
	}
}

func TestInitMemoryValidation(t *testing.T) {
	p := messagePassing()
	if _, err := Run(p, Config{InitMemory: map[program.Addr]int64{99: 1}}); err == nil {
		t.Fatal("out-of-range InitMemory accepted")
	}
}

func TestIndexedAddressOutOfRange(t *testing.T) {
	b := program.NewBuilder("oob", 2, 1)
	b.Thread("P1").
		Const(0, 100).
		Write(program.AtReg(0, 0), program.Imm(1))
	p := b.MustBuild()
	if _, err := Run(p, Config{Model: memmodel.SC, Seed: 1}); err == nil {
		t.Fatal("out-of-range indexed address accepted")
	}
}

func TestBufferCapForcesRetirement(t *testing.T) {
	b := program.NewBuilder("burst", 64, 1)
	tb := b.Thread("P1")
	for i := 0; i < 32; i++ {
		tb.Write(program.At(program.Addr(i)), program.Imm(int64(i)))
	}
	p := b.MustBuild()
	r, err := Run(p, Config{Model: memmodel.WO, Seed: 1, BufferCap: 4, RetireProb: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if r.FinalMemory[i] != int64(i) {
			t.Fatalf("mem[%d] = %d, want %d", i, r.FinalMemory[i], i)
		}
	}
}

// Every read's ObservedWrite must be consistent: the value read equals the
// value of the observed write (or the initial value).
func TestObservedWriteConsistency(t *testing.T) {
	p := lockedCounter(3, 4)
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 20; seed++ {
			r, err := Run(p, Config{Model: model, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range r.Exec.Ops {
				if !op.Kind.IsRead() {
					continue
				}
				if op.ObservedWrite == InitialWrite {
					if op.Value != 0 {
						t.Fatalf("%v seed %d: initial read of loc %d = %d", model, seed, op.Loc, op.Value)
					}
					continue
				}
				w := r.Exec.Ops[op.ObservedWrite]
				if !w.Kind.IsWrite() {
					t.Fatalf("%v seed %d: read observed non-write op %v", model, seed, w)
				}
				if w.Loc != op.Loc || w.Value != op.Value {
					t.Fatalf("%v seed %d: read %v inconsistent with observed write %v", model, seed, op, w)
				}
			}
		}
	}
}

// The cycle cost model: a write-heavy race-free program must be cheaper
// (smaller makespan) on every weak model than on SC, because buffered
// writes retire in the background instead of stalling.
func TestCycleModelWeakBeatsSC(t *testing.T) {
	b := program.NewBuilder("write-heavy", 32, 2)
	for c := 0; c < 2; c++ {
		tb := b.Thread("")
		for i := 0; i < 12; i++ {
			tb.Write(program.At(program.Addr(c*16+i)), program.Imm(int64(i)))
		}
		tb.Unset(program.At(program.Addr(c*16 + 15)))
	}
	p := b.MustBuild()
	var scTotal, weakTotal int64
	for seed := int64(0); seed < 30; seed++ {
		rSC, err := Run(p, Config{Model: memmodel.SC, Seed: seed, RetireProb: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		rWO, err := Run(p, Config{Model: memmodel.WO, Seed: seed, RetireProb: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		scTotal += rSC.Makespan()
		weakTotal += rWO.Makespan()
	}
	if weakTotal >= scTotal {
		t.Fatalf("WO makespan %d not below SC %d", weakTotal, scTotal)
	}
}

func TestCyclesAccumulate(t *testing.T) {
	p := lockedCounter(2, 2)
	r, err := Run(p, Config{Model: memmodel.WO, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CyclesPerCPU) != 2 {
		t.Fatalf("CyclesPerCPU = %v", r.CyclesPerCPU)
	}
	for c, cy := range r.CyclesPerCPU {
		if cy <= 0 {
			t.Fatalf("cpu %d has %d cycles", c, cy)
		}
	}
	if r.Makespan() < r.CyclesPerCPU[0] || r.Makespan() < r.CyclesPerCPU[1] {
		t.Fatal("Makespan below a per-CPU count")
	}
}

func TestOpKindClassification(t *testing.T) {
	if !OpAcquireRead.IsRead() || !OpDataRead.IsRead() || OpDataWrite.IsRead() {
		t.Fatal("IsRead wrong")
	}
	if !OpDataWrite.IsWrite() || !OpReleaseWrite.IsWrite() || !OpSyncWriteOther.IsWrite() || OpAcquireRead.IsWrite() {
		t.Fatal("IsWrite wrong")
	}
	if OpDataRead.IsSync() || !OpAcquireRead.IsSync() || !OpSyncWriteOther.IsSync() {
		t.Fatal("IsSync wrong")
	}
	if OpAcquireRead.Role() != memmodel.RoleAcquire ||
		OpReleaseWrite.Role() != memmodel.RoleRelease ||
		OpSyncWriteOther.Role() != memmodel.RoleSyncOther ||
		OpDataRead.Role() != memmodel.RoleData {
		t.Fatal("Role mapping wrong")
	}
}

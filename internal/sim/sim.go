package sim

import (
	"fmt"
	"math/rand"
	"sync"

	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/telemetry"
)

// Config controls one simulation run.
type Config struct {
	// Model is the memory consistency model to simulate. Default SC.
	Model memmodel.Model
	// Seed drives the interleaving scheduler and retirement order. The same
	// (program, Config) pair always produces the same execution.
	Seed int64
	// MaxSteps bounds the scheduler (guards against spin loops that never
	// win the lock). Default 1 << 20.
	MaxSteps int
	// BufferCap is the per-processor store buffer capacity; issuing a data
	// write into a full buffer first retires one entry. Default 16.
	BufferCap int
	// RetireProb is the probability that a scheduler step retires a
	// buffered write instead of executing an instruction, when both are
	// possible. Smaller values keep writes buffered longer and make
	// reorderings more visible. Default 0.3.
	RetireProb float64
	// Pathological enables value speculation on data reads: with
	// probability PathologicalProb a read returns the location's previous
	// committed value. This deliberately violates the paper's Condition
	// 3.4 — even race-free executions stop being sequentially consistent —
	// and exists only for the ablation experiment (Theorem 3.5).
	Pathological bool
	// PathologicalProb is the per-read speculation probability when
	// Pathological is set. Default 0.05.
	PathologicalProb float64
	// MemLatency is the cycle cost of a memory operation that must reach
	// the globally visible state before the processor continues: direct
	// writes (all SC data writes, all synchronization writes), reads that
	// miss the store buffer, and each write a synchronization-induced
	// drain still has to flush. Buffered writes and forwarded reads cost
	// one cycle. This is the cost model behind the weak-vs-SC performance
	// experiment (T1). Default 8.
	MemLatency int64
	// InitMemory presets shared locations before the run; unset locations
	// start at zero.
	InitMemory map[program.Addr]int64
	// Script fixes the first len(Script) scheduler decisions, after which
	// the seeded random scheduler takes over. Scripts construct specific
	// interleavings deterministically (e.g. the Figure 2b anomaly without
	// a seed search); an inapplicable decision is an error.
	Script []Decision
}

func (c Config) withDefaults() Config {
	if c.MaxSteps == 0 {
		c.MaxSteps = 1 << 20
	}
	if c.BufferCap == 0 {
		c.BufferCap = 16
	}
	if c.RetireProb == 0 {
		c.RetireProb = 0.3
	}
	if c.PathologicalProb == 0 {
		c.PathologicalProb = 0.05
	}
	if c.MemLatency == 0 {
		c.MemLatency = 8
	}
	return c
}

// Result is the outcome of a run.
type Result struct {
	// Exec is the full value-annotated execution record.
	Exec *Execution
	// FinalMemory is the committed shared memory after all buffers drained.
	FinalMemory []int64
	// Steps is the number of scheduler steps consumed.
	Steps int
	// CyclesPerCPU is each processor's accumulated cycle cost under the
	// MemLatency cost model (stalls for direct writes, read misses, and
	// synchronization-induced drains).
	CyclesPerCPU []int64
	// Completed reports whether every processor halted before MaxSteps.
	Completed bool
}

// Makespan returns the largest per-processor cycle count — the modeled
// wall-clock cost of the execution.
func (r *Result) Makespan() int64 {
	var m int64
	for _, c := range r.CyclesPerCPU {
		if c > m {
			m = c
		}
	}
	return m
}

// memCell is one committed shared-memory location.
type memCell struct {
	val    int64
	writer int // op ID of the committing write, or InitialWrite
}

// bufEntry is one pending write in a store buffer.
type bufEntry struct {
	loc program.Addr
	val int64
	id  int // op ID of the write
}

// cpuState is the architectural state of one simulated processor.
type cpuState struct {
	regs   []int64
	pc     int
	halted bool
	buf    []bufEntry
}

type machine struct {
	prog    *program.Program
	cfg     Config
	rng     *rand.Rand
	mem     []memCell
	prev    []memCell // previous committed value per location (speculation source)
	cpus    []cpuState
	exec    *Execution
	step    int
	syncSeq []int   // next sync sequence number per location
	cycles  []int64 // per-processor cycle cost (MemLatency model)
	stalls  int64   // memory-system stalls charged at MemLatency
	retired int64   // buffered writes committed
	drains  int64   // synchronization-induced buffer drains
	err     error   // first runtime error (e.g. indexed address out of range)
	// Per-step scheduler scratch. The step loop rebuilds these every
	// iteration; as locals they were one heap allocation per append group
	// per step — the simulator's dominant allocation source.
	runnable   []int
	retirable  []int
	retireLocs []program.Addr // retireOne's first-seen location scratch
}

// machinePool reuses machine state — memory cells, processor state,
// store buffers, scheduler scratch, the seeded rng — across runs, so a
// campaign worker looping over seeds pays the machine's allocations once
// instead of per seed. Everything a Result retains (the Execution, the
// final-memory and cycle slices) is allocated fresh per run and never
// returns to the pool.
var machinePool = sync.Pool{New: func() any { return new(machine) }}

// reset prepares a pooled machine for one run of p under cfg: reusable
// buffers keep their capacity and are re-zeroed, caller-retained
// structures are freshly allocated, and the rng is re-seeded (Seed
// resets the source to exactly the rand.NewSource(seed) stream, so a
// pooled machine's schedule is byte-identical to a fresh one's).
func (m *machine) reset(p *program.Program, cfg Config) {
	m.prog, m.cfg = p, cfg
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(cfg.Seed))
	} else {
		m.rng.Seed(cfg.Seed)
	}
	if cap(m.mem) < p.NumLocations {
		m.mem = make([]memCell, p.NumLocations)
		m.prev = make([]memCell, p.NumLocations)
		m.syncSeq = make([]int, p.NumLocations)
	}
	m.mem = m.mem[:p.NumLocations]
	m.prev = m.prev[:p.NumLocations]
	m.syncSeq = m.syncSeq[:p.NumLocations]
	for i := range m.mem {
		m.mem[i] = memCell{writer: InitialWrite}
		m.prev[i] = memCell{writer: InitialWrite}
		m.syncSeq[i] = 0
	}
	nCPU := p.NumThreads()
	if cap(m.cpus) < nCPU {
		m.cpus = make([]cpuState, nCPU)
	}
	m.cpus = m.cpus[:nCPU]
	for c := range m.cpus {
		cs := &m.cpus[c]
		if cap(cs.regs) < p.NumRegs {
			cs.regs = make([]int64, p.NumRegs)
		}
		cs.regs = cs.regs[:p.NumRegs]
		for i := range cs.regs {
			cs.regs[i] = 0
		}
		cs.pc, cs.halted, cs.buf = 0, false, cs.buf[:0]
	}
	// Retained by the Result: allocated per run, see machinePool.
	m.cycles = make([]int64, nCPU)
	m.exec = &Execution{
		ProgramName:           p.Name,
		Model:                 cfg.Model,
		Seed:                  cfg.Seed,
		NumCPUs:               nCPU,
		NumLocations:          p.NumLocations,
		PerCPU:                make([][]int, nCPU),
		FirstStaleObservation: -1,
	}
	m.step, m.stalls, m.retired, m.drains = 0, 0, 0, 0
	m.err = nil
}

// release returns the machine to the pool, dropping every reference the
// caller may retain (the execution, the cycle slice) or that would pin
// the program alive.
func (m *machine) release() {
	m.prog, m.exec, m.cycles = nil, nil, nil
	m.cfg = Config{}
	machinePool.Put(m)
}

// Run executes the program under the configuration and returns the
// execution record. Run is deterministic in (p, cfg).
func Run(p *program.Program, cfg Config) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	cfg = cfg.withDefaults()
	defer telemetry.Default().StartSpan("sim.run").End()
	m := machinePool.Get().(*machine)
	m.reset(p, cfg)
	defer m.release()
	for a, v := range cfg.InitMemory {
		if a < 0 || int(a) >= p.NumLocations {
			return nil, fmt.Errorf("sim: InitMemory location %d out of range [0,%d)", a, p.NumLocations)
		}
		m.mem[a].val = v
		m.prev[a].val = v
	}
	m.exec.InitMemory = make([]int64, p.NumLocations)
	for i := range m.mem {
		m.exec.InitMemory[i] = m.mem[i].val
	}

	completed := false
	for m.step = 0; m.step < cfg.MaxSteps; m.step++ {
		if m.err != nil {
			return nil, fmt.Errorf("sim: step %d: %w", m.step, m.err)
		}
		runnable, retirable := m.runnable[:0], m.retirable[:0]
		for c := range m.cpus {
			if !m.cpus[c].halted {
				runnable = append(runnable, c)
			}
			if len(m.cpus[c].buf) > 0 {
				retirable = append(retirable, c)
			}
		}
		m.runnable, m.retirable = runnable, retirable
		if m.step < len(cfg.Script) {
			if err := m.applyScripted(cfg.Script[m.step]); err != nil {
				return nil, fmt.Errorf("sim: step %d: %w", m.step, err)
			}
			continue
		}
		if len(runnable) == 0 && len(retirable) == 0 {
			completed = true
			break
		}
		retire := len(retirable) > 0 &&
			(len(runnable) == 0 || m.rng.Float64() < cfg.RetireProb)
		if retire {
			m.retireOne(retirable[m.rng.Intn(len(retirable))])
		} else {
			m.execInstr(runnable[m.rng.Intn(len(runnable))])
		}
	}
	if m.err != nil {
		return nil, fmt.Errorf("sim: step %d: %w", m.step, m.err)
	}
	// Drain any writes still buffered (normal completion drains nothing;
	// MaxSteps exhaustion can leave pending writes behind).
	for {
		retirable := m.retirable[:0]
		for c := range m.cpus {
			if len(m.cpus[c].buf) > 0 {
				retirable = append(retirable, c)
			}
		}
		m.retirable = retirable
		if len(retirable) == 0 {
			break
		}
		m.retireOne(retirable[m.rng.Intn(len(retirable))])
		m.step++
	}

	final := make([]int64, len(m.mem))
	for i, cell := range m.mem {
		final[i] = cell.val
	}
	m.flushTelemetry(completed)
	return &Result{
		Exec:         m.exec,
		FinalMemory:  final,
		Steps:        m.step,
		CyclesPerCPU: m.cycles,
		Completed:    completed,
	}, nil
}

// flushTelemetry batches the run's counters into the default registry,
// labeled by memory model. One guarded batch per run keeps the scheduler
// loop free of telemetry costs when collection is disabled.
func (m *machine) flushTelemetry(completed bool) {
	reg := telemetry.Default()
	if !reg.Enabled() {
		return
	}
	model := m.cfg.Model.String()
	add := func(name string, v int64) {
		if v != 0 {
			reg.Counter(telemetry.Name(name, "model", model)).Add(v)
		}
	}
	add("sim.runs", 1)
	if !completed {
		add("sim.incomplete_runs", 1)
	}
	add("sim.steps", int64(m.step))
	add("sim.ops", int64(len(m.exec.Ops)))
	add("sim.stall_events", m.stalls)
	add("sim.retired_writes", m.retired)
	add("sim.sync_drains", m.drains)
	// Reordering visibility: reads served from or past a non-empty store
	// buffer, and reads that observed a write while older writes were
	// still buffered (the paper's stale observations).
	add("sim.forwarded_reads", int64(m.exec.ForwardedReads))
	add("sim.bypass_reads", int64(m.exec.BypassReads))
	add("sim.stale_reads", int64(m.exec.StaleReads))
	add("sim.speculative_reads", int64(m.exec.SpeculativeReads))
	var cycles int64
	for _, c := range m.cycles {
		cycles += c
	}
	add("sim.cycles", cycles)
}

// record appends a memory operation to the execution and returns its ID.
func (m *machine) record(op MemOp) int {
	op.ID = len(m.exec.Ops)
	m.exec.Ops = append(m.exec.Ops, op)
	m.exec.PerCPU[op.CPU] = append(m.exec.PerCPU[op.CPU], op.ID)
	return op.ID
}

// nextSyncSeq allocates the next synchronization sequence number for loc.
func (m *machine) nextSyncSeq(loc program.Addr) int {
	s := m.syncSeq[loc]
	m.syncSeq[loc]++
	return s
}

// commit makes a write globally visible.
func (m *machine) commit(loc program.Addr, val int64, id int) {
	m.prev[loc] = m.mem[loc]
	m.mem[loc] = memCell{val: val, writer: id}
	m.exec.Ops[id].CommitStep = m.step
}

// retireIdx commits buffer entry i of processor c, preserving per-location
// program order: it must only be called with the oldest buffered entry for
// its location.
func (m *machine) retireIdx(c, i int) {
	e := m.cpus[c].buf[i]
	m.commit(e.loc, e.val, e.id)
	m.cpus[c].buf = append(m.cpus[c].buf[:i], m.cpus[c].buf[i+1:]...)
	m.retired++
}

// oldestFor returns the index of the oldest buffered entry for loc, or -1.
// Buffer order is issue order, so the first match is the oldest.
func (m *machine) oldestFor(c int, loc program.Addr) int {
	for i, e := range m.cpus[c].buf {
		if e.loc == loc {
			return i
		}
	}
	return -1
}

// retireOne retires one buffered write of processor c. On a FIFO model
// (TSO) it commits the oldest entry, preserving total store order. On the
// paper's weak models it picks a random buffered location and commits
// that location's oldest entry: FIFO per location (coherence) but
// unordered across locations — exactly the data-operation reordering
// those models allow between synchronization points.
func (m *machine) retireOne(c int) {
	buf := m.cpus[c].buf
	if len(buf) == 0 {
		return
	}
	if m.cfg.Model.FIFOStoreBuffer() {
		m.retireIdx(c, 0)
		return
	}
	// First-seen order (not sorted) keeps rng draws — and with them every
	// downstream execution — identical to the old map+slice dedup. Store
	// buffers hold a handful of entries, so the linear membership scan
	// beats a freshly allocated map.
	locs := m.retireLocs[:0]
	for _, e := range buf {
		known := false
		for _, l := range locs {
			if l == e.loc {
				known = true
				break
			}
		}
		if !known {
			locs = append(locs, e.loc)
		}
	}
	m.retireLocs = locs
	loc := locs[m.rng.Intn(len(locs))]
	m.retireIdx(c, m.oldestFor(c, loc))
}

// retireLoc commits every buffered write of processor c to loc, in order.
// Direct (unbuffered) writes call this first so a location's writes are
// never observed out of program order.
func (m *machine) retireLoc(c int, loc program.Addr) {
	for {
		i := m.oldestFor(c, loc)
		if i < 0 {
			return
		}
		m.retireIdx(c, i)
	}
}

// drain commits every buffered write of processor c, FIFO per location but
// in random order across locations.
func (m *machine) drain(c int) {
	for len(m.cpus[c].buf) > 0 {
		m.retireOne(c)
	}
}

// readShared performs a read of loc by processor c and records it.
func (m *machine) readShared(c int, pc int, kind OpKind, loc program.Addr) int64 {
	cpu := &m.cpus[c]
	// Store-to-load forwarding: the newest buffered write to loc, if any.
	for i := len(cpu.buf) - 1; i >= 0; i-- {
		if cpu.buf[i].loc == loc {
			m.exec.ForwardedReads++
			m.record(MemOp{
				CPU: c, PC: pc, Kind: kind, Loc: loc,
				Value: cpu.buf[i].val, ObservedWrite: cpu.buf[i].id,
				SyncSeq: m.maybeSyncSeq(kind, loc),
				Step:    m.step, CommitStep: m.step,
			})
			return cpu.buf[i].val
		}
	}
	m.cycles[c] += m.cfg.MemLatency // read miss: wait for the memory system
	m.stalls++
	cell := m.mem[loc]
	speculative := false
	if m.cfg.Pathological && kind == OpDataRead &&
		m.rng.Float64() < m.cfg.PathologicalProb {
		cell = m.prev[loc]
		speculative = true
		m.exec.SpeculativeReads++
	}
	if len(cpu.buf) > 0 {
		m.exec.BypassReads++
	}
	id := m.record(MemOp{
		CPU: c, PC: pc, Kind: kind, Loc: loc,
		Value: cell.val, ObservedWrite: cell.writer,
		SyncSeq: m.maybeSyncSeq(kind, loc),
		Step:    m.step, CommitStep: m.step,
		Speculative: speculative,
	})
	// Stale-observation witness: we saw write w while w's processor still
	// buffers a write older than w. Any intervening release would have
	// drained that buffer, so this read races with w and marks where a
	// reordering became observable (the paper's "End of SCP" in Fig. 2b).
	if cell.writer >= 0 {
		w := m.exec.Ops[cell.writer]
		if w.CPU != c {
			for _, e := range m.cpus[w.CPU].buf {
				if e.id < w.ID {
					m.exec.StaleReads++
					if m.exec.FirstStaleObservation < 0 {
						m.exec.FirstStaleObservation = id
					}
					break
				}
			}
		}
	}
	return cell.val
}

// maybeSyncSeq allocates a sync sequence number for sync operations.
func (m *machine) maybeSyncSeq(kind OpKind, loc program.Addr) int {
	if kind.IsSync() {
		return m.nextSyncSeq(loc)
	}
	return -1
}

// writeShared performs a write by processor c, buffering it when the model
// allows and the operation is a data write.
func (m *machine) writeShared(c int, pc int, kind OpKind, loc program.Addr, val int64) {
	if kind == OpDataWrite && m.cfg.Model.BuffersData() {
		if len(m.cpus[c].buf) >= m.cfg.BufferCap {
			// Stall until the memory system frees a buffer slot.
			m.cycles[c] += m.cfg.MemLatency
			m.stalls++
			m.retireOne(c)
		}
		id := m.record(MemOp{
			CPU: c, PC: pc, Kind: kind, Loc: loc, Value: val,
			ObservedWrite: -1, SyncSeq: -1,
			Step: m.step, CommitStep: -1, // set at retirement
		})
		m.cpus[c].buf = append(m.cpus[c].buf, bufEntry{loc: loc, val: val, id: id})
		return
	}
	// Direct write: first flush own older writes to the same location so
	// per-location program order (coherence) is preserved, then stall
	// until the write is globally visible.
	for _, e := range m.cpus[c].buf {
		if e.loc == loc {
			m.cycles[c] += m.cfg.MemLatency
			m.stalls++
		}
	}
	m.cycles[c] += m.cfg.MemLatency
	m.stalls++
	m.retireLoc(c, loc)
	id := m.record(MemOp{
		CPU: c, PC: pc, Kind: kind, Loc: loc, Value: val,
		ObservedWrite: -1, SyncSeq: m.maybeSyncSeq(kind, loc),
		Step: m.step, CommitStep: m.step,
	})
	m.commit(loc, val, id)
}

// maybeDrain drains processor c's buffer when the model requires it before
// an operation with the given role.
func (m *machine) maybeDrain(c int, role memmodel.Role) {
	if m.cfg.Model.DrainsBefore(role) {
		// Stall until every pending write is globally visible. Writes the
		// scheduler already retired in the background cost nothing here —
		// that overlap is the weak models' performance advantage.
		m.cycles[c] += m.cfg.MemLatency * int64(len(m.cpus[c].buf))
		m.stalls += int64(len(m.cpus[c].buf))
		m.drains++
		m.drain(c)
	}
}

func (m *machine) evalAddr(c int, a program.AddrExpr) (program.Addr, bool) {
	loc := a.Base
	if a.Indexed {
		loc += program.Addr(m.cpus[c].regs[a.Index])
	}
	if loc < 0 || int(loc) >= m.prog.NumLocations {
		m.err = fmt.Errorf("P%d pc %d: effective address %d out of range [0,%d)",
			c+1, m.cpus[c].pc, loc, m.prog.NumLocations)
		return 0, false
	}
	return loc, true
}

func (m *machine) evalVal(c int, v program.ValExpr) int64 {
	if v.IsReg {
		return m.cpus[c].regs[v.Reg]
	}
	return v.Imm
}

// execInstr executes one instruction on processor c.
func (m *machine) execInstr(c int) {
	cpu := &m.cpus[c]
	instrs := m.prog.Threads[c].Instrs
	if cpu.pc >= len(instrs) {
		cpu.halted = true
		return
	}
	m.cycles[c]++ // instruction issue
	in := instrs[cpu.pc]
	next := cpu.pc + 1
	switch in.Op {
	case program.OpNop:
	case program.OpHalt:
		cpu.halted = true
		return
	case program.OpRead:
		loc, ok := m.evalAddr(c, in.Addr)
		if !ok {
			return
		}
		cpu.regs[in.Dst] = m.readShared(c, cpu.pc, OpDataRead, loc)
	case program.OpWrite:
		loc, ok := m.evalAddr(c, in.Addr)
		if !ok {
			return
		}
		m.writeShared(c, cpu.pc, OpDataWrite, loc, m.evalVal(c, in.Val))
	case program.OpSyncRead:
		loc, ok := m.evalAddr(c, in.Addr)
		if !ok {
			return
		}
		m.maybeDrain(c, memmodel.RoleAcquire)
		cpu.regs[in.Dst] = m.readShared(c, cpu.pc, OpAcquireRead, loc)
	case program.OpSyncWrite:
		loc, ok := m.evalAddr(c, in.Addr)
		if !ok {
			return
		}
		m.maybeDrain(c, memmodel.RoleRelease)
		m.writeShared(c, cpu.pc, OpReleaseWrite, loc, m.evalVal(c, in.Val))
	case program.OpUnset:
		loc, ok := m.evalAddr(c, in.Addr)
		if !ok {
			return
		}
		m.maybeDrain(c, memmodel.RoleRelease)
		m.writeShared(c, cpu.pc, OpReleaseWrite, loc, 0)
	case program.OpTestAndSet:
		loc, ok := m.evalAddr(c, in.Addr)
		if !ok {
			return
		}
		m.maybeDrain(c, memmodel.RoleAcquire)
		// Atomic read-modify-write: both halves execute at this step with
		// no intervening operation. The read is an acquire; the write is a
		// synchronization operation but not a release (§2.1).
		cpu.regs[in.Dst] = m.readShared(c, cpu.pc, OpAcquireRead, loc)
		m.maybeDrain(c, memmodel.RoleSyncOther)
		m.writeShared(c, cpu.pc, OpSyncWriteOther, loc, 1)
	case program.OpFence:
		m.maybeDrain(c, memmodel.RoleFence)
	case program.OpConst:
		cpu.regs[in.Dst] = in.Imm
	case program.OpMov:
		cpu.regs[in.Dst] = cpu.regs[in.Src]
	case program.OpAdd:
		cpu.regs[in.Dst] = cpu.regs[in.Src] + cpu.regs[in.Src2]
	case program.OpSub:
		cpu.regs[in.Dst] = cpu.regs[in.Src] - cpu.regs[in.Src2]
	case program.OpAddImm:
		cpu.regs[in.Dst] = cpu.regs[in.Src] + in.Imm
	case program.OpBranchZero:
		if cpu.regs[in.Src] == 0 {
			next = in.Target
		}
	case program.OpBranchNotZero:
		if cpu.regs[in.Src] != 0 {
			next = in.Target
		}
	case program.OpBranchLess:
		if cpu.regs[in.Src] < cpu.regs[in.Src2] {
			next = in.Target
		}
	case program.OpJump:
		next = in.Target
	default:
		m.err = fmt.Errorf("P%d pc %d: unknown opcode %v", c+1, cpu.pc, in.Op)
		return
	}
	cpu.pc = next
	if cpu.pc >= len(instrs) {
		cpu.halted = true
	}
}

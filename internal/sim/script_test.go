package sim

import (
	"strings"
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/program"
)

func scriptProg() *program.Program {
	b := program.NewBuilder("script", 2, 1)
	b.Thread("P1").
		Write(program.At(0), program.Imm(1)).
		Write(program.At(1), program.Imm(2))
	b.Thread("P2").
		Read(0, program.At(1))
	return b.MustBuild()
}

func TestScriptedPrefixThenRandom(t *testing.T) {
	p := scriptProg()
	// Buffer both writes, retire loc 1 first, then P2 reads loc 1.
	r, err := Run(p, Config{
		Model: memmodel.WO, Seed: 1,
		Script: []Decision{Exec(0), Exec(0), Retire(0, 1), Exec(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("did not complete")
	}
	// P2's read must have observed the scripted retirement: value 2.
	ops := r.Exec.OpsOf(1)
	if len(ops) != 1 || ops[0].Value != 2 {
		t.Fatalf("P2 read %v, want 2", ops)
	}
	// And it is a stale observation (loc 0 was still buffered).
	if r.Exec.StaleReads == 0 {
		t.Fatal("no stale-read witness")
	}
}

func TestScriptErrors(t *testing.T) {
	p := scriptProg()
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			"retire without buffer",
			Config{Model: memmodel.WO, Script: []Decision{Retire(0, 0)}},
			"no buffered write",
		},
		{
			"retire wrong location",
			Config{Model: memmodel.WO, Script: []Decision{Exec(0), Retire(0, 1)}},
			"no buffered write",
		},
		{
			"retire under SC",
			Config{Model: memmodel.SC, Script: []Decision{Exec(0), Retire(0, 0)}},
			"no buffered write",
		},
		{
			"bad cpu",
			Config{Model: memmodel.WO, Script: []Decision{Exec(7)}},
			"no such processor",
		},
		{
			"exec halted",
			Config{Model: memmodel.WO, Script: []Decision{
				Exec(1), Exec(1), // P2 has one instruction; the second is on a halted CPU
			}},
			"halted",
		},
	}
	for _, c := range cases {
		_, err := Run(p, c.cfg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestDecisionString(t *testing.T) {
	if got := Exec(1).String(); got != "exec P2" {
		t.Fatalf("Exec string = %q", got)
	}
	if got := Retire(0, 5).String(); got != "retire P1 loc 5" {
		t.Fatalf("Retire string = %q", got)
	}
}

func TestScriptDeterminism(t *testing.T) {
	p := scriptProg()
	script := []Decision{Exec(0), Exec(0), Retire(0, 1), Exec(1)}
	a, err := Run(p, Config{Model: memmodel.WO, Seed: 9, Script: script})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Config{Model: memmodel.WO, Seed: 9, Script: script})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Exec.Ops) != len(b.Exec.Ops) {
		t.Fatal("scripted runs diverged")
	}
	for i := range a.Exec.Ops {
		if a.Exec.Ops[i] != b.Exec.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

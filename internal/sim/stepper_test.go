package sim

import (
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/program"
)

func TestStepperBasics(t *testing.T) {
	b := program.NewBuilder("step", 2, 2)
	b.Thread("P1").
		Const(0, 5).
		Mov(1, 0).
		Sub(1, 1, 0).
		Write(program.At(0), program.FromReg(0)).
		Nop().
		Halt()
	b.Thread("P2").
		Read(0, program.At(0)).
		BranchLess(1, 0, "end"). // r1(0) < r0(5): branch taken, write skipped
		Write(program.At(1), program.Imm(1)).
		Label("end")
	p := b.MustBuild()

	s, err := NewStepper(p, map[program.Addr]int64{1: 7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Fatal("fresh stepper done")
	}
	if got := s.Runnable(); len(got) != 2 {
		t.Fatalf("runnable = %v", got)
	}
	// Drive P1 to completion, then P2.
	for !s.Done() {
		r := s.Runnable()
		if err := s.Step(r[0]); err != nil {
			t.Fatal(err)
		}
	}
	if s.Steps() == 0 {
		t.Fatal("no steps counted")
	}
	mem := s.Memory()
	if mem[0] != 5 || mem[1] != 7 {
		t.Fatalf("memory = %v", mem)
	}
	e := s.Execution()
	if e.NumOps() == 0 {
		t.Fatal("no ops recorded")
	}
	// Exercise the exec-record string helpers.
	op := e.Ops[0]
	if op.String() == "" || op.Static().String() == "" {
		t.Fatal("empty op strings")
	}
	if op.Kind.String() == "" {
		t.Fatal("empty kind string")
	}
}

func TestStepperCloneIsolation(t *testing.T) {
	w := messagePassing()
	s, err := NewStepper(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(0); err != nil { // P1 writes x
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.Step(0); err != nil { // clone: P1 writes y
		t.Fatal(err)
	}
	if s.Execution().NumOps() == c.Execution().NumOps() {
		t.Fatal("clone shares op log with original")
	}
	if s.Memory()[1] == c.Memory()[1] {
		t.Fatal("clone shares memory with original")
	}
}

func TestStepperRejectsBadProgram(t *testing.T) {
	bad := &program.Program{Name: "x"}
	if _, err := NewStepper(bad, nil); err == nil {
		t.Fatal("invalid program accepted")
	}
	good := messagePassing()
	if _, err := NewStepper(good, map[program.Addr]int64{99: 1}); err == nil {
		t.Fatal("out-of-range init memory accepted")
	}
}

func TestStepperHaltedStepIsNoop(t *testing.T) {
	b := program.NewBuilder("one", 1, 1)
	b.Thread("P1").Nop()
	s, err := NewStepper(b.MustBuild(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(0); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("not done after sole instruction")
	}
	if err := s.Step(0); err != nil {
		t.Fatal(err)
	}
}

func TestJumpAndHaltOpcodes(t *testing.T) {
	b := program.NewBuilder("jump", 1, 1)
	b.Thread("P1").
		Jump("skip").
		Write(program.At(0), program.Imm(99)). // skipped
		Label("skip").
		Write(program.At(0), program.Imm(1)).
		Halt().
		Write(program.At(0), program.Imm(2)) // never reached
	p := b.MustBuild()
	for _, model := range []memmodel.Model{memmodel.SC, memmodel.WO} {
		r, err := Run(p, Config{Model: model, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.FinalMemory[0] != 1 {
			t.Fatalf("%v: mem[0] = %d, want 1", model, r.FinalMemory[0])
		}
	}
}

func TestSyncReadWriteOpcodes(t *testing.T) {
	b := program.NewBuilder("syncops", 2, 1)
	b.Thread("P1").
		SyncWrite(program.At(0), program.Imm(5)).
		SyncRead(0, program.At(0)).
		Write(program.At(1), program.FromReg(0))
	p := b.MustBuild()
	r, err := Run(p, Config{Model: memmodel.RCsc, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalMemory[1] != 5 {
		t.Fatalf("sync read saw %d, want 5", r.FinalMemory[1])
	}
	// Two sync ops on loc 0 recorded with correct kinds.
	ops := r.Exec.OpsOf(0)
	if ops[0].Kind != OpReleaseWrite || ops[1].Kind != OpAcquireRead {
		t.Fatalf("sync op kinds: %v %v", ops[0].Kind, ops[1].Kind)
	}
	// The acquire observed the release.
	if ops[1].ObservedWrite != ops[0].ID {
		t.Fatalf("acquire observed %d, want %d", ops[1].ObservedWrite, ops[0].ID)
	}
}

package sim

import (
	"fmt"

	"weakrace/internal/program"
)

// Decision is one scripted scheduler step: either "processor CPU executes
// its next instruction" or "retire processor CPU's oldest buffered write
// to Loc".
type Decision struct {
	Retire bool
	CPU    int
	Loc    program.Addr // retirement target; ignored for execution steps
}

// String renders the decision.
func (d Decision) String() string {
	if d.Retire {
		return fmt.Sprintf("retire P%d loc %d", d.CPU+1, d.Loc)
	}
	return fmt.Sprintf("exec P%d", d.CPU+1)
}

// Exec returns an execution decision for the processor.
func Exec(cpu int) Decision { return Decision{CPU: cpu} }

// Retire returns a retirement decision for the processor's oldest
// buffered write to loc.
func Retire(cpu int, loc program.Addr) Decision {
	return Decision{Retire: true, CPU: cpu, Loc: loc}
}

// applyScripted performs one scripted decision. It returns an error when
// the decision is inapplicable (halted processor, or no buffered write to
// the named location) so tests constructing specific interleavings fail
// loudly rather than silently diverging.
func (m *machine) applyScripted(d Decision) error {
	if d.CPU < 0 || d.CPU >= len(m.cpus) {
		return fmt.Errorf("scripted decision %v: no such processor", d)
	}
	if d.Retire {
		i := m.oldestFor(d.CPU, d.Loc)
		if i < 0 {
			return fmt.Errorf("scripted decision %v: no buffered write to location %d", d, d.Loc)
		}
		if m.cfg.Model.FIFOStoreBuffer() && i != 0 {
			return fmt.Errorf("scripted decision %v: %v retires stores in FIFO order and an older write is pending",
				d, m.cfg.Model)
		}
		m.retireIdx(d.CPU, i)
		return nil
	}
	if m.cpus[d.CPU].halted {
		return fmt.Errorf("scripted decision %v: processor halted", d)
	}
	m.execInstr(d.CPU)
	return m.err
}

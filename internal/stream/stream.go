// Package stream is the serving core of the wrserve daemon: a TCP
// ingest plane that accepts many concurrent client connections, each
// carrying one execution's operations in the WRS1 incremental framing
// (internal/trace), and runs the incremental on-the-fly detector
// (onthefly.Detector — per-processor vector clocks advanced
// event-by-event, the online form of the graph.Timestamps pass) over
// every stream with bounded memory.
//
// Scaling shape: streams are sharded across a fixed worker pool, each
// stream pinned to one worker so its detector state is confined to a
// single goroutine and needs no locks. Between a connection's reader
// and its worker sits a bounded per-stream batch queue — when a
// detector falls behind, the reader blocks on the queue and TCP flow
// control throttles that client; slow clients are throttled, never
// dropped, and one stream's backlog never stalls another stream's
// reader. Memory is bounded per stream by Options.Window: the detector
// retires events that fall out of the window and records a replay seed
// (Ronsse & De Bosschere) identifying the execution for offline
// post-mortem re-analysis — the §5 bounded-buffer trade made
// operational.
//
// The observability contract: every counter lands in the telemetry
// registry (stream.* namespace) so the internal/obs HTTP plane serves
// live metrics unchanged; races stream onto the obs Publisher as they
// are found; StreamsHandler serves the per-stream detail the aggregate
// counters can't carry.
package stream

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"weakrace/internal/memmodel"
	"weakrace/internal/obs"
	"weakrace/internal/onthefly"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/trace"
)

// Options configures the ingest server. The zero value listens on a
// random port with GOMAXPROCS workers and exact (unbounded) detection.
type Options struct {
	// Addr is the TCP listen address; ":0" (default) picks a free port.
	Addr string
	// Workers is the detection worker-pool size. Streams are sharded
	// across workers by stream ID. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds each stream's pending-batch queue; a full queue
	// blocks that stream's connection reader (TCP backpressure).
	// Default 8.
	QueueDepth int
	// Window bounds per-stream detector memory by event retirement
	// (onthefly.Options.Window). 0 = unbounded, exact detection.
	Window int
	// HistoryLimit bounds per-location access histories
	// (onthefly.Options.HistoryLimit). 0 = unbounded.
	HistoryLimit int
	// Pairing is the synchronization pairing policy for every stream.
	Pairing memmodel.PairingPolicy
	// Registry receives stream.* telemetry. Default telemetry.Default().
	Registry *telemetry.Registry
	// Publisher receives race-found events for the obs /events stream.
	// Nil is fine (publishes are discarded).
	Publisher *obs.Publisher
	// Tracer, when set, records per-batch spans for every stream and
	// tail-samples the finished traces for /trace/{stream}. Nil = off.
	Tracer *telemetry.Tracer
	// Watchdog, when set, receives per-batch feed latencies (keyed by
	// stream) for SLO checking. Nil = off.
	Watchdog *obs.Watchdog
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = ":0"
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.Registry == nil {
		o.Registry = telemetry.Default()
	}
	return o
}

// Summary is the JSON document the server sends back on a stream's
// connection after its end-of-stream marker: the stream's detection
// result, with races rendered canonically (sorted strings) so clients
// can compare byte-for-byte against an oracle.
type Summary struct {
	StreamID uint64 `json:"stream_id"`
	Program  string `json:"program"`
	Model    string `json:"model"`
	Seed     int64  `json:"seed"`
	Events   int    `json:"events"`
	Batches  int    `json:"batches"`

	Races     []string `json:"races"`
	RaceCount int      `json:"race_count"`
	SyncRaces int      `json:"sync_races"`

	Comparisons      int `json:"comparisons"`
	Evictions        int `json:"evictions"`
	Window           int `json:"window"`
	Retired          int `json:"retired"`
	WindowPairMisses int `json:"window_pair_misses"`

	Replay *onthefly.ReplaySeed `json:"replay,omitempty"`
	Err    string               `json:"error,omitempty"`

	// Trace context: the ID correlating this stream across client and
	// server, and whether the tail sampler kept the full span timeline
	// (retrievable at /trace/{stream_id} while it stays in the kept set).
	TraceID   string `json:"trace_id,omitempty"`
	TraceKept bool   `json:"trace_kept,omitempty"`

	// Per-stream batch latency: queue-wait and detector-feed quantiles,
	// and the deepest the batch queue got — the backpressure signal.
	BatchWaitP50NS int64 `json:"batch_wait_p50_ns,omitempty"`
	BatchWaitP99NS int64 `json:"batch_wait_p99_ns,omitempty"`
	BatchFeedP50NS int64 `json:"batch_feed_p50_ns,omitempty"`
	BatchFeedP99NS int64 `json:"batch_feed_p99_ns,omitempty"`
	QueueHighWater int   `json:"queue_high_water,omitempty"`
}

// batchMsg is one queue entry: the decoded ops plus the enqueue
// timestamp the worker turns into the batch's queue-wait span. Ops nil
// is the end-of-stream sentinel.
type batchMsg struct {
	ops []sim.MemOp
	enq time.Time
}

// stream is one client connection's state. The reader goroutine owns
// the decode side; the pinned worker owns the detector; the bounded
// queue plus a per-batch token in the worker's ready channel connect
// them in order.
type stream struct {
	id     uint64
	hdr    trace.StreamHeader
	remote string
	opened time.Time

	// q carries decoded batches to the pinned worker; a nil-ops message
	// is the end-of-stream sentinel that triggers finalization.
	q    chan batchMsg
	done chan struct{}

	det *onthefly.Detector

	received  atomic.Int64 // ops decoded off the wire
	processed atomic.Int64 // ops fed to the detector
	batches   atomic.Int64

	// queueHW is the deepest this stream's queue has been; lastActive is
	// when the worker last made progress on it (unix ns) — the stall
	// poller's evidence.
	queueHW    atomic.Int64
	lastActive atomic.Int64

	// tr is the stream's span buffer (nil when tracing is off). The
	// per-stream latency histograms feed the summary's quantiles.
	tr       *telemetry.StreamTrace
	waitHist telemetry.Histogram
	feedHist telemetry.Histogram

	// Worker-owned batch bookkeeping: the batch index being fed and the
	// detector's retire/race tallies after the previous batch, so retire
	// and race-emit land as per-batch markers. No locks — one worker.
	fedBatches  int
	prevRetired int64
	prevRaces   int

	mu      sync.Mutex
	summary *Summary // set by the worker at finish, read by /streams
	readErr error    // decode-side error, folded into the summary
}

// key returns the stream's trace key — the decimal stream ID, which is
// also the /trace/{stream} path segment.
func (st *stream) key() string { return fmt.Sprintf("%d", st.id) }

// Server is the ingest daemon.
type Server struct {
	opts    Options
	reg     *telemetry.Registry
	pub     *obs.Publisher
	tracer  *telemetry.Tracer
	wdog    *obs.Watchdog
	ln      net.Listener
	workers []*worker

	mu      sync.Mutex
	live    map[uint64]*stream
	closed  []*Summary // ring of recently finished streams
	conns   map[net.Conn]struct{}
	nextID  uint64
	closing bool

	wg        sync.WaitGroup // connection readers
	workerWG  sync.WaitGroup
	closeOnce sync.Once
}

// closedRingCap bounds the recently-finished summaries kept for /streams.
const closedRingCap = 64

// Serve starts the ingest plane: listen, accept, shard, detect.
func Serve(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	s := &Server{
		opts:   opts,
		reg:    opts.Registry,
		pub:    opts.Publisher,
		tracer: opts.Tracer,
		wdog:   opts.Watchdog,
		ln:     ln,
		live:   map[uint64]*stream{},
		conns:  map[net.Conn]struct{}{},
	}
	// Creating the gauges up front makes the stream block appear in
	// /status from the first scrape, races-so-far zero included.
	s.reg.Gauge("stream.streams_active").Set(0)
	s.reg.Gauge("stream.window").Set(int64(opts.Window))
	s.reg.Counter("stream.streams_opened")
	s.reg.Counter("stream.streams_closed")
	s.reg.Counter("stream.streams_errored")
	s.reg.Counter("stream.streams_dropped") // never incremented by design; CI asserts 0
	s.reg.Counter("stream.events")
	s.reg.Counter("stream.races")
	s.reg.Gauge("stream.queue_high_water").Set(0)

	s.workers = make([]*worker, opts.Workers)
	for i := range s.workers {
		w := &worker{ready: make(chan *stream, opts.Workers*opts.QueueDepth*4)}
		s.workers[i] = w
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			w.run(s)
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	return s, nil
}

// Addr returns the bound ingest address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// TraceSnapshot returns the tail-sampled (or still-live) trace for a
// stream key — the decimal stream ID — when tracing is on and the
// sampler kept it.
func (s *Server) TraceSnapshot(key string) (telemetry.TraceSnapshot, bool) {
	return s.tracer.Lookup(key)
}

// TraceSource adapts the server's tracer to the obs /trace/{stream}
// endpoint, resolving keys to flight records. Returns nil when tracing
// is off so callers can skip the wiring entirely.
func (s *Server) TraceSource() obs.TraceSource {
	if s.tracer == nil {
		return nil
	}
	return func(key string) ([]export.Record, bool) {
		ts, ok := s.tracer.Lookup(key)
		if !ok {
			return nil, false
		}
		return export.TraceRecords(ts), true
	}
}

// Stalled reports live streams with queued work and no worker progress
// for at least olderThan — the watchdog's StallCheck.
func (s *Server) Stalled(olderThan time.Duration) []obs.StallInfo {
	now := time.Now()
	var out []obs.StallInfo
	s.mu.Lock()
	for _, st := range s.live {
		if len(st.q) == 0 {
			continue
		}
		last := st.lastActive.Load()
		if age := now.Sub(time.Unix(0, last)); age >= olderThan {
			out = append(out, obs.StallInfo{Key: st.key(), Phase: "stream.batch_feed", Age: age})
		}
	}
	s.mu.Unlock()
	return out
}

// Close stops accepting, severs open connections, and drains the
// worker pool. Safe to call more than once.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closing = true
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		err = s.ln.Close()
		s.wg.Wait() // readers flush their sentinels before workers stop
		for _, w := range s.workers {
			close(w.ready)
		}
		s.workerWG.Wait()
	})
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

package stream

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"weakrace/internal/sim"
	"weakrace/internal/trace"
)

// SendOptions tunes one client stream.
type SendOptions struct {
	// BatchSize is the operations per wire batch. Default 512.
	BatchSize int
	// Delay inserts a pause between batches — the load generator's
	// throttle for long-lived-stream soaks. 0 = as fast as possible.
	Delay time.Duration
	// Timeout bounds the whole exchange (dial to summary). 0 = none.
	Timeout time.Duration
	// TraceID and ParentSpan stamp the client's trace context into the
	// WRS1 header so the server's per-batch spans continue this trace.
	// Zero leaves the stream untraced (the server may mint its own ID).
	TraceID    uint64
	ParentSpan uint64
	// OnBatch, when set, observes each batch's wire-write latency —
	// wrclient's per-stream latency summary reads from it.
	OnBatch func(batch int, d time.Duration)
}

// Send streams an execution to a wrserve daemon at addr and returns the
// server's summary. It is the reference client: wrclient, the tests,
// and the CI soak all go through it.
func Send(addr string, e *sim.Execution, opts SendOptions) (*Summary, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 512
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout(opts.Timeout))
	if err != nil {
		return nil, fmt.Errorf("stream: dial: %w", err)
	}
	defer conn.Close()
	if opts.Timeout > 0 {
		conn.SetDeadline(time.Now().Add(opts.Timeout)) //nolint:errcheck
	}

	sw, err := trace.NewStreamWriter(conn, trace.StreamHeader{
		ProgramName:  e.ProgramName,
		Model:        e.Model,
		Seed:         e.Seed,
		NumCPUs:      e.NumCPUs,
		NumLocations: e.NumLocations,
		TraceID:      opts.TraceID,
		ParentSpan:   opts.ParentSpan,
	})
	if err != nil {
		return nil, err
	}
	batch := 0
	for start := 0; start < len(e.Ops); start += opts.BatchSize {
		end := start + opts.BatchSize
		if end > len(e.Ops) {
			end = len(e.Ops)
		}
		wstart := time.Now()
		if err := sw.WriteBatch(e.Ops[start:end]); err != nil {
			return nil, err
		}
		if opts.OnBatch != nil {
			opts.OnBatch(batch, time.Since(wstart))
		}
		batch++
		if opts.Delay > 0 && end < len(e.Ops) {
			time.Sleep(opts.Delay)
		}
	}
	if err := sw.Close(); err != nil {
		return nil, err
	}

	var sum Summary
	if err := json.NewDecoder(conn).Decode(&sum); err != nil {
		return nil, fmt.Errorf("stream: reading summary: %w", err)
	}
	if sum.Err != "" {
		return &sum, fmt.Errorf("stream: server reported: %s", sum.Err)
	}
	return &sum, nil
}

func dialTimeout(t time.Duration) time.Duration {
	if t > 0 {
		return t
	}
	return 30 * time.Second
}

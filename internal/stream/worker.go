package stream

import (
	"sort"
	"time"

	"weakrace/internal/obs"
	"weakrace/internal/telemetry"
)

// worker owns the detectors of the streams sharded onto it. The ready
// channel carries one token per enqueued batch (or sentinel), so the
// receive from the stream's own queue below never blocks, and batches
// of one stream are processed in the order its reader sent them. A
// worker never touches another worker's streams — detector state needs
// no locks.
type worker struct {
	ready chan *stream
}

func (w *worker) run(s *Server) {
	for st := range w.ready {
		m := <-st.q
		if m.ops == nil {
			w.finish(s, st)
			continue
		}
		w.feed(s, st, m)
	}
}

// feed runs one batch through the stream's detector, recording the
// batch's queue-wait and feed spans. Tracing off (st.tr == nil, no
// watchdog, disabled registry) reduces to two time.Now calls and two
// histogram observes per batch — the cost the soak's <5% budget holds.
func (w *worker) feed(s *Server, st *stream, m batchMsg) {
	batch := st.fedBatches
	st.fedBatches++
	feedStart := time.Now()
	wait := feedStart.Sub(m.enq)
	for _, op := range m.ops {
		st.det.Feed(op)
	}
	feedDur := time.Since(feedStart)
	st.lastActive.Store(feedStart.Add(feedDur).UnixNano())
	st.processed.Add(int64(len(m.ops)))

	st.waitHist.Observe(wait)
	st.feedHist.Observe(feedDur)
	st.tr.Record("batch.wait", batch, m.enq, wait)
	st.tr.Record("batch.feed", batch, feedStart, feedDur)
	// Retire and race-emit land as zero-duration markers on the batch
	// that triggered them, read off the detector's live tallies.
	if r := st.det.RetiredSoFar(); r > st.prevRetired {
		st.tr.Mark("batch.retire", batch)
		st.prevRetired = r
	}
	if n := st.det.RacesSoFar(); n > st.prevRaces {
		st.tr.Mark("batch.race_emit", batch)
		st.prevRaces = n
	}
	s.wdog.Observe("stream.batch_feed", feedDur, st.key())

	if reg := s.reg; reg.Enabled() {
		reg.Counter("stream.events").Add(int64(len(m.ops)))
		reg.Counter("stream.batches").Inc()
		reg.Gauge("stream.window_occupancy_peak").SetMax(int64(st.det.LiveAccesses()))
		reg.Phase("stream.batch_wait").Observe(wait)
		reg.Phase("stream.batch_feed").Observe(feedDur)
	}
}

// finish finalizes one stream: freeze the detector's result into the
// wire summary, account for it, publish its races, run the tail
// sampler, and wake the reader.
func (w *worker) finish(s *Server, st *stream) {
	finStart := time.Now()
	res := st.det.Result()
	races := make([]string, 0, len(res.Races))
	for ll := range res.Races {
		races = append(races, ll.String())
	}
	sort.Strings(races)
	st.tr.Record("finalize", -1, finStart, time.Since(finStart))

	st.mu.Lock()
	readErr := st.readErr
	sum := &Summary{
		StreamID:         st.id,
		Program:          st.hdr.ProgramName,
		Model:            st.hdr.Model.String(),
		Seed:             st.hdr.Seed,
		Events:           res.OpsProcessed,
		Batches:          int(st.batches.Load()),
		Races:            races,
		RaceCount:        len(races),
		SyncRaces:        res.SyncRaces,
		Comparisons:      res.Comparisons,
		Evictions:        res.Evictions,
		Window:           s.opts.Window,
		Retired:          res.Retired,
		WindowPairMisses: res.WindowPairMisses,
		Replay:           res.Replay,
		QueueHighWater:   int(st.queueHW.Load()),
	}
	if readErr != nil {
		sum.Err = readErr.Error()
	}
	if waits := st.waitHist.Snapshot(); waits.Count > 0 {
		sum.BatchWaitP50NS = waits.Quantile(0.50)
		sum.BatchWaitP99NS = waits.Quantile(0.99)
	}
	if feeds := st.feedHist.Snapshot(); feeds.Count > 0 {
		sum.BatchFeedP50NS = feeds.Quantile(0.50)
		sum.BatchFeedP99NS = feeds.Quantile(0.99)
	}
	if st.tr != nil {
		sum.TraceID = st.tr.TraceID.String()
	}
	st.summary = sum
	st.mu.Unlock()

	// The tail sampler's verdict: racy, errored, and truncated streams
	// always keep their trace; unremarkable ones survive only in the
	// aggregate histograms.
	if s.tracer != nil {
		kept := s.tracer.Finish(st.tr, telemetry.TraceOutcome{
			Racy:      len(races) > 0,
			Errored:   readErr != nil,
			Truncated: readErr != nil && errIsTruncation(readErr),
		})
		st.mu.Lock()
		sum.TraceKept = kept
		st.mu.Unlock()
	}

	if reg := s.reg; reg.Enabled() {
		reg.Counter("stream.races").Add(int64(len(races)))
		reg.Counter("stream.sync_races").Add(int64(res.SyncRaces))
		reg.Counter("stream.retired").Add(int64(res.Retired))
		reg.Counter("stream.window_pair_misses").Add(int64(res.WindowPairMisses))
		if res.Replay != nil {
			reg.Counter("stream.replay_seeds").Inc()
		}
	}
	for _, race := range races {
		s.pub.Publish(obs.Event{Kind: obs.EventRace, Race: race, Seed: st.hdr.Seed})
	}
	s.unregister(st, sum)
	close(st.done)
}

package stream

import (
	"sort"

	"weakrace/internal/obs"
)

// worker owns the detectors of the streams sharded onto it. The ready
// channel carries one token per enqueued batch (or sentinel), so the
// receive from the stream's own queue below never blocks, and batches
// of one stream are processed in the order its reader sent them. A
// worker never touches another worker's streams — detector state needs
// no locks.
type worker struct {
	ready chan *stream
}

func (w *worker) run(s *Server) {
	for st := range w.ready {
		batch := <-st.q
		if batch == nil {
			w.finish(s, st)
			continue
		}
		for _, op := range batch {
			st.det.Feed(op)
		}
		st.processed.Add(int64(len(batch)))
		if reg := s.reg; reg.Enabled() {
			reg.Counter("stream.events").Add(int64(len(batch)))
			reg.Counter("stream.batches").Inc()
			reg.Gauge("stream.window_occupancy_peak").SetMax(int64(st.det.LiveAccesses()))
		}
	}
}

// finish finalizes one stream: freeze the detector's result into the
// wire summary, account for it, publish its races, and wake the reader.
func (w *worker) finish(s *Server, st *stream) {
	res := st.det.Result()
	races := make([]string, 0, len(res.Races))
	for ll := range res.Races {
		races = append(races, ll.String())
	}
	sort.Strings(races)

	st.mu.Lock()
	readErr := st.readErr
	sum := &Summary{
		StreamID:         st.id,
		Program:          st.hdr.ProgramName,
		Model:            st.hdr.Model.String(),
		Seed:             st.hdr.Seed,
		Events:           res.OpsProcessed,
		Batches:          int(st.batches.Load()),
		Races:            races,
		RaceCount:        len(races),
		SyncRaces:        res.SyncRaces,
		Comparisons:      res.Comparisons,
		Evictions:        res.Evictions,
		Window:           s.opts.Window,
		Retired:          res.Retired,
		WindowPairMisses: res.WindowPairMisses,
		Replay:           res.Replay,
	}
	if readErr != nil {
		sum.Err = readErr.Error()
	}
	st.summary = sum
	st.mu.Unlock()

	if reg := s.reg; reg.Enabled() {
		reg.Counter("stream.races").Add(int64(len(races)))
		reg.Counter("stream.sync_races").Add(int64(res.SyncRaces))
		reg.Counter("stream.retired").Add(int64(res.Retired))
		reg.Counter("stream.window_pair_misses").Add(int64(res.WindowPairMisses))
		if res.Replay != nil {
			reg.Counter("stream.replay_seeds").Inc()
		}
	}
	for _, race := range races {
		s.pub.Publish(obs.Event{Kind: obs.EventRace, Race: race, Seed: st.hdr.Seed})
	}
	s.unregister(st, sum)
	close(st.done)
}

package stream

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"weakrace/internal/memmodel"
	"weakrace/internal/onthefly"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// runCorpusEntry simulates one corpus trace for streaming.
func runCorpusEntry(t *testing.T, c workload.CorpusEntry) *sim.Execution {
	t.Helper()
	r, err := sim.Run(c.Workload.Prog, sim.Config{Model: c.Model, Seed: c.Seed, InitMemory: c.Workload.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	return r.Exec
}

// oracleRaces is the byte-comparable race list the server should
// reproduce for an execution at window=∞: unbounded onthefly.Detect,
// rendered and sorted exactly as worker.finish does.
func oracleRaces(e *sim.Execution, opts onthefly.Options) []string {
	res := onthefly.Detect(e, opts)
	races := make([]string, 0, len(res.Races))
	for ll := range res.Races {
		races = append(races, ll.String())
	}
	sort.Strings(races)
	return races
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
		opts.Registry.SetEnabled(true)
	}
	s, err := Serve(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// A single streamed execution must come back with the exact races the
// in-process detector finds, byte for byte.
func TestStreamMatchesDetect(t *testing.T) {
	s := newTestServer(t, Options{})
	c := workload.Corpus(1, 1)[0]
	e := runCorpusEntry(t, c)

	sum, err := Send(s.Addr(), e, SendOptions{BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := oracleRaces(e, onthefly.Options{})
	if !reflect.DeepEqual(sum.Races, want) {
		t.Fatalf("streamed races differ from Detect:\n got %v\nwant %v", sum.Races, want)
	}
	if sum.Events != len(e.Ops) {
		t.Fatalf("events: got %d want %d", sum.Events, len(e.Ops))
	}
	if sum.Program != e.ProgramName || sum.Model != e.Model.String() || sum.Seed != e.Seed {
		t.Fatalf("summary identity mismatch: %+v", sum)
	}
	if sum.Replay != nil {
		t.Fatalf("unbounded stream should not need a replay seed: %+v", sum.Replay)
	}
}

// Many concurrent clients over real TCP: every stream's summary must
// match its own oracle, no stream may be dropped, and the aggregate
// counters must balance.
func TestConcurrentStreams(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	s := newTestServer(t, Options{Registry: reg, Workers: 4, QueueDepth: 2})

	corpus := workload.Corpus(24, 7)
	execs := make([]*sim.Execution, len(corpus))
	for i, c := range corpus {
		execs[i] = runCorpusEntry(t, c)
	}

	var wg sync.WaitGroup
	errs := make([]error, len(execs))
	sums := make([]*Summary, len(execs))
	for i := range execs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Tiny batches and a sub-millisecond delay keep many streams
			// alive at once so sharding and backpressure actually engage.
			sums[i], errs[i] = Send(s.Addr(), execs[i], SendOptions{BatchSize: 3, Delay: 100 * time.Microsecond})
		}(i)
	}
	wg.Wait()

	totalOps := 0
	for i := range execs {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		want := oracleRaces(execs[i], onthefly.Options{})
		if !reflect.DeepEqual(sums[i].Races, want) {
			t.Fatalf("stream %d races differ:\n got %v\nwant %v", i, sums[i].Races, want)
		}
		totalOps += len(execs[i].Ops)
	}

	if got := reg.Counter("stream.streams_opened").Value(); got != int64(len(execs)) {
		t.Fatalf("streams_opened = %d, want %d", got, len(execs))
	}
	if got := reg.Counter("stream.streams_closed").Value(); got != int64(len(execs)) {
		t.Fatalf("streams_closed = %d, want %d", got, len(execs))
	}
	if got := reg.Counter("stream.streams_dropped").Value(); got != 0 {
		t.Fatalf("streams_dropped = %d, want 0", got)
	}
	if got := reg.Counter("stream.events").Value(); got != int64(totalOps) {
		t.Fatalf("events counter = %d, want %d", got, totalOps)
	}
	if got := reg.Gauge("stream.streams_active").Value(); got != 0 {
		t.Fatalf("streams_active = %d after drain, want 0", got)
	}
}

// One misbehaving client — garbage header, lying batch payload, or a
// vanished connection — must never poison concurrent well-formed
// streams or take the server down.
func TestBadClientIsolation(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	s := newTestServer(t, Options{Registry: reg, Workers: 2})

	c := workload.Corpus(2, 3)[1]
	e := runCorpusEntry(t, c)
	want := oracleRaces(e, onthefly.Options{})

	var wg sync.WaitGroup
	badClients := []func(conn net.Conn){
		func(conn net.Conn) { // garbage magic
			conn.Write([]byte("NOPE this is not a stream"))
			conn.Close()
		},
		func(conn net.Conn) { // valid header, then garbage batch
			sw, err := trace.NewStreamWriter(conn, trace.StreamHeader{
				ProgramName: "bad", Model: e.Model, NumCPUs: 2, NumLocations: 2,
			})
			if err != nil {
				return
			}
			_ = sw
			conn.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
			conn.Close()
		},
		func(conn net.Conn) { // header then vanish mid-stream (truncation)
			sw, err := trace.NewStreamWriter(conn, trace.StreamHeader{
				ProgramName: "trunc", Model: e.Model, NumCPUs: e.NumCPUs, NumLocations: e.NumLocations,
			})
			if err != nil {
				return
			}
			sw.WriteBatch(e.Ops[:4]) //nolint:errcheck
			conn.Close()             // no end-of-stream marker
		},
	}
	for _, bad := range badClients {
		wg.Add(1)
		go func(bad func(net.Conn)) {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			bad(conn)
		}(bad)
	}
	goodSums := make([]*Summary, 8)
	goodErrs := make([]error, 8)
	for i := range goodSums {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			goodSums[i], goodErrs[i] = Send(s.Addr(), e, SendOptions{BatchSize: 5, Delay: 50 * time.Microsecond})
		}(i)
	}
	wg.Wait()

	for i := range goodSums {
		if goodErrs[i] != nil {
			t.Fatalf("good stream %d failed next to bad clients: %v", i, goodErrs[i])
		}
		if !reflect.DeepEqual(goodSums[i].Races, want) {
			t.Fatalf("good stream %d races poisoned:\n got %v\nwant %v", i, goodSums[i].Races, want)
		}
	}
	// Give the errored readers a beat to finish accounting: their
	// connections closed before the good streams' summaries flushed.
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("stream.streams_errored").Value() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Counter("stream.streams_errored").Value(); got < 3 {
		t.Fatalf("streams_errored = %d, want >= 3", got)
	}
	if got := reg.Counter("stream.streams_truncated").Value(); got < 1 {
		t.Fatalf("streams_truncated = %d, want >= 1", got)
	}
	if got := reg.Counter("stream.streams_dropped").Value(); got != 0 {
		t.Fatalf("streams_dropped = %d, want 0", got)
	}
}

// A truncated stream still yields a summary for the ops that made it
// across, with the error recorded — the flight doesn't lose the data it
// already has.
func TestTruncatedStreamSummarizes(t *testing.T) {
	s := newTestServer(t, Options{})
	c := workload.Corpus(2, 5)[0]
	e := runCorpusEntry(t, c)
	if len(e.Ops) < 8 {
		t.Fatalf("corpus entry too small: %d ops", len(e.Ops))
	}

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sw, err := trace.NewStreamWriter(conn, trace.StreamHeader{
		ProgramName: e.ProgramName, Model: e.Model, Seed: e.Seed,
		NumCPUs: e.NumCPUs, NumLocations: e.NumLocations,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteBatch(e.Ops[:8]); err != nil {
		t.Fatal(err)
	}
	// Half-close: the server sees EOF with no end marker (truncation)
	// but can still write the summary back.
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.NewDecoder(conn).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Err == "" {
		t.Fatal("truncated stream's summary carries no error")
	}
	if sum.Events != 8 {
		t.Fatalf("truncated stream processed %d events, want 8", sum.Events)
	}
}

// Window mode over the wire: memory-bounded detection with a replay
// seed, and no invented races relative to the exact detector.
func TestWindowedStream(t *testing.T) {
	s := newTestServer(t, Options{Window: 16})
	w := workload.Random(workload.RandomParams{
		Seed: 11, CPUs: 4, Segments: 16, OpsPerSegment: 5,
		Locks: 2, UnlockedFraction: 0.4, SharedFraction: 0.7,
	})
	r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 11, InitMemory: w.InitMemory})
	if err != nil {
		t.Fatal(err)
	}
	e := r.Exec

	sum, err := Send(s.Addr(), e, SendOptions{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Window != 16 {
		t.Fatalf("summary window = %d, want 16", sum.Window)
	}
	if sum.Retired == 0 {
		t.Fatal("large execution through window 16 retired nothing")
	}
	if sum.Replay == nil {
		t.Fatal("retiring stream carries no replay seed")
	}
	if sum.Replay.Retired != sum.Retired || sum.Replay.Seed != e.Seed {
		t.Fatalf("replay seed inconsistent: %+v vs retired=%d seed=%d", sum.Replay, sum.Retired, e.Seed)
	}
	exact := map[string]bool{}
	for _, race := range oracleRaces(e, onthefly.Options{}) {
		exact[race] = true
	}
	for _, race := range sum.Races {
		if !exact[race] {
			t.Fatalf("windowed stream invented race %s", race)
		}
	}
}

// Backpressure under the tightest configuration: one worker, queue
// depth one, many tiny batches. The reader must throttle, not drop,
// and the result must stay exact.
func TestBackpressureTightQueue(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	s := newTestServer(t, Options{Registry: reg, Workers: 1, QueueDepth: 1})
	c := workload.Corpus(4, 9)[2]
	e := runCorpusEntry(t, c)

	var wg sync.WaitGroup
	sums := make([]*Summary, 6)
	errs := make([]error, 6)
	for i := range sums {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i], errs[i] = Send(s.Addr(), e, SendOptions{BatchSize: 1})
		}(i)
	}
	wg.Wait()
	want := oracleRaces(e, onthefly.Options{})
	for i := range sums {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(sums[i].Races, want) {
			t.Fatalf("stream %d races differ under backpressure", i)
		}
		if sums[i].Batches != len(e.Ops) {
			t.Fatalf("stream %d: %d batches, want %d (batch size 1)", i, sums[i].Batches, len(e.Ops))
		}
	}
	if got := reg.Counter("stream.streams_dropped").Value(); got != 0 {
		t.Fatalf("streams_dropped = %d, want 0", got)
	}
}

// The /streams document lists finished summaries and parses as JSON.
func TestStreamsHandler(t *testing.T) {
	s := newTestServer(t, Options{})
	c := workload.Corpus(1, 2)[0]
	e := runCorpusEntry(t, c)
	for i := 0; i < 3; i++ {
		if _, err := Send(s.Addr(), e, SendOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	rec := httptest.NewRecorder()
	s.StreamsHandler()(rec, httptest.NewRequest("GET", "/streams", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /streams: %d", rec.Code)
	}
	var doc StreamsDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/streams not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Finished) != 3 {
		t.Fatalf("finished = %d, want 3", len(doc.Finished))
	}
	if len(doc.Live) != 0 {
		t.Fatalf("live = %d after drain, want 0", len(doc.Live))
	}
	for _, sum := range doc.Finished {
		if sum.Program != e.ProgramName {
			t.Fatalf("finished summary program = %q, want %q", sum.Program, e.ProgramName)
		}
	}
}

// The closed ring is bounded: flooding more streams than closedRingCap
// keeps only the most recent ones.
func TestClosedRingBounded(t *testing.T) {
	s := newTestServer(t, Options{})
	c := workload.Corpus(1, 4)[0]
	e := runCorpusEntry(t, c)
	n := closedRingCap + 8
	for i := 0; i < n; i++ {
		if _, err := Send(s.Addr(), e, SendOptions{BatchSize: 64}); err != nil {
			t.Fatal(err)
		}
	}
	rec := httptest.NewRecorder()
	s.StreamsHandler()(rec, httptest.NewRequest("GET", "/streams", nil))
	var doc StreamsDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Finished) != closedRingCap {
		t.Fatalf("finished ring = %d, want %d", len(doc.Finished), closedRingCap)
	}
	// Ring keeps the latest: the highest stream IDs.
	minID := doc.Finished[0].StreamID
	for _, sum := range doc.Finished {
		if sum.StreamID < minID {
			minID = sum.StreamID
		}
	}
	if minID != uint64(n-closedRingCap+1) {
		t.Fatalf("ring evicted wrong end: min stream id %d, want %d", minID, n-closedRingCap+1)
	}
}

// Close is clean while clients are mid-stream: no hangs, no panics.
func TestCloseWithLiveStreams(t *testing.T) {
	s := newTestServer(t, Options{})
	c := workload.Corpus(1, 6)[0]
	e := runCorpusEntry(t, c)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Slow drip so Close lands mid-stream; errors are expected.
			Send(s.Addr(), e, SendOptions{BatchSize: 1, Delay: 2 * time.Millisecond, Timeout: 5 * time.Second}) //nolint:errcheck
		}()
	}
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung with live streams")
	}
	wg.Wait()
}

// Summaries survive the JSON wire format: field-for-field round trip.
func TestSummaryRoundTrip(t *testing.T) {
	in := &Summary{
		StreamID: 3, Program: "p", Model: "WO", Seed: 9,
		Events: 12, Batches: 2, Races: []string{"a", "b"}, RaceCount: 2,
		SyncRaces: 1, Comparisons: 40, Window: 64, Retired: 5, WindowPairMisses: 2,
		Replay: &onthefly.ReplaySeed{Program: "p", Model: memmodel.WO, Seed: 9, FirstOp: 0, LastOp: 11, Retired: 5},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Summary
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Fatalf("summary round trip differs:\n in %+v\nout %+v", in, &out)
	}
}

func BenchmarkStreamThroughput(b *testing.B) {
	reg := telemetry.NewRegistry() // disabled: measure the hot path
	s, err := Serve(Options{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	w := workload.Random(workload.RandomParams{
		Seed: 21, CPUs: 4, Segments: 20, OpsPerSegment: 6, Locks: 2,
		UnlockedFraction: 0.3, SharedFraction: 0.6,
	})
	r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 21, InitMemory: w.InitMemory})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(r.Exec.Ops)), "ops/stream")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Send(s.Addr(), r.Exec, SendOptions{BatchSize: 256}); err != nil {
			b.Fatal(err)
		}
	}
}

package stream

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// StreamInfo is one live stream's row in the /streams document.
type StreamInfo struct {
	StreamID      uint64  `json:"stream_id"`
	Remote        string  `json:"remote"`
	Program       string  `json:"program"`
	Model         string  `json:"model"`
	Seed          int64   `json:"seed"`
	AgeSeconds    float64 `json:"age_seconds"`
	Received      int64   `json:"received"`
	Processed     int64   `json:"processed"`
	Batches       int64   `json:"batches"`
	QueuedBatches int     `json:"queued_batches"`

	// Trace context and live batch latency, present when tracing is on.
	TraceID        string `json:"trace_id,omitempty"`
	QueueHighWater int    `json:"queue_high_water,omitempty"`
	BatchWaitP99NS int64  `json:"batch_wait_p99_ns,omitempty"`
	BatchFeedP99NS int64  `json:"batch_feed_p99_ns,omitempty"`
}

// StreamsDoc is the /streams document: live streams plus the most
// recently finished summaries.
type StreamsDoc struct {
	Live     []StreamInfo `json:"live"`
	Finished []*Summary   `json:"finished"`
}

// StreamsHandler serves per-stream detail as JSON — the complement to
// the aggregate stream.* counters on /metrics and /status. wrserve
// mounts it next to the obs plane.
func (s *Server) StreamsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		s.mu.Lock()
		doc := StreamsDoc{Finished: append([]*Summary(nil), s.closed...)}
		for _, st := range s.live {
			info := StreamInfo{
				StreamID:       st.id,
				Remote:         st.remote,
				Program:        st.hdr.ProgramName,
				Model:          st.hdr.Model.String(),
				Seed:           st.hdr.Seed,
				AgeSeconds:     now.Sub(st.opened).Seconds(),
				Received:       st.received.Load(),
				Processed:      st.processed.Load(),
				Batches:        st.batches.Load(),
				QueuedBatches:  len(st.q),
				QueueHighWater: int(st.queueHW.Load()),
			}
			if st.tr != nil {
				info.TraceID = st.tr.TraceID.String()
			}
			if feeds := st.feedHist.Snapshot(); feeds.Count > 0 {
				info.BatchFeedP99NS = feeds.Quantile(0.99)
				info.BatchWaitP99NS = st.waitHist.Snapshot().Quantile(0.99)
			}
			doc.Live = append(doc.Live, info)
		}
		s.mu.Unlock()
		sort.Slice(doc.Live, func(i, j int) bool { return doc.Live[i].StreamID < doc.Live[j].StreamID })
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc) //nolint:errcheck
	}
}

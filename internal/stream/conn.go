package stream

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"time"

	"weakrace/internal/onthefly"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/trace"
)

// handleConn is one client's reader: decode the header, register the
// stream on its shard, pump batches into the bounded queue, and — after
// the worker finalizes — write the summary back on the same connection.
//
// Error isolation is the invariant here: every failure path is local to
// this connection. A malformed batch, a lying length prefix, or a
// vanished client closes and accounts for this stream only; the decode
// error never reaches the worker as anything but a clean sentinel, and
// no shared state is touched outside the registry counters.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	sr, err := trace.NewStreamReader(conn)
	if err != nil {
		// No header, no stream: nothing to register or finalize.
		s.reg.Counter("stream.streams_errored").Inc()
		writeErrorResponse(conn, err)
		return
	}
	st := s.register(sr.Header(), conn.RemoteAddr().String())
	w := s.workers[st.id%uint64(len(s.workers))]

	var readErr error
	var ops []sim.MemOp
	for {
		ops, err = sr.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		st.received.Add(int64(len(ops)))
		st.batches.Add(1)
		// Bounded queue then per-batch token: a full queue blocks here,
		// which stops reading this connection and lets TCP throttle the
		// client. Order per stream is the send order of the tokens.
		st.q <- batchMsg{ops: ops, enq: time.Now()}
		if depth := int64(len(st.q)); depth > st.queueHW.Load() {
			st.queueHW.Store(depth)
			s.reg.Gauge("stream.queue_high_water").SetMax(depth)
		}
		w.ready <- st
	}

	st.mu.Lock()
	st.readErr = readErr
	st.mu.Unlock()

	// Sentinel: the worker processes every queued batch first (tokens
	// are FIFO), then finalizes the summary and closes done.
	st.q <- batchMsg{}
	w.ready <- st
	<-st.done

	st.mu.Lock()
	summary := st.summary
	st.mu.Unlock()
	if readErr != nil {
		s.reg.Counter("stream.streams_errored").Inc()
		if errIsTruncation(readErr) {
			s.reg.Counter("stream.streams_truncated").Inc()
		}
	}
	// Best-effort response; the client may already be gone.
	enc := json.NewEncoder(conn)
	enc.Encode(summary) //nolint:errcheck
}

// register allocates the stream, its detector, and its queue, and
// exposes it to /streams.
func (s *Server) register(hdr trace.StreamHeader, remote string) *stream {
	det := onthefly.NewDetector(hdr.NumCPUs, hdr.NumLocations, onthefly.Options{
		HistoryLimit: s.opts.HistoryLimit,
		Pairing:      s.opts.Pairing,
		Window:       s.opts.Window,
	})
	det.SetSource(hdr.ProgramName, hdr.Model, hdr.Seed)
	now := time.Now()
	s.mu.Lock()
	s.nextID++
	st := &stream{
		id:     s.nextID,
		hdr:    hdr,
		remote: remote,
		opened: now,
		q:      make(chan batchMsg, s.opts.QueueDepth),
		done:   make(chan struct{}),
		det:    det,
	}
	s.live[st.id] = st
	s.mu.Unlock()
	st.lastActive.Store(now.UnixNano())
	if s.tracer != nil {
		// Continue the client's trace context; a client that did not
		// stamp one gets a server-minted ID so the trace is still
		// correlatable across artifacts.
		id := telemetry.TraceID(hdr.TraceID)
		if id == 0 {
			id = telemetry.TraceID(uint64(now.UnixNano())<<8 | st.id&0xff)
		}
		st.tr = s.tracer.Begin(st.key(), id, hdr.ParentSpan,
			hdr.ProgramName, hdr.Model.String(), hdr.Seed)
	}
	s.reg.Counter("stream.streams_opened").Inc()
	s.reg.Gauge("stream.streams_active").Set(int64(s.liveCount()))
	return st
}

func (s *Server) liveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// unregister moves a finished stream into the closed ring.
func (s *Server) unregister(st *stream, sum *Summary) {
	s.mu.Lock()
	delete(s.live, st.id)
	s.closed = append(s.closed, sum)
	if len(s.closed) > closedRingCap {
		s.closed = s.closed[len(s.closed)-closedRingCap:]
	}
	s.mu.Unlock()
	s.reg.Counter("stream.streams_closed").Inc()
	s.reg.Gauge("stream.streams_active").Set(int64(s.liveCount()))
}

func writeErrorResponse(w io.Writer, err error) {
	enc := json.NewEncoder(w)
	enc.Encode(&Summary{Err: err.Error()}) //nolint:errcheck
}

// errIsTruncation reports a client that vanished without the
// end-of-stream marker — accounted separately from malformed input.
func errIsTruncation(err error) bool {
	return errors.Is(err, trace.ErrStreamTruncated)
}

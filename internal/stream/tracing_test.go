package stream

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/workload"
)

// tracedServer is newTestServer plus a tracer whose slow-decile sampler
// never triggers, so kept/sampled-out decisions are deterministic.
func tracedServer(t *testing.T) (*Server, *telemetry.Tracer) {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Registry: reg, MinSlowSamples: 1 << 30})
	s := newTestServer(t, Options{Registry: reg, Tracer: tracer})
	return s, tracer
}

// A racy stream's trace must be kept by the tail sampler and
// retrievable — by snapshot, and as flight records via TraceSource.
func TestTracingKeepsRacyStream(t *testing.T) {
	s, _ := tracedServer(t)
	c := workload.Corpus(1, 1)[0] // corpus entry 0 is racy
	e := runCorpusEntry(t, c)

	sum, err := Send(s.Addr(), e, SendOptions{BatchSize: 7, TraceID: 0xabcd, ParentSpan: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Races) == 0 {
		t.Fatal("corpus entry 0 expected racy")
	}
	if sum.TraceID != telemetry.TraceID(0xabcd).String() {
		t.Fatalf("summary trace ID = %q, want the client-stamped %s", sum.TraceID, telemetry.TraceID(0xabcd))
	}
	if !sum.TraceKept {
		t.Fatal("racy stream's trace was sampled out")
	}

	key := fmt.Sprintf("%d", sum.StreamID)
	ts, ok := s.TraceSnapshot(key)
	if !ok {
		t.Fatalf("no trace snapshot for stream %s", key)
	}
	if ts.TraceID != sum.TraceID || ts.ParentSpan != 3 {
		t.Fatalf("trace context = %s/%d", ts.TraceID, ts.ParentSpan)
	}
	if ts.Program != e.ProgramName || ts.Seed != e.Seed {
		t.Fatalf("trace identity = %s/%d", ts.Program, ts.Seed)
	}
	if !ts.Finished || !ts.Outcome.Racy {
		t.Fatalf("outcome = %+v finished = %v", ts.Outcome, ts.Finished)
	}
	// Every phase of the batch lifecycle must appear in the timeline.
	seen := map[string]bool{}
	for _, sp := range ts.Spans {
		seen[sp.Name] = true
	}
	for _, want := range []string{"batch.wait", "batch.feed", "batch.race_emit", "finalize", "stream"} {
		if !seen[want] {
			t.Errorf("span %q missing from trace (have %v)", want, seen)
		}
	}

	src := s.TraceSource()
	if src == nil {
		t.Fatal("TraceSource nil with tracing on")
	}
	recs, ok := src(key)
	if !ok || len(recs) < 2 {
		t.Fatalf("TraceSource(%s) = %v, %v", key, recs, ok)
	}
	if recs[0].Meta == nil || recs[0].Meta.TraceID != sum.TraceID {
		t.Fatalf("meta record = %+v", recs[0])
	}
}

// With no client trace ID the server mints one, so a stream is never
// untraced while tracing is on.
func TestTracingServerMintsID(t *testing.T) {
	s, _ := tracedServer(t)
	c := workload.Corpus(1, 1)[0]
	e := runCorpusEntry(t, c)
	sum, err := Send(s.Addr(), e, SendOptions{BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if sum.TraceID == "" || sum.TraceID == telemetry.TraceID(0).String() {
		t.Fatalf("server did not mint a trace ID: %q", sum.TraceID)
	}
}

// The per-stream latency fields must be populated whenever the stream
// fed at least one batch, tracing or not.
func TestSummaryLatencyFields(t *testing.T) {
	s := newTestServer(t, Options{})
	c := workload.Corpus(1, 1)[0]
	e := runCorpusEntry(t, c)
	sum, err := Send(s.Addr(), e, SendOptions{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Batches == 0 {
		t.Fatal("no batches fed")
	}
	if sum.BatchFeedP50NS <= 0 || sum.BatchFeedP99NS < sum.BatchFeedP50NS {
		t.Fatalf("feed quantiles = %d/%d", sum.BatchFeedP50NS, sum.BatchFeedP99NS)
	}
	if sum.BatchWaitP50NS <= 0 || sum.BatchWaitP99NS < sum.BatchWaitP50NS {
		t.Fatalf("wait quantiles = %d/%d", sum.BatchWaitP50NS, sum.BatchWaitP99NS)
	}
	if sum.QueueHighWater < 1 {
		t.Fatalf("queue high-water = %d, want >= 1", sum.QueueHighWater)
	}
}

// The sampler keeps the anomalous decile only: a mixed corpus streamed
// through a traced server must keep every racy stream and sample out
// the clean fast ones.
func TestTailSamplingOverCorpus(t *testing.T) {
	s, tracer := tracedServer(t)
	corpus := workload.Corpus(12, 1)
	keptRacy, cleanKept := 0, 0
	for _, c := range corpus {
		e := runCorpusEntry(t, c)
		sum, err := Send(s.Addr(), e, SendOptions{BatchSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		racy := len(sum.Races) > 0
		if racy && !sum.TraceKept {
			t.Errorf("racy stream %d sampled out", sum.StreamID)
		}
		if racy && sum.TraceKept {
			keptRacy++
		}
		if !racy && sum.TraceKept {
			cleanKept++
		}
	}
	if keptRacy == 0 {
		t.Fatal("corpus produced no kept racy traces")
	}
	if cleanKept > 0 {
		t.Errorf("%d clean streams kept despite slow sampling disabled", cleanKept)
	}
	if len(tracer.Keys()) != keptRacy {
		t.Errorf("tracer keeps %d traces, want %d", len(tracer.Keys()), keptRacy)
	}
}

// stripVolatile zeroes the fields that legitimately differ between a
// traced and an untraced run (trace context, wall-clock latencies),
// leaving everything detection-relevant for the byte-identical check.
func stripVolatile(s Summary) Summary {
	s.TraceID, s.TraceKept = "", false
	s.BatchWaitP50NS, s.BatchWaitP99NS = 0, 0
	s.BatchFeedP50NS, s.BatchFeedP99NS = 0, 0
	s.QueueHighWater = 0
	return s
}

// Acceptance: streaming the standing 60-trace corpus with tracing on
// must produce byte-identical detection output to tracing off.
func TestTracingDoesNotChangeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("60-trace corpus in -short mode")
	}
	traced, _ := tracedServer(t)
	plain := newTestServer(t, Options{})

	corpus := workload.Corpus(60, 1)
	for i, c := range corpus {
		e := runCorpusEntry(t, c)
		sumT, err := Send(traced.Addr(), e, SendOptions{BatchSize: 128, TraceID: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		sumP, err := Send(plain.Addr(), e, SendOptions{BatchSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		a, b := stripVolatile(*sumT), stripVolatile(*sumP)
		if !reflect.DeepEqual(a, b) {
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			t.Fatalf("corpus %d (%s seed %d): summaries diverge with tracing on:\n on: %s\noff: %s",
				i, c.Workload.Name, c.Seed, ja, jb)
		}
	}
}

// BenchmarkStreamThroughputTraced is BenchmarkStreamThroughput with
// tracing on — the pair quantifies the tracing tax (acceptance: <5%).
func BenchmarkStreamThroughputTraced(b *testing.B) {
	reg := telemetry.NewRegistry() // disabled: measure the hot path
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Registry: reg})
	s, err := Serve(Options{Addr: "127.0.0.1:0", Registry: reg, Tracer: tracer})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	w := workload.Random(workload.RandomParams{
		Seed: 21, CPUs: 4, Segments: 20, OpsPerSegment: 6, Locks: 2,
		UnlockedFraction: 0.3, SharedFraction: 0.6,
	})
	r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 21, InitMemory: w.InitMemory})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(r.Exec.Ops)), "ops/stream")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Send(s.Addr(), r.Exec, SendOptions{BatchSize: 256, TraceID: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

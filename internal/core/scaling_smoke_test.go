package core_test

import (
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// TestParallelScalingSmoke is the CI scaling gate: on a segments-1024
// trace (~65k events), the FULL analysis — validation, timestamping,
// hb1 build, partition ordering, and the sweep with its two-level
// merge engaged — at Workers=4 must beat Workers=1 by at least 2.2x
// wall clock, and both runs must produce identical analyses.
// Wall-clock assertions are meaningless on loaded or single-core
// machines, so the test only runs when WEAKRACE_SCALING_SMOKE=1 is set
// (CI's perf-smoke job) and at least 4 CPUs are available; the
// correctness half of the claim is pinned unconditionally by
// TestParallelAnalysisCorpusEquivalent.
func TestParallelScalingSmoke(t *testing.T) {
	if os.Getenv("WEAKRACE_SCALING_SMOKE") != "1" {
		t.Skip("set WEAKRACE_SCALING_SMOKE=1 to run the wall-clock scaling gate")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for the 2.2x gate, have %d", runtime.NumCPU())
	}

	w := workload.Random(workload.RandomParams{
		Seed: 5, CPUs: 4, Segments: 1024, UnlockedFraction: 0.3,
	})
	r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.FromExecution(r.Exec)

	// Best-of-N wall clock per worker count: the minimum over several
	// runs filters scheduler noise without needing a long benchmark.
	const rounds = 7
	run := func(workers int) (*core.Analysis, time.Duration) {
		var a *core.Analysis
		best := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			got, err := core.Analyze(tr, core.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			a = got
		}
		return a, best
	}

	serial, serialT := run(1)
	parallel, parallelT := run(4)

	if !reflect.DeepEqual(parallel.Races, serial.Races) ||
		!reflect.DeepEqual(parallel.DataRaces, serial.DataRaces) ||
		!reflect.DeepEqual(parallel.Partitions, serial.Partitions) ||
		!reflect.DeepEqual(parallel.FirstPartitions, serial.FirstPartitions) {
		t.Fatal("Workers=4 analysis differs from Workers=1")
	}

	speedup := float64(serialT) / float64(parallelT)
	t.Logf("segments-1024 (%d events): Workers=1 %v, Workers=4 %v, speedup %.2fx",
		serial.NumEvents, serialT, parallelT, speedup)
	if speedup < 2.2 {
		t.Fatalf("Workers=4 speedup %.2fx < 2.2x (serial %v, parallel %v)",
			speedup, serialT, parallelT)
	}
}

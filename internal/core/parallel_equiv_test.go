package core_test

// Metamorphic equivalence: the parallel race search must be invisible in
// the output. For any workload and any worker count, Analyze yields an
// Analysis identical — races, data-race indices, partitions, first
// partitions, and the rendered report text — to the sequential (Workers: 1)
// path. The merge argument (see findRaces) is that the sorted
// (pair, location) record sequence is a function of the record multiset
// alone, not of which worker produced which record; this test checks that
// claim across ≥50 random workloads, run under -race in CI to also catch
// data races in the pool itself.

import (
	"bytes"
	"reflect"
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/report"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

func TestParallelFindRacesEquivalent(t *testing.T) {
	models := []memmodel.Model{memmodel.WO, memmodel.RCsc, memmodel.TSO}
	const seeds = 52
	checked := 0
	for seed := int64(0); seed < seeds; seed++ {
		w := workload.Random(workload.RandomParams{
			Seed:             seed,
			CPUs:             3 + int(seed%3),
			Segments:         3 + int(seed%4),
			UnlockedFraction: float64(seed%4) * 0.15, // race-free through very racy
		})
		model := models[seed%int64(len(models))]
		r, err := sim.Run(w.Prog, sim.Config{
			Model: model, Seed: seed, InitMemory: w.InitMemory,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr := trace.FromExecution(r.Exec)

		seq, err := core.Analyze(tr, core.Options{SkipValidate: true, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: sequential analyze: %v", seed, err)
		}
		var seqText bytes.Buffer
		if err := report.RenderAnalysis(&seqText, seq); err != nil {
			t.Fatal(err)
		}
		if len(seq.Races) > 0 {
			checked++
		}

		for _, workers := range []int{2, 8} {
			par, err := core.Analyze(tr, core.Options{SkipValidate: true, Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(par.Races, seq.Races) {
				t.Fatalf("seed %d workers %d: races differ\n par: %v\n seq: %v",
					seed, workers, par.Races, seq.Races)
			}
			if !reflect.DeepEqual(par.DataRaces, seq.DataRaces) {
				t.Fatalf("seed %d workers %d: data-race indices differ", seed, workers)
			}
			if !reflect.DeepEqual(par.Partitions, seq.Partitions) {
				t.Fatalf("seed %d workers %d: partitions differ", seed, workers)
			}
			if !reflect.DeepEqual(par.FirstPartitions, seq.FirstPartitions) {
				t.Fatalf("seed %d workers %d: first partitions differ", seed, workers)
			}
			var parText bytes.Buffer
			if err := report.RenderAnalysis(&parText, par); err != nil {
				t.Fatal(err)
			}
			if parText.String() != seqText.String() {
				t.Fatalf("seed %d workers %d: report text differs\n--- parallel\n%s--- sequential\n%s",
					seed, workers, parText.String(), seqText.String())
			}
		}
	}
	// The sweep above must have exercised racy traces, not only clean ones.
	if checked < 10 {
		t.Fatalf("only %d racy traces among %d seeds — workload parameters too tame", checked, seeds)
	}
}

// TestParallelAnalysisCorpusEquivalent pins the FULL parallel pipeline —
// the span-filled timestamp pass, the (location, segment-pair)-sharded
// sweep, and its parallel merge, radix sort, and coalesce — on the
// frozen 60-trace corpus: for worker counts {1, 2, 3, 8} the Analysis,
// the rendered report, and the flight recording must be byte-identical.
// Phase records carry wall-clock durations that legitimately vary
// run-to-run, so they are compared structurally (the per-analysis phase
// name sequence must match exactly) while every other record is compared
// as serialized JSONL bytes with the emission timestamp zeroed. Run
// under -race in CI, this doubles as the data-race proof for every new
// parallel pass.
func TestParallelAnalysisCorpusEquivalent(t *testing.T) {
	for trial, c := range workload.Corpus(60, 1) {
		w, model, seed := c.Workload, c.Model, c.Seed
		r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed, InitMemory: w.InitMemory})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tr := trace.FromExecution(r.Exec)

		type snapshot struct {
			a      *core.Analysis
			text   string
			flight string
			phases []string
		}
		run := func(workers int) snapshot {
			fr := export.NewRecorder()
			a, err := core.Analyze(tr, core.Options{Workers: workers, Flight: fr})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			var text bytes.Buffer
			if err := report.RenderAnalysis(&text, a); err != nil {
				t.Fatal(err)
			}
			var phases []string
			var structural []export.Record
			for _, rec := range fr.Records() {
				if rec.Kind == export.KindPhase {
					phases = append(phases, rec.Phase.Name)
					continue
				}
				rec.TS = 0
				structural = append(structural, rec)
			}
			var flight bytes.Buffer
			if err := export.WriteJSONL(&flight, structural); err != nil {
				t.Fatal(err)
			}
			return snapshot{a: a, text: text.String(), flight: flight.String(), phases: phases}
		}

		ref := run(1)
		for _, workers := range []int{2, 3, 8, 16} {
			got := run(workers)
			if !reflect.DeepEqual(got.a.Races, ref.a.Races) ||
				!reflect.DeepEqual(got.a.DataRaces, ref.a.DataRaces) ||
				!reflect.DeepEqual(got.a.Partitions, ref.a.Partitions) ||
				!reflect.DeepEqual(got.a.FirstPartitions, ref.a.FirstPartitions) {
				t.Fatalf("trial %d workers %d: analysis differs from workers=1", trial, workers)
			}
			if got.text != ref.text {
				t.Fatalf("trial %d workers %d: report text differs", trial, workers)
			}
			if got.flight != ref.flight {
				t.Fatalf("trial %d workers %d: flight records differ\n--- workers=%d\n%s--- workers=1\n%s",
					trial, workers, workers, got.flight, ref.flight)
			}
			if !reflect.DeepEqual(got.phases, ref.phases) {
				t.Fatalf("trial %d workers %d: phase sequence differs: %v vs %v",
					trial, workers, got.phases, ref.phases)
			}
		}
	}
}

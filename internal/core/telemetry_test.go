package core

import (
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// TestAnalyzeEmitsTelemetry runs the full pipeline on the paper's Figure 2
// workload (seed 674 exhibits the missing-Test&Set races on WO) with
// collection enabled and asserts the detector reported nonzero event,
// edge, race, and SCC counters plus phase timings.
func TestAnalyzeEmitsTelemetry(t *testing.T) {
	reg := telemetry.Default()
	reg.Reset()
	reg.SetEnabled(true)
	defer func() {
		reg.SetEnabled(false)
		reg.Reset()
	}()

	w := workload.Figure2()
	res, err := sim.Run(w.Prog, sim.Config{
		Model: memmodel.WO, Seed: 674, InitMemory: w.InitMemory,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(trace.FromExecution(res.Exec), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.RaceFree() {
		t.Fatal("Figure2 on WO seed 674 should exhibit data races")
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"detect.analyses",
		"detect.events",
		"detect.hb_edges",
		"detect.aug_edges",
		"detect.races",
		"detect.data_races",
		"detect.partitions",
		"detect.first_partitions",
		"detect.scc.components",
		"detect.vc_builds",
		"detect.vc_components",
		"detect.vc_window_queries",
		"graph.vc.builds",
		"graph.ts.spans",
		"detect.sweep.buckets",
		"trace.builds",
		"trace.events.comp",
		"trace.events.sync",
		telemetry.Name("sim.runs", "model", "WO"),
		telemetry.Name("sim.steps", "model", "WO"),
		telemetry.Name("sim.ops", "model", "WO"),
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, snap.Counters[name])
		}
	}
	// The default path answers hb1 ordering with vector clocks and never
	// builds a closure: the reachability-row counters must be ABSENT, not
	// zero — a zero in flight logs must mean "closure built, no rows
	// needed", never "no closure ran".
	for _, name := range []string{"graph.reach.builds", "graph.reach.rows_built", "graph.reach.row_unions"} {
		if v, ok := snap.Counters[name]; ok {
			t.Errorf("counter %q = %d present on the timestamp path, want absent", name, v)
		}
	}
	if snap.Gauges["detect.scc.max_size"] <= 1 {
		t.Errorf("detect.scc.max_size = %d, want > 1 (race edges form cycles)",
			snap.Gauges["detect.scc.max_size"])
	}
	// graph.scc.max_size covers every reachability build (hb1 and G'), so
	// it is at least the per-analysis augmented-graph gauge.
	if snap.Gauges["graph.scc.max_size"] < snap.Gauges["detect.scc.max_size"] {
		t.Errorf("graph.scc.max_size = %d < detect.scc.max_size = %d",
			snap.Gauges["graph.scc.max_size"], snap.Gauges["detect.scc.max_size"])
	}
	if snap.Counters["detect.race_candidates"] <= 0 {
		t.Errorf("detect.race_candidates = %d, want > 0", snap.Counters["detect.race_candidates"])
	}
	if snap.Gauges["detect.find_races.workers"] < 1 {
		t.Errorf("detect.find_races.workers = %d, want >= 1", snap.Gauges["detect.find_races.workers"])
	}
	// PR-10 parallel-analysis instrumentation: every phase of the pipeline
	// now reports its resolved worker budget, even when a small input kept
	// it on the serial path (the budget is a scheduling fact either way).
	for _, name := range []string{"trace.validate.workers", "graph.build.workers", "detect.condreach.workers"} {
		if snap.Gauges[name] < 1 {
			t.Errorf("gauge %q = %d, want >= 1", name, snap.Gauges[name])
		}
	}
	// The two-level merge only engages at Workers >= 4 with the sharded
	// sweep; on this small trace the gauge must be ABSENT, not zero, so a
	// flight log can distinguish "flat merge ran" from "no merge at all".
	if v, ok := snap.Gauges["detect.sweep.merge_groups"]; ok {
		t.Errorf("detect.sweep.merge_groups = %d present on a flat-merge trace, want absent", v)
	}
	// PR-8 parallel-analysis instrumentation: the timestamp layer's span
	// statistics and the sweep's per-shard arena high-water marks.
	if snap.Gauges["graph.ts.span_max_events"] < 1 {
		t.Errorf("graph.ts.span_max_events = %d, want >= 1", snap.Gauges["graph.ts.span_max_events"])
	}
	if snap.Gauges["detect.arena.shards"] < 1 {
		t.Errorf("detect.arena.shards = %d, want >= 1", snap.Gauges["detect.arena.shards"])
	}
	for _, phase := range []string{"sim.run", "trace.build", "detect.analyze", "detect.find_races",
		"detect.sweep.prep", "detect.sweep.scan", "detect.sweep.merge", "detect.sweep.coalesce",
		"trace.validate.streams", "trace.validate.so1", "graph.build.count", "graph.build.fill",
		"detect.condreach.materialize", "detect.condreach.order"} {
		if snap.Phases[phase].Count == 0 {
			t.Errorf("phase %q has no observations", phase)
		}
	}
	// Consistency: the detector saw exactly the events the trace builder
	// counted.
	if got, want := snap.Counters["detect.events"],
		snap.Counters["trace.events.comp"]+snap.Counters["trace.events.sync"]; got != want {
		t.Errorf("detect.events = %d, trace events = %d", got, want)
	}
	// detect.vc_hb_fastpath_hits is incremented live at the Affects query
	// site, not at flush: Definition-3.3 queries arrive after Analyze.
	// Every race trivially affects itself through an hb1-reflexive pair,
	// so one self-query must land on the clock fast path.
	if snap.Counters["detect.vc_hb_fastpath_hits"] != 0 {
		t.Errorf("detect.vc_hb_fastpath_hits = %d before any Affects query, want 0",
			snap.Counters["detect.vc_hb_fastpath_hits"])
	}
	if !a.Affects(a.DataRaces[0], a.DataRaces[0]) {
		t.Error("a race must affect itself")
	}
	if got := reg.Snapshot().Counters["detect.vc_hb_fastpath_hits"]; got <= 0 {
		t.Errorf("detect.vc_hb_fastpath_hits = %d after a self-Affects query, want > 0", got)
	}
}

// TestAnalyzeDisabledEmitsNothing: with collection off, Analyze must not
// create metrics.
func TestAnalyzeDisabledEmitsNothing(t *testing.T) {
	reg := telemetry.Default()
	reg.Reset()
	reg.SetEnabled(false)

	w := workload.Figure2()
	res, err := sim.Run(w.Prog, sim.Config{
		Model: memmodel.WO, Seed: 1, InitMemory: w.InitMemory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(trace.FromExecution(res.Exec), Options{}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Phases) != 0 {
		t.Fatalf("disabled registry collected metrics: %+v", snap)
	}
}

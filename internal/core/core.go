// Package core implements the paper's contribution: post-mortem dynamic
// data race detection from an execution trace, valid on weak memory
// systems that satisfy Condition 3.4.
//
// Given a trace (per-processor event streams with synchronization pairing
// and READ/WRITE access sets — internal/trace), the detector:
//
//  1. builds the happens-before-1 graph: one node per event, edges for
//     program order (po) and paired release→acquire synchronization order
//     (so1); hb1 = (po ∪ so1)+ (Definitions 2.2–2.3);
//  2. finds the higher-level races: conflicting events not ordered by hb1
//     (Definition 2.4 lifted to events, §4.1) — remembering that hb1 may
//     contain cycles in a weak execution, so reachability runs on the SCC
//     condensation;
//  3. builds the augmented graph G′ by adding a doubly-directed edge
//     between the two events of every race, so that a path A ⇝ C in G′
//     captures "race 〈A,B〉 affects race 〈C,D〉" (Definition 3.3, §4.2);
//  4. partitions the data races by the strongly connected components of G′
//     and orders partitions by reachability (Definition 4.1);
//  5. reports the FIRST partitions: those not preceded by any other
//     partition containing a data race. By Theorem 4.1 there are no first
//     partitions iff the execution was race-free (hence sequentially
//     consistent, by Condition 3.4(1)); by Theorem 4.2 every first
//     partition contains at least one race that also occurs in a
//     sequentially consistent execution of the program.
package core

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"weakrace/internal/bitset"
	"weakrace/internal/graph"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/trace"
)

// EventID is a dense global index over all events of a trace
// (processor-major: all of P1's events, then P2's, ...).
type EventID int

// Options configures an analysis.
type Options struct {
	// Pairing selects which synchronization writes count as releases when
	// constructing so1. The default, ConservativePairing, is the paper's
	// classification (a Test&Set's write never pairs). LiberalPairing is
	// sound on WO/DRF0-style hardware and yields fewer races.
	Pairing memmodel.PairingPolicy
	// SkipValidate skips trace validation (for traces already validated,
	// e.g. straight from the decoder, on hot benchmark paths).
	SkipValidate bool
	// Workers bounds the parallelism of the per-location race search.
	// 0 uses GOMAXPROCS; 1 forces the sequential path. The Analysis is
	// byte-identical for every worker count: workers produce commutative
	// partial results (per-pair location sets and data flags) that are
	// merged and then sorted deterministically.
	Workers int
	// ExplicitAug materializes the augmented graph G′ the way §4.2 writes
	// it down: clone hb1, add a doubly-directed edge per race, build a
	// transitive closure over it (Analysis.Aug/AugReach). The default
	// (false) runs Tarjan over an implicit adjacency and answers partition
	// ordering with targeted condensation reachability — same Analysis,
	// none of the edge materialization. The explicit path is kept as the
	// reference implementation for the equivalence crosscheck and for
	// callers that want the closure for ad-hoc queries.
	ExplicitAug bool
	// Arena, when non-nil, supplies reusable per-Analyze scratch buffers
	// (race records, SCC stacks, race-partner lists). A campaign hands one
	// arena per in-flight seed down so repeated analyses stop re-allocating
	// the same megabyte-scale buffers. An Arena must not be shared by
	// concurrent Analyze calls.
	Arena *Arena
	// Flight, when non-nil, attaches a flight recorder: Analyze records
	// the trace's events, hb1 edges tagged by origin (po/so1), the G′
	// race-partner edges, the detection phases as a timeline, and the
	// races and partitions found (see internal/telemetry/export). Nil —
	// the default — records nothing and costs one pointer check per
	// phase; the gate mirrors telemetry's atomic Enabled discipline.
	Flight *export.Recorder
}

// Arena holds the per-Analyze scratch buffers that are NOT retained by
// the returned Analysis: the flat race-record buffers of the sweep, the
// implicit-G′ partner lists, and the graph layer's Tarjan and
// condensation scratch. Zero value is ready to use; see Options.Arena.
type Arena struct {
	cpuOf   []int32   // cpuOf[event] — filled per analysis
	extras  [][]int32 // per-node race-partner lists (min partner per CPU)
	touched []int32   // nodes with non-empty extras, for O(touched) reset
	recs    []pairRec // sequential sweep's record buffer
	recsTmp []pairRec // radix sort's ping-pong buffer
	digits  []int32   // radix sort's counting buffer
	scratch graph.Scratch
}

// NewArena returns an empty arena. Buffers grow to the working-set size
// of the analyses run through it and are then reused.
func NewArena() *Arena { return &Arena{} }

// arenaPool backs Analyze calls that did not supply an Options.Arena, so
// every caller gets scratch reuse across analyses; an explicit arena
// still wins (deterministic per-worker reuse, e.g. one per in-flight
// campaign seed).
var arenaPool = sync.Pool{New: func() any { return &Arena{} }}

// Race is a higher-level race between two events (§4.1): A and B access a
// common location that at least one writes, and no hb1 path connects them.
type Race struct {
	// A and B are the racing events, A < B.
	A, B EventID
	// Locs is the set of locations on which A and B conflict.
	Locs *bitset.Set
	// Data reports whether this is a data race: at least one side is a
	// computation event (all of whose accesses are data operations). A
	// race between two synchronization events is a synchronization race
	// and is never reported, but it still contributes edges to G′.
	Data bool
}

// Partition is a set of data races whose events share one strongly
// connected component of the augmented graph G′ (§4.2).
type Partition struct {
	// Component is the SCC id in the augmented graph.
	Component int
	// Races indexes Analysis.Races, listing this partition's data races.
	Races []int
	// Events lists the distinct events involved, sorted.
	Events []EventID
	// First reports whether no other partition containing a data race
	// precedes this one in the partial order P (Definition 4.1): the
	// partition is one the detector reports to the programmer.
	First bool
}

// Analysis is the complete result of a post-mortem detection run.
type Analysis struct {
	// Trace is the input trace.
	Trace *trace.Trace
	// Options echoes the options used.
	Options Options

	// NumEvents is the number of events (hb1 graph nodes).
	NumEvents int

	// HB is the happens-before-1 graph (po ∪ so1 edges).
	HB *graph.Digraph
	// HBReach answers hb1 ordering queries.
	HBReach *graph.Reachability
	// Aug is the augmented graph G′: HB plus a doubly-directed edge per
	// race. Populated only under Options.ExplicitAug; the default path
	// never materializes G′ (its SCCs are computed over an implicit
	// adjacency — see buildImplicitAug).
	Aug *graph.Digraph
	// AugReach answers affect-ordering queries on G′. Populated only
	// under Options.ExplicitAug.
	AugReach *graph.Reachability
	// AugSCC is the component structure of G′ — the partitions of §4.2.
	// Always populated (on the implicit path it comes from the overlay
	// Tarjan run; on the explicit path from AugReach). Component ids may
	// differ between the two paths (adjacency order steers Tarjan's
	// numbering) but the components themselves, and everything derived
	// from them, are identical.
	AugSCC *graph.SCC

	// Races lists every race (data and synchronization), sorted by (A, B).
	Races []Race
	// DataRaces indexes Races, listing the data races.
	DataRaces []int
	// Partitions lists the partitions containing at least one data race,
	// in a deterministic order (by smallest event id).
	Partitions []Partition
	// FirstPartitions indexes Partitions, listing the first partitions —
	// the detector's report.
	FirstPartitions []int

	base []int // base[c] = EventID of processor c's first event

	augCond        *graph.CondReach // implicit path's partition-order oracle
	augEdges       int64            // implicit partner entries, or Aug.M() when explicit
	candidatePairs int64            // conflicting unordered pairs the sweep emitted
	raceWorkers    int              // worker count the race search actually used
}

// ID returns the EventID for an event reference.
func (a *Analysis) ID(ref trace.EventRef) EventID {
	return EventID(a.base[ref.CPU] + ref.Index)
}

// Ref returns the event reference for an EventID.
func (a *Analysis) Ref(id EventID) trace.EventRef {
	c := sort.Search(len(a.base), func(i int) bool { return a.base[i] > int(id) }) - 1
	return trace.EventRef{CPU: c, Index: int(id) - a.base[c]}
}

// Event returns the trace event with the given id.
func (a *Analysis) Event(id EventID) *trace.Event {
	return a.Trace.Event(a.Ref(id))
}

// RaceFree reports whether the execution exhibited no data races. On
// hardware satisfying Condition 3.4(1) this certifies that the execution
// was sequentially consistent.
func (a *Analysis) RaceFree() bool { return len(a.DataRaces) == 0 }

// Analyze runs the full post-mortem detection pipeline on a trace.
func Analyze(t *trace.Trace, opts Options) (*Analysis, error) {
	reg := telemetry.Default()
	fl := newFlight(opts.Flight)
	defer startPhase(reg, fl, "detect.analyze")()
	if !opts.SkipValidate {
		done := startPhase(reg, fl, "detect.validate")
		err := t.Validate()
		done()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	a := &Analysis{Trace: t, Options: opts}
	if a.Options.Arena == nil {
		ar := arenaPool.Get().(*Arena)
		a.Options.Arena = ar
		defer func() {
			a.Options.Arena = opts.Arena // don't leak the pooled arena to the caller
			arenaPool.Put(ar)
		}()
	}

	// Dense event numbering, processor-major.
	a.base = make([]int, t.NumCPUs)
	n := 0
	for c, evs := range t.PerCPU {
		a.base[c] = n
		n += len(evs)
	}
	a.NumEvents = n

	done := startPhase(reg, fl, "detect.build_hb")
	a.buildHB()
	done()
	done = startPhase(reg, fl, "detect.hb_reach")
	// Lazy reachability: the race search's pre-checks (component id,
	// topological level) answer most ordering queries without closure
	// rows, so sparse-race traces never materialize the full O(C²/64)
	// closure of either graph.
	a.HBReach = graph.NewReachabilityLazy(a.HB)
	done()
	done = startPhase(reg, fl, "detect.find_races")
	a.findRaces()
	done()
	done = startPhase(reg, fl, "detect.augment")
	if opts.ExplicitAug {
		a.buildAugmented()
		a.AugReach = graph.NewReachabilityLazy(a.Aug)
		a.AugSCC = a.AugReach.SCC()
		a.augEdges = int64(a.Aug.M())
	} else {
		a.buildImplicitAug()
	}
	done()
	done = startPhase(reg, fl, "detect.partition")
	a.partition()
	done()
	a.flushTelemetry(reg)
	if fl != nil {
		fl.record(a)
	}
	return a, nil
}

// flushTelemetry batches the analysis's structural counters into the
// registry — the event/edge/race/SCC scaling numbers every perf PR
// reports against.
func (a *Analysis) flushTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.Counter("detect.analyses").Inc()
	reg.Counter("detect.events").Add(int64(a.NumEvents))
	reg.Counter("detect.hb_edges").Add(int64(a.HB.M()))
	// detect.aug_edges counts the augmentation work actually represented:
	// per-node race-partner entries on the implicit path (at most
	// racy-nodes × (CPUs−1), since partners collapse to the po-minimal
	// event per CPU), or G′'s materialized edge count under ExplicitAug.
	reg.Counter("detect.aug_edges").Add(a.augEdges)
	reg.Counter("detect.races").Add(int64(len(a.Races)))
	reg.Counter("detect.data_races").Add(int64(len(a.DataRaces)))
	reg.Counter("detect.partitions").Add(int64(len(a.Partitions)))
	reg.Counter("detect.first_partitions").Add(int64(len(a.FirstPartitions)))
	reg.Counter("detect.race_candidates").Add(a.candidatePairs)
	reg.Gauge("detect.find_races.workers").SetMax(int64(a.raceWorkers))
	reg.Counter("detect.scc.components").Add(int64(a.AugSCC.NumComponents()))
	// detect.scc.max_size is the largest SCC of the AUGMENTED graph G′
	// per analysis — the partition-structure view. The graph layer's
	// graph.scc.max_size gauge instead tracks the largest SCC across
	// every SCC computation (hb1 and augmented, explicit or implicit).
	// Both reuse the size Tarjan tracked while closing components;
	// nothing rescans Members.
	reg.Gauge("detect.scc.max_size").SetMax(int64(a.AugSCC.MaxSize()))
}

// buildHB constructs the happens-before-1 graph: po edges between
// consecutive events of each processor, so1 edges from each paired release
// to its acquire (Definition 2.2), subject to the pairing policy.
func (a *Analysis) buildHB() {
	g := graph.New(a.NumEvents)
	for c, evs := range a.Trace.PerCPU {
		for i := range evs {
			if i+1 < len(evs) {
				g.AddEdge(a.base[c]+i, a.base[c]+i+1)
			}
			ev := evs[i]
			if ev.Kind == trace.Sync && ev.Role == memmodel.RoleAcquire &&
				ev.Observed.Valid() && a.Options.Pairing.CanPair(ev.ObservedRole) {
				g.AddEdge(int(a.ID(ev.Observed)), a.base[c]+i)
			}
		}
	}
	a.HB = g
}

// access is one (event, location) access used during race detection.
type access struct {
	ev    EventID
	cpu   int
	write bool
	sync  bool
}

// pairKey packs a (lo, hi) event pair into one comparable, cheaply
// sortable word. Event ids are dense indexes, far below 2³².
func pairKey(lo, hi EventID) uint64 { return uint64(lo)<<32 | uint64(hi) }

// sweepThreshold is the access count below which the race search stays
// sequential: fanning out goroutines costs more than the sweep itself on
// small traces. The parallel and sequential paths produce identical
// output, so the cutoff is purely a scheduling decision.
const sweepThreshold = 2048

// findRaces detects all races: conflicting, hb1-unordered event pairs.
//
// The search is a per-location sweep over CPU-bucketed accesses:
// accesses are collected processor-major, so each location's slice is
// made of contiguous same-CPU segments (one per processor, po-ascending
// within), and pairing a segment only against later segments skips
// same-processor pairs (always po-ordered) wholesale.
//
// Against one later segment T, an access x needs no per-pair ordering
// tests: program order makes ordering monotone along T, so the events of
// T that reach x form a PREFIX of T (y⇝x implies y′⇝y⇝x for every
// earlier y′), the events x reaches form a SUFFIX (x⇝y implies x⇝y′ for
// every later y′), and the hb1-unordered partners of x are exactly the
// interval between them. Both boundaries are monotone non-decreasing as
// x advances through its own segment (later x is reached by more of T
// and reaches less of it), so one two-pointer pass spends O(|S|+|T|)
// amortized reachability queries per segment pair — not O(|S|·|T|) — and
// the interval's pairs are emitted with no ordering query at all. Each
// query that does run still goes through the reachability layer's O(1)
// component-id/topological-level pre-checks before touching (or, in lazy
// mode, materializing) a closure row.
//
// Locations are fanned across a bounded worker pool (the campaign's
// semaphore pattern, here an atomic work index). Each worker appends
// flat (pair, location, data) records; partials are concatenated and
// sorted deterministically, so the Analysis is byte-identical to the
// sequential path for every worker count.
func (a *Analysis) findRaces() {
	// Keyed by location, sparse: traces legitimately declare large address
	// spaces while touching few locations, and the analyzer must not
	// allocate proportionally to the declared size (robustness against
	// decoded input).
	perLoc := map[int][]access{}
	addAccess := func(loc int, acc access) {
		perLoc[loc] = append(perLoc[loc], acc)
	}
	total := 0
	for c, evs := range a.Trace.PerCPU {
		for i, ev := range evs {
			id := EventID(a.base[c] + i)
			switch ev.Kind {
			case trace.Comp:
				// A location both read and written contributes a single
				// write access (the write subsumes the read for conflict
				// purposes).
				ev.Writes.Range(func(loc int) bool {
					addAccess(loc, access{ev: id, cpu: c, write: true})
					total++
					return true
				})
				ev.Reads.Range(func(loc int) bool {
					if !ev.Writes.Contains(loc) {
						addAccess(loc, access{ev: id, cpu: c, write: false})
						total++
					}
					return true
				})
			case trace.Sync:
				addAccess(int(ev.Loc), access{
					ev: id, cpu: c, write: ev.IsWriteSync(), sync: true,
				})
				total++
			}
		}
	}

	locs := make([]int, 0, len(perLoc))
	for loc := range perLoc {
		locs = append(locs, loc)
	}
	slices.Sort(locs)

	workers := a.Options.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(locs) {
		workers = len(locs)
	}
	if workers < 2 || total < sweepThreshold {
		workers = 1
	}
	a.raceWorkers = workers

	// Workers pull locations off a shared index; hot locations therefore
	// spread across the pool instead of serializing behind one worker.
	// Each worker appends flat (pair, location, data) records — no maps,
	// no per-race allocations on the hot path; weak executions routinely
	// produce tens of thousands of synchronization races from contending
	// spin loops, and pointer-chasing accumulation dominated the old
	// search. Worker 0's record buffer comes from the arena (when one is
	// supplied) so repeated sequential analyses reuse it.
	var next atomic.Int64
	type segment struct {
		start, end int // accs[start:end], one CPU
		writes     int // write accesses within
	}
	sweep := func(buf []pairRec) ([]pairRec, int64) {
		recs := buf[:0]
		var cand int64
		var segs []segment // reused across this worker's locations
		for {
			i := int(next.Add(1)) - 1
			if i >= len(locs) {
				return recs, cand
			}
			loc := locs[i]
			accs := perLoc[loc]
			segs = segs[:0]
			for s := 0; s < len(accs); {
				e := s + 1
				for e < len(accs) && accs[e].cpu == accs[s].cpu {
					e++
				}
				w := 0
				for _, x := range accs[s:e] {
					if x.write {
						w++
					}
				}
				segs = append(segs, segment{start: s, end: e, writes: w})
				s = e
			}
			for si, S := range segs {
				for _, T := range segs[si+1:] {
					if S.writes == 0 && T.writes == 0 {
						continue // read-only × read-only: no conflicts at all
					}
					// Conflicting pairs in S×T = all pairs minus read-read
					// pairs, counted wholesale (the quantity the per-pair
					// loop used to tally one test at a time).
					sn, tn := S.end-S.start, T.end-T.start
					cand += int64(sn*tn - (sn-S.writes)*(tn-T.writes))
					// p: end of T's prefix reaching x. q: start of T's
					// suffix reached by x. Both only move forward while x
					// advances; [p,q) is x's hb1-unordered interval of T.
					p, q := T.start, T.start
					for xi := S.start; xi < S.end; xi++ {
						x := accs[xi]
						for p < T.end && a.HBReach.Reaches(int(accs[p].ev), int(x.ev)) {
							p++
						}
						if q < p {
							// On an hb1 cycle the prefix and suffix can
							// overlap; the unordered interval is empty there.
							q = p
						}
						for q < T.end && !a.HBReach.Reaches(int(x.ev), int(accs[q].ev)) {
							q++
						}
						for yi := p; yi < q; yi++ {
							y := accs[yi]
							if !x.write && !y.write {
								continue // two reads never conflict
							}
							lo, hi := x.ev, y.ev
							if lo > hi {
								lo, hi = hi, lo
							}
							recs = append(recs, pairRec{
								key:  pairKey(lo, hi),
								loc:  loc,
								data: !x.sync || !y.sync,
							})
						}
					}
				}
			}
		}
	}

	arena := a.Options.Arena
	partials := make([][]pairRec, workers)
	counts := make([]int64, workers)
	if workers == 1 {
		var buf []pairRec
		if arena != nil {
			buf = arena.recs
		}
		partials[0], counts[0] = sweep(buf)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var buf []pairRec
				if w == 0 && arena != nil {
					buf = arena.recs
				}
				partials[w], counts[w] = sweep(buf)
			}(w)
		}
		wg.Wait()
	}

	// Deterministic merge: concatenate the partials and sort by
	// (pair, location) — a total order, since each (event pair, location)
	// combination is produced at most once — so the record sequence, and
	// with it the Analysis, is byte-identical for every worker count and
	// work-stealing schedule. The sequential path sorts its single
	// partial in place (no copy); the records are dead after the coalesce
	// below, so the buffer returns to the arena either way.
	var recs []pairRec
	if workers == 1 {
		recs = partials[0]
	} else {
		nRecs := 0
		for _, p := range partials {
			nRecs += len(p)
		}
		recs = make([]pairRec, 0, nRecs)
		for _, p := range partials {
			recs = append(recs, p...)
		}
	}
	if arena != nil {
		arena.recs = partials[0]
	}
	for _, c := range counts {
		a.candidatePairs += c
	}
	recs = sortRecsByKey(recs, arena)

	// Coalesce sorted runs into races. Packed keys order exactly like the
	// (A, B) lexicographic order the report promises; within a run the
	// record order is irrelevant — location-set insertion and the data
	// flag are commutative, and slab sizing takes the run's max location.
	// Race structs, their location sets, and the sets' backing words come
	// from three slab allocations sized in a counting pass — not one
	// allocation per race.
	nRaces, totalWords := 0, 0
	for i := 0; i < len(recs); {
		j, maxLoc := i+1, recs[i].loc
		for j < len(recs) && recs[j].key == recs[i].key {
			if recs[j].loc > maxLoc {
				maxLoc = recs[j].loc
			}
			j++
		}
		nRaces++
		totalWords += maxLoc/64 + 1
		i = j
	}
	slab := make([]uint64, totalWords)
	sets := make([]bitset.Set, nRaces)
	a.Races = make([]Race, nRaces)
	ri := 0
	for i := 0; i < len(recs); {
		j, maxLoc := i+1, recs[i].loc
		for j < len(recs) && recs[j].key == recs[i].key {
			if recs[j].loc > maxLoc {
				maxLoc = recs[j].loc
			}
			j++
		}
		w := maxLoc/64 + 1
		sets[ri] = *bitset.Wrap(slab[:w:w])
		slab = slab[w:]
		r := &a.Races[ri]
		r.A = EventID(recs[i].key >> 32)
		r.B = EventID(recs[i].key & 0xffffffff)
		r.Locs = &sets[ri]
		for _, rec := range recs[i:j] {
			r.Locs.Add(rec.loc)
			if rec.data {
				r.Data = true
			}
		}
		if r.Data {
			a.DataRaces = append(a.DataRaces, ri)
		}
		ri++
		i = j
	}
}

// sortRecsByKey sorts the sweep's records by packed pair key — the only
// order the coalesce needs — with an LSD radix sort over 11-bit digits.
// Digits that are zero in every key are skipped wholesale: event ids are
// dense, so a trace with n events uses only ~2·log₂(n) key bits and the
// usual record sort is two or three counting passes, not a comparison
// sort of 24-byte structs. Ping-pong and counting buffers come from the
// arena. The returned slice aliases either recs or the arena's buffer.
func sortRecsByKey(recs []pairRec, ar *Arena) []pairRec {
	const digitBits = 11
	const radix = 1 << digitBits
	if len(recs) < 2*radix {
		// Counting passes would be dominated by sweeping the count
		// array; a comparison sort wins on small traces.
		slices.SortFunc(recs, func(x, y pairRec) int {
			if x.key < y.key {
				return -1
			} else if x.key > y.key {
				return 1
			}
			return 0
		})
		return recs
	}
	var orKeys uint64
	for i := range recs {
		orKeys |= recs[i].key
	}
	if cap(ar.recsTmp) < len(recs) {
		ar.recsTmp = make([]pairRec, len(recs))
	}
	if cap(ar.digits) < radix {
		ar.digits = make([]int32, radix)
	}
	count := ar.digits[:radix]
	src, dst := recs, ar.recsTmp[:len(recs)]
	for shift := 0; shift < 64; shift += digitBits {
		if (orKeys>>shift)&(radix-1) == 0 {
			continue // this digit is zero in every key: identity pass
		}
		for d := range count {
			count[d] = 0
		}
		for i := range src {
			count[(src[i].key>>shift)&(radix-1)]++
		}
		sum := int32(0)
		for d := range count {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for i := range src {
			d := (src[i].key >> shift) & (radix - 1)
			dst[count[d]] = src[i]
			count[d]++
		}
		src, dst = dst, src
	}
	return src
}

// pairRec is one (conflicting unordered pair, location) observation from
// the sweep — the flat intermediate the workers produce and the merge
// sorts and coalesces.
type pairRec struct {
	key  uint64 // packed (A, B)
	loc  int
	data bool // at least one side is a computation access
}

// buildAugmented clones the hb1 graph and adds a doubly-directed edge for
// every race (§4.2). All races contribute edges — the affects relation of
// Definition 3.3 is defined over races generally — but only data races
// form partitions.
//
// Dedup is O(1) per edge: findRaces emits races sorted by (A, B), so a
// duplicate pair would be adjacent and one comparison catches it. The old
// AddEdgeUnique scan was O(out-degree) per insertion — quadratic on
// events with many races. (Races never coincide with an hb1 edge: an
// hb1-ordered pair is not a race.)
func (a *Analysis) buildAugmented() {
	g := a.HB.Clone()
	prev := uint64(1<<64 - 1)
	for _, r := range a.Races {
		key := pairKey(r.A, r.B)
		if key == prev {
			continue
		}
		prev = key
		g.AddEdge(int(r.A), int(r.B))
		g.AddEdge(int(r.B), int(r.A))
	}
	a.Aug = g
}

// buildImplicitAug computes the partition structure of the augmented
// graph G′ without materializing G′: Tarjan runs over the implicit
// adjacency hb1 ⊕ extras, where extras[u] keeps, per partner CPU, only
// u's po-MINIMAL race partner on that CPU.
//
// Collapsing the race edges this way preserves G′'s transitive closure
// exactly. A dropped edge u→v (v racing u on CPU d) is simulated by the
// kept edge u→m — m the minimal partner of u on d, so m ≤ v — followed
// by the program-order chain m⇝v inside d's event stream; the reverse
// edge v→u is simulated symmetrically through v's minimal partner on u's
// CPU. Kept edges are a subset of the dropped set's closure, so the two
// closures — and with them the SCCs (as node sets), the condensation
// reachability, the partitions, and the first-partition flags of
// Theorems 4.1/4.2 — coincide with the explicit path's. Only raw
// component IDs may differ (Tarjan numbering follows adjacency order).
//
// Entry count is bounded by racy-nodes × (CPUs−1), versus two edges per
// race pair — the ≥10x detect.aug_edges drop on race-heavy traces.
// Partition ordering is answered by memoized per-source DFS over the
// condensation (graph.CondReach), never a full closure.
func (a *Analysis) buildImplicitAug() {
	ar := a.Options.Arena
	if ar == nil {
		ar = &Arena{}
	}
	n := a.NumEvents
	if cap(ar.cpuOf) < n {
		ar.cpuOf = make([]int32, n)
	}
	cpuOf := ar.cpuOf[:n]
	for c, evs := range a.Trace.PerCPU {
		base := a.base[c]
		for i := range evs {
			cpuOf[base+i] = int32(c)
		}
	}
	// Reset only the nodes the previous analysis touched, keeping the
	// per-node backing arrays. ar.extras keeps its high-water length so
	// stale touched entries always index validly.
	for _, u := range ar.touched {
		ar.extras[u] = ar.extras[u][:0]
	}
	ar.touched = ar.touched[:0]
	if len(ar.extras) < n {
		grown := make([][]int32, n)
		copy(grown, ar.extras)
		ar.extras = grown
	}
	extras := ar.extras[:n]

	var nEntries int64
	addPartner := func(u, v EventID) {
		lst := extras[u]
		vc := cpuOf[v]
		for _, w := range lst {
			if cpuOf[w] == vc {
				return // already hold the po-minimal partner on v's CPU
			}
		}
		if len(lst) == 0 {
			ar.touched = append(ar.touched, int32(u))
		}
		extras[u] = append(lst, int32(v))
		nEntries++
	}
	// Races are sorted by (A, B) and deduplicated, so a node's partners
	// arrive in ascending event order (B-side partners, all below the
	// node, scan before its A-side partners, all above) — the first
	// partner seen per CPU is the minimal one.
	for _, r := range a.Races {
		addPartner(r.A, r.B)
		addPartner(r.B, r.A)
	}

	scc := graph.StronglyConnectedOverlay(a.HB, extras, &ar.scratch)
	a.AugSCC = scc
	dag := graph.CondensationOverlay(a.HB, extras, scc, &ar.scratch)
	a.augCond = graph.NewCondReach(dag, scc)
	a.augEdges = nEntries
}

// augCompReaches answers component-level G′ reachability through
// whichever oracle the options built: the explicit closure, or the
// implicit path's memoized condensation DFS.
func (a *Analysis) augCompReaches(c1, c2 int) bool {
	if a.AugReach != nil {
		return a.AugReach.ComponentReaches(c1, c2)
	}
	return a.augCond.ComponentReaches(c1, c2)
}

// augReaches answers event-level G′ reachability (Definition 3.3's
// affects paths).
func (a *Analysis) augReaches(u, v int) bool {
	if a.AugReach != nil {
		return a.AugReach.Reaches(u, v)
	}
	return a.augCond.Reaches(u, v)
}

// partition groups the data races by the SCCs of G′ and computes the first
// partitions under the partial order P of Definition 4.1.
func (a *Analysis) partition() {
	scc := a.AugSCC
	byComp := map[int]*Partition{}
	for _, ri := range a.DataRaces {
		r := a.Races[ri]
		// The doubly-directed race edge puts A and B on a common cycle, so
		// both ends are always in the same component.
		comp := scc.Comp[int(r.A)]
		p := byComp[comp]
		if p == nil {
			p = &Partition{Component: comp}
			byComp[comp] = p
		}
		p.Races = append(p.Races, ri)
	}
	for _, p := range byComp {
		seen := map[EventID]bool{}
		for _, ri := range p.Races {
			for _, id := range []EventID{a.Races[ri].A, a.Races[ri].B} {
				if !seen[id] {
					seen[id] = true
					p.Events = append(p.Events, id)
				}
			}
		}
		sort.Slice(p.Events, func(i, j int) bool { return p.Events[i] < p.Events[j] })
	}

	parts := make([]*Partition, 0, len(byComp))
	for _, p := range byComp {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Events[0] < parts[j].Events[0] })

	// A partition is first iff no OTHER data-race partition reaches it.
	for i, p := range parts {
		p.First = true
		for j, q := range parts {
			if i == j {
				continue
			}
			if a.augCompReaches(q.Component, p.Component) {
				p.First = false
				break
			}
		}
	}
	a.Partitions = make([]Partition, len(parts))
	for i, p := range parts {
		a.Partitions[i] = *p
		if p.First {
			a.FirstPartitions = append(a.FirstPartitions, i)
		}
	}
}

// PartitionPrecedes reports whether partition i precedes partition j in
// the order P: a path exists in G′ from an event of i to an event of j.
func (a *Analysis) PartitionPrecedes(i, j int) bool {
	return a.augCompReaches(a.Partitions[i].Component, a.Partitions[j].Component)
}

// LowerLevelRace describes one lower-level (operation-granularity) race
// candidate underlying a higher-level race, reconstructed from the trace's
// program-counter provenance. It identifies operations statically, the way
// the paper identifies them (§2.1): by processor, program point, and
// location.
type LowerLevelRace struct {
	Loc  program.Addr
	X, Y sim.StaticOp
	// XWrites/YWrites report each side's access mode on Loc.
	XWrites, YWrites bool
}

// Canonical returns the race with sides ordered deterministically.
func (l LowerLevelRace) Canonical() LowerLevelRace {
	if l.X.CPU > l.Y.CPU || (l.X.CPU == l.Y.CPU && l.X.PC > l.Y.PC) {
		l.X, l.Y = l.Y, l.X
		l.XWrites, l.YWrites = l.YWrites, l.XWrites
	}
	return l
}

// String renders the lower-level race.
func (l LowerLevelRace) String() string {
	mode := func(w bool) string {
		if w {
			return "W"
		}
		return "R"
	}
	return fmt.Sprintf("⟨%s:%s, %s:%s⟩@%d",
		mode(l.XWrites), l.X, mode(l.YWrites), l.Y, l.Loc)
}

// LowerLevel expands a higher-level race into its lower-level candidates,
// one per conflicting (location, access-mode) combination.
func (a *Analysis) LowerLevel(r Race) []LowerLevelRace {
	var out []LowerLevelRace
	evA, evB := a.Event(r.A), a.Event(r.B)
	refA, refB := a.Ref(r.A), a.Ref(r.B)
	r.Locs.Range(func(loc int) bool {
		addr := program.Addr(loc)
		for _, xa := range sideAccesses(evA, refA.CPU, addr) {
			for _, ya := range sideAccesses(evB, refB.CPU, addr) {
				if !xa.writes && !ya.writes {
					continue
				}
				out = append(out, LowerLevelRace{
					Loc:     addr,
					X:       sim.StaticOp{CPU: refA.CPU, PC: xa.pc, Loc: addr},
					Y:       sim.StaticOp{CPU: refB.CPU, PC: ya.pc, Loc: addr},
					XWrites: xa.writes, YWrites: ya.writes,
				}.Canonical())
			}
		}
		return true
	})
	return out
}

type sideAccess struct {
	pc     int
	writes bool
}

// sideAccesses lists an event's accesses to loc with their PC provenance.
func sideAccesses(ev *trace.Event, cpu int, loc program.Addr) []sideAccess {
	var out []sideAccess
	switch ev.Kind {
	case trace.Comp:
		if ev.Writes.Contains(int(loc)) {
			out = append(out, sideAccess{pc: ev.WritePC[loc], writes: true})
		}
		if ev.Reads.Contains(int(loc)) {
			out = append(out, sideAccess{pc: ev.ReadPC[loc], writes: false})
		}
	case trace.Sync:
		if ev.Loc == loc {
			out = append(out, sideAccess{pc: ev.PC, writes: ev.IsWriteSync()})
		}
	}
	return out
}

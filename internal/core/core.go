// Package core implements the paper's contribution: post-mortem dynamic
// data race detection from an execution trace, valid on weak memory
// systems that satisfy Condition 3.4.
//
// Given a trace (per-processor event streams with synchronization pairing
// and READ/WRITE access sets — internal/trace), the detector:
//
//  1. builds the happens-before-1 graph: one node per event, edges for
//     program order (po) and paired release→acquire synchronization order
//     (so1); hb1 = (po ∪ so1)+ (Definitions 2.2–2.3);
//  2. finds the higher-level races: conflicting events not ordered by hb1
//     (Definition 2.4 lifted to events, §4.1) — remembering that hb1 may
//     contain cycles in a weak execution, so reachability runs on the SCC
//     condensation;
//  3. builds the augmented graph G′ by adding a doubly-directed edge
//     between the two events of every race, so that a path A ⇝ C in G′
//     captures "race 〈A,B〉 affects race 〈C,D〉" (Definition 3.3, §4.2);
//  4. partitions the data races by the strongly connected components of G′
//     and orders partitions by reachability (Definition 4.1);
//  5. reports the FIRST partitions: those not preceded by any other
//     partition containing a data race. By Theorem 4.1 there are no first
//     partitions iff the execution was race-free (hence sequentially
//     consistent, by Condition 3.4(1)); by Theorem 4.2 every first
//     partition contains at least one race that also occurs in a
//     sequentially consistent execution of the program.
package core

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"weakrace/internal/bitset"
	"weakrace/internal/graph"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/trace"
)

// EventID is a dense global index over all events of a trace
// (processor-major: all of P1's events, then P2's, ...).
type EventID int

// Options configures an analysis.
type Options struct {
	// Pairing selects which synchronization writes count as releases when
	// constructing so1. The default, ConservativePairing, is the paper's
	// classification (a Test&Set's write never pairs). LiberalPairing is
	// sound on WO/DRF0-style hardware and yields fewer races.
	Pairing memmodel.PairingPolicy
	// SkipValidate skips trace validation (for traces already validated,
	// e.g. straight from the decoder, on hot benchmark paths).
	SkipValidate bool
	// Workers bounds the parallelism of the per-location race search.
	// 0 uses GOMAXPROCS; 1 forces the sequential path. The Analysis is
	// byte-identical for every worker count: workers produce commutative
	// partial results (per-pair location sets and data flags) that are
	// merged and then sorted deterministically.
	Workers int
}

// Race is a higher-level race between two events (§4.1): A and B access a
// common location that at least one writes, and no hb1 path connects them.
type Race struct {
	// A and B are the racing events, A < B.
	A, B EventID
	// Locs is the set of locations on which A and B conflict.
	Locs *bitset.Set
	// Data reports whether this is a data race: at least one side is a
	// computation event (all of whose accesses are data operations). A
	// race between two synchronization events is a synchronization race
	// and is never reported, but it still contributes edges to G′.
	Data bool
}

// Partition is a set of data races whose events share one strongly
// connected component of the augmented graph G′ (§4.2).
type Partition struct {
	// Component is the SCC id in the augmented graph.
	Component int
	// Races indexes Analysis.Races, listing this partition's data races.
	Races []int
	// Events lists the distinct events involved, sorted.
	Events []EventID
	// First reports whether no other partition containing a data race
	// precedes this one in the partial order P (Definition 4.1): the
	// partition is one the detector reports to the programmer.
	First bool
}

// Analysis is the complete result of a post-mortem detection run.
type Analysis struct {
	// Trace is the input trace.
	Trace *trace.Trace
	// Options echoes the options used.
	Options Options

	// NumEvents is the number of events (hb1 graph nodes).
	NumEvents int

	// HB is the happens-before-1 graph (po ∪ so1 edges).
	HB *graph.Digraph
	// HBReach answers hb1 ordering queries.
	HBReach *graph.Reachability
	// Aug is the augmented graph G′: HB plus a doubly-directed edge per
	// race.
	Aug *graph.Digraph
	// AugReach answers affect-ordering queries on G′.
	AugReach *graph.Reachability

	// Races lists every race (data and synchronization), sorted by (A, B).
	Races []Race
	// DataRaces indexes Races, listing the data races.
	DataRaces []int
	// Partitions lists the partitions containing at least one data race,
	// in a deterministic order (by smallest event id).
	Partitions []Partition
	// FirstPartitions indexes Partitions, listing the first partitions —
	// the detector's report.
	FirstPartitions []int

	base []int // base[c] = EventID of processor c's first event

	candidatePairs int64 // conflicting cross-CPU pairs tested by findRaces
	raceWorkers    int   // worker count the race search actually used
}

// ID returns the EventID for an event reference.
func (a *Analysis) ID(ref trace.EventRef) EventID {
	return EventID(a.base[ref.CPU] + ref.Index)
}

// Ref returns the event reference for an EventID.
func (a *Analysis) Ref(id EventID) trace.EventRef {
	c := sort.Search(len(a.base), func(i int) bool { return a.base[i] > int(id) }) - 1
	return trace.EventRef{CPU: c, Index: int(id) - a.base[c]}
}

// Event returns the trace event with the given id.
func (a *Analysis) Event(id EventID) *trace.Event {
	return a.Trace.Event(a.Ref(id))
}

// RaceFree reports whether the execution exhibited no data races. On
// hardware satisfying Condition 3.4(1) this certifies that the execution
// was sequentially consistent.
func (a *Analysis) RaceFree() bool { return len(a.DataRaces) == 0 }

// Analyze runs the full post-mortem detection pipeline on a trace.
func Analyze(t *trace.Trace, opts Options) (*Analysis, error) {
	reg := telemetry.Default()
	defer reg.StartSpan("detect.analyze").End()
	if !opts.SkipValidate {
		sp := reg.StartSpan("detect.validate")
		err := t.Validate()
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	a := &Analysis{Trace: t, Options: opts}

	// Dense event numbering, processor-major.
	a.base = make([]int, t.NumCPUs)
	n := 0
	for c, evs := range t.PerCPU {
		a.base[c] = n
		n += len(evs)
	}
	a.NumEvents = n

	sp := reg.StartSpan("detect.build_hb")
	a.buildHB()
	sp.End()
	sp = reg.StartSpan("detect.hb_reach")
	// Lazy reachability: the race search's pre-checks (component id,
	// topological level) answer most ordering queries without closure
	// rows, so sparse-race traces never materialize the full O(C²/64)
	// closure of either graph.
	a.HBReach = graph.NewReachabilityLazy(a.HB)
	sp.End()
	sp = reg.StartSpan("detect.find_races")
	a.findRaces()
	sp.End()
	sp = reg.StartSpan("detect.augment")
	a.buildAugmented()
	a.AugReach = graph.NewReachabilityLazy(a.Aug)
	sp.End()
	sp = reg.StartSpan("detect.partition")
	a.partition()
	sp.End()
	a.flushTelemetry(reg)
	return a, nil
}

// flushTelemetry batches the analysis's structural counters into the
// registry — the event/edge/race/SCC scaling numbers every perf PR
// reports against.
func (a *Analysis) flushTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.Counter("detect.analyses").Inc()
	reg.Counter("detect.events").Add(int64(a.NumEvents))
	reg.Counter("detect.hb_edges").Add(int64(a.HB.M()))
	reg.Counter("detect.aug_edges").Add(int64(a.Aug.M()))
	reg.Counter("detect.races").Add(int64(len(a.Races)))
	reg.Counter("detect.data_races").Add(int64(len(a.DataRaces)))
	reg.Counter("detect.partitions").Add(int64(len(a.Partitions)))
	reg.Counter("detect.first_partitions").Add(int64(len(a.FirstPartitions)))
	reg.Counter("detect.race_candidates").Add(a.candidatePairs)
	reg.Gauge("detect.find_races.workers").SetMax(int64(a.raceWorkers))
	scc := a.AugReach.SCC()
	reg.Counter("detect.scc.components").Add(int64(scc.NumComponents()))
	// detect.scc.max_size is the largest SCC of the AUGMENTED graph G′
	// per analysis — the partition-structure view. The graph layer's
	// graph.scc.max_size gauge instead tracks the largest SCC across
	// every reachability build (hb1 and augmented). Both reuse the size
	// Tarjan tracked while closing components; nothing rescans Members.
	reg.Gauge("detect.scc.max_size").SetMax(int64(scc.MaxSize()))
}

// buildHB constructs the happens-before-1 graph: po edges between
// consecutive events of each processor, so1 edges from each paired release
// to its acquire (Definition 2.2), subject to the pairing policy.
func (a *Analysis) buildHB() {
	g := graph.New(a.NumEvents)
	for c, evs := range a.Trace.PerCPU {
		for i := range evs {
			if i+1 < len(evs) {
				g.AddEdge(a.base[c]+i, a.base[c]+i+1)
			}
			ev := evs[i]
			if ev.Kind == trace.Sync && ev.Role == memmodel.RoleAcquire &&
				ev.Observed.Valid() && a.Options.Pairing.CanPair(ev.ObservedRole) {
				g.AddEdge(int(a.ID(ev.Observed)), a.base[c]+i)
			}
		}
	}
	a.HB = g
}

// access is one (event, location) access used during race detection.
type access struct {
	ev    EventID
	cpu   int
	write bool
	sync  bool
}

// pairKey packs a (lo, hi) event pair into one comparable, cheaply
// sortable word. Event ids are dense indexes, far below 2³².
func pairKey(lo, hi EventID) uint64 { return uint64(lo)<<32 | uint64(hi) }

// sweepThreshold is the access count below which the race search stays
// sequential: fanning out goroutines costs more than the sweep itself on
// small traces. The parallel and sequential paths produce identical
// output, so the cutoff is purely a scheduling decision.
const sweepThreshold = 2048

// findRaces detects all races: conflicting, hb1-unordered event pairs.
//
// The search is a per-location sweep over CPU-bucketed accesses:
// accesses are collected processor-major, so each location's slice is
// made of contiguous same-CPU segments, and pairing a segment only
// against later segments skips same-processor pairs (always po-ordered)
// wholesale instead of testing and discarding each one. The surviving
// conflicting pairs are filtered by the reachability layer's O(1)
// component-id/topological-level pre-checks before any bit-set closure
// row is consulted (or, in lazy mode, materialized).
//
// Locations are fanned across a bounded worker pool (the campaign's
// semaphore pattern, here an atomic work index). Each worker accumulates
// a partial map of races keyed by packed event pair; partials merge by
// location-set union and data-flag OR — both commutative — and the final
// sort over packed keys makes the Analysis byte-identical to the
// sequential path for every worker count.
func (a *Analysis) findRaces() {
	// Keyed by location, sparse: traces legitimately declare large address
	// spaces while touching few locations, and the analyzer must not
	// allocate proportionally to the declared size (robustness against
	// decoded input).
	perLoc := map[int][]access{}
	addAccess := func(loc int, acc access) {
		perLoc[loc] = append(perLoc[loc], acc)
	}
	total := 0
	for c, evs := range a.Trace.PerCPU {
		for i, ev := range evs {
			id := EventID(a.base[c] + i)
			switch ev.Kind {
			case trace.Comp:
				// A location both read and written contributes a single
				// write access (the write subsumes the read for conflict
				// purposes).
				ev.Writes.Range(func(loc int) bool {
					addAccess(loc, access{ev: id, cpu: c, write: true})
					total++
					return true
				})
				ev.Reads.Range(func(loc int) bool {
					if !ev.Writes.Contains(loc) {
						addAccess(loc, access{ev: id, cpu: c, write: false})
						total++
					}
					return true
				})
			case trace.Sync:
				addAccess(int(ev.Loc), access{
					ev: id, cpu: c, write: ev.IsWriteSync(), sync: true,
				})
				total++
			}
		}
	}

	locs := make([]int, 0, len(perLoc))
	for loc := range perLoc {
		locs = append(locs, loc)
	}
	slices.Sort(locs)

	workers := a.Options.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(locs) {
		workers = len(locs)
	}
	if workers < 2 || total < sweepThreshold {
		workers = 1
	}
	a.raceWorkers = workers

	// Workers pull locations off a shared index; hot locations therefore
	// spread across the pool instead of serializing behind one worker.
	// Each worker appends flat (pair, location, data) records — no maps,
	// no per-race allocations on the hot path; weak executions routinely
	// produce tens of thousands of synchronization races from contending
	// spin loops, and pointer-chasing accumulation dominated the old
	// search.
	var next atomic.Int64
	sweep := func() ([]pairRec, int64) {
		var recs []pairRec
		var cand int64
		for {
			i := int(next.Add(1)) - 1
			if i >= len(locs) {
				return recs, cand
			}
			loc := locs[i]
			accs := perLoc[loc]
			for s := 0; s < len(accs); {
				e := s + 1
				for e < len(accs) && accs[e].cpu == accs[s].cpu {
					e++
				}
				// Segment [s,e) is one CPU; pair it against every later
				// segment's accesses only.
				for _, x := range accs[s:e] {
					for _, y := range accs[e:] {
						if !x.write && !y.write {
							continue // two reads never conflict
						}
						cand++
						if a.HBReach.Ordered(int(x.ev), int(y.ev)) {
							continue
						}
						lo, hi := x.ev, y.ev
						if lo > hi {
							lo, hi = hi, lo
						}
						recs = append(recs, pairRec{
							key:  pairKey(lo, hi),
							loc:  loc,
							data: !x.sync || !y.sync,
						})
					}
				}
				s = e
			}
		}
	}

	partials := make([][]pairRec, workers)
	counts := make([]int64, workers)
	if workers == 1 {
		partials[0], counts[0] = sweep()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				partials[w], counts[w] = sweep()
			}(w)
		}
		wg.Wait()
	}

	// Deterministic merge: concatenate the partials and sort by
	// (pair, location) — a total order, since each (event pair, location)
	// combination is produced at most once — so the record sequence, and
	// with it the Analysis, is byte-identical for every worker count and
	// work-stealing schedule.
	nRecs := 0
	for _, p := range partials {
		nRecs += len(p)
	}
	recs := make([]pairRec, 0, nRecs)
	for _, p := range partials {
		recs = append(recs, p...)
	}
	for _, c := range counts {
		a.candidatePairs += c
	}
	slices.SortFunc(recs, func(x, y pairRec) int {
		if x.key != y.key {
			if x.key < y.key {
				return -1
			}
			return 1
		}
		return x.loc - y.loc
	})

	// Coalesce sorted runs into races. Packed keys order exactly like the
	// (A, B) lexicographic order the report promises. Race structs, their
	// location sets, and the sets' backing words come from three slab
	// allocations sized in a counting pass — not one allocation per race.
	nRaces, totalWords := 0, 0
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].key == recs[i].key {
			j++
		}
		nRaces++
		totalWords += recs[j-1].loc/64 + 1 // locs ascend within a run
		i = j
	}
	slab := make([]uint64, totalWords)
	sets := make([]bitset.Set, nRaces)
	a.Races = make([]Race, nRaces)
	ri := 0
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].key == recs[i].key {
			j++
		}
		w := recs[j-1].loc/64 + 1
		sets[ri] = *bitset.Wrap(slab[:w:w])
		slab = slab[w:]
		r := &a.Races[ri]
		r.A = EventID(recs[i].key >> 32)
		r.B = EventID(recs[i].key & 0xffffffff)
		r.Locs = &sets[ri]
		for _, rec := range recs[i:j] {
			r.Locs.Add(rec.loc)
			if rec.data {
				r.Data = true
			}
		}
		if r.Data {
			a.DataRaces = append(a.DataRaces, ri)
		}
		ri++
		i = j
	}
}

// pairRec is one (conflicting unordered pair, location) observation from
// the sweep — the flat intermediate the workers produce and the merge
// sorts and coalesces.
type pairRec struct {
	key  uint64 // packed (A, B)
	loc  int
	data bool // at least one side is a computation access
}

// buildAugmented clones the hb1 graph and adds a doubly-directed edge for
// every race (§4.2). All races contribute edges — the affects relation of
// Definition 3.3 is defined over races generally — but only data races
// form partitions.
//
// Dedup is O(1) per edge: findRaces emits races sorted by (A, B), so a
// duplicate pair would be adjacent and one comparison catches it. The old
// AddEdgeUnique scan was O(out-degree) per insertion — quadratic on
// events with many races. (Races never coincide with an hb1 edge: an
// hb1-ordered pair is not a race.)
func (a *Analysis) buildAugmented() {
	g := a.HB.Clone()
	prev := uint64(1<<64 - 1)
	for _, r := range a.Races {
		key := pairKey(r.A, r.B)
		if key == prev {
			continue
		}
		prev = key
		g.AddEdge(int(r.A), int(r.B))
		g.AddEdge(int(r.B), int(r.A))
	}
	a.Aug = g
}

// partition groups the data races by the SCCs of G′ and computes the first
// partitions under the partial order P of Definition 4.1.
func (a *Analysis) partition() {
	scc := a.AugReach.SCC()
	byComp := map[int]*Partition{}
	for _, ri := range a.DataRaces {
		r := a.Races[ri]
		// The doubly-directed race edge puts A and B on a common cycle, so
		// both ends are always in the same component.
		comp := scc.Comp[int(r.A)]
		p := byComp[comp]
		if p == nil {
			p = &Partition{Component: comp}
			byComp[comp] = p
		}
		p.Races = append(p.Races, ri)
	}
	for _, p := range byComp {
		seen := map[EventID]bool{}
		for _, ri := range p.Races {
			for _, id := range []EventID{a.Races[ri].A, a.Races[ri].B} {
				if !seen[id] {
					seen[id] = true
					p.Events = append(p.Events, id)
				}
			}
		}
		sort.Slice(p.Events, func(i, j int) bool { return p.Events[i] < p.Events[j] })
	}

	parts := make([]*Partition, 0, len(byComp))
	for _, p := range byComp {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Events[0] < parts[j].Events[0] })

	// A partition is first iff no OTHER data-race partition reaches it.
	for i, p := range parts {
		p.First = true
		for j, q := range parts {
			if i == j {
				continue
			}
			if a.AugReach.ComponentReaches(q.Component, p.Component) {
				p.First = false
				break
			}
		}
	}
	a.Partitions = make([]Partition, len(parts))
	for i, p := range parts {
		a.Partitions[i] = *p
		if p.First {
			a.FirstPartitions = append(a.FirstPartitions, i)
		}
	}
}

// PartitionPrecedes reports whether partition i precedes partition j in
// the order P: a path exists in G′ from an event of i to an event of j.
func (a *Analysis) PartitionPrecedes(i, j int) bool {
	return a.AugReach.ComponentReaches(a.Partitions[i].Component, a.Partitions[j].Component)
}

// LowerLevelRace describes one lower-level (operation-granularity) race
// candidate underlying a higher-level race, reconstructed from the trace's
// program-counter provenance. It identifies operations statically, the way
// the paper identifies them (§2.1): by processor, program point, and
// location.
type LowerLevelRace struct {
	Loc  program.Addr
	X, Y sim.StaticOp
	// XWrites/YWrites report each side's access mode on Loc.
	XWrites, YWrites bool
}

// Canonical returns the race with sides ordered deterministically.
func (l LowerLevelRace) Canonical() LowerLevelRace {
	if l.X.CPU > l.Y.CPU || (l.X.CPU == l.Y.CPU && l.X.PC > l.Y.PC) {
		l.X, l.Y = l.Y, l.X
		l.XWrites, l.YWrites = l.YWrites, l.XWrites
	}
	return l
}

// String renders the lower-level race.
func (l LowerLevelRace) String() string {
	mode := func(w bool) string {
		if w {
			return "W"
		}
		return "R"
	}
	return fmt.Sprintf("⟨%s:%s, %s:%s⟩@%d",
		mode(l.XWrites), l.X, mode(l.YWrites), l.Y, l.Loc)
}

// LowerLevel expands a higher-level race into its lower-level candidates,
// one per conflicting (location, access-mode) combination.
func (a *Analysis) LowerLevel(r Race) []LowerLevelRace {
	var out []LowerLevelRace
	evA, evB := a.Event(r.A), a.Event(r.B)
	refA, refB := a.Ref(r.A), a.Ref(r.B)
	r.Locs.Range(func(loc int) bool {
		addr := program.Addr(loc)
		for _, xa := range sideAccesses(evA, refA.CPU, addr) {
			for _, ya := range sideAccesses(evB, refB.CPU, addr) {
				if !xa.writes && !ya.writes {
					continue
				}
				out = append(out, LowerLevelRace{
					Loc:     addr,
					X:       sim.StaticOp{CPU: refA.CPU, PC: xa.pc, Loc: addr},
					Y:       sim.StaticOp{CPU: refB.CPU, PC: ya.pc, Loc: addr},
					XWrites: xa.writes, YWrites: ya.writes,
				}.Canonical())
			}
		}
		return true
	})
	return out
}

type sideAccess struct {
	pc     int
	writes bool
}

// sideAccesses lists an event's accesses to loc with their PC provenance.
func sideAccesses(ev *trace.Event, cpu int, loc program.Addr) []sideAccess {
	var out []sideAccess
	switch ev.Kind {
	case trace.Comp:
		if ev.Writes.Contains(int(loc)) {
			out = append(out, sideAccess{pc: ev.WritePC[loc], writes: true})
		}
		if ev.Reads.Contains(int(loc)) {
			out = append(out, sideAccess{pc: ev.ReadPC[loc], writes: false})
		}
	case trace.Sync:
		if ev.Loc == loc {
			out = append(out, sideAccess{pc: ev.PC, writes: ev.IsWriteSync()})
		}
	}
	return out
}

// Package core implements the paper's contribution: post-mortem dynamic
// data race detection from an execution trace, valid on weak memory
// systems that satisfy Condition 3.4.
//
// Given a trace (per-processor event streams with synchronization pairing
// and READ/WRITE access sets — internal/trace), the detector:
//
//  1. builds the happens-before-1 graph: one node per event, edges for
//     program order (po) and paired release→acquire synchronization order
//     (so1); hb1 = (po ∪ so1)+ (Definitions 2.2–2.3);
//  2. finds the higher-level races: conflicting events not ordered by hb1
//     (Definition 2.4 lifted to events, §4.1) — remembering that hb1 may
//     contain cycles in a weak execution, so reachability runs on the SCC
//     condensation;
//  3. builds the augmented graph G′ by adding a doubly-directed edge
//     between the two events of every race, so that a path A ⇝ C in G′
//     captures "race 〈A,B〉 affects race 〈C,D〉" (Definition 3.3, §4.2);
//  4. partitions the data races by the strongly connected components of G′
//     and orders partitions by reachability (Definition 4.1);
//  5. reports the FIRST partitions: those not preceded by any other
//     partition containing a data race. By Theorem 4.1 there are no first
//     partitions iff the execution was race-free (hence sequentially
//     consistent, by Condition 3.4(1)); by Theorem 4.2 every first
//     partition contains at least one race that also occurs in a
//     sequentially consistent execution of the program.
package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"weakrace/internal/bitset"
	"weakrace/internal/graph"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/trace"
)

// EventID is a dense global index over all events of a trace
// (processor-major: all of P1's events, then P2's, ...).
type EventID int32

// Options configures an analysis.
type Options struct {
	// Pairing selects which synchronization writes count as releases when
	// constructing so1. The default, ConservativePairing, is the paper's
	// classification (a Test&Set's write never pairs). LiberalPairing is
	// sound on WO/DRF0-style hardware and yields fewer races.
	Pairing memmodel.PairingPolicy
	// SkipValidate skips trace validation (for traces already validated,
	// e.g. straight from the decoder, on hot benchmark paths).
	SkipValidate bool
	// Workers bounds the parallelism of every parallel pass inside one
	// analysis: the timestamp layer's span fill, the (location, segment-
	// pair)-sharded race sweep, and the sweep's merge, radix sort, and
	// coalesce. 0 uses GOMAXPROCS; 1 forces the sequential paths. The
	// Analysis is byte-identical for every worker count: workers produce
	// commutative partial results (per-pair location sets and data flags)
	// that are merged and then sorted deterministically, and the fill and
	// coalesce write disjoint ranges of slabs whose contents do not
	// depend on the schedule.
	Workers int
	// ExplicitClosure answers hb1 ordering queries with the lazy bitset
	// transitive closure (graph.NewReachabilityLazy, Analysis.HBReach) the
	// way PRs 2–3 did. The default (false) timestamps hb1 in one
	// topological pass instead (graph.Timestamps, Analysis.HBTime): every
	// ordering query becomes an O(1) per-CPU epoch compare and the race
	// sweep reads its interval boundaries straight from the clocks, with
	// no closure rows at all. The two paths produce byte-identical
	// analyses; the closure path is kept as the reference oracle for the
	// crosscheck harness and for callers that want HBReach for ad-hoc
	// component-level queries.
	ExplicitClosure bool
	// ExplicitAug materializes the augmented graph G′ the way §4.2 writes
	// it down: clone hb1, add a doubly-directed edge per race, build a
	// transitive closure over it (Analysis.Aug/AugReach). The default
	// (false) runs Tarjan over an implicit adjacency and answers partition
	// ordering with targeted condensation reachability — same Analysis,
	// none of the edge materialization. The explicit path is kept as the
	// reference implementation for the equivalence crosscheck and for
	// callers that want the closure for ad-hoc queries.
	ExplicitAug bool
	// Arena, when non-nil, supplies reusable per-Analyze scratch buffers
	// (race records, SCC stacks, race-partner lists). A campaign hands one
	// arena per in-flight seed down so repeated analyses stop re-allocating
	// the same megabyte-scale buffers. An Arena must not be shared by
	// concurrent Analyze calls.
	Arena *Arena
	// Flight, when non-nil, attaches a flight recorder: Analyze records
	// the trace's events, hb1 edges tagged by origin (po/so1), the G′
	// race-partner edges, the detection phases as a timeline, and the
	// races and partitions found (see internal/telemetry/export). Nil —
	// the default — records nothing and costs one pointer check per
	// phase; the gate mirrors telemetry's atomic Enabled discipline.
	Flight *export.Recorder
}

// Arena holds the per-Analyze scratch buffers that are NOT retained by
// the returned Analysis: the flat race-record buffers of the sweep, the
// implicit-G′ partner lists, and the graph layer's Tarjan and
// condensation scratch. Zero value is ready to use; see Options.Arena.
type Arena struct {
	cpuOf   []int32   // cpuOf[event] — filled per analysis
	posOf   []int32   // posOf[event]: index within its CPU's stream
	degOf   []int32   // buildHB's out-degree counting buffer
	extras  [][]int32 // per-node race-partner lists (min partner per CPU)
	pmask   []uint32  // per-node bitmask of partner CPUs (≤32 CPUs)
	touched []int32   // nodes with non-empty extras, for O(touched) reset
	// shards holds one sub-arena per sweep worker: each worker owns its
	// shard exclusively for the duration of the scan, so record appends
	// never contend, while the shard list itself lives in the arena and
	// keeps the campaign-level sync.Pool reuse intact (shards[0] doubles
	// as the sequential path's buffer). Grown to the high-water worker
	// count and reused.
	shards    []sweepShard
	segs      []locSeg    // prep pass: per-location CPU segments, read-only during the scan
	segOff    []int32     // sorted-location offsets into segs (len(locs)+1)
	units     []sweepUnit // (location, segment-pair) buckets the scan workers pull
	recsMerge []pairRec   // parallel merge's concatenation buffer
	groupOff  []int32     // two-level merge: per-group record offsets
	hbCnt     []int32     // parallel hb1 fill: per-event so1 rank counters
	hbLess    []int32     // parallel hb1 fill: per-event acquires-below-po counts
	digits    []int32     // radix sort's counting buffer
	digitsW   []int32     // parallel radix sort's per-worker histograms
	recsTmp   []pairRec   // radix sort's ping-pong buffer
	// locSlot interns locations into stable accLists slots, so repeated
	// analyses through one arena reuse the per-location access buffers
	// instead of rebuilding a map of freshly grown slices every time.
	locSlot  map[int]int32
	accLists [][]access
	slotLoc  []int32       // slot → location value (inverse of locSlot)
	canon    []*bitset.Set // slot → current analysis's canonical {loc} set
	locsBuf  []int         // locations touched by the current analysis
	scratch  graph.Scratch
}

// NewArena returns an empty arena. Buffers grow to the working-set size
// of the analyses run through it and are then reused.
func NewArena() *Arena { return &Arena{} }

// arenaPool backs Analyze calls that did not supply an Options.Arena, so
// every caller gets scratch reuse across analyses; an explicit arena
// still wins (deterministic per-worker reuse, e.g. one per in-flight
// campaign seed).
var arenaPool = sync.Pool{New: func() any { return &Arena{} }}

// Race is a higher-level race between two events (§4.1): A and B access a
// common location that at least one writes, and no hb1 path connects them.
type Race struct {
	// A and B are the racing events, A < B.
	A, B EventID
	// Locs is the set of locations on which A and B conflict.
	Locs *bitset.Set
	// Data reports whether this is a data race: at least one side is a
	// computation event (all of whose accesses are data operations). A
	// race between two synchronization events is a synchronization race
	// and is never reported, but it still contributes edges to G′.
	Data bool
}

// Partition is a set of data races whose events share one strongly
// connected component of the augmented graph G′ (§4.2).
type Partition struct {
	// Component is the SCC id in the augmented graph.
	Component int
	// Races indexes Analysis.Races, listing this partition's data races.
	Races []int
	// Events lists the distinct events involved, sorted.
	Events []EventID
	// First reports whether no other partition containing a data race
	// precedes this one in the partial order P (Definition 4.1): the
	// partition is one the detector reports to the programmer.
	First bool
}

// Analysis is the complete result of a post-mortem detection run.
type Analysis struct {
	// Trace is the input trace.
	Trace *trace.Trace
	// Options echoes the options used.
	Options Options

	// NumEvents is the number of events (hb1 graph nodes).
	NumEvents int

	// HB is the happens-before-1 graph (po ∪ so1 edges).
	HB *graph.Digraph
	// HBTime is the hb1 vector-clock timestamp layer: one topological
	// pass assigns every event's SCC a forward clock and a backward
	// frontier, making ordering queries O(1) epoch compares and giving
	// the race sweep and the provenance certificates their per-CPU
	// interval boundaries directly. Populated on the default path; nil
	// under Options.ExplicitClosure. Query hb1 ordering through
	// HBReaches/HBOrdered/HBWindow, which dispatch to whichever oracle
	// the options built.
	HBTime *graph.Timestamps
	// HBReach answers hb1 ordering queries with the closure oracle.
	// Populated only under Options.ExplicitClosure.
	HBReach *graph.Reachability
	// Aug is the augmented graph G′: HB plus a doubly-directed edge per
	// race. Populated only under Options.ExplicitAug; the default path
	// never materializes G′ (its SCCs are computed over an implicit
	// adjacency — see buildImplicitAug).
	Aug *graph.Digraph
	// AugReach answers affect-ordering queries on G′. Populated only
	// under Options.ExplicitAug.
	AugReach *graph.Reachability
	// AugSCC is the component structure of G′ — the partitions of §4.2.
	// Always populated (on the implicit path it comes from the overlay
	// Tarjan run; on the explicit path from AugReach). Component ids may
	// differ between the two paths (adjacency order steers Tarjan's
	// numbering) but the components themselves, and everything derived
	// from them, are identical.
	AugSCC *graph.SCC

	// Races lists every race (data and synchronization), sorted by (A, B).
	Races []Race
	// DataRaces indexes Races, listing the data races.
	DataRaces []int
	// Partitions lists the partitions containing at least one data race,
	// in a deterministic order (by smallest event id).
	Partitions []Partition
	// FirstPartitions indexes Partitions, listing the first partitions —
	// the detector's report.
	FirstPartitions []int

	base []int // base[c] = EventID of processor c's first event

	augCond         *graph.CondReach // implicit path's partition-order oracle
	augEdges        int64            // implicit partner entries, or Aug.M() when explicit
	candidatePairs  int64            // conflicting unordered pairs the sweep emitted
	raceWorkers     int              // worker count the race search actually used
	sweepBuckets    int64            // (location, segment-pair) units the scan was sharded into
	vcWindowQueries int64            // sweep boundary lookups answered by HBTime
	mergeGroups     int              // two-level merge group count (0 = flat merge)
	// pairShift is the bit width of this trace's event ids: packed pair
	// keys are lo<<pairShift | hi, so they span only 2·⌈log₂ n⌉ bits and
	// the radix sort runs the fewest counting passes the ids allow.
	// Packing tightly (instead of a fixed <<32) preserves the (lo, hi)
	// lexicographic order the coalesce and the report depend on.
	pairShift uint
}

// ID returns the EventID for an event reference.
func (a *Analysis) ID(ref trace.EventRef) EventID {
	return EventID(a.base[ref.CPU] + ref.Index)
}

// Ref returns the event reference for an EventID.
func (a *Analysis) Ref(id EventID) trace.EventRef {
	c := sort.Search(len(a.base), func(i int) bool { return a.base[i] > int(id) }) - 1
	return trace.EventRef{CPU: c, Index: int(id) - a.base[c]}
}

// Event returns the trace event with the given id.
func (a *Analysis) Event(id EventID) *trace.Event {
	return a.Trace.Event(a.Ref(id))
}

// RaceFree reports whether the execution exhibited no data races. On
// hardware satisfying Condition 3.4(1) this certifies that the execution
// was sequentially consistent.
func (a *Analysis) RaceFree() bool { return len(a.DataRaces) == 0 }

// HBReaches reports u ⇝ v in hb1 (reflexively: HBReaches(u, u) is true),
// dispatching to whichever ordering oracle the options built — the
// vector-clock timestamps by default, the explicit closure under
// Options.ExplicitClosure. The two oracles agree on every pair (the
// crosscheck harness pins this), so callers never need to know which ran.
func (a *Analysis) HBReaches(u, v EventID) bool {
	if a.HBTime != nil {
		return a.HBTime.Reaches(int(u), int(v))
	}
	return a.HBReach.Reaches(int(u), int(v))
}

// HBOrdered reports whether u and v are hb1-ordered either way — the
// negation of the paper's race condition "not ordered by hb1".
func (a *Analysis) HBOrdered(u, v EventID) bool {
	return a.HBReaches(u, v) || a.HBReaches(v, u)
}

// HBWindow brackets event x against processor cpu's stream: lastPred is
// the index of the last event of that stream that happens-before-1 x
// (-1 when none), firstSucc the index of the first event x
// happens-before-1 (the stream length when none). Program order makes
// the reaching events a prefix and the reached events a suffix, so
// events strictly inside (lastPred, firstSucc) are exactly the ones
// unordered with x — the absence certificate provenance emits. On the
// timestamp path both bounds are two slab reads; under ExplicitClosure
// they are recovered by binary search over the monotone closure
// predicates.
func (a *Analysis) HBWindow(x EventID, cpu int) (lastPred, firstSucc int) {
	if a.HBTime != nil {
		predCount, succPos := a.HBTime.Window(int(x), cpu)
		return int(predCount) - 1, int(succPos)
	}
	n := len(a.Trace.PerCPU[cpu])
	base := a.base[cpu]
	lastPred = sort.Search(n, func(j int) bool {
		return !a.HBReach.Reaches(base+j, int(x))
	}) - 1
	firstSucc = sort.Search(n, func(j int) bool {
		return a.HBReach.Reaches(int(x), base+j)
	})
	return lastPred, firstSucc
}

// Analyze runs the full post-mortem detection pipeline on a trace.
func Analyze(t *trace.Trace, opts Options) (*Analysis, error) {
	reg := telemetry.Default()
	fl := newFlight(opts.Flight)
	defer startPhase(reg, fl, "detect.analyze")()
	if !opts.SkipValidate {
		// Validation shares the analysis's worker budget
		// (ValidateParallel resolves 0 to GOMAXPROCS the same way
		// resolveWorkers does) and reports the identical error for
		// every worker count.
		done := startPhase(reg, fl, "detect.validate")
		err := t.ValidateParallel(opts.Workers)
		done()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	a := &Analysis{Trace: t, Options: opts}
	if a.Options.Arena == nil {
		ar := arenaPool.Get().(*Arena)
		a.Options.Arena = ar
		defer func() {
			a.Options.Arena = opts.Arena // don't leak the pooled arena to the caller
			arenaPool.Put(ar)
		}()
	}

	// Dense event numbering, processor-major.
	a.base = make([]int, t.NumCPUs)
	n := 0
	for c, evs := range t.PerCPU {
		a.base[c] = n
		n += len(evs)
	}
	a.NumEvents = n

	a.fillStreamIndex()

	done := startPhase(reg, fl, "detect.build_hb")
	a.buildHB()
	done()
	done = startPhase(reg, fl, "detect.hb_reach")
	if opts.ExplicitClosure {
		// Lazy closure oracle: the race search's pre-checks (component id,
		// topological level) answer most ordering queries without closure
		// rows, so sparse-race traces never materialize the full O(C²/64)
		// closure.
		a.HBReach = graph.NewReachabilityLazy(a.HB)
	} else {
		// Default path: one topological pass timestamps hb1 — O(events ×
		// CPUs) total, no rows ever, and the sweep's interval boundaries
		// fall out of the clocks for free. The span fill inside shares the
		// analysis's worker budget.
		ar := a.Options.Arena
		a.HBTime = graph.NewTimestamps(a.HB, ar.cpuOf[:a.NumEvents], ar.posOf[:a.NumEvents],
			t.NumCPUs, &ar.scratch, a.resolveWorkers())
	}
	done()
	done = startPhase(reg, fl, "detect.find_races")
	a.findRaces(reg, fl)
	done()
	done = startPhase(reg, fl, "detect.augment")
	if opts.ExplicitAug {
		a.buildAugmented()
		a.AugReach = graph.NewReachabilityLazy(a.Aug)
		a.AugSCC = a.AugReach.SCC()
		a.augEdges = int64(a.Aug.M())
	} else {
		a.buildImplicitAug()
	}
	done()
	done = startPhase(reg, fl, "detect.partition")
	a.partition(reg, fl)
	done()
	a.flushTelemetry(reg)
	if fl != nil {
		fl.record(a)
	}
	return a, nil
}

// fillStreamIndex fills the arena's per-event stream tables: cpuOf maps
// an event to its processor, posOf to its index within that processor's
// stream. The timestamp layer consumes them as clock coordinates and
// buildImplicitAug reuses cpuOf for partner-CPU dedup.
func (a *Analysis) fillStreamIndex() {
	ar := a.Options.Arena
	n := a.NumEvents
	if cap(ar.cpuOf) < n {
		ar.cpuOf = make([]int32, n)
	}
	if cap(ar.posOf) < n {
		ar.posOf = make([]int32, n)
	}
	cpuOf, posOf := ar.cpuOf[:n], ar.posOf[:n]
	for c, evs := range a.Trace.PerCPU {
		base := a.base[c]
		for i := range evs {
			cpuOf[base+i] = int32(c)
			posOf[base+i] = int32(i)
		}
	}
}

// flushTelemetry batches the analysis's structural counters into the
// registry — the event/edge/race/SCC scaling numbers every perf PR
// reports against.
func (a *Analysis) flushTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.Counter("detect.analyses").Inc()
	reg.Counter("detect.events").Add(int64(a.NumEvents))
	reg.Counter("detect.hb_edges").Add(int64(a.HB.M()))
	// detect.aug_edges counts the augmentation work actually represented:
	// per-node race-partner entries on the implicit path (at most
	// racy-nodes × (CPUs−1), since partners collapse to the po-minimal
	// event per CPU), or G′'s materialized edge count under ExplicitAug.
	reg.Counter("detect.aug_edges").Add(a.augEdges)
	reg.Counter("detect.races").Add(int64(len(a.Races)))
	reg.Counter("detect.data_races").Add(int64(len(a.DataRaces)))
	reg.Counter("detect.partitions").Add(int64(len(a.Partitions)))
	reg.Counter("detect.first_partitions").Add(int64(len(a.FirstPartitions)))
	reg.Counter("detect.race_candidates").Add(a.candidatePairs)
	reg.Gauge("detect.find_races.workers").SetMax(int64(a.raceWorkers))
	// detect.sweep.buckets counts the (location, segment-pair) units the
	// scan was sharded into; the arena gauges are per-shard high-water
	// marks — how much record slab each worker's sub-arena has grown to
	// across the analyses run through it.
	reg.Counter("detect.sweep.buckets").Add(a.sweepBuckets)
	// detect.sweep.merge_groups appears only when the two-level merge
	// engaged (workers ≥ mergeTwoLevelCutoff and a sharded sweep ran).
	if a.mergeGroups > 0 {
		reg.Gauge("detect.sweep.merge_groups").SetMax(int64(a.mergeGroups))
	}
	if ar := a.Options.Arena; ar != nil {
		reg.Gauge("detect.arena.shards").SetMax(int64(len(ar.shards)))
		maxRecs := 0
		for i := range ar.shards {
			if c := cap(ar.shards[i].recs); c > maxRecs {
				maxRecs = c
			}
		}
		reg.Gauge("detect.arena.shard_recs_highwater").SetMax(int64(maxRecs))
	}
	// detect.vc_* is the timestamp layer's footprint: analyses that used
	// it, its component/clock sizes, and the sweep boundary lookups it
	// answered (each replacing an amortized run of closure queries).
	// Absent entirely when the closure path ran instead — mirroring
	// graph.reach.*, which now only appears when a closure was actually
	// built. detect.vc_hb_fastpath_hits (the G′ queries the hb1 clock
	// settles before any condensation DFS) is incremented live at the
	// query site instead: Definition-3.3 queries arrive through the
	// Affects API after the analysis — and its flush — have finished.
	if a.HBTime != nil {
		reg.Counter("detect.vc_builds").Inc()
		reg.Counter("detect.vc_components").Add(int64(a.HBTime.SCC().NumComponents()))
		reg.Gauge("detect.vc_width").SetMax(int64(a.HBTime.Width()))
		reg.Counter("detect.vc_window_queries").Add(a.vcWindowQueries)
	}
	reg.Counter("detect.scc.components").Add(int64(a.AugSCC.NumComponents()))
	// detect.scc.max_size is the largest SCC of the AUGMENTED graph G′
	// per analysis — the partition-structure view. The graph layer's
	// graph.scc.max_size gauge instead tracks the largest SCC across
	// every SCC computation (hb1 and augmented, explicit or implicit).
	// Both reuse the size Tarjan tracked while closing components;
	// nothing rescans Members.
	reg.Gauge("detect.scc.max_size").SetMax(int64(a.AugSCC.MaxSize()))
}

// pairs reports whether an event is an acquire whose pairing the policy
// admits — the events that contribute so1 edges to hb1.
func (a *Analysis) pairs(ev *trace.Event) bool {
	return ev.Kind == trace.Sync && ev.Role == memmodel.RoleAcquire &&
		ev.Observed.Valid() && a.Options.Pairing.CanPair(ev.ObservedRole)
}

// hbParallelCutoff is the event count below which hb1 construction
// stays on the calling goroutine; both paths build byte-identical
// graphs, so the cutoff is purely a scheduling decision.
const hbParallelCutoff = 1 << 13

// hbChunk is the number of source events per parallel counting unit.
const hbChunk = 4096

// buildHB constructs the happens-before-1 graph: po edges between
// consecutive events of each processor, so1 edges from each paired release
// to its acquire (Definition 2.2), subject to the pairing policy. A
// counting pass sizes every adjacency list first, so edge insertion fills
// one slab — two allocations per analysis instead of one per event.
//
// Above hbParallelCutoff the two passes fan out over the worker budget
// (see buildHBParallel); the resulting Digraph is byte-identical to the
// serial build for every worker count.
func (a *Analysis) buildHB() {
	reg := telemetry.Default()
	workers := a.resolveWorkers()
	if a.NumEvents < hbParallelCutoff {
		workers = 1
	}
	if reg.Enabled() {
		reg.Gauge("graph.build.workers").SetMax(int64(workers))
	}
	if workers <= 1 {
		a.buildHBSerial(reg)
	} else {
		a.buildHBParallel(reg, workers)
	}
}

// buildHBSerial is the sequential build: count degrees, carve the slab,
// append every edge in processor-major scan order.
func (a *Analysis) buildHBSerial(reg *telemetry.Registry) {
	ar := a.Options.Arena
	n := a.NumEvents
	if cap(ar.degOf) < n {
		ar.degOf = make([]int32, n)
	}
	deg := ar.degOf[:n]
	for i := range deg {
		deg[i] = 0
	}
	sp := reg.StartSpan("graph.build.count")
	for c, evs := range a.Trace.PerCPU {
		for i := range evs {
			if i+1 < len(evs) {
				deg[a.base[c]+i]++
			}
			if a.pairs(evs[i]) {
				deg[a.ID(evs[i].Observed)]++
			}
		}
	}
	g := graph.NewWithDegrees(deg)
	sp.End()
	sp = reg.StartSpan("graph.build.fill")
	for c, evs := range a.Trace.PerCPU {
		for i := range evs {
			if i+1 < len(evs) {
				g.AddEdge(a.base[c]+i, a.base[c]+i+1)
			}
			if a.pairs(evs[i]) {
				g.AddEdge(int(a.ID(evs[i].Observed)), a.base[c]+i)
			}
		}
	}
	sp.End()
	a.HB = g
}

// soRec is one so1 edge in flight during the parallel build: obs is the
// observed synchronization write (the edge's source), v the acquire
// that contributes the edge (its scan-order position).
type soRec struct{ obs, v int32 }

// buildHBParallel builds the same Digraph as buildHBSerial with the
// passes fanned out, reproducing the serial adjacency order exactly.
//
// The serial scan appends each node u's edges in ascending order of the
// CONTRIBUTING event's id: a po edge u→u+1 is appended while scanning u
// itself, an so1 edge u→v while scanning the acquire v. So adj[u] is
// {u's po successor} ∪ {observing acquires v}, merge-sorted by
// contributor id — a position every edge can compute locally:
//
//	so1 slot of (u, v) = rank of v among u's acquires (v-ascending)
//	                     + 1 if u has a po edge and u < v
//	po  slot of u      = number of u's acquires with v < u
//
// Three phases keep every write disjoint: source-chunk units collect
// so1 records bucketed by the observed event's stream; per-stream
// workers concatenate their buckets in unit order (= v-ascending),
// count degrees (po edges and record targets both live in the owned
// stream), and — after a serial slab carve — place every edge at its
// computed slot. No ordering ever depends on which worker ran first.
func (a *Analysis) buildHBParallel(reg *telemetry.Registry, workers int) {
	ar := a.Options.Arena
	t := a.Trace
	n := a.NumEvents
	if cap(ar.degOf) < n {
		ar.degOf = make([]int32, n)
	}
	deg := ar.degOf[:n]
	clear(deg)

	sp := reg.StartSpan("graph.build.count")
	// Phase 1: source chunks collect so1 records, bucketed by the
	// observed event's stream — the slab range the edge lands in.
	type hbUnit struct {
		c, lo, hi int
		recs      [][]soRec
	}
	var units []hbUnit
	for c, evs := range t.PerCPU {
		for lo := 0; lo < len(evs); lo += hbChunk {
			hi := min(lo+hbChunk, len(evs))
			units = append(units, hbUnit{c: c, lo: lo, hi: hi})
		}
	}
	runUnits(workers, len(units), func(k int) {
		u := &units[k]
		u.recs = make([][]soRec, t.NumCPUs)
		evs := t.PerCPU[u.c]
		base := a.base[u.c]
		for i := u.lo; i < u.hi; i++ {
			if ev := evs[i]; a.pairs(ev) {
				s := ev.Observed.CPU
				u.recs[s] = append(u.recs[s], soRec{obs: int32(a.ID(ev.Observed)), v: int32(base + i)})
			}
		}
	})

	// Phase 2: per-stream workers concatenate their buckets in unit
	// order — units are enumerated processor-major, so the result is
	// ascending in v — and count degrees. Both the po targets and the
	// record targets of stream s lie in s's slab range, so the deg
	// writes are disjoint across workers.
	recsBy := make([][]soRec, t.NumCPUs)
	runUnits(workers, t.NumCPUs, func(s int) {
		total := 0
		for k := range units {
			total += len(units[k].recs[s])
		}
		recs := make([]soRec, 0, total)
		for k := range units {
			recs = append(recs, units[k].recs[s]...)
		}
		recsBy[s] = recs
		base, evs := a.base[s], t.PerCPU[s]
		for i := 0; i+1 < len(evs); i++ {
			deg[base+i]++
		}
		for _, r := range recs {
			deg[r.obs]++
		}
	})
	g := graph.NewPlaced(deg)
	sp.End()

	sp = reg.StartSpan("graph.build.fill")
	// Phase 3: place each edge at the slot the serial builder would
	// have appended it to. One v-ascending pass over a stream's records
	// yields each record's rank (cnt) and each event's below-po acquire
	// count (less); the po edges then land at their final slots.
	if cap(ar.hbCnt) < n {
		ar.hbCnt = make([]int32, n)
		ar.hbLess = make([]int32, n)
	}
	runUnits(workers, t.NumCPUs, func(s int) {
		base, evs := a.base[s], t.PerCPU[s]
		cnt := ar.hbCnt[base : base+len(evs)]
		less := ar.hbLess[base : base+len(evs)]
		clear(cnt)
		clear(less)
		for _, r := range recsBy[s] {
			o := int(r.obs) - base
			slot := int(cnt[o])
			cnt[o]++
			if r.v < r.obs {
				less[o]++
			} else if o+1 < len(evs) {
				slot++ // the po edge's contributor (u itself) precedes this acquire
			}
			g.Place(int(r.obs), slot, int(r.v))
		}
		for i := 0; i+1 < len(evs); i++ {
			g.Place(base+i, int(less[i]), base+i+1)
		}
	})
	sp.End()
	a.HB = g
}

// runUnits fans k units out over a worker pool pulling an atomic
// cursor; fn must only write unit-owned state. With one worker (or one
// unit) everything runs on the calling goroutine.
func runUnits(workers, k int, fn func(int)) {
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		for i := 0; i < k; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// access is one (event, location) access used during race detection.
type access struct {
	ev    EventID
	cpu   int
	write bool
	sync  bool
}

// locSeg is one contiguous same-CPU run of a location's access list.
// Accesses are collected processor-major, so a location has at most one
// segment per CPU, po-ascending within.
type locSeg struct {
	start, end int32 // accs[start:end]
	writes     int32 // write accesses within
}

// sweepUnit is one bucket of sweep work: a (location, segment-pair)
// combination with conflict potential. Sharding by segment pair — CPU
// pair, since segments are per-CPU — instead of by whole location keeps
// a single hot location (a contended lock word) from serializing behind
// one worker. Units are enumerated in a fixed (location, si, ti) order;
// which worker runs a unit never matters because the merge sorts the
// flat records into a total order afterwards.
type sweepUnit struct {
	li     int32 // index into the sorted locations
	si, ti int32 // segment pair within the location, si < ti
}

// sweepShard is one worker's sub-arena: the flat record buffer it
// appends to during the scan. Shards are owned exclusively by their
// worker between fan-out and merge.
type sweepShard struct {
	recs []pairRec
}

// sweepThreshold is the access count below which the race search stays
// sequential: fanning out goroutines costs more than the sweep itself on
// small traces. The parallel and sequential paths produce identical
// output, so the cutoff is purely a scheduling decision.
const sweepThreshold = 2048

// mergeTwoLevelCutoff is the worker count from which the sweep's merge
// concatenates in two levels (worker partials → ⌈√W⌉ group slabs →
// final buffer) instead of flat. Both shapes produce the identical
// record sequence; the cutoff is purely a scheduling decision.
const mergeTwoLevelCutoff = 4

// resolveWorkers returns the analysis's worker budget: Options.Workers,
// with 0 meaning GOMAXPROCS. Individual passes may still run
// sequentially below their own size cutoffs.
func (a *Analysis) resolveWorkers() int {
	if w := a.Options.Workers; w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// findRaces detects all races: conflicting, hb1-unordered event pairs.
//
// The search is a sweep over CPU-bucketed accesses: accesses are
// collected processor-major, so each location's slice is made of
// contiguous same-CPU segments (one per processor, po-ascending within),
// and pairing a segment only against later segments skips same-processor
// pairs (always po-ordered) wholesale.
//
// Against one later segment T, an access x needs no per-pair ordering
// tests: program order makes ordering monotone along T, so the events of
// T that reach x form a PREFIX of T (y⇝x implies y′⇝y⇝x for every
// earlier y′), the events x reaches form a SUFFIX (x⇝y implies x⇝y′ for
// every later y′), and the hb1-unordered partners of x are exactly the
// interval between them. Both boundaries are monotone non-decreasing as
// x advances through its own segment (later x is reached by more of T
// and reaches less of it), so one two-pointer pass spends O(|S|+|T|)
// amortized boundary work per segment pair — not O(|S|·|T|) — and the
// interval's pairs are emitted with no ordering query at all. On the
// default timestamp path the boundaries come from HBTime.Window — two
// slab reads per x, zero reachability queries; under ExplicitClosure
// each pointer advance runs one closure query, which still goes through
// the reachability layer's O(1) component-id/topological-level
// pre-checks before touching (or, in lazy mode, materializing) a row.
//
// The unit of parallel work is a (location, segment-pair) bucket — a CPU
// pair, since segments are per-CPU — not a whole location: a single
// contended lock word no longer serializes behind one worker. A serial
// prep pass enumerates segments and buckets; scan workers pull buckets
// off an atomic index and append flat (pair, location, data) records
// into per-shard arenas they own exclusively; the partials are
// concatenated and sorted into a total order, and the sorted runs are
// coalesced into races — with the merge, sort, and coalesce themselves
// sharded once the record count warrants it. Every stage either
// serializes, produces commutative partials, or writes disjoint ranges
// of a deterministic slab, so the Analysis is byte-identical for every
// worker count and work-stealing schedule.
func (a *Analysis) findRaces(reg *telemetry.Registry, fl *flight) {
	// Keyed by location, sparse: traces legitimately declare large address
	// spaces while touching few locations, and the analyzer must not
	// allocate proportionally to the declared size (robustness against
	// decoded input). The arena interns each location into a stable slot
	// whose access buffer survives across analyses — a campaign's repeated
	// traces stop re-growing hundreds of per-location slices.
	ar := a.Options.Arena
	donePrep := startPhase(reg, fl, "detect.sweep.prep")
	if ar.locSlot == nil {
		ar.locSlot = map[int]int32{}
	}
	for _, loc := range ar.locsBuf {
		ar.accLists[ar.locSlot[loc]] = ar.accLists[ar.locSlot[loc]][:0]
	}
	ar.locsBuf = ar.locsBuf[:0]
	addAccess := func(loc int, acc access) {
		slot, ok := ar.locSlot[loc]
		if !ok {
			slot = int32(len(ar.accLists))
			ar.locSlot[loc] = slot
			ar.accLists = append(ar.accLists, nil)
			ar.slotLoc = append(ar.slotLoc, int32(loc))
		}
		if len(ar.accLists[slot]) == 0 {
			ar.locsBuf = append(ar.locsBuf, loc)
		}
		ar.accLists[slot] = append(ar.accLists[slot], acc)
	}
	total := 0
	for c, evs := range a.Trace.PerCPU {
		for i, ev := range evs {
			id := EventID(a.base[c] + i)
			switch ev.Kind {
			case trace.Comp:
				// A location both read and written contributes a single
				// write access (the write subsumes the read for conflict
				// purposes).
				ev.Writes.Range(func(loc int) bool {
					addAccess(loc, access{ev: id, cpu: c, write: true})
					total++
					return true
				})
				ev.Reads.Range(func(loc int) bool {
					if !ev.Writes.Contains(loc) {
						addAccess(loc, access{ev: id, cpu: c, write: false})
						total++
					}
					return true
				})
			case trace.Sync:
				addAccess(int(ev.Loc), access{
					ev: id, cpu: c, write: ev.IsWriteSync(), sync: true,
				})
				total++
			}
		}
	}

	locs := ar.locsBuf
	slices.Sort(locs)

	// Segment and bucket enumeration, serial: one pass over every sorted
	// location records its per-CPU segments into a shared read-only slab
	// and emits one sweepUnit per segment pair with conflict potential.
	// The fixed (location, si, ti) enumeration order is what the bucket
	// telemetry and the scan's work index are defined over.
	segs, segOff, units := ar.segs[:0], ar.segOff[:0], ar.units[:0]
	segOff = append(segOff, 0)
	for li, loc := range locs {
		accs := ar.accLists[ar.locSlot[loc]]
		first := int32(len(segs))
		for s := 0; s < len(accs); {
			e := s + 1
			for e < len(accs) && accs[e].cpu == accs[s].cpu {
				e++
			}
			w := int32(0)
			for _, x := range accs[s:e] {
				if x.write {
					w++
				}
			}
			segs = append(segs, locSeg{start: int32(s), end: int32(e), writes: w})
			s = e
		}
		nls := int32(len(segs)) - first
		for si := int32(0); si < nls; si++ {
			for ti := si + 1; ti < nls; ti++ {
				if segs[first+si].writes == 0 && segs[first+ti].writes == 0 {
					continue // read-only × read-only: no conflicts at all
				}
				units = append(units, sweepUnit{li: int32(li), si: si, ti: ti})
			}
		}
		segOff = append(segOff, int32(len(segs)))
	}
	ar.segs, ar.segOff, ar.units = segs, segOff, units
	a.sweepBuckets = int64(len(units))
	donePrep()

	workers := a.resolveWorkers()
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 2 || total < sweepThreshold {
		workers = 1
	}
	a.raceWorkers = workers
	for len(ar.shards) < workers {
		ar.shards = append(ar.shards, sweepShard{})
	}

	// Scan: workers pull buckets off a shared index; a hot location's
	// segment pairs therefore spread across the pool instead of
	// serializing behind one worker. Each worker appends flat (pair,
	// location, data) records into its own shard — no maps, no per-race
	// allocations, no contention on shared slabs; weak executions
	// routinely produce tens of thousands of synchronization races from
	// contending spin loops, and pointer-chasing accumulation dominated
	// the old search.
	doneScan := startPhase(reg, fl, "detect.sweep.scan")
	var next atomic.Int64
	useVC := a.HBTime != nil
	a.pairShift = uint(bits.Len(uint(a.NumEvents)))
	shift := a.pairShift
	sweep := func(buf []pairRec) ([]pairRec, int64, int64) {
		recs := buf[:0]
		var cand, vcq int64
		for {
			i := int(next.Add(1)) - 1
			if i >= len(units) {
				return recs, cand, vcq
			}
			un := units[i]
			slot := ar.locSlot[locs[un.li]]
			accs := ar.accLists[slot]
			base := segOff[un.li]
			S, T := segs[base+un.si], segs[base+un.ti]
			// Conflicting pairs in S×T = all pairs minus read-read
			// pairs, counted wholesale (the quantity the per-pair
			// loop used to tally one test at a time).
			sn, tn := S.end-S.start, T.end-T.start
			cand += int64(sn*tn - (sn-S.writes)*(tn-T.writes))
			// p: end of T's prefix reaching x. q: start of T's
			// suffix reached by x. Both only move forward while x
			// advances; [p,q) is x's hb1-unordered interval of T.
			// On the timestamp path both boundaries are read
			// straight off x's clock: Window gives the exact prefix
			// count and suffix start of T's WHOLE stream, and
			// event ids are base+pos within a CPU, so the pointers
			// advance by threshold compares with no per-pair
			// ordering query at all.
			p, q := T.start, T.start
			tcpu := accs[T.start].cpu
			tbase := a.base[tcpu]
			for xi := S.start; xi < S.end; xi++ {
				x := accs[xi]
				if useVC {
					predCount, succPos := a.HBTime.Window(int(x.ev), tcpu)
					vcq++
					for p < T.end && int(accs[p].ev)-tbase < int(predCount) {
						p++
					}
					if q < p {
						// On an hb1 cycle the prefix and suffix can
						// overlap; the unordered interval is empty.
						q = p
					}
					for q < T.end && int(accs[q].ev)-tbase < int(succPos) {
						q++
					}
				} else {
					for p < T.end && a.HBReach.Reaches(int(accs[p].ev), int(x.ev)) {
						p++
					}
					if q < p {
						q = p
					}
					for q < T.end && !a.HBReach.Reaches(int(x.ev), int(accs[q].ev)) {
						q++
					}
				}
				for yi := p; yi < q; yi++ {
					y := accs[yi]
					if !x.write && !y.write {
						continue // two reads never conflict
					}
					lo, hi := x.ev, y.ev
					if lo > hi {
						lo, hi = hi, lo
					}
					recs = append(recs, pairRec{
						key:  uint64(lo)<<shift | uint64(hi),
						slot: slot,
						data: !x.sync || !y.sync,
					})
				}
			}
		}
	}

	partials := make([][]pairRec, workers)
	counts := make([]int64, workers)
	vcqs := make([]int64, workers)
	if workers == 1 {
		partials[0], counts[0], vcqs[0] = sweep(ar.shards[0].recs)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				partials[w], counts[w], vcqs[w] = sweep(ar.shards[w].recs)
			}(w)
		}
		wg.Wait()
	}
	// Hand the grown buffers back to their shards so a campaign's steady
	// state appends into pre-grown slabs for every worker.
	for w := range partials {
		ar.shards[w].recs = partials[w]
	}
	for w := range counts {
		a.candidatePairs += counts[w]
		a.vcWindowQueries += vcqs[w]
	}
	doneScan()

	// Deterministic merge: concatenate the partials and sort by
	// (pair, location) — a total order, since each (event pair, location)
	// combination is produced at most once — so the record sequence, and
	// with it the Analysis, is byte-identical for every worker count and
	// work-stealing schedule. The sequential path sorts its single
	// partial in place (no copy); the records are dead after the coalesce
	// below, so every buffer (including the merge concatenation) returns
	// to the arena. Concatenation offsets are exact, so the parallel copy
	// writes disjoint ranges.
	//
	// From mergeTwoLevelCutoff workers up, the concat goes NUMA-style in
	// two levels: worker partials merge into ⌈√W⌉ contiguous GROUP slabs
	// (each group owning a worker-order run of partials), and the group
	// slabs then concatenate into the final buffer — so neither level
	// fans out more than ⌈√W⌉ copy tasks and per-level merge cost stops
	// growing linearly with the worker count. Groups preserve worker
	// order, so the concatenated sequence — and everything downstream —
	// is byte-identical to the flat merge.
	doneMerge := startPhase(reg, fl, "detect.sweep.merge")
	var recs []pairRec
	switch {
	case workers == 1:
		recs = partials[0]
	case workers < mergeTwoLevelCutoff:
		nRecs := 0
		for _, p := range partials {
			nRecs += len(p)
		}
		if cap(ar.recsMerge) < nRecs {
			ar.recsMerge = make([]pairRec, 0, nRecs)
		}
		recs = ar.recsMerge[:nRecs]
		var wg sync.WaitGroup
		off := 0
		for _, p := range partials {
			wg.Add(1)
			go func(dst, src []pairRec) {
				defer wg.Done()
				copy(dst, src)
			}(recs[off:off+len(p)], p)
			off += len(p)
		}
		wg.Wait()
		ar.recsMerge = recs
	default:
		groups := 1
		for groups*groups < workers {
			groups++
		}
		a.mergeGroups = groups
		nRecs := 0
		if cap(ar.groupOff) < groups+1 {
			ar.groupOff = make([]int32, groups+1)
		}
		groupOff := ar.groupOff[:groups+1]
		for g := 0; g < groups; g++ {
			groupOff[g] = int32(nRecs)
			for _, p := range partials[g*workers/groups : (g+1)*workers/groups] {
				nRecs += len(p)
			}
		}
		groupOff[groups] = int32(nRecs)
		if cap(ar.recsMerge) < nRecs {
			ar.recsMerge = make([]pairRec, 0, nRecs)
		}
		if cap(ar.recsTmp) < nRecs {
			ar.recsTmp = make([]pairRec, 0, nRecs)
		}
		recs = ar.recsMerge[:nRecs]
		slabs := ar.recsTmp[:nRecs]
		ar.recsMerge, ar.recsTmp = recs, slabs
		// Level 1: each group concatenates its partials into its slab.
		runUnits(groups, groups, func(g int) {
			off := int(groupOff[g])
			for _, p := range partials[g*workers/groups : (g+1)*workers/groups] {
				copy(slabs[off:off+len(p)], p)
				off += len(p)
			}
		})
		// Level 2: the group slabs concatenate into the final buffer.
		runUnits(groups, groups, func(g int) {
			copy(recs[groupOff[g]:groupOff[g+1]], slabs[groupOff[g]:groupOff[g+1]])
		})
	}
	recs = sortRecsByKey(recs, ar, workers)
	doneMerge()

	// Canonical singleton location sets, one per distinct location: a
	// weak execution's contending spin loops produce tens of thousands of
	// races, and nearly every one involves exactly one location (at
	// segments-64 it is 49,676 of 49,697). Each (pair, location)
	// combination occurs at most once in recs, so a run of length one IS
	// a single-location race — it shares the interned {loc} set instead
	// of carrying a private set and backing words. That removes the
	// dominant share of the analysis's retained output, and with it most
	// of the GC scanning a campaign pays per analysis. Location sets are
	// owned by the Analysis and must be treated as read-only — races on
	// the same location alias one set.
	doneCoalesce := startPhase(reg, fl, "detect.sweep.coalesce")
	if cap(ar.canon) < len(ar.accLists) {
		ar.canon = make([]*bitset.Set, len(ar.accLists))
	}
	ar.canon = ar.canon[:len(ar.accLists)]
	canonSets := make([]bitset.Set, len(locs))
	canonWords := 0
	for _, loc := range locs {
		canonWords += loc/64 + 1
	}
	canonSlab := make([]uint64, canonWords)
	for i, loc := range locs {
		w := loc/64 + 1
		canonSets[i] = *bitset.Wrap(canonSlab[:w:w])
		canonSets[i].Add(loc)
		ar.canon[ar.locSlot[loc]] = &canonSets[i]
		canonSlab = canonSlab[w:]
	}

	// Coalesce sorted runs into races. Packed keys order exactly like the
	// (A, B) lexicographic order the report promises; within a run the
	// record order is irrelevant — location-set insertion and the data
	// flag are commutative, which is also why the sort never needs to be
	// stable across worker schedules. Above the cutoff the record range
	// is split at run boundaries, a counting pass sizes each worker's
	// slice of the output exactly, and the fill writes disjoint ranges of
	// the Races slab and DataRaces index — the same deterministic-merge
	// shape as the scan, with the run partition fixed by the sorted keys
	// alone.
	if workers > 1 && len(recs) >= coalesceParallelCutoff {
		bounds := make([]int, workers+1)
		bounds[workers] = len(recs)
		step := len(recs) / workers
		for w := 1; w < workers; w++ {
			b := max(w*step, bounds[w-1])
			for b < len(recs) && recs[b].key == recs[b-1].key {
				b++
			}
			bounds[w] = b
		}
		runCnt := make([]int, workers)
		dataCnt := make([]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				runs, datas := 0, 0
				for i := bounds[w]; i < bounds[w+1]; {
					j, data := i+1, recs[i].data
					for j < bounds[w+1] && recs[j].key == recs[i].key {
						data = data || recs[j].data
						j++
					}
					runs++
					if data {
						datas++
					}
					i = j
				}
				runCnt[w], dataCnt[w] = runs, datas
			}(w)
		}
		wg.Wait()
		raceOff := make([]int, workers+1)
		dataOff := make([]int, workers+1)
		for w := 0; w < workers; w++ {
			raceOff[w+1] = raceOff[w] + runCnt[w]
			dataOff[w+1] = dataOff[w] + dataCnt[w]
		}
		races := make([]Race, raceOff[workers])
		var dataIdx []int
		if dataOff[workers] > 0 {
			dataIdx = make([]int, dataOff[workers])
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ri, di := raceOff[w], dataOff[w]
				for i := bounds[w]; i < bounds[w+1]; {
					j, data := i+1, recs[i].data
					for j < bounds[w+1] && recs[j].key == recs[i].key {
						data = data || recs[j].data
						j++
					}
					a.fillRace(&races[ri], recs[i:j], data)
					if data {
						dataIdx[di] = ri
						di++
					}
					ri++
					i = j
				}
			}(w)
		}
		wg.Wait()
		a.Races = races
		a.DataRaces = dataIdx
	} else {
		// len(recs) bounds the race count tightly (each record is a
		// distinct (pair, location) and nearly every pair has one
		// location), so Races is allocated once at that bound and
		// truncated — no counting pre-pass rescanning the records.
		races := make([]Race, len(recs))
		ri := 0
		for i := 0; i < len(recs); {
			j, data := i+1, recs[i].data
			for j < len(recs) && recs[j].key == recs[i].key {
				data = data || recs[j].data
				j++
			}
			a.fillRace(&races[ri], recs[i:j], data)
			if data {
				a.DataRaces = append(a.DataRaces, ri)
			}
			ri++
			i = j
		}
		a.Races = races[:ri:ri]
	}
	doneCoalesce()
}

// fillRace materializes one sorted equal-key run of sweep records as a
// Race: unpack the pair, share the canonical {loc} set for the dominant
// single-location case, build a private set otherwise.
func (a *Analysis) fillRace(r *Race, run []pairRec, data bool) {
	ar := a.Options.Arena
	shift := a.pairShift
	r.A = EventID(run[0].key >> shift)
	r.B = EventID(run[0].key & (1<<shift - 1))
	r.Data = data
	if len(run) == 1 {
		r.Locs = ar.canon[run[0].slot]
		return
	}
	maxLoc := ar.slotLoc[run[0].slot]
	for _, rec := range run[1:] {
		if l := ar.slotLoc[rec.slot]; l > maxLoc {
			maxLoc = l
		}
	}
	r.Locs = bitset.Wrap(make([]uint64, int(maxLoc)/64+1))
	for _, rec := range run {
		r.Locs.Add(int(ar.slotLoc[rec.slot]))
	}
}

// Record counts above which the sweep's merge-side passes fan out:
// below them, goroutine dispatch costs more than the pass itself. Purely
// scheduling decisions — output is identical either way.
const (
	sortParallelCutoff     = 1 << 16
	coalesceParallelCutoff = 1 << 16
)

// sortRecsByKey sorts the sweep's records by packed pair key — the only
// order the coalesce needs — with an LSD radix sort over 11-bit digits.
// Digits that are zero in every key are skipped wholesale: event ids are
// dense, so a trace with n events uses only ~2·log₂(n) key bits and the
// usual record sort is two or three counting passes, not a comparison
// sort of 24-byte structs. Ping-pong and counting buffers come from the
// arena. The returned slice aliases either recs or the arena's buffer.
//
// Above the parallel cutoff each counting pass shards: workers histogram
// fixed contiguous chunks, a serial digit-major/worker-minor prefix sum
// turns the histograms into disjoint scatter offsets, and workers
// scatter their own chunks — a stable split-order-preserving pass, so
// the result equals the serial sort's exactly. (Records with equal keys
// may arrive in schedule-dependent order from the scan, but the coalesce
// folds equal-key runs commutatively, so stability only needs to hold
// within one sort invocation, which it does.)
func sortRecsByKey(recs []pairRec, ar *Arena, workers int) []pairRec {
	const digitBits = 11
	const radix = 1 << digitBits
	if len(recs) < 2*radix {
		// Counting passes would be dominated by sweeping the count
		// array; a comparison sort wins on small traces.
		slices.SortFunc(recs, func(x, y pairRec) int {
			if x.key < y.key {
				return -1
			} else if x.key > y.key {
				return 1
			}
			return 0
		})
		return recs
	}
	var orKeys uint64
	for i := range recs {
		orKeys |= recs[i].key
	}
	if cap(ar.recsTmp) < len(recs) {
		ar.recsTmp = make([]pairRec, len(recs))
	}
	src, dst := recs, ar.recsTmp[:len(recs)]
	if workers > 1 && len(recs) >= sortParallelCutoff {
		if cap(ar.digitsW) < workers*radix {
			ar.digitsW = make([]int32, workers*radix)
		}
		hist := ar.digitsW[:workers*radix]
		chunk := (len(recs) + workers - 1) / workers
		ranges := func(w int) (lo, hi int) {
			lo = min(w*chunk, len(recs))
			return lo, min(lo+chunk, len(recs))
		}
		var wg sync.WaitGroup
		for shift := 0; shift < 64; shift += digitBits {
			if (orKeys>>shift)&(radix-1) == 0 {
				continue // this digit is zero in every key: identity pass
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hist[w*radix : (w+1)*radix]
					for d := range h {
						h[d] = 0
					}
					lo, hi := ranges(w)
					for i := lo; i < hi; i++ {
						h[(src[i].key>>shift)&(radix-1)]++
					}
				}(w)
			}
			wg.Wait()
			sum := int32(0)
			for d := 0; d < radix; d++ {
				for w := 0; w < workers; w++ {
					c := hist[w*radix+d]
					hist[w*radix+d] = sum
					sum += c
				}
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hist[w*radix : (w+1)*radix]
					lo, hi := ranges(w)
					for i := lo; i < hi; i++ {
						d := (src[i].key >> shift) & (radix - 1)
						dst[h[d]] = src[i]
						h[d]++
					}
				}(w)
			}
			wg.Wait()
			src, dst = dst, src
		}
		return src
	}
	if cap(ar.digits) < radix {
		ar.digits = make([]int32, radix)
	}
	count := ar.digits[:radix]
	for shift := 0; shift < 64; shift += digitBits {
		if (orKeys>>shift)&(radix-1) == 0 {
			continue // this digit is zero in every key: identity pass
		}
		for d := range count {
			count[d] = 0
		}
		for i := range src {
			count[(src[i].key>>shift)&(radix-1)]++
		}
		sum := int32(0)
		for d := range count {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for i := range src {
			d := (src[i].key >> shift) & (radix - 1)
			dst[count[d]] = src[i]
			count[d]++
		}
		src, dst = dst, src
	}
	return src
}

// pairRec is one (conflicting unordered pair, location) observation from
// the sweep — the flat intermediate the workers produce and the merge
// sorts and coalesces.
type pairRec struct {
	key  uint64 // packed (A, B)
	slot int32  // interned location slot; int32 keeps the record at 16 bytes
	data bool   // at least one side is a computation access
}

// buildAugmented clones the hb1 graph and adds a doubly-directed edge for
// every race (§4.2). All races contribute edges — the affects relation of
// Definition 3.3 is defined over races generally — but only data races
// form partitions.
//
// Dedup is O(1) per edge: findRaces emits races sorted by (A, B), so a
// duplicate pair would be adjacent and one comparison catches it. The old
// AddEdgeUnique scan was O(out-degree) per insertion — quadratic on
// events with many races. (Races never coincide with an hb1 edge: an
// hb1-ordered pair is not a race.)
func (a *Analysis) buildAugmented() {
	g := a.HB.Clone()
	prevA, prevB := EventID(-1), EventID(-1)
	for _, r := range a.Races {
		if r.A == prevA && r.B == prevB {
			continue
		}
		prevA, prevB = r.A, r.B
		g.AddEdge(int(r.A), int(r.B))
		g.AddEdge(int(r.B), int(r.A))
	}
	a.Aug = g
}

// buildImplicitAug computes the partition structure of the augmented
// graph G′ without materializing G′: Tarjan runs over the implicit
// adjacency hb1 ⊕ extras, where extras[u] keeps, per partner CPU, only
// u's po-MINIMAL race partner on that CPU.
//
// Collapsing the race edges this way preserves G′'s transitive closure
// exactly. A dropped edge u→v (v racing u on CPU d) is simulated by the
// kept edge u→m — m the minimal partner of u on d, so m ≤ v — followed
// by the program-order chain m⇝v inside d's event stream; the reverse
// edge v→u is simulated symmetrically through v's minimal partner on u's
// CPU. Kept edges are a subset of the dropped set's closure, so the two
// closures — and with them the SCCs (as node sets), the condensation
// reachability, the partitions, and the first-partition flags of
// Theorems 4.1/4.2 — coincide with the explicit path's. Only raw
// component IDs may differ (Tarjan numbering follows adjacency order).
//
// Entry count is bounded by racy-nodes × (CPUs−1), versus two edges per
// race pair — the ≥10x detect.aug_edges drop on race-heavy traces.
// Partition ordering is answered by memoized per-source DFS over the
// condensation (graph.CondReach), never a full closure.
func (a *Analysis) buildImplicitAug() {
	ar := a.Options.Arena
	n := a.NumEvents
	cpuOf := ar.cpuOf[:n] // filled once per analysis by fillStreamIndex
	// Reset only the nodes the previous analysis touched, keeping the
	// per-node backing arrays. ar.extras keeps its high-water length so
	// stale touched entries always index validly.
	for _, u := range ar.touched {
		ar.extras[u] = ar.extras[u][:0]
		ar.pmask[u] = 0
	}
	ar.touched = ar.touched[:0]
	if len(ar.extras) < n {
		grown := make([][]int32, n)
		copy(grown, ar.extras)
		ar.extras = grown
		ar.pmask = make([]uint32, n)
	}
	extras := ar.extras[:n]

	// A node saturates after one partner per other CPU, and race-heavy
	// spin loops call addPartner thousands of times per node — the
	// per-node CPU bitmask answers the saturated case in one load instead
	// of rescanning the partner list (traces with >32 CPUs fall back to
	// the scan).
	pmask := ar.pmask[:n]
	useMask := a.Trace.NumCPUs <= 32

	var nEntries int64
	addPartner := func(u, v EventID) {
		vc := cpuOf[v]
		if useMask {
			if pmask[u]>>uint(vc)&1 != 0 {
				return // already hold the po-minimal partner on v's CPU
			}
			pmask[u] |= 1 << uint(vc)
		} else {
			for _, w := range extras[u] {
				if cpuOf[w] == vc {
					return
				}
			}
		}
		lst := extras[u]
		if len(lst) == 0 {
			ar.touched = append(ar.touched, int32(u))
		}
		extras[u] = append(lst, int32(v))
		nEntries++
	}
	// Races are sorted by (A, B) and deduplicated, so a node's partners
	// arrive in ascending event order (B-side partners, all below the
	// node, scan before its A-side partners, all above) — the first
	// partner seen per CPU is the minimal one.
	for _, r := range a.Races {
		addPartner(r.A, r.B)
		addPartner(r.B, r.A)
	}

	scc := graph.StronglyConnectedOverlay(a.HB, extras, &ar.scratch)
	a.AugSCC = scc
	dag := graph.CondensationOverlay(a.HB, extras, scc, &ar.scratch)
	a.augCond = graph.NewCondReach(dag, scc)
	a.augEdges = nEntries
}

// augCompReaches answers component-level G′ reachability through
// whichever oracle the options built: the explicit closure, or the
// implicit path's memoized condensation DFS.
func (a *Analysis) augCompReaches(c1, c2 int) bool {
	if a.AugReach != nil {
		return a.AugReach.ComponentReaches(c1, c2)
	}
	return a.augCond.ComponentReaches(c1, c2)
}

// vcFastpathHit counts a G′ reachability query settled by the hb1 clock
// pre-check. Incremented live (not at flushTelemetry) because the
// Definition-3.3 queries arrive through the Affects API after Analyze
// has already flushed.
func vcFastpathHit() {
	if reg := telemetry.Default(); reg.Enabled() {
		reg.Counter("detect.vc_hb_fastpath_hits").Inc()
	}
}

// augReaches answers event-level G′ reachability (Definition 3.3's
// affects paths). hb1 ⊆ G′, so when the timestamp layer is live its O(1)
// epoch compare settles positive hb1-ordered queries before the
// condensation oracle (or the explicit closure) is consulted; a negative
// answer proves nothing about G′ — race edges add paths hb1 lacks — and
// falls through.
func (a *Analysis) augReaches(u, v int) bool {
	if a.HBTime != nil && a.HBTime.Reaches(u, v) {
		vcFastpathHit()
		return true
	}
	if a.AugReach != nil {
		return a.AugReach.Reaches(u, v)
	}
	return a.augCond.Reaches(u, v)
}

// partition groups the data races by the SCCs of G′ and computes the first
// partitions under the partial order P of Definition 4.1.
//
// The ordering runs in two phases. detect.condreach.materialize
// pre-builds the condensation reachability rows of every partition
// component that can be a non-trivial query source (all but the
// minimum id — reverse-topological numbering answers the minimum's
// queries without a row), with CondReach's CAS-publishing worker pool.
// detect.condreach.order then evaluates the O(k²) "does any other
// partition reach p" loop with partitions fanned out over the worker
// budget: every query is a lock-free row load, each worker writes only
// its own partition's First flag, and the flags are pure functions of
// G′ — identical for every worker count and schedule.
func (a *Analysis) partition(reg *telemetry.Registry, fl *flight) {
	scc := a.AugSCC
	byComp := map[int]*Partition{}
	for _, ri := range a.DataRaces {
		r := a.Races[ri]
		// The doubly-directed race edge puts A and B on a common cycle, so
		// both ends are always in the same component.
		comp := scc.Comp[int(r.A)]
		p := byComp[comp]
		if p == nil {
			p = &Partition{Component: comp}
			byComp[comp] = p
		}
		p.Races = append(p.Races, ri)
	}
	for _, p := range byComp {
		seen := map[EventID]bool{}
		for _, ri := range p.Races {
			for _, id := range []EventID{a.Races[ri].A, a.Races[ri].B} {
				if !seen[id] {
					seen[id] = true
					p.Events = append(p.Events, id)
				}
			}
		}
		sort.Slice(p.Events, func(i, j int) bool { return p.Events[i] < p.Events[j] })
	}

	parts := make([]*Partition, 0, len(byComp))
	for _, p := range byComp {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Events[0] < parts[j].Events[0] })

	workers := a.resolveWorkers()
	if reg.Enabled() && len(parts) > 0 {
		reg.Gauge("detect.condreach.workers").SetMax(int64(workers))
	}
	// Both phases fire regardless of worker count or partition count, so
	// flight recordings stay byte-identical across worker counts.
	done := startPhase(reg, fl, "detect.condreach.materialize")
	if a.augCond != nil && len(parts) > 1 {
		minComp := parts[0].Component
		for _, p := range parts[1:] {
			if p.Component < minComp {
				minComp = p.Component
			}
		}
		comps := make([]int, 0, len(parts)-1)
		for _, p := range parts {
			if p.Component != minComp {
				comps = append(comps, p.Component)
			}
		}
		a.augCond.MaterializeRows(comps, workers)
	}
	done()

	// A partition is first iff no OTHER data-race partition reaches it.
	done = startPhase(reg, fl, "detect.condreach.order")
	runUnits(workers, len(parts), func(i int) {
		p := parts[i]
		p.First = true
		for j, q := range parts {
			if i == j {
				continue
			}
			if a.augCompReaches(q.Component, p.Component) {
				p.First = false
				break
			}
		}
	})
	done()
	a.Partitions = make([]Partition, len(parts))
	for i, p := range parts {
		a.Partitions[i] = *p
		if p.First {
			a.FirstPartitions = append(a.FirstPartitions, i)
		}
	}
}

// PartitionPrecedes reports whether partition i precedes partition j in
// the order P: a path exists in G′ from an event of i to an event of j.
func (a *Analysis) PartitionPrecedes(i, j int) bool {
	return a.augCompReaches(a.Partitions[i].Component, a.Partitions[j].Component)
}

// LowerLevelRace describes one lower-level (operation-granularity) race
// candidate underlying a higher-level race, reconstructed from the trace's
// program-counter provenance. It identifies operations statically, the way
// the paper identifies them (§2.1): by processor, program point, and
// location.
type LowerLevelRace struct {
	Loc  program.Addr
	X, Y sim.StaticOp
	// XWrites/YWrites report each side's access mode on Loc.
	XWrites, YWrites bool
}

// Canonical returns the race with sides ordered deterministically.
func (l LowerLevelRace) Canonical() LowerLevelRace {
	if l.X.CPU > l.Y.CPU || (l.X.CPU == l.Y.CPU && l.X.PC > l.Y.PC) {
		l.X, l.Y = l.Y, l.X
		l.XWrites, l.YWrites = l.YWrites, l.XWrites
	}
	return l
}

// String renders the lower-level race.
func (l LowerLevelRace) String() string {
	mode := func(w bool) string {
		if w {
			return "W"
		}
		return "R"
	}
	return fmt.Sprintf("⟨%s:%s, %s:%s⟩@%d",
		mode(l.XWrites), l.X, mode(l.YWrites), l.Y, l.Loc)
}

// LowerLevel expands a higher-level race into its lower-level candidates,
// one per conflicting (location, access-mode) combination.
func (a *Analysis) LowerLevel(r Race) []LowerLevelRace {
	var out []LowerLevelRace
	evA, evB := a.Event(r.A), a.Event(r.B)
	refA, refB := a.Ref(r.A), a.Ref(r.B)
	r.Locs.Range(func(loc int) bool {
		addr := program.Addr(loc)
		for _, xa := range sideAccesses(evA, refA.CPU, addr) {
			for _, ya := range sideAccesses(evB, refB.CPU, addr) {
				if !xa.writes && !ya.writes {
					continue
				}
				out = append(out, LowerLevelRace{
					Loc:     addr,
					X:       sim.StaticOp{CPU: refA.CPU, PC: xa.pc, Loc: addr},
					Y:       sim.StaticOp{CPU: refB.CPU, PC: ya.pc, Loc: addr},
					XWrites: xa.writes, YWrites: ya.writes,
				}.Canonical())
			}
		}
		return true
	})
	return out
}

type sideAccess struct {
	pc     int
	writes bool
}

// sideAccesses lists an event's accesses to loc with their PC provenance.
func sideAccesses(ev *trace.Event, cpu int, loc program.Addr) []sideAccess {
	var out []sideAccess
	switch ev.Kind {
	case trace.Comp:
		if ev.Writes.Contains(int(loc)) {
			out = append(out, sideAccess{pc: ev.WritePC[loc], writes: true})
		}
		if ev.Reads.Contains(int(loc)) {
			out = append(out, sideAccess{pc: ev.ReadPC[loc], writes: false})
		}
	case trace.Sync:
		if ev.Loc == loc {
			out = append(out, sideAccess{pc: ev.PC, writes: ev.IsWriteSync()})
		}
	}
	return out
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"weakrace/internal/bitset"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
)

// comp builds a computation event with the given read and write sets and
// synthetic PC provenance (pc = location).
func comp(reads, writes []int) *trace.Event {
	ev := &trace.Event{
		Kind:     trace.Comp,
		Reads:    bitset.FromSlice(reads),
		Writes:   bitset.FromSlice(writes),
		ReadPC:   map[program.Addr]int{},
		WritePC:  map[program.Addr]int{},
		SyncSeq:  -1,
		Observed: trace.NoEvent,
	}
	for _, l := range reads {
		ev.ReadPC[program.Addr(l)] = l
	}
	for _, l := range writes {
		ev.WritePC[program.Addr(l)] = l
	}
	return ev
}

// syncEv builds a synchronization event.
func syncEv(role memmodel.Role, loc, seq int) *trace.Event {
	return &trace.Event{
		Kind: trace.Sync, Role: role, Loc: program.Addr(loc),
		SyncSeq: seq, Observed: trace.NoEvent,
	}
}

// paired builds an acquire observing the given sync write event.
func paired(loc, seq int, obs trace.EventRef, obsRole memmodel.Role) *trace.Event {
	return &trace.Event{
		Kind: trace.Sync, Role: memmodel.RoleAcquire, Loc: program.Addr(loc),
		SyncSeq: seq, Observed: obs, ObservedRole: obsRole,
	}
}

func mkTrace(numLocs int, streams ...[]*trace.Event) *trace.Trace {
	return &trace.Trace{
		ProgramName: "test", NumCPUs: len(streams), NumLocations: numLocs,
		PerCPU: streams,
	}
}

func analyze(t *testing.T, tr *trace.Trace, opts Options) *Analysis {
	t.Helper()
	a, err := Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// Figure 1a: P1 writes x then y; P2 reads y then x; no synchronization.
// One data race per location, both in one first partition? No — P1 and P2
// each have a single computation event, so there is exactly one
// higher-level race covering both locations.
func TestFigure1aRaceDetected(t *testing.T) {
	const x, y = 0, 1
	tr := mkTrace(2,
		[]*trace.Event{comp(nil, []int{x, y})},
		[]*trace.Event{comp([]int{y, x}, nil)},
	)
	a := analyze(t, tr, Options{})
	if a.RaceFree() {
		t.Fatal("Figure 1a execution reported race-free")
	}
	if len(a.Races) != 1 {
		t.Fatalf("races = %d, want 1", len(a.Races))
	}
	r := a.Races[0]
	if !r.Data {
		t.Fatal("race not classified as data race")
	}
	if !r.Locs.Contains(x) || !r.Locs.Contains(y) {
		t.Fatalf("race locations = %s, want {0, 1}", r.Locs)
	}
	if len(a.Partitions) != 1 || len(a.FirstPartitions) != 1 {
		t.Fatalf("partitions = %d first = %d, want 1 and 1", len(a.Partitions), len(a.FirstPartitions))
	}
	if !a.Partitions[0].First {
		t.Fatal("sole partition not first")
	}
}

// Figure 1b: proper Unset/Test&Set pairing orders the conflicting data
// operations; no data races (Theorem 4.1: no first partitions).
func TestFigure1bRaceFree(t *testing.T) {
	const x, y, s = 0, 1, 2
	p1 := []*trace.Event{
		comp(nil, []int{x, y}),
		syncEv(memmodel.RoleRelease, s, 0),
	}
	p2 := []*trace.Event{
		paired(s, 1, trace.EventRef{CPU: 0, Index: 1}, memmodel.RoleRelease),
		syncEv(memmodel.RoleSyncOther, s, 2),
		comp([]int{y, x}, nil),
	}
	tr := mkTrace(3, p1, p2)
	a := analyze(t, tr, Options{})
	if !a.RaceFree() {
		t.Fatalf("Figure 1b execution reported %d data races", len(a.DataRaces))
	}
	if len(a.FirstPartitions) != 0 {
		t.Fatal("race-free execution has first partitions (Theorem 4.1)")
	}
}

// The Figure 2b / Figure 3 execution, hand-built:
//
//	P1: comp{W Q, W QEmpty}               then Unset(S)
//	P2: comp{R QEmpty, R Q}, Unset(S),    comp{W 11, W 12, W 13}
//	P3: comp{W 10, W 11, W 12}, Unset(S), comp{R 10, W 10}
//
// Races: ⟨P1.c, P2.c1⟩ on {Q, QEmpty} (the first partition) and
// ⟨P2.c2, P3.c1⟩, ⟨P2.c2 ∼ P3.c2? no — they share no location… use 10⟩.
func TestFigure2Partitions(t *testing.T) {
	const q, qEmpty, s = 0, 1, 2
	p1 := []*trace.Event{
		comp(nil, []int{q, qEmpty}),
		syncEv(memmodel.RoleRelease, s, 0),
	}
	p2 := []*trace.Event{
		comp([]int{qEmpty, q}, nil),
		syncEv(memmodel.RoleRelease, s, 1),
		comp(nil, []int{11, 12, 13}),
	}
	p3 := []*trace.Event{
		comp(nil, []int{10, 11, 12}),
		syncEv(memmodel.RoleRelease, s, 2),
		comp([]int{11}, []int{11}),
	}
	tr := mkTrace(16, p1, p2, p3)
	a := analyze(t, tr, Options{})

	// Data races: ⟨P1.0,P2.0⟩, ⟨P2.2,P3.0⟩, ⟨P2.2,P3.2⟩ — plus sync races
	// among the unpaired Unsets on S.
	if len(a.DataRaces) != 3 {
		t.Fatalf("data races = %d, want 3", len(a.DataRaces))
	}
	if len(a.Partitions) != 2 {
		t.Fatalf("partitions = %d, want 2", len(a.Partitions))
	}
	if len(a.FirstPartitions) != 1 {
		t.Fatalf("first partitions = %d, want 1", len(a.FirstPartitions))
	}
	first := a.Partitions[a.FirstPartitions[0]]
	if len(first.Races) != 1 {
		t.Fatalf("first partition has %d races, want 1", len(first.Races))
	}
	fr := a.Races[first.Races[0]]
	if !fr.Locs.Contains(q) || !fr.Locs.Contains(qEmpty) {
		t.Fatalf("first partition race on %s, want {Q, QEmpty}", fr.Locs)
	}
	// The non-first partition holds the two region races.
	var nonFirst *Partition
	for i := range a.Partitions {
		if !a.Partitions[i].First {
			nonFirst = &a.Partitions[i]
		}
	}
	if nonFirst == nil || len(nonFirst.Races) != 2 {
		t.Fatalf("non-first partition wrong: %+v", nonFirst)
	}
	// Ordering: first precedes non-first, not vice versa.
	var fi, ni int
	for i := range a.Partitions {
		if a.Partitions[i].First {
			fi = i
		} else {
			ni = i
		}
	}
	if !a.PartitionPrecedes(fi, ni) {
		t.Fatal("first partition does not precede non-first")
	}
	if a.PartitionPrecedes(ni, fi) {
		t.Fatal("non-first partition precedes first")
	}
}

// The pairing policy changes which so1 edges exist: a Test&Set's write
// pairs under LiberalPairing only.
func TestPairingPolicy(t *testing.T) {
	const x, s = 0, 1
	p1 := []*trace.Event{
		comp(nil, []int{x}),
		syncEv(memmodel.RoleSyncOther, s, 0), // Test&Set's write half
	}
	p2 := []*trace.Event{
		paired(s, 1, trace.EventRef{CPU: 0, Index: 1}, memmodel.RoleSyncOther),
		comp([]int{x}, nil),
	}

	conservative := analyze(t, mkTrace(2, p1, p2), Options{Pairing: memmodel.ConservativePairing})
	if conservative.RaceFree() {
		t.Fatal("conservative pairing must not order via a Test&Set write")
	}

	liberal := analyze(t, mkTrace(2, p1, p2), Options{Pairing: memmodel.LiberalPairing})
	if !liberal.RaceFree() {
		t.Fatal("liberal pairing should order via the Test&Set write")
	}
}

// A weak execution can give hb1 cycles (§3.1); the detector must treat
// mutually-reachable events as ordered and not report them as races.
func TestHBCycleTolerated(t *testing.T) {
	const a, b, x = 0, 1, 2
	// P1: acquire(a) (observes P2's release), comp{W x}, release(b)
	// P2: acquire(b) (observes P1's release), comp{R x}, release(a)
	// so1 edges create the cycle: P2.rel(a)→P1.acq(a)→…→P1.rel(b)→P2.acq(b)→…→P2.rel(a).
	p1 := []*trace.Event{
		paired(a, 0, trace.EventRef{CPU: 1, Index: 2}, memmodel.RoleRelease),
		comp(nil, []int{x}),
		syncEv(memmodel.RoleRelease, b, 0),
	}
	p2 := []*trace.Event{
		paired(b, 1, trace.EventRef{CPU: 0, Index: 2}, memmodel.RoleRelease),
		comp([]int{x}, nil),
		syncEv(memmodel.RoleRelease, a, 1),
	}
	an := analyze(t, mkTrace(3, p1, p2), Options{})
	// Every event is on one big hb1 cycle: all pairs are (degenerately)
	// ordered, so no races are reported and the analysis must not wedge.
	if len(an.Races) != 0 {
		t.Fatalf("races on a full hb1 cycle = %d, want 0", len(an.Races))
	}
}

// Two reads never race; write/write and read/write do.
func TestConflictModes(t *testing.T) {
	// Read-read: no race.
	a := analyze(t, mkTrace(1,
		[]*trace.Event{comp([]int{0}, nil)},
		[]*trace.Event{comp([]int{0}, nil)},
	), Options{})
	if len(a.Races) != 0 {
		t.Fatal("read-read pair reported as race")
	}
	// Write-write: race.
	a = analyze(t, mkTrace(1,
		[]*trace.Event{comp(nil, []int{0})},
		[]*trace.Event{comp(nil, []int{0})},
	), Options{})
	if len(a.DataRaces) != 1 {
		t.Fatal("write-write race missed")
	}
	// Sync vs data on the same location: a data race (§2, Figure 1b
	// commentary: "no synchronization operation conflicts with a data
	// operation" is part of race freedom).
	a = analyze(t, mkTrace(1,
		[]*trace.Event{syncEv(memmodel.RoleRelease, 0, 0)},
		[]*trace.Event{comp([]int{0}, nil)},
	), Options{})
	if len(a.DataRaces) != 1 {
		t.Fatal("sync-data conflict not reported as data race")
	}
	// Sync vs sync: a race, but not a data race.
	a = analyze(t, mkTrace(1,
		[]*trace.Event{syncEv(memmodel.RoleRelease, 0, 0)},
		[]*trace.Event{syncEv(memmodel.RoleSyncOther, 0, 1)},
	), Options{})
	if len(a.Races) != 1 || a.Races[0].Data {
		t.Fatalf("sync-sync pair: races=%d", len(a.Races))
	}
	if len(a.DataRaces) != 0 || len(a.FirstPartitions) != 0 {
		t.Fatal("sync race must not form a data-race partition")
	}
}

func TestSameCPUNeverRaces(t *testing.T) {
	a := analyze(t, mkTrace(1, []*trace.Event{
		comp(nil, []int{0}),
		comp(nil, []int{0}),
	}), Options{})
	if len(a.Races) != 0 {
		t.Fatal("same-processor events reported racing")
	}
}

func TestIDRefRoundTrip(t *testing.T) {
	tr := mkTrace(4,
		[]*trace.Event{comp(nil, []int{0}), comp(nil, []int{1})},
		[]*trace.Event{comp(nil, []int{2})},
		[]*trace.Event{comp(nil, []int{3}), comp([]int{0}, nil), comp([]int{1}, nil)},
	)
	a := analyze(t, tr, Options{})
	for c := range tr.PerCPU {
		for i := range tr.PerCPU[c] {
			ref := trace.EventRef{CPU: c, Index: i}
			id := a.ID(ref)
			if got := a.Ref(id); got != ref {
				t.Fatalf("Ref(ID(%v)) = %v", ref, got)
			}
			if a.Event(id) != tr.PerCPU[c][i] {
				t.Fatalf("Event(%d) wrong", id)
			}
		}
	}
}

func TestLowerLevelExpansion(t *testing.T) {
	const x, y = 0, 1
	tr := mkTrace(2,
		[]*trace.Event{comp(nil, []int{x, y})},
		[]*trace.Event{comp([]int{y, x}, nil)},
	)
	a := analyze(t, tr, Options{})
	lls := a.LowerLevel(a.Races[0])
	if len(lls) != 2 {
		t.Fatalf("lower-level races = %d, want 2: %v", len(lls), lls)
	}
	seen := map[program.Addr]bool{}
	for _, ll := range lls {
		seen[ll.Loc] = true
		if !ll.XWrites && !ll.YWrites {
			t.Fatalf("lower-level race with no write: %v", ll)
		}
		// PC provenance in comp() is pc=loc.
		if ll.X.PC != int(ll.Loc) || ll.Y.PC != int(ll.Loc) {
			t.Fatalf("lower-level provenance wrong: %v", ll)
		}
	}
	if !seen[x] || !seen[y] {
		t.Fatalf("lower-level races missing a location: %v", lls)
	}
}

// End-to-end through the simulator: the Figure 1b program is race-free on
// every model and seed; the Figure 1a program always races.
func TestEndToEndWithSimulator(t *testing.T) {
	const x, y, s = 0, 1, 2
	b := program.NewBuilder("fig1b", 3, 2)
	b.Thread("P1").
		Write(program.At(x), program.Imm(1)).
		Write(program.At(y), program.Imm(1)).
		Unset(program.At(s))
	b.Thread("P2").
		Label("spin").
		TestAndSet(0, program.At(s)).
		BranchNotZero(0, "spin").
		Read(0, program.At(y)).
		Read(1, program.At(x))
	fig1b := b.MustBuild()

	b = program.NewBuilder("fig1a", 2, 2)
	b.Thread("P1").
		Write(program.At(x), program.Imm(1)).
		Write(program.At(y), program.Imm(1))
	b.Thread("P2").
		Read(0, program.At(y)).
		Read(1, program.At(x))
	fig1a := b.MustBuild()

	for _, model := range memmodel.All {
		for seed := int64(0); seed < 30; seed++ {
			r, err := sim.Run(fig1b, sim.Config{
				Model: model, Seed: seed,
				InitMemory: map[program.Addr]int64{s: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			a := analyze(t, trace.FromExecution(r.Exec), Options{})
			if !a.RaceFree() {
				t.Fatalf("%v seed %d: fig1b reported racy", model, seed)
			}

			r, err = sim.Run(fig1a, sim.Config{Model: model, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			a = analyze(t, trace.FromExecution(r.Exec), Options{})
			if a.RaceFree() {
				t.Fatalf("%v seed %d: fig1a reported race-free", model, seed)
			}
			if len(a.FirstPartitions) == 0 {
				t.Fatalf("%v seed %d: racy execution with no first partition (Theorem 4.1)", model, seed)
			}
		}
	}
}

// randomTrace builds a structurally valid random trace: per-location dense
// sync sequences, acquires observing the latest preceding sync write.
func randomTrace(rng *rand.Rand) *trace.Trace {
	nCPU := 2 + rng.Intn(3)
	nLocks := 1 + rng.Intn(2)
	nData := 4 + rng.Intn(6)
	numLocs := nLocks + nData
	tr := &trace.Trace{
		ProgramName: "random", NumCPUs: nCPU, NumLocations: numLocs,
		PerCPU: make([][]*trace.Event, nCPU),
	}
	// lastWrite[lock] is the latest sync write event on that lock.
	lastWrite := make([]trace.EventRef, nLocks)
	lastRole := make([]memmodel.Role, nLocks)
	for i := range lastWrite {
		lastWrite[i] = trace.NoEvent
	}
	seq := make([]int, nLocks)
	steps := 10 + rng.Intn(30)
	for s := 0; s < steps; s++ {
		c := rng.Intn(nCPU)
		if rng.Float64() < 0.45 {
			// Sync event on a random lock.
			lk := rng.Intn(nLocks)
			var ev *trace.Event
			switch rng.Intn(3) {
			case 0:
				ev = syncEv(memmodel.RoleRelease, lk, seq[lk])
			case 1:
				ev = syncEv(memmodel.RoleSyncOther, lk, seq[lk])
			default:
				if lastWrite[lk].Valid() {
					ev = paired(lk, seq[lk], lastWrite[lk], lastRole[lk])
				} else {
					ev = syncEv(memmodel.RoleAcquire, lk, seq[lk])
					ev.Observed = trace.NoEvent
				}
			}
			seq[lk]++
			ref := trace.EventRef{CPU: c, Index: len(tr.PerCPU[c])}
			tr.PerCPU[c] = append(tr.PerCPU[c], ev)
			if ev.IsWriteSync() {
				lastWrite[lk] = ref
				lastRole[lk] = ev.Role
			}
		} else {
			var reads, writes []int
			for k := 0; k < 1+rng.Intn(3); k++ {
				loc := nLocks + rng.Intn(nData)
				if rng.Intn(2) == 0 {
					reads = append(reads, loc)
				} else {
					writes = append(writes, loc)
				}
			}
			tr.PerCPU[c] = append(tr.PerCPU[c], comp(reads, writes))
		}
	}
	// Merge adjacent comp events (traces never contain two consecutive
	// computation events on one processor).
	for c := range tr.PerCPU {
		var out []*trace.Event
		for _, ev := range tr.PerCPU[c] {
			if ev.Kind == trace.Comp && len(out) > 0 && out[len(out)-1].Kind == trace.Comp {
				prev := out[len(out)-1]
				prev.Reads.Union(ev.Reads)
				prev.Writes.Union(ev.Writes)
				for k, v := range ev.ReadPC {
					if _, ok := prev.ReadPC[k]; !ok {
						prev.ReadPC[k] = v
					}
				}
				for k, v := range ev.WritePC {
					if _, ok := prev.WritePC[k]; !ok {
						prev.WritePC[k] = v
					}
				}
				continue
			}
			out = append(out, ev)
		}
		tr.PerCPU[c] = out
	}
	// Remap pairing refs broken by the merge: rebuild them by replaying
	// sync order. Simpler: drop pairings whose target is no longer a sync
	// write at that index.
	for _, evs := range tr.PerCPU {
		for _, ev := range evs {
			if ev.Kind == trace.Sync && ev.Observed.Valid() {
				obs := tr.Event(ev.Observed)
				if obs == nil || !obs.IsWriteSync() || obs.Loc != ev.Loc {
					ev.Observed = trace.NoEvent
					ev.ObservedRole = memmodel.RoleData
				}
			}
		}
	}
	return tr
}

// Property: detector invariants hold on random traces.
func TestQuickDetectorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		if err := tr.Validate(); err != nil {
			// Random generator bug, not a detector property — surface it.
			t.Fatalf("random trace invalid: %v", err)
		}
		a, err := Analyze(tr, Options{})
		if err != nil {
			return false
		}
		// (a) every race is a genuinely unordered conflicting pair.
		for _, r := range a.Races {
			if a.HBOrdered(r.A, r.B) {
				return false
			}
			if r.Locs.Empty() {
				return false
			}
		}
		// (b) each partition's events share one SCC of G′.
		sccs := a.AugSCC
		for _, p := range a.Partitions {
			for _, ev := range p.Events {
				if sccs.Comp[int(ev)] != p.Component {
					return false
				}
			}
		}
		// (c) no other data-race partition reaches a first partition.
		for _, fi := range a.FirstPartitions {
			for j := range a.Partitions {
				if j == fi {
					continue
				}
				if a.PartitionPrecedes(j, fi) {
					return false
				}
			}
		}
		// (d) Theorem 4.1 both ways.
		if (len(a.FirstPartitions) == 0) != (len(a.DataRaces) == 0) {
			return false
		}
		// (e) every data race belongs to exactly one partition.
		n := 0
		for _, p := range a.Partitions {
			n += len(p.Races)
		}
		return n == len(a.DataRaces)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

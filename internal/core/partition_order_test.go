package core

import (
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/trace"
)

// chainTrace builds a trace with three data-race partitions in a strict
// chain. P1 writes x, y, z in segments separated by releases of lock L;
// P2 reads x, y, z in segments separated by acquires pairing with those
// releases. Each read segment sits *before* the acquire that would have
// ordered it, so every location races, and the acquire chain threads the
// partitions into a total order: the x-partition's events reach the
// y-partition's, which reach the z-partition's, but never backwards.
func chainTrace() *trace.Trace {
	const x, y, z, L = 0, 1, 2, 3
	rel := func(seq int) *trace.Event { return syncEv(memmodel.RoleRelease, L, seq) }
	acq := func(seq, obsIdx int) *trace.Event {
		return paired(L, seq, trace.EventRef{CPU: 0, Index: obsIdx}, memmodel.RoleRelease)
	}
	return mkTrace(4,
		[]*trace.Event{ // P1: ids 0..4
			comp(nil, []int{x}), rel(0), comp(nil, []int{y}), rel(2), comp(nil, []int{z}),
		},
		[]*trace.Event{ // P2: ids 5..9
			comp([]int{x}, nil), acq(1, 1), comp([]int{y}, nil), acq(3, 3), comp([]int{z}, nil),
		},
	)
}

// TestPartitionOrderingChain pins down the partition order machinery on a
// crafted multi-partition trace, on both the implicit (default) and
// explicit G′ paths: PartitionPrecedes antisymmetry, FirstPartitions
// minimality, and the expected chain structure.
func TestPartitionOrderingChain(t *testing.T) {
	for _, explicit := range []bool{false, true} {
		name := "implicit"
		if explicit {
			name = "explicit"
		}
		t.Run(name, func(t *testing.T) {
			a := analyze(t, chainTrace(), Options{ExplicitAug: explicit})
			if len(a.DataRaces) != 3 {
				t.Fatalf("want 3 data races, got %d: %+v", len(a.DataRaces), a.Races)
			}
			if len(a.Partitions) != 3 {
				t.Fatalf("want 3 partitions, got %d: %+v", len(a.Partitions), a.Partitions)
			}
			// Partitions sort by smallest event, so index i is the race on
			// location i, with events {P1 segment i, P2 segment i}.
			wantEvents := [][]EventID{{0, 5}, {2, 7}, {4, 9}}
			for i, p := range a.Partitions {
				if len(p.Events) != 2 || p.Events[0] != wantEvents[i][0] || p.Events[1] != wantEvents[i][1] {
					t.Fatalf("partition %d events = %v, want %v", i, p.Events, wantEvents[i])
				}
			}
			// The chain: i precedes j exactly when i < j.
			for i := range a.Partitions {
				for j := range a.Partitions {
					if i == j {
						continue
					}
					if got := a.PartitionPrecedes(i, j); got != (i < j) {
						t.Fatalf("PartitionPrecedes(%d,%d) = %v, want %v", i, j, got, i < j)
					}
					// Antisymmetry: never both directions between distinct
					// partitions (they are distinct SCCs).
					if a.PartitionPrecedes(i, j) && a.PartitionPrecedes(j, i) {
						t.Fatalf("PartitionPrecedes not antisymmetric on (%d,%d)", i, j)
					}
				}
			}
			// FirstPartitions minimality: a partition is listed iff no other
			// partition precedes it.
			isFirst := map[int]bool{}
			for _, pi := range a.FirstPartitions {
				isFirst[pi] = true
			}
			for i := range a.Partitions {
				preceded := false
				for j := range a.Partitions {
					if j != i && a.PartitionPrecedes(j, i) {
						preceded = true
					}
				}
				if isFirst[i] == preceded {
					t.Fatalf("partition %d: first=%v but preceded=%v", i, isFirst[i], preceded)
				}
				if a.Partitions[i].First != isFirst[i] {
					t.Fatalf("partition %d: First flag %v disagrees with FirstPartitions", i, a.Partitions[i].First)
				}
			}
			if len(a.FirstPartitions) != 1 || a.FirstPartitions[0] != 0 {
				t.Fatalf("want first partitions [0], got %v", a.FirstPartitions)
			}
		})
	}
}

// TestTheorem41BothWays checks Theorem 4.1 in both directions on both
// G′ paths: a racy trace has at least one first partition, and a
// properly-synchronized trace has no data races and no first partitions.
func TestTheorem41BothWays(t *testing.T) {
	const x, L = 0, 1
	clean := mkTrace(2,
		[]*trace.Event{comp(nil, []int{x}), syncEv(memmodel.RoleRelease, L, 0)},
		[]*trace.Event{
			paired(L, 1, trace.EventRef{CPU: 0, Index: 1}, memmodel.RoleRelease),
			comp([]int{x}, nil),
		},
	)
	for _, explicit := range []bool{false, true} {
		name := "implicit"
		if explicit {
			name = "explicit"
		}
		t.Run(name, func(t *testing.T) {
			racy := analyze(t, chainTrace(), Options{ExplicitAug: explicit})
			if len(racy.DataRaces) == 0 || len(racy.FirstPartitions) == 0 {
				t.Fatalf("racy trace: %d data races, %d first partitions — Theorem 4.1 (⇐) violated",
					len(racy.DataRaces), len(racy.FirstPartitions))
			}
			cleanA := analyze(t, clean, Options{ExplicitAug: explicit})
			if len(cleanA.DataRaces) != 0 || len(cleanA.FirstPartitions) != 0 {
				t.Fatalf("synchronized trace: %d data races, %d first partitions — Theorem 4.1 (⇒) violated",
					len(cleanA.DataRaces), len(cleanA.FirstPartitions))
			}
		})
	}
}

package core

// This file exposes the paper's Definition 3.3 — the "affects" relation
// between races — directly. The partitioning in core.go already uses it
// implicitly through the augmented graph; these helpers let callers (and
// tests) query the relation itself and classify races the way §5 does
// (first-partition races vs downstream artifacts).

// Affects reports whether race ri affects race rj (Definition 3.3):
// ⟨x,y⟩ A ⟨x′,y′⟩ iff some event of ri reaches some event of rj in the
// augmented graph G′. A race trivially affects itself (its events are
// mutually reachable through its own doubly-directed edge).
func (a *Analysis) Affects(ri, rj int) bool {
	x, y := a.Races[ri], a.Races[rj]
	from := [2]EventID{x.A, x.B}
	to := [2]EventID{y.A, y.B}
	// hb1 ⊆ G′, so when the timestamp layer is live its O(1) epoch
	// compares get first shot at every pair before any condensation DFS:
	// an hb1-ordered pair anywhere settles the whole relation.
	if a.HBTime != nil {
		for _, u := range from {
			for _, v := range to {
				if a.HBTime.Reaches(int(u), int(v)) {
					vcFastpathHit()
					return true
				}
			}
		}
	}
	for _, u := range from {
		for _, v := range to {
			if a.augReaches(int(u), int(v)) {
				return true
			}
		}
	}
	return false
}

// AffectedBy returns the indices of data races that affect race ri,
// excluding races in ri's own partition (mutual affection within a
// strongly connected component is what makes a partition, not an
// ordering).
func (a *Analysis) AffectedBy(ri int) []int {
	scc := a.AugSCC
	comp := scc.Comp[int(a.Races[ri].A)]
	var out []int
	for _, rj := range a.DataRaces {
		if rj == ri {
			continue
		}
		if scc.Comp[int(a.Races[rj].A)] == comp {
			continue
		}
		if a.Affects(rj, ri) {
			out = append(out, rj)
		}
	}
	return out
}

// Unaffected reports whether the data race ri is affected by no data race
// outside its own partition — the paper's "first data races (those not
// affected by others)". Every race of a first partition is unaffected,
// and vice versa.
func (a *Analysis) Unaffected(ri int) bool {
	return len(a.AffectedBy(ri)) == 0
}

// RaceOfPartition returns the index of the partition containing data race
// ri, or -1 if ri is not a data race.
func (a *Analysis) RaceOfPartition(ri int) int {
	if !a.Races[ri].Data {
		return -1
	}
	comp := a.AugSCC.Comp[int(a.Races[ri].A)]
	for pi := range a.Partitions {
		if a.Partitions[pi].Component == comp {
			return pi
		}
	}
	return -1
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"weakrace/internal/bitset"
	"weakrace/internal/program"
	"weakrace/internal/trace"
)

// permuteTrace renames every location through perm, leaving structure
// untouched.
func permuteTrace(t *trace.Trace, perm []int) *trace.Trace {
	out := &trace.Trace{
		ProgramName:  t.ProgramName,
		Model:        t.Model,
		Seed:         t.Seed,
		NumCPUs:      t.NumCPUs,
		NumLocations: t.NumLocations,
		PerCPU:       make([][]*trace.Event, t.NumCPUs),
	}
	mapSet := func(s *bitset.Set) *bitset.Set {
		n := bitset.New(t.NumLocations)
		s.Range(func(v int) bool {
			n.Add(perm[v])
			return true
		})
		return n
	}
	mapPCs := func(m map[program.Addr]int) map[program.Addr]int {
		out := make(map[program.Addr]int, len(m))
		for k, v := range m {
			out[program.Addr(perm[k])] = v
		}
		return out
	}
	for c, evs := range t.PerCPU {
		for _, ev := range evs {
			ne := *ev
			if ev.Kind == trace.Comp {
				ne.Reads = mapSet(ev.Reads)
				ne.Writes = mapSet(ev.Writes)
				ne.ReadPC = mapPCs(ev.ReadPC)
				ne.WritePC = mapPCs(ev.WritePC)
			} else {
				ne.Loc = program.Addr(perm[ev.Loc])
			}
			out.PerCPU[c] = append(out.PerCPU[c], &ne)
		}
	}
	return out
}

// Metamorphic property: renaming locations permutes race location sets
// and changes nothing else — race pairs, partitions, and first partitions
// are identical.
func TestQuickLocationRenamingEquivariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		perm := rng.Perm(tr.NumLocations)
		a1, err := Analyze(tr, Options{})
		if err != nil {
			return false
		}
		a2, err := Analyze(permuteTrace(tr, perm), Options{})
		if err != nil {
			return false
		}
		if len(a1.Races) != len(a2.Races) ||
			len(a1.DataRaces) != len(a2.DataRaces) ||
			len(a1.Partitions) != len(a2.Partitions) ||
			len(a1.FirstPartitions) != len(a2.FirstPartitions) {
			return false
		}
		for i := range a1.Races {
			r1, r2 := a1.Races[i], a2.Races[i]
			if r1.A != r2.A || r1.B != r2.B || r1.Data != r2.Data {
				return false
			}
			mapped := bitset.New(0)
			r1.Locs.Range(func(v int) bool {
				mapped.Add(perm[v])
				return true
			})
			if !mapped.Equal(r2.Locs) {
				return false
			}
		}
		for i := range a1.Partitions {
			if a1.Partitions[i].First != a2.Partitions[i].First {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Metamorphic property: appending a processor that touches only fresh
// locations preserves every existing race and partition verdict.
func TestQuickIrrelevantThreadInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		a1, err := Analyze(tr, Options{})
		if err != nil {
			return false
		}

		// Extend with a processor working on brand-new locations.
		ext := &trace.Trace{
			ProgramName:  tr.ProgramName,
			Model:        tr.Model,
			Seed:         tr.Seed,
			NumCPUs:      tr.NumCPUs + 1,
			NumLocations: tr.NumLocations + 4,
			PerCPU:       append(append([][]*trace.Event{}, tr.PerCPU...), nil),
		}
		fresh := tr.NumLocations
		ext.PerCPU[tr.NumCPUs] = []*trace.Event{
			comp([]int{fresh, fresh + 1}, []int{fresh + 2, fresh + 3}),
		}
		a2, err := Analyze(ext, Options{})
		if err != nil {
			return false
		}

		if len(a1.Races) != len(a2.Races) ||
			len(a1.DataRaces) != len(a2.DataRaces) ||
			len(a1.FirstPartitions) != len(a2.FirstPartitions) {
			return false
		}
		// Event ids of the original processors are unchanged
		// (processor-major numbering appends the new processor last), so
		// races must match exactly.
		for i := range a1.Races {
			if a1.Races[i].A != a2.Races[i].A || a1.Races[i].B != a2.Races[i].B ||
				!a1.Races[i].Locs.Equal(a2.Races[i].Locs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

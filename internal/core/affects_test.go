package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"weakrace/internal/memmodel"
	"weakrace/internal/trace"
)

// Two independent races: neither affects the other; both unaffected.
func TestAffectsIndependentRaces(t *testing.T) {
	tr := mkTrace(2,
		[]*trace.Event{comp(nil, []int{0})},
		[]*trace.Event{comp([]int{0}, nil)},
		[]*trace.Event{comp(nil, []int{1})},
		[]*trace.Event{comp([]int{1}, nil)},
	)
	a := analyze(t, tr, Options{})
	if len(a.Races) != 2 {
		t.Fatalf("races = %d", len(a.Races))
	}
	if a.Affects(0, 1) || a.Affects(1, 0) {
		t.Fatal("independent races affect each other")
	}
	if !a.Affects(0, 0) || !a.Affects(1, 1) {
		t.Fatal("races must trivially affect themselves")
	}
	for _, ri := range a.DataRaces {
		if !a.Unaffected(ri) {
			t.Fatalf("race %d should be unaffected", ri)
		}
	}
	if len(a.FirstPartitions) != 2 {
		t.Fatalf("first partitions = %d, want 2", len(a.FirstPartitions))
	}
}

// A race chain: stage 0's race affects stage 1's race but not conversely.
func TestAffectsChain(t *testing.T) {
	// P1: comp{W0}, rel(2), comp{W1}; P2: comp{R0}, rel(3), comp{R1}.
	p1 := []*trace.Event{
		comp(nil, []int{0}),
		syncEv(memmodel.RoleRelease, 2, 0),
		comp(nil, []int{1}),
	}
	p2 := []*trace.Event{
		comp([]int{0}, nil),
		syncEv(memmodel.RoleRelease, 3, 0),
		comp([]int{1}, nil),
	}
	a := analyze(t, mkTrace(4, p1, p2), Options{})
	if len(a.DataRaces) != 2 {
		t.Fatalf("data races = %d", len(a.DataRaces))
	}
	// Identify which race is on location 0.
	r0, r1 := 0, 1
	if !a.Races[0].Locs.Contains(0) {
		r0, r1 = 1, 0
	}
	if !a.Affects(r0, r1) {
		t.Fatal("stage-0 race should affect stage-1 race")
	}
	if a.Affects(r1, r0) {
		t.Fatal("stage-1 race should not affect stage-0 race")
	}
	if !a.Unaffected(r0) || a.Unaffected(r1) {
		t.Fatal("unaffected classification wrong")
	}
	if got := a.AffectedBy(r1); len(got) != 1 || got[0] != r0 {
		t.Fatalf("AffectedBy(stage1) = %v", got)
	}
	if a.RaceOfPartition(r0) == a.RaceOfPartition(r1) {
		t.Fatal("chain races must be in different partitions")
	}
}

// Property: a data race is unaffected iff its partition is first — the
// paper's definition of the reportable set, cross-checked against the
// SCC-based computation on random traces.
func TestQuickUnaffectedIffFirstPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		a, err := Analyze(tr, Options{})
		if err != nil {
			return false
		}
		for _, ri := range a.DataRaces {
			pi := a.RaceOfPartition(ri)
			if pi < 0 {
				return false
			}
			if a.Unaffected(ri) != a.Partitions[pi].First {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRaceOfPartitionSyncRace(t *testing.T) {
	tr := mkTrace(1,
		[]*trace.Event{syncEv(memmodel.RoleRelease, 0, 0)},
		[]*trace.Event{syncEv(memmodel.RoleSyncOther, 0, 1)},
	)
	a := analyze(t, tr, Options{})
	if len(a.Races) != 1 {
		t.Fatalf("races = %d", len(a.Races))
	}
	if got := a.RaceOfPartition(0); got != -1 {
		t.Fatalf("sync race partition = %d, want -1", got)
	}
}

package core

// Flight-recorder instrumentation: when Options.Flight carries an
// export.Recorder, Analyze records a structured log of the run — the
// trace's events, every hb1 edge tagged with its origin (po or so1),
// the race-partner edges of G′, the detection phases as a live timeline,
// and the races and partitions found. With a nil recorder every hook
// below is a pointer check; the hot paths do no formatting, no
// allocation, and no time calls.

import (
	"fmt"
	"time"

	"weakrace/internal/memmodel"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/trace"
)

// flight is the per-Analyze recording context: the shared recorder plus
// this analysis's sequence number and timeline track.
type flight struct {
	fr    *export.Recorder
	seq   int
	track string
}

// newFlight allocates a recording context, or nil when no recorder is
// attached (the zero-overhead path).
func newFlight(fr *export.Recorder) *flight {
	if fr == nil {
		return nil
	}
	seq := fr.NextSeq()
	return &flight{fr: fr, seq: seq, track: fmt.Sprintf("analysis %d", seq)}
}

// startPhase begins a telemetry span and, when a flight recorder is
// attached, a flight phase. The returned func ends both. With telemetry
// disabled and no recorder this costs one atomic load and one nil check.
func startPhase(reg *telemetry.Registry, fl *flight, name string) func() {
	sp := reg.StartSpan(name)
	if fl == nil {
		return sp.End
	}
	t0 := time.Now()
	return func() {
		sp.End()
		fl.fr.Phase(fl.seq, name, fl.track, t0)
	}
}

// record dumps the analysis's structure into the flight log: meta,
// events, hb1 edges by origin, G′ partner edges, races, and partitions.
// Runs once per Analyze, after the pipeline, off the hot path.
func (fl *flight) record(a *Analysis) {
	t := a.Trace
	fl.emit(export.Record{Kind: export.KindMeta, Meta: &export.MetaRec{
		Tool:      "core.Analyze",
		Program:   t.ProgramName,
		Model:     t.Model.String(),
		Seed:      t.Seed,
		CPUs:      t.NumCPUs,
		Locations: t.NumLocations,
		Events:    a.NumEvents,
	}})
	for c, evs := range t.PerCPU {
		for i, ev := range evs {
			fl.emit(export.Record{Kind: export.KindEvent, Event: &export.EventRec{
				CPU: c, Index: i, Kind: ev.Kind.String(), Desc: ev.String(),
			}})
		}
	}
	// hb1 edges, re-derived from the trace the same way buildHB builds
	// them, so each carries its origin tag without the builder paying for
	// provenance it does not need.
	for c, evs := range t.PerCPU {
		for i, ev := range evs {
			id := int(a.ID(trace.EventRef{CPU: c, Index: i}))
			if i+1 < len(evs) {
				fl.emit(export.Record{Kind: export.KindEdge, Edge: &export.EdgeRec{
					From: id, To: id + 1, Origin: export.OriginPO,
				}})
			}
			if ev.Kind == trace.Sync && ev.Role == memmodel.RoleAcquire &&
				ev.Observed.Valid() && a.Options.Pairing.CanPair(ev.ObservedRole) {
				fl.emit(export.Record{Kind: export.KindEdge, Edge: &export.EdgeRec{
					From: int(a.ID(ev.Observed)), To: id, Origin: export.OriginSO1,
				}})
			}
		}
	}
	// Partner edges: one per race (each doubly directed, recorded once
	// with From < To). This is the un-collapsed G′ augmentation — the
	// implicit path's per-CPU-minimal partner lists are an equivalent
	// compression of exactly these edges.
	for _, r := range a.Races {
		fl.emit(export.Record{Kind: export.KindEdge, Edge: &export.EdgeRec{
			From: int(r.A), To: int(r.B), Origin: export.OriginPartner,
		}})
	}
	for _, r := range a.Races {
		fl.emit(export.Record{Kind: export.KindRace, Race: &export.RaceRec{
			A: int(r.A), B: int(r.B),
			ARef: a.Ref(r.A).String(), BRef: a.Ref(r.B).String(),
			Locs: r.Locs.String(), Data: r.Data,
		}})
	}
	for pi, p := range a.Partitions {
		events := make([]int, len(p.Events))
		for i, id := range p.Events {
			events[i] = int(id)
		}
		fl.emit(export.Record{Kind: export.KindPartition, Partition: &export.PartitionRec{
			Index: pi, Component: p.Component, First: p.First,
			Races: append([]int(nil), p.Races...), Events: events,
		}})
	}
}

func (fl *flight) emit(rec export.Record) {
	rec.Seq = fl.seq
	fl.fr.Emit(rec)
}

package core_test

// Worker-count equivalence of the parallel hb1 build: the adjacency
// structure of a.HB — list contents AND order, which downstream Tarjan
// numbering depends on — must be byte-identical to the sequential
// build for every worker count, on traces large enough to clear the
// parallel cutoff. Run under -race in CI to also catch unsynchronized
// slab writes.

import (
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

func TestParallelBuildHBEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("large-trace equivalence sweep")
	}
	for _, segments := range []int{320, 512} {
		w := workload.Random(workload.RandomParams{
			Seed: 11, CPUs: 4, Segments: segments, UnlockedFraction: 0.3,
		})
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: 1, InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.FromExecution(r.Exec)

		seq, err := core.Analyze(tr, core.Options{SkipValidate: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if tr.NumEvents() < 1<<13 {
			t.Fatalf("segments=%d: trace too small (%d events) to engage the parallel hb1 build", segments, tr.NumEvents())
		}
		for _, workers := range []int{2, 3, 8, 16} {
			par, err := core.Analyze(tr, core.Options{SkipValidate: true, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := par.HB.N(), seq.HB.N(); got != want {
				t.Fatalf("segments=%d workers=%d: N=%d, want %d", segments, workers, got, want)
			}
			if got, want := par.HB.M(), seq.HB.M(); got != want {
				t.Fatalf("segments=%d workers=%d: M=%d, want %d", segments, workers, got, want)
			}
			for u := 0; u < seq.HB.N(); u++ {
				ps, ss := par.HB.Succ(u), seq.HB.Succ(u)
				if len(ps) != len(ss) {
					t.Fatalf("segments=%d workers=%d: node %d: %d successors, want %d",
						segments, workers, u, len(ps), len(ss))
				}
				for k := range ss {
					if ps[k] != ss[k] {
						t.Fatalf("segments=%d workers=%d: node %d slot %d: %d, want %d",
							segments, workers, u, k, ps[k], ss[k])
					}
				}
			}
		}
	}
}

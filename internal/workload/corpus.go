package workload

import (
	"math/rand"

	"weakrace/internal/memmodel"
)

// CorpusEntry is one differential-test case: a random workload plus the
// memory model and scheduler seed to run it under.
type CorpusEntry struct {
	Workload *Workload
	Model    memmodel.Model
	Seed     int64
}

// Corpus generates the standing differential-test corpus: n random
// workloads of tunable raciness (every even trial racy), each with a
// weak model and seed. Corpus(60, 1) is THE 60-trace corpus the
// crosscheck suite pins the post-mortem/on-the-fly agreement on — the
// draw order below is frozen; changing it silently swaps the corpus
// every differential test and the wrserve window study run against.
func Corpus(n int, rngSeed int64) []CorpusEntry {
	rng := rand.New(rand.NewSource(rngSeed))
	models := []memmodel.Model{memmodel.WO, memmodel.RCsc, memmodel.DRF0, memmodel.DRF1}
	out := make([]CorpusEntry, 0, n)
	for trial := 0; trial < n; trial++ {
		p := RandomParams{
			Seed:          rng.Int63(),
			CPUs:          2 + rng.Intn(3),
			Segments:      2 + rng.Intn(5),
			OpsPerSegment: 2 + rng.Intn(4),
			Locks:         1 + rng.Intn(2),
		}
		if trial%2 == 0 {
			p.UnlockedFraction = 0.2 + rng.Float64()*0.6
			p.SharedFraction = 0.5 + rng.Float64()*0.4
		}
		out = append(out, CorpusEntry{
			Workload: Random(p),
			Model:    models[rng.Intn(len(models))],
			Seed:     rng.Int63n(1000),
		})
	}
	return out
}
